// Command mkstore builds a paged object store for a generated dataset —
// point records carrying their Voronoi adjacency (VoR-tree layout) — and
// writes it to a file, or inspects/queries an existing store file.
//
//	mkstore -n 100000 -payload 128 -out points.vaq        # build + save
//	mkstore -in points.vaq -info                          # header summary
//	mkstore -in points.vaq -get 42                        # fetch one record
//
// The file format is the library's own (see internal/storage): magic,
// page-size header, raw pages, and the id directory.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	var (
		n        = flag.Int("n", 100000, "points to generate (build mode)")
		seed     = flag.Int64("seed", 1, "random seed (build mode)")
		payload  = flag.Int("payload", 128, "payload bytes per record (build mode)")
		pageSize = flag.Int("pagesize", 4096, "page size in bytes (build mode)")
		out      = flag.String("out", "", "write the store to this file (build mode)")
		in       = flag.String("in", "", "read an existing store file")
		info     = flag.Bool("info", false, "print store summary (with -in)")
		get      = flag.Int64("get", -1, "fetch one record by id (with -in)")
	)
	flag.Parse()

	switch {
	case *in != "":
		inspect(*in, *info, *get)
	case *out != "":
		build(*n, *seed, *payload, *pageSize, *out)
	default:
		fmt.Fprintln(os.Stderr, "mkstore: need -out (build) or -in (inspect); see -h")
		os.Exit(2)
	}
}

func build(n int, seed int64, payload, pageSize int, out string) {
	rng := rand.New(rand.NewSource(seed))
	bounds := geom.NewRect(0, 0, 1, 1)
	pts := workload.UniformPoints(rng, n, bounds)
	workload.HilbertSort(pts, bounds)

	fmt.Fprintf(os.Stderr, "building Voronoi topology and store for %d points...\n", n)
	data, err := core.NewStoreData(pts, bounds, core.StoreConfig{
		PageSize:     pageSize,
		PoolPages:    0,
		PayloadBytes: payload,
	})
	if err != nil {
		fatalf("%v", err)
	}
	f, err := os.Create(out)
	if err != nil {
		fatalf("%v", err)
	}
	defer func() {
		if err := f.Close(); err != nil {
			fatalf("closing %s: %v", out, err)
		}
	}()
	written, err := data.Store().WriteTo(f)
	if err != nil {
		fatalf("writing %s: %v", out, err)
	}
	fmt.Printf("wrote %s: %d records, %d pages of %d bytes, %d bytes total\n",
		out, data.Store().Len(), data.Store().NumPages(), pageSize, written)
}

func inspect(in string, info bool, get int64) {
	f, err := os.Open(in)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	st, err := storage.Read(f, storage.Options{PoolPages: 64})
	if err != nil {
		fatalf("reading %s: %v", in, err)
	}
	if info || get < 0 {
		fmt.Printf("%s: %d records, %d pages of %d bytes\n",
			in, st.Len(), st.NumPages(), st.PageSize())
	}
	if get >= 0 {
		rec, err := st.Get(get)
		if err != nil {
			fatalf("get %d: %v", get, err)
		}
		fmt.Printf("id=%d pos=%v neighbors=%v payload=%d bytes\n",
			rec.ID, rec.Pos, rec.Neighbors, len(rec.Payload))
		io := st.Stats()
		fmt.Printf("io: %d page reads, %d cache hits\n", io.PageReads, io.CacheHits)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "mkstore: "+format+"\n", args...)
	os.Exit(1)
}
