// Command voronoisvg renders the structures behind the paper's figures:
// without -query it draws the Voronoi diagram and Delaunay triangulation of
// a random point set (Figure 3); with -query it additionally draws a random
// query polygon with the result set in black and the Voronoi method's
// redundant candidates in green (Figure 2).
//
// Examples:
//
//	voronoisvg -n 200 -out fig3.svg
//	voronoisvg -n 2000 -query -querysize 4 -out fig2.svg
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro"
)

func main() {
	var (
		n         = flag.Int("n", 300, "number of points")
		seed      = flag.Int64("seed", 42, "random seed")
		out       = flag.String("out", "", "output file (default stdout)")
		width     = flag.Float64("width", 800, "image width in pixels")
		query     = flag.Bool("query", false, "draw an area query (Figure 2 style)")
		querySize = flag.Float64("querysize", 4, "query size in percent of the universe (with -query)")
		vertices  = flag.Int("vertices", 10, "query polygon vertices (with -query)")
		clustered = flag.Bool("clustered", false, "use clustered instead of uniform points")
		cells     = flag.Bool("cells", true, "draw Voronoi cells")
		delaunay  = flag.Bool("delaunay", true, "draw Delaunay edges")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var pts []vaq.Point
	if *clustered {
		pts = vaq.ClusteredPoints(rng, *n, 5, 0.05, vaq.UnitSquare())
	} else {
		pts = vaq.UniformPoints(rng, *n, vaq.UnitSquare())
	}
	eng, err := vaq.NewEngine(pts, vaq.UnitSquare())
	if err != nil {
		fatalf("building engine: %v", err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("creating %s: %v", *out, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("closing %s: %v", *out, err)
			}
		}()
		w = f
	}

	area := vaq.RandomQueryPolygon(rng, *vertices, *querySize/100, vaq.UnitSquare())
	if !*query {
		// Figure 3: diagram only — use a full-universe polygon so every
		// point renders as a plain site, then strip the query overlay by
		// drawing with an invisible area. Simpler: render with DrawCells /
		// DrawDelaunay and a degenerate microscopic area in a corner.
		area = vaq.MustPolygon([]vaq.Point{
			vaq.Pt(-0.002, -0.002), vaq.Pt(-0.001, -0.002), vaq.Pt(-0.001, -0.001),
		})
	}
	err = eng.RenderQuerySVG(w, area, vaq.RenderOptions{
		WidthPx:      *width,
		DrawCells:    *cells,
		DrawDelaunay: *delaunay,
		DrawMBR:      *query,
	})
	if err != nil {
		fatalf("rendering: %v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "voronoisvg: "+format+"\n", args...)
	os.Exit(1)
}
