package main

import (
	"encoding/json"
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildVaqvet compiles the command once per test binary into t's temp
// space and returns its path plus the module root to run it from.
func buildVaqvet(t *testing.T) (bin, root string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin = filepath.Join(t.TempDir(), "vaqvet")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/vaqvet")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building vaqvet: %v\n%s", err, out)
	}
	return bin, root
}

// TestJSONOutputAndExitCode pins the machine-readable interface: -json
// emits an array of {code, pos, message} objects and the process exits 1
// when it found anything.
func TestJSONOutputAndExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the real binary")
	}
	bin, root := buildVaqvet(t)

	cmd := exec.Command(bin, "-json", "./internal/analysis/testdata/sentinelerr")
	cmd.Dir = root
	out, err := cmd.Output()
	var exitErr *exec.ExitError
	if err == nil {
		t.Fatal("expected exit code 1 on a violation package, got 0")
	} else if !errors.As(err, &exitErr) || exitErr.ExitCode() != 1 {
		t.Fatalf("expected exit code 1, got %v (stderr: %s)", err, stderrOf(err))
	}

	var diags []struct {
		Code string `json:"code"`
		Pos  struct {
			Filename string `json:"Filename"`
			Line     int    `json:"Line"`
		} `json:"pos"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(out, &diags); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out)
	}
	if len(diags) == 0 {
		t.Fatal("expected findings in the sentinelerr testdata package")
	}
	for _, d := range diags {
		if d.Code != "sentinelerr" {
			t.Errorf("unexpected code %q", d.Code)
		}
		if d.Pos.Line == 0 || d.Pos.Filename == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		if filepath.IsAbs(d.Pos.Filename) {
			t.Errorf("position %q should be relative to the working directory", d.Pos.Filename)
		}
	}
}

// TestCleanPackageExitsZero runs the binary over a package with no
// violations: empty JSON array, exit code 0.
func TestCleanPackageExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs the real binary")
	}
	bin, root := buildVaqvet(t)

	cmd := exec.Command(bin, "-json", "./internal/geom")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("expected exit 0 on a clean package, got %v (stderr: %s)", err, stderrOf(err))
	}
	if got := strings.TrimSpace(string(out)); got != "[]" {
		t.Errorf("expected an empty JSON array, got %q", got)
	}
}

func stderrOf(err error) []byte {
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.Stderr
	}
	return nil
}
