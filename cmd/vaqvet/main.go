// Command vaqvet runs the project's own static-analysis suite — the
// invariants go vet does not know about: cancellation checks in candidate
// loops (ctxloop), pooled-memory isolation (poolalias), mutex-guarded
// field access (lockguard), allocation-free hot paths (noalloc), vaq_
// metric naming (metricname), and sentinel-preserving error wrapping
// (sentinelerr). See the README's "Static analysis" section for the
// diagnostic codes and the annotation grammar.
//
// Usage:
//
//	go run ./cmd/vaqvet ./...
//	go run ./cmd/vaqvet -json ./internal/remote
//
// Patterns follow the loader's rules: "./..." walks the module (skipping
// testdata directories); a plain path names one package directory.
// vaqvet exits 1 when it reports findings, 2 on usage or load errors.
// Suppress a finding in place with `//vaqvet:ignore CODE reason` on the
// offending line or the line above — unused or malformed suppressions
// are themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array of {code, pos, message}")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vaqvet [-json] [patterns]\n  (default pattern ./...)\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	diags := analysis.Run(pkgs, analysis.Analyzers)

	// Report positions relative to the working directory — clickable and
	// stable across checkouts.
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = rel
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "vaqvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vaqvet:", err)
	os.Exit(2)
}
