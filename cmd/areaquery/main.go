// Command areaquery runs a single ad-hoc area query against a generated
// dataset and prints both methods' results and work statistics — a quick
// way to see the paper's effect without the full benchmark harness.
//
// The polygon is given as a comma-separated list of x,y pairs:
//
//	areaquery -n 100000 -polygon "0.1,0.1 0.5,0.2 0.6,0.6 0.3,0.4 0.1,0.5"
//
// Without -polygon a random 10-gon covering 1% of the universe is used.
//
// With -remote the query runs against running areaserve instances instead
// of a locally built engine:
//
//	areaquery -remote "localhost:8089,localhost:8090" -querysize 2
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	var (
		n         = flag.Int("n", 100000, "number of points in the generated dataset")
		seed      = flag.Int64("seed", 1, "random seed")
		polygon   = flag.String("polygon", "", `query polygon as "x,y x,y x,y ..." (>= 3 vertices)`)
		querySize = flag.Float64("querysize", 1, "random query size in percent (without -polygon)")
		clustered = flag.Bool("clustered", false, "use clustered instead of uniform points")
		strict    = flag.Bool("strict", false, "also run the strict expansion variant")
		showIDs   = flag.Bool("ids", false, "print the matching point ids")
		timeout   = flag.Duration("timeout", 0, "per-query deadline (0 = none), e.g. 50ms")
		remote    = flag.String("remote", "", `comma-separated areaserve addresses ("host:port,host:port"); queries run remotely instead of building a local engine`)
		degraded  = flag.Bool("degraded", false, "with -remote: drop failed backends instead of failing the query")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var eng vaq.Querier
	var err error
	if *remote != "" {
		eng, err = dialRemote(*remote, *degraded)
		if err != nil {
			fatalf("%v", err)
		}
	} else {
		var pts []vaq.Point
		if *clustered {
			pts = vaq.ClusteredPoints(rng, *n, 8, 0.04, vaq.UnitSquare())
		} else {
			pts = vaq.UniformPoints(rng, *n, vaq.UnitSquare())
		}
		fmt.Fprintf(os.Stderr, "building engine over %d points...\n", *n)
		eng, err = vaq.NewEngine(pts, vaq.UnitSquare())
		if err != nil {
			fatalf("%v", err)
		}
	}

	var area vaq.Polygon
	if *polygon != "" {
		area, err = parsePolygon(*polygon)
		if err != nil {
			fatalf("bad -polygon: %v", err)
		}
	} else {
		area = vaq.RandomQueryPolygon(rng, 10, *querySize/100, vaq.UnitSquare())
		fmt.Fprintf(os.Stderr, "random query polygon: %v\n", area.Outer)
	}

	methods := []vaq.Method{vaq.Traditional, vaq.VoronoiBFS}
	if *strict {
		methods = append(methods, vaq.VoronoiBFSStrict)
	}
	region := vaq.PolygonRegion(area)
	for _, m := range methods {
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if *timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, *timeout)
		}
		var st vaq.Stats
		ids, err := eng.Query(ctx, region, vaq.UsingMethod(m), vaq.WithStatsInto(&st))
		cancel()
		if err != nil {
			fatalf("%v: %v", m, err)
		}
		fmt.Printf("%-14s results=%-6d candidates=%-6d redundant=%-6d index_nodes=%-5d loads=%-6d time=%v\n",
			m, st.ResultSize, st.Candidates, st.RedundantValidations,
			st.IndexNodesVisited, st.RecordsLoaded, st.Duration)
		if *showIDs {
			fmt.Printf("  ids: %v\n", ids)
		}
	}
}

// dialRemote builds a RemoteEngine over the comma-separated address
// list, defaulting bare host:port entries to http.
func dialRemote(list string, degraded bool) (*vaq.RemoteEngine, error) {
	var urls []string
	for _, a := range strings.Split(list, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		urls = append(urls, strings.TrimRight(a, "/"))
	}
	var opts []vaq.Option
	if degraded {
		opts = append(opts, vaq.WithDegradedFanOut())
	}
	eng, err := vaq.DialRemote(context.Background(), urls, opts...)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "remote engine: %d backends, %d points\n", eng.NumBackends(), eng.Len())
	return eng, nil
}

func parsePolygon(s string) (vaq.Polygon, error) {
	fields := strings.Fields(s)
	if len(fields) < 3 {
		return vaq.Polygon{}, fmt.Errorf("need at least 3 vertices, got %d", len(fields))
	}
	pts := make([]vaq.Point, 0, len(fields))
	for _, f := range fields {
		xy := strings.Split(f, ",")
		if len(xy) != 2 {
			return vaq.Polygon{}, fmt.Errorf("vertex %q is not x,y", f)
		}
		x, err := strconv.ParseFloat(xy[0], 64)
		if err != nil {
			return vaq.Polygon{}, fmt.Errorf("vertex %q: %w", f, err)
		}
		y, err := strconv.ParseFloat(xy[1], 64)
		if err != nil {
			return vaq.Polygon{}, fmt.Errorf("vertex %q: %w", f, err)
		}
		pts = append(pts, vaq.Pt(x, y))
	}
	return vaq.NewPolygon(pts)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "areaquery: "+format+"\n", args...)
	os.Exit(1)
}
