// Command areabench regenerates the paper's evaluation: Table I, Table II
// and the data series behind Figures 4-7.
//
// Examples:
//
//	areabench -exp table1 -repeats 100
//	areabench -exp table2 -repeats 1000
//	areabench -exp fig5
//	areabench -exp all -datasizes 100000,200000 -repeats 50
//	areabench -exp table2 -store -payload 64 -poolpages 256
//	areabench -exp throughput -parallel 1,2,4,8 -queries 1024
//	areabench -exp sharded -shards 1,2,4,8 -store -queries 512
//	areabench -exp hotregion -skews 0.8,1.1,1.4 -cachesizes 8,64,256
//	areabench -exp hotregion -metricsaddr localhost:9090
//	areabench -exp serve -conns 1,4,16,64 -requests 2000
//	areabench -exp serve -json BENCH_9.json
//	areabench -exp all -json BENCH_7.json
//	areabench -diff BENCH_7.json BENCH_8.json
//
// With -metricsaddr, a metrics endpoint serves the live registry while the
// run progresses (curl it for JSON, add ?format=prom for Prometheus text).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	vaq "repro"
	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment: table1|table2|fig4|fig5|fig6|fig7|throughput|sharded|hotregion|serve|all")
		parallel    = flag.String("parallel", "1,2,4,8", "comma-separated worker-pool sizes (with -exp throughput)")
		shards      = flag.String("shards", "1,2,4,8", "comma-separated shard counts (with -exp sharded)")
		queries     = flag.Int("queries", 512, "batch length (with -exp throughput|sharded)")
		repeats     = flag.Int("repeats", 100, "repeats per configuration (paper: 1000)")
		seed        = flag.Int64("seed", 20200420, "random seed")
		vertices    = flag.Int("vertices", 10, "query polygon vertex count (paper: 10)")
		dataSizes   = flag.String("datasizes", "", "comma-separated data sizes for table1/fig4/fig5 (default: paper's 1E5..1E6)")
		querySizes  = flag.String("querysizes", "", "comma-separated query sizes in percent for table2/fig6/fig7 (default: 1,2,4,8,16,32)")
		useStore    = flag.Bool("store", false, "back records with the paged store (adds IO accounting)")
		payload     = flag.Int("payload", 64, "payload bytes per record (with -store)")
		poolPages   = flag.Int("poolpages", 256, "buffer pool pages (with -store)")
		poolShards  = flag.Int("poolshards", 0, "buffer pool lock shards (with -store; 0 = GOMAXPROCS-based, 1 = single lock)")
		pageSize    = flag.Int("pagesize", 4096, "page size in bytes (with -store)")
		quiet       = flag.Bool("q", false, "suppress progress output")
		jsonPath    = flag.String("json", "", "write a machine-readable benchmark snapshot to this file (with -exp all or -exp serve; skips the table sweeps)")
		minTime     = flag.Duration("mintime", 200*time.Millisecond, "minimum measured time per family (with -json)")
		conns       = flag.String("conns", "", "comma-separated client concurrency levels (with -exp serve; default 1,4,16,64)")
		requests    = flag.Int("requests", 0, "requests per concurrency level (with -exp serve; default 2000)")
		backends    = flag.Int("backends", 0, "chunk-server count (with -exp serve; default 2)")
		skews       = flag.String("skews", "", "comma-separated zipfian s-parameters (with -exp hotregion; default 0.8,1.1,1.4)")
		cacheSizes  = flag.String("cachesizes", "", "comma-separated result-cache capacities (with -exp hotregion; default 8,64,256)")
		regions     = flag.Int("regions", 0, "hot-region pool size (with -exp hotregion; default 64)")
		metricsAddr = flag.String("metricsaddr", "", "serve live engine metrics on this address while the run progresses (with -json or -exp hotregion; adds instrumentation overhead)")
		diffPath    = flag.String("diff", "", "compare snapshots instead of benchmarking: -diff OLD.json NEW.json (exit 1 on regressions)")
		diffThresh  = flag.Float64("threshold", bench.DefaultDiffThreshold, "fractional per-metric regression threshold (with -diff)")
	)
	flag.Parse()

	if *diffPath != "" {
		if flag.NArg() != 1 {
			fatalf("-diff OLD.json takes exactly one positional NEW.json argument")
		}
		oldSnap, err := bench.LoadSnapshot(*diffPath)
		if err != nil {
			fatalf("%v", err)
		}
		newSnap, err := bench.LoadSnapshot(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		d := bench.DiffSnapshots(oldSnap, newSnap, *diffThresh)
		fmt.Printf("## %s -> %s (threshold %.0f%%)\n", *diffPath, flag.Arg(0), 100*d.Threshold)
		fmt.Print(bench.FormatDiff(d))
		if regs := d.Regressions(); len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "areabench: %d metric(s) regressed beyond %.0f%%\n", len(regs), 100*d.Threshold)
			os.Exit(1)
		}
		return
	}

	// In metrics mode every engine the run builds shares one registry,
	// scraped live over HTTP (JSON by default, ?format=prom for
	// Prometheus text).
	var metrics *vaq.MetricsRegistry
	if *metricsAddr != "" {
		metrics = vaq.NewMetricsRegistry()
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatalf("-metricsaddr: %v", err)
		}
		fmt.Fprintf(os.Stderr, "# serving metrics on http://%s/\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, vaq.MetricsHandler(metrics)); err != nil {
				fmt.Fprintf(os.Stderr, "areabench: metrics server: %v\n", err)
			}
		}()
	}

	cfg := bench.PaperConfig(*repeats)
	cfg.Seed = *seed
	cfg.Vertices = *vertices
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	if *useStore {
		cfg.Store = &core.StoreConfig{
			PageSize:     *pageSize,
			PoolPages:    *poolPages,
			PoolShards:   *poolShards,
			PayloadBytes: *payload,
		}
	}
	if *dataSizes != "" {
		sizes, err := parseInts(*dataSizes)
		if err != nil {
			fatalf("bad -datasizes: %v", err)
		}
		cfg.DataSizes = sizes
	}
	if *querySizes != "" {
		pcts, err := parseFloats(*querySizes)
		if err != nil {
			fatalf("bad -querysizes: %v", err)
		}
		cfg.QuerySizes = cfg.QuerySizes[:0]
		for _, p := range pcts {
			cfg.QuerySizes = append(cfg.QuerySizes, p/100)
		}
	}

	if *jsonPath != "" && *exp != "all" && *exp != "serve" {
		fatalf("-json requires -exp all or -exp serve")
	}

	if *jsonPath != "" && *exp == "all" {
		dataSize := 0 // RunSnapshot defaults to 1E5
		if len(cfg.DataSizes) > 0 && *dataSizes != "" {
			dataSize = cfg.DataSizes[0]
		}
		snap, err := bench.RunSnapshot(bench.SnapshotConfig{
			DataSize:  dataSize,
			Queries:   *queries,
			QuerySize: cfg.FixedQuerySize,
			Vertices:  cfg.Vertices,
			MinTime:   *minTime,
			Store:     cfg.Store,
			Seed:      cfg.Seed,
			Metrics:   metrics,
		})
		if err != nil {
			fatalf("snapshot: %v", err)
		}
		out, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fatalf("snapshot: %v", err)
		}
		if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
			fatalf("snapshot: %v", err)
		}
		if !*quiet {
			fmt.Printf("# wrote %s (%d families)\n", *jsonPath, len(snap.Families))
			for _, f := range snap.Families {
				fmt.Printf("%-20s %12.0f q/s %12.0f ns/op %8.1f allocs/op\n",
					f.Name, f.QueriesPerSec, f.NsPerOp, f.AllocsPerOp)
			}
		}
		return
	}

	if *exp == "serve" {
		scfg := bench.ServeConfig{
			Queries:   *queries,
			Requests:  *requests,
			Backends:  *backends,
			Vertices:  cfg.Vertices,
			QuerySize: cfg.FixedQuerySize,
			Seed:      cfg.Seed,
		}
		if len(cfg.DataSizes) > 0 && *dataSizes != "" {
			scfg.DataSize = cfg.DataSizes[0]
		}
		if *conns != "" {
			cs, err := parseInts(*conns)
			if err != nil {
				fatalf("bad -conns: %v", err)
			}
			scfg.Conns = cs
		}
		rows, err := bench.RunServe(scfg)
		if err != nil {
			fatalf("serve sweep: %v", err)
		}
		fmt.Println("## Serving layer — remote queries over loopback HTTP, connection sweep")
		fmt.Print(bench.FormatServe(rows))
		if *jsonPath != "" {
			snap := bench.ServeSnapshot(scfg, rows)
			out, err := json.MarshalIndent(snap, "", "  ")
			if err != nil {
				fatalf("snapshot: %v", err)
			}
			if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
				fatalf("snapshot: %v", err)
			}
			if !*quiet {
				fmt.Printf("# wrote %s (%d families)\n", *jsonPath, len(snap.Families))
			}
		}
		return
	}

	if *exp == "hotregion" {
		hcfg := bench.HotRegionConfig{
			Queries:   *queries,
			Regions:   *regions,
			Vertices:  cfg.Vertices,
			QuerySize: cfg.FixedQuerySize,
			Seed:      cfg.Seed,
			Store:     cfg.Store,
			Metrics:   metrics,
		}
		if metrics != nil && hcfg.Store == nil {
			// Observed runs back the engines with a paged store so the
			// scraped registry shows live buffer-pool counters too.
			hcfg.Store = &core.StoreConfig{
				PageSize:     *pageSize,
				PoolPages:    *poolPages,
				PoolShards:   *poolShards,
				PayloadBytes: *payload,
			}
		}
		if len(cfg.DataSizes) > 0 && *dataSizes != "" {
			hcfg.DataSize = cfg.DataSizes[0]
		}
		if *skews != "" {
			ss, err := parseFloats(*skews)
			if err != nil {
				fatalf("bad -skews: %v", err)
			}
			hcfg.Skews = ss
		}
		if *cacheSizes != "" {
			cs, err := parseInts(*cacheSizes)
			if err != nil {
				fatalf("bad -cachesizes: %v", err)
			}
			hcfg.CacheSizes = cs
		}
		rows, err := bench.RunHotRegion(hcfg)
		if err != nil {
			fatalf("hotregion sweep: %v", err)
		}
		fmt.Println("## Hot-region traffic — zipfian stream, result cache on vs off")
		fmt.Print(bench.FormatHotRegion(rows))
		return
	}

	if *exp == "throughput" {
		pool, err := parseInts(*parallel)
		if err != nil {
			fatalf("bad -parallel: %v", err)
		}
		dataSize := 0 // RunThroughput defaults to 1E5
		if len(cfg.DataSizes) > 0 && *dataSizes != "" {
			dataSize = cfg.DataSizes[0]
		}
		rows, err := bench.RunThroughput(bench.ThroughputConfig{
			DataSize:    dataSize,
			Queries:     *queries,
			QuerySize:   cfg.FixedQuerySize,
			Vertices:    cfg.Vertices,
			Parallelism: pool,
			Seed:        cfg.Seed,
		})
		if err != nil {
			fatalf("throughput sweep: %v", err)
		}
		fmt.Println("## Batch throughput — parallel QueryAll, Voronoi method")
		fmt.Print(bench.FormatThroughput(rows))
		return
	}

	if *exp == "sharded" {
		counts, err := parseInts(*shards)
		if err != nil {
			fatalf("bad -shards: %v", err)
		}
		dataSize := 0 // RunShardedThroughput defaults to 1E5
		if len(cfg.DataSizes) > 0 && *dataSizes != "" {
			dataSize = cfg.DataSizes[0]
		}
		rows, err := bench.RunShardedThroughput(bench.ShardedThroughputConfig{
			DataSize:  dataSize,
			Queries:   *queries,
			QuerySize: cfg.FixedQuerySize,
			Vertices:  cfg.Vertices,
			Shards:    counts,
			Store:     cfg.Store,
			Seed:      cfg.Seed,
		})
		if err != nil {
			fatalf("sharded sweep: %v", err)
		}
		backing := "in-memory records"
		if cfg.Store != nil {
			backing = "store-backed records (per-shard buffer pools)"
		}
		fmt.Printf("## Sharded vs single engine — batch scatter-gather, Voronoi method, %s\n", backing)
		fmt.Print(bench.FormatShardedThroughput(rows))
		return
	}

	needData := map[string]bool{"table1": true, "fig4": true, "fig5": true, "all": true}
	needQuery := map[string]bool{"table2": true, "fig6": true, "fig7": true, "all": true}
	if !needData[*exp] && !needQuery[*exp] {
		fatalf("unknown experiment %q", *exp)
	}

	var dataRows, queryRows []bench.Row
	var err error
	if needData[*exp] {
		fmt.Fprintf(os.Stderr, "# data-size sweep: %v points, query size %.0f%%, %d repeats\n",
			cfg.DataSizes, cfg.FixedQuerySize*100, cfg.Repeats)
		dataRows, err = bench.RunDataSizeSweep(cfg)
		if err != nil {
			fatalf("data-size sweep: %v", err)
		}
	}
	if needQuery[*exp] {
		fmt.Fprintf(os.Stderr, "# query-size sweep: %d points, query sizes %v, %d repeats\n",
			cfg.FixedDataSize, cfg.QuerySizes, cfg.Repeats)
		queryRows, err = bench.RunQuerySizeSweep(cfg)
		if err != nil {
			fatalf("query-size sweep: %v", err)
		}
	}

	switch *exp {
	case "table1":
		fmt.Println("## Table I — R-tree based vs Voronoi based area query, varying data size")
		fmt.Print(bench.FormatTable(dataRows, false))
	case "table2":
		fmt.Println("## Table II — R-tree based vs Voronoi based area query, varying query size")
		fmt.Print(bench.FormatTable(queryRows, true))
	case "fig4":
		fmt.Print(bench.FormatFigure(dataRows, bench.Fig4TimeVsDataSize))
	case "fig5":
		fmt.Print(bench.FormatFigure(dataRows, bench.Fig5RedundantVsDataSize))
	case "fig6":
		fmt.Print(bench.FormatFigure(queryRows, bench.Fig6TimeVsQuerySize))
	case "fig7":
		fmt.Print(bench.FormatFigure(queryRows, bench.Fig7RedundantVsQuerySize))
	case "all":
		fmt.Println("## Table I — varying data size (query size fixed at 1%)")
		fmt.Print(bench.FormatTable(dataRows, false))
		fmt.Println()
		fmt.Print(bench.FormatFigure(dataRows, bench.Fig4TimeVsDataSize))
		fmt.Println()
		fmt.Print(bench.FormatFigure(dataRows, bench.Fig5RedundantVsDataSize))
		fmt.Println()
		fmt.Println("## Table II — varying query size (data size fixed)")
		fmt.Print(bench.FormatTable(queryRows, true))
		fmt.Println()
		fmt.Print(bench.FormatFigure(queryRows, bench.Fig6TimeVsQuerySize))
		fmt.Println()
		fmt.Print(bench.FormatFigure(queryRows, bench.Fig7RedundantVsQuerySize))
	}

	reportMismatches(append(dataRows, queryRows...))
}

func reportMismatches(rows []bench.Row) {
	total := 0
	for _, r := range rows {
		total += r.Mismatches
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr,
			"# WARNING: the published expansion rule diverged from the baseline on %d repeats (see DESIGN.md §5.3)\n",
			total)
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "areabench: "+format+"\n", args...)
	os.Exit(1)
}
