// Command areaserve serves area queries over HTTP. It builds one of the
// library's engine flavors over a generated dataset (or a contiguous
// chunk of one, for multi-process sharding) and exposes the full Querier
// surface on a JSON API — see internal/serve for the wire protocol and
// vaq.DialRemote for the matching client engine.
//
// Serve the whole dataset:
//
//	areaserve -n 200000 -addr :8089
//
// Serve chunk 2 of 3 (ids and bounds advertised on /v1/info let
// DialRemote stitch the chunks back into one global engine):
//
//	areaserve -n 200000 -shard 2/3 -addr :8090
//
// Endpoints: POST /v1/query, /v1/queryall, /v1/count, /v1/knearest,
// /v1/each (NDJSON stream); GET /v1/info, /metrics (JSON, or
// ?format=prom). Clients propagate deadlines via the Vaq-Timeout-Ms
// header; -maxtimeout caps what they may ask for. SIGINT/SIGTERM drains
// in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8089", "listen address")
		n          = flag.Int("n", 100000, "number of points in the generated dataset")
		seed       = flag.Int64("seed", 1, "random seed (same seed + n on every shard of a group)")
		clustered  = flag.Bool("clustered", false, "use clustered instead of uniform points")
		shardSpec  = flag.String("shard", "", `serve only chunk i of n, e.g. "2/3" (default: whole dataset)`)
		flavor     = flag.String("flavor", "static", "engine flavor: static, sharded or dynamic")
		shards     = flag.Int("shards", 0, "local shard count for -flavor sharded (0 = NumCPU)")
		maxTimeout = flag.Duration("maxtimeout", 30*time.Second, "cap on client-requested deadlines (0 = uncapped)")
		drain      = flag.Duration("drain", 10*time.Second, "grace period for in-flight requests on shutdown")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var pts []vaq.Point
	if *clustered {
		pts = vaq.ClusteredPoints(rng, *n, 8, 0.04, vaq.UnitSquare())
	} else {
		pts = vaq.UniformPoints(rng, *n, vaq.UnitSquare())
	}

	start, end := 0, len(pts)
	if *shardSpec != "" {
		i, k, err := parseShard(*shardSpec)
		if err != nil {
			fatalf("bad -shard: %v", err)
		}
		start, end = len(pts)*(i-1)/k, len(pts)*i/k
	}
	chunk := pts[start:end]

	reg := vaq.NewMetricsRegistry()
	eng, err := buildEngine(*flavor, chunk, *shards, reg)
	if err != nil {
		fatalf("%v", err)
	}

	h := serve.NewHandler(eng, serve.Config{
		IDOffset:   int64(start),
		Flavor:     *flavor,
		Metrics:    reg,
		MaxTimeout: *maxTimeout,
	})
	srv := &http.Server{Addr: *addr, Handler: h}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "areaserve: %s engine, %d points (ids %d..%d) on %s\n",
		*flavor, len(chunk), start, end-1, *addr)

	select {
	case err := <-errc:
		fatalf("%v", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills immediately
	fmt.Fprintln(os.Stderr, "areaserve: draining...")
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatalf("shutdown: %v", err)
	}
	fmt.Fprintln(os.Stderr, "areaserve: bye")
}

// buildEngine constructs the requested flavor over the chunk. Every
// flavor implements serve.Engine, so the handler is flavor-agnostic.
func buildEngine(flavor string, pts []vaq.Point, shards int, reg *vaq.MetricsRegistry) (serve.Engine, error) {
	opts := []vaq.Option{vaq.WithMetrics(reg)}
	switch flavor {
	case "static":
		return vaq.NewEngine(pts, vaq.UnitSquare(), opts...)
	case "sharded":
		if shards > 0 {
			opts = append(opts, vaq.WithShards(shards))
		}
		return vaq.NewShardedEngine(pts, vaq.UnitSquare(), opts...)
	case "dynamic":
		eng := vaq.NewDynamicEngine(vaq.UnitSquare(), opts...)
		for _, p := range pts {
			if _, _, err := eng.Insert(p); err != nil {
				return nil, err
			}
		}
		return eng, nil
	default:
		return nil, fmt.Errorf("unknown -flavor %q (want static, sharded or dynamic)", flavor)
	}
}

func parseShard(s string) (i, n int, err error) {
	if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d/%d", &i, &n); err != nil {
		return 0, 0, fmt.Errorf("%q is not i/n", s)
	}
	if n < 1 || i < 1 || i > n {
		return 0, 0, fmt.Errorf("%q out of range (want 1 <= i <= n)", s)
	}
	return i, n, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "areaserve: "+format+"\n", args...)
	os.Exit(1)
}
