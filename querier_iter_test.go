package vaq

import (
	"context"
	"errors"
	"math/rand"
	"slices"
	"testing"
)

// TestResultsMatchesEach pins the range-over-func facade on every flavor:
// ranging over Results visits exactly the pairs Each yields, and the error
// function reports a clean finish.
func TestResultsMatchesEach(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	pts := UniformPoints(rng, 1000, UnitSquare())
	flavors := buildFlavors(t, pts)
	ctx := context.Background()
	region := PolygonRegion(RandomQueryPolygon(rng, 10, 0.05, UnitSquare()))

	for _, f := range flavors {
		var want []int64
		if err := f.q.Each(ctx, region, func(id int64, _ Point) bool {
			want = append(want, id)
			return true
		}); err != nil {
			t.Fatalf("%s: Each: %v", f.name, err)
		}
		slices.Sort(want)

		var got []int64
		seq, errf := Results(ctx, f.q, region)
		for id, p := range seq {
			if wp, ok := f.pointOf(pts, id); !ok || p != wp {
				t.Fatalf("%s: id %d position %v, want %v", f.name, id, p, wp)
			}
			got = append(got, id)
		}
		if err := errf(); err != nil {
			t.Fatalf("%s: errf after clean loop: %v", f.name, err)
		}
		slices.Sort(got)
		if !slices.Equal(got, want) {
			t.Fatalf("%s: ranged %d ids, Each yielded %d", f.name, len(got), len(want))
		}
	}
}

// TestResultsEarlyBreak pins that breaking out of the range loop stops the
// query cleanly (no error) and that query options thread through.
func TestResultsEarlyBreak(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	pts := UniformPoints(rng, 1000, UnitSquare())
	eng, err := NewEngine(pts, UnitSquare())
	if err != nil {
		t.Fatal(err)
	}
	region := PolygonRegion(MustPolygon([]Point{
		Pt(0.1, 0.1), Pt(0.9, 0.1), Pt(0.9, 0.9), Pt(0.1, 0.9),
	}))

	seen := 0
	seq, errf := Results(context.Background(), eng, region)
	for range seq {
		seen++
		if seen == 3 {
			break
		}
	}
	if err := errf(); err != nil {
		t.Fatalf("errf after break: %v", err)
	}
	if seen != 3 {
		t.Fatalf("saw %d pairs, want 3", seen)
	}

	// Options thread through: Limit bounds the sequence.
	var st Stats
	n := 0
	seq, errf = Results(context.Background(), eng, region, Limit(5), WithStatsInto(&st))
	for range seq {
		n++
	}
	if err := errf(); err != nil {
		t.Fatal(err)
	}
	if n != 5 || st.ResultSize != 5 {
		t.Fatalf("Limit(5) sequence yielded %d (stats %d), want 5", n, st.ResultSize)
	}
}

// TestResultsErrorPropagation pins that a failing query surfaces through
// the error function, not a panic mid-range.
func TestResultsErrorPropagation(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	pts := UniformPoints(rng, 500, UnitSquare())
	eng, err := NewEngine(pts, UnitSquare())
	if err != nil {
		t.Fatal(err)
	}
	region := PolygonRegion(RandomQueryPolygon(rng, 8, 0.05, UnitSquare()))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	seq, errf := Results(ctx, eng, region)
	for range seq {
	}
	if err := errf(); !errors.Is(err, context.Canceled) {
		t.Fatalf("errf = %v, want context.Canceled", err)
	}
}
