package vaq

import (
	"encoding/binary"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rcache"
)

// ResultCache memoizes Query results across repeated identical queries —
// the win on skewed real traffic, where most queries hammer a few hot
// regions. Attach one to any engine flavor with WithResultCache; one cache
// may be shared by several engines (entries never cross engines — every
// key embeds a per-engine salt).
//
// Keying and invalidation: an entry is keyed by the exact geometry of the
// region (its canonical byte encoding), the resolved query options that
// change the result or its cost (method, CountOnly), and the engine's
// epoch. Static Engine and ShardedEngine are immutable, so their epoch is
// constant; DynamicEngine and Snapshot key by their insert epoch, so every
// Insert invalidates by construction — a query after an insert builds a
// different key, misses, and the stale entry ages out of the LRU.
//
// Scope: the cache serves Query (and Count, which runs through Query).
// Limited queries (Limit > 0) bypass — which n ids come back is
// method-dependent, so memoizing one execution's choice would pin it.
// Regions without a canonical encoding (custom Region implementations)
// bypass too. Each streams and QueryAll batches without consulting the
// cache. On a hit, WithStatsInto receives the memoized statistics of the
// execution that populated the entry.
//
// When not to use it: workloads of unique, never-repeated regions only pay
// the keying and bookkeeping overhead (every lookup misses), and
// write-heavy DynamicEngine workloads churn the epoch so fast that entries
// rarely get a second hit before invalidation.
//
// A ResultCache is safe for concurrent use; it shards its LRU state over
// the same power-of-two lock-shard pattern as the store's buffer pool.
type ResultCache struct {
	c *rcache.Cache
}

// NewResultCache returns a result cache holding up to capacity memoized
// query results. capacity <= 0 stores nothing (every lookup misses) —
// useful as an always-cold baseline in benchmarks.
func NewResultCache(capacity int) *ResultCache {
	return &ResultCache{c: rcache.New(capacity)}
}

// CacheStats are a ResultCache's cumulative counters. Bypasses counts
// queries the cache refused to memoize (Limit set, or an unkeyable
// region); HitRate() is Hits / (Hits + Misses).
type CacheStats = rcache.Counters

// Stats returns a snapshot of the cache's hit/miss/evict/bypass counters.
func (rc *ResultCache) Stats() CacheStats { return rc.c.Counters() }

// Len returns the number of memoized results currently held.
func (rc *ResultCache) Len() int { return rc.c.Len() }

// Capacity returns the entry budget.
func (rc *ResultCache) Capacity() int { return rc.c.Capacity() }

// Resize sets the entry budget, evicting down to it immediately.
func (rc *ResultCache) Resize(capacity int) { rc.c.Resize(capacity) }

// Reset drops every memoized result and zeroes the counters.
func (rc *ResultCache) Reset() { rc.c.Reset() }

// WithResultCache attaches rc to the engine under construction (NewEngine,
// NewShardedEngine, NewDynamicEngine — a DynamicEngine's Snapshots
// inherit it). See ResultCache for keying, invalidation and scope. A nil
// rc leaves caching off.
func WithResultCache(rc *ResultCache) Option {
	return func(c *config) { c.rcache = rc }
}

// cacheSaltCounter issues one salt per constructed engine, so engines
// sharing a ResultCache can never collide on a key.
var cacheSaltCounter atomic.Uint64

func nextCacheSalt() uint64 { return cacheSaltCounter.Add(1) }

// appendQueryKey builds the cache key of one query: engine salt, epoch,
// the result-shaping options, then the region's canonical geometry.
// Returns nil when the region is not keyable.
func appendQueryKey(dst []byte, salt, epoch uint64, p *queryPlan, region Region) []byte {
	ck, ok := region.(core.CacheKeyer)
	if !ok {
		return nil
	}
	dst = binary.LittleEndian.AppendUint64(dst, salt)
	dst = binary.LittleEndian.AppendUint64(dst, epoch)
	countOnly := byte(0)
	if p.countOnly {
		countOnly = 1
	}
	dst = append(dst, byte(p.method), countOnly)
	return ck.AppendCacheKey(dst)
}

// cachedQuery wraps one Query execution with the memoization protocol and
// the per-query instrumentation shared by every flavor: trace Begin/Finish
// and the registry observation surround runCachedQuery, which consults rc
// under the query's key, runs and populates on a miss, and falls through
// to plain execution (counting a bypass) when the query is not cacheable.
// The uninstrumented path (no registry, no trace) adds two nil comparisons
// and no clock reads over runCachedQuery itself.
func cachedQuery(flavor string, qm *queryMetrics, rc *ResultCache, salt, epoch uint64, region Region, p *queryPlan, run func() ([]int64, Stats, error)) ([]int64, error) {
	if qm == nil && p.trace == nil {
		out, _, err := runCachedQuery(rc, salt, epoch, region, p, run)
		return out, err
	}
	p.trace.Begin(flavor, p.method.String())
	start := time.Now()
	out, st, err := runCachedQuery(rc, salt, epoch, region, p, run)
	d := time.Since(start)
	p.trace.Finish(d, st.Candidates, st.ResultSize)
	qm.observe(p.method, d, &st, err)
	return out, err
}

// runCachedQuery is the memoization core beneath cachedQuery. run must
// return the backend's raw result; ascending-order canonicalization and
// the stats handoff happen here, so hits are byte-identical to what the
// backend would have returned. The returned Stats describe the execution
// the caller observed — the memoized statistics on a hit — so the
// instrumentation layer can count work without re-running anything.
func runCachedQuery(rc *ResultCache, salt, epoch uint64, region Region, p *queryPlan, run func() ([]int64, Stats, error)) ([]int64, Stats, error) {
	if rc == nil {
		ids, st, err := run()
		out, err := finishQuery(p, ids, st, err)
		return out, st, err
	}
	var key []byte
	if p.limit <= 0 {
		tr := p.trace
		var lookupStart time.Time
		if tr != nil {
			lookupStart = time.Now()
		}
		key = appendQueryKey(make([]byte, 0, 128), salt, epoch, p, region)
		if key != nil {
			skey := string(key)
			ent, ok := rc.c.Get(skey)
			if tr != nil {
				tr.Add(obs.PhaseCacheLookup, time.Since(lookupStart))
			}
			if ok {
				tr.MarkCacheHit()
				if p.stats != nil {
					*p.stats = ent.Stats
				}
				if p.countOnly {
					return nil, ent.Stats, nil
				}
				return append(p.buf[:0], ent.IDs...), ent.Stats, nil
			}
			ids, st, err := run()
			out, err := finishQuery(p, ids, st, err)
			if err != nil {
				return nil, st, err
			}
			ent = rcache.Entry{Stats: st}
			if !p.countOnly {
				// Own the memoized ids: out may alias a caller's Reuse buffer.
				ent.IDs = append([]int64(nil), out...)
			}
			rc.c.Put(skey, ent)
			return out, st, nil
		}
	}
	// Limited or unkeyable — execute without memoizing.
	rc.c.AddBypass()
	ids, st, err := run()
	out, err := finishQuery(p, ids, st, err)
	return out, st, err
}
