package vaq

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

var shardedTestCounts = []int{1, 2, 7, 16}

func shardedWorkloads(n int) map[string][]Point {
	return map[string][]Point{
		"uniform":   UniformPoints(rand.New(rand.NewSource(61)), n, UnitSquare()),
		"clustered": ClusteredPoints(rand.New(rand.NewSource(62)), n, 6, 0.04, UnitSquare()),
	}
}

// TestShardedEngineConformance runs the public acceptance grid: every
// query method × shard counts 1/2/7/16 × uniform and clustered workloads
// must return exactly the single-engine oracle's sorted id set, through
// every public entry point.
func TestShardedEngineConformance(t *testing.T) {
	const n = 3000
	for wname, pts := range shardedWorkloads(n) {
		single, err := NewEngine(pts, UnitSquare())
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(63))
		areas := make([]Polygon, 9)
		for i := range areas {
			areas[i] = RandomQueryPolygon(rng, 10, []float64{0.005, 0.02, 0.08}[i%3], UnitSquare())
		}
		circles := make([]Circle, 3)
		for i := range circles {
			circles[i] = NewCircle(Pt(0.2+0.6*rng.Float64(), 0.2+0.6*rng.Float64()), 0.02+0.08*rng.Float64())
		}

		for _, shards := range shardedTestCounts {
			sharded, err := NewShardedEngine(pts, UnitSquare(), WithShards(shards))
			if err != nil {
				t.Fatal(err)
			}
			if sharded.NumShards() != shards || sharded.Len() != n {
				t.Fatalf("%s shards=%d: NumShards=%d Len=%d", wname, shards, sharded.NumShards(), sharded.Len())
			}
			name := fmt.Sprintf("%s/shards=%d", wname, shards)

			for _, m := range []Method{Traditional, VoronoiBFS, VoronoiBFSStrict, BruteForce} {
				for ai, area := range areas {
					want, _, err := queryWith(single, m, area)
					if err != nil {
						t.Fatalf("%s %v: single: %v", name, m, err)
					}
					got, _, err := queryWith(sharded, m, area)
					if err != nil {
						t.Fatalf("%s %v: sharded: %v", name, m, err)
					}
					if !idsEqual(got, sortIDs(want)) {
						t.Errorf("%s %v area %d: %d ids, single %d", name, m, ai, len(got), len(want))
					}
					cnt, _, err := countOf(sharded, m, area)
					if err != nil {
						t.Fatalf("%s %v: count: %v", name, m, err)
					}
					if cnt != len(want) {
						t.Errorf("%s %v area %d: Count=%d want %d", name, m, ai, cnt, len(want))
					}
				}
				for ci, c := range circles {
					want, _, err := queryCircle(single, m, c)
					if err != nil {
						t.Fatalf("%s %v: single circle: %v", name, m, err)
					}
					got, _, err := queryCircle(sharded, m, c)
					if err != nil {
						t.Fatalf("%s %v: sharded circle: %v", name, m, err)
					}
					if !idsEqual(got, sortIDs(want)) {
						t.Errorf("%s %v circle %d diverged", name, m, ci)
					}
				}
			}

			// Default-method Query plus the batched entry points.
			for ai, area := range areas {
				want, _, err := queryWith(single, VoronoiBFS, area)
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := queryWith(sharded, VoronoiBFS, area)
				if err != nil {
					t.Fatal(err)
				}
				if !idsEqual(got, sortIDs(want)) {
					t.Errorf("%s: Query area %d diverged", name, ai)
				}
			}
			wantBatch, _, err := queryBatch(single, VoronoiBFS, areas)
			if err != nil {
				t.Fatal(err)
			}
			gotBatch, _, err := queryBatch(sharded, VoronoiBFS, areas)
			if err != nil {
				t.Fatal(err)
			}
			for i := range areas {
				if !idsEqual(gotBatch[i], sortIDs(wantBatch[i])) {
					t.Errorf("%s: QueryBatch %d diverged", name, i)
				}
			}
			regions := mixedBatch(rng, 18)
			wantReg, _, err := queryRegions(single, VoronoiBFS, regions)
			if err != nil {
				t.Fatal(err)
			}
			gotReg, _, err := queryRegions(sharded, VoronoiBFS, regions)
			if err != nil {
				t.Fatal(err)
			}
			for i := range regions {
				if !idsEqual(gotReg[i], sortIDs(wantReg[i])) {
					t.Errorf("%s: QueryRegions %d diverged", name, i)
				}
			}

			// KNearest, including k beyond one shard's population.
			for _, k := range []int{1, 5, n/len(shardedTestCounts) + 3} {
				for rep := 0; rep < 4; rep++ {
					q := Pt(rng.Float64(), rng.Float64())
					want, _, err := single.KNearest(context.Background(), q, k)
					if err != nil {
						t.Fatal(err)
					}
					got, _, err := sharded.KNearest(context.Background(), q, k)
					if err != nil {
						t.Fatal(err)
					}
					if !idsEqual(sortIDs(got), sortIDs(want)) {
						t.Errorf("%s: KNearest k=%d diverged", name, k)
					}
				}
			}
		}
	}
}

// TestShardedEngineStoreBacked pins the sharded + WithStore combination:
// every shard owns a private store, results stay oracle-exact, and the
// summed IO counters are live.
func TestShardedEngineStoreBacked(t *testing.T) {
	const n = 2000
	pts := UniformPoints(rand.New(rand.NewSource(64)), n, UnitSquare())
	single, err := NewEngine(pts, UnitSquare())
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedEngine(pts, UnitSquare(),
		WithShards(7),
		WithStore(StoreConfig{PageSize: 1024, PoolPages: 8, PayloadBytes: 32}),
		WithBufferPoolShards(4)) // every shard's private pool gets 4 lock shards
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := sharded.IOStats(); !ok {
		t.Fatal("store-backed sharded engine reports no IO stats")
	}
	sharded.ResetIOStats()

	rng := rand.New(rand.NewSource(65))
	for rep := 0; rep < 8; rep++ {
		area := RandomQueryPolygon(rng, 10, 0.03, UnitSquare())
		want, _, err := queryWith(single, VoronoiBFS, area)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := queryWith(sharded, VoronoiBFS, area)
		if err != nil {
			t.Fatal(err)
		}
		if !idsEqual(got, sortIDs(want)) {
			t.Fatalf("rep %d diverged", rep)
		}
		if len(want) > 0 && st.RecordsLoaded == 0 {
			t.Errorf("rep %d: no record loads recorded", rep)
		}
	}
	reads, hits, ok := sharded.IOStats()
	if !ok || reads+hits == 0 {
		t.Errorf("IO counters dead: reads=%d hits=%d ok=%v", reads, hits, ok)
	}
}

// TestShardedEngineIndexKinds runs one conformance pass per index kind, so
// sharding composes with every filtering index.
func TestShardedEngineIndexKinds(t *testing.T) {
	const n = 1500
	pts := ClusteredPoints(rand.New(rand.NewSource(66)), n, 5, 0.05, UnitSquare())
	single, err := NewEngine(pts, UnitSquare())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(67))
	area := RandomQueryPolygon(rng, 10, 0.04, UnitSquare())
	want, _, err := queryWith(single, VoronoiBFS, area)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []IndexKind{RTreeIndex, RStarIndex, KDTreeIndex, QuadtreeIndex, GridIndex} {
		sharded, err := NewShardedEngine(pts, UnitSquare(), WithShards(5), WithIndex(kind))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		got, _, err := queryWith(sharded, VoronoiBFS, area)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !idsEqual(got, sortIDs(want)) {
			t.Errorf("%v diverged", kind)
		}
	}
}

// TestShardedGlobalIDStability pins that the same query returns the
// identical id slice (values AND order) at every shard count, and that
// ids index the original points slice.
func TestShardedGlobalIDStability(t *testing.T) {
	const n = 2500
	pts := UniformPoints(rand.New(rand.NewSource(68)), n, UnitSquare())
	rng := rand.New(rand.NewSource(69))
	area := RandomQueryPolygon(rng, 10, 0.06, UnitSquare())

	var first []int64
	for _, shards := range shardedTestCounts {
		sharded, err := NewShardedEngine(pts, UnitSquare(), WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := queryWith(sharded, VoronoiBFS, area)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = got
		} else if !idsEqual(got, first) {
			t.Errorf("shards=%d: ids differ from shards=%d", shards, shardedTestCounts[0])
		}
		for _, id := range got {
			if sharded.Point(id) != pts[id] {
				t.Fatalf("shards=%d: Point(%d) does not match input slice", shards, id)
			}
		}
	}
}

// TestConcurrentShardedEngine hammers one sharded, store-backed engine
// from several goroutines. Run with -race.
func TestConcurrentShardedEngine(t *testing.T) {
	const n = 2000
	pts := UniformPoints(rand.New(rand.NewSource(70)), n, UnitSquare())
	sharded, err := NewShardedEngine(pts, UnitSquare(),
		WithShards(7),
		WithStore(StoreConfig{PageSize: 1024, PoolPages: 4, PayloadBytes: 16}))
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewEngine(pts, UnitSquare())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	areas := make([]Polygon, 6)
	oracle := make([][]int64, len(areas))
	for i := range areas {
		areas[i] = RandomQueryPolygon(rng, 10, 0.03, UnitSquare())
		ids, _, err := queryWith(single, BruteForce, areas[i])
		if err != nil {
			t.Fatal(err)
		}
		oracle[i] = sortIDs(ids)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				i := (worker + rep) % len(areas)
				if rep%2 == 0 {
					ids, _, err := queryWith(sharded, VoronoiBFS, areas[i])
					if err != nil {
						errs <- err
						return
					}
					if !idsEqual(ids, oracle[i]) {
						errs <- fmt.Errorf("worker %d rep %d: query diverged", worker, rep)
						return
					}
				} else {
					out, _, err := queryBatch(sharded, VoronoiBFS, areas[i:i+1])
					if err != nil {
						errs <- err
						return
					}
					if !idsEqual(out[0], oracle[i]) {
						errs <- fmt.Errorf("worker %d rep %d: batch diverged", worker, rep)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
