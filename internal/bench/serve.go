package bench

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	vaq "repro"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/workload"
)

// ServeConfig parameterizes the serving-layer load experiment: the
// dataset is split into contiguous chunks, each chunk served by an
// in-process HTTP server (the areaserve handler on a loopback listener),
// and a RemoteEngine dialed over the group replays a query stream at each
// concurrency level of the sweep.
type ServeConfig struct {
	// DataSize is the point count (default 1E5).
	DataSize int
	// Backends is the number of chunk servers (default 2).
	Backends int
	// Queries is the query-region pool size (default 64).
	Queries int
	// Requests is the request count per concurrency level (default 2000).
	Requests int
	// QuerySize is the query MBR area fraction (default 0.01).
	QuerySize float64
	// Vertices per query polygon (default 10).
	Vertices int
	// Conns lists the client concurrency levels to sweep — concurrent
	// in-flight requests, each on its own pooled connection (default 1,
	// 4, 16, 64).
	Conns []int
	// Seed makes runs reproducible.
	Seed int64
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.DataSize <= 0 {
		c.DataSize = 1e5
	}
	if c.Backends <= 0 {
		c.Backends = 2
	}
	if c.Queries <= 0 {
		c.Queries = 64
	}
	if c.Requests <= 0 {
		c.Requests = 2000
	}
	if c.QuerySize <= 0 || c.QuerySize > 1 {
		c.QuerySize = 0.01
	}
	if c.Vertices < 3 {
		c.Vertices = 10
	}
	if len(c.Conns) == 0 {
		c.Conns = []int{1, 4, 16, 64}
	}
	if c.Seed == 0 {
		c.Seed = 20200420
	}
	return c
}

// ServeRow is one concurrency level's measurement: the remote replay's
// throughput and latency percentiles, with the same stream replayed
// directly against a local engine at the same concurrency as the
// serving-overhead baseline.
type ServeRow struct {
	Conns    int
	QPS      float64
	P50Ns    float64
	P99Ns    float64
	LocalQPS float64
}

// RunServe measures the serving layer under concurrent load. Everything
// runs in-process over loopback HTTP, so the numbers capture codec +
// HTTP + fan-out overhead rather than network distance.
func RunServe(cfg ServeConfig) ([]ServeRow, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	bounds := vaq.UnitSquare()
	pts := workload.UniformPoints(rng, cfg.DataSize, bounds)
	ctx := context.Background()

	local, err := vaq.NewEngine(pts, bounds)
	if err != nil {
		return nil, fmt.Errorf("bench: building local engine (n=%d): %w", cfg.DataSize, err)
	}

	// One server per contiguous chunk — what `areaserve -shard i/n` runs.
	var servers []*http.Server
	defer func() {
		for _, srv := range servers {
			srv.Close()
		}
	}()
	urls := make([]string, cfg.Backends)
	for i := 0; i < cfg.Backends; i++ {
		start, end := len(pts)*i/cfg.Backends, len(pts)*(i+1)/cfg.Backends
		eng, err := vaq.NewEngine(pts[start:end], bounds)
		if err != nil {
			return nil, fmt.Errorf("bench: building chunk engine %d: %w", i, err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("bench: listen: %w", err)
		}
		srv := &http.Server{Handler: serve.NewHandler(eng, serve.Config{
			IDOffset: int64(start),
			Flavor:   "static",
		})}
		go srv.Serve(ln)
		servers = append(servers, srv)
		urls[i] = "http://" + ln.Addr().String()
	}

	maxConns := 0
	for _, c := range cfg.Conns {
		if c > maxConns {
			maxConns = c
		}
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        maxConns * cfg.Backends,
		MaxIdleConnsPerHost: maxConns,
	}}
	remote, err := vaq.DialRemote(ctx, urls, vaq.WithRemoteClient(client))
	if err != nil {
		return nil, fmt.Errorf("bench: dialing backends: %w", err)
	}

	regions := make([]vaq.Region, cfg.Queries)
	for i := range regions {
		regions[i] = vaq.PolygonRegion(workload.RandomPolygon(rng, workload.PolygonConfig{
			Vertices:  cfg.Vertices,
			QuerySize: cfg.QuerySize,
		}, bounds))
	}

	// Warm both paths (indexes, Voronoi seeds, HTTP connections) and pin
	// per-region counts for on-the-fly verification.
	counts := make([]int, len(regions))
	for i, region := range regions {
		ids, err := local.Query(ctx, region)
		if err != nil {
			return nil, fmt.Errorf("bench: warmup region %d: %w", i, err)
		}
		counts[i] = len(ids)
		got, err := remote.Query(ctx, region)
		if err != nil {
			return nil, fmt.Errorf("bench: warmup region %d (remote): %w", i, err)
		}
		if len(got) != len(ids) {
			return nil, fmt.Errorf("bench: region %d: remote returned %d ids, want %d", i, len(got), len(ids))
		}
	}

	// replay issues cfg.Requests queries from conns workers against eng,
	// returning wall-clock throughput and the per-request latency
	// distribution (the shared histogram is concurrency-safe).
	hist := obs.NewHistogram()
	replay := func(eng vaq.Querier, conns int) (float64, obs.HistogramSnapshot, error) {
		hist.Reset()
		next := make(chan int)
		go func() {
			for i := 0; i < cfg.Requests; i++ {
				next <- i
			}
			close(next)
		}()
		var wg sync.WaitGroup
		errs := make([]error, conns)
		start := time.Now()
		for w := 0; w < conns; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				buf := make([]int64, 0, 4096)
				for i := range next {
					ri := i % len(regions)
					t0 := time.Now()
					ids, err := eng.Query(ctx, regions[ri], vaq.Reuse(buf))
					if err != nil {
						errs[w] = err
						return
					}
					hist.Observe(time.Since(t0))
					if len(ids) != counts[ri] {
						errs[w] = fmt.Errorf("region %d returned %d ids, want %d", ri, len(ids), counts[ri])
						return
					}
					buf = ids
				}
			}()
		}
		wg.Wait()
		wall := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return 0, obs.HistogramSnapshot{}, err
			}
		}
		return float64(cfg.Requests) / wall.Seconds(), hist.Snapshot(), nil
	}

	rows := make([]ServeRow, 0, len(cfg.Conns))
	for _, conns := range cfg.Conns {
		qps, lat, err := replay(remote, conns)
		if err != nil {
			return nil, fmt.Errorf("bench: remote replay (conns=%d): %w", conns, err)
		}
		localQPS, _, err := replay(local, conns)
		if err != nil {
			return nil, fmt.Errorf("bench: local replay (conns=%d): %w", conns, err)
		}
		rows = append(rows, ServeRow{
			Conns:    conns,
			QPS:      qps,
			P50Ns:    lat.Quantile(0.50),
			P99Ns:    lat.Quantile(0.99),
			LocalQPS: localQPS,
		})
	}
	return rows, nil
}

// ServeFamilies converts the sweep into snapshot families
// (serve/conns=N), one per concurrency level, with latency percentiles
// and the local-baseline throughput in Extra.
func ServeFamilies(cfg ServeConfig, rows []ServeRow) []Family {
	cfg = cfg.withDefaults()
	fams := make([]Family, 0, len(rows))
	for _, r := range rows {
		fams = append(fams, Family{
			Name:          fmt.Sprintf("serve/conns=%d", r.Conns),
			Iters:         cfg.Requests,
			Ops:           1,
			NsPerOp:       1e9 / r.QPS,
			QueriesPerSec: r.QPS,
			Extra: map[string]float64{
				"p50_ns":    r.P50Ns,
				"p99_ns":    r.P99Ns,
				"local_qps": r.LocalQPS,
			},
		})
	}
	return fams
}

// ServeSnapshot wraps a sweep in a trajectory Snapshot (schema
// areabench/v1) so `areabench -exp serve -json` emits a file -diff can
// compare against other trajectory points.
func ServeSnapshot(cfg ServeConfig, rows []ServeRow) *Snapshot {
	cfg = cfg.withDefaults()
	return &Snapshot{
		Schema:     "areabench/v1",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		Config: SnapshotConfig{
			DataSize:  cfg.DataSize,
			Queries:   cfg.Queries,
			QuerySize: cfg.QuerySize,
			Vertices:  cfg.Vertices,
			Seed:      cfg.Seed,
		},
		Families: ServeFamilies(cfg, rows),
	}
}

// FormatServe renders the sweep as an aligned text table.
func FormatServe(rows []ServeRow) string {
	var b strings.Builder
	b.WriteString("Conns | Remote q/s | p50 | p99 | Local q/s | Overhead\n")
	b.WriteString(strings.Repeat("-", 62) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%5d | %10.0f | %7s | %7s | %9.0f | %7.2fx\n",
			r.Conns, r.QPS,
			time.Duration(r.P50Ns).Round(time.Microsecond),
			time.Duration(r.P99Ns).Round(time.Microsecond),
			r.LocalQPS, r.LocalQPS/r.QPS)
	}
	return b.String()
}
