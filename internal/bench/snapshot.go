package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	vaq "repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// SnapshotConfig parameterizes RunSnapshot, the machine-readable
// perf-trajectory emitter behind `areabench -exp all -json`.
type SnapshotConfig struct {
	// DataSize is the point count every family runs over (default 1E5).
	DataSize int
	// Queries is the number of distinct query regions (default 64).
	Queries int
	// QuerySize is the query MBR area fraction (default 0.01).
	QuerySize float64
	// Vertices per query polygon (default 10).
	Vertices int
	// Shards is the sharded family's shard count (default 8).
	Shards int
	// MinTime is the minimum measured time per family (default 200ms);
	// iterations double until a run lasts at least this long.
	MinTime time.Duration
	// Store backs the store family's records (default: 4KiB pages, 256
	// pool pages, 64-byte payloads).
	Store *core.StoreConfig
	// Seed makes runs reproducible.
	Seed int64
	// Metrics, when non-nil, instruments every engine the snapshot builds
	// (WithMetrics) so a concurrent scraper — areabench's -metricsaddr —
	// can watch the run live. Measured numbers then include the ~2-3%
	// instrumentation overhead; committed trajectory snapshots should
	// leave it nil.
	Metrics *vaq.MetricsRegistry `json:"-"`
}

func (c SnapshotConfig) withDefaults() SnapshotConfig {
	if c.DataSize <= 0 {
		c.DataSize = 1e5
	}
	if c.Queries <= 0 {
		c.Queries = 64
	}
	if c.QuerySize <= 0 || c.QuerySize > 1 {
		c.QuerySize = 0.01
	}
	if c.Vertices < 3 {
		c.Vertices = 10
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.MinTime <= 0 {
		c.MinTime = 200 * time.Millisecond
	}
	if c.Store == nil {
		c.Store = &core.StoreConfig{PageSize: 4096, PoolPages: 256, PayloadBytes: 64}
	}
	if c.Seed == 0 {
		c.Seed = 20200420
	}
	return c
}

// Family is one benchmark family's measurement in a snapshot. Ops is the
// number of queries one iteration executes (1 for single-query families,
// the batch length for batch families); QueriesPerSec already accounts
// for it.
type Family struct {
	Name           string             `json:"name"`
	Iters          int                `json:"iters"`
	Ops            int                `json:"ops_per_iter"`
	NsPerOp        float64            `json:"ns_per_op"`
	QueriesPerSec  float64            `json:"queries_per_sec"`
	AllocsPerOp    float64            `json:"allocs_per_op"`
	PageReadsPerOp float64            `json:"page_reads_per_op,omitempty"`
	Extra          map[string]float64 `json:"extra,omitempty"`
}

// Snapshot is one machine-readable point of the repository's performance
// trajectory — the payload of a committed BENCH_<n>.json file. Fields are
// stable under the schema tag; consumers should reject unknown schemas.
type Snapshot struct {
	Schema     string         `json:"schema"` // "areabench/v1"
	GoVersion  string         `json:"go_version"`
	GoMaxProcs int            `json:"gomaxprocs"`
	CreatedAt  string         `json:"created_at"` // RFC 3339
	Config     SnapshotConfig `json:"config"`
	Families   []Family       `json:"families"`
}

// measure runs op repeatedly, doubling the iteration count until one run
// lasts at least minTime, and reports the final run's per-op duration,
// heap-allocation count (Mallocs delta, the allocs/op of `go test
// -bench`), and per-op latency distribution (reset per round, so the
// returned snapshot covers exactly the final timed run).
func measure(minTime time.Duration, op func() error) (iters int, nsPerOp, allocsPerOp float64, lat obs.HistogramSnapshot, err error) {
	var ms runtime.MemStats
	h := obs.NewHistogram()
	for n := 1; ; n *= 2 {
		h.Reset()
		runtime.GC()
		runtime.ReadMemStats(&ms)
		mallocs := ms.Mallocs
		start := time.Now()
		for i := 0; i < n; i++ {
			t0 := time.Now()
			if err := op(); err != nil {
				return 0, 0, 0, obs.HistogramSnapshot{}, err
			}
			h.Observe(time.Since(t0))
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms)
		if elapsed >= minTime || n >= 1<<30 {
			return n, float64(elapsed.Nanoseconds()) / float64(n),
				float64(ms.Mallocs-mallocs) / float64(n), h.Snapshot(), nil
		}
	}
}

// RunSnapshot builds the standard engines once and measures every
// benchmark family, returning the trajectory point. Families:
//
//	query/voronoi, query/traditional — single area query on the static
//	    engine with the paper's two methods
//	queryall/parallel — a parallel batch of all regions
//	sharded/query — single query on a Shards-way sharded engine
//	store/query — single query on a store-backed engine (page reads/op)
//	dynamic/query — single query on a dynamically built engine
//	hotregion/uncached, hotregion/cached — the zipfian hot-region stream
//	    (s=1.1) without and with the result cache (hit rate in extra)
//	serve/conns=1, serve/conns=16 — remote queries through the serving
//	    layer (two in-process chunk servers, loopback HTTP) at two client
//	    concurrency levels (local-baseline q/s in extra)
func RunSnapshot(cfg SnapshotConfig) (*Snapshot, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	bounds := vaq.UnitSquare()
	pts := workload.UniformPoints(rng, cfg.DataSize, bounds)
	ctx := context.Background()

	regions := make([]vaq.Region, cfg.Queries)
	for i := range regions {
		regions[i] = vaq.PolygonRegion(workload.RandomPolygon(rng, workload.PolygonConfig{
			Vertices:  cfg.Vertices,
			QuerySize: cfg.QuerySize,
		}, bounds))
	}

	snap := &Snapshot{
		Schema:     "areabench/v1",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		Config:     cfg,
	}
	add := func(name string, ops int, extra map[string]float64, op func() error) error {
		iters, nsPerOp, allocsPerOp, lat, err := measure(cfg.MinTime, op)
		if err != nil {
			return fmt.Errorf("bench: family %s: %w", name, err)
		}
		// Per-iteration latency percentiles ride along with every family
		// (for batch families the iteration is the whole batch).
		merged := map[string]float64{
			"p50_ns": lat.Quantile(0.50),
			"p99_ns": lat.Quantile(0.99),
		}
		for k, v := range extra {
			merged[k] = v
		}
		snap.Families = append(snap.Families, Family{
			Name:          name,
			Iters:         iters,
			Ops:           ops,
			NsPerOp:       nsPerOp,
			QueriesPerSec: float64(ops) * 1e9 / nsPerOp,
			AllocsPerOp:   allocsPerOp,
			Extra:         merged,
		})
		return nil
	}
	// Cycling region pointer shared by the single-query families.
	qi := 0
	nextRegion := func() vaq.Region {
		r := regions[qi%len(regions)]
		qi++
		return r
	}
	buf := make([]int64, 0, 4096)
	singleQuery := func(eng vaq.Querier, m vaq.Method) func() error {
		return func() error {
			_, err := eng.Query(ctx, nextRegion(), vaq.UsingMethod(m), vaq.Reuse(buf))
			return err
		}
	}

	// withMetrics appends the shared registry when the run is observed.
	withMetrics := func(opts ...vaq.Option) []vaq.Option {
		if cfg.Metrics != nil {
			opts = append(opts, vaq.WithMetrics(cfg.Metrics))
		}
		return opts
	}

	// Static engine: per-method single queries and the parallel batch.
	eng, err := vaq.NewEngine(pts, bounds, withMetrics()...)
	if err != nil {
		return nil, fmt.Errorf("bench: building engine (n=%d): %w", cfg.DataSize, err)
	}
	if err := add("query/voronoi", 1, nil, singleQuery(eng, vaq.VoronoiBFS)); err != nil {
		return nil, err
	}
	if err := add("query/traditional", 1, nil, singleQuery(eng, vaq.Traditional)); err != nil {
		return nil, err
	}
	if err := add("queryall/parallel", len(regions), nil, func() error {
		_, err := eng.QueryAll(ctx, regions)
		return err
	}); err != nil {
		return nil, err
	}

	// Sharded scatter-gather.
	sharded, err := vaq.NewShardedEngine(pts, bounds, withMetrics(vaq.WithShards(cfg.Shards))...)
	if err != nil {
		return nil, fmt.Errorf("bench: building sharded engine: %w", err)
	}
	if err := add("sharded/query", 1, nil, singleQuery(sharded, vaq.VoronoiBFS)); err != nil {
		return nil, err
	}

	// Store-backed engine: page reads per op from the IO counters.
	stored, err := vaq.NewEngine(pts, bounds, withMetrics(vaq.WithStore(*cfg.Store))...)
	if err != nil {
		return nil, fmt.Errorf("bench: building store engine: %w", err)
	}
	stored.ResetIOStats()
	if err := add("store/query", 1, nil, singleQuery(stored, vaq.VoronoiBFS)); err != nil {
		return nil, err
	}
	if reads, _, ok := stored.IOStats(); ok {
		// The IO counters span every doubling round of measure (1+2+...+
		// Iters = 2*Iters-1 queries), not just the final timed one.
		f := &snap.Families[len(snap.Families)-1]
		f.PageReadsPerOp = float64(reads) / float64(2*f.Iters-1)
	}

	// Dynamically built engine (insertion cost is construction, not
	// measured here; the dataset is capped to keep snapshot runs short).
	dynSize := cfg.DataSize
	if dynSize > 20000 {
		dynSize = 20000
	}
	dyn := vaq.NewDynamicEngine(bounds, withMetrics()...)
	for _, p := range pts[:dynSize] {
		if _, _, err := dyn.Insert(p); err != nil {
			return nil, fmt.Errorf("bench: dynamic insert: %w", err)
		}
	}
	if err := add("dynamic/query", 1, nil, singleQuery(dyn, vaq.VoronoiBFS)); err != nil {
		return nil, err
	}

	// Hot-region traffic at the acceptance skew, uncached vs cached.
	hot, err := RunHotRegion(HotRegionConfig{
		DataSize:   cfg.DataSize,
		Queries:    512,
		Vertices:   cfg.Vertices,
		QuerySize:  cfg.QuerySize,
		Skews:      []float64{1.1},
		CacheSizes: []int{256},
		Seed:       cfg.Seed,
		Metrics:    cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	r := hot[0]
	snap.Families = append(snap.Families,
		Family{
			Name: "hotregion/uncached", Iters: 1, Ops: 512,
			NsPerOp:       1e9 / r.UncachedQPS,
			QueriesPerSec: r.UncachedQPS,
			Extra: map[string]float64{
				"p50_ns": r.UncachedP50Ns,
				"p99_ns": r.UncachedP99Ns,
			},
		},
		Family{
			Name: "hotregion/cached", Iters: 1, Ops: 512,
			NsPerOp:       1e9 / r.CachedQPS,
			QueriesPerSec: r.CachedQPS,
			Extra: map[string]float64{
				"hit_rate": r.HitRate,
				"speedup":  r.Speedup,
				"p50_ns":   r.CachedP50Ns,
				"p99_ns":   r.CachedP99Ns,
			},
		},
	)

	// Serving layer at reduced scale: two in-process chunk servers over
	// loopback HTTP, one low- and one high-concurrency point of the sweep.
	scfg := ServeConfig{
		DataSize:  cfg.DataSize,
		Queries:   cfg.Queries,
		Requests:  512,
		QuerySize: cfg.QuerySize,
		Vertices:  cfg.Vertices,
		Conns:     []int{1, 16},
		Seed:      cfg.Seed,
	}
	serveRows, err := RunServe(scfg)
	if err != nil {
		return nil, err
	}
	snap.Families = append(snap.Families, ServeFamilies(scfg, serveRows)...)
	return snap, nil
}
