package bench

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fam(name string, ns, qps, allocs, p99 float64) Family {
	return Family{Name: name, NsPerOp: ns, QueriesPerSec: qps, AllocsPerOp: allocs,
		Extra: map[string]float64{"p99_ns": p99}}
}

func TestDiffSnapshotsFlagsRegressions(t *testing.T) {
	oldSnap := &Snapshot{Schema: "areabench/v1", Families: []Family{
		fam("query/voronoi", 1000, 1e6, 10, 2000),
		fam("sharded/query", 5000, 2e5, 100, 9000),
		fam("gone/family", 1, 1, 1, 1),
	}}
	newSnap := &Snapshot{Schema: "areabench/v1", Families: []Family{
		// 30% slower queries/s and ns/op: regression on both.
		fam("query/voronoi", 1300, 0.7e6, 10, 2100),
		// Faster and leaner: improvement, never a regression.
		fam("sharded/query", 2500, 4e5, 0, 4000),
		fam("new/family", 1, 1, 1, 1),
	}}
	d := DiffSnapshots(oldSnap, newSnap, 0.10)
	regs := d.Regressions()
	if len(regs) != 2 {
		t.Fatalf("got %d regressions (%v), want 2", len(regs), regs)
	}
	for _, r := range regs {
		if r.Family != "query/voronoi" {
			t.Errorf("unexpected regression in %s/%s", r.Family, r.Metric)
		}
	}
	if len(d.OnlyOld) != 1 || d.OnlyOld[0] != "gone/family" {
		t.Errorf("OnlyOld = %v", d.OnlyOld)
	}
	if len(d.OnlyNew) != 1 || d.OnlyNew[0] != "new/family" {
		t.Errorf("OnlyNew = %v", d.OnlyNew)
	}
	report := FormatDiff(d)
	if !strings.Contains(report, "REGRESSION") || !strings.Contains(report, "improved") {
		t.Errorf("report missing flags:\n%s", report)
	}
}

func TestDiffZeroBaselineAllocs(t *testing.T) {
	oldSnap := &Snapshot{Schema: "areabench/v1", Families: []Family{fam("f", 100, 1e6, 0, 200)}}
	newSnap := &Snapshot{Schema: "areabench/v1", Families: []Family{fam("f", 100, 1e6, 5, 200)}}
	d := DiffSnapshots(oldSnap, newSnap, 0.10)
	var found bool
	for _, r := range d.Rows {
		if r.Metric == "allocs/op" {
			found = true
			if !r.Regression || !math.IsInf(r.Change, 1) {
				t.Errorf("0 -> 5 allocs/op: %+v, want +Inf regression", r)
			}
		}
	}
	if !found {
		t.Fatal("no allocs/op row")
	}
}

func TestLoadSnapshotValidatesSchema(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	snap := &Snapshot{Schema: "areabench/v1", Families: []Family{fam("f", 1, 1, 1, 1)}}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Families) != 1 || loaded.Families[0].Name != "f" {
		t.Fatalf("round trip lost data: %+v", loaded)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(bad); err == nil {
		t.Fatal("unknown schema accepted")
	}
	if _, err := LoadSnapshot(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
