package bench

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	vaq "repro"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// HotRegionConfig parameterizes the skewed-traffic experiment: one
// dataset, a pool of hot query regions, and a zipfian query stream over
// the pool replayed against an uncached engine and a result-cached one,
// sweeping skew × cache size.
type HotRegionConfig struct {
	// DataSize is the point count (default 1E5).
	DataSize int
	// Queries is the stream length per configuration (default 2000).
	Queries int
	// Regions is the hot-region pool size (default 64).
	Regions int
	// Clusters is the number of hot spots the pool gathers around
	// (default 4).
	Clusters int
	// Vertices per query polygon (default 10).
	Vertices int
	// QuerySize is the query MBR area fraction (default 0.01).
	QuerySize float64
	// Skews lists the zipfian s-parameters to sweep (default 0.8, 1.1,
	// 1.4; values at or below 1 clamp just above 1, see
	// workload.ZipfPicker).
	Skews []float64
	// CacheSizes lists the result-cache capacities to sweep (default 8,
	// 64, 256 — below, at, and above the default pool size).
	CacheSizes []int
	// Seed makes runs reproducible.
	Seed int64
	// Store, when non-nil, backs both engines' records with a paged store
	// so the replay exercises the buffer pool (page reads, hits,
	// evictions) instead of staying in-memory. areabench sets it in
	// -metricsaddr mode so the scraped registry shows live buffer-pool
	// counters.
	Store *core.StoreConfig
	// Metrics, when non-nil, instruments both engines (WithMetrics) for
	// live scraping. Measured numbers then include the instrumentation
	// overhead; leave it nil for committed trajectory snapshots.
	Metrics *vaq.MetricsRegistry `json:"-"`
}

func (c HotRegionConfig) withDefaults() HotRegionConfig {
	if c.DataSize <= 0 {
		c.DataSize = 1e5
	}
	if c.Queries <= 0 {
		c.Queries = 2000
	}
	if c.Regions <= 0 {
		c.Regions = 64
	}
	if c.Clusters <= 0 {
		c.Clusters = 4
	}
	if c.Vertices < 3 {
		c.Vertices = 10
	}
	if c.QuerySize <= 0 || c.QuerySize > 1 {
		c.QuerySize = 0.01
	}
	if len(c.Skews) == 0 {
		c.Skews = []float64{0.8, 1.1, 1.4}
	}
	if len(c.CacheSizes) == 0 {
		c.CacheSizes = []int{8, 64, 256}
	}
	if c.Seed == 0 {
		c.Seed = 20200420
	}
	return c
}

// HotRegionRow is one (skew, cache size) measurement: the same zipfian
// query stream replayed without and with the result cache.
type HotRegionRow struct {
	Skew        float64
	CacheSize   int
	UncachedQPS float64
	CachedQPS   float64
	Speedup     float64 // CachedQPS / UncachedQPS
	HitRate     float64
	// Per-query latency percentiles of each replay, in nanoseconds.
	UncachedP50Ns float64
	UncachedP99Ns float64
	CachedP50Ns   float64
	CachedP99Ns   float64
}

// RunHotRegion measures result-cache effectiveness under zipfian
// hot-region traffic. Per skew, one query stream is drawn and replayed on
// an uncached engine (the per-skew baseline) and, per cache size, on a
// cached engine (results verified identical against the baseline on the
// fly by count).
func RunHotRegion(cfg HotRegionConfig) ([]HotRegionRow, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	bounds := vaq.UnitSquare()
	pts := workload.UniformPoints(rng, cfg.DataSize, bounds)

	var baseOpts []vaq.Option
	if cfg.Store != nil {
		baseOpts = append(baseOpts, vaq.WithStore(*cfg.Store))
	}
	if cfg.Metrics != nil {
		baseOpts = append(baseOpts, vaq.WithMetrics(cfg.Metrics))
	}
	uncached, err := vaq.NewEngine(pts, bounds, baseOpts...)
	if err != nil {
		return nil, fmt.Errorf("bench: building uncached engine (n=%d): %w", cfg.DataSize, err)
	}
	rc := vaq.NewResultCache(0) // sized per row below
	cached, err := vaq.NewEngine(pts, bounds, append(baseOpts, vaq.WithResultCache(rc))...)
	if err != nil {
		return nil, fmt.Errorf("bench: building cached engine: %w", err)
	}

	pool := workload.HotRegionPool(rng, workload.HotRegionConfig{
		Regions:   cfg.Regions,
		Clusters:  cfg.Clusters,
		Vertices:  cfg.Vertices,
		QuerySize: cfg.QuerySize,
	}, bounds)
	regions := make([]vaq.Region, len(pool))
	for i, pg := range pool {
		regions[i] = vaq.PolygonRegion(pg)
	}

	// Warm both engines (and pin per-region counts for verification)
	// outside the timed loops.
	ctx := context.Background()
	counts := make([]int, len(regions))
	for i, region := range regions {
		ids, err := uncached.Query(ctx, region)
		if err != nil {
			return nil, fmt.Errorf("bench: warmup region %d: %w", i, err)
		}
		counts[i] = len(ids)
		if _, err := cached.Query(ctx, region); err != nil {
			return nil, fmt.Errorf("bench: warmup region %d (cached): %w", i, err)
		}
	}

	var rows []HotRegionRow
	buf := make([]int64, 0, 4096)
	lat := obs.NewHistogram()
	replay := func(eng *vaq.Engine, stream []int) (time.Duration, obs.HistogramSnapshot, error) {
		lat.Reset()
		start := time.Now()
		for _, ri := range stream {
			t0 := time.Now()
			ids, err := eng.Query(ctx, regions[ri], vaq.Reuse(buf))
			if err != nil {
				return 0, obs.HistogramSnapshot{}, err
			}
			lat.Observe(time.Since(t0))
			if len(ids) != counts[ri] {
				return 0, obs.HistogramSnapshot{}, fmt.Errorf("region %d returned %d ids, want %d", ri, len(ids), counts[ri])
			}
		}
		return time.Since(start), lat.Snapshot(), nil
	}

	for _, skew := range cfg.Skews {
		// One stream per skew, shared by the baseline and every cache size.
		pick := workload.ZipfPicker(rand.New(rand.NewSource(cfg.Seed+int64(skew*1000))), skew, len(regions))
		stream := make([]int, cfg.Queries)
		for i := range stream {
			stream[i] = pick()
		}

		baseWall, baseLat, err := replay(uncached, stream)
		if err != nil {
			return nil, fmt.Errorf("bench: uncached replay (s=%.2f): %w", skew, err)
		}
		baseQPS := float64(cfg.Queries) / baseWall.Seconds()

		for _, size := range cfg.CacheSizes {
			rc.Resize(size)
			rc.Reset()
			wall, cachedLat, err := replay(cached, stream)
			if err != nil {
				return nil, fmt.Errorf("bench: cached replay (s=%.2f, cache=%d): %w", skew, size, err)
			}
			qps := float64(cfg.Queries) / wall.Seconds()
			rows = append(rows, HotRegionRow{
				Skew:          skew,
				CacheSize:     size,
				UncachedQPS:   baseQPS,
				CachedQPS:     qps,
				Speedup:       qps / baseQPS,
				HitRate:       rc.Stats().HitRate(),
				UncachedP50Ns: baseLat.Quantile(0.50),
				UncachedP99Ns: baseLat.Quantile(0.99),
				CachedP50Ns:   cachedLat.Quantile(0.50),
				CachedP99Ns:   cachedLat.Quantile(0.99),
			})
		}
	}
	return rows, nil
}

// FormatHotRegion renders the sweep as an aligned text table.
func FormatHotRegion(rows []HotRegionRow) string {
	var b strings.Builder
	b.WriteString("Zipf s | Cache | Uncached q/s | Cached q/s | Speedup | Hit rate\n")
	b.WriteString(strings.Repeat("-", 66) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6.2f | %5d | %12.0f | %10.0f | %6.2fx | %7.1f%%\n",
			r.Skew, r.CacheSize, r.UncachedQPS, r.CachedQPS, r.Speedup, r.HitRate*100)
	}
	return b.String()
}
