package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

// smallConfig keeps harness tests fast while exercising the full pipeline.
func smallConfig() Config {
	return Config{
		DataSizes:      []int{2000, 4000},
		QuerySizes:     []float64{0.01, 0.04},
		FixedQuerySize: 0.01,
		FixedDataSize:  3000,
		Repeats:        5,
		Vertices:       10,
		Seed:           7,
	}
}

func TestRunDataSizeSweep(t *testing.T) {
	var progress bytes.Buffer
	cfg := smallConfig()
	cfg.Progress = &progress
	rows, err := RunDataSizeSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.DataSize != cfg.DataSizes[i] {
			t.Errorf("row %d data size = %d", i, r.DataSize)
		}
		if r.QuerySize != cfg.FixedQuerySize {
			t.Errorf("row %d query size = %v", i, r.QuerySize)
		}
		if r.ResultSize <= 0 {
			t.Errorf("row %d: no results", i)
		}
		if r.Traditional.Candidates < r.ResultSize {
			t.Errorf("row %d: trad candidates %v < result %v", i, r.Traditional.Candidates, r.ResultSize)
		}
		if r.Voronoi.Candidates < r.ResultSize {
			t.Errorf("row %d: vor candidates %v < result %v", i, r.Voronoi.Candidates, r.ResultSize)
		}
	}
	// Result sizes scale with data size (2000 -> 4000 doubles density).
	if rows[1].ResultSize < rows[0].ResultSize {
		t.Errorf("result size should grow with data size: %v then %v",
			rows[0].ResultSize, rows[1].ResultSize)
	}
	if progress.Len() == 0 {
		t.Error("no progress output")
	}
}

func TestRunQuerySizeSweep(t *testing.T) {
	rows, err := RunQuerySizeSweep(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Result sizes scale with query size.
	if rows[1].ResultSize <= rows[0].ResultSize {
		t.Errorf("result size should grow with query size: %v then %v",
			rows[0].ResultSize, rows[1].ResultSize)
	}
	for i, r := range rows {
		if r.DataSize != 3000 {
			t.Errorf("row %d data size = %d, want fixed 3000", i, r.DataSize)
		}
	}
}

func TestVoronoiBeatsTraditionalOnCandidates(t *testing.T) {
	// The reproduction's core claim, at harness level: aggregate candidate
	// savings are positive and substantial.
	cfg := smallConfig()
	cfg.DataSizes = []int{20000}
	cfg.Repeats = 10
	rows, err := RunDataSizeSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if s := r.CandidateSavings(); s < 0.2 {
		t.Errorf("candidate savings = %.1f%%, expected the paper's ~35-45%% band (wide tolerance)", s*100)
	}
	if r.Voronoi.Redundant >= r.Traditional.Redundant {
		t.Errorf("voronoi redundant %v >= traditional %v", r.Voronoi.Redundant, r.Traditional.Redundant)
	}
}

func TestStoreBackedSweepCountsIO(t *testing.T) {
	cfg := smallConfig()
	cfg.DataSizes = []int{3000}
	cfg.Store = &core.StoreConfig{PageSize: 1024, PoolPages: 16, PayloadBytes: 32}
	rows, err := RunDataSizeSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Traditional.PageReads == 0 && r.Voronoi.PageReads == 0 {
		t.Error("store-backed run should report page reads")
	}
}

func TestPaperConfigShape(t *testing.T) {
	cfg := PaperConfig(1000)
	if len(cfg.DataSizes) != 10 || cfg.DataSizes[0] != 1e5 || cfg.DataSizes[9] != 1e6 {
		t.Errorf("data sizes = %v", cfg.DataSizes)
	}
	if len(cfg.QuerySizes) != 6 || cfg.QuerySizes[0] != 0.01 || cfg.QuerySizes[5] != 0.32 {
		t.Errorf("query sizes = %v", cfg.QuerySizes)
	}
	if cfg.Repeats != 1000 || cfg.Vertices != 10 || cfg.FixedQuerySize != 0.01 || cfg.FixedDataSize != 1e5 {
		t.Errorf("parameters = %+v", cfg)
	}
}

func TestFormatTable(t *testing.T) {
	rows, err := RunQuerySizeSweep(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	table := FormatTable(rows, true)
	if !strings.Contains(table, "Query size") || !strings.Contains(table, "%") {
		t.Errorf("table format unexpected:\n%s", table)
	}
	if got := strings.Count(table, "\n"); got != len(rows)+2 {
		t.Errorf("table has %d lines, want %d", got, len(rows)+2)
	}
	table2 := FormatTable(rows, false)
	if !strings.Contains(table2, "Data size") {
		t.Errorf("data-size table format unexpected:\n%s", table2)
	}
}

func TestFormatFigure(t *testing.T) {
	rows, err := RunQuerySizeSweep(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []FigureSeries{Fig4TimeVsDataSize, Fig5RedundantVsDataSize, Fig6TimeVsQuerySize, Fig7RedundantVsQuerySize} {
		out := FormatFigure(rows, f)
		if !strings.Contains(out, f.String()) {
			t.Errorf("figure header missing for %v:\n%s", f, out)
		}
		if strings.Count(out, "\n") != len(rows)+2 {
			t.Errorf("figure %v has wrong line count:\n%s", f, out)
		}
	}
	if got := FigureSeries(99).String(); got != "figure(99)" {
		t.Errorf("unknown figure String = %q", got)
	}
}

func TestMismatchesTrackedAndRareAtScale(t *testing.T) {
	// measure() compares the two methods' result sizes on every repeat and
	// reports divergences (the published expansion rule is heuristic; see
	// DESIGN.md §5.3). In a paper-like regime — enough points that query
	// areas hold hundreds of results — mismatches must be (near) zero.
	cfg := smallConfig()
	cfg.DataSizes = []int{30000}
	cfg.FixedQuerySize = 0.01
	cfg.Repeats = 40
	rows, err := RunDataSizeSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Mismatches > 0 {
		t.Errorf("at paper-like density the published rule diverged on %d/%d repeats",
			rows[0].Mismatches, cfg.Repeats)
	}
}
