package bench

import (
	"repro/internal/core"
	"strings"
	"testing"
)

func TestRunThroughputSmallSweep(t *testing.T) {
	rows, err := RunThroughput(ThroughputConfig{
		DataSize:    2000,
		Queries:     24,
		Parallelism: []int{1, 4},
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Workers != 1 || rows[1].Workers != 4 {
		t.Fatalf("worker columns wrong: %+v", rows)
	}
	for _, r := range rows {
		if r.Wall <= 0 || r.QPS <= 0 || r.Speedup <= 0 {
			t.Errorf("implausible row: %+v", r)
		}
	}
	if rows[0].Speedup != 1 {
		t.Errorf("baseline speedup = %v, want 1", rows[0].Speedup)
	}

	table := FormatThroughput(rows)
	if !strings.Contains(table, "Workers") || !strings.Contains(table, "Speedup") {
		t.Errorf("table missing headers:\n%s", table)
	}
	if len(strings.Split(strings.TrimSpace(table), "\n")) != 4 {
		t.Errorf("table should have 2 header + 2 data lines:\n%s", table)
	}
}

func TestRunThroughputDefaultsApplied(t *testing.T) {
	cfg := ThroughputConfig{}.withDefaults()
	if cfg.DataSize != 1e5 || cfg.Queries != 512 || cfg.QuerySize != 0.01 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	if cfg.Vertices != 10 || len(cfg.Parallelism) == 0 || cfg.Seed == 0 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	// The zero Method (Traditional) must be replaced by the paper's method,
	// or the "Voronoi method" table headers lie.
	if cfg.Method != core.VoronoiBFS {
		t.Errorf("Method default = %v, want %v", cfg.Method, core.VoronoiBFS)
	}
	if kept := (ThroughputConfig{Method: core.VoronoiBFSStrict}).withDefaults(); kept.Method != core.VoronoiBFSStrict {
		t.Errorf("explicit Method overridden: %v", kept.Method)
	}
}

func TestRunShardedThroughputSmallSweep(t *testing.T) {
	rows, err := RunShardedThroughput(ShardedThroughputConfig{
		DataSize: 2000,
		Queries:  24,
		Shards:   []int{1, 4},
		Workers:  4,
		Seed:     7,
		Store:    &core.StoreConfig{PageSize: 1024, PoolPages: 8, PayloadBytes: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want baseline + 2 shard counts", len(rows))
	}
	if rows[0].Shards != 0 || rows[0].Speedup != 1 {
		t.Fatalf("baseline row wrong: %+v", rows[0])
	}
	if rows[1].Shards != 1 || rows[2].Shards != 4 {
		t.Fatalf("shard columns wrong: %+v", rows)
	}
	for _, r := range rows {
		if r.Wall <= 0 || r.QPS <= 0 || r.Speedup <= 0 {
			t.Errorf("implausible row: %+v", r)
		}
	}

	table := FormatShardedThroughput(rows)
	if !strings.Contains(table, "Shards") || !strings.Contains(table, "single") {
		t.Errorf("table missing headers:\n%s", table)
	}
	if len(strings.Split(strings.TrimSpace(table), "\n")) != 5 {
		t.Errorf("table should have 2 header + 3 data lines:\n%s", table)
	}
}

func TestRunShardedThroughputDefaultsApplied(t *testing.T) {
	cfg := ShardedThroughputConfig{}.withDefaults()
	if cfg.DataSize != 1e5 || cfg.Queries != 256 || cfg.QuerySize != 0.01 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	if cfg.Vertices != 10 || len(cfg.Shards) != 4 || cfg.Seed == 0 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	if cfg.Method != core.VoronoiBFS {
		t.Errorf("Method default = %v, want %v", cfg.Method, core.VoronoiBFS)
	}
}
