package bench

import (
	"strings"
	"testing"
)

func TestRunServeSmallSweep(t *testing.T) {
	cfg := ServeConfig{
		DataSize: 2000,
		Backends: 2,
		Queries:  16,
		Requests: 48,
		Conns:    []int{1, 4},
		Seed:     7,
	}
	rows, err := RunServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Conns != 1 || rows[1].Conns != 4 {
		t.Fatalf("conns columns wrong: %+v", rows)
	}
	for _, r := range rows {
		if r.QPS <= 0 || r.LocalQPS <= 0 {
			t.Errorf("implausible row: %+v", r)
		}
		if r.P50Ns <= 0 || r.P99Ns < r.P50Ns {
			t.Errorf("implausible percentiles: %+v", r)
		}
	}

	table := FormatServe(rows)
	if !strings.Contains(table, "Conns") || !strings.Contains(table, "p99") {
		t.Errorf("table missing headers:\n%s", table)
	}

	fams := ServeFamilies(cfg, rows)
	if len(fams) != 2 || fams[0].Name != "serve/conns=1" || fams[1].Name != "serve/conns=4" {
		t.Fatalf("families wrong: %+v", fams)
	}
	for _, f := range fams {
		if f.Extra["p99_ns"] <= 0 || f.QueriesPerSec <= 0 {
			t.Errorf("family missing percentiles or throughput: %+v", f)
		}
	}

	snap := ServeSnapshot(cfg, rows)
	if snap.Schema != "areabench/v1" || len(snap.Families) != 2 {
		t.Fatalf("snapshot wrong: schema=%q families=%d", snap.Schema, len(snap.Families))
	}
}

func TestServeDefaultsApplied(t *testing.T) {
	cfg := ServeConfig{}.withDefaults()
	if cfg.DataSize != 1e5 || cfg.Backends != 2 || cfg.Requests != 2000 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	if len(cfg.Conns) != 4 || cfg.Seed == 0 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
}
