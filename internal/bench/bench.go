// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation section.
//
// The paper's protocol: points uniform in a unit universe; the query area
// is a randomly generated 10-vertex polygon; "query size" is the area of
// the query polygon's MBR divided by the universe area; every configuration
// is repeated R times (1000 in the paper) and averaged.
//
//   - Table I / Fig. 4 / Fig. 5: data size swept 1E5..1E6, query size 1%.
//   - Table II / Fig. 6 / Fig. 7: query size swept 1..32%, data size 1E5.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config parameterizes an experiment run.
type Config struct {
	// DataSizes for the data-size sweep (Table I, Figs. 4-5).
	DataSizes []int
	// QuerySizes for the query-size sweep (Table II, Figs. 6-7), as
	// fractions of the universe area.
	QuerySizes []float64
	// FixedQuerySize for the data-size sweep. Paper: 0.01.
	FixedQuerySize float64
	// FixedDataSize for the query-size sweep. Paper: 1E5.
	FixedDataSize int
	// Repeats per configuration. Paper: 1000.
	Repeats int
	// Vertices per query polygon. Paper: 10.
	Vertices int
	// Seed makes runs reproducible.
	Seed int64
	// Store, when non-nil, backs records with the paged store so page IO
	// is measured alongside time and candidates.
	Store *core.StoreConfig
	// Progress, when non-nil, receives one line per completed row.
	Progress io.Writer
}

// PaperConfig returns the paper's exact sweep parameters with the given
// repeat count (the paper uses 1000; smaller values keep wall-clock time
// reasonable while preserving the shape).
func PaperConfig(repeats int) Config {
	return Config{
		DataSizes:      []int{1e5, 2e5, 3e5, 4e5, 5e5, 6e5, 7e5, 8e5, 9e5, 1e6},
		QuerySizes:     []float64{0.01, 0.02, 0.04, 0.08, 0.16, 0.32},
		FixedQuerySize: 0.01,
		FixedDataSize:  1e5,
		Repeats:        repeats,
		Vertices:       10,
		Seed:           20200420, // ICDE 2020 start date
	}
}

// MethodResult aggregates one method's per-query statistics over the
// repeats of one configuration. All values are means.
type MethodResult struct {
	Candidates float64
	Redundant  float64
	TimeMs     float64
	PageReads  float64 // only populated with a store-backed run
	TimeSD     float64 // standard deviation of per-query ms
}

// Row is one configuration (one line of a table, one x position of a
// figure).
type Row struct {
	DataSize    int
	QuerySize   float64
	ResultSize  float64
	Traditional MethodResult
	Voronoi     MethodResult
	// Mismatches counts repeats on which the Voronoi method's result set
	// differed from the traditional one. The published expansion rule is a
	// heuristic that can, on adversarially thin polygons relative to the
	// point spacing, miss part of the area (see DESIGN.md §5.3); in the
	// paper's own workload regime this stays at zero. Reported rather than
	// hidden.
	Mismatches int
}

// CandidateSavings returns the fraction of candidate validations the
// Voronoi method avoided relative to the traditional method.
func (r Row) CandidateSavings() float64 {
	if r.Traditional.Candidates == 0 {
		return 0
	}
	return 1 - r.Voronoi.Candidates/r.Traditional.Candidates
}

// TimeSavings returns the fraction of time the Voronoi method saved.
func (r Row) TimeSavings() float64 {
	if r.Traditional.TimeMs == 0 {
		return 0
	}
	return 1 - r.Voronoi.TimeMs/r.Traditional.TimeMs
}

// RunDataSizeSweep regenerates Table I (and the data of Figs. 4 and 5).
func RunDataSizeSweep(cfg Config) ([]Row, error) {
	rows := make([]Row, 0, len(cfg.DataSizes))
	for i, n := range cfg.DataSizes {
		row, err := runConfiguration(cfg, n, cfg.FixedQuerySize, cfg.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		progress(cfg, "data size %d: result=%.1f trad=(%.1f cand, %.3f ms) vor=(%.1f cand, %.3f ms)",
			n, row.ResultSize,
			row.Traditional.Candidates, row.Traditional.TimeMs,
			row.Voronoi.Candidates, row.Voronoi.TimeMs)
	}
	return rows, nil
}

// RunQuerySizeSweep regenerates Table II (and the data of Figs. 6 and 7).
func RunQuerySizeSweep(cfg Config) ([]Row, error) {
	// One dataset, swept query sizes — as in the paper.
	ds, err := newDataset(cfg, cfg.FixedDataSize, cfg.Seed+1000)
	if err != nil {
		return nil, err
	}
	rows := make([]Row, 0, len(cfg.QuerySizes))
	for i, qs := range cfg.QuerySizes {
		row, err := ds.measure(cfg, qs, cfg.Seed+2000+int64(i))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		progress(cfg, "query size %.0f%%: result=%.1f trad=(%.1f cand, %.3f ms) vor=(%.1f cand, %.3f ms)",
			qs*100, row.ResultSize,
			row.Traditional.Candidates, row.Traditional.TimeMs,
			row.Voronoi.Candidates, row.Voronoi.TimeMs)
	}
	return rows, nil
}

func progress(cfg Config, format string, args ...interface{}) {
	if cfg.Progress != nil {
		fmt.Fprintf(cfg.Progress, format+"\n", args...)
	}
}

// dataset bundles everything needed to run queries against one point set.
type dataset struct {
	n      int
	eng    *core.Engine
	store  *core.StoreData // nil for in-memory runs
	bounds geom.Rect
}

func newDataset(cfg Config, n int, seed int64) (*dataset, error) {
	bounds := geom.NewRect(0, 0, 1, 1)
	rng := rand.New(rand.NewSource(seed))
	pts := workload.UniformPoints(rng, n, bounds)

	var (
		data core.DataAccess
		sd   *core.StoreData
		err  error
	)
	if cfg.Store != nil {
		sd, err = core.NewStoreData(pts, bounds, *cfg.Store)
		data = sd
	} else {
		data, err = core.NewMemoryData(pts, bounds)
	}
	if err != nil {
		return nil, fmt.Errorf("bench: building dataset (n=%d): %w", n, err)
	}
	idx := core.NewRTreeIndex(pts, 16)
	return &dataset{n: n, eng: core.NewEngine(idx, data), store: sd, bounds: bounds}, nil
}

func runConfiguration(cfg Config, n int, querySize float64, seed int64) (Row, error) {
	ds, err := newDataset(cfg, n, seed)
	if err != nil {
		return Row{}, err
	}
	return ds.measure(cfg, querySize, seed+7)
}

// measure runs cfg.Repeats fresh query polygons of the given query size
// through both methods and averages the statistics.
func (ds *dataset) measure(cfg Config, querySize float64, seed int64) (Row, error) {
	rng := rand.New(rand.NewSource(seed))
	repeats := cfg.Repeats
	if repeats <= 0 {
		repeats = 10
	}
	vertices := cfg.Vertices
	if vertices < 3 {
		vertices = 10
	}

	var resultAcc stats.Accumulator
	mismatches := 0
	accs := map[core.Method]*struct {
		cand, red, pageReads stats.Accumulator
		times                []float64
	}{
		core.Traditional: {},
		core.VoronoiBFS:  {},
	}

	for rep := 0; rep < repeats; rep++ {
		area := workload.RandomPolygon(rng, workload.PolygonConfig{
			Vertices:  vertices,
			QuerySize: querySize,
		}, ds.bounds)

		var wantLen = -1
		for _, m := range []core.Method{core.Traditional, core.VoronoiBFS} {
			acc := accs[m]
			var ioBefore int
			if ds.store != nil {
				ioBefore = ds.store.IOStats().PageReads
			}
			start := time.Now()
			ids, st, err := ds.eng.Query(m, area)
			elapsed := time.Since(start)
			if err != nil {
				return Row{}, fmt.Errorf("bench: %v query failed: %w", m, err)
			}
			if wantLen == -1 {
				wantLen = len(ids)
				resultAcc.Add(float64(len(ids)))
			} else if len(ids) != wantLen {
				mismatches++
			}
			acc.cand.Add(float64(st.Candidates))
			acc.red.Add(float64(st.RedundantValidations))
			acc.times = append(acc.times, float64(elapsed.Nanoseconds())/1e6)
			if ds.store != nil {
				acc.pageReads.Add(float64(ds.store.IOStats().PageReads - ioBefore))
			}
		}
	}

	build := func(m core.Method) MethodResult {
		acc := accs[m]
		ts := stats.Summarize(acc.times)
		return MethodResult{
			Candidates: acc.cand.Mean(),
			Redundant:  acc.red.Mean(),
			TimeMs:     ts.Mean,
			TimeSD:     ts.StdDev,
			PageReads:  acc.pageReads.Mean(),
		}
	}
	return Row{
		DataSize:    ds.n,
		QuerySize:   querySize,
		ResultSize:  resultAcc.Mean(),
		Traditional: build(core.Traditional),
		Voronoi:     build(core.VoronoiBFS),
		Mismatches:  mismatches,
	}, nil
}

// FormatTable renders rows in the layout of the paper's tables: one line
// per configuration with result size, candidate counts and times for both
// methods. labelQuery selects the first column (data size vs query size).
func FormatTable(rows []Row, labelQuery bool) string {
	var b strings.Builder
	if labelQuery {
		b.WriteString("Query size | Result size | Trad candidates | Trad time(ms) | Vor candidates | Vor time(ms) | Cand saved | Time saved\n")
	} else {
		b.WriteString("Data size  | Result size | Trad candidates | Trad time(ms) | Vor candidates | Vor time(ms) | Cand saved | Time saved\n")
	}
	b.WriteString(strings.Repeat("-", 120) + "\n")
	for _, r := range rows {
		label := fmt.Sprintf("%-10d", r.DataSize)
		if labelQuery {
			label = fmt.Sprintf("%9.0f%%", r.QuerySize*100)
		}
		fmt.Fprintf(&b, "%s | %11.2f | %15.2f | %13.3f | %14.2f | %12.3f | %9.1f%% | %9.1f%%\n",
			label, r.ResultSize,
			r.Traditional.Candidates, r.Traditional.TimeMs,
			r.Voronoi.Candidates, r.Voronoi.TimeMs,
			r.CandidateSavings()*100, r.TimeSavings()*100)
	}
	return b.String()
}

// FigureSeries identifies which figure data to extract from a sweep.
type FigureSeries int

// The four figures of the evaluation section.
const (
	Fig4TimeVsDataSize FigureSeries = iota
	Fig5RedundantVsDataSize
	Fig6TimeVsQuerySize
	Fig7RedundantVsQuerySize
)

// String implements fmt.Stringer.
func (f FigureSeries) String() string {
	switch f {
	case Fig4TimeVsDataSize:
		return "Fig.4 time cost vs data size"
	case Fig5RedundantVsDataSize:
		return "Fig.5 redundant validations vs data size"
	case Fig6TimeVsQuerySize:
		return "Fig.6 time cost vs query size"
	case Fig7RedundantVsQuerySize:
		return "Fig.7 redundant validations vs query size"
	default:
		return fmt.Sprintf("figure(%d)", int(f))
	}
}

// FormatFigure renders the (x, traditional, voronoi) series of a figure as
// an aligned text table — the data behind the paper's plotted curves.
func FormatFigure(rows []Row, f FigureSeries) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", f)
	xLabel, yTrad, yVor := "x", "traditional", "voronoi"
	switch f {
	case Fig4TimeVsDataSize, Fig5RedundantVsDataSize:
		xLabel = "data_size"
	case Fig6TimeVsQuerySize, Fig7RedundantVsQuerySize:
		xLabel = "query_size_pct"
	}
	fmt.Fprintf(&b, "%-14s %14s %14s\n", xLabel, yTrad, yVor)
	for _, r := range rows {
		var x, t, v float64
		switch f {
		case Fig4TimeVsDataSize:
			x, t, v = float64(r.DataSize), r.Traditional.TimeMs, r.Voronoi.TimeMs
		case Fig5RedundantVsDataSize:
			x, t, v = float64(r.DataSize), r.Traditional.Redundant, r.Voronoi.Redundant
		case Fig6TimeVsQuerySize:
			x, t, v = r.QuerySize*100, r.Traditional.TimeMs, r.Voronoi.TimeMs
		case Fig7RedundantVsQuerySize:
			x, t, v = r.QuerySize*100, r.Traditional.Redundant, r.Voronoi.Redundant
		}
		fmt.Fprintf(&b, "%-14.4g %14.4f %14.4f\n", x, t, v)
	}
	return b.String()
}
