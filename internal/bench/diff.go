package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
)

// DefaultDiffThreshold is the fractional change beyond which a metric
// movement counts as a regression (10%): committed trajectory snapshots
// come from shared CI machines, so smaller movements are noise.
const DefaultDiffThreshold = 0.10

// DiffRow is one (family, metric) comparison between two snapshots.
// Change is the fractional movement in the metric's bad direction —
// positive means worse (slower, more allocations), negative means better —
// so one sign convention covers throughput and cost metrics alike.
type DiffRow struct {
	Family string
	Metric string
	Old    float64
	New    float64
	// Change is (worsening)/old; +Inf when a zero baseline became nonzero.
	Change     float64
	Regression bool
}

// Diff is the comparison of two snapshots: per-family metric rows plus the
// families present on only one side (compared families must match by name).
type Diff struct {
	Threshold float64
	Rows      []DiffRow
	OnlyOld   []string
	OnlyNew   []string
}

// Regressions returns the rows whose bad-direction change exceeds the
// threshold.
func (d *Diff) Regressions() []DiffRow {
	var out []DiffRow
	for _, r := range d.Rows {
		if r.Regression {
			out = append(out, r)
		}
	}
	return out
}

// LoadSnapshot reads and validates a committed BENCH_<n>.json file.
func LoadSnapshot(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if snap.Schema != "areabench/v1" {
		return nil, fmt.Errorf("bench: %s: unknown snapshot schema %q (want areabench/v1)", path, snap.Schema)
	}
	return &snap, nil
}

// DiffSnapshots compares every family the two snapshots share, metric by
// metric: queries/s (lower is worse), ns/op, allocs/op and the p99 latency
// extra (higher is worse). threshold <= 0 uses DefaultDiffThreshold.
func DiffSnapshots(oldSnap, newSnap *Snapshot, threshold float64) *Diff {
	if threshold <= 0 {
		threshold = DefaultDiffThreshold
	}
	d := &Diff{Threshold: threshold}
	newByName := make(map[string]Family, len(newSnap.Families))
	for _, f := range newSnap.Families {
		newByName[f.Name] = f
	}
	seen := make(map[string]bool, len(oldSnap.Families))
	for _, of := range oldSnap.Families {
		nf, ok := newByName[of.Name]
		if !ok {
			d.OnlyOld = append(d.OnlyOld, of.Name)
			continue
		}
		seen[of.Name] = true
		d.add(of.Name, "queries/s", of.QueriesPerSec, nf.QueriesPerSec, true)
		d.add(of.Name, "ns/op", of.NsPerOp, nf.NsPerOp, false)
		d.add(of.Name, "allocs/op", of.AllocsPerOp, nf.AllocsPerOp, false)
		op99, ook := of.Extra["p99_ns"]
		np99, nok := nf.Extra["p99_ns"]
		if ook && nok {
			d.add(of.Name, "p99_ns", op99, np99, false)
		}
	}
	for _, f := range newSnap.Families {
		if !seen[f.Name] {
			d.OnlyNew = append(d.OnlyNew, f.Name)
		}
	}
	return d
}

// add appends one metric row. higherIsBetter flips the worsening
// direction: for throughput a drop is bad, for costs a rise is bad.
func (d *Diff) add(family, metric string, oldV, newV float64, higherIsBetter bool) {
	worsening := newV - oldV
	if higherIsBetter {
		worsening = oldV - newV
	}
	var change float64
	switch {
	case oldV != 0:
		change = worsening / oldV
	case worsening == 0:
		change = 0
	default:
		change = math.Inf(int(math.Copysign(1, worsening)))
	}
	d.Rows = append(d.Rows, DiffRow{
		Family: family,
		Metric: metric,
		Old:    oldV,
		New:    newV,
		Change: change,
		// A zero baseline (e.g. 0 allocs/op) regresses on any rise beyond
		// measurement jitter; a nonzero one on a relative move past the
		// threshold.
		Regression: change > d.Threshold || (oldV == 0 && worsening > 1),
	})
}

// FormatDiff renders the comparison as an aligned text report, flagging
// regressions and improvements beyond the threshold.
func FormatDiff(d *Diff) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-10s %14s %14s %9s\n", "family", "metric", "old", "new", "change")
	for _, r := range d.Rows {
		flag := ""
		switch {
		case r.Regression:
			flag = "  << REGRESSION"
		case r.Change < -d.Threshold:
			flag = "  improved"
		}
		fmt.Fprintf(&b, "%-22s %-10s %14.1f %14.1f %8.1f%%%s\n",
			r.Family, r.Metric, r.Old, r.New, 100*r.Change, flag)
	}
	for _, name := range d.OnlyOld {
		fmt.Fprintf(&b, "%-22s only in old snapshot\n", name)
	}
	for _, name := range d.OnlyNew {
		fmt.Fprintf(&b, "%-22s only in new snapshot (no baseline)\n", name)
	}
	return b.String()
}
