package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/geom"
	"repro/internal/workload"
)

// ThroughputConfig parameterizes a batch-throughput sweep: one dataset,
// one fixed query workload, the worker-pool size swept.
type ThroughputConfig struct {
	// DataSize is the point count (default 1E5, the paper's base size).
	DataSize int
	// Queries is the batch length (default 512).
	Queries int
	// QuerySize is the query MBR area fraction (default 0.01).
	QuerySize float64
	// Vertices per query polygon (default 10).
	Vertices int
	// Parallelism lists the worker-pool sizes to sweep (default 1,2,4,8).
	Parallelism []int
	// Method to execute (default the paper's VoronoiBFS).
	Method core.Method
	// Seed makes runs reproducible.
	Seed int64
}

func (c ThroughputConfig) withDefaults() ThroughputConfig {
	if c.DataSize <= 0 {
		c.DataSize = 1e5
	}
	if c.Queries <= 0 {
		c.Queries = 512
	}
	if c.QuerySize <= 0 {
		c.QuerySize = 0.01
	}
	if c.Vertices < 3 {
		c.Vertices = 10
	}
	if len(c.Parallelism) == 0 {
		c.Parallelism = []int{1, 2, 4, 8}
	}
	if c.Seed == 0 {
		c.Seed = 20200420
	}
	return c
}

// ThroughputRow is one pool size's measurement.
type ThroughputRow struct {
	Workers int
	Wall    time.Duration // wall-clock time for the whole batch
	QPS     float64       // queries per second of wall-clock
	Speedup float64       // relative to the Workers == 1 (or first) row
}

// RunThroughput measures wall-clock batch throughput of the same query
// batch at each requested pool size, verifying every run returns the
// result set of the first.
func RunThroughput(cfg ThroughputConfig) ([]ThroughputRow, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	bounds := geom.NewRect(0, 0, 1, 1)
	pts := workload.UniformPoints(rng, cfg.DataSize, bounds)
	data, err := core.NewMemoryData(pts, bounds)
	if err != nil {
		return nil, fmt.Errorf("bench: building dataset (n=%d): %w", cfg.DataSize, err)
	}
	eng := core.NewEngine(core.NewRTreeIndex(pts, 16), data)

	regions := make([]core.Region, cfg.Queries)
	for i := range regions {
		regions[i] = core.PolygonRegion(workload.RandomPolygon(rng, workload.PolygonConfig{
			Vertices:  cfg.Vertices,
			QuerySize: cfg.QuerySize,
		}, bounds))
	}

	var baseline [][]int64
	var baseWall time.Duration
	rows := make([]ThroughputRow, 0, len(cfg.Parallelism))
	for _, workers := range cfg.Parallelism {
		if workers <= 0 { // report the pool size the executor will use
			workers = runtime.GOMAXPROCS(0)
		}
		start := time.Now()
		out, _, err := exec.QueryBatch(eng, cfg.Method, regions, exec.Options{NumWorkers: workers})
		wall := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("bench: throughput batch (workers=%d): %w", workers, err)
		}
		if baseline == nil {
			baseline, baseWall = out, wall
		} else if err := sameResults(baseline, out); err != nil {
			return nil, fmt.Errorf("bench: workers=%d diverged from baseline: %w", workers, err)
		}
		rows = append(rows, ThroughputRow{
			Workers: workers,
			Wall:    wall,
			QPS:     float64(cfg.Queries) / wall.Seconds(),
			Speedup: baseWall.Seconds() / wall.Seconds(),
		})
	}
	return rows, nil
}

// sameResults compares two batch outputs query-for-query as sets.
func sameResults(a, b [][]int64) error {
	if len(a) != len(b) {
		return fmt.Errorf("batch lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return fmt.Errorf("query %d: %d vs %d ids", i, len(a[i]), len(b[i]))
		}
		seen := make(map[int64]bool, len(a[i]))
		for _, id := range a[i] {
			seen[id] = true
		}
		for _, id := range b[i] {
			if !seen[id] {
				return fmt.Errorf("query %d: id %d missing from baseline", i, id)
			}
		}
	}
	return nil
}

// FormatThroughput renders the sweep as an aligned text table.
func FormatThroughput(rows []ThroughputRow) string {
	var b strings.Builder
	b.WriteString("Workers | Batch wall time | Queries/s | Speedup\n")
	b.WriteString(strings.Repeat("-", 52) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%7d | %15v | %9.0f | %6.2fx\n",
			r.Workers, r.Wall.Round(time.Microsecond), r.QPS, r.Speedup)
	}
	return b.String()
}
