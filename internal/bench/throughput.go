package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/geom"
	"repro/internal/shard"
	"repro/internal/workload"
)

// ThroughputConfig parameterizes a batch-throughput sweep: one dataset,
// one fixed query workload, the worker-pool size swept.
type ThroughputConfig struct {
	// DataSize is the point count (default 1E5, the paper's base size).
	DataSize int
	// Queries is the batch length (default 512).
	Queries int
	// QuerySize is the query MBR area fraction (default 0.01).
	QuerySize float64
	// Vertices per query polygon (default 10).
	Vertices int
	// Parallelism lists the worker-pool sizes to sweep (default 1,2,4,8).
	Parallelism []int
	// Method to execute. The zero value (which is core.Traditional) is
	// replaced by the paper's VoronoiBFS; pass another method explicitly
	// to override.
	Method core.Method
	// Seed makes runs reproducible.
	Seed int64
}

func (c ThroughputConfig) withDefaults() ThroughputConfig {
	if c.DataSize <= 0 {
		c.DataSize = 1e5
	}
	if c.Queries <= 0 {
		c.Queries = 512
	}
	if c.QuerySize <= 0 {
		c.QuerySize = 0.01
	}
	if c.Vertices < 3 {
		c.Vertices = 10
	}
	if len(c.Parallelism) == 0 {
		c.Parallelism = []int{1, 2, 4, 8}
	}
	if c.Method == core.Traditional {
		c.Method = core.VoronoiBFS
	}
	if c.Seed == 0 {
		c.Seed = 20200420
	}
	return c
}

// ThroughputRow is one pool size's measurement.
type ThroughputRow struct {
	Workers int
	Wall    time.Duration // wall-clock time for the whole batch
	QPS     float64       // queries per second of wall-clock
	Speedup float64       // relative to the Workers == 1 (or first) row
}

// RunThroughput measures wall-clock batch throughput of the same query
// batch at each requested pool size, verifying every run returns the
// result set of the first.
func RunThroughput(cfg ThroughputConfig) ([]ThroughputRow, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	bounds := geom.NewRect(0, 0, 1, 1)
	pts := workload.UniformPoints(rng, cfg.DataSize, bounds)
	data, err := core.NewMemoryData(pts, bounds)
	if err != nil {
		return nil, fmt.Errorf("bench: building dataset (n=%d): %w", cfg.DataSize, err)
	}
	eng := core.NewEngine(core.NewRTreeIndex(pts, 16), data)

	regions := make([]core.Region, cfg.Queries)
	for i := range regions {
		regions[i] = core.PolygonRegion(workload.RandomPolygon(rng, workload.PolygonConfig{
			Vertices:  cfg.Vertices,
			QuerySize: cfg.QuerySize,
		}, bounds))
	}

	var baseline [][]int64
	var baseWall time.Duration
	rows := make([]ThroughputRow, 0, len(cfg.Parallelism))
	for _, workers := range cfg.Parallelism {
		if workers <= 0 { // report the pool size the executor will use
			workers = runtime.GOMAXPROCS(0)
		}
		start := time.Now()
		out, _, err := exec.QueryBatch(context.Background(), eng, regions,
			core.QuerySpec{Method: cfg.Method}, exec.Options{NumWorkers: workers})
		wall := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("bench: throughput batch (workers=%d): %w", workers, err)
		}
		if baseline == nil {
			baseline, baseWall = out, wall
		} else if err := sameResults(baseline, out); err != nil {
			return nil, fmt.Errorf("bench: workers=%d diverged from baseline: %w", workers, err)
		}
		rows = append(rows, ThroughputRow{
			Workers: workers,
			Wall:    wall,
			QPS:     float64(cfg.Queries) / wall.Seconds(),
			Speedup: baseWall.Seconds() / wall.Seconds(),
		})
	}
	return rows, nil
}

// ShardedThroughputConfig parameterizes a sharded-vs-single batch
// throughput comparison: one dataset (optionally store-backed), one fixed
// query workload, the shard count swept against an unsharded baseline.
type ShardedThroughputConfig struct {
	// DataSize is the point count (default 1E5).
	DataSize int
	// Queries is the batch length (default 256).
	Queries int
	// QuerySize is the query MBR area fraction (default 0.01).
	QuerySize float64
	// Vertices per query polygon (default 10).
	Vertices int
	// Shards lists the shard counts to sweep (default 1,2,4,8).
	Shards []int
	// Workers is the scatter/batch pool size (default GOMAXPROCS).
	Workers int
	// Method to execute. The zero value (which is core.Traditional) is
	// replaced by the paper's VoronoiBFS; pass another method explicitly
	// to override.
	Method core.Method
	// Store, when non-nil, backs every engine (the single baseline and
	// each shard) with a paged record store — the regime where sharding
	// also splits the buffer-pool lock.
	Store *core.StoreConfig
	// Seed makes runs reproducible.
	Seed int64
}

func (c ShardedThroughputConfig) withDefaults() ShardedThroughputConfig {
	if c.DataSize <= 0 {
		c.DataSize = 1e5
	}
	if c.Queries <= 0 {
		c.Queries = 256
	}
	if c.QuerySize <= 0 {
		c.QuerySize = 0.01
	}
	if c.Vertices < 3 {
		c.Vertices = 10
	}
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 2, 4, 8}
	}
	if c.Method == core.Traditional {
		c.Method = core.VoronoiBFS
	}
	if c.Seed == 0 {
		c.Seed = 20200420
	}
	return c
}

// ShardedThroughputRow is one configuration's measurement. The first row
// is always the unsharded single-engine baseline (Shards == 0).
type ShardedThroughputRow struct {
	Shards  int // 0 = single unsharded engine
	Wall    time.Duration
	QPS     float64
	Speedup float64 // relative to the single-engine row
}

// shardedBuild returns the shard.BuildFunc matching the config: the
// paper's STR R-tree over in-memory or store-backed records.
func (c ShardedThroughputConfig) shardedBuild() shard.BuildFunc {
	return func(_ int, pts []geom.Point, bounds geom.Rect) (*core.Engine, error) {
		var (
			data core.DataAccess
			err  error
		)
		if c.Store != nil {
			data, err = core.NewStoreData(pts, bounds, *c.Store)
		} else {
			data, err = core.NewMemoryData(pts, bounds)
		}
		if err != nil {
			return nil, err
		}
		return core.NewEngine(core.NewRTreeIndex(pts, 16), data), nil
	}
}

// RunShardedThroughput measures wall-clock throughput of the same query
// batch on one unsharded engine (the baseline row) and on sharded engines
// at each requested shard count, verifying every run returns the baseline
// result sets.
func RunShardedThroughput(cfg ShardedThroughputConfig) ([]ShardedThroughputRow, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	bounds := geom.NewRect(0, 0, 1, 1)
	pts := workload.UniformPoints(rng, cfg.DataSize, bounds)
	build := cfg.shardedBuild()

	regions := make([]core.Region, cfg.Queries)
	for i := range regions {
		regions[i] = core.PolygonRegion(workload.RandomPolygon(rng, workload.PolygonConfig{
			Vertices:  cfg.Vertices,
			QuerySize: cfg.QuerySize,
		}, bounds))
	}

	// One untimed universe-covering query per engine warms lazily
	// initialized state (the strict expansion's cell boxes fill on first
	// use, in every shard) so rows measure steady state.
	corners := bounds.Corners()
	warm := core.PolygonRegion(geom.MustPolygon(corners[:]))

	single, err := build(0, pts, bounds)
	if err != nil {
		return nil, fmt.Errorf("bench: building single engine (n=%d): %w", cfg.DataSize, err)
	}
	if _, _, err := single.QueryRegion(cfg.Method, warm); err != nil {
		return nil, fmt.Errorf("bench: single-engine warmup: %w", err)
	}
	start := time.Now()
	baseline, _, err := exec.QueryBatch(context.Background(), single, regions,
		core.QuerySpec{Method: cfg.Method}, exec.Options{NumWorkers: cfg.Workers})
	baseWall := time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("bench: single-engine batch: %w", err)
	}
	rows := []ShardedThroughputRow{{
		Shards:  0,
		Wall:    baseWall,
		QPS:     float64(cfg.Queries) / baseWall.Seconds(),
		Speedup: 1,
	}}

	for _, shards := range cfg.Shards {
		se, err := shard.New(pts, bounds, shard.Config{
			Shards:      shards,
			Parallelism: cfg.Workers,
			Build:       build,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: building sharded engine (shards=%d): %w", shards, err)
		}
		if _, _, err := se.QueryRegion(cfg.Method, warm); err != nil {
			return nil, fmt.Errorf("bench: sharded warmup (shards=%d): %w", shards, err)
		}
		start := time.Now()
		out, _, err := se.QueryRegions(cfg.Method, regions)
		wall := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("bench: sharded batch (shards=%d): %w", shards, err)
		}
		if err := sameResults(baseline, out); err != nil {
			return nil, fmt.Errorf("bench: shards=%d diverged from single engine: %w", shards, err)
		}
		rows = append(rows, ShardedThroughputRow{
			Shards:  shards,
			Wall:    wall,
			QPS:     float64(cfg.Queries) / wall.Seconds(),
			Speedup: baseWall.Seconds() / wall.Seconds(),
		})
	}
	return rows, nil
}

// FormatShardedThroughput renders the comparison as an aligned text table.
func FormatShardedThroughput(rows []ShardedThroughputRow) string {
	var b strings.Builder
	b.WriteString(" Shards | Batch wall time | Queries/s | vs single\n")
	b.WriteString(strings.Repeat("-", 54) + "\n")
	for _, r := range rows {
		label := "single"
		if r.Shards > 0 {
			label = fmt.Sprintf("%d", r.Shards)
		}
		fmt.Fprintf(&b, "%7s | %15v | %9.0f | %8.2fx\n",
			label, r.Wall.Round(time.Microsecond), r.QPS, r.Speedup)
	}
	return b.String()
}

// sameResults compares two batch outputs query-for-query as sets.
func sameResults(a, b [][]int64) error {
	if len(a) != len(b) {
		return fmt.Errorf("batch lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return fmt.Errorf("query %d: %d vs %d ids", i, len(a[i]), len(b[i]))
		}
		seen := make(map[int64]bool, len(a[i]))
		for _, id := range a[i] {
			seen[id] = true
		}
		for _, id := range b[i] {
			if !seen[id] {
				return fmt.Errorf("query %d: id %d missing from baseline", i, id)
			}
		}
	}
	return nil
}

// FormatThroughput renders the sweep as an aligned text table.
func FormatThroughput(rows []ThroughputRow) string {
	var b strings.Builder
	b.WriteString("Workers | Batch wall time | Queries/s | Speedup\n")
	b.WriteString(strings.Repeat("-", 52) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%7d | %15v | %9.0f | %6.2fx\n",
			r.Workers, r.Wall.Round(time.Microsecond), r.QPS, r.Speedup)
	}
	return b.String()
}
