package svg

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
)

func render(t *testing.T, draw func(*Canvas)) string {
	t.Helper()
	c := NewCanvas(geom.NewRect(0, 0, 1, 1), 400)
	draw(c)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestDocumentSkeleton(t *testing.T) {
	doc := render(t, func(c *Canvas) {})
	for _, want := range []string{"<svg", "</svg>", `width="400"`, `height="400"`} {
		if !strings.Contains(doc, want) {
			t.Errorf("document missing %q:\n%s", want, doc)
		}
	}
}

func TestAspectRatio(t *testing.T) {
	c := NewCanvas(geom.NewRect(0, 0, 2, 1), 400)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `height="200"`) {
		t.Errorf("2:1 world should give 400x200 canvas:\n%s", buf.String())
	}
}

func TestElements(t *testing.T) {
	doc := render(t, func(c *Canvas) {
		c.Circle(geom.Pt(0.5, 0.5), 3, Style{Fill: "red"})
		c.Segment(geom.Seg(geom.Pt(0, 0), geom.Pt(1, 1)), Style{Stroke: "blue", StrokeWidth: 2})
		c.Ring(geom.Ring{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0.5, 1)}, Style{Stroke: "black"})
		c.Rect(geom.NewRect(0.1, 0.1, 0.9, 0.9), Style{Stroke: "green"})
		c.Text(geom.Pt(0.2, 0.2), 12, "black", "label <&>")
	})
	for _, want := range []string{"<circle", "<line", "<polygon", "<rect", "<text", "label &lt;&amp;&gt;"} {
		if !strings.Contains(doc, want) {
			t.Errorf("document missing %q", want)
		}
	}
}

func TestYAxisFlipped(t *testing.T) {
	// World (0.5, 1) is the top-center: pixel y must be 0.
	doc := render(t, func(c *Canvas) {
		c.Circle(geom.Pt(0.5, 1), 1, Style{Fill: "red"})
	})
	if !strings.Contains(doc, `cy="0.00"`) {
		t.Errorf("top of world should map to pixel y=0:\n%s", doc)
	}
}

func TestPolygonWithHoleUsesEvenOdd(t *testing.T) {
	pg := geom.MustPolygon([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)})
	if err := pg.AddHole([]geom.Point{geom.Pt(0.25, 0.25), geom.Pt(0.75, 0.25), geom.Pt(0.5, 0.75)}); err != nil {
		t.Fatal(err)
	}
	doc := render(t, func(c *Canvas) {
		c.Polygon(pg, Style{Fill: "gray"})
	})
	if !strings.Contains(doc, `fill-rule="evenodd"`) {
		t.Error("polygon with holes should use even-odd fill")
	}
	if strings.Count(doc, "Z") != 2 {
		t.Errorf("path should close 2 rings:\n%s", doc)
	}
}

func TestEmptyShapesAreSkipped(t *testing.T) {
	doc := render(t, func(c *Canvas) {
		c.Ring(nil, Style{})
		c.Rect(geom.EmptyRect(), Style{})
	})
	if strings.Contains(doc, "<polygon") || strings.Contains(doc, "<rect x=") {
		t.Errorf("empty shapes should render nothing:\n%s", doc)
	}
}

func TestDegenerateWorld(t *testing.T) {
	c := NewCanvas(geom.NewRect(3, 4, 3, 4), 100) // zero-extent world
	c.Circle(geom.Pt(3, 4), 2, Style{Fill: "red"})
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Must not panic or emit NaN.
	if strings.Contains(buf.String(), "NaN") {
		t.Errorf("degenerate world produced NaN:\n%s", buf.String())
	}
}
