// Package svg renders point sets, Voronoi diagrams, Delaunay
// triangulations and area queries to SVG documents — the repository's
// equivalent of the paper's Figures 2 and 3.
package svg

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/geom"
)

// Canvas accumulates SVG elements over a world-coordinate viewport and
// writes a standalone SVG document.
type Canvas struct {
	world  geom.Rect
	width  float64
	height float64
	body   strings.Builder
}

// NewCanvas returns a canvas mapping the world rectangle onto a pixel
// viewport of the given width; height preserves the aspect ratio.
func NewCanvas(world geom.Rect, widthPx float64) *Canvas {
	h := widthPx
	if world.Width() > 0 {
		h = widthPx * world.Height() / world.Width()
	}
	return &Canvas{world: world, width: widthPx, height: h}
}

// x maps a world x coordinate to pixels.
func (c *Canvas) x(wx float64) float64 {
	if c.world.Width() == 0 {
		return 0
	}
	return (wx - c.world.MinX) / c.world.Width() * c.width
}

// y maps a world y coordinate to pixels (flipped: SVG y grows downward).
func (c *Canvas) y(wy float64) float64 {
	if c.world.Height() == 0 {
		return 0
	}
	return c.height - (wy-c.world.MinY)/c.world.Height()*c.height
}

// Style is a minimal subset of SVG presentation attributes.
type Style struct {
	Stroke      string
	StrokeWidth float64
	Fill        string
	Opacity     float64
}

func (s Style) attrs() string {
	var b strings.Builder
	if s.Stroke != "" {
		fmt.Fprintf(&b, ` stroke=%q`, s.Stroke)
	}
	if s.StrokeWidth > 0 {
		fmt.Fprintf(&b, ` stroke-width="%g"`, s.StrokeWidth)
	}
	fill := s.Fill
	if fill == "" {
		fill = "none"
	}
	fmt.Fprintf(&b, ` fill=%q`, fill)
	if s.Opacity > 0 && s.Opacity < 1 {
		fmt.Fprintf(&b, ` opacity="%g"`, s.Opacity)
	}
	return b.String()
}

// Circle draws a circle of radius r pixels at world point p.
func (c *Canvas) Circle(p geom.Point, r float64, st Style) {
	fmt.Fprintf(&c.body, `<circle cx="%.2f" cy="%.2f" r="%g"%s/>`+"\n",
		c.x(p.X), c.y(p.Y), r, st.attrs())
}

// Segment draws a line segment in world coordinates.
func (c *Canvas) Segment(s geom.Segment, st Style) {
	fmt.Fprintf(&c.body, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f"%s/>`+"\n",
		c.x(s.A.X), c.y(s.A.Y), c.x(s.B.X), c.y(s.B.Y), st.attrs())
}

// Ring draws a closed polygonal ring in world coordinates.
func (c *Canvas) Ring(r geom.Ring, st Style) {
	if len(r) == 0 {
		return
	}
	var pts strings.Builder
	for i, p := range r {
		if i > 0 {
			pts.WriteByte(' ')
		}
		fmt.Fprintf(&pts, "%.2f,%.2f", c.x(p.X), c.y(p.Y))
	}
	fmt.Fprintf(&c.body, `<polygon points="%s"%s/>`+"\n", pts.String(), st.attrs())
}

// Polygon draws a polygon with holes using an even-odd fill path.
func (c *Canvas) Polygon(pg geom.Polygon, st Style) {
	var d strings.Builder
	writeRing := func(r geom.Ring) {
		for i, p := range r {
			if i == 0 {
				fmt.Fprintf(&d, "M%.2f %.2f", c.x(p.X), c.y(p.Y))
			} else {
				fmt.Fprintf(&d, "L%.2f %.2f", c.x(p.X), c.y(p.Y))
			}
		}
		d.WriteString("Z")
	}
	writeRing(pg.Outer)
	for _, h := range pg.Holes {
		writeRing(h)
	}
	fmt.Fprintf(&c.body, `<path d="%s" fill-rule="evenodd"%s/>`+"\n", d.String(), st.attrs())
}

// Rect draws a rectangle in world coordinates.
func (c *Canvas) Rect(r geom.Rect, st Style) {
	if r.IsEmpty() {
		return
	}
	fmt.Fprintf(&c.body, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f"%s/>`+"\n",
		c.x(r.MinX), c.y(r.MaxY), c.x(r.MaxX)-c.x(r.MinX), c.y(r.MinY)-c.y(r.MaxY), st.attrs())
}

// Text draws a text label at world point p.
func (c *Canvas) Text(p geom.Point, size float64, fill, text string) {
	fmt.Fprintf(&c.body, `<text x="%.2f" y="%.2f" font-size="%g" fill=%q>%s</text>`+"\n",
		c.x(p.X), c.y(p.Y), size, fill, escape(text))
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// WriteTo writes the complete SVG document.
func (c *Canvas) WriteTo(w io.Writer) (int64, error) {
	var out strings.Builder
	fmt.Fprintf(&out, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g">`+"\n",
		c.width, c.height, c.width, c.height)
	out.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	out.WriteString(c.body.String())
	out.WriteString("</svg>\n")
	n, err := io.WriteString(w, out.String())
	return int64(n), err
}
