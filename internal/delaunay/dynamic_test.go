package delaunay

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func unitUniverse() geom.Rect { return geom.NewRect(0, 0, 1, 1) }

func TestDynamicEmpty(t *testing.T) {
	d := NewDynamic(unitUniverse())
	if d.NumUserSites() != 0 || d.NumSites() != FirstSiteID {
		t.Fatalf("fresh dynamic: %d user, %d total", d.NumUserSites(), d.NumSites())
	}
	if got := d.NearestSite(geom.Pt(0.5, 0.5)); got != -1 {
		t.Errorf("NearestSite on empty = %d, want -1", got)
	}
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
	// Fence triangle adjacency: each fence vertex has the other two.
	for v := 0; v < FirstSiteID; v++ {
		if got := len(d.NeighborIDs(v)); got != 2 {
			t.Errorf("fence vertex %d has %d neighbors, want 2", v, got)
		}
	}
}

func TestDynamicRejectsOutside(t *testing.T) {
	d := NewDynamic(unitUniverse())
	if _, _, err := d.InsertSite(geom.Pt(2, 2)); err == nil {
		t.Error("insert outside universe should fail")
	}
}

func TestDynamicInsertAndValidateIncrementally(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDynamic(unitUniverse())
	for i := 0; i < 300; i++ {
		p := geom.Pt(rng.Float64(), rng.Float64())
		id, inserted, err := d.InsertSite(p)
		if err != nil {
			t.Fatal(err)
		}
		if !inserted {
			t.Fatalf("random point %v reported duplicate", p)
		}
		if d.Point(id) != p {
			t.Fatalf("Point(%d) = %v, want %v", id, d.Point(id), p)
		}
		if i%25 == 0 {
			if err := d.Validate(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumUserSites() != 300 {
		t.Errorf("user sites = %d", d.NumUserSites())
	}
}

func TestDynamicDuplicateInsert(t *testing.T) {
	d := NewDynamic(unitUniverse())
	p := geom.Pt(0.3, 0.7)
	id1, ins1, err := d.InsertSite(p)
	if err != nil || !ins1 {
		t.Fatalf("first insert: id=%d ins=%v err=%v", id1, ins1, err)
	}
	id2, ins2, err := d.InsertSite(p)
	if err != nil {
		t.Fatal(err)
	}
	if ins2 || id2 != id1 {
		t.Errorf("duplicate insert: id=%d ins=%v, want id=%d ins=false", id2, ins2, id1)
	}
	if d.NumUserSites() != 1 {
		t.Errorf("user sites = %d, want 1", d.NumUserSites())
	}
}

func TestDynamicOnEdgeInsertion(t *testing.T) {
	// Grid points force insertions exactly on existing Delaunay edges.
	d := NewDynamic(unitUniverse())
	for x := 0; x <= 4; x++ {
		for y := 0; y <= 4; y++ {
			p := geom.Pt(float64(x)/4, float64(y)/4)
			if _, _, err := d.InsertSite(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Midpoints of grid cells' edges lie exactly on many triangulation
	// edges.
	for x := 0; x < 4; x++ {
		p := geom.Pt(float64(x)/4+0.125, 0.5)
		if _, _, err := d.InsertSite(p); err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("after on-edge insert %v: %v", p, err)
		}
	}
}

func TestDynamicMatchesStaticBuild(t *testing.T) {
	// Insert random points dynamically; compare the neighbor structure
	// restricted to user sites against the static divide-and-conquer
	// triangulation built over user points + fence points (Delaunay is
	// unique for points in general position).
	rng := rand.New(rand.NewSource(2))
	d := NewDynamic(unitUniverse())
	var pts []geom.Point
	for i := 0; i < 150; i++ {
		p := geom.Pt(rng.Float64(), rng.Float64())
		pts = append(pts, p)
		if _, _, err := d.InsertSite(p); err != nil {
			t.Fatal(err)
		}
	}
	all := make([]geom.Point, 0, len(pts)+FirstSiteID)
	for i := 0; i < FirstSiteID; i++ {
		all = append(all, d.Point(i))
	}
	all = append(all, pts...)
	static, err := Build(all)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < d.NumSites(); id++ {
		want := append([]int32(nil), static.Neighbors(id)...)
		got := d.NeighborIDs(id)
		sortInt32(want)
		sortInt32(got)
		if len(got) != len(want) {
			t.Fatalf("site %d: dynamic degree %d, static %d", id, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("site %d: neighbors %v vs %v", id, got, want)
			}
		}
	}
}

func sortInt32(xs []int32) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

func TestDynamicNearestSite(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDynamic(unitUniverse())
	var pts []geom.Point
	for i := 0; i < 400; i++ {
		p := geom.Pt(rng.Float64(), rng.Float64())
		pts = append(pts, p)
		if _, _, err := d.InsertSite(p); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 1000; trial++ {
		q := geom.Pt(rng.Float64(), rng.Float64())
		got := d.NearestSite(q)
		if d.IsFence(got) {
			t.Fatalf("NearestSite returned fence site %d", got)
		}
		wantD := math.Inf(1)
		for _, p := range pts {
			if dd := q.Dist2(p); dd < wantD {
				wantD = dd
			}
		}
		if q.Dist2(d.Point(got)) != wantD {
			t.Fatalf("NearestSite(%v): dist %v, want %v", q, q.Dist2(d.Point(got)), wantD)
		}
	}
}

func TestDynamicCocircularInsertions(t *testing.T) {
	// Insert the corners of many axis-aligned squares: every quadruple is
	// cocircular, stressing exact in-circle decisions during swaps.
	d := NewDynamic(unitUniverse())
	for s := 1; s <= 4; s++ {
		side := float64(s) * 0.1
		for _, p := range []geom.Point{
			geom.Pt(0.5-side, 0.5-side), geom.Pt(0.5+side, 0.5-side),
			geom.Pt(0.5+side, 0.5+side), geom.Pt(0.5-side, 0.5+side),
		} {
			if _, _, err := d.InsertSite(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("after square %d: %v", s, err)
		}
	}
}

func TestDynamicSingleSite(t *testing.T) {
	d := NewDynamic(unitUniverse())
	if _, _, err := d.InsertSite(geom.Pt(0.5, 0.5)); err != nil {
		t.Fatal(err)
	}
	if got := d.NearestSite(geom.Pt(0.9, 0.9)); got != FirstSiteID {
		t.Errorf("NearestSite = %d, want %d", got, FirstSiteID)
	}
	// The lone user site's neighbors are exactly the three fence sites.
	nbs := d.NeighborIDs(FirstSiteID)
	if len(nbs) != 3 {
		t.Errorf("lone site neighbors = %v", nbs)
	}
}

func BenchmarkDynamicInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	d := NewDynamic(unitUniverse())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.InsertSite(geom.Pt(rng.Float64(), rng.Float64())); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDynamicSnapshotIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDynamic(unitUniverse())
	for i := 0; i < 300; i++ {
		if _, _, err := d.InsertSite(geom.Pt(rng.Float64(), rng.Float64())); err != nil {
			t.Fatal(err)
		}
	}

	snap := d.Snapshot()
	if snap.NumSites() != d.NumSites() || snap.NumUserSites() != d.NumUserSites() {
		t.Fatalf("snapshot site counts diverge: %d/%d vs %d/%d",
			snap.NumSites(), snap.NumUserSites(), d.NumSites(), d.NumUserSites())
	}
	// Record the snapshot's full adjacency before mutating the original.
	before := make([][]int32, snap.NumSites())
	for v := range before {
		before[v] = snap.NeighborIDs(v)
	}

	// Keep inserting into the live triangulation; the snapshot must not move.
	for i := 0; i < 700; i++ {
		if _, _, err := d.InsertSite(geom.Pt(rng.Float64(), rng.Float64())); err != nil {
			t.Fatal(err)
		}
	}

	if snap.NumSites() != len(before) {
		t.Fatalf("snapshot grew to %d sites", snap.NumSites())
	}
	if err := snap.Validate(); err != nil {
		t.Errorf("snapshot no longer valid after live inserts: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("live triangulation invalid: %v", err)
	}
	for v := range before {
		after := snap.NeighborIDs(v)
		if len(after) != len(before[v]) {
			t.Fatalf("snapshot adjacency of %d changed: %v -> %v", v, before[v], after)
		}
		for i := range after {
			if after[i] != before[v][i] {
				t.Fatalf("snapshot adjacency of %d changed: %v -> %v", v, before[v], after)
			}
		}
	}

	// NearestSite on the snapshot answers from the pinned site set.
	q := geom.Pt(0.31, 0.62)
	best, bestD := -1, math.Inf(1)
	for i := FirstSiteID; i < snap.NumSites(); i++ {
		if dd := q.Dist2(snap.Point(i)); dd < bestD {
			best, bestD = i, dd
		}
	}
	if got := snap.NearestSite(q); got != best {
		t.Errorf("snapshot NearestSite = %d, want %d", got, best)
	}
}

func TestDynamicSnapshotInsertPanics(t *testing.T) {
	d := NewDynamic(unitUniverse())
	if _, _, err := d.InsertSite(geom.Pt(0.5, 0.5)); err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	defer func() {
		if recover() == nil {
			t.Error("InsertSite on a snapshot should panic")
		}
	}()
	snap.InsertSite(geom.Pt(0.25, 0.25)) //nolint:errcheck // must panic first
}
