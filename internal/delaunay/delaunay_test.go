package delaunay

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func uniformPoints(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	return pts
}

func TestBuildRejectsEmpty(t *testing.T) {
	if _, err := Build(nil); err != ErrNoPoints {
		t.Errorf("Build(nil) err = %v, want ErrNoPoints", err)
	}
}

func TestSinglePoint(t *testing.T) {
	tr, err := Build([]geom.Point{geom.Pt(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumSites() != 1 || tr.NumEdges() != 0 {
		t.Errorf("sites=%d edges=%d", tr.NumSites(), tr.NumEdges())
	}
	if got := tr.NearestSite(geom.Pt(50, 50)); got != 0 {
		t.Errorf("NearestSite = %d", got)
	}
	if len(tr.Neighbors(0)) != 0 {
		t.Error("single point has no neighbors")
	}
}

func TestTwoPoints(t *testing.T) {
	tr, err := Build([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEdges() != 1 {
		t.Errorf("edges = %d, want 1", tr.NumEdges())
	}
	if nbs := tr.Neighbors(0); len(nbs) != 1 || nbs[0] != 1 {
		t.Errorf("Neighbors(0) = %v", nbs)
	}
	if nbs := tr.Neighbors(1); len(nbs) != 1 || nbs[0] != 0 {
		t.Errorf("Neighbors(1) = %v", nbs)
	}
	if got := tr.NearestSite(geom.Pt(0.9, 0)); got != 1 {
		t.Errorf("NearestSite = %d, want 1", got)
	}
}

func TestTriangleCCWAndCW(t *testing.T) {
	for _, pts := range [][]geom.Point{
		{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0.5, 1)},
		{geom.Pt(0, 0), geom.Pt(0.5, 1), geom.Pt(1, 0)}, // other orientation
	} {
		tr, err := Build(pts)
		if err != nil {
			t.Fatal(err)
		}
		if tr.NumEdges() != 3 {
			t.Errorf("edges = %d, want 3", tr.NumEdges())
		}
		tris := tr.Triangles()
		if len(tris) != 1 {
			t.Fatalf("triangles = %v, want exactly 1", tris)
		}
		if err := tr.Validate(true); err != nil {
			t.Error(err)
		}
	}
}

func TestCollinearPoints(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0), geom.Pt(4, 0)}
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEdges() != 4 {
		t.Errorf("collinear chain edges = %d, want 4", tr.NumEdges())
	}
	if len(tr.Triangles()) != 0 {
		t.Error("collinear points should produce no triangles")
	}
	// Chain adjacency: interior points have 2 neighbors, endpoints 1.
	if len(tr.Neighbors(0)) != 1 || len(tr.Neighbors(4)) != 1 {
		t.Error("endpoints should have exactly 1 neighbor")
	}
	for i := 1; i <= 3; i++ {
		if len(tr.Neighbors(i)) != 2 {
			t.Errorf("interior point %d has %d neighbors, want 2", i, len(tr.Neighbors(i)))
		}
	}
	if got := tr.NearestSite(geom.Pt(2.4, 5)); got != 2 {
		t.Errorf("NearestSite = %d, want 2", got)
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1),
		geom.Pt(1, 0), // duplicate of index 1
		geom.Pt(0, 0), // duplicate of index 0
	}
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumSites() != 3 {
		t.Errorf("distinct sites = %d, want 3", tr.NumSites())
	}
	if tr.Canonical(3) != 1 || tr.Canonical(4) != 0 || tr.Canonical(1) != 1 {
		t.Errorf("canonical mapping wrong: %d %d", tr.Canonical(3), tr.Canonical(4))
	}
	// A duplicate's neighbors are its canonical's neighbors.
	if got, want := tr.Neighbors(3), tr.Neighbors(1); len(got) != len(want) {
		t.Errorf("duplicate neighbors %v != canonical neighbors %v", got, want)
	}
}

func TestSquareWithCenter(t *testing.T) {
	// 4 cocircular corners + center: classic degenerate configuration.
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1), geom.Pt(0.5, 0.5),
	}
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(true); err != nil {
		t.Error(err)
	}
	tris := tr.Triangles()
	if len(tris) != 4 {
		t.Errorf("triangles = %d, want 4 (fan around center)", len(tris))
	}
	if got := len(tr.Neighbors(4)); got != 4 {
		t.Errorf("center degree = %d, want 4", got)
	}
}

func TestGridDegenerate(t *testing.T) {
	// Regular grid: every unit square's corners are cocircular. Exact
	// predicates must keep the structure consistent.
	var pts []geom.Point
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			pts = append(pts, geom.Pt(float64(x), float64(y)))
		}
	}
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(false); err != nil {
		t.Fatal(err)
	}
	// Euler: for n points with h on the hull, triangles = 2n-2-h,
	// edges = 3n-3-h... but cocircular ties allow any diagonal choice; the
	// counts still must satisfy Euler's formula exactly.
	n := tr.NumSites()
	hull := tr.ConvexHull()
	h := len(hull)
	wantTris := 2*n - 2 - h
	wantEdges := 3*n - 3 - h
	if got := len(tr.Triangles()); got != wantTris {
		t.Errorf("triangles = %d, want %d (n=%d h=%d)", got, wantTris, n, h)
	}
	if got := tr.NumEdges(); got != wantEdges {
		t.Errorf("edges = %d, want %d", got, wantEdges)
	}
	// Empty circumcircle must hold non-strictly (no point strictly inside).
	if err := tr.Validate(true); err != nil {
		t.Error(err)
	}
}

func TestEmptyCircumcircleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, n := range []int{4, 10, 50, 200} {
		pts := uniformPoints(rng, n)
		tr, err := Build(pts)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(true); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestEulerFormulaRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(500)
		tr, err := Build(uniformPoints(rng, n))
		if err != nil {
			t.Fatal(err)
		}
		hull := tr.ConvexHull()
		h := len(hull)
		if got, want := len(tr.Triangles()), 2*n-2-h; got != want {
			t.Fatalf("trial %d: triangles=%d want %d (n=%d h=%d)", trial, got, want, n, h)
		}
		if got, want := tr.NumEdges(), 3*n-3-h; got != want {
			t.Fatalf("trial %d: edges=%d want %d", trial, got, want)
		}
	}
}

func TestConvexHullMatchesGeom(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 20; trial++ {
		pts := uniformPoints(rng, 30+rng.Intn(200))
		tr, err := Build(pts)
		if err != nil {
			t.Fatal(err)
		}
		hullIdx := tr.ConvexHull()
		got := make([]geom.Point, len(hullIdx))
		for i, id := range hullIdx {
			got[i] = pts[id]
		}
		want := geom.ConvexHull(pts)
		if len(got) != len(want) {
			t.Fatalf("hull size %d, want %d", len(got), len(want))
		}
		// Same vertex set (rotation-invariant comparison).
		wantSet := make(map[geom.Point]bool, len(want))
		for _, p := range want {
			wantSet[p] = true
		}
		for _, p := range got {
			if !wantSet[p] {
				t.Fatalf("hull vertex %v not in reference hull", p)
			}
		}
		if !geom.Ring(got).IsCounterClockwise() {
			t.Error("hull should be CCW")
		}
	}
}

func TestNeighborsOrderedCCW(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	pts := uniformPoints(rng, 300)
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	// For every site the neighbor list must be sorted by angle (CCW
	// rotational order), allowing an arbitrary starting rotation.
	for i := 0; i < len(pts); i++ {
		nbs := tr.Neighbors(i)
		if len(nbs) < 3 {
			continue
		}
		angles := make([]float64, len(nbs))
		for j, nb := range nbs {
			d := pts[nb].Sub(pts[i])
			angles[j] = math.Atan2(d.Y, d.X)
		}
		wraps := 0
		for j := 0; j < len(angles); j++ {
			if angles[(j+1)%len(angles)] < angles[j] {
				wraps++
			}
		}
		if wraps != 1 {
			t.Fatalf("site %d neighbors not in CCW rotational order: angles %v", i, angles)
		}
	}
}

func TestNearestSiteMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	pts := uniformPoints(rng, 500)
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2000; trial++ {
		q := geom.Pt(rng.Float64()*1.2-0.1, rng.Float64()*1.2-0.1)
		got := tr.NearestSite(q)
		want, wantD := 0, math.Inf(1)
		for i, p := range pts {
			if d := q.Dist2(p); d < wantD {
				want, wantD = i, d
			}
		}
		if q.Dist2(pts[got]) != wantD {
			t.Fatalf("NearestSite(%v) = %d (d=%v), brute force %d (d=%v)",
				q, got, q.Dist2(pts[got]), want, wantD)
		}
	}
}

func TestNearestSiteFromAnyStart(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	pts := uniformPoints(rng, 200)
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Pt(0.5, 0.5)
	want := tr.NearestSite(q)
	wantD := q.Dist2(pts[want])
	for start := 0; start < len(pts); start += 7 {
		got := tr.NearestSiteFrom(q, start)
		if q.Dist2(pts[got]) != wantD {
			t.Fatalf("NearestSiteFrom(start=%d) = %d, want distance %v", start, got, wantD)
		}
	}
}

func TestNeighborSymmetryLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	tr, err := Build(uniformPoints(rng, 5000))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(false); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyCircumcircleSampledLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large triangulation check")
	}
	rng := rand.New(rand.NewSource(808))
	pts := uniformPoints(rng, 20000)
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	tris := tr.Triangles()
	// Sample triangles; for each, check the empty-circumcircle property
	// against the sites adjacent to its three corners (the only candidates
	// that could violate it locally) plus random far sites.
	for trial := 0; trial < 2000; trial++ {
		tri := tris[rng.Intn(len(tris))]
		check := func(v int32) {
			if v == tri[0] || v == tri[1] || v == tri[2] {
				return
			}
			if tr.inCircle(tri[0], tri[1], tri[2], v) {
				t.Fatalf("site %d strictly inside circumcircle of %v", v, tri)
			}
		}
		for _, c := range tri {
			for _, nb := range tr.Neighbors(int(c)) {
				check(nb)
			}
		}
		for k := 0; k < 5; k++ {
			check(int32(rng.Intn(len(pts))))
		}
	}
}

func TestTrianglesAreCCWAndDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	tr, err := Build(uniformPoints(rng, 1000))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[Triangle]bool)
	for _, tri := range tr.Triangles() {
		if !tr.ccw(tri[0], tri[1], tri[2]) {
			t.Fatalf("triangle %v not CCW", tri)
		}
		// Canonicalize rotation for the duplicate check.
		c := tri
		for c[0] != min3(c[0], c[1], c[2]) {
			c = Triangle{c[1], c[2], c[0]}
		}
		if seen[c] {
			t.Fatalf("duplicate triangle %v", c)
		}
		seen[c] = true
	}
}

func min3(a, b, c int32) int32 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

func TestClusteredDuplicateHeavyInput(t *testing.T) {
	// Many coincident and near-coincident points.
	rng := rand.New(rand.NewSource(111))
	var pts []geom.Point
	for i := 0; i < 50; i++ {
		p := geom.Pt(rng.Float64(), rng.Float64())
		for j := 0; j < 1+rng.Intn(4); j++ {
			pts = append(pts, p) // exact duplicates
		}
	}
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumSites() != 50 {
		t.Errorf("distinct sites = %d, want 50", tr.NumSites())
	}
	if err := tr.Validate(true); err != nil {
		t.Error(err)
	}
}

func TestEdgesEnumeration(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0.5, 1)}
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	tr.Edges(func(a, b int32) bool {
		count++
		if a == b {
			t.Errorf("self-loop edge %d-%d", a, b)
		}
		return true
	})
	if count != 3 {
		t.Errorf("enumerated %d edges, want 3", count)
	}
	// Early stop.
	count = 0
	tr.Edges(func(a, b int32) bool { count++; return false })
	if count != 1 {
		t.Errorf("early stop enumerated %d, want 1", count)
	}
}

func BenchmarkBuild10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := uniformPoints(rng, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuild100k(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pts := uniformPoints(rng, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNearestSite(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pts := uniformPoints(rng, 100_000)
	tr, err := Build(pts)
	if err != nil {
		b.Fatal(err)
	}
	queries := uniformPoints(rng, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.NearestSite(queries[i%len(queries)])
	}
}
