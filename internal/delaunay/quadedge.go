package delaunay

// Quad-edge storage (Guibas & Stolfi 1985), array-backed.
//
// Edges are identified by int32 ids. Four directed edge slots make up a
// quad: id&^3 is the quad base, id&3 the rotation. Slot 0 and slot 2 are the
// two directions of the primal edge; slots 1 and 3 are the dual edge (used
// only to make Splice work, no data stored for them).

type edgeID = int32

const nilEdge edgeID = -1

// edgePool holds the quad-edge arrays. The zero value is ready to use.
type edgePool struct {
	onext []edgeID // next edge CCW around origin, indexed by edge id
	org   []int32  // origin vertex, valid for even (primal) edge ids
	alive []bool   // per quad
	free  []edgeID // freed quad bases for reuse
}

func newEdgePool(hint int) *edgePool {
	return &edgePool{
		onext: make([]edgeID, 0, 4*hint),
		org:   make([]int32, 0, 4*hint),
		alive: make([]bool, 0, hint),
	}
}

func rot(e edgeID) edgeID    { return e&^3 | (e+1)&3 }
func sym(e edgeID) edgeID    { return e ^ 2 }
func invRot(e edgeID) edgeID { return e&^3 | (e+3)&3 }

func (p *edgePool) lnext(e edgeID) edgeID { return rot(p.onext[invRot(e)]) }
func (p *edgePool) oprev(e edgeID) edgeID { return rot(p.onext[rot(e)]) }
func (p *edgePool) rprev(e edgeID) edgeID { return p.onext[sym(e)] }

func (p *edgePool) dst(e edgeID) int32 { return p.org[sym(e)] }

// makeEdge allocates an isolated primal edge (its own onext) together with
// its dual loop, and returns the primal slot-0 edge id.
func (p *edgePool) makeEdge(orgV, dstV int32) edgeID {
	var e edgeID
	if n := len(p.free); n > 0 {
		e = p.free[n-1]
		p.free = p.free[:n-1]
		p.alive[e>>2] = true
	} else {
		e = edgeID(len(p.onext))
		p.onext = append(p.onext, 0, 0, 0, 0)
		p.org = append(p.org, 0, 0, 0, 0)
		p.alive = append(p.alive, true)
	}
	p.onext[e] = e
	p.onext[e+1] = e + 3
	p.onext[e+2] = e + 2
	p.onext[e+3] = e + 1
	p.org[e] = orgV
	p.org[e+2] = dstV
	return e
}

// splice is the quad-edge topology operator: it either joins or splits the
// two origin rings of a and b (and correspondingly the dual face rings).
func (p *edgePool) splice(a, b edgeID) {
	alpha := rot(p.onext[a])
	beta := rot(p.onext[b])
	p.onext[a], p.onext[b] = p.onext[b], p.onext[a]
	p.onext[alpha], p.onext[beta] = p.onext[beta], p.onext[alpha]
}

// connect adds a new edge from dst(a) to org(b) so that the three edges
// share the same left face.
func (p *edgePool) connect(a, b edgeID) edgeID {
	e := p.makeEdge(p.dst(a), p.org[b])
	p.splice(e, p.lnext(a))
	p.splice(sym(e), b)
	return e
}

// deleteEdge detaches e from the structure and recycles its quad.
func (p *edgePool) deleteEdge(e edgeID) {
	p.splice(e, p.oprev(e))
	p.splice(sym(e), p.oprev(sym(e)))
	base := e &^ 3
	p.alive[base>>2] = false
	p.free = append(p.free, base)
}

// snapshot returns a frozen copy of the pool's topology arrays. The copy
// shares no mutable state with the original: traversals of the snapshot
// (onext/org/dst walks) are unaffected by later makeEdge/splice/deleteEdge
// calls on the live pool. The free list is not carried over — snapshots
// are read-only views and never allocate edges.
func (p *edgePool) snapshot() *edgePool {
	return &edgePool{
		onext: append([]edgeID(nil), p.onext...),
		org:   append([]int32(nil), p.org...),
		alive: append([]bool(nil), p.alive...),
	}
}

// numQuads returns the total number of allocated quads (live and freed).
func (p *edgePool) numQuads() int { return len(p.alive) }

// quadAlive reports whether quad q is live.
func (p *edgePool) quadAlive(q int) bool { return p.alive[q] }
