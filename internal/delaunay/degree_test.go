package delaunay

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestAverageDegreeBelowSix(t *testing.T) {
	// Euler: average Delaunay degree < 6 for any planar point set.
	rng := rand.New(rand.NewSource(1))
	tr, err := Build(uniformPoints(rng, 3000))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < tr.NumPoints(); i++ {
		total += tr.Degree(i)
	}
	avg := float64(total) / float64(tr.NumPoints())
	if avg >= 6 {
		t.Errorf("average degree %v, must be < 6", avg)
	}
	if avg < 5 {
		t.Errorf("average degree %v suspiciously low for a uniform set", avg)
	}
}

func TestDegreeMatchesNeighborsLen(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr, err := Build(uniformPoints(rng, 500))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tr.NumPoints(); i++ {
		if tr.Degree(i) != len(tr.Neighbors(i)) {
			t.Fatalf("site %d: Degree %d != len(Neighbors) %d",
				i, tr.Degree(i), len(tr.Neighbors(i)))
		}
	}
}

func TestAccessors(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1), geom.Pt(1, 0)}
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumPoints() != 4 {
		t.Errorf("NumPoints = %d", tr.NumPoints())
	}
	if tr.NumSites() != 3 {
		t.Errorf("NumSites = %d", tr.NumSites())
	}
	for i, p := range pts {
		if tr.Point(i) != p {
			t.Errorf("Point(%d) = %v", i, tr.Point(i))
		}
	}
}

func TestDelaunayContainsNearestNeighborGraph(t *testing.T) {
	// Property 6 of the paper: each point's nearest neighbor is among its
	// Delaunay neighbors.
	rng := rand.New(rand.NewSource(3))
	pts := uniformPoints(rng, 400)
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		best, bestD := -1, 0.0
		for j, q := range pts {
			if i == j {
				continue
			}
			if d := p.Dist2(q); best == -1 || d < bestD {
				best, bestD = j, d
			}
		}
		found := false
		for _, nb := range tr.Neighbors(i) {
			if pts[nb].Dist2(p) == bestD {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("point %d: nearest neighbor %d not among Delaunay neighbors", i, best)
		}
	}
}

func TestVoronoiNeighborProperty2(t *testing.T) {
	// Property 2 of the paper: for a site q, the nearest other site is a
	// Voronoi neighbor of q. (Equivalent to Property 6 from the other
	// side; checked via the dual.)
	rng := rand.New(rand.NewSource(4))
	pts := uniformPoints(rng, 300)
	tr, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		var bestD = -1.0
		for j, q := range pts {
			if i != j {
				if d := p.Dist2(q); bestD < 0 || d < bestD {
					bestD = d
				}
			}
		}
		ok := false
		for _, nb := range tr.Neighbors(i) {
			if p.Dist2(pts[nb]) == bestD {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("site %d: closest site is not a Voronoi neighbor", i)
		}
	}
}
