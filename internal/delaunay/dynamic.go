package delaunay

import (
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/robust"
)

// Dynamic is an incrementally updatable Delaunay triangulation: sites are
// inserted one at a time (Guibas & Stolfi's InsertSite, via Lischinski's
// formulation: locate walk, star connection, in-circle edge swapping), so
// the Voronoi topology used by the area query can track a growing dataset
// without full rebuilds.
//
// The triangulation is bootstrapped from three "fence" sites forming a
// triangle that strictly contains the declared universe. Every user site
// therefore falls inside the current triangulation, which keeps the locate
// walk and hull handling trivial. Fence sites occupy ids 0..2; user sites
// get ids from FirstSiteID upward. Neighbor queries may report fence ids —
// callers that only care about user sites filter with IsFence.
type Dynamic struct {
	pool     *edgePool
	pts      []geom.Point
	vertEdge []edgeID
	universe geom.Rect
	start    edgeID // walk entry point, updated to recent insertions
	byCoord  map[geom.Point]int32
	frozen   bool // read-only snapshot view; InsertSite panics
}

// FirstSiteID is the id of the first user site in a Dynamic triangulation.
const FirstSiteID = 3

// ErrOutsideUniverse is returned by InsertSite for points outside the
// declared universe.
var ErrOutsideUniverse = errors.New("delaunay: point outside the declared universe")

// NewDynamic returns a dynamic triangulation accepting sites within
// universe. The fence triangle is several universe-diagonals away, so
// fence sites never shadow user sites in in-universe proximity queries.
func NewDynamic(universe geom.Rect) *Dynamic {
	if universe.IsEmpty() {
		universe = geom.NewRect(0, 0, 1, 1)
	}
	w, h := universe.Width(), universe.Height()
	m := w + h
	if m == 0 {
		m = 1
	}
	c := universe.Center()
	// A triangle with a horizontal bottom edge below the universe and an
	// apex far above; CCW orientation.
	fence := [3]geom.Point{
		geom.Pt(c.X-3*m, c.Y-2*m),
		geom.Pt(c.X+3*m, c.Y-2*m),
		geom.Pt(c.X, c.Y+3*m),
	}
	d := &Dynamic{
		pool:     newEdgePool(64),
		universe: universe,
		byCoord:  make(map[geom.Point]int32, 64),
	}
	for _, p := range fence {
		d.byCoord[p] = int32(len(d.pts))
		d.pts = append(d.pts, p)
	}
	// Same wiring as the static 3-point base case (which Validate-level
	// tests exercise heavily): a: 0->1, b: 1->2, then close the triangle.
	p := d.pool
	a := p.makeEdge(0, 1)
	b := p.makeEdge(1, 2)
	p.splice(sym(a), b)
	cEdge := p.connect(b, a) // 2->0
	d.vertEdge = []edgeID{a, b, cEdge}
	d.start = a
	return d
}

// Snapshot returns an immutable view of the triangulation as of this call.
// The view answers every read-side query (Point, Neighbors, NeighborIDs,
// NearestSite, Validate, ...) with the topology frozen at snapshot time,
// and is unaffected by later InsertSite calls on the live triangulation —
// including from other goroutines, provided Snapshot itself is serialized
// with the writer (the caller's epoch scheme does this).
//
// The snapshot is cheap in the copy-on-write sense: the point slice is
// append-only, so it is shared with the live triangulation (pinned to its
// current length); only the per-vertex and quad-edge topology arrays —
// which InsertSite's swaps mutate in place — are copied, O(sites) with
// memcpy constants. Calling InsertSite on a snapshot panics.
func (d *Dynamic) Snapshot() *Dynamic {
	return &Dynamic{
		pool:     d.pool.snapshot(),
		pts:      d.pts[:len(d.pts):len(d.pts)],
		vertEdge: append([]edgeID(nil), d.vertEdge...),
		universe: d.universe,
		start:    d.start,
		frozen:   true,
	}
}

// NumSites returns the number of sites including the three fence sites.
func (d *Dynamic) NumSites() int { return len(d.pts) }

// NumUserSites returns the number of inserted (non-fence) sites.
func (d *Dynamic) NumUserSites() int { return len(d.pts) - FirstSiteID }

// Point returns the coordinates of site id.
func (d *Dynamic) Point(id int) geom.Point { return d.pts[id] }

// IsFence reports whether id is one of the three bootstrap fence sites.
func (d *Dynamic) IsFence(id int) bool { return id < FirstSiteID }

// Universe returns the declared universe rectangle.
func (d *Dynamic) Universe() geom.Rect { return d.universe }

func (d *Dynamic) ccw(a, b, c int32) bool {
	pa, pb, pc := d.pts[a], d.pts[b], d.pts[c]
	return robust.Orient2D(pa.X, pa.Y, pb.X, pb.Y, pc.X, pc.Y) > 0
}

func (d *Dynamic) inCircle(a, b, c, x int32) bool {
	pa, pb, pc, px := d.pts[a], d.pts[b], d.pts[c], d.pts[x]
	return robust.InCircle(pa.X, pa.Y, pb.X, pb.Y, pc.X, pc.Y, px.X, px.Y) > 0
}

// rightOfPt reports whether x lies strictly right of directed edge e.
func (d *Dynamic) rightOfPt(x geom.Point, e edgeID) bool {
	o := d.pts[d.pool.org[e]]
	t := d.pts[d.pool.dst(e)]
	return robust.Orient2D(x.X, x.Y, t.X, t.Y, o.X, o.Y) > 0
}

// rightOfID reports whether site v lies strictly right of edge e.
func (d *Dynamic) rightOfID(v int32, e edgeID) bool {
	return d.ccw(v, d.pool.dst(e), d.pool.org[e])
}

// onEdge reports whether x lies on the closed segment of edge e.
func (d *Dynamic) onEdge(x geom.Point, e edgeID) bool {
	a := d.pts[d.pool.org[e]]
	b := d.pts[d.pool.dst(e)]
	if robust.Orient2D(a.X, a.Y, b.X, b.Y, x.X, x.Y) != 0 {
		return false
	}
	return geom.NewRect(a.X, a.Y, b.X, b.Y).ContainsPoint(x)
}

// locate walks from the previous insertion to an edge on whose left face x
// lies (Guibas–Stolfi locate). x must be inside the fence triangle.
func (d *Dynamic) locate(x geom.Point) edgeID {
	p := d.pool
	e := d.start
	for steps := 0; ; steps++ {
		if steps > 4*len(d.pts)+1000 {
			panic("delaunay: locate walk did not terminate") // impossible on valid input
		}
		switch {
		case x == d.pts[p.org[e]] || x == d.pts[p.dst(e)]:
			return e
		case d.rightOfPt(x, e):
			e = sym(e)
		case !d.rightOfPt(x, p.onext[e]):
			e = p.onext[e]
		case !d.rightOfPt(x, dprevEdge(p, e)):
			e = dprevEdge(p, e)
		default:
			return e
		}
	}
}

// dprevEdge returns Dprev(e): the next edge into dst(e), clockwise.
func dprevEdge(p *edgePool, e edgeID) edgeID {
	return invRot(p.onext[invRot(e)])
}

// lprevEdge returns Lprev(e) = Sym(Onext(e)).
func lprevEdge(p *edgePool, e edgeID) edgeID { return sym(p.onext[e]) }

// swap rotates edge e counterclockwise within its quadrilateral
// (Guibas–Stolfi Swap), replacing it with the opposite diagonal.
func (d *Dynamic) swap(e edgeID) {
	p := d.pool
	a := p.oprev(e)
	b := p.oprev(sym(e))
	// a shares org with e, b with sym(e): they survive the swap and can
	// anchor the vertex→edge table.
	d.vertEdge[p.org[e]] = a
	d.vertEdge[p.org[sym(e)]] = b
	p.splice(e, a)
	p.splice(sym(e), b)
	p.splice(e, p.lnext(a))
	p.splice(sym(e), p.lnext(b))
	p.org[e] = p.dst(a)
	p.org[sym(e)] = p.dst(b)
	d.vertEdge[p.org[e]] = e
	d.vertEdge[p.org[sym(e)]] = sym(e)
}

// InsertSite adds a site and restores the Delaunay property. It returns
// the site's id; inserted reports whether a new site was created (false
// when the coordinate already exists, in which case the existing id is
// returned).
func (d *Dynamic) InsertSite(x geom.Point) (id int, inserted bool, err error) {
	if d.frozen {
		panic("delaunay: InsertSite on a read-only Snapshot view")
	}
	if !d.universe.ContainsPoint(x) {
		return 0, false, fmt.Errorf("%w: %v not in %v", ErrOutsideUniverse, x, d.universe)
	}
	if existing, dup := d.byCoord[x]; dup {
		return int(existing), false, nil
	}
	p := d.pool

	e := d.locate(x)
	if x == d.pts[p.org[e]] {
		return int(p.org[e]), false, nil
	}
	if x == d.pts[p.dst(e)] {
		return int(p.dst(e)), false, nil
	}
	if d.onEdge(x, e) {
		e = p.oprev(e)
		d.deleteEdgeFixingVerts(p.onext[e])
	}

	newID := int32(len(d.pts))
	d.pts = append(d.pts, x)
	d.byCoord[x] = newID
	d.vertEdge = append(d.vertEdge, nilEdge)

	// Connect x to every vertex of the containing face.
	base := p.makeEdge(p.org[e], newID)
	d.vertEdge[newID] = sym(base)
	p.splice(base, e)
	startingEdge := base
	for {
		base = p.connect(e, sym(base))
		e = p.oprev(base)
		if p.lnext(e) == startingEdge {
			break
		}
	}

	// Examine suspect edges, swapping until locally Delaunay everywhere.
	for {
		t := p.oprev(e)
		if d.rightOfID(p.dst(t), e) &&
			d.inCircle(p.org[e], p.dst(t), p.dst(e), newID) {
			d.swap(e)
			e = p.oprev(e)
		} else if p.onext[e] == startingEdge {
			d.start = startingEdge
			return int(newID), true, nil
		} else {
			e = lprevEdge(p, p.onext[e])
		}
	}
}

// deleteEdgeFixingVerts removes e, repointing vertex→edge entries that
// reference either direction of it.
func (d *Dynamic) deleteEdgeFixingVerts(e edgeID) {
	p := d.pool
	for _, side := range [2]edgeID{e, sym(e)} {
		v := p.org[side]
		if d.vertEdge[v] == side {
			if next := p.onext[side]; next != side {
				d.vertEdge[v] = next
			} else {
				d.vertEdge[v] = nilEdge
			}
		}
	}
	p.deleteEdge(e)
}

// Neighbors calls fn with each Delaunay neighbor of site id in rotational
// order; fn returning false stops the iteration. Fence sites may be
// reported.
func (d *Dynamic) Neighbors(id int, fn func(nb int32) bool) {
	start := d.vertEdge[id]
	if start == nilEdge {
		return
	}
	p := d.pool
	e := start
	for {
		if !fn(p.dst(e)) {
			return
		}
		e = p.onext[e]
		if e == start {
			return
		}
	}
}

// NeighborIDs returns the Delaunay neighbors of site id as a fresh slice.
func (d *Dynamic) NeighborIDs(id int) []int32 {
	var out []int32
	d.Neighbors(id, func(nb int32) bool {
		out = append(out, nb)
		return true
	})
	return out
}

// NearestSite returns the user site closest to q via greedy descent over
// the Delaunay graph (fence sites may be traversed but are never
// returned). It returns -1 when no user sites exist.
func (d *Dynamic) NearestSite(q geom.Point) int {
	if d.NumUserSites() == 0 {
		return -1
	}
	cur := int32(len(d.pts) - 1) // most recent insertion is a user site
	curD := q.Dist2(d.pts[cur])
	for {
		best, bestD := cur, curD
		d.Neighbors(int(cur), func(nb int32) bool {
			if dd := q.Dist2(d.pts[nb]); dd < bestD {
				best, bestD = nb, dd
			}
			return true
		})
		if best == cur {
			break
		}
		cur, curD = best, bestD
	}
	if d.IsFence(int(cur)) {
		// Only possible for query locations outside the data spread; fall
		// back to an exact scan.
		best, bestD := -1, 0.0
		for i := FirstSiteID; i < len(d.pts); i++ {
			if dd := q.Dist2(d.pts[i]); best == -1 || dd < bestD {
				best, bestD = i, dd
			}
		}
		return best
	}
	return int(cur)
}

// Validate checks neighbor symmetry, vertex→edge table consistency and the
// local Delaunay property of every internal edge. Intended for tests.
func (d *Dynamic) Validate() error {
	p := d.pool
	for v := range d.pts {
		if start := d.vertEdge[v]; start != nilEdge && int(p.org[start]) != v {
			return fmt.Errorf("delaunay: vertEdge[%d] has org %d", v, p.org[start])
		}
		symmetric := true
		d.Neighbors(v, func(nb int32) bool {
			found := false
			d.Neighbors(int(nb), func(back int32) bool {
				if int(back) == v {
					found = true
					return false
				}
				return true
			})
			if !found {
				symmetric = false
				return false
			}
			return true
		})
		if !symmetric {
			return fmt.Errorf("delaunay: dynamic adjacency not symmetric at %d", v)
		}
	}
	for q := 0; q < p.numQuads(); q++ {
		if !p.quadAlive(q) {
			continue
		}
		e := edgeID(q * 4)
		a, b := p.org[e], p.dst(e)
		c := p.dst(p.lnext(e)) // apex of the left face
		x := p.dst(p.oprev(e)) // apex of the right face
		if c == x {
			continue
		}
		if p.lnext(p.lnext(p.lnext(e))) != e {
			continue // left face is not a triangle (outer face)
		}
		if !d.ccw(a, b, c) || !d.ccw(b, a, x) {
			continue // boundary configuration
		}
		if d.inCircle(a, b, c, x) {
			return fmt.Errorf("delaunay: edge %d-%d not locally Delaunay (apexes %d, %d)", a, b, c, x)
		}
	}
	return nil
}
