// Package delaunay builds the Delaunay triangulation of a planar point set
// and answers the topology queries the Voronoi-based area query needs:
// the Delaunay (equivalently, Voronoi) neighbors of every site, nearest-site
// location, triangle enumeration and convex hull extraction.
//
// Construction is the Guibas–Stolfi divide-and-conquer algorithm over a
// quad-edge mesh: O(n log n) worst case, no super-triangle artifacts, and —
// because every orientation and in-circle decision goes through package
// robust — exact behavior on degenerate inputs (collinear runs, cocircular
// quadruples, duplicate points).
package delaunay

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/robust"
)

// ErrNoPoints is returned by Build for an empty input.
var ErrNoPoints = errors.New("delaunay: no input points")

// Triangulation is an immutable Delaunay triangulation of a point set.
// All methods are safe for concurrent readers.
type Triangulation struct {
	pts  []geom.Point
	pool *edgePool

	// canon maps every input index to the canonical index of its
	// coordinates (first occurrence); distinct points map to themselves.
	canon []int32
	// distinct lists the canonical indices, sorted lexicographically.
	distinct []int32

	// CSR adjacency over canonical vertices: the Delaunay neighbors of
	// vertex v are neighbors[nbrOff[v]:nbrOff[v+1]], in counterclockwise
	// rotational order around v.
	nbrOff    []int32
	neighbors []int32

	// vertEdge holds one primal edge whose origin is v, or nilEdge.
	vertEdge []edgeID

	startEdge edgeID // a hull edge; entry point for walks
}

// Build constructs the Delaunay triangulation of pts. Duplicate coordinates
// are merged: the duplicate's index behaves exactly like the first
// occurrence. The input slice is not retained or modified.
func Build(pts []geom.Point) (*Triangulation, error) {
	n := len(pts)
	if n == 0 {
		return nil, ErrNoPoints
	}
	t := &Triangulation{
		pts:  append([]geom.Point(nil), pts...),
		pool: newEdgePool(3*n + 8),
	}
	t.dedupe()
	if len(t.distinct) >= 2 {
		le, _ := t.triangulate(t.distinct)
		t.startEdge = le
	} else {
		t.startEdge = nilEdge
	}
	t.buildAdjacency()
	return t, nil
}

// NumPoints returns the number of input points (including duplicates).
func (t *Triangulation) NumPoints() int { return len(t.pts) }

// NumSites returns the number of distinct sites.
func (t *Triangulation) NumSites() int { return len(t.distinct) }

// Point returns the coordinates of input index i.
func (t *Triangulation) Point(i int) geom.Point { return t.pts[i] }

// Canonical returns the canonical site index for input index i (itself
// unless the point is a duplicate of an earlier one).
func (t *Triangulation) Canonical(i int) int { return int(t.canon[i]) }

// dedupe fills canon and distinct.
func (t *Triangulation) dedupe() {
	n := len(t.pts)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := t.pts[order[a]], t.pts[order[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		if pa.Y != pb.Y {
			return pa.Y < pb.Y
		}
		return order[a] < order[b] // stable canonical choice: lowest index
	})
	t.canon = make([]int32, n)
	t.distinct = t.distinct[:0]
	for i := 0; i < n; {
		j := i
		for j < n && t.pts[order[j]].Equal(t.pts[order[i]]) {
			j++
		}
		// order[i:j] share coordinates; order[i] has the lowest index among
		// them thanks to the index tiebreak.
		c := order[i]
		for k := i; k < j; k++ {
			t.canon[order[k]] = c
		}
		t.distinct = append(t.distinct, c)
		i = j
	}
}

// --- geometric predicates over vertex ids ---

func (t *Triangulation) ccw(a, b, c int32) bool {
	pa, pb, pc := t.pts[a], t.pts[b], t.pts[c]
	return robust.Orient2D(pa.X, pa.Y, pb.X, pb.Y, pc.X, pc.Y) > 0
}

func (t *Triangulation) inCircle(a, b, c, d int32) bool {
	pa, pb, pc, pd := t.pts[a], t.pts[b], t.pts[c], t.pts[d]
	return robust.InCircle(pa.X, pa.Y, pb.X, pb.Y, pc.X, pc.Y, pd.X, pd.Y) > 0
}

func (t *Triangulation) rightOf(p int32, e edgeID) bool {
	return t.ccw(p, t.pool.dst(e), t.pool.org[e])
}

func (t *Triangulation) leftOf(p int32, e edgeID) bool {
	return t.ccw(p, t.pool.org[e], t.pool.dst(e))
}

// triangulate runs Guibas–Stolfi divide and conquer over s, a
// lexicographically sorted slice of at least 2 distinct vertex ids. It
// returns (le, re): the counterclockwise hull edge out of the leftmost
// vertex and the clockwise hull edge out of the rightmost vertex.
func (t *Triangulation) triangulate(s []int32) (le, re edgeID) {
	p := t.pool
	switch len(s) {
	case 2:
		a := p.makeEdge(s[0], s[1])
		return a, sym(a)
	case 3:
		a := p.makeEdge(s[0], s[1])
		b := p.makeEdge(s[1], s[2])
		p.splice(sym(a), b)
		switch {
		case t.ccw(s[0], s[1], s[2]):
			p.connect(b, a)
			return a, sym(b)
		case t.ccw(s[0], s[2], s[1]):
			c := p.connect(b, a)
			return sym(c), c
		default: // collinear
			return a, sym(b)
		}
	}

	mid := len(s) / 2
	ldo, ldi := t.triangulate(s[:mid])
	rdi, rdo := t.triangulate(s[mid:])

	// Find the lower common tangent of the two half-hulls.
	for {
		if t.leftOf(p.org[rdi], ldi) {
			ldi = p.lnext(ldi)
		} else if t.rightOf(p.org[ldi], rdi) {
			rdi = p.rprev(rdi)
		} else {
			break
		}
	}
	basel := p.connect(sym(rdi), ldi)
	if p.org[ldi] == p.org[ldo] {
		ldo = sym(basel)
	}
	if p.org[rdi] == p.org[rdo] {
		rdo = basel
	}

	// Merge upward ("rising bubble").
	valid := func(e edgeID) bool { return t.rightOf(p.dst(e), basel) }
	for {
		lcand := p.onext[sym(basel)]
		if valid(lcand) {
			for t.inCircle(p.dst(basel), p.org[basel], p.dst(lcand), p.dst(p.onext[lcand])) {
				next := p.onext[lcand]
				p.deleteEdge(lcand)
				lcand = next
			}
		}
		rcand := p.oprev(basel)
		if valid(rcand) {
			for t.inCircle(p.dst(basel), p.org[basel], p.dst(rcand), p.dst(p.oprev(rcand))) {
				next := p.oprev(rcand)
				p.deleteEdge(rcand)
				rcand = next
			}
		}
		lvalid, rvalid := valid(lcand), valid(rcand)
		if !lvalid && !rvalid {
			break // tangent reached: merge complete
		}
		if !lvalid || (rvalid && t.inCircle(p.dst(lcand), p.org[lcand], p.org[rcand], p.dst(rcand))) {
			basel = p.connect(rcand, sym(basel))
		} else {
			basel = p.connect(sym(basel), sym(lcand))
		}
	}
	return ldo, rdo
}

// buildAdjacency fills vertEdge and the CSR neighbor arrays.
func (t *Triangulation) buildAdjacency() {
	n := len(t.pts)
	p := t.pool
	t.vertEdge = make([]edgeID, n)
	for i := range t.vertEdge {
		t.vertEdge[i] = nilEdge
	}
	degree := make([]int32, n)
	for q := 0; q < p.numQuads(); q++ {
		if !p.quadAlive(q) {
			continue
		}
		for _, e := range [2]edgeID{edgeID(q * 4), edgeID(q*4 + 2)} {
			o := p.org[e]
			t.vertEdge[o] = e
			degree[o]++
		}
	}
	t.nbrOff = make([]int32, n+1)
	for i := 0; i < n; i++ {
		t.nbrOff[i+1] = t.nbrOff[i] + degree[i]
	}
	t.neighbors = make([]int32, t.nbrOff[n])
	fill := make([]int32, n)
	for v := 0; v < n; v++ {
		start := t.vertEdge[v]
		if start == nilEdge {
			continue
		}
		e := start
		for {
			t.neighbors[t.nbrOff[v]+fill[v]] = p.dst(e)
			fill[v]++
			e = p.onext[e]
			if e == start {
				break
			}
		}
	}
}

// Neighbors returns the Delaunay (equivalently Voronoi) neighbors of the
// site with input index i, in counterclockwise rotational order. The
// returned slice aliases internal storage and must not be modified.
func (t *Triangulation) Neighbors(i int) []int32 {
	v := t.canon[i]
	return t.neighbors[t.nbrOff[v]:t.nbrOff[v+1]]
}

// Degree returns the number of Delaunay neighbors of site i.
func (t *Triangulation) Degree(i int) int {
	v := t.canon[i]
	return int(t.nbrOff[v+1] - t.nbrOff[v])
}

// NearestSite returns the index of the site closest to q (any one of them
// on exact ties). It performs a greedy descent over the Delaunay graph,
// which is guaranteed to terminate at the global nearest neighbor.
func (t *Triangulation) NearestSite(q geom.Point) int {
	return t.NearestSiteFrom(q, int(t.distinct[0]))
}

// NearestSiteFrom is NearestSite starting the descent from the given site
// index; a start near q makes the walk shorter.
func (t *Triangulation) NearestSiteFrom(q geom.Point, start int) int {
	if len(t.distinct) == 1 {
		return int(t.distinct[0])
	}
	cur := t.canon[start]
	curD := q.Dist2(t.pts[cur])
	for {
		best := cur
		bestD := curD
		for _, nb := range t.neighbors[t.nbrOff[cur]:t.nbrOff[cur+1]] {
			if d := q.Dist2(t.pts[nb]); d < bestD {
				best, bestD = nb, d
			}
		}
		if best == cur {
			return int(cur)
		}
		cur, curD = best, bestD
	}
}

// Triangle is a triangle of the triangulation, vertices in counterclockwise
// order, identified by input indices.
type Triangle [3]int32

// Triangles enumerates every triangle exactly once. The outer face is
// excluded. Allocation is proportional to the output.
func (t *Triangulation) Triangles() []Triangle {
	p := t.pool
	var out []Triangle
	for q := 0; q < p.numQuads(); q++ {
		if !p.quadAlive(q) {
			continue
		}
		for _, e := range [2]edgeID{edgeID(q * 4), edgeID(q*4 + 2)} {
			// Emit the left face of e if it is a CCW 3-cycle and e is the
			// cycle's smallest edge id (dedup).
			e2 := p.lnext(e)
			e3 := p.lnext(e2)
			if p.lnext(e3) != e || e2 < e || e3 < e {
				continue
			}
			a, b, c := p.org[e], p.org[e2], p.org[e3]
			if t.ccw(a, b, c) {
				out = append(out, Triangle{a, b, c})
			}
		}
	}
	return out
}

// NumEdges returns the number of undirected Delaunay edges.
func (t *Triangulation) NumEdges() int {
	p := t.pool
	n := 0
	for q := 0; q < p.numQuads(); q++ {
		if p.quadAlive(q) {
			n++
		}
	}
	return n
}

// Edges calls fn for every undirected Delaunay edge (a, b) with a < b not
// guaranteed; each edge is reported once. Returning false stops the
// enumeration.
func (t *Triangulation) Edges(fn func(a, b int32) bool) {
	p := t.pool
	for q := 0; q < p.numQuads(); q++ {
		if !p.quadAlive(q) {
			continue
		}
		e := edgeID(q * 4)
		if !fn(p.org[e], p.dst(e)) {
			return
		}
	}
}

// ConvexHull returns the indices of the convex hull vertices in
// counterclockwise order. Collinear hull vertices are included.
func (t *Triangulation) ConvexHull() []int32 {
	if t.startEdge == nilEdge {
		return append([]int32(nil), t.distinct...)
	}
	p := t.pool
	// startEdge is the CCW hull edge out of the leftmost vertex; following
	// rprev walks the outer face. Walk both candidate directions and keep
	// the one that cycles; rprev is correct for the Guibas–Stolfi le edge.
	var hull []int32
	e := t.startEdge
	for {
		hull = append(hull, p.org[e])
		e = p.rprev(e)
		if e == t.startEdge || len(hull) > len(t.pts)+1 {
			break
		}
	}
	if geom.Ring(t.hullPoints(hull)).SignedArea() < 0 {
		// Walked clockwise; reverse for the documented CCW order.
		for i, j := 0, len(hull)-1; i < j; i, j = i+1, j-1 {
			hull[i], hull[j] = hull[j], hull[i]
		}
	}
	return hull
}

func (t *Triangulation) hullPoints(ids []int32) []geom.Point {
	out := make([]geom.Point, len(ids))
	for i, id := range ids {
		out[i] = t.pts[id]
	}
	return out
}

// Validate checks structural invariants: neighbor symmetry, CCW triangles,
// and (expensively) the empty-circumcircle property of every triangle
// against every site when exhaustive is true. Intended for tests.
func (t *Triangulation) Validate(exhaustive bool) error {
	// Neighbor symmetry.
	for _, v := range t.distinct {
		for _, nb := range t.neighbors[t.nbrOff[v]:t.nbrOff[v+1]] {
			if !t.hasNeighbor(nb, v) {
				return fmt.Errorf("delaunay: adjacency not symmetric: %d->%d", v, nb)
			}
		}
	}
	tris := t.Triangles()
	for _, tri := range tris {
		if !t.ccw(tri[0], tri[1], tri[2]) {
			return fmt.Errorf("delaunay: triangle %v not CCW", tri)
		}
	}
	if exhaustive {
		for _, tri := range tris {
			for _, v := range t.distinct {
				if v == tri[0] || v == tri[1] || v == tri[2] {
					continue
				}
				if t.inCircle(tri[0], tri[1], tri[2], v) {
					return fmt.Errorf("delaunay: site %d inside circumcircle of %v", v, tri)
				}
			}
		}
	}
	return nil
}

func (t *Triangulation) hasNeighbor(v, w int32) bool {
	for _, nb := range t.neighbors[t.nbrOff[v]:t.nbrOff[v+1]] {
		if nb == w {
			return true
		}
	}
	return false
}
