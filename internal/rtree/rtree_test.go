package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func pointItem(id int64, x, y float64) Item {
	return Item{ID: id, Rect: geom.NewRect(x, y, x, y)}
}

func randomPointItems(rng *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = pointItem(int64(i), rng.Float64(), rng.Float64())
	}
	return items
}

func randomRectItems(rng *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		x, y := rng.Float64(), rng.Float64()
		items[i] = Item{ID: int64(i), Rect: geom.NewRect(x, y, x+rng.Float64()*0.05, y+rng.Float64()*0.05)}
	}
	return items
}

// bruteSearch is the oracle for window queries.
func bruteSearch(items []Item, q geom.Rect) map[int64]bool {
	out := make(map[int64]bool)
	for _, it := range items {
		if q.Intersects(it.Rect) {
			out[it.ID] = true
		}
	}
	return out
}

func collect(t *Tree, q geom.Rect) map[int64]bool {
	out := make(map[int64]bool)
	t.Search(q, func(id int64, _ geom.Rect) bool {
		out[id] = true
		return true
	})
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := New(0)
	if tr.Len() != 0 {
		t.Error("empty tree should have Len 0")
	}
	if got := collect(tr, geom.NewRect(0, 0, 1, 1)); len(got) != 0 {
		t.Errorf("search on empty tree returned %v", got)
	}
	if _, _, ok := tr.NearestNeighbor(geom.Pt(0, 0)); ok {
		t.Error("NN on empty tree should report !ok")
	}
	if tr.Delete(1, geom.NewRect(0, 0, 0, 0)) {
		t.Error("delete on empty tree should fail")
	}
	if err := tr.Validate(true); err != nil {
		t.Error(err)
	}
}

func TestInsertAndSearchSmall(t *testing.T) {
	tr := New(4)
	tr.Insert(1, geom.NewRect(0, 0, 1, 1))
	tr.Insert(2, geom.NewRect(2, 2, 3, 3))
	tr.Insert(3, geom.NewRect(0.5, 0.5, 2.5, 2.5))
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := collect(tr, geom.NewRect(0.9, 0.9, 1.1, 1.1))
	if !got[1] || !got[3] || got[2] {
		t.Errorf("search = %v, want {1,3}", got)
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 5, 17, 100, 1000} {
		items := randomRectItems(rng, n)
		tr := New(8)
		for _, it := range items {
			tr.Insert(it.ID, it.Rect)
		}
		if err := tr.Validate(true); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for trial := 0; trial < 100; trial++ {
			q := geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
			got := collect(tr, q)
			want := bruteSearch(items, q)
			if len(got) != len(want) {
				t.Fatalf("n=%d query %v: got %d results, want %d", n, q, len(got), len(want))
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("n=%d query %v: missing id %d", n, q, id)
				}
			}
		}
	}
}

func TestBulkLoadMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 16, 17, 256, 5000} {
		items := randomPointItems(rng, n)
		tr := BulkLoad(items, 16)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if err := tr.Validate(false); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for trial := 0; trial < 50; trial++ {
			cx, cy := rng.Float64(), rng.Float64()
			q := geom.NewRect(cx, cy, cx+0.2, cy+0.2)
			got := collect(tr, q)
			want := bruteSearch(items, q)
			if len(got) != len(want) {
				t.Fatalf("n=%d: got %d results, want %d", n, len(got), len(want))
			}
		}
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	tr := BulkLoad(nil, 16)
	if tr.Len() != 0 {
		t.Error("empty bulk load should be empty")
	}
	if got := collect(tr, geom.NewRect(0, 0, 1, 1)); len(got) != 0 {
		t.Error("search should find nothing")
	}
}

func TestSearchEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := BulkLoad(randomPointItems(rng, 500), 16)
	calls := 0
	tr.Search(geom.NewRect(0, 0, 1, 1), func(int64, geom.Rect) bool {
		calls++
		return calls < 10
	})
	if calls != 10 {
		t.Errorf("early stop after %d calls, want 10", calls)
	}
}

func TestSearchStats(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := BulkLoad(randomPointItems(rng, 2000), 16)
	st := tr.Search(geom.NewRect(0.4, 0.4, 0.6, 0.6), func(int64, geom.Rect) bool { return true })
	if st.Results == 0 || st.NodesVisited == 0 || st.EntriesScanned < st.Results {
		t.Errorf("implausible stats: %+v", st)
	}
	// A tiny query should visit far fewer nodes than a full scan.
	full := tr.Search(tr.Bounds(), func(int64, geom.Rect) bool { return true })
	if st.NodesVisited >= full.NodesVisited {
		t.Errorf("selective query visited %d nodes, full scan %d", st.NodesVisited, full.NodesVisited)
	}
	if full.Results != 2000 {
		t.Errorf("full scan found %d, want 2000", full.Results)
	}
}

func TestNearestNeighborMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := randomPointItems(rng, 2000)
	dynamic := New(8)
	for _, it := range items {
		dynamic.Insert(it.ID, it.Rect)
	}
	bulk := BulkLoad(items, 16)
	for trial := 0; trial < 500; trial++ {
		q := geom.Pt(rng.Float64()*1.4-0.2, rng.Float64()*1.4-0.2)
		wantD := math.Inf(1)
		for _, it := range items {
			if d := it.Rect.Dist2Point(q); d < wantD {
				wantD = d
			}
		}
		for name, tr := range map[string]*Tree{"dynamic": dynamic, "bulk": bulk} {
			got, _, ok := tr.NearestNeighbor(q)
			if !ok {
				t.Fatalf("%s: no NN", name)
			}
			if got.Rect.Dist2Point(q) != wantD {
				t.Fatalf("%s: NN dist %v, want %v", name, got.Rect.Dist2Point(q), wantD)
			}
		}
	}
}

func TestKNearestOrderedAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	items := randomPointItems(rng, 500)
	tr := BulkLoad(items, 16)
	q := geom.Pt(0.5, 0.5)
	for _, k := range []int{1, 5, 50, 500, 600} {
		got, _ := tr.KNearest(q, k)
		wantLen := k
		if wantLen > len(items) {
			wantLen = len(items)
		}
		if len(got) != wantLen {
			t.Fatalf("k=%d: got %d items", k, len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].Rect.Dist2Point(q) > got[i].Rect.Dist2Point(q) {
				t.Fatalf("k=%d: results not ordered at %d", k, i)
			}
		}
		// Compare distance multiset with brute force.
		dists := make([]float64, len(items))
		for i, it := range items {
			dists[i] = it.Rect.Dist2Point(q)
		}
		sort.Float64s(dists)
		for i := range got {
			if got[i].Rect.Dist2Point(q) != dists[i] {
				t.Fatalf("k=%d: rank %d dist %v, want %v", k, i, got[i].Rect.Dist2Point(q), dists[i])
			}
		}
	}
	if got, _ := tr.KNearest(q, 0); got != nil {
		t.Error("k=0 should return nil")
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := randomPointItems(rng, 300)
	tr := New(8)
	for _, it := range items {
		tr.Insert(it.ID, it.Rect)
	}
	// Delete in random order, validating along the way.
	perm := rng.Perm(len(items))
	for k, pi := range perm {
		it := items[pi]
		if !tr.Delete(it.ID, it.Rect) {
			t.Fatalf("delete %d failed", it.ID)
		}
		if tr.Delete(it.ID, it.Rect) {
			t.Fatalf("double delete %d succeeded", it.ID)
		}
		if tr.Len() != len(items)-k-1 {
			t.Fatalf("Len = %d after %d deletes", tr.Len(), k+1)
		}
		if k%37 == 0 {
			if err := tr.Validate(false); err != nil {
				t.Fatalf("after %d deletes: %v", k+1, err)
			}
			// Remaining items still findable.
			got := collect(tr, geom.NewRect(0, 0, 1, 1))
			if len(got) != tr.Len() {
				t.Fatalf("after %d deletes: %d of %d items findable", k+1, len(got), tr.Len())
			}
		}
	}
	if tr.Len() != 0 {
		t.Errorf("tree not empty after deleting everything: %d", tr.Len())
	}
}

func TestDeleteWrongRect(t *testing.T) {
	tr := New(4)
	tr.Insert(1, geom.NewRect(0, 0, 1, 1))
	if tr.Delete(1, geom.NewRect(0, 0, 2, 2)) {
		t.Error("delete with mismatched rect should fail")
	}
	if tr.Len() != 1 {
		t.Error("failed delete should not change size")
	}
}

func TestInsertDeleteInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := New(8)
	live := make(map[int64]Item)
	nextID := int64(0)
	for step := 0; step < 3000; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			it := pointItem(nextID, rng.Float64(), rng.Float64())
			nextID++
			tr.Insert(it.ID, it.Rect)
			live[it.ID] = it
		} else {
			for id, it := range live {
				if !tr.Delete(id, it.Rect) {
					t.Fatalf("step %d: delete %d failed", step, id)
				}
				delete(live, id)
				break
			}
		}
		if tr.Len() != len(live) {
			t.Fatalf("step %d: Len %d != live %d", step, tr.Len(), len(live))
		}
	}
	if err := tr.Validate(false); err != nil {
		t.Fatal(err)
	}
	got := collect(tr, geom.NewRect(-1, -1, 2, 2))
	if len(got) != len(live) {
		t.Fatalf("found %d, want %d", len(got), len(live))
	}
	for id := range live {
		if !got[id] {
			t.Fatalf("live item %d not found", id)
		}
	}
}

func TestDuplicateRects(t *testing.T) {
	tr := New(4)
	r := geom.NewRect(0.5, 0.5, 0.5, 0.5)
	for i := int64(0); i < 50; i++ {
		tr.Insert(i, r)
	}
	if got := collect(tr, r); len(got) != 50 {
		t.Errorf("found %d duplicates, want 50", len(got))
	}
	if err := tr.Validate(true); err != nil {
		t.Error(err)
	}
	for i := int64(0); i < 50; i++ {
		if !tr.Delete(i, r) {
			t.Fatalf("delete duplicate %d failed", i)
		}
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := New(16)
	for i := 0; i < 10000; i++ {
		tr.Insert(int64(i), geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()))
	}
	// With fan-out >= 6 (min fill), 10k items fit in height <= 6.
	if h := tr.Height(); h > 6 {
		t.Errorf("height = %d, suspiciously deep", h)
	}
}

func TestBulkVsDynamicSameResults(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	items := randomRectItems(rng, 1000)
	dyn := New(16)
	for _, it := range items {
		dyn.Insert(it.ID, it.Rect)
	}
	bulk := BulkLoad(items, 16)
	for trial := 0; trial < 100; trial++ {
		q := geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		a, b := collect(dyn, q), collect(bulk, q)
		if len(a) != len(b) {
			t.Fatalf("dynamic found %d, bulk %d", len(a), len(b))
		}
	}
	// Bulk-loaded trees should generally answer small queries with fewer
	// node visits than insertion-built trees (packing quality).
	var dynNodes, bulkNodes int
	for trial := 0; trial < 200; trial++ {
		cx, cy := rng.Float64(), rng.Float64()
		q := geom.NewRect(cx, cy, cx+0.05, cy+0.05)
		dynNodes += dyn.Search(q, func(int64, geom.Rect) bool { return true }).NodesVisited
		bulkNodes += bulk.Search(q, func(int64, geom.Rect) bool { return true }).NodesVisited
	}
	if bulkNodes > dynNodes*2 {
		t.Errorf("bulk tree much worse than dynamic: %d vs %d node visits", bulkNodes, dynNodes)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(int64(i), geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()))
	}
}

func BenchmarkBulkLoad100k(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	items := randomPointItems(rng, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BulkLoad(items, 16)
	}
}

func BenchmarkWindowQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tr := BulkLoad(randomPointItems(rng, 100_000), 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cx, cy := rng.Float64()*0.9, rng.Float64()*0.9
		tr.Search(geom.NewRect(cx, cy, cx+0.1, cy+0.1), func(int64, geom.Rect) bool { return true })
	}
}

func BenchmarkNearestNeighbor(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	tr := BulkLoad(randomPointItems(rng, 100_000), 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.NearestNeighbor(geom.Pt(rng.Float64(), rng.Float64()))
	}
}

func TestSnapshotIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tr := New(8)
	items := randomPointItems(rng, 400)
	for _, it := range items[:250] {
		tr.Insert(it.ID, it.Rect)
	}

	snap := tr.Snapshot()
	if snap.Len() != 250 {
		t.Fatalf("snapshot Len = %d, want 250", snap.Len())
	}

	// Mutate the original both ways: insert the rest, delete some originals.
	for _, it := range items[250:] {
		tr.Insert(it.ID, it.Rect)
	}
	for _, it := range items[:50] {
		if !tr.Delete(it.ID, it.Rect) {
			t.Fatalf("delete %d failed", it.ID)
		}
	}

	if snap.Len() != 250 {
		t.Fatalf("snapshot Len changed to %d after live mutation", snap.Len())
	}
	if err := snap.Validate(false); err != nil {
		t.Errorf("snapshot invalid after live mutation: %v", err)
	}
	if err := tr.Validate(false); err != nil {
		t.Errorf("live tree invalid: %v", err)
	}

	// Window results on the snapshot must be exactly the pinned item set.
	q := geom.NewRect(0.2, 0.2, 0.7, 0.7)
	want := bruteSearch(items[:250], q)
	got := make(map[int64]bool)
	snap.Search(q, func(id int64, _ geom.Rect) bool {
		got[id] = true
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("snapshot search returned %d items, want %d", len(got), len(want))
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("snapshot search missing id %d", id)
		}
	}

	// And the snapshot's nearest neighbor comes from the pinned set too.
	qp := geom.Pt(0.5, 0.5)
	bestID, bestD := int64(-1), math.Inf(1)
	for _, it := range items[:250] {
		if d := it.Rect.Dist2Point(qp); d < bestD {
			bestID, bestD = it.ID, d
		}
	}
	item, _, ok := snap.NearestNeighbor(qp)
	if !ok || item.ID != bestID {
		t.Errorf("snapshot NearestNeighbor = %v (ok=%v), want id %d", item, ok, bestID)
	}

	// Mutating the snapshot must not leak back into the original.
	snapSize, origSize := snap.Len(), tr.Len()
	snap.Insert(9999, geom.NewRect(0.99, 0.99, 0.99, 0.99))
	if snap.Len() != snapSize+1 || tr.Len() != origSize {
		t.Errorf("snapshot insert leaked: snap %d orig %d", snap.Len(), tr.Len())
	}
}
