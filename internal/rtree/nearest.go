package rtree

import (
	"container/heap"

	"repro/internal/geom"
)

// nnEntry is a priority-queue element for best-first traversal: either a
// node or a leaf item, ordered by MINDIST to the query point.
type nnEntry struct {
	dist2 float64
	node  *node // nil for item entries
	id    int64
	rect  geom.Rect
}

type nnHeap []nnEntry

func (h nnHeap) Len() int            { return len(h) }
func (h nnHeap) Less(i, j int) bool  { return h[i].dist2 < h[j].dist2 }
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(nnEntry)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NearestNeighbor returns the stored item closest to q (by MINDIST of its
// rectangle; for point data this is the true nearest point). ok is false
// for an empty tree.
func (t *Tree) NearestNeighbor(q geom.Point) (item Item, stats QueryStats, ok bool) {
	items, st := t.KNearest(q, 1)
	if len(items) == 0 {
		return Item{}, st, false
	}
	return items[0], st, true
}

// KNearest returns up to k stored items in increasing distance from q,
// using best-first search (Hjaltason & Samet). It also reports traversal
// statistics.
func (t *Tree) KNearest(q geom.Point, k int) ([]Item, QueryStats) {
	var st QueryStats
	if k <= 0 || t.size == 0 {
		return nil, st
	}
	h := nnHeap{{dist2: t.root.bounds().Dist2Point(q), node: t.root}}
	out := make([]Item, 0, k)
	for len(h) > 0 {
		e := heap.Pop(&h).(nnEntry)
		if e.node == nil {
			out = append(out, Item{ID: e.id, Rect: e.rect})
			st.Results++
			if len(out) == k {
				return out, st
			}
			continue
		}
		n := e.node
		st.NodesVisited++
		if n.leaf {
			for i, r := range n.rects {
				st.EntriesScanned++
				heap.Push(&h, nnEntry{dist2: r.Dist2Point(q), id: n.ids[i], rect: r})
			}
		} else {
			for i, r := range n.rects {
				heap.Push(&h, nnEntry{dist2: r.Dist2Point(q), node: n.children[i]})
			}
		}
	}
	return out, st
}
