package rtree

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// BulkLoad builds a tree from items using Sort-Tile-Recursive packing
// (Leutenegger et al. 1997): sort by center x, tile into vertical slices,
// sort each slice by center y, pack leaves bottom-up. STR produces nearly
// square, minimally overlapping leaves — the standard choice for static
// point data. The input slice is not modified.
func BulkLoad(items []Item, maxEntries int) *Tree {
	t := New(maxEntries)
	n := len(items)
	if n == 0 {
		return t
	}
	t.size = n

	sorted := append([]Item(nil), items...)
	leaves := packLeaves(sorted, t.maxEntries)
	level := make([]*node, len(leaves))
	copy(level, leaves)
	for len(level) > 1 {
		level = packInternal(level, t.maxEntries)
	}
	t.root = level[0]
	return t
}

// packLeaves distributes items into leaf nodes with STR tiling.
func packLeaves(items []Item, cap int) []*node {
	n := len(items)
	leafCount := (n + cap - 1) / cap
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	sliceSize := sliceCount * cap

	sort.Slice(items, func(i, j int) bool {
		return items[i].Rect.Center().X < items[j].Rect.Center().X
	})

	var leaves []*node
	for s := 0; s < n; s += sliceSize {
		end := s + sliceSize
		if end > n {
			end = n
		}
		slice := items[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].Rect.Center().Y < slice[j].Rect.Center().Y
		})
		for i := 0; i < len(slice); i += cap {
			j := i + cap
			if j > len(slice) {
				j = len(slice)
			}
			leaf := &node{leaf: true}
			for _, it := range slice[i:j] {
				leaf.rects = append(leaf.rects, it.Rect)
				leaf.ids = append(leaf.ids, it.ID)
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packInternal groups one tree level into parents with STR tiling.
func packInternal(children []*node, cap int) []*node {
	type cn struct {
		n *node
		b geom.Rect
	}
	cs := make([]cn, len(children))
	for i, c := range children {
		cs[i] = cn{n: c, b: c.bounds()}
	}
	parentCount := (len(cs) + cap - 1) / cap
	sliceCount := int(math.Ceil(math.Sqrt(float64(parentCount))))
	sliceSize := sliceCount * cap

	sort.Slice(cs, func(i, j int) bool {
		return cs[i].b.Center().X < cs[j].b.Center().X
	})
	var parents []*node
	for s := 0; s < len(cs); s += sliceSize {
		end := s + sliceSize
		if end > len(cs) {
			end = len(cs)
		}
		slice := cs[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].b.Center().Y < slice[j].b.Center().Y
		})
		for i := 0; i < len(slice); i += cap {
			j := i + cap
			if j > len(slice) {
				j = len(slice)
			}
			p := &node{leaf: false}
			for _, c := range slice[i:j] {
				p.rects = append(p.rects, c.b)
				p.children = append(p.children, c.n)
			}
			parents = append(parents, p)
		}
	}
	return parents
}
