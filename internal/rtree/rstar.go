package rtree

import (
	"sort"

	"repro/internal/geom"
)

// NewRStar returns an empty tree that splits with the R*-tree topological
// split (Beckmann et al. 1990) — choose the split axis by minimum margin
// sum, then the distribution by minimum overlap — and chooses leaf-level
// subtrees by minimum overlap enlargement. Forced reinsertion is not
// implemented; the split policy alone captures most of the R*-tree's
// packing quality for point data and keeps deletion semantics identical to
// the Guttman tree.
func NewRStar(maxEntries int) *Tree {
	t := New(maxEntries)
	t.rstar = true
	return t
}

// rstarChoosePath picks the child with minimum overlap enlargement when
// the children are leaves, falling back to least area enlargement
// otherwise (the R* CHOOSESUBTREE rule).
func (t *Tree) rstarChoosePath(n *node, r geom.Rect) int {
	if !n.children[0].leaf {
		return t.choosePath(n, r)
	}
	best := 0
	bestOverlap := overlapEnlargement(n.rects, 0, r)
	bestEnl := n.rects[0].Enlargement(r)
	bestArea := n.rects[0].Area()
	for i := 1; i < len(n.rects); i++ {
		ov := overlapEnlargement(n.rects, i, r)
		enl := n.rects[i].Enlargement(r)
		area := n.rects[i].Area()
		if ov < bestOverlap ||
			(ov == bestOverlap && enl < bestEnl) ||
			(ov == bestOverlap && enl == bestEnl && area < bestArea) {
			best, bestOverlap, bestEnl, bestArea = i, ov, enl, area
		}
	}
	return best
}

// overlapEnlargement returns how much the total overlap between rects[i]
// and its siblings grows when rects[i] is extended to include r.
func overlapEnlargement(rects []geom.Rect, i int, r geom.Rect) float64 {
	grown := rects[i].Union(r)
	var before, after float64
	for j, s := range rects {
		if j == i {
			continue
		}
		before += rects[i].Intersection(s).Area()
		after += grown.Intersection(s).Area()
	}
	return after - before
}

// rstarSplit splits an overflowing node with the R* topological split and
// returns the new sibling.
func (t *Tree) rstarSplit(n *node) *node {
	type slot struct {
		rect  geom.Rect
		id    int64
		child *node
	}
	slots := make([]slot, n.count())
	for i := range n.rects {
		slots[i].rect = n.rects[i]
		if n.leaf {
			slots[i].id = n.ids[i]
		} else {
			slots[i].child = n.children[i]
		}
	}

	m := t.minEntries
	total := len(slots)

	// For one axis ordering, the candidate distributions put the first
	// m..total-m entries in the left group. marginSum scores an ordering;
	// bestDistribution returns the (overlap, area, splitIndex) optimum.
	evaluate := func(less func(a, b slot) bool) (marginSum float64, overlap, area float64, k int) {
		sort.Slice(slots, func(i, j int) bool { return less(slots[i], slots[j]) })
		// Prefix and suffix bounding rects.
		prefix := make([]geom.Rect, total+1)
		suffix := make([]geom.Rect, total+1)
		prefix[0] = geom.EmptyRect()
		suffix[total] = geom.EmptyRect()
		for i := 0; i < total; i++ {
			prefix[i+1] = prefix[i].Union(slots[i].rect)
			suffix[total-i-1] = suffix[total-i].Union(slots[total-i-1].rect)
		}
		overlap, area = -1, -1
		for split := m; split <= total-m; split++ {
			l, r := prefix[split], suffix[split]
			marginSum += l.Margin() + r.Margin()
			ov := l.Intersection(r).Area()
			ar := l.Area() + r.Area()
			if overlap < 0 || ov < overlap || (ov == overlap && ar < area) {
				overlap, area, k = ov, ar, split
			}
		}
		return marginSum, overlap, area, k
	}

	lessX := func(a, b slot) bool {
		if a.rect.MinX != b.rect.MinX {
			return a.rect.MinX < b.rect.MinX
		}
		return a.rect.MaxX < b.rect.MaxX
	}
	lessY := func(a, b slot) bool {
		if a.rect.MinY != b.rect.MinY {
			return a.rect.MinY < b.rect.MinY
		}
		return a.rect.MaxY < b.rect.MaxY
	}

	marginX, _, _, _ := evaluate(lessX)
	marginY, _, _, kY := evaluate(lessY)
	k := kY
	if marginX < marginY {
		// Re-sort on X (slots currently ordered by Y) and take X's best
		// distribution.
		_, _, _, kX := evaluate(lessX)
		k = kX
	}

	// slots[:k] stay in n; slots[k:] move to the sibling.
	sib := &node{leaf: n.leaf}
	n.rects = n.rects[:0]
	n.ids = n.ids[:0]
	n.children = n.children[:0]
	for i, s := range slots {
		dst := n
		if i >= k {
			dst = sib
		}
		dst.rects = append(dst.rects, s.rect)
		if n.leaf {
			dst.ids = append(dst.ids, s.id)
		} else {
			dst.children = append(dst.children, s.child)
		}
	}
	return sib
}
