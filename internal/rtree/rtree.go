// Package rtree implements a dynamic R-tree (Guttman 1984) with quadratic
// node splitting, STR bulk loading, window (range) queries, deletion and
// best-first nearest-neighbor search.
//
// This is the index both area-query methods share, exactly as in the paper:
// the traditional method issues a window query with the query polygon's
// MBR, and the Voronoi method issues one nearest-neighbor query to obtain
// its seed. Per-query instrumentation (nodes visited, entries scanned) is
// reported so the filtering cost of the two methods can be compared.
package rtree

import (
	"fmt"

	"repro/internal/geom"
)

// Default fan-out parameters. MinFill follows Guttman's 40% guideline.
const (
	DefaultMaxEntries = 16
	DefaultMinEntries = 6
)

// Item is a stored spatial object: an identifier and its bounding
// rectangle. Points are stored as degenerate rectangles.
type Item struct {
	ID   int64
	Rect geom.Rect
}

// Tree is an R-tree. The zero value is not usable; construct with New or
// BulkLoad. Not safe for concurrent mutation; concurrent readers are safe
// in the absence of writers.
type Tree struct {
	root       *node
	size       int
	maxEntries int
	minEntries int
	rstar      bool // use R* split and choose-subtree (see NewRStar)
}

type node struct {
	leaf     bool
	rects    []geom.Rect // bounding rect per slot
	ids      []int64     // leaf payloads (leaf only)
	children []*node     // child pointers (internal only)
}

func (n *node) bounds() geom.Rect {
	r := geom.EmptyRect()
	for _, c := range n.rects {
		r = r.Union(c)
	}
	return r
}

func (n *node) count() int { return len(n.rects) }

// New returns an empty tree with the given fan-out; maxEntries < 4 or an
// invalid min is replaced by defaults.
func New(maxEntries int) *Tree {
	if maxEntries < 4 {
		maxEntries = DefaultMaxEntries
	}
	min := maxEntries * 2 / 5
	if min < 2 {
		min = 2
	}
	return &Tree{
		root:       &node{leaf: true},
		maxEntries: maxEntries,
		minEntries: min,
	}
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// Snapshot returns an independent copy of the tree: searches and
// nearest-neighbor queries on the snapshot see exactly the items present
// at snapshot time, unaffected by later Insert/Delete calls on the
// original (and vice versa). Node slices are copied, so the cost is
// O(items); leaf payloads are values and share nothing. Snapshot itself
// must be serialized with writers — concurrent readers of the resulting
// snapshot need no further synchronization since nothing mutates it.
func (t *Tree) Snapshot() *Tree {
	c := *t
	c.root = t.root.clone()
	return &c
}

// clone deep-copies a node and its subtree.
func (n *node) clone() *node {
	c := &node{
		leaf:  n.leaf,
		rects: append([]geom.Rect(nil), n.rects...),
	}
	if n.leaf {
		c.ids = append([]int64(nil), n.ids...)
		return c
	}
	c.children = make([]*node, len(n.children))
	for i, ch := range n.children {
		c.children[i] = ch.clone()
	}
	return c
}

// Height returns the height of the tree (1 for a root-only tree).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// Bounds returns the bounding rectangle of all stored items.
func (t *Tree) Bounds() geom.Rect { return t.root.bounds() }

// Insert adds an item to the tree.
func (t *Tree) Insert(id int64, r geom.Rect) {
	t.insertItem(id, r)
	t.size++
}

// insertItem places the item without adjusting size (shared by Insert and
// the Delete condense pass, which re-homes items that were never removed).
func (t *Tree) insertItem(id int64, r geom.Rect) {
	if sib := t.insertRec(t.root, id, r); sib != nil {
		old := t.root
		t.root = &node{
			leaf:     false,
			rects:    []geom.Rect{old.bounds(), sib.bounds()},
			children: []*node{old, sib},
		}
	}
}

// insertRec descends to the least-enlargement leaf, inserts, and propagates
// splits back up the recursion; it returns the new sibling when n split.
func (t *Tree) insertRec(n *node, id int64, r geom.Rect) *node {
	if n.leaf {
		n.rects = append(n.rects, r)
		n.ids = append(n.ids, id)
	} else {
		var i int
		if t.rstar {
			i = t.rstarChoosePath(n, r)
		} else {
			i = t.choosePath(n, r)
		}
		if sib := t.insertRec(n.children[i], id, r); sib != nil {
			n.rects[i] = n.children[i].bounds()
			n.rects = append(n.rects, sib.bounds())
			n.children = append(n.children, sib)
		} else {
			n.rects[i] = n.rects[i].Union(r)
		}
	}
	if n.count() > t.maxEntries {
		if t.rstar {
			return t.rstarSplit(n)
		}
		return t.splitNode(n)
	}
	return nil
}

// choosePath picks the child of n that needs least enlargement to include
// r, breaking ties by smaller area.
func (t *Tree) choosePath(n *node, r geom.Rect) int {
	best := 0
	bestEnl := n.rects[0].Enlargement(r)
	bestArea := n.rects[0].Area()
	for i := 1; i < len(n.rects); i++ {
		enl := n.rects[i].Enlargement(r)
		area := n.rects[i].Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// splitNode splits an overflowing node in place using Guttman's quadratic
// split and returns the new sibling.
func (t *Tree) splitNode(n *node) *node {
	seedA, seedB := quadraticSeeds(n.rects)

	// Move all slots out, then redistribute.
	rects := n.rects
	ids := n.ids
	children := n.children
	n.rects = nil
	n.ids = nil
	n.children = nil

	sib := &node{leaf: n.leaf}
	assign := func(dst *node, i int) {
		dst.rects = append(dst.rects, rects[i])
		if n.leaf {
			dst.ids = append(dst.ids, ids[i])
		} else {
			dst.children = append(dst.children, children[i])
		}
	}
	assign(n, seedA)
	assign(sib, seedB)
	boundsA := rects[seedA]
	boundsB := rects[seedB]

	remaining := make([]int, 0, len(rects)-2)
	for i := range rects {
		if i != seedA && i != seedB {
			remaining = append(remaining, i)
		}
	}
	for len(remaining) > 0 {
		// Force-assign if one group must absorb the rest to reach min fill.
		if n.count()+len(remaining) == t.minEntries {
			for _, i := range remaining {
				assign(n, i)
				boundsA = boundsA.Union(rects[i])
			}
			break
		}
		if sib.count()+len(remaining) == t.minEntries {
			for _, i := range remaining {
				assign(sib, i)
				boundsB = boundsB.Union(rects[i])
			}
			break
		}
		// Pick the entry with the strongest preference.
		bestIdx, bestDiff, bestPos := -1, -1.0, 0
		for pos, i := range remaining {
			dA := boundsA.Enlargement(rects[i])
			dB := boundsB.Enlargement(rects[i])
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestIdx, bestDiff, bestPos = i, diff, pos
			}
		}
		i := bestIdx
		remaining = append(remaining[:bestPos], remaining[bestPos+1:]...)
		dA := boundsA.Enlargement(rects[i])
		dB := boundsB.Enlargement(rects[i])
		toA := dA < dB
		if dA == dB {
			if a, b := boundsA.Area(), boundsB.Area(); a != b {
				toA = a < b
			} else {
				toA = n.count() <= sib.count()
			}
		}
		if toA {
			assign(n, i)
			boundsA = boundsA.Union(rects[i])
		} else {
			assign(sib, i)
			boundsB = boundsB.Union(rects[i])
		}
	}
	return sib
}

// quadraticSeeds returns the pair of rect indices wasting the most area if
// grouped together.
func quadraticSeeds(rects []geom.Rect) (int, int) {
	a, b := 0, 1
	worst := -1.0
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			waste := rects[i].Union(rects[j]).Area() - rects[i].Area() - rects[j].Area()
			if waste > worst {
				worst, a, b = waste, i, j
			}
		}
	}
	return a, b
}

// QueryStats reports the work an index operation performed.
type QueryStats struct {
	NodesVisited   int // tree nodes touched
	EntriesScanned int // leaf entries tested against the query
	Results        int // matches reported
}

// Search calls fn for every item whose rectangle intersects query; fn
// returning false stops the search. It returns traversal statistics.
func (t *Tree) Search(query geom.Rect, fn func(id int64, r geom.Rect) bool) QueryStats {
	var st QueryStats
	t.search(t.root, query, fn, &st)
	return st
}

func (t *Tree) search(n *node, query geom.Rect, fn func(int64, geom.Rect) bool, st *QueryStats) bool {
	st.NodesVisited++
	if n.leaf {
		for i, r := range n.rects {
			st.EntriesScanned++
			if query.Intersects(r) {
				st.Results++
				if !fn(n.ids[i], r) {
					return false
				}
			}
		}
		return true
	}
	for i, r := range n.rects {
		if query.Intersects(r) {
			if !t.search(n.children[i], query, fn, st) {
				return false
			}
		}
	}
	return true
}

// Delete removes one item with the given id and rectangle. It reports
// whether an item was removed. Underflowing nodes are condensed and their
// orphaned entries reinserted (Guttman's CondenseTree).
func (t *Tree) Delete(id int64, r geom.Rect) bool {
	var orphans []Item
	var orphanSubtrees []*node
	removed := t.deleteRec(t.root, id, r, &orphans, &orphanSubtrees)
	if !removed {
		return false
	}
	t.size--
	// Shrink a root with a single internal child.
	for !t.root.leaf && t.root.count() == 1 {
		t.root = t.root.children[0]
	}
	for _, it := range orphans {
		t.insertItem(it.ID, it.Rect)
	}
	for _, sub := range orphanSubtrees {
		t.reinsertSubtree(sub)
	}
	return true
}

func (t *Tree) deleteRec(n *node, id int64, r geom.Rect, orphans *[]Item, orphanSubtrees *[]*node) bool {
	if n.leaf {
		for i := range n.ids {
			if n.ids[i] == id && n.rects[i] == r {
				n.rects = append(n.rects[:i], n.rects[i+1:]...)
				n.ids = append(n.ids[:i], n.ids[i+1:]...)
				return true
			}
		}
		return false
	}
	for i := 0; i < len(n.children); i++ {
		if !n.rects[i].ContainsRect(r) {
			continue
		}
		c := n.children[i]
		if !t.deleteRec(c, id, r, orphans, orphanSubtrees) {
			continue
		}
		if c.count() < t.minEntries && n.count() > 1 {
			// Condense: remove the underflowing child, reinsert content.
			n.rects = append(n.rects[:i], n.rects[i+1:]...)
			n.children = append(n.children[:i], n.children[i+1:]...)
			if c.leaf {
				for j := range c.ids {
					*orphans = append(*orphans, Item{ID: c.ids[j], Rect: c.rects[j]})
				}
			} else {
				*orphanSubtrees = append(*orphanSubtrees, c)
			}
		} else {
			n.rects[i] = c.bounds()
		}
		return true
	}
	return false
}

// reinsertSubtree reinserts every leaf item of an orphaned internal node.
func (t *Tree) reinsertSubtree(n *node) {
	if n.leaf {
		for i := range n.ids {
			t.insertItem(n.ids[i], n.rects[i])
		}
		return
	}
	for _, c := range n.children {
		t.reinsertSubtree(c)
	}
}

// Validate checks the structural invariants of the tree: bounding rects
// cover children, all leaves at the same depth, the item count matches
// Len, and — when checkMinFill is set — non-root nodes respect the minimum
// fill (bulk-loaded trees may pack trailing nodes below it). Intended for
// tests.
func (t *Tree) Validate(checkMinFill bool) error {
	leafDepth := -1
	items := 0
	var walk func(n *node, depth int, isRoot bool) error
	walk = func(n *node, depth int, isRoot bool) error {
		if !isRoot && checkMinFill {
			if n.count() < t.minEntries {
				return fmt.Errorf("rtree: node underfull: %d < %d", n.count(), t.minEntries)
			}
		}
		if !isRoot && n.count() == 0 {
			return fmt.Errorf("rtree: empty non-root node")
		}
		if n.count() > t.maxEntries {
			return fmt.Errorf("rtree: node overfull: %d > %d", n.count(), t.maxEntries)
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				return fmt.Errorf("rtree: leaves at depths %d and %d", leafDepth, depth)
			}
			items += n.count()
			if len(n.ids) != len(n.rects) {
				return fmt.Errorf("rtree: leaf slot mismatch")
			}
			return nil
		}
		if len(n.children) != len(n.rects) {
			return fmt.Errorf("rtree: internal slot mismatch")
		}
		for i, c := range n.children {
			if !n.rects[i].ContainsRect(c.bounds()) {
				return fmt.Errorf("rtree: child bounds %v escape slot rect %v", c.bounds(), n.rects[i])
			}
			if err := walk(c, depth+1, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0, true); err != nil {
		return err
	}
	if items != t.size {
		return fmt.Errorf("rtree: item count %d != size %d", items, t.size)
	}
	return nil
}
