package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestRStarSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 17, 200, 2000} {
		items := randomRectItems(rng, n)
		tr := NewRStar(8)
		for _, it := range items {
			tr.Insert(it.ID, it.Rect)
		}
		if err := tr.Validate(true); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for trial := 0; trial < 100; trial++ {
			q := geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
			got := collect(tr, q)
			want := bruteSearch(items, q)
			if len(got) != len(want) {
				t.Fatalf("n=%d: got %d, want %d", n, len(got), len(want))
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("n=%d: missing %d", n, id)
				}
			}
		}
	}
}

func TestRStarNearestNeighbor(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	items := randomPointItems(rng, 1500)
	tr := NewRStar(16)
	for _, it := range items {
		tr.Insert(it.ID, it.Rect)
	}
	for trial := 0; trial < 300; trial++ {
		q := geom.Pt(rng.Float64(), rng.Float64())
		got, _, ok := tr.NearestNeighbor(q)
		if !ok {
			t.Fatal("NN failed")
		}
		bestD := got.Rect.Dist2Point(q)
		for _, it := range items {
			if it.Rect.Dist2Point(q) < bestD {
				t.Fatalf("NN suboptimal at %v", q)
			}
		}
	}
}

func TestRStarDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := randomPointItems(rng, 400)
	tr := NewRStar(8)
	for _, it := range items {
		tr.Insert(it.ID, it.Rect)
	}
	for i, it := range items {
		if !tr.Delete(it.ID, it.Rect) {
			t.Fatalf("delete %d failed", it.ID)
		}
		if i%89 == 0 {
			if err := tr.Validate(false); err != nil {
				t.Fatal(err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after deleting all", tr.Len())
	}
}

func TestRStarPackingQuality(t *testing.T) {
	// The R* split should produce meaningfully less node overlap than the
	// quadratic split for uniformly random points: compare node visits on
	// small window queries.
	rng := rand.New(rand.NewSource(4))
	items := randomPointItems(rng, 20000)
	guttman := New(16)
	rstar := NewRStar(16)
	for _, it := range items {
		guttman.Insert(it.ID, it.Rect)
		rstar.Insert(it.ID, it.Rect)
	}
	var gNodes, sNodes int
	for trial := 0; trial < 300; trial++ {
		cx, cy := rng.Float64()*0.9, rng.Float64()*0.9
		q := geom.NewRect(cx, cy, cx+0.05, cy+0.05)
		gNodes += guttman.Search(q, func(int64, geom.Rect) bool { return true }).NodesVisited
		sNodes += rstar.Search(q, func(int64, geom.Rect) bool { return true }).NodesVisited
	}
	t.Logf("node visits over 300 queries: guttman=%d rstar=%d", gNodes, sNodes)
	if sNodes > gNodes {
		t.Errorf("R* split visited more nodes (%d) than quadratic (%d)", sNodes, gNodes)
	}
}

func TestRStarDuplicatePoints(t *testing.T) {
	tr := NewRStar(4)
	r := geom.NewRect(0.3, 0.3, 0.3, 0.3)
	for i := int64(0); i < 40; i++ {
		tr.Insert(i, r)
	}
	if err := tr.Validate(true); err != nil {
		t.Fatal(err)
	}
	if got := collect(tr, r); len(got) != 40 {
		t.Errorf("found %d, want 40", len(got))
	}
}

func BenchmarkInsertRStar(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	tr := NewRStar(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(int64(i), geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()))
	}
}

func BenchmarkWindowQueryRStar(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	tr := NewRStar(16)
	for i := 0; i < 100_000; i++ {
		tr.Insert(int64(i), geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cx, cy := rng.Float64()*0.9, rng.Float64()*0.9
		tr.Search(geom.NewRect(cx, cy, cx+0.1, cy+0.1), func(int64, geom.Rect) bool { return true })
	}
}
