package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

// KNearest over extended (non-point) rectangles: MINDIST ordering must
// hold for boxes too, including query points inside boxes (distance 0).
func TestKNearestRectItems(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := randomRectItems(rng, 800)
	tr := BulkLoad(items, 16)
	for trial := 0; trial < 200; trial++ {
		q := geom.Pt(rng.Float64(), rng.Float64())
		got, _ := tr.KNearest(q, 12)
		if len(got) != 12 {
			t.Fatalf("got %d items", len(got))
		}
		dists := make([]float64, len(items))
		for i, it := range items {
			dists[i] = it.Rect.Dist2Point(q)
		}
		sort.Float64s(dists)
		for i, it := range got {
			if it.Rect.Dist2Point(q) != dists[i] {
				t.Fatalf("trial %d rank %d: dist %v, want %v",
					trial, i, it.Rect.Dist2Point(q), dists[i])
			}
		}
	}
}

// Deletions down to and through the minimum fill of the root's children
// must keep the tree queryable at every step.
func TestDeleteShrinksRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := New(4) // tiny fan-out forces height quickly
	items := randomPointItems(rng, 64)
	for _, it := range items {
		tr.Insert(it.ID, it.Rect)
	}
	startHeight := tr.Height()
	if startHeight < 3 {
		t.Fatalf("setup: height %d too small for the shrink test", startHeight)
	}
	for i, it := range items {
		if !tr.Delete(it.ID, it.Rect) {
			t.Fatalf("delete %d failed", it.ID)
		}
		remaining := len(items) - i - 1
		got := collect(tr, geom.NewRect(0, 0, 1, 1))
		if len(got) != remaining {
			t.Fatalf("after %d deletes: %d findable, want %d", i+1, len(got), remaining)
		}
	}
	if tr.Height() != 1 {
		t.Errorf("empty tree height = %d, want 1", tr.Height())
	}
}
