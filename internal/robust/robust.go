// Package robust implements exact geometric predicates.
//
// The two predicates that decide planar topology — orientation of a point
// triple and the in-circle test — must never be wrong, or incremental
// Delaunay construction corrupts its own invariants. Plain float64
// evaluation is wrong exactly when it matters: when the determinant is close
// to zero.
//
// Each predicate is evaluated in two stages, following the structure of
// Shewchuk's adaptive predicates:
//
//  1. A fast float64 evaluation with a conservative forward error bound. If
//     the magnitude of the result exceeds the bound, its sign is trusted.
//  2. Otherwise the determinant is recomputed exactly with math/big.Rat.
//     float64 → Rat conversion is lossless, so the fallback is exact.
//
// For uniformly random inputs the fallback triggers almost never, so the
// amortized cost is a handful of multiplications per call.
package robust

import "math/big"

// Error-bound coefficients. Derived the same way as Shewchuk's: each is
// (k + c·epsilon)·epsilon for a small constant, rounded up generously. They
// only need to be conservative (too large merely causes a needless exact
// evaluation).
const (
	epsilon = 2.220446049250313e-16 // 2^-52

	ccwErrBound      = (3.0 + 16.0*epsilon) * epsilon
	inCircleErrBound = (10.0 + 96.0*epsilon) * epsilon
)

// Orient2D returns the sign of the (exact) signed area of triangle
// (ax,ay)-(bx,by)-(cx,cy): +1 when the triple turns counterclockwise,
// -1 when clockwise, 0 when collinear.
func Orient2D(ax, ay, bx, by, cx, cy float64) int {
	detLeft := (ax - cx) * (by - cy)
	detRight := (ay - cy) * (bx - cx)
	det := detLeft - detRight

	var detSum float64
	if detLeft > 0 {
		if detRight <= 0 {
			return sign(det)
		}
		detSum = detLeft + detRight
	} else if detLeft < 0 {
		if detRight >= 0 {
			return sign(det)
		}
		detSum = -detLeft - detRight
	} else {
		return sign(det)
	}

	errBound := ccwErrBound * detSum
	if det >= errBound || -det >= errBound {
		return sign(det)
	}
	return orient2DExact(ax, ay, bx, by, cx, cy)
}

// InCircle returns the sign of the in-circle determinant: +1 when (dx,dy)
// lies strictly inside the circumcircle of the counterclockwise triangle
// (ax,ay)-(bx,by)-(cx,cy), -1 when strictly outside, 0 when cocircular.
// If the triangle is clockwise the sign is flipped by the determinant
// itself, as usual.
func InCircle(ax, ay, bx, by, cx, cy, dx, dy float64) int {
	adx := ax - dx
	ady := ay - dy
	bdx := bx - dx
	bdy := by - dy
	cdx := cx - dx
	cdy := cy - dy

	bdxcdy := bdx * cdy
	cdxbdy := cdx * bdy
	alift := adx*adx + ady*ady

	cdxady := cdx * ady
	adxcdy := adx * cdy
	blift := bdx*bdx + bdy*bdy

	adxbdy := adx * bdy
	bdxady := bdx * ady
	clift := cdx*cdx + cdy*cdy

	det := alift*(bdxcdy-cdxbdy) + blift*(cdxady-adxcdy) + clift*(adxbdy-bdxady)

	permanent := (abs(bdxcdy)+abs(cdxbdy))*alift +
		(abs(cdxady)+abs(adxcdy))*blift +
		(abs(adxbdy)+abs(bdxady))*clift
	errBound := inCircleErrBound * permanent
	if det > errBound || -det > errBound {
		return sign(det)
	}
	return inCircleExact(ax, ay, bx, by, cx, cy, dx, dy)
}

func sign(x float64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// rat converts a float64 to an exact rational. The conversion never loses
// information because every finite float64 is a dyadic rational.
func rat(x float64) *big.Rat { return new(big.Rat).SetFloat64(x) }

func orient2DExact(ax, ay, bx, by, cx, cy float64) int {
	// det = (ax-cx)(by-cy) - (ay-cy)(bx-cx), evaluated exactly.
	acx := new(big.Rat).Sub(rat(ax), rat(cx))
	bcy := new(big.Rat).Sub(rat(by), rat(cy))
	acy := new(big.Rat).Sub(rat(ay), rat(cy))
	bcx := new(big.Rat).Sub(rat(bx), rat(cx))

	left := new(big.Rat).Mul(acx, bcy)
	right := new(big.Rat).Mul(acy, bcx)
	return left.Cmp(right)
}

func inCircleExact(ax, ay, bx, by, cx, cy, dx, dy float64) int {
	adx := new(big.Rat).Sub(rat(ax), rat(dx))
	ady := new(big.Rat).Sub(rat(ay), rat(dy))
	bdx := new(big.Rat).Sub(rat(bx), rat(dx))
	bdy := new(big.Rat).Sub(rat(by), rat(dy))
	cdx := new(big.Rat).Sub(rat(cx), rat(dx))
	cdy := new(big.Rat).Sub(rat(cy), rat(dy))

	mul := func(a, b *big.Rat) *big.Rat { return new(big.Rat).Mul(a, b) }
	sub := func(a, b *big.Rat) *big.Rat { return new(big.Rat).Sub(a, b) }
	add := func(a, b *big.Rat) *big.Rat { return new(big.Rat).Add(a, b) }

	alift := add(mul(adx, adx), mul(ady, ady))
	blift := add(mul(bdx, bdx), mul(bdy, bdy))
	clift := add(mul(cdx, cdx), mul(cdy, cdy))

	bcdet := sub(mul(bdx, cdy), mul(cdx, bdy))
	cadet := sub(mul(cdx, ady), mul(adx, cdy))
	abdet := sub(mul(adx, bdy), mul(bdx, ady))

	det := add(add(mul(alift, bcdet), mul(blift, cadet)), mul(clift, abdet))
	return det.Sign()
}
