package robust

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// orient2DBig evaluates the orientation determinant entirely in big.Rat as
// an oracle.
func orient2DBig(ax, ay, bx, by, cx, cy float64) int {
	acx := new(big.Rat).Sub(rat(ax), rat(cx))
	bcy := new(big.Rat).Sub(rat(by), rat(cy))
	acy := new(big.Rat).Sub(rat(ay), rat(cy))
	bcx := new(big.Rat).Sub(rat(bx), rat(cx))
	l := new(big.Rat).Mul(acx, bcy)
	r := new(big.Rat).Mul(acy, bcx)
	return l.Cmp(r)
}

func TestOrient2DBasic(t *testing.T) {
	tests := []struct {
		name                   string
		ax, ay, bx, by, cx, cy float64
		want                   int
	}{
		{"ccw", 0, 0, 1, 0, 0, 1, 1},
		{"cw", 0, 0, 0, 1, 1, 0, -1},
		{"collinear-horizontal", 0, 0, 1, 0, 2, 0, 0},
		{"collinear-diagonal", 0, 0, 1, 1, 2, 2, 0},
		{"collinear-repeated", 3, 4, 3, 4, 1, 2, 0},
		{"tiny-ccw", 0, 0, 1e-30, 0, 0, 1e-30, 1},
		{"large-ccw", 1e15, 1e15, 0, 1e15, 1e15, 0, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Orient2D(tc.ax, tc.ay, tc.bx, tc.by, tc.cx, tc.cy)
			if got != tc.want {
				t.Errorf("Orient2D = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestOrient2DNearDegenerate(t *testing.T) {
	// Points almost exactly on the line y = x, perturbed by one ulp. The
	// float64 fast path cannot decide these; the exact fallback must.
	base := 12345.6789
	a := [2]float64{0, 0}
	b := [2]float64{base, base}
	onLine := base / 2
	above := math.Nextafter(onLine, math.Inf(1))
	below := math.Nextafter(onLine, math.Inf(-1))

	if got := Orient2D(a[0], a[1], b[0], b[1], onLine, onLine); got != 0 {
		t.Errorf("point exactly on line: got %d, want 0", got)
	}
	if got := Orient2D(a[0], a[1], b[0], b[1], onLine, above); got != 1 {
		t.Errorf("point one ulp above line: got %d, want 1", got)
	}
	if got := Orient2D(a[0], a[1], b[0], b[1], onLine, below); got != -1 {
		t.Errorf("point one ulp below line: got %d, want -1", got)
	}
}

func TestOrient2DMatchesExactOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		// Mix of scales, including clustered coordinates that stress the
		// error bound.
		scale := math.Pow(10, float64(rng.Intn(12))-6)
		ax, ay := rng.Float64()*scale, rng.Float64()*scale
		bx, by := rng.Float64()*scale, rng.Float64()*scale
		cx, cy := rng.Float64()*scale, rng.Float64()*scale
		if got, want := Orient2D(ax, ay, bx, by, cx, cy), orient2DBig(ax, ay, bx, by, cx, cy); got != want {
			t.Fatalf("Orient2D(%v,%v,%v,%v,%v,%v) = %d, oracle %d",
				ax, ay, bx, by, cx, cy, got, want)
		}
	}
}

func TestOrient2DGridDegeneracies(t *testing.T) {
	// Every triple from a small grid: many exact collinearities.
	var pts [][2]float64
	for x := 0; x < 5; x++ {
		for y := 0; y < 5; y++ {
			pts = append(pts, [2]float64{float64(x) * 0.1, float64(y) * 0.1})
		}
	}
	for _, a := range pts {
		for _, b := range pts {
			for _, c := range pts {
				got := Orient2D(a[0], a[1], b[0], b[1], c[0], c[1])
				want := orient2DBig(a[0], a[1], b[0], b[1], c[0], c[1])
				if got != want {
					t.Fatalf("grid triple %v %v %v: got %d want %d", a, b, c, got, want)
				}
			}
		}
	}
}

func TestOrient2DAntisymmetry(t *testing.T) {
	// Swapping two arguments must negate the sign.
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		if anyNaNInf(ax, ay, bx, by, cx, cy) {
			return true
		}
		return Orient2D(ax, ay, bx, by, cx, cy) == -Orient2D(bx, by, ax, ay, cx, cy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestOrient2DCyclicInvariance(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		if anyNaNInf(ax, ay, bx, by, cx, cy) {
			return true
		}
		o1 := Orient2D(ax, ay, bx, by, cx, cy)
		o2 := Orient2D(bx, by, cx, cy, ax, ay)
		o3 := Orient2D(cx, cy, ax, ay, bx, by)
		return o1 == o2 && o2 == o3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestInCircleBasic(t *testing.T) {
	// Unit circle through (1,0), (0,1), (-1,0); origin is inside, (2,2)
	// outside, (0,-1) exactly on it.
	if got := InCircle(1, 0, 0, 1, -1, 0, 0, 0); got != 1 {
		t.Errorf("origin inside unit circle: got %d, want 1", got)
	}
	if got := InCircle(1, 0, 0, 1, -1, 0, 2, 2); got != -1 {
		t.Errorf("(2,2) outside unit circle: got %d, want -1", got)
	}
	if got := InCircle(1, 0, 0, 1, -1, 0, 0, -1); got != 0 {
		t.Errorf("(0,-1) cocircular: got %d, want 0", got)
	}
}

func TestInCircleCocircularGrid(t *testing.T) {
	// Four corners of a square are cocircular — a classic Delaunay
	// degeneracy that float64 alone often gets wrong.
	cases := [][8]float64{
		{0, 0, 1, 0, 1, 1, 0, 1},
		{0, 0, 2, 0, 2, 2, 0, 2},
		{0.1, 0.1, 0.3, 0.1, 0.3, 0.3, 0.1, 0.3},
		{1e6, 1e6, 1e6 + 1, 1e6, 1e6 + 1, 1e6 + 1, 1e6, 1e6 + 1},
	}
	for _, c := range cases {
		if got := InCircle(c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]); got != 0 {
			t.Errorf("square corners %v: got %d, want 0 (cocircular)", c, got)
		}
	}
}

func TestInCirclePerturbation(t *testing.T) {
	// Perturb the fourth point of a cocircular quadruple by one ulp in each
	// direction; the sign must flip accordingly. CCW triangle (1,0),(0,1),(-1,0);
	// fourth point near (0,-1). Moving it toward the origin puts it inside.
	inside := math.Nextafter(-1, 0)   // slightly above -1 → inside
	outside := math.Nextafter(-1, -2) // slightly below -1 → outside
	if got := InCircle(1, 0, 0, 1, -1, 0, 0, inside); got != 1 {
		t.Errorf("one ulp inside: got %d, want 1", got)
	}
	if got := InCircle(1, 0, 0, 1, -1, 0, 0, outside); got != -1 {
		t.Errorf("one ulp outside: got %d, want -1", got)
	}
}

func TestInCircleMatchesExactOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		vals := make([]float64, 8)
		scale := math.Pow(10, float64(rng.Intn(8))-4)
		for j := range vals {
			vals[j] = rng.Float64() * scale
		}
		got := InCircle(vals[0], vals[1], vals[2], vals[3], vals[4], vals[5], vals[6], vals[7])
		want := inCircleExact(vals[0], vals[1], vals[2], vals[3], vals[4], vals[5], vals[6], vals[7])
		if got != want {
			t.Fatalf("InCircle(%v) = %d, oracle %d", vals, got, want)
		}
	}
}

func TestInCircleOrientationFlip(t *testing.T) {
	// Reversing the triangle's orientation must negate the in-circle sign.
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		if anyNaNInf(ax, ay, bx, by, cx, cy, dx, dy) {
			return true
		}
		s1 := InCircle(ax, ay, bx, by, cx, cy, dx, dy)
		s2 := InCircle(bx, by, ax, ay, cx, cy, dx, dy)
		return s1 == -s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func anyNaNInf(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

func BenchmarkOrient2DFastPath(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	coords := make([][6]float64, 1024)
	for i := range coords {
		for j := 0; j < 6; j++ {
			coords[i][j] = rng.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := coords[i%len(coords)]
		Orient2D(c[0], c[1], c[2], c[3], c[4], c[5])
	}
}

func BenchmarkOrient2DExactFallback(b *testing.B) {
	// Collinear inputs always hit the exact path.
	for i := 0; i < b.N; i++ {
		Orient2D(0, 0, 1.1, 1.1, 2.2, 2.2)
	}
}

func BenchmarkInCircleFastPath(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	coords := make([][8]float64, 1024)
	for i := range coords {
		for j := 0; j < 8; j++ {
			coords[i][j] = rng.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := coords[i%len(coords)]
		InCircle(c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7])
	}
}
