// Package wire is the canonical JSON encoding of the serving layer: the
// one representation of regions, query options, statistics and results
// that cmd/areaserve and the remote client engine agree on.
//
// The encoding discipline follows the result cache's CacheKeyer contract:
// two regions encode equal iff they are geometry-for-geometry the same
// shape, and every finite float64 coordinate round-trips bit-exactly
// (encoding/json emits the shortest representation that parses back to
// the identical bits). Non-finite coordinates (NaN, ±Inf) are rejected on
// both encode and decode — they have no JSON representation and no
// geometric meaning — as are structurally invalid shapes (degenerate
// rings, negative radii), so a decoded region is always safe to query.
//
// Streaming results ride in NDJSON frames (see Frame): one JSON value per
// line, data frames carrying id and coordinates, a final EOF frame
// carrying the query's statistics or its error.
package wire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
)

// Coord is a point on the wire, encoded as a two-element JSON array
// [x, y]. Both encode and decode reject non-finite values.
type Coord struct {
	X, Y float64
}

// errNonFinite is the coordinate-rejection error shared by encode and
// decode paths.
var errNonFinite = errors.New("wire: non-finite coordinate")

func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// MarshalJSON implements json.Marshaler as the array form.
func (c Coord) MarshalJSON() ([]byte, error) {
	if !finite(c.X, c.Y) {
		return nil, errNonFinite
	}
	return json.Marshal([2]float64{c.X, c.Y})
}

// UnmarshalJSON implements json.Unmarshaler, rejecting anything but a
// two-element array of finite numbers.
func (c *Coord) UnmarshalJSON(data []byte) error {
	var a [2]float64
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	if !finite(a[0], a[1]) {
		return errNonFinite
	}
	c.X, c.Y = a[0], a[1]
	return nil
}

// Point converts to the geometry kernel's point.
func (c Coord) Point() geom.Point { return geom.Point{X: c.X, Y: c.Y} }

// FromPoint converts from the geometry kernel's point.
func FromPoint(p geom.Point) Coord { return Coord{X: p.X, Y: p.Y} }

// Region kinds.
const (
	KindPolygon = "polygon"
	KindCircle  = "circle"
)

// Region is a query shape on the wire. Kind selects the variant: a
// polygon carries Outer (and optionally Holes), a circle carries Center
// and R. Anchor, when present on either kind, overrides the seed anchor
// the Voronoi BFS starts from (core.AnchoredRegion).
type Region struct {
	Kind   string    `json:"kind"`
	Outer  []Coord   `json:"outer,omitempty"`
	Holes  [][]Coord `json:"holes,omitempty"`
	Center *Coord    `json:"center,omitempty"`
	R      float64   `json:"r,omitempty"`
	Anchor *Coord    `json:"anchor,omitempty"`
}

// polygonSource is implemented by regions whose underlying polygon is
// recoverable (geom.PreparedPolygon, the shape behind vaq.PolygonRegion).
type polygonSource interface{ Polygon() geom.Polygon }

// circleSource is implemented by regions whose underlying circle is
// recoverable (core's circle region).
type circleSource interface{ Circle() geom.Circle }

// EncodeRegion converts a core.Region into its wire form. Prepared
// polygons, circle regions and core.AnchoredRegion wrappers of either are
// supported; custom Region implementations (whose geometry the codec
// cannot see) return an error. Non-finite coordinates are rejected.
func EncodeRegion(r core.Region) (Region, error) {
	var out Region
	if ar, ok := r.(core.AnchoredRegion); ok {
		if !finite(ar.Anchor.X, ar.Anchor.Y) {
			return Region{}, errNonFinite
		}
		inner, err := EncodeRegion(ar.Region)
		if err != nil {
			return Region{}, err
		}
		a := FromPoint(ar.Anchor)
		inner.Anchor = &a
		return inner, nil
	}
	switch src := r.(type) {
	case polygonSource:
		pg := src.Polygon()
		out.Kind = KindPolygon
		var err error
		if out.Outer, err = encodeRing(pg.Outer); err != nil {
			return Region{}, err
		}
		for _, h := range pg.Holes {
			ring, err := encodeRing(h)
			if err != nil {
				return Region{}, err
			}
			out.Holes = append(out.Holes, ring)
		}
		return out, nil
	case circleSource:
		c := src.Circle()
		if !finite(c.Center.X, c.Center.Y, c.R) {
			return Region{}, errNonFinite
		}
		center := FromPoint(c.Center)
		return Region{Kind: KindCircle, Center: &center, R: c.R}, nil
	default:
		return Region{}, fmt.Errorf("wire: region type %T has no wire encoding", r)
	}
}

func encodeRing(r geom.Ring) ([]Coord, error) {
	out := make([]Coord, len(r))
	for i, p := range r {
		if !finite(p.X, p.Y) {
			return nil, errNonFinite
		}
		out[i] = FromPoint(p)
	}
	return out, nil
}

func decodeRing(cs []Coord) []geom.Point {
	out := make([]geom.Point, len(cs))
	for i, c := range cs {
		out[i] = c.Point()
	}
	return out
}

// Decode validates the wire region and converts it back into a prepared
// core.Region — the exact shape EncodeRegion took apart. Invalid input
// (unknown kind, degenerate or self-intersecting rings, non-finite or
// negative radius) fails rather than producing a region that could crash
// a query.
func (r Region) Decode() (core.Region, error) {
	var region core.Region
	switch r.Kind {
	case KindPolygon:
		pg, err := geom.NewPolygon(decodeRing(r.Outer))
		if err != nil {
			return nil, fmt.Errorf("wire: polygon: %w", err)
		}
		for i, h := range r.Holes {
			if err := pg.AddHole(decodeRing(h)); err != nil {
				return nil, fmt.Errorf("wire: polygon hole %d: %w", i, err)
			}
		}
		region = core.PolygonRegion(pg)
	case KindCircle:
		if r.Center == nil {
			return nil, errors.New("wire: circle region missing center")
		}
		if !finite(r.Center.X, r.Center.Y, r.R) {
			return nil, errNonFinite
		}
		if r.R < 0 {
			return nil, errors.New("wire: circle region with negative radius")
		}
		region = core.CircleRegion(geom.NewCircle(r.Center.Point(), r.R))
	default:
		return nil, fmt.Errorf("wire: unknown region kind %q", r.Kind)
	}
	if r.Anchor != nil {
		if !finite(r.Anchor.X, r.Anchor.Y) {
			return nil, errNonFinite
		}
		region = core.AnchoredRegion{Region: region, Anchor: r.Anchor.Point()}
	}
	return region, nil
}

// Options are the per-query options that travel with a request — exactly
// the result-shaping subset of the vaq option set (method, count-only,
// limit). Stats and trace destinations are caller-local and stay on their
// side of the wire; the server always returns its statistics.
type Options struct {
	Method    string `json:"method,omitempty"`
	CountOnly bool   `json:"count_only,omitempty"`
	Limit     int    `json:"limit,omitempty"`
}

// OptionsFromSpec lifts the wire-visible fields out of a resolved query
// spec.
func OptionsFromSpec(spec core.QuerySpec) Options {
	return Options{
		Method:    MethodString(spec.Method),
		CountOnly: spec.CountOnly,
		Limit:     spec.Limit,
	}
}

// MethodString names a method on the wire (core's String names are the
// canonical wire values).
func MethodString(m core.Method) string { return m.String() }

// ParseMethod inverts MethodString. The empty string selects the default
// method (VoronoiBFS, matching the zero option set).
func ParseMethod(s string) (core.Method, error) {
	switch s {
	case "":
		return core.VoronoiBFS, nil
	case core.Traditional.String():
		return core.Traditional, nil
	case core.VoronoiBFS.String():
		return core.VoronoiBFS, nil
	case core.VoronoiBFSStrict.String():
		return core.VoronoiBFSStrict, nil
	case core.BruteForce.String():
		return core.BruteForce, nil
	default:
		return 0, fmt.Errorf("wire: unknown method %q", s)
	}
}

// Stats is core.Stats on the wire. Duration travels as integer
// nanoseconds.
type Stats struct {
	Method               string `json:"method,omitempty"`
	ResultSize           int    `json:"result_size,omitempty"`
	Candidates           int    `json:"candidates,omitempty"`
	RedundantValidations int    `json:"redundant_validations,omitempty"`
	SegmentTests         int    `json:"segment_tests,omitempty"`
	CellTests            int    `json:"cell_tests,omitempty"`
	IndexNodesVisited    int    `json:"index_nodes_visited,omitempty"`
	RecordsLoaded        int    `json:"records_loaded,omitempty"`
	DurationNs           int64  `json:"duration_ns,omitempty"`
}

// FromStats converts engine statistics to wire form.
func FromStats(st core.Stats) Stats {
	return Stats{
		Method:               MethodString(st.Method),
		ResultSize:           st.ResultSize,
		Candidates:           st.Candidates,
		RedundantValidations: st.RedundantValidations,
		SegmentTests:         st.SegmentTests,
		CellTests:            st.CellTests,
		IndexNodesVisited:    st.IndexNodesVisited,
		RecordsLoaded:        st.RecordsLoaded,
		DurationNs:           st.Duration.Nanoseconds(),
	}
}

// ToStats converts back. An unknown method string degrades to the value's
// zero method rather than failing — statistics are advisory.
func (s Stats) ToStats() core.Stats {
	m, err := ParseMethod(s.Method)
	if err != nil {
		m = 0
	}
	return core.Stats{
		Method:               m,
		ResultSize:           s.ResultSize,
		Candidates:           s.Candidates,
		RedundantValidations: s.RedundantValidations,
		SegmentTests:         s.SegmentTests,
		CellTests:            s.CellTests,
		IndexNodesVisited:    s.IndexNodesVisited,
		RecordsLoaded:        s.RecordsLoaded,
		Duration:             time.Duration(s.DurationNs),
	}
}

// QueryRequest is the body of POST /v1/query and /v1/count.
type QueryRequest struct {
	Region  Region  `json:"region"`
	Options Options `json:"options"`
}

// QueryResponse is the body of a successful /v1/query or /v1/count.
// Count always holds the match count; IDs is nil under count-only.
type QueryResponse struct {
	IDs   []int64 `json:"ids,omitempty"`
	Count int     `json:"count"`
	Stats *Stats  `json:"stats,omitempty"`
}

// BatchRequest is the body of POST /v1/queryall.
type BatchRequest struct {
	Regions []Region `json:"regions"`
	Options Options  `json:"options"`
}

// BatchResponse is the body of a successful /v1/queryall: one result
// slice per request region, aligned, plus the batch's aggregate
// statistics.
type BatchResponse struct {
	Results [][]int64 `json:"results"`
	Stats   *Stats    `json:"stats,omitempty"`
}

// KNNRequest is the body of POST /v1/knearest.
type KNNRequest struct {
	Point Coord `json:"point"`
	K     int   `json:"k"`
}

// KNNResponse is the body of a successful /v1/knearest: ids in increasing
// distance order and their coordinates, aligned, so a fan-out client can
// re-merge across backends by exact distance.
type KNNResponse struct {
	IDs    []int64 `json:"ids"`
	Points []Coord `json:"points"`
	Stats  *Stats  `json:"stats,omitempty"`
}

// Info is the body of GET /v1/info: what a client needs to fan out to
// this backend — its size, its universe (for MBR pruning), and the global
// id its local id 0 corresponds to.
type Info struct {
	Len      int        `json:"len"`
	Bounds   [4]float64 `json:"bounds"` // min x, min y, max x, max y
	IDOffset int64      `json:"id_offset"`
	Flavor   string     `json:"flavor,omitempty"`
}

// Rect converts the bounds quadruple to a rectangle.
func (i Info) Rect() geom.Rect {
	return geom.Rect{MinX: i.Bounds[0], MinY: i.Bounds[1], MaxX: i.Bounds[2], MaxY: i.Bounds[3]}
}

// FromRect fills the bounds quadruple.
func FromRect(r geom.Rect) [4]float64 { return [4]float64{r.MinX, r.MinY, r.MaxX, r.MaxY} }

// Frame is one line of an NDJSON query stream (POST /v1/each). Data
// frames carry a result id and its coordinates; the final frame has EOF
// set and carries either the query's statistics or its error. A stream
// that ends without an EOF frame was truncated (disconnect) and must not
// be treated as complete.
type Frame struct {
	ID    int64   `json:"id"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	EOF   bool    `json:"eof,omitempty"`
	Stats *Stats  `json:"stats,omitempty"`
	Err   *Error  `json:"error,omitempty"`
}

// Error codes classify failures across the wire so the client can map
// them back to the sentinel errors local engines return.
const (
	CodeBadRequest      = "bad_request"
	CodeNoData          = "no_data"
	CodeOutsideUniverse = "outside_universe"
	CodeCanceled        = "canceled"
	CodeDeadline        = "deadline_exceeded"
	CodeInternal        = "internal"
)

// Error is the JSON error body (and the error half of an EOF frame).
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// EncodeError classifies err into a wire error. Callers that know better
// (bad request decoding) build the Error directly.
func EncodeError(err error) *Error {
	return &Error{Code: classify(err), Message: err.Error()}
}

func classify(err error) string {
	switch {
	case errors.Is(err, core.ErrNoData):
		return CodeNoData
	case errors.Is(err, core.ErrOutsideUniverse):
		return CodeOutsideUniverse
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadline
	default:
		return CodeInternal
	}
}

// HTTPStatus maps an error code to the response status the server uses.
// The client keys off the code, not the status; the status exists for
// curl users and proxies.
func HTTPStatus(code string) int {
	switch code {
	case CodeBadRequest:
		return 400
	case CodeNoData, CodeOutsideUniverse:
		return 422
	case CodeCanceled:
		return 499 // client closed request (nginx convention)
	case CodeDeadline:
		return 504
	default:
		return 500
	}
}

// Err converts a wire error back into a Go error whose chain matches the
// sentinel the server classified — errors.Is(err, core.ErrNoData),
// context.Canceled, context.DeadlineExceeded and core.ErrOutsideUniverse
// all work across the wire.
func (e *Error) Err() error {
	if e == nil {
		return nil
	}
	switch e.Code {
	case CodeNoData:
		return fmt.Errorf("%w (remote: %s)", core.ErrNoData, e.Message)
	case CodeOutsideUniverse:
		return fmt.Errorf("%w (remote: %s)", core.ErrOutsideUniverse, e.Message)
	case CodeCanceled:
		return fmt.Errorf("%w (remote: %s)", context.Canceled, e.Message)
	case CodeDeadline:
		return fmt.Errorf("%w (remote: %s)", context.DeadlineExceeded, e.Message)
	default:
		return fmt.Errorf("wire: remote error (%s): %s", e.Code, e.Message)
	}
}

// TimeoutHeader is the deadline-propagation header: the client sets it to
// its context's remaining budget in integer milliseconds, and the server
// bounds the query's context by it — so a deadline crossing the wire
// expires server-side even when the transport connection lingers.
const TimeoutHeader = "Vaq-Timeout-Ms"
