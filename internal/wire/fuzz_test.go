package wire

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/core"
)

// appendRegionKey canonicalizes a region's exact geometry via the
// CacheKeyer contract every decodable region satisfies.
func appendRegionKey(dst []byte, r core.Region) []byte {
	ck, ok := r.(core.CacheKeyer)
	if !ok {
		return nil
	}
	return ck.AppendCacheKey(dst)
}

// FuzzRegionRoundTrip feeds arbitrary JSON at the region decoder. The
// invariant: anything that decodes must (a) contain only finite geometry,
// (b) re-encode without error, and (c) survive a second decode with its
// canonical cache-key bytes unchanged — the codec's fixpoint property.
func FuzzRegionRoundTrip(f *testing.F) {
	seeds := []string{
		`{"kind":"polygon","outer":[[0.1,0.1],[0.7,0.2],[0.3,0.9]]}`,
		`{"kind":"polygon","outer":[[0,0],[1,0],[1,1],[0,1]],"holes":[[[0.4,0.4],[0.6,0.4],[0.5,0.6]]]}`,
		`{"kind":"polygon","outer":[[0.1,0.1],[0.9,0.12],[0.9,0.13],[0.12,0.125]],"anchor":[0.5,0.12]}`,
		`{"kind":"circle","center":[0.25,0.75],"r":0.125}`,
		`{"kind":"circle","center":[0.3333333333333333,0.2857142857142857],"r":1e-9,"anchor":[0.3,0.3]}`,
		`{"kind":"circle","center":[0.5,0.5],"r":-1}`,
		`{"kind":"circle","center":[1e999,0.5],"r":0.1}`,
		`{"kind":"polygon","outer":[[0,0],[1,1]]}`,
		`{"kind":"blob"}`,
		`{}`,
		`[]`,
		`{"kind":"polygon","outer":[[0,0],[1,1],[2,2]]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var wr Region
		if err := json.Unmarshal(data, &wr); err != nil {
			return
		}
		region, err := wr.Decode()
		if err != nil {
			return
		}
		// Decoded geometry must be finite everywhere the query layer
		// looks.
		b := region.Bounds()
		for _, v := range []float64{b.MinX, b.MinY, b.MaxX, b.MaxY} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("decoded region has non-finite bounds %v from %q", b, data)
			}
		}
		enc, err := EncodeRegion(region)
		if err != nil {
			t.Fatalf("decoded region failed to re-encode: %v (from %q)", err, data)
		}
		out, err := json.Marshal(enc)
		if err != nil {
			t.Fatalf("re-encoded region failed to marshal: %v (from %q)", err, data)
		}
		var wr2 Region
		if err := json.Unmarshal(out, &wr2); err != nil {
			t.Fatalf("re-encoded JSON failed to parse: %v (%s)", err, out)
		}
		region2, err := wr2.Decode()
		if err != nil {
			t.Fatalf("re-encoded region failed to decode: %v (%s)", err, out)
		}
		key1 := appendRegionKey(nil, region)
		key2 := appendRegionKey(nil, region2)
		if string(key1) != string(key2) {
			t.Fatalf("round trip changed canonical geometry:\n in  %q\n out %s", data, out)
		}
	})
}

// FuzzFrameRoundTrip feeds arbitrary bytes at the NDJSON frame decoder;
// decodable frames must re-encode to a frame with identical fields.
func FuzzFrameRoundTrip(f *testing.F) {
	seeds := []string{
		`{"id":17,"x":0.25,"y":0.75}`,
		`{"id":0,"x":0,"y":0}`,
		`{"eof":true,"stats":{"method":"voronoi","result_size":3,"duration_ns":120}}`,
		`{"eof":true,"error":{"code":"canceled","message":"context canceled"}}`,
		`{"id":-1,"x":-0.5,"y":1e-300}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		if err := json.Unmarshal(data, &fr); err != nil {
			return
		}
		if math.IsNaN(fr.X) || math.IsNaN(fr.Y) {
			// NaN never survives a JSON parse; reaching here means the
			// decoder invented one.
			t.Fatalf("frame decoded NaN coordinates from %q", data)
		}
		out, err := json.Marshal(fr)
		if err != nil {
			// Frames built from decoded JSON always hold finite floats,
			// so re-marshal must succeed.
			t.Fatalf("decoded frame failed to re-marshal: %v (from %q)", err, data)
		}
		var fr2 Frame
		if err := json.Unmarshal(out, &fr2); err != nil {
			t.Fatalf("re-encoded frame failed to parse: %v (%s)", err, out)
		}
		if fr.ID != fr2.ID || fr.X != fr2.X || fr.Y != fr2.Y || fr.EOF != fr2.EOF {
			t.Fatalf("frame fields changed: %+v -> %+v", fr, fr2)
		}
	})
}
