package wire

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"
)

// cacheKey canonicalizes a region via the CacheKeyer contract — the
// repository's definition of "geometry-for-geometry identical".
func cacheKey(t *testing.T, r core.Region) string {
	t.Helper()
	ck, ok := r.(core.CacheKeyer)
	if !ok {
		if ar, isAnchored := r.(core.AnchoredRegion); isAnchored {
			return "anchored:" + cacheKey(t, ar.Region)
		}
		t.Fatalf("region %T is not cache-keyable", r)
	}
	key := ck.AppendCacheKey(nil)
	if key == nil {
		t.Fatalf("region %T declined its cache key", r)
	}
	return string(key)
}

// roundTrip encodes region → JSON → decodes and returns the result.
func roundTrip(t *testing.T, r core.Region) core.Region {
	t.Helper()
	wr, err := EncodeRegion(r)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	data, err := json.Marshal(wr)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Region
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
	dec, err := back.Decode()
	if err != nil {
		t.Fatalf("decode %s: %v", data, err)
	}
	return dec
}

func TestRegionRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bounds := geom.NewRect(0, 0, 1, 1)

	regions := map[string]core.Region{
		"triangle": core.PolygonRegion(geom.MustPolygon([]geom.Point{
			geom.Pt(0.1, 0.1), geom.Pt(0.7, 0.2), geom.Pt(0.3, 0.9)})),
		"circle": core.CircleRegion(geom.NewCircle(geom.Pt(0.25, 0.75), 0.125)),
		// Awkward float bit patterns: results of arithmetic, not literals.
		"bitty": core.CircleRegion(geom.NewCircle(geom.Pt(1.0/3.0, 2.0/7.0), math.Nextafter(0.1, 1))),
	}
	for i := 0; i < 8; i++ {
		pg := workload.RandomPolygon(rng, workload.PolygonConfig{Vertices: 10, QuerySize: 0.03}, bounds)
		regions["random"] = core.PolygonRegion(pg)
		anch := core.AnchoredRegion{Region: core.PolygonRegion(pg), Anchor: pg.Bounds().Center()}
		regions["anchored"] = anch
	}
	holed := geom.MustPolygon([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)})
	if err := holed.AddHole([]geom.Point{geom.Pt(0.4, 0.4), geom.Pt(0.6, 0.4), geom.Pt(0.5, 0.6)}); err != nil {
		t.Fatal(err)
	}
	regions["holed"] = core.PolygonRegion(holed)

	for name, r := range regions {
		dec := roundTrip(t, r)
		if got, want := cacheKey(t, dec), cacheKey(t, r); got != want {
			t.Errorf("%s: round-trip changed the canonical geometry\n got %x\nwant %x", name, got, want)
		}
	}
}

func TestRegionRejectsNonFinite(t *testing.T) {
	bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, v := range bad {
		// Encode-side rejection.
		if _, err := EncodeRegion(core.CircleRegion(geom.Circle{Center: geom.Pt(v, 0.5), R: 0.1})); err == nil {
			t.Errorf("encode accepted center.x=%v", v)
		}
		if _, err := (Coord{X: v, Y: 0}).MarshalJSON(); err == nil {
			t.Errorf("Coord.MarshalJSON accepted x=%v", v)
		}
		// Decode-side rejection of a hand-built wire value.
		r := Region{Kind: KindCircle, Center: &Coord{X: 0.5, Y: 0.5}, R: v}
		if _, err := r.Decode(); err == nil {
			t.Errorf("decode accepted r=%v", v)
		}
		r = Region{Kind: KindCircle, Center: &Coord{X: v, Y: 0.5}, R: 0.1}
		if _, err := r.Decode(); err == nil {
			t.Errorf("decode accepted center.x=%v", v)
		}
	}
	// JSON cannot even express them: a numeric overflow must fail cleanly.
	var c Coord
	if err := json.Unmarshal([]byte(`[1e999, 0]`), &c); err == nil {
		t.Error("decoded out-of-range float without error")
	}
}

func TestRegionDecodeRejectsInvalid(t *testing.T) {
	cases := map[string]Region{
		"unknown kind": {Kind: "blob"},
		"no kind":      {},
		"two-vertex":   {Kind: KindPolygon, Outer: []Coord{{0, 0}, {1, 1}}},
		"zero area":    {Kind: KindPolygon, Outer: []Coord{{0, 0}, {1, 1}, {2, 2}}},
		"self-intersecting": {Kind: KindPolygon, Outer: []Coord{
			{0, 0}, {1, 1}, {1, 0}, {0, 1}}},
		"bad hole": {Kind: KindPolygon, Outer: []Coord{{0, 0}, {1, 0}, {1, 1}, {0, 1}},
			Holes: [][]Coord{{{0.2, 0.2}, {0.3, 0.3}}}},
		"negative radius": {Kind: KindCircle, Center: &Coord{0.5, 0.5}, R: -0.25},
		"missing center":  {Kind: KindCircle, R: 0.25},
	}
	for name, r := range cases {
		if _, err := r.Decode(); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestMethodRoundTrip(t *testing.T) {
	for _, m := range []core.Method{core.Traditional, core.VoronoiBFS, core.VoronoiBFSStrict, core.BruteForce} {
		back, err := ParseMethod(MethodString(m))
		if err != nil || back != m {
			t.Errorf("method %v: round-trip got (%v, %v)", m, back, err)
		}
	}
	if m, err := ParseMethod(""); err != nil || m != core.VoronoiBFS {
		t.Errorf("empty method: got (%v, %v), want default VoronoiBFS", m, err)
	}
	if _, err := ParseMethod("dijkstra"); err == nil {
		t.Error("unknown method parsed without error")
	}
}

func TestStatsRoundTrip(t *testing.T) {
	st := core.Stats{
		Method: core.VoronoiBFSStrict, ResultSize: 41, Candidates: 57,
		RedundantValidations: 16, SegmentTests: 3, CellTests: 88,
		IndexNodesVisited: 12, RecordsLoaded: 57, Duration: 1234567,
	}
	data, err := json.Marshal(FromStats(st))
	if err != nil {
		t.Fatal(err)
	}
	var ws Stats
	if err := json.Unmarshal(data, &ws); err != nil {
		t.Fatal(err)
	}
	if got := ws.ToStats(); got != st {
		t.Errorf("stats round trip:\n got %+v\nwant %+v", got, st)
	}
}

func TestErrorMapping(t *testing.T) {
	cases := []struct {
		err  error
		code string
		want error
	}{
		{core.ErrNoData, CodeNoData, core.ErrNoData},
		{core.ErrOutsideUniverse, CodeOutsideUniverse, core.ErrOutsideUniverse},
		{context.Canceled, CodeCanceled, context.Canceled},
		{context.DeadlineExceeded, CodeDeadline, context.DeadlineExceeded},
		{errors.New("disk on fire"), CodeInternal, nil},
	}
	for _, c := range cases {
		we := EncodeError(c.err)
		if we.Code != c.code {
			t.Errorf("%v: classified %q, want %q", c.err, we.Code, c.code)
		}
		back := we.Err()
		if c.want != nil && !errors.Is(back, c.want) {
			t.Errorf("%v: decoded error %v does not match sentinel", c.err, back)
		}
		if back == nil {
			t.Errorf("%v: decoded to nil error", c.err)
		}
	}
	if (*Error)(nil).Err() != nil {
		t.Error("nil wire error should decode to nil")
	}
}

func TestFrameShapes(t *testing.T) {
	data := Frame{ID: 17, X: 0.25, Y: 0.75}
	b, err := json.Marshal(data)
	if err != nil {
		t.Fatal(err)
	}
	var back Frame
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != data {
		t.Errorf("data frame round trip: got %+v", back)
	}
	eof := Frame{EOF: true, Stats: &Stats{ResultSize: 3}}
	b, err = json.Marshal(eof)
	if err != nil {
		t.Fatal(err)
	}
	back = Frame{}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !back.EOF || back.Stats == nil || back.Stats.ResultSize != 3 {
		t.Errorf("eof frame round trip: got %+v", back)
	}
}
