// Package grid implements a uniform grid index over points: the simplest
// filtering structure, used as a baseline in the area-query ablation
// experiments. Cells are fixed-size buckets; range queries scan the cells
// overlapping the query rectangle and nearest-neighbor queries expand ring
// by ring around the query cell.
package grid

import (
	"math"

	"repro/internal/geom"
)

// Item is a stored point with an identifier.
type Item struct {
	ID    int64
	Point geom.Point
}

// Index is a uniform grid over a fixed region. Build with New.
type Index struct {
	bounds geom.Rect
	nx, ny int
	cw, ch float64
	cells  [][]Item
	size   int
}

// New builds a grid sized so the average cell holds roughly targetPerCell
// points (default 8 when non-positive). Points outside bounds are clamped
// into border cells, so no input is lost.
func New(bounds geom.Rect, items []Item, targetPerCell int) *Index {
	if targetPerCell <= 0 {
		targetPerCell = 8
	}
	n := len(items)
	cellsWanted := n / targetPerCell
	if cellsWanted < 1 {
		cellsWanted = 1
	}
	side := int(math.Ceil(math.Sqrt(float64(cellsWanted))))
	g := &Index{
		bounds: bounds,
		nx:     side,
		ny:     side,
		cw:     bounds.Width() / float64(side),
		ch:     bounds.Height() / float64(side),
		cells:  make([][]Item, side*side),
		size:   n,
	}
	if g.cw == 0 {
		g.cw = 1
	}
	if g.ch == 0 {
		g.ch = 1
	}
	for _, it := range items {
		c := g.cellOf(it.Point)
		g.cells[c] = append(g.cells[c], it)
	}
	return g
}

// Len returns the number of stored points.
func (g *Index) Len() int { return g.size }

func (g *Index) clampIx(i int) int {
	if i < 0 {
		return 0
	}
	if i >= g.nx {
		return g.nx - 1
	}
	return i
}

func (g *Index) clampIy(i int) int {
	if i < 0 {
		return 0
	}
	if i >= g.ny {
		return g.ny - 1
	}
	return i
}

func (g *Index) cellOf(p geom.Point) int {
	ix := g.clampIx(int((p.X - g.bounds.MinX) / g.cw))
	iy := g.clampIy(int((p.Y - g.bounds.MinY) / g.ch))
	return iy*g.nx + ix
}

// Search calls fn for every stored point inside the closed rectangle q; fn
// returning false stops the search. It returns the number of cells visited.
func (g *Index) Search(q geom.Rect, fn func(id int64, p geom.Point) bool) int {
	if q.IsEmpty() {
		return 0
	}
	ix0 := g.clampIx(int((q.MinX - g.bounds.MinX) / g.cw))
	ix1 := g.clampIx(int((q.MaxX - g.bounds.MinX) / g.cw))
	iy0 := g.clampIy(int((q.MinY - g.bounds.MinY) / g.ch))
	iy1 := g.clampIy(int((q.MaxY - g.bounds.MinY) / g.ch))
	visited := 0
	for iy := iy0; iy <= iy1; iy++ {
		for ix := ix0; ix <= ix1; ix++ {
			visited++
			for _, it := range g.cells[iy*g.nx+ix] {
				if q.ContainsPoint(it.Point) {
					if !fn(it.ID, it.Point) {
						return visited
					}
				}
			}
		}
	}
	return visited
}

// NearestNeighbor returns the stored point closest to q; ok is false for an
// empty index. It scans cells in expanding rings around q's cell, stopping
// once the ring distance exceeds the best candidate.
func (g *Index) NearestNeighbor(q geom.Point) (Item, bool) {
	if g.size == 0 {
		return Item{}, false
	}
	qx := g.clampIx(int((q.X - g.bounds.MinX) / g.cw))
	qy := g.clampIy(int((q.Y - g.bounds.MinY) / g.ch))
	best := Item{}
	bestD := math.Inf(1)
	found := false
	maxRing := g.nx + g.ny
	for ring := 0; ring <= maxRing; ring++ {
		// Once a candidate exists, stop when the nearest possible point in
		// this ring is farther than the candidate.
		if found {
			ringDist := float64(ring-1) * math.Min(g.cw, g.ch)
			if ringDist > 0 && ringDist*ringDist > bestD {
				break
			}
		}
		for iy := qy - ring; iy <= qy+ring; iy++ {
			if iy < 0 || iy >= g.ny {
				continue
			}
			for ix := qx - ring; ix <= qx+ring; ix++ {
				if ix < 0 || ix >= g.nx {
					continue
				}
				// Ring boundary only (interior was scanned earlier).
				if ring > 0 && ix != qx-ring && ix != qx+ring && iy != qy-ring && iy != qy+ring {
					continue
				}
				for _, it := range g.cells[iy*g.nx+ix] {
					if d := q.Dist2(it.Point); d < bestD {
						best, bestD, found = it, d, true
					}
				}
			}
		}
	}
	return best, found
}
