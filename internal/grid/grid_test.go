package grid

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func unitBounds() geom.Rect { return geom.NewRect(0, 0, 1, 1) }

func randomItems(rng *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: int64(i), Point: geom.Pt(rng.Float64(), rng.Float64())}
	}
	return items
}

func TestEmpty(t *testing.T) {
	g := New(unitBounds(), nil, 8)
	if g.Len() != 0 {
		t.Error("empty grid Len != 0")
	}
	if _, ok := g.NearestNeighbor(geom.Pt(0.5, 0.5)); ok {
		t.Error("NN on empty grid should fail")
	}
	count := 0
	g.Search(unitBounds(), func(int64, geom.Point) bool { count++; return true })
	if count != 0 {
		t.Error("search on empty grid found items")
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 3, 50, 1000} {
		items := randomItems(rng, n)
		g := New(unitBounds(), items, 8)
		for trial := 0; trial < 200; trial++ {
			q := geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
			got := make(map[int64]bool)
			g.Search(q, func(id int64, _ geom.Point) bool { got[id] = true; return true })
			want := 0
			for _, it := range items {
				if q.ContainsPoint(it.Point) {
					want++
					if !got[it.ID] {
						t.Fatalf("missing %d", it.ID)
					}
				}
			}
			if len(got) != want {
				t.Fatalf("got %d, want %d", len(got), want)
			}
		}
	}
}

func TestNearestNeighborMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	items := randomItems(rng, 800)
	g := New(unitBounds(), items, 8)
	for trial := 0; trial < 500; trial++ {
		q := geom.Pt(rng.Float64()*1.6-0.3, rng.Float64()*1.6-0.3)
		got, ok := g.NearestNeighbor(q)
		if !ok {
			t.Fatal("NN failed")
		}
		wantD := math.Inf(1)
		for _, it := range items {
			if d := q.Dist2(it.Point); d < wantD {
				wantD = d
			}
		}
		if q.Dist2(got.Point) != wantD {
			t.Fatalf("NN dist %v, want %v", q.Dist2(got.Point), wantD)
		}
	}
}

func TestPointsOutsideBoundsAreClamped(t *testing.T) {
	items := []Item{
		{1, geom.Pt(-5, -5)},
		{2, geom.Pt(5, 5)},
		{3, geom.Pt(0.5, 0.5)},
	}
	g := New(unitBounds(), items, 2)
	if g.Len() != 3 {
		t.Error("clamped points should still be stored")
	}
	// They must be findable via queries covering their true coordinates.
	got := make(map[int64]bool)
	g.Search(geom.NewRect(-10, -10, 10, 10), func(id int64, _ geom.Point) bool { got[id] = true; return true })
	if len(got) != 3 {
		t.Errorf("found %v, want all 3", got)
	}
}

func TestSingleCellDegenerate(t *testing.T) {
	// Zero-extent bounds: everything lands in one cell, queries still work.
	items := []Item{{1, geom.Pt(2, 3)}, {2, geom.Pt(2, 3)}}
	g := New(geom.NewRect(2, 3, 2, 3), items, 8)
	count := 0
	g.Search(geom.NewRect(0, 0, 5, 5), func(int64, geom.Point) bool { count++; return true })
	if count != 2 {
		t.Errorf("found %d, want 2", count)
	}
	if it, ok := g.NearestNeighbor(geom.Pt(0, 0)); !ok || it.Point != geom.Pt(2, 3) {
		t.Error("NN in degenerate grid failed")
	}
}

func TestEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := New(unitBounds(), randomItems(rng, 400), 8)
	calls := 0
	g.Search(unitBounds(), func(int64, geom.Point) bool { calls++; return false })
	if calls != 1 {
		t.Errorf("early stop after %d calls, want 1", calls)
	}
}

func BenchmarkSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := New(unitBounds(), randomItems(rng, 100_000), 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cx, cy := rng.Float64()*0.9, rng.Float64()*0.9
		g.Search(geom.NewRect(cx, cy, cx+0.1, cy+0.1), func(int64, geom.Point) bool { return true })
	}
}

func BenchmarkNearestNeighbor(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := New(unitBounds(), randomItems(rng, 100_000), 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.NearestNeighbor(geom.Pt(rng.Float64(), rng.Float64()))
	}
}
