package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/workload"
)

func TestDynamicEngineEmpty(t *testing.T) {
	d := NewDynamicEngine(unitBounds())
	area := geom.MustPolygon([]geom.Point{geom.Pt(0.1, 0.1), geom.Pt(0.5, 0.1), geom.Pt(0.3, 0.5)})
	if _, _, err := d.Query(VoronoiBFS, area); err != ErrNoData {
		t.Errorf("empty dynamic engine: err = %v, want ErrNoData", err)
	}
}

func TestDynamicEngineRejectsOutOfUniverse(t *testing.T) {
	d := NewDynamicEngine(unitBounds())
	if _, _, err := d.Insert(geom.Pt(3, 3)); err == nil {
		t.Error("insert outside universe should fail")
	}
	if _, _, err := d.Insert(geom.Pt(0.5, 0.5)); err != nil {
		t.Fatal(err)
	}
	tooBig := geom.MustPolygon([]geom.Point{geom.Pt(-1, -1), geom.Pt(2, -1), geom.Pt(0.5, 2)})
	if _, _, err := d.Query(VoronoiBFS, tooBig); err == nil {
		t.Error("query exceeding universe should fail")
	}
}

func TestDynamicEngineMatchesOracleWhileGrowing(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDynamicEngine(unitBounds())
	for batch := 0; batch < 8; batch++ {
		for i := 0; i < 250; i++ {
			if _, _, err := d.Insert(geom.Pt(rng.Float64(), rng.Float64())); err != nil {
				t.Fatal(err)
			}
		}
		for trial := 0; trial < 5; trial++ {
			area := workload.RandomPolygon(rng, workload.PolygonConfig{
				Vertices:  10,
				QuerySize: 0.05,
			}, unitBounds())
			oracle, _, err := d.Query(BruteForce, area)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range []Method{Traditional, VoronoiBFS, VoronoiBFSStrict} {
				got, _, err := d.Query(m, area)
				if err != nil {
					t.Fatalf("batch %d %v: %v", batch, m, err)
				}
				if !equalIDs(sortedIDs(got), sortedIDs(oracle)) {
					t.Fatalf("batch %d (%d pts) %v: %d results, oracle %d",
						batch, d.Len(), m, len(got), len(oracle))
				}
			}
		}
	}
}

func TestDynamicEngineNoFenceLeakage(t *testing.T) {
	// A query covering the whole universe must return every inserted
	// point and no fence sites.
	rng := rand.New(rand.NewSource(2))
	d := NewDynamicEngine(unitBounds())
	const n = 500
	for i := 0; i < n; i++ {
		if _, _, err := d.Insert(geom.Pt(rng.Float64(), rng.Float64())); err != nil {
			t.Fatal(err)
		}
	}
	area := geom.MustPolygon([]geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1),
	})
	for _, m := range []Method{Traditional, VoronoiBFS, BruteForce} {
		ids, _, err := d.Query(m, area)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != n {
			t.Fatalf("%v: %d results, want %d", m, len(ids), n)
		}
		for _, id := range ids {
			if !unitBounds().ContainsPoint(d.Point(id)) {
				t.Fatalf("%v: result %d outside universe (fence leak?)", m, id)
			}
		}
	}
}

func TestDynamicEngineSparse(t *testing.T) {
	// With very few points, the Voronoi BFS may need to route through
	// fence sites; results must still match the oracle.
	rng := rand.New(rand.NewSource(3))
	d := NewDynamicEngine(unitBounds())
	coords := []geom.Point{
		geom.Pt(0.05, 0.05), geom.Pt(0.95, 0.95), geom.Pt(0.1, 0.9),
	}
	for _, p := range coords {
		if _, _, err := d.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 50; trial++ {
		area := workload.RandomPolygon(rng, workload.PolygonConfig{QuerySize: 0.2}, unitBounds())
		oracle, _, err := d.Query(BruteForce, area)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := d.Query(VoronoiBFS, area)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(sortedIDs(got), sortedIDs(oracle)) {
			t.Fatalf("trial %d: sparse dynamic voronoi diverged (%d vs %d)",
				trial, len(got), len(oracle))
		}
	}
}

func TestDynamicEngineDuplicateInsert(t *testing.T) {
	d := NewDynamicEngine(unitBounds())
	id1, ins, err := d.Insert(geom.Pt(0.4, 0.4))
	if err != nil || !ins {
		t.Fatal(err)
	}
	id2, ins2, err := d.Insert(geom.Pt(0.4, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	if ins2 || id2 != id1 {
		t.Errorf("duplicate insert: id=%d ins=%v", id2, ins2)
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d", d.Len())
	}
}

func BenchmarkDynamicEngineInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	d := NewDynamicEngine(unitBounds())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Insert(geom.Pt(rng.Float64(), rng.Float64())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynamicEngineQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	d := NewDynamicEngine(unitBounds())
	for i := 0; i < 50_000; i++ {
		if _, _, err := d.Insert(geom.Pt(rng.Float64(), rng.Float64())); err != nil {
			b.Fatal(err)
		}
	}
	areas := make([]geom.Polygon, 64)
	for i := range areas {
		areas[i] = workload.RandomPolygon(rng, workload.PolygonConfig{QuerySize: 0.01}, unitBounds())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Query(VoronoiBFS, areas[i%len(areas)]); err != nil {
			b.Fatal(err)
		}
	}
}
