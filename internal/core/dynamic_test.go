package core

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/workload"
)

func TestDynamicEngineEmpty(t *testing.T) {
	d := NewDynamicEngine(unitBounds())
	area := geom.MustPolygon([]geom.Point{geom.Pt(0.1, 0.1), geom.Pt(0.5, 0.1), geom.Pt(0.3, 0.5)})
	if _, _, err := d.Query(VoronoiBFS, area); err != ErrNoData {
		t.Errorf("empty dynamic engine: err = %v, want ErrNoData", err)
	}
}

func TestDynamicEngineRejectsOutOfUniverse(t *testing.T) {
	d := NewDynamicEngine(unitBounds())
	if _, _, err := d.Insert(geom.Pt(3, 3)); err == nil {
		t.Error("insert outside universe should fail")
	}
	if _, _, err := d.Insert(geom.Pt(0.5, 0.5)); err != nil {
		t.Fatal(err)
	}
	tooBig := geom.MustPolygon([]geom.Point{geom.Pt(-1, -1), geom.Pt(2, -1), geom.Pt(0.5, 2)})
	if _, _, err := d.Query(VoronoiBFS, tooBig); err == nil {
		t.Error("query exceeding universe should fail")
	}
}

func TestDynamicEngineMatchesOracleWhileGrowing(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDynamicEngine(unitBounds())
	for batch := 0; batch < 8; batch++ {
		for i := 0; i < 250; i++ {
			if _, _, err := d.Insert(geom.Pt(rng.Float64(), rng.Float64())); err != nil {
				t.Fatal(err)
			}
		}
		for trial := 0; trial < 5; trial++ {
			area := workload.RandomPolygon(rng, workload.PolygonConfig{
				Vertices:  10,
				QuerySize: 0.05,
			}, unitBounds())
			oracle, _, err := d.Query(BruteForce, area)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range []Method{Traditional, VoronoiBFS, VoronoiBFSStrict} {
				got, _, err := d.Query(m, area)
				if err != nil {
					t.Fatalf("batch %d %v: %v", batch, m, err)
				}
				if !equalIDs(sortedIDs(got), sortedIDs(oracle)) {
					t.Fatalf("batch %d (%d pts) %v: %d results, oracle %d",
						batch, d.Len(), m, len(got), len(oracle))
				}
			}
		}
	}
}

func TestDynamicEngineNoFenceLeakage(t *testing.T) {
	// A query covering the whole universe must return every inserted
	// point and no fence sites.
	rng := rand.New(rand.NewSource(2))
	d := NewDynamicEngine(unitBounds())
	const n = 500
	for i := 0; i < n; i++ {
		if _, _, err := d.Insert(geom.Pt(rng.Float64(), rng.Float64())); err != nil {
			t.Fatal(err)
		}
	}
	area := geom.MustPolygon([]geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1),
	})
	for _, m := range []Method{Traditional, VoronoiBFS, BruteForce} {
		ids, _, err := d.Query(m, area)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != n {
			t.Fatalf("%v: %d results, want %d", m, len(ids), n)
		}
		for _, id := range ids {
			if !unitBounds().ContainsPoint(d.Point(id)) {
				t.Fatalf("%v: result %d outside universe (fence leak?)", m, id)
			}
		}
	}
}

func TestDynamicEngineSparse(t *testing.T) {
	// With very few points, the Voronoi BFS may need to route through
	// fence sites; results must still match the oracle.
	rng := rand.New(rand.NewSource(3))
	d := NewDynamicEngine(unitBounds())
	coords := []geom.Point{
		geom.Pt(0.05, 0.05), geom.Pt(0.95, 0.95), geom.Pt(0.1, 0.9),
	}
	for _, p := range coords {
		if _, _, err := d.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 50; trial++ {
		area := workload.RandomPolygon(rng, workload.PolygonConfig{QuerySize: 0.2}, unitBounds())
		oracle, _, err := d.Query(BruteForce, area)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := d.Query(VoronoiBFS, area)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(sortedIDs(got), sortedIDs(oracle)) {
			t.Fatalf("trial %d: sparse dynamic voronoi diverged (%d vs %d)",
				trial, len(got), len(oracle))
		}
	}
}

func TestDynamicEngineDuplicateInsert(t *testing.T) {
	d := NewDynamicEngine(unitBounds())
	id1, ins, err := d.Insert(geom.Pt(0.4, 0.4))
	if err != nil || !ins {
		t.Fatal(err)
	}
	id2, ins2, err := d.Insert(geom.Pt(0.4, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	if ins2 || id2 != id1 {
		t.Errorf("duplicate insert: id=%d ins=%v", id2, ins2)
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d", d.Len())
	}
}

func BenchmarkDynamicEngineInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	d := NewDynamicEngine(unitBounds())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Insert(geom.Pt(rng.Float64(), rng.Float64())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynamicEngineQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	d := NewDynamicEngine(unitBounds())
	for i := 0; i < 50_000; i++ {
		if _, _, err := d.Insert(geom.Pt(rng.Float64(), rng.Float64())); err != nil {
			b.Fatal(err)
		}
	}
	areas := make([]geom.Polygon, 64)
	for i := range areas {
		areas[i] = workload.RandomPolygon(rng, workload.PolygonConfig{QuerySize: 0.01}, unitBounds())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Query(VoronoiBFS, areas[i%len(areas)]); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDynamicKNearestEmptyMatchesQueryContract(t *testing.T) {
	d := NewDynamicEngine(unitBounds())
	if _, _, err := d.KNearest(context.Background(), geom.Pt(0.5, 0.5), 3); err != ErrNoData {
		t.Errorf("KNearest on empty dynamic engine: err = %v, want ErrNoData", err)
	}
	if _, _, err := d.Snapshot().KNearest(context.Background(), geom.Pt(0.5, 0.5), 3); err != ErrNoData {
		t.Errorf("KNearest on empty snapshot: err = %v, want ErrNoData", err)
	}
}

func TestDynamicKNearestNeverReturnsFenceSites(t *testing.T) {
	// Ask for more neighbors than there are user sites: the expansion routes
	// through fence sites but must not emit them.
	d := NewDynamicEngine(unitBounds())
	coords := []geom.Point{geom.Pt(0.2, 0.2), geom.Pt(0.8, 0.3), geom.Pt(0.5, 0.9)}
	for _, p := range coords {
		if _, _, err := d.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	ids, _, err := d.KNearest(context.Background(), geom.Pt(0.5, 0.5), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(coords) {
		t.Fatalf("KNearest returned %d ids, want %d", len(ids), len(coords))
	}
	for _, id := range ids {
		if !unitBounds().ContainsPoint(d.Point(id)) {
			t.Errorf("KNearest leaked fence site %d at %v", id, d.Point(id))
		}
	}
}

func TestDynamicInsertOutsideUniverseSentinel(t *testing.T) {
	d := NewDynamicEngine(unitBounds())
	if _, _, err := d.Insert(geom.Pt(3, 3)); !errors.Is(err, ErrOutsideUniverse) {
		t.Errorf("insert outside universe: err = %v, want ErrOutsideUniverse", err)
	}
	if _, _, err := d.Insert(geom.Pt(0.5, 0.5)); err != nil {
		t.Fatal(err)
	}
	tooBig := geom.MustPolygon([]geom.Point{geom.Pt(-1, -1), geom.Pt(2, -1), geom.Pt(0.5, 2)})
	if _, _, err := d.Query(VoronoiBFS, tooBig); !errors.Is(err, ErrOutsideUniverse) {
		t.Errorf("query exceeding universe: err = %v, want ErrOutsideUniverse", err)
	}
}

func TestDynamicSnapshotPinsEpoch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := NewDynamicEngine(unitBounds())
	for i := 0; i < 400; i++ {
		if _, _, err := d.Insert(geom.Pt(rng.Float64(), rng.Float64())); err != nil {
			t.Fatal(err)
		}
	}
	area := workload.RandomPolygon(rng, workload.PolygonConfig{QuerySize: 0.2}, unitBounds())

	snap := d.Snapshot()
	if snap.Epoch() != 400 || snap.Len() != 400 {
		t.Fatalf("snapshot epoch/len = %d/%d, want 400/400", snap.Epoch(), snap.Len())
	}
	if again := d.Snapshot(); again != snap {
		t.Error("repeated Snapshot between writes should return the published view")
	}
	before, _, err := snap.Query(VoronoiBFS, area)
	if err != nil {
		t.Fatal(err)
	}

	// Insert many more points, several inside the area: the pinned snapshot
	// must keep answering from epoch 400.
	for i := 0; i < 400; i++ {
		if _, _, err := d.Insert(geom.Pt(rng.Float64(), rng.Float64())); err != nil {
			t.Fatal(err)
		}
	}
	after, _, err := snap.Query(VoronoiBFS, area)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(sortedIDs(before), sortedIDs(after)) {
		t.Fatalf("pinned snapshot answers changed: %d -> %d results", len(before), len(after))
	}
	oracle, _, err := snap.Query(BruteForce, area)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(sortedIDs(after), sortedIDs(oracle)) {
		t.Fatalf("snapshot voronoi diverged from its own oracle")
	}

	// The live engine, on the other hand, reflects the new epoch.
	if d.Epoch() != 800 {
		t.Fatalf("live epoch = %d, want 800", d.Epoch())
	}
	live, _, err := d.Query(BruteForce, area)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) < len(oracle) {
		t.Fatalf("live query sees %d results, pinned %d", len(live), len(oracle))
	}
}

// TestDynamicConformanceAcrossMethods is the dynamic conformance suite:
// after every batch of inserts, all four methods must agree on the same
// snapshot, on uniform and clustered workloads.
func TestDynamicConformanceAcrossMethods(t *testing.T) {
	workloads := []struct {
		name string
		gen  func(rng *rand.Rand, n int) []geom.Point
	}{
		{"uniform", func(rng *rand.Rand, n int) []geom.Point {
			return workload.UniformPoints(rng, n, unitBounds())
		}},
		{"clustered", func(rng *rand.Rand, n int) []geom.Point {
			return workload.ClusteredPoints(rng, n, 5, 0.04, unitBounds())
		}},
	}
	for _, wl := range workloads {
		wl := wl
		t.Run(wl.name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(31))
			d := NewDynamicEngine(unitBounds())
			for batch := 0; batch < 6; batch++ {
				for _, p := range wl.gen(rng, 300) {
					if _, _, err := d.Insert(p); err != nil {
						t.Fatal(err)
					}
				}
				snap := d.Snapshot()
				for trial := 0; trial < 4; trial++ {
					area := workload.RandomPolygon(rng, workload.PolygonConfig{
						Vertices:  10,
						QuerySize: 0.05,
					}, unitBounds())
					oracle, _, err := snap.Query(BruteForce, area)
					if err != nil {
						t.Fatal(err)
					}
					for _, m := range []Method{Traditional, VoronoiBFS, VoronoiBFSStrict} {
						got, _, err := snap.Query(m, area)
						if err != nil {
							t.Fatalf("%s batch %d %v: %v", wl.name, batch, m, err)
						}
						if !equalIDs(sortedIDs(got), sortedIDs(oracle)) {
							t.Fatalf("%s batch %d (%d pts) %v: %d results, oracle %d",
								wl.name, batch, snap.Len(), m, len(got), len(oracle))
						}
					}
					// Count and KNearest agree with the same snapshot too.
					cnt, _, err := snap.Count(VoronoiBFS, area)
					if err != nil || cnt != len(oracle) {
						t.Fatalf("%s batch %d Count = %d (err %v), oracle %d",
							wl.name, batch, cnt, err, len(oracle))
					}
					knn, _, err := snap.KNearest(context.Background(), area.Bounds().Center(), 8)
					if err != nil {
						t.Fatal(err)
					}
					if want := bruteKNN(snap, area.Bounds().Center(), 8); !equalIDs(knn, want) {
						t.Fatalf("%s batch %d KNearest = %v, oracle %v", wl.name, batch, knn, want)
					}
				}
			}
		})
	}
}

// bruteKNN is the k-nearest oracle over a snapshot's pinned point set.
func bruteKNN(s *DynamicSnapshot, q geom.Point, k int) []int64 {
	type cand struct {
		id int64
		d2 float64
	}
	var all []cand
	s.EachPoint(func(id int64, pos geom.Point) bool {
		all = append(all, cand{id: id, d2: q.Dist2(pos)})
		return true
	})
	sort.Slice(all, func(a, b int) bool {
		if all[a].d2 != all[b].d2 {
			return all[a].d2 < all[b].d2
		}
		return all[a].id < all[b].id
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]int64, len(all))
	for i, c := range all {
		out[i] = c.id
	}
	return out
}
