package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/delaunay"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rtree"
	"repro/internal/voronoi"
)

// DynamicData adapts a dynamic Delaunay triangulation to the DataAccess
// interface. Ids are the triangulation's site ids: the three fence sites
// occupy 0..2 and are exposed as ordinary (far-away) points so the BFS can
// route through them in sparse datasets; Each skips them, so the
// brute-force oracle and scans see only user sites.
type DynamicData struct {
	dt *delaunay.Dynamic

	// arena is the packed cell arena over the snapshot's sites, built
	// lazily by the first strict query against this snapshot (once per
	// epoch, not per query) — DynamicData always wraps an immutable
	// triangulation snapshot, so the arena never goes stale.
	arenaOnce sync.Once
	arena     *voronoi.CellArena
}

// NumIDs implements DataAccess (fence sites included).
func (d *DynamicData) NumIDs() int { return d.dt.NumSites() }

// Position implements DataAccess.
func (d *DynamicData) Position(id int64) geom.Point { return d.dt.Point(int(id)) }

// NeighborsFunc implements DataAccess.
func (d *DynamicData) NeighborsFunc(id int64, fn func(nb int64) bool) {
	d.dt.Neighbors(int(id), func(nb int32) bool { return fn(int64(nb)) })
}

// Load implements DataAccess (in-memory, free).
func (d *DynamicData) Load(id int64) (geom.Point, error) { return d.dt.Point(int(id)), nil }

// Each implements DataAccess over user sites only.
func (d *DynamicData) Each(fn func(id int64, pos geom.Point) bool) {
	for i := delaunay.FirstSiteID; i < d.dt.NumSites(); i++ {
		if !fn(int64(i), d.dt.Point(i)) {
			return
		}
	}
}

// Returnable implements ResultFilter: fence sites may be traversed (they
// route the BFS and the KNN expansion through sparse regions) but never
// appear in results.
func (d *DynamicData) Returnable(id int64) bool { return !d.dt.IsFence(int(id)) }

// Cell implements CellSource: the site's Voronoi cell clipped to an
// expanded universe (so fence-adjacent cells stay closed).
func (d *DynamicData) Cell(id int64) geom.Ring {
	site := d.dt.Point(int(id))
	nbs := d.dt.NeighborIDs(int(id))
	pts := make([]geom.Point, len(nbs))
	for i, nb := range nbs {
		pts[i] = d.dt.Point(int(nb))
	}
	u := d.dt.Universe()
	clip := u.Expand(u.Width() + u.Height() + 1)
	return voronoi.CellFromNeighbors(site, pts, clip)
}

// CellArena implements CellArenaSource: every cell of the pinned epoch,
// clipped to the same expanded universe Cell uses and packed into one
// arena. Built on first use and cached for the snapshot's lifetime, so the
// O(n) clipping pass is paid once per epoch; segment-rule workloads that
// never run a strict query never pay it.
func (d *DynamicData) CellArena() *voronoi.CellArena {
	d.arenaOnce.Do(func() {
		u := d.dt.Universe()
		clip := u.Expand(u.Width() + u.Height() + 1)
		d.arena = voronoi.CellArenaFromSites(
			d.dt.NumSites(), clip,
			func(i int) geom.Point { return d.dt.Point(i) },
			func(i int, fn func(nb geom.Point) bool) {
				d.dt.Neighbors(i, func(nb int32) bool { return fn(d.dt.Point(int(nb))) })
			},
		)
	})
	return d.arena
}

// DynamicEngine answers area queries over a growing dataset: points are
// inserted one at a time into a dynamic Delaunay triangulation and a
// dynamic R-tree (R* split) — the update capability the paper leaves as
// future work.
//
// Concurrency follows an epoch-snapshot scheme. The live triangulation and
// R-tree belong to the writer: Insert mutates them under an internal mutex
// (multiple inserting goroutines are therefore serialized, not racy).
// Queries never touch the live structures — every query pins the current
// epoch's immutable snapshot, published through an atomic pointer, so any
// number of goroutines can run Query/QueryRegion/KNearest/Count (or batch
// over a Snapshot's Engine) concurrently with insertion and never observe
// a half-applied update. Snapshots are rebuilt lazily: the first read after
// a write pays an O(n) copy-on-write publish (append-only point storage
// is shared; the in-place-mutated topology arrays and index nodes are
// copied) and every subsequent read reuses the published epoch for free.
//
// Write visibility: a query that starts after an Insert call returns is
// guaranteed to observe that insert; a query concurrent with an Insert
// observes either the epoch before it or after it, never a mixture.
type DynamicEngine struct {
	mu   sync.Mutex        // serializes writers and snapshot publication
	dt   *delaunay.Dynamic // guarded by mu (the pointer is set once; mu guards the mutable topology)
	tree *rtree.Tree       // guarded by mu

	// epoch counts accepted inserts; it is bumped (under mu) after the
	// triangulation and R-tree both reflect the new point, so a reader
	// that observes epoch e and rebuilds under mu sees at least e points.
	epoch atomic.Uint64
	// snap is the most recently published snapshot (nil until first read).
	snap atomic.Pointer[DynamicSnapshot]

	// publishHist, when non-nil, observes the latency of each snapshot
	// rebuild+publish (set once via SetPublishMetrics before concurrent
	// use). lastPublish is the UnixNano wall time of the latest publish,
	// 0 before the first; together they answer "how stale is the view
	// queries are seeing, and what does refreshing it cost".
	publishHist *obs.Histogram
	lastPublish atomic.Int64
}

// SetPublishMetrics attaches a histogram that observes snapshot
// publish latency (the O(n) copy-on-write rebuild). It must be called
// before the engine is shared between goroutines — typically right
// after NewDynamicEngine — and is a no-op with a nil histogram.
func (d *DynamicEngine) SetPublishMetrics(h *obs.Histogram) { d.publishHist = h }

// LastPublish returns the wall-clock time the current snapshot was
// published, and false before any snapshot has been built. The age of
// that instant is how stale a lock-free reader's view can be.
func (d *DynamicEngine) LastPublish() (time.Time, bool) {
	ns := d.lastPublish.Load()
	if ns == 0 {
		return time.Time{}, false
	}
	return time.Unix(0, ns), true
}

// NewDynamicEngine returns an empty dynamic engine over the universe
// rectangle. All inserted points and query polygons must lie within it.
func NewDynamicEngine(universe geom.Rect) *DynamicEngine {
	dt := delaunay.NewDynamic(universe)
	return &DynamicEngine{
		dt:   dt,
		tree: rtree.NewRStar(16),
	}
}

// Len returns the number of inserted points (as of the current epoch).
func (d *DynamicEngine) Len() int { return int(d.epoch.Load()) }

// Epoch returns the current epoch: the number of accepted inserts.
// Snapshots report the epoch they were pinned at.
func (d *DynamicEngine) Epoch() uint64 { return d.epoch.Load() }

// Universe returns the declared universe rectangle.
//
//vaqvet:ignore lockguard dt pointer is immutable and the universe rect never changes after construction
func (d *DynamicEngine) Universe() geom.Rect { return d.dt.Universe() }

// Point returns the coordinates of an inserted id. Safe to call
// concurrently with Insert. Ids covered by the published snapshot are
// served lock-free (positions never change once assigned); only ids newer
// than the snapshot fall back to the writer mutex. It panics when id was
// never returned by Insert; use PointOK for a bounds-checked lookup.
func (d *DynamicEngine) Point(id int64) geom.Point {
	if s := d.snap.Load(); s != nil && id < int64(s.data.NumIDs()) {
		return s.data.Position(id)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dt.Point(int(id))
}

// PointOK returns the coordinates of id and whether id is a user site the
// engine currently holds. Safe to call concurrently with Insert, with the
// same lock-free fast path as Point.
func (d *DynamicEngine) PointOK(id int64) (geom.Point, bool) {
	if id < int64(delaunay.FirstSiteID) {
		return geom.Point{}, false
	}
	if s := d.snap.Load(); s != nil && id < int64(s.data.NumIDs()) {
		return s.data.Position(id), true
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id >= int64(d.dt.NumSites()) {
		return geom.Point{}, false
	}
	return d.dt.Point(int(id)), true
}

// Insert adds a point and returns its id. Inserting an existing coordinate
// returns the existing id with inserted == false. Inserts from multiple
// goroutines are serialized by an internal mutex; in-flight queries keep
// reading their pinned epoch and are never blocked.
func (d *DynamicEngine) Insert(p geom.Point) (id int64, inserted bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sid, ins, err := d.dt.InsertSite(p)
	if err != nil {
		if errors.Is(err, delaunay.ErrOutsideUniverse) {
			// One exported sentinel for the condition across the whole stack.
			err = fmt.Errorf("core: insert %v outside the dynamic engine universe %v: %w",
				p, d.dt.Universe(), ErrOutsideUniverse)
		}
		return 0, false, err
	}
	if ins {
		d.tree.Insert(int64(sid), geom.NewRect(p.X, p.Y, p.X, p.Y))
		d.epoch.Add(1)
	}
	return int64(sid), ins, nil
}

// Snapshot pins the current epoch and returns its immutable view. The
// first Snapshot after a write builds the view (an O(n) copy, serialized
// with writers); repeated Snapshots between writes return the same
// published view with no copying or locking. The returned snapshot is
// safe for concurrent use and stays valid — and unchanged — forever.
func (d *DynamicEngine) Snapshot() *DynamicSnapshot {
	// Fast path: the published snapshot is current. Loading the epoch
	// first makes the check conservative — a concurrent insert can only
	// force an unnecessary rebuild, never return a snapshot older than an
	// insert that completed before this call.
	e := d.epoch.Load()
	if s := d.snap.Load(); s != nil && s.epoch == e {
		return s
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	e = d.epoch.Load() // stable: writers bump it only under mu
	if s := d.snap.Load(); s != nil && s.epoch == e {
		return s
	}
	var buildStart time.Time
	if d.publishHist != nil {
		buildStart = time.Now()
	}
	data := &DynamicData{dt: d.dt.Snapshot()}
	s := &DynamicSnapshot{
		epoch:    e,
		n:        d.dt.NumUserSites(),
		universe: d.dt.Universe(),
		data:     data,
		eng:      NewEngine(dynamicIndex{tree: d.tree.Snapshot()}, data),
	}
	d.snap.Store(s)
	d.lastPublish.Store(time.Now().UnixNano())
	if d.publishHist != nil {
		d.publishHist.Observe(time.Since(buildStart))
	}
	return s
}

// Query answers an area query at the current epoch. The area must lie
// within the universe (ErrOutsideUniverse otherwise).
func (d *DynamicEngine) Query(m Method, area geom.Polygon) ([]int64, Stats, error) {
	return d.Snapshot().Query(m, area)
}

// QueryRegion answers an area query over a prepared Region at the current
// epoch.
func (d *DynamicEngine) QueryRegion(m Method, region Region) ([]int64, Stats, error) {
	return d.Snapshot().QueryRegion(m, region)
}

// KNearest returns the k inserted points nearest to q at the current
// epoch. Cancellation follows Engine.KNearest's contract.
func (d *DynamicEngine) KNearest(ctx context.Context, q geom.Point, k int) ([]int64, Stats, error) {
	return d.Snapshot().KNearest(ctx, q, k)
}

// Count answers an area query at the current epoch, returning only the
// number of matching points.
func (d *DynamicEngine) Count(m Method, area geom.Polygon) (int, Stats, error) {
	return d.Snapshot().Count(m, area)
}

// DynamicSnapshot is an immutable, epoch-pinned view of a DynamicEngine:
// every query on it sees exactly the points inserted before it was taken,
// no matter how many inserts have happened since. Snapshots are safe for
// concurrent use from any number of goroutines.
type DynamicSnapshot struct {
	epoch    uint64
	n        int // user sites at the pinned epoch
	universe geom.Rect
	data     *DynamicData
	eng      *Engine
}

// Epoch returns the epoch the snapshot was pinned at (the number of
// inserts it reflects).
func (s *DynamicSnapshot) Epoch() uint64 { return s.epoch }

// Len returns the number of points in the snapshot.
func (s *DynamicSnapshot) Len() int { return s.n }

// Universe returns the declared universe rectangle.
func (s *DynamicSnapshot) Universe() geom.Rect { return s.universe }

// Point returns the coordinates of an inserted id present in the snapshot.
func (s *DynamicSnapshot) Point(id int64) geom.Point { return s.data.Position(id) }

// PointOK returns the coordinates of id and whether id is a user site
// present in the snapshot (fence sites and out-of-range ids report false).
func (s *DynamicSnapshot) PointOK(id int64) (geom.Point, bool) {
	if id < int64(delaunay.FirstSiteID) || id >= int64(s.data.NumIDs()) {
		return geom.Point{}, false
	}
	return s.data.Position(id), true
}

// EachPoint iterates the snapshot's points in ascending id order; fn
// returning false stops the iteration.
func (s *DynamicSnapshot) EachPoint(fn func(id int64, pos geom.Point) bool) { s.data.Each(fn) }

// Engine returns the snapshot's immutable engine, for batch executors and
// instrumentation. All four query methods run against the pinned epoch.
func (s *DynamicSnapshot) Engine() *Engine { return s.eng }

// checkArea validates a query region's MBR against the universe.
func (s *DynamicSnapshot) checkArea(bounds geom.Rect) error {
	if !s.universe.ContainsRect(bounds) {
		return fmt.Errorf("core: query area %v exceeds the dynamic engine universe %v: %w",
			bounds, s.universe, ErrOutsideUniverse)
	}
	return nil
}

// CheckRegion validates a region the same way QueryRegion would —
// ErrOutsideUniverse for an area escaping the universe, ErrNoData while
// the snapshot is empty — without running the query. Batch executors call
// it up front so parallel batches keep the sequential error contract.
func (s *DynamicSnapshot) CheckRegion(region Region) error {
	if err := s.checkArea(region.Bounds()); err != nil {
		return err
	}
	if s.n == 0 {
		return ErrNoData
	}
	return nil
}

// Query answers an area query against the pinned epoch.
func (s *DynamicSnapshot) Query(m Method, area geom.Polygon) ([]int64, Stats, error) {
	return s.QueryRegion(m, PolygonRegion(area))
}

// QueryRegion answers an area query over a prepared Region against the
// pinned epoch.
func (s *DynamicSnapshot) QueryRegion(m Method, region Region) ([]int64, Stats, error) {
	return s.QueryRegionSpec(context.Background(), region, QuerySpec{Method: m})
}

// QueryRegionSpec is the context-aware spec-driven query entry point
// against the pinned epoch, with the same universe/empty-data error
// contract as QueryRegion.
func (s *DynamicSnapshot) QueryRegionSpec(ctx context.Context, region Region, spec QuerySpec) ([]int64, Stats, error) {
	if err := s.checkArea(region.Bounds()); err != nil {
		return nil, Stats{Method: spec.Method}, err
	}
	if s.n == 0 {
		return nil, Stats{Method: spec.Method}, ErrNoData
	}
	return s.eng.QueryRegionSpec(ctx, region, spec)
}

// EachRegion streams an area query against the pinned epoch (see
// Engine.EachRegion), with the same universe/empty-data error contract as
// QueryRegion.
func (s *DynamicSnapshot) EachRegion(ctx context.Context, region Region, spec QuerySpec, yield func(id int64, pos geom.Point) bool) (Stats, error) {
	if err := s.checkArea(region.Bounds()); err != nil {
		return Stats{Method: spec.Method}, err
	}
	if s.n == 0 {
		return Stats{Method: spec.Method}, ErrNoData
	}
	return s.eng.EachRegion(ctx, region, spec, yield)
}

// KNearest returns the k points nearest to q at the pinned epoch
// (ErrNoData when the snapshot is empty, matching Query). Cancellation
// follows Engine.KNearest's contract.
func (s *DynamicSnapshot) KNearest(ctx context.Context, q geom.Point, k int) ([]int64, Stats, error) {
	if s.n == 0 {
		return nil, Stats{}, ErrNoData
	}
	return s.eng.KNearest(ctx, q, k)
}

// Count answers an area query against the pinned epoch, returning only the
// number of matching points.
func (s *DynamicSnapshot) Count(m Method, area geom.Polygon) (int, Stats, error) {
	ids, stats, err := s.Query(m, area)
	return len(ids), stats, err
}

// dynamicIndex adapts the growing R-tree (user sites only) to
// SpatialIndex.
type dynamicIndex struct {
	tree *rtree.Tree
}

// Window implements SpatialIndex.
func (x dynamicIndex) Window(q geom.Rect, fn func(id int64) bool) int {
	st := x.tree.Search(q, func(id int64, _ geom.Rect) bool { return fn(id) })
	return st.NodesVisited
}

// Nearest implements SpatialIndex.
func (x dynamicIndex) Nearest(q geom.Point) (int64, int, bool) {
	item, st, ok := x.tree.NearestNeighbor(q)
	return item.ID, st.NodesVisited, ok
}
