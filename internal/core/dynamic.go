package core

import (
	"fmt"

	"repro/internal/delaunay"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/voronoi"
)

// DynamicData adapts a dynamic Delaunay triangulation to the DataAccess
// interface. Ids are the triangulation's site ids: the three fence sites
// occupy 0..2 and are exposed as ordinary (far-away) points so the BFS can
// route through them in sparse datasets; Each skips them, so the
// brute-force oracle and scans see only user sites.
type DynamicData struct {
	dt *delaunay.Dynamic
}

// NumIDs implements DataAccess (fence sites included).
func (d *DynamicData) NumIDs() int { return d.dt.NumSites() }

// Position implements DataAccess.
func (d *DynamicData) Position(id int64) geom.Point { return d.dt.Point(int(id)) }

// NeighborsFunc implements DataAccess.
func (d *DynamicData) NeighborsFunc(id int64, fn func(nb int64) bool) {
	d.dt.Neighbors(int(id), func(nb int32) bool { return fn(int64(nb)) })
}

// Load implements DataAccess (in-memory, free).
func (d *DynamicData) Load(id int64) (geom.Point, error) { return d.dt.Point(int(id)), nil }

// Each implements DataAccess over user sites only.
func (d *DynamicData) Each(fn func(id int64, pos geom.Point) bool) {
	for i := delaunay.FirstSiteID; i < d.dt.NumSites(); i++ {
		if !fn(int64(i), d.dt.Point(i)) {
			return
		}
	}
}

// Cell implements CellSource: the site's Voronoi cell clipped to an
// expanded universe (so fence-adjacent cells stay closed).
func (d *DynamicData) Cell(id int64) geom.Ring {
	site := d.dt.Point(int(id))
	nbs := d.dt.NeighborIDs(int(id))
	pts := make([]geom.Point, len(nbs))
	for i, nb := range nbs {
		pts[i] = d.dt.Point(int(nb))
	}
	u := d.dt.Universe()
	clip := u.Expand(u.Width() + u.Height() + 1)
	return voronoi.CellFromNeighbors(site, pts, clip)
}

// DynamicEngine answers area queries over a growing dataset: points are
// inserted one at a time into a dynamic Delaunay triangulation and a
// dynamic R-tree (R* split), and queries run at any moment with either
// method — the update capability the paper leaves as future work.
// Unlike the static Engine, a DynamicEngine is single-writer and not safe
// for concurrent use: Insert mutates the triangulation and the R-tree that
// in-flight queries traverse.
type DynamicEngine struct {
	dt   *delaunay.Dynamic
	tree *rtree.Tree
	data *DynamicData
	eng  *Engine
}

// NewDynamicEngine returns an empty dynamic engine over the universe
// rectangle. All inserted points and query polygons must lie within it.
func NewDynamicEngine(universe geom.Rect) *DynamicEngine {
	dt := delaunay.NewDynamic(universe)
	data := &DynamicData{dt: dt}
	tree := rtree.NewRStar(16)
	return &DynamicEngine{
		dt:   dt,
		tree: tree,
		data: data,
		eng:  NewEngine(dynamicIndex{tree: tree}, data),
	}
}

// Len returns the number of inserted points.
func (d *DynamicEngine) Len() int { return d.dt.NumUserSites() }

// Universe returns the declared universe rectangle.
func (d *DynamicEngine) Universe() geom.Rect { return d.dt.Universe() }

// Point returns the coordinates of an inserted id.
func (d *DynamicEngine) Point(id int64) geom.Point { return d.dt.Point(int(id)) }

// Insert adds a point and returns its id. Inserting an existing coordinate
// returns the existing id with inserted == false.
func (d *DynamicEngine) Insert(p geom.Point) (id int64, inserted bool, err error) {
	sid, ins, err := d.dt.InsertSite(p)
	if err != nil {
		return 0, false, err
	}
	if ins {
		d.tree.Insert(int64(sid), geom.NewRect(p.X, p.Y, p.X, p.Y))
	}
	return int64(sid), ins, nil
}

// Query answers an area query. The area must lie within the universe.
func (d *DynamicEngine) Query(m Method, area geom.Polygon) ([]int64, Stats, error) {
	if d.Len() == 0 {
		return nil, Stats{Method: m}, ErrNoData
	}
	if !d.dt.Universe().ContainsRect(area.Bounds()) {
		return nil, Stats{Method: m}, fmt.Errorf(
			"core: query area %v exceeds the dynamic engine universe %v",
			area.Bounds(), d.dt.Universe())
	}
	return d.eng.Query(m, area)
}

// dynamicIndex adapts the growing R-tree (user sites only) to
// SpatialIndex.
type dynamicIndex struct {
	tree *rtree.Tree
}

// Window implements SpatialIndex.
func (x dynamicIndex) Window(q geom.Rect, fn func(id int64) bool) int {
	st := x.tree.Search(q, func(id int64, _ geom.Rect) bool { return fn(id) })
	return st.NodesVisited
}

// Nearest implements SpatialIndex.
func (x dynamicIndex) Nearest(q geom.Point) (int64, int, bool) {
	item, st, ok := x.tree.NearestNeighbor(q)
	return item.ID, st.NodesVisited, ok
}
