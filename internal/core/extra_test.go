package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/workload"
)

func TestConcurrentSharedEngineRaceFree(t *testing.T) {
	// Shared MemoryData + R-tree, one Engine shared by every goroutine. Run
	// with -race to validate the read-only sharing contract.
	rng := rand.New(rand.NewSource(2))
	eng, _ := newUniformEngine(t, rng, 5000)
	areas := make([]geom.Polygon, 16)
	for i := range areas {
		areas[i] = workload.RandomPolygon(rng, workload.PolygonConfig{QuerySize: 0.02}, unitBounds())
	}
	oracle := make([][]int64, len(areas))
	for i, area := range areas {
		ids, _, err := eng.Query(BruteForce, area)
		if err != nil {
			t.Fatal(err)
		}
		oracle[i] = sortedIDs(ids)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				i := (worker + rep) % len(areas)
				ids, _, err := eng.Query(VoronoiBFS, areas[i])
				if err != nil {
					errs <- err
					return
				}
				if !equalIDs(sortedIDs(ids), oracle[i]) {
					errs <- errMismatch(worker, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type mismatchError struct{ worker, query int }

func errMismatch(w, q int) error { return mismatchError{w, q} }
func (e mismatchError) Error() string {
	return "concurrent clone diverged from oracle"
}

func TestCountMatchesQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	eng, _ := newUniformEngine(t, rng, 3000)
	for trial := 0; trial < 20; trial++ {
		area := workload.RandomPolygon(rng, workload.PolygonConfig{QuerySize: 0.03}, unitBounds())
		ids, _, err := eng.Query(VoronoiBFS, area)
		if err != nil {
			t.Fatal(err)
		}
		n, st, err := eng.Count(VoronoiBFS, area)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(ids) {
			t.Fatalf("Count = %d, Query len = %d", n, len(ids))
		}
		if st.ResultSize != n {
			t.Fatalf("stats.ResultSize = %d, want %d", st.ResultSize, n)
		}
	}
}

func TestQueryBatchAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	eng, _ := newUniformEngine(t, rng, 3000)
	areas := make([]geom.Polygon, 5)
	for i := range areas {
		areas[i] = workload.RandomPolygon(rng, workload.PolygonConfig{QuerySize: 0.02}, unitBounds())
	}
	results, agg, err := eng.QueryBatch(VoronoiBFS, areas)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(areas) {
		t.Fatalf("results = %d", len(results))
	}
	var wantResult, wantCand int
	for i, area := range areas {
		ids, st, err := eng.Query(VoronoiBFS, area)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(sortedIDs(results[i]), sortedIDs(ids)) {
			t.Fatalf("batch result %d diverges", i)
		}
		wantResult += st.ResultSize
		wantCand += st.Candidates
	}
	if agg.ResultSize != wantResult {
		t.Errorf("aggregate ResultSize = %d, want %d", agg.ResultSize, wantResult)
	}
	if agg.Candidates != wantCand {
		t.Errorf("aggregate Candidates = %d, want %d", agg.Candidates, wantCand)
	}
	if agg.Duration <= 0 {
		t.Error("aggregate duration missing")
	}
}

func TestRectangleQueriesFavorTraditional(t *testing.T) {
	// The paper's introduction: for rectangular queries the traditional
	// filter is nearly exact (candidates ≈ results). Verify, and verify
	// both methods still agree.
	rng := rand.New(rand.NewSource(5))
	eng, _ := newUniformEngine(t, rng, 20000)
	for trial := 0; trial < 20; trial++ {
		rect := workload.RectanglePolygon(rng, 0.02, 0.5+rng.Float64()*2, unitBounds())
		a, stTrad, err := eng.Query(Traditional, rect)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := eng.Query(VoronoiBFS, rect)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(sortedIDs(a), sortedIDs(b)) {
			t.Fatal("methods disagree on rectangle query")
		}
		// Traditional candidates should be (almost) exactly the result set:
		// only boundary-straddling float effects can differ.
		if stTrad.RedundantValidations > stTrad.ResultSize/10+5 {
			t.Errorf("trial %d: rectangle query traditional redundancy %d vs result %d — MBR filter should be near-exact",
				trial, stTrad.RedundantValidations, stTrad.ResultSize)
		}
	}
}
