package core

import (
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/storage"
	"repro/internal/voronoi"
)

// ErrDuplicatePoints is returned by the data constructors: Algorithm 1
// identifies points with Voronoi sites, so coincident points would be
// unreachable through the adjacency. Deduplicate before building.
var ErrDuplicatePoints = errors.New("core: dataset contains duplicate coordinates")

// MemoryData is an in-memory DataAccess: records live in Go slices and
// Load performs no simulated IO. It is the fastest option and the one used
// for pure-CPU benchmarking. MemoryData implements CellSource and
// CellArenaSource, so the strict expansion rule is available and runs
// allocation-free.
//
// The layout is structure-of-arrays throughout: coordinates live in
// parallel xs/ys float64 slices (CoordSource) and every clipped Voronoi
// cell is packed into one contiguous vertex arena at construction
// (voronoi.BuildCellArena), so the BFS intersection tests and the KNearest
// distance loop scan dense memory.
type MemoryData struct {
	xs, ys  []float64
	diagram *voronoi.Diagram
	arena   *voronoi.CellArena
}

// NewMemoryData builds the Voronoi topology over pts, clips every cell
// once into the packed arena, and wraps both in a DataAccess. bounds must
// contain all points (it bounds the Voronoi cells).
func NewMemoryData(pts []geom.Point, bounds geom.Rect) (*MemoryData, error) {
	d, err := voronoi.New(pts, bounds)
	if err != nil {
		return nil, err
	}
	if d.NumSites() != len(pts) {
		return nil, ErrDuplicatePoints
	}
	m := &MemoryData{
		xs:      make([]float64, len(pts)),
		ys:      make([]float64, len(pts)),
		diagram: d,
		arena:   voronoi.BuildCellArena(d),
	}
	for i, p := range pts {
		m.xs[i], m.ys[i] = p.X, p.Y
	}
	return m, nil
}

// NumIDs implements DataAccess.
func (m *MemoryData) NumIDs() int { return len(m.xs) }

// Position implements DataAccess.
func (m *MemoryData) Position(id int64) geom.Point {
	return geom.Point{X: m.xs[id], Y: m.ys[id]}
}

// Coords implements CoordSource.
func (m *MemoryData) Coords() (xs, ys []float64) { return m.xs, m.ys }

// NeighborsFunc implements DataAccess.
func (m *MemoryData) NeighborsFunc(id int64, fn func(nb int64) bool) {
	for _, nb := range m.diagram.Neighbors(int(id)) {
		if !fn(int64(nb)) {
			return
		}
	}
}

// NeighborSlice implements NeighborSlicer.
func (m *MemoryData) NeighborSlice(id int64) []int32 {
	return m.diagram.Neighbors(int(id))
}

// Load implements DataAccess; in-memory data loads for free.
func (m *MemoryData) Load(id int64) (geom.Point, error) {
	return geom.Point{X: m.xs[id], Y: m.ys[id]}, nil
}

// Each implements DataAccess.
func (m *MemoryData) Each(fn func(id int64, pos geom.Point) bool) {
	for i := range m.xs {
		if !fn(int64(i), geom.Point{X: m.xs[i], Y: m.ys[i]}) {
			return
		}
	}
}

// Cell implements CellSource, materializing the packed ring (callers on
// the hot path read the arena's Ring view instead).
func (m *MemoryData) Cell(id int64) geom.Ring { return m.arena.Ring(int(id)).Ring() }

// CellBox implements CellBoxSource: the bounding rectangle of id's clipped
// Voronoi cell, read from the packed arena.
func (m *MemoryData) CellBox(id int64) geom.Rect { return m.arena.CellBox(int(id)) }

// CellArena implements CellArenaSource.
func (m *MemoryData) CellArena() *voronoi.CellArena { return m.arena }

// Diagram exposes the underlying Voronoi diagram (for rendering and
// inspection).
func (m *MemoryData) Diagram() *voronoi.Diagram { return m.diagram }

// StoreData is a DataAccess whose Load goes through a paged object store
// with a sharded LRU buffer pool, so every refinement fetch is
// IO-accounted. The Voronoi topology and raw coordinates stay in memory
// (index-resident), as in a VoR-tree deployment. StoreData implements
// CellSource. It is safe for concurrent use: the buffer pool partitions
// its state over per-page-id lock shards and performs page loads outside
// those locks, so concurrent Loads only contend when they race for the
// same lock shard at the same instant (StoreConfig.PoolShards tunes the
// shard count).
type StoreData struct {
	mem   *MemoryData
	store *storage.Store
}

// StoreConfig configures the simulated object store.
type StoreConfig struct {
	// PageSize in bytes; storage.DefaultPageSize when <= 0.
	PageSize int
	// PoolPages is the buffer pool capacity in pages (0 = no cache,
	// negative = unbounded).
	PoolPages int
	// PoolShards is the buffer pool's lock-shard count: <= 0 picks a
	// power of two at or above GOMAXPROCS, 1 is a single-lock pool, and
	// the count never exceeds a positive PoolPages nor 128 (see
	// storage.Options.PoolShards for the rounding rules).
	PoolShards int
	// PayloadBytes of opaque attribute data per record, giving records
	// realistic width. Zero is allowed.
	PayloadBytes int
}

// NewStoreData builds the Voronoi topology over pts and materializes every
// point as a record (coordinates + Voronoi neighbor ids + payload) in a
// paged store.
func NewStoreData(pts []geom.Point, bounds geom.Rect, cfg StoreConfig) (*StoreData, error) {
	mem, err := NewMemoryData(pts, bounds)
	if err != nil {
		return nil, err
	}
	builder := storage.NewBuilder(storage.Options{
		PageSize:   cfg.PageSize,
		PoolPages:  cfg.PoolPages,
		PoolShards: cfg.PoolShards,
	})
	payload := make([]byte, cfg.PayloadBytes)
	for i, p := range pts {
		nbs32 := mem.diagram.Neighbors(i)
		nbs := make([]int64, len(nbs32))
		for j, nb := range nbs32 {
			nbs[j] = int64(nb)
		}
		rec := storage.PointRecord{
			ID:        int64(i),
			Pos:       p,
			Neighbors: nbs,
			Payload:   payload,
		}
		if err := builder.Append(rec); err != nil {
			return nil, fmt.Errorf("core: building store: %w", err)
		}
	}
	st, err := builder.Build()
	if err != nil {
		return nil, fmt.Errorf("core: building store: %w", err)
	}
	return &StoreData{mem: mem, store: st}, nil
}

// NumIDs implements DataAccess.
func (s *StoreData) NumIDs() int { return s.mem.NumIDs() }

// Position implements DataAccess (index-resident, no IO).
func (s *StoreData) Position(id int64) geom.Point { return s.mem.Position(id) }

// Coords implements CoordSource (index-resident, no IO).
func (s *StoreData) Coords() (xs, ys []float64) { return s.mem.Coords() }

// NeighborsFunc implements DataAccess (index-resident topology, no IO).
func (s *StoreData) NeighborsFunc(id int64, fn func(nb int64) bool) {
	s.mem.NeighborsFunc(id, fn)
}

// NeighborSlice implements NeighborSlicer.
func (s *StoreData) NeighborSlice(id int64) []int32 {
	return s.mem.NeighborSlice(id)
}

// Load implements DataAccess: it fetches the record through the buffer
// pool, paying simulated IO.
func (s *StoreData) Load(id int64) (geom.Point, error) {
	rec, err := s.store.Get(id)
	if err != nil {
		return geom.Point{}, err
	}
	return rec.Pos, nil
}

// Each implements DataAccess via a sequential store scan.
func (s *StoreData) Each(fn func(id int64, pos geom.Point) bool) {
	_ = s.store.Scan(func(rec storage.PointRecord) bool {
		return fn(rec.ID, rec.Pos)
	})
}

// Cell implements CellSource.
func (s *StoreData) Cell(id int64) geom.Ring { return s.mem.Cell(id) }

// CellBox implements CellBoxSource (index-resident, no IO).
func (s *StoreData) CellBox(id int64) geom.Rect { return s.mem.CellBox(id) }

// CellArena implements CellArenaSource (index-resident, no IO).
func (s *StoreData) CellArena() *voronoi.CellArena { return s.mem.CellArena() }

// Diagram exposes the underlying Voronoi diagram.
func (s *StoreData) Diagram() *voronoi.Diagram { return s.mem.Diagram() }

// Store exposes the underlying object store (for IO statistics).
func (s *StoreData) Store() *storage.Store { return s.store }

// IOStats returns the accumulated buffer pool statistics.
func (s *StoreData) IOStats() storage.BufferPoolStats { return s.store.Stats() }

// ResetIOStats zeroes the IO counters (cache contents are kept).
func (s *StoreData) ResetIOStats() { s.store.ResetStats() }
