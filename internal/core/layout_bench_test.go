package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/voronoi"
	"repro/internal/workload"
)

// Layout ablation: the effect of spatially clustering (Hilbert-sorting)
// the dataset on both query methods. Clustering mirrors a production
// store's page layout and is especially favorable to the Voronoi BFS,
// whose expansion pattern is spatially local.

func benchQueries(b *testing.B, eng *Engine, m Method, areas []geom.Polygon) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Query(m, areas[i%len(areas)]); err != nil {
			b.Fatal(err)
		}
	}
}

func layoutBenchSetup(b *testing.B, hilbertSorted bool) (*Engine, []geom.Polygon) {
	b.Helper()
	rng := rand.New(rand.NewSource(13))
	pts := workload.UniformPoints(rng, 100_000, unitBounds())
	if hilbertSorted {
		workload.HilbertSort(pts, unitBounds())
	}
	data, err := NewMemoryData(pts, unitBounds())
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(NewRTreeIndex(pts, 16), data)
	areas := make([]geom.Polygon, 64)
	for i := range areas {
		areas[i] = workload.RandomPolygon(rng, workload.PolygonConfig{Vertices: 10, QuerySize: 0.01}, unitBounds())
	}
	return eng, areas
}

func BenchmarkLayoutRandomOrderTraditional(b *testing.B) {
	eng, areas := layoutBenchSetup(b, false)
	benchQueries(b, eng, Traditional, areas)
}

func BenchmarkLayoutRandomOrderVoronoi(b *testing.B) {
	eng, areas := layoutBenchSetup(b, false)
	benchQueries(b, eng, VoronoiBFS, areas)
}

func BenchmarkLayoutHilbertTraditional(b *testing.B) {
	eng, areas := layoutBenchSetup(b, true)
	benchQueries(b, eng, Traditional, areas)
}

func BenchmarkLayoutHilbertVoronoi(b *testing.B) {
	eng, areas := layoutBenchSetup(b, true)
	benchQueries(b, eng, VoronoiBFS, areas)
}

// BenchmarkCellArena measures the strict rule's cell-intersection machinery
// in isolation: build cost of the packed arena, and the read-side
// box-reject + exact ring-view test sweep over every cell (the BFS's
// per-visit work, expected to run at 0 allocs/op).

func BenchmarkCellArenaBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	pts := workload.UniformPoints(rng, 100_000, unitBounds())
	d, err := NewMemoryData(pts, unitBounds())
	if err != nil {
		b.Fatal(err)
	}
	diag := d.Diagram()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := voronoi.BuildCellArena(diag)
		if a.NumCells() != len(pts) {
			b.Fatal("bad arena")
		}
	}
}

func BenchmarkCellArenaIntersect(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	pts := workload.UniformPoints(rng, 100_000, unitBounds())
	data, err := NewMemoryData(pts, unitBounds())
	if err != nil {
		b.Fatal(err)
	}
	region := PolygonRegion(workload.RandomPolygon(rng, workload.PolygonConfig{Vertices: 10, QuerySize: 0.01}, unitBounds()))
	q := voronoiQuery{region: region, strict: true, regionMBR: region.Bounds()}
	q.arena = data.CellArena()
	q.rectRegion, _ = region.(RectIntersecter)
	q.ringRegion, _ = region.(RingViewIntersecter)
	xs, ys := data.Coords()
	var stats Stats
	b.ReportAllocs()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		id := i % len(pts)
		if q.testCell(int64(id), geom.Point{X: xs[id], Y: ys[id]}, &stats) {
			hits++
		}
	}
	_ = hits
}
