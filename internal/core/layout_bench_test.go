package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/workload"
)

// Layout ablation: the effect of spatially clustering (Hilbert-sorting)
// the dataset on both query methods. Clustering mirrors a production
// store's page layout and is especially favorable to the Voronoi BFS,
// whose expansion pattern is spatially local.

func benchQueries(b *testing.B, eng *Engine, m Method, areas []geom.Polygon) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Query(m, areas[i%len(areas)]); err != nil {
			b.Fatal(err)
		}
	}
}

func layoutBenchSetup(b *testing.B, hilbertSorted bool) (*Engine, []geom.Polygon) {
	b.Helper()
	rng := rand.New(rand.NewSource(13))
	pts := workload.UniformPoints(rng, 100_000, unitBounds())
	if hilbertSorted {
		workload.HilbertSort(pts, unitBounds())
	}
	data, err := NewMemoryData(pts, unitBounds())
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(NewRTreeIndex(pts, 16), data)
	areas := make([]geom.Polygon, 64)
	for i := range areas {
		areas[i] = workload.RandomPolygon(rng, workload.PolygonConfig{Vertices: 10, QuerySize: 0.01}, unitBounds())
	}
	return eng, areas
}

func BenchmarkLayoutRandomOrderTraditional(b *testing.B) {
	eng, areas := layoutBenchSetup(b, false)
	benchQueries(b, eng, Traditional, areas)
}

func BenchmarkLayoutRandomOrderVoronoi(b *testing.B) {
	eng, areas := layoutBenchSetup(b, false)
	benchQueries(b, eng, VoronoiBFS, areas)
}

func BenchmarkLayoutHilbertTraditional(b *testing.B) {
	eng, areas := layoutBenchSetup(b, true)
	benchQueries(b, eng, Traditional, areas)
}

func BenchmarkLayoutHilbertVoronoi(b *testing.B) {
	eng, areas := layoutBenchSetup(b, true)
	benchQueries(b, eng, VoronoiBFS, areas)
}
