package core

import (
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/kdtree"
	"repro/internal/quadtree"
	"repro/internal/rtree"
)

// RTreeIndex adapts an R-tree of points to the SpatialIndex interface.
// This is the index the paper uses for both methods.
type RTreeIndex struct {
	tree *rtree.Tree
}

// NewRTreeIndex bulk-loads an STR-packed R-tree over pts with ids equal to
// slice indices.
func NewRTreeIndex(pts []geom.Point, maxEntries int) *RTreeIndex {
	items := make([]rtree.Item, len(pts))
	for i, p := range pts {
		items[i] = rtree.Item{ID: int64(i), Rect: geom.NewRect(p.X, p.Y, p.X, p.Y)}
	}
	return &RTreeIndex{tree: rtree.BulkLoad(items, maxEntries)}
}

// NewRStarIndex builds an R-tree with the R* split policy by dynamic
// insertion over pts with ids equal to slice indices. Unlike NewRTreeIndex
// (STR bulk load) this exercises the insertion path, modeling a database
// whose index grew incrementally.
func NewRStarIndex(pts []geom.Point, maxEntries int) *RTreeIndex {
	t := rtree.NewRStar(maxEntries)
	for i, p := range pts {
		t.Insert(int64(i), geom.NewRect(p.X, p.Y, p.X, p.Y))
	}
	return &RTreeIndex{tree: t}
}

// Tree exposes the underlying R-tree.
func (x *RTreeIndex) Tree() *rtree.Tree { return x.tree }

// Window implements SpatialIndex.
func (x *RTreeIndex) Window(q geom.Rect, fn func(id int64) bool) int {
	st := x.tree.Search(q, func(id int64, _ geom.Rect) bool { return fn(id) })
	return st.NodesVisited
}

// Nearest implements SpatialIndex.
func (x *RTreeIndex) Nearest(q geom.Point) (int64, int, bool) {
	item, st, ok := x.tree.NearestNeighbor(q)
	return item.ID, st.NodesVisited, ok
}

// KDTreeIndex adapts a kd-tree to the SpatialIndex interface.
type KDTreeIndex struct {
	tree *kdtree.Tree
}

// NewKDTreeIndex builds a kd-tree over pts with ids equal to slice indices.
func NewKDTreeIndex(pts []geom.Point) *KDTreeIndex {
	items := make([]kdtree.Item, len(pts))
	for i, p := range pts {
		items[i] = kdtree.Item{ID: int64(i), Point: p}
	}
	return &KDTreeIndex{tree: kdtree.New(items)}
}

// Window implements SpatialIndex.
func (x *KDTreeIndex) Window(q geom.Rect, fn func(id int64) bool) int {
	return x.tree.Search(q, func(id int64, _ geom.Point) bool { return fn(id) })
}

// Nearest implements SpatialIndex.
func (x *KDTreeIndex) Nearest(q geom.Point) (int64, int, bool) {
	item, ok := x.tree.NearestNeighbor(q)
	return item.ID, 0, ok
}

// QuadtreeIndex adapts a PR quadtree to the SpatialIndex interface.
type QuadtreeIndex struct {
	tree *quadtree.Tree
}

// NewQuadtreeIndex builds a quadtree covering bounds over pts with ids
// equal to slice indices. Points outside bounds are silently dropped, so
// bounds must cover the dataset.
func NewQuadtreeIndex(pts []geom.Point, bounds geom.Rect, bucketSize int) *QuadtreeIndex {
	t := quadtree.NewTree(bounds, bucketSize)
	for i, p := range pts {
		t.Insert(int64(i), p)
	}
	return &QuadtreeIndex{tree: t}
}

// Window implements SpatialIndex.
func (x *QuadtreeIndex) Window(q geom.Rect, fn func(id int64) bool) int {
	return x.tree.Search(q, func(id int64, _ geom.Point) bool { return fn(id) })
}

// Nearest implements SpatialIndex.
func (x *QuadtreeIndex) Nearest(q geom.Point) (int64, int, bool) {
	item, ok := x.tree.NearestNeighbor(q)
	return item.ID, 0, ok
}

// GridIndex adapts a uniform grid to the SpatialIndex interface.
type GridIndex struct {
	g *grid.Index
}

// NewGridIndex builds a uniform grid covering bounds over pts with ids
// equal to slice indices.
func NewGridIndex(pts []geom.Point, bounds geom.Rect, targetPerCell int) *GridIndex {
	items := make([]grid.Item, len(pts))
	for i, p := range pts {
		items[i] = grid.Item{ID: int64(i), Point: p}
	}
	return &GridIndex{g: grid.New(bounds, items, targetPerCell)}
}

// Window implements SpatialIndex.
func (x *GridIndex) Window(q geom.Rect, fn func(id int64) bool) int {
	return x.g.Search(q, func(id int64, _ geom.Point) bool { return fn(id) })
}

// Nearest implements SpatialIndex.
func (x *GridIndex) Nearest(q geom.Point) (int64, int, bool) {
	item, ok := x.g.NearestNeighbor(q)
	return item.ID, 0, ok
}

// Interface conformance checks.
var (
	_ SpatialIndex = (*RTreeIndex)(nil)
	_ SpatialIndex = (*KDTreeIndex)(nil)
	_ SpatialIndex = (*QuadtreeIndex)(nil)
	_ SpatialIndex = (*GridIndex)(nil)
	_ DataAccess   = (*MemoryData)(nil)
	_ DataAccess   = (*StoreData)(nil)
	_ CellSource   = (*MemoryData)(nil)
	_ CellSource   = (*StoreData)(nil)
)
