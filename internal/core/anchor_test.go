package core

import (
	"math/rand"
	"testing"

	"repro/internal/earcut"
	"repro/internal/workload"
)

// TestRandomAnchorMatchesOracle runs Algorithm 1 with uniformly sampled
// seed anchors ("an arbitrary position in A", taken literally) and checks
// the result set is anchor-independent — the algorithm's claim.
func TestRandomAnchorMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	eng, _ := newUniformEngine(t, rng, 10000)
	for trial := 0; trial < 30; trial++ {
		area := workload.RandomPolygon(rng, workload.PolygonConfig{
			Vertices:  10,
			QuerySize: 0.02,
		}, unitBounds())
		oracle, _, err := eng.Query(BruteForce, area)
		if err != nil {
			t.Fatal(err)
		}
		sampler, err := earcut.NewSampler(area.Outer)
		if err != nil {
			t.Fatalf("trial %d: sampler: %v", trial, err)
		}
		region := PolygonRegion(area)
		for rep := 0; rep < 5; rep++ {
			anchored := AnchoredRegion{Region: region, Anchor: sampler.Sample(rng)}
			got, _, err := eng.QueryRegion(VoronoiBFS, anchored)
			if err != nil {
				t.Fatal(err)
			}
			if !equalIDs(sortedIDs(got), sortedIDs(oracle)) {
				t.Fatalf("trial %d rep %d: random-anchor result %d, oracle %d",
					trial, rep, len(got), len(oracle))
			}
		}
	}
}
