package core

import (
	"context"

	"repro/internal/geom"
)

// KNearest returns the k stored points nearest to q in increasing distance
// order, computed by Voronoi expansion (the VoR-tree property the paper
// builds on, Sharifzadeh & Shahabi 2010): the first nearest neighbor comes
// from the spatial index; thereafter the (j+1)-th nearest neighbor is
// always a Voronoi neighbor of one of the first j, so a best-first
// expansion over the Delaunay adjacency enumerates neighbors exactly. It
// returns fewer than k items when the dataset is smaller.
//
// Cancellation follows the area-query contract: ctx is checked before any
// index work and on candidate boundaries (every cancelStride heap pops),
// surfacing as ctx.Err() with the statistics of the work already done and
// no partial result slice.
func (e *Engine) KNearest(ctx context.Context, q geom.Point, k int) ([]int64, Stats, error) {
	return e.kNearestInto(ctx, q, k, nil)
}

// kNearestInto is KNearest appending into dest (from dest[:0]); a nil dest
// allocates a fresh result slice. With a pre-sized dest the whole expansion
// — frontier heap (pooled in queryScratch), visited marks, and the packed
// coordinate distance loop — performs zero allocations on data layers that
// expose NeighborSlicer and CoordSource.
//
//vaq:noalloc
func (e *Engine) kNearestInto(ctx context.Context, q geom.Point, k int, dest []int64) ([]int64, Stats, error) {
	var stats Stats
	if e.data.NumIDs() == 0 {
		// Same contract as Query on an empty engine (not nil, nil — callers
		// can rely on one empty-data sentinel across every entry point).
		return nil, stats, ErrNoData
	}
	if k <= 0 {
		return dest[:0], stats, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	seed, nnNodes, ok := e.idx.Nearest(q)
	stats.IndexNodesVisited += nnNodes
	if !ok {
		return nil, stats, ErrNoData
	}

	// Auxiliary sites (dynamic fence points) are traversed but never
	// emitted.
	filter, _ := e.data.(ResultFilter)
	// Structure-of-arrays coordinates, when packed: the distance loop reads
	// the slices directly instead of calling Position per neighbor.
	var xs, ys []float64
	if cs, ok := e.data.(CoordSource); ok {
		xs, ys = cs.Coords()
	}
	slicer, hasSlices := e.data.(NeighborSlicer)

	s := e.acquireScratch()
	defer e.releaseScratch(s)
	s.heap = s.heap[:0]
	h := &s.heap
	h.push(knnEntry{id: seed, d2: e.knnDist2(q, xs, ys, seed)})
	s.mark(seed)

	out := dest[:0]
	if dest == nil {
		out = make([]int64, 0, k) //vaqvet:ignore noalloc nil-dest entry path allocates the caller's result slice exactly once
	}
	for len(*h) > 0 && len(out) < k {
		top := h.pop()
		if filter == nil || filter.Returnable(top.id) {
			out = append(out, top.id)
		}
		stats.Candidates++
		if stats.Candidates%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				stats.ResultSize = len(out)
				return nil, stats, err
			}
		}
		if hasSlices {
			for _, nb := range slicer.NeighborSlice(top.id) {
				nb64 := int64(nb)
				if s.mark(nb64) {
					h.push(knnEntry{id: nb64, d2: e.knnDist2(q, xs, ys, nb64)})
				}
			}
		} else {
			e.knnExpandFunc(top.id, q, xs, ys, s, h)
		}
	}
	stats.ResultSize = len(out)
	return out, stats, nil
}

// knnExpandFunc walks id's neighbors through the callback interface,
// pushing unvisited ones onto the frontier — the non-slicer path (the
// dynamic triangulation's ring walk). It lives in its own function so the
// closure it necessarily builds doesn't force kNearestInto's locals to the
// heap on the slicer path.
func (e *Engine) knnExpandFunc(id int64, q geom.Point, xs, ys []float64, s *queryScratch, h *knnHeap) {
	e.data.NeighborsFunc(id, func(nb int64) bool {
		if s.mark(nb) {
			h.push(knnEntry{id: nb, d2: e.knnDist2(q, xs, ys, nb)})
		}
		return true
	})
}

// knnDist2 is the squared distance from q to id's position, reading the
// packed coordinate slices when the data layer provides them. Identical
// arithmetic to q.Dist2(Position(id)) on both paths.
//
//vaq:noalloc
func (e *Engine) knnDist2(q geom.Point, xs, ys []float64, id int64) float64 {
	if xs != nil {
		dx, dy := q.X-xs[id], q.Y-ys[id]
		return dx*dx + dy*dy
	}
	return q.Dist2(e.data.Position(id))
}

type knnEntry struct {
	id int64
	d2 float64
}

// knnHeap is a binary min-heap of (id, squared-distance) frontier entries.
// Its sift routines replicate container/heap's algorithm exactly — same
// parent/child index arithmetic, same left-child preference on equal keys —
// so distance ties pop in the same order the previous container/heap-based
// implementation produced, without boxing every entry through interface{}.
// The backing slice is pooled in queryScratch.
type knnHeap []knnEntry

func (h knnHeap) less(i, j int) bool { return h[i].d2 < h[j].d2 }

// push appends x and sifts it up (container/heap.Push).
//
//vaq:noalloc
func (h *knnHeap) push(x knnEntry) {
	*h = append(*h, x)
	h.up(len(*h) - 1)
}

// pop removes and returns the minimum entry (container/heap.Pop): swap the
// root with the last element, sift the new root down over the shortened
// heap, then detach the old root.
//
//vaq:noalloc
func (h *knnHeap) pop() knnEntry {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	old[:n].down(0)
	x := old[n]
	*h = old[:n]
	return x
}

//vaq:noalloc
func (h knnHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

//vaq:noalloc
func (h knnHeap) down(i int) {
	n := len(h)
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2 // right child, strictly smaller
		}
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}
