package core

import (
	"container/heap"
	"context"

	"repro/internal/geom"
)

// KNearest returns the k stored points nearest to q in increasing distance
// order, computed by Voronoi expansion (the VoR-tree property the paper
// builds on, Sharifzadeh & Shahabi 2010): the first nearest neighbor comes
// from the spatial index; thereafter the (j+1)-th nearest neighbor is
// always a Voronoi neighbor of one of the first j, so a best-first
// expansion over the Delaunay adjacency enumerates neighbors exactly. It
// returns fewer than k items when the dataset is smaller.
//
// Cancellation follows the area-query contract: ctx is checked before any
// index work and on candidate boundaries (every cancelStride heap pops),
// surfacing as ctx.Err() with the statistics of the work already done and
// no partial result slice.
func (e *Engine) KNearest(ctx context.Context, q geom.Point, k int) ([]int64, Stats, error) {
	var stats Stats
	if e.data.NumIDs() == 0 {
		// Same contract as Query on an empty engine (not nil, nil — callers
		// can rely on one empty-data sentinel across every entry point).
		return nil, stats, ErrNoData
	}
	if k <= 0 {
		return nil, stats, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	seed, nnNodes, ok := e.idx.Nearest(q)
	stats.IndexNodesVisited += nnNodes
	if !ok {
		return nil, stats, ErrNoData
	}

	// Auxiliary sites (dynamic fence points) are traversed but never
	// emitted.
	filter, _ := e.data.(ResultFilter)

	s := e.acquireScratch()
	defer e.releaseScratch(s)
	h := knnHeap{{id: seed, d2: q.Dist2(e.data.Position(seed))}}
	s.mark(seed)

	out := make([]int64, 0, k)
	for len(h) > 0 && len(out) < k {
		top := heap.Pop(&h).(knnEntry)
		if filter == nil || filter.Returnable(top.id) {
			out = append(out, top.id)
		}
		stats.Candidates++
		if stats.Candidates%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				stats.ResultSize = len(out)
				return nil, stats, err
			}
		}
		e.data.NeighborsFunc(top.id, func(nb int64) bool {
			if s.mark(nb) {
				heap.Push(&h, knnEntry{id: nb, d2: q.Dist2(e.data.Position(nb))})
			}
			return true
		})
	}
	stats.ResultSize = len(out)
	return out, stats, nil
}

type knnEntry struct {
	id int64
	d2 float64
}

type knnHeap []knnEntry

func (h knnHeap) Len() int            { return len(h) }
func (h knnHeap) Less(i, j int) bool  { return h[i].d2 < h[j].d2 }
func (h knnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *knnHeap) Push(x interface{}) { *h = append(*h, x.(knnEntry)) }
func (h *knnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
