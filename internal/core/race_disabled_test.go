//go:build !race

package core

// raceEnabled reports whether the race detector is active; see
// race_enabled_test.go.
const raceEnabled = false
