package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/workload"
)

// failingData wraps a DataAccess and fails Load for one poisoned id,
// simulating a torn page / unreadable record.
type failingData struct {
	DataAccess
	poisoned int64
}

var errPoisoned = errors.New("injected load failure")

func (f *failingData) Load(id int64) (geom.Point, error) {
	if id == f.poisoned {
		return geom.Point{}, errPoisoned
	}
	return f.DataAccess.Load(id)
}

// Cell forwards to the wrapped data so the strict expansion path is
// exercised against injected load failures too.
func (f *failingData) Cell(id int64) geom.Ring { return f.DataAccess.(CellSource).Cell(id) }

func TestLoadFailureSurfacesWithContext(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := workload.UniformPoints(rng, 2000, unitBounds())
	data, err := NewMemoryData(pts, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	area := workload.RandomPolygon(rng, workload.PolygonConfig{QuerySize: 0.1}, unitBounds())

	// Poison a point that is certainly a candidate: any result point.
	idx := NewRTreeIndex(pts, 16)
	okEng := NewEngine(idx, data)
	ids, _, err := okEng.Query(BruteForce, area)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 {
		t.Skip("query found nothing; polygon landed in a gap")
	}
	poisoned := ids[len(ids)/2]

	eng := NewEngine(idx, &failingData{DataAccess: data, poisoned: poisoned})
	for _, m := range []Method{Traditional, VoronoiBFS, VoronoiBFSStrict} {
		ids, _, err := eng.Query(m, area)
		if !errors.Is(err, errPoisoned) {
			t.Errorf("%v: err = %v, want the injected failure", m, err)
		}
		if err != nil && !strings.Contains(err.Error(), "loading candidate") {
			t.Errorf("%v: error lacks context: %v", m, err)
		}
		// All query paths share one error contract: a failed query returns
		// no (partial) result slice.
		if ids != nil {
			t.Errorf("%v: returned %d partial results alongside the error", m, len(ids))
		}
	}
}

func TestLoadFailureOutsideQueryAreaHarmless(t *testing.T) {
	// Poison a record far from the query: neither method should touch it.
	rng := rand.New(rand.NewSource(2))
	pts := workload.UniformPoints(rng, 2000, unitBounds())
	// Corner query area, poison the farthest point from the corner.
	area := geom.MustPolygon([]geom.Point{
		geom.Pt(0.01, 0.01), geom.Pt(0.1, 0.02), geom.Pt(0.08, 0.09),
	})
	far := int64(0)
	for i, p := range pts {
		if p.Dist2(geom.Pt(0, 0)) > pts[far].Dist2(geom.Pt(0, 0)) {
			far = int64(i)
		}
	}
	data, err := NewMemoryData(pts, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(NewRTreeIndex(pts, 16), &failingData{DataAccess: data, poisoned: far})
	for _, m := range []Method{Traditional, VoronoiBFS, VoronoiBFSStrict} {
		if _, _, err := eng.Query(m, area); err != nil {
			t.Errorf("%v: query touching only the corner failed: %v", m, err)
		}
	}
}
