package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/workload"
)

// TestCrossMethodConformance is the repository's conformance matrix: for
// seeded random workloads (uniform and clustered) and every index kind,
// the paper's Voronoi method (both expansion rules), the traditional
// filter-and-refine baseline and the brute-force oracle must return
// identical id sets on the same query areas. It pins the core correctness
// claim the whole evaluation rests on — all methods answer the same
// question — across every index/data-distribution combination the public
// API can configure.
func TestCrossMethodConformance(t *testing.T) {
	const n = 3000

	workloads := []struct {
		name string
		gen  func(rng *rand.Rand) []geom.Point
	}{
		{"uniform", func(rng *rand.Rand) []geom.Point {
			return workload.UniformPoints(rng, n, unitBounds())
		}},
		{"clustered", func(rng *rand.Rand) []geom.Point {
			return workload.ClusteredPoints(rng, n, 8, 0.03, unitBounds())
		}},
	}
	indexes := []struct {
		name  string
		build func(pts []geom.Point) SpatialIndex
	}{
		{"rtree", func(pts []geom.Point) SpatialIndex { return NewRTreeIndex(pts, 16) }},
		{"rstar", func(pts []geom.Point) SpatialIndex { return NewRStarIndex(pts, 16) }},
		{"kdtree", func(pts []geom.Point) SpatialIndex { return NewKDTreeIndex(pts) }},
		{"quadtree", func(pts []geom.Point) SpatialIndex { return NewQuadtreeIndex(pts, unitBounds(), 16) }},
		{"grid", func(pts []geom.Point) SpatialIndex { return NewGridIndex(pts, unitBounds(), 8) }},
	}
	methods := []Method{VoronoiBFS, VoronoiBFSStrict, Traditional}

	for wi, wl := range workloads {
		t.Run(wl.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(100 + int64(wi)))
			pts := wl.gen(rng)
			data, err := NewMemoryData(pts, unitBounds())
			if err != nil {
				t.Fatal(err)
			}
			// One query mix per workload, shared by every index so any
			// disagreement points at the index or method, not the areas.
			type query struct {
				name   string
				region Region
			}
			var queries []query
			for i, qs := range []float64{0.005, 0.01, 0.04, 0.16} {
				pg := workload.RandomPolygon(rng, workload.PolygonConfig{
					Vertices:  10,
					QuerySize: qs,
				}, unitBounds())
				queries = append(queries, query{fmt.Sprintf("polygon%d", i), PolygonRegion(pg)})
			}
			queries = append(queries, query{"circle", CircleRegion(geom.NewCircle(
				geom.Pt(0.3+0.4*rng.Float64(), 0.3+0.4*rng.Float64()), 0.1))})

			// The oracle is index-independent.
			oracleEng := NewEngine(indexes[0].build(pts), data)
			oracle := make([][]int64, len(queries))
			for qi, q := range queries {
				ids, _, err := oracleEng.QueryRegion(BruteForce, q.region)
				if err != nil {
					t.Fatalf("oracle %s: %v", q.name, err)
				}
				oracle[qi] = sortedIDs(ids)
			}

			for _, ix := range indexes {
				t.Run(ix.name, func(t *testing.T) {
					eng := NewEngine(ix.build(pts), data)
					for qi, q := range queries {
						for _, m := range methods {
							got, _, err := eng.QueryRegion(m, q.region)
							if err != nil {
								t.Fatalf("%s/%v: %v", q.name, m, err)
							}
							if !equalIDs(sortedIDs(got), oracle[qi]) {
								t.Errorf("%s/%v: %d ids, oracle %d",
									q.name, m, len(got), len(oracle[qi]))
							}
						}
					}
				})
			}
		})
	}
}
