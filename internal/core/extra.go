package core

import (
	"fmt"

	"repro/internal/geom"
)

// Clone returns a new Engine sharing this engine's index and data.
//
// Deprecated: an Engine is safe for concurrent queries since per-query
// scratch state moved into a pool — goroutines can share one Engine
// directly (both MemoryData and StoreData are safe for concurrent use).
// Clone is kept for callers structured around one engine per goroutine.
func (e *Engine) Clone() *Engine {
	return NewEngine(e.idx, e.data)
}

// Count answers an area query without materializing the result set. It is
// equivalent to len(Query(m, area)) but avoids the result allocation; the
// returned Stats are identical to Query's.
func (e *Engine) Count(m Method, area geom.Polygon) (int, Stats, error) {
	ids, stats, err := e.Query(m, area)
	if err != nil {
		return 0, stats, err
	}
	// The engine's query paths already reuse scratch space; the result
	// slice is the only per-query allocation that scales with output. For
	// counting workloads this is acceptable: the slice is short-lived and
	// the stats bookkeeping dominates. Kept simple deliberately — a
	// dedicated no-materialization path measured within noise of this one.
	return len(ids), stats, nil
}

// QueryBatch answers a sequence of area queries with the same method on
// the calling goroutine, returning per-query results and aggregate
// statistics. For parallel batch execution over the same engine see
// package exec.
func (e *Engine) QueryBatch(m Method, areas []geom.Polygon) ([][]int64, Stats, error) {
	return e.QueryBatchRegions(m, Polygons(areas))
}

// QueryBatchRegions is QueryBatch over arbitrary prepared Regions, allowing
// polygon and circle queries to share one batch.
func (e *Engine) QueryBatchRegions(m Method, regions []Region) ([][]int64, Stats, error) {
	out := make([][]int64, len(regions))
	agg := Stats{Method: m}
	for i, region := range regions {
		ids, st, err := e.QueryRegion(m, region)
		if err != nil {
			return nil, agg, fmt.Errorf("core: batch query %d: %w", i, err)
		}
		out[i] = ids
		agg.Add(st)
	}
	return out, agg, nil
}
