package core

import (
	"fmt"

	"repro/internal/geom"
)

// Clone returns a new Engine sharing this engine's index and data but with
// independent scratch state, so the clone and the original can run queries
// concurrently as long as the shared DataAccess is safe for concurrent
// reads. MemoryData is; StoreData is not (its buffer pool mutates on every
// load) — callers using a store must clone the data too.
func (e *Engine) Clone() *Engine {
	return NewEngine(e.idx, e.data)
}

// Count answers an area query without materializing the result set. It is
// equivalent to len(Query(m, area)) but avoids the result allocation; the
// returned Stats are identical to Query's.
func (e *Engine) Count(m Method, area geom.Polygon) (int, Stats, error) {
	ids, stats, err := e.Query(m, area)
	if err != nil {
		return 0, stats, err
	}
	// The engine's query paths already reuse scratch space; the result
	// slice is the only per-query allocation that scales with output. For
	// counting workloads this is acceptable: the slice is short-lived and
	// the stats bookkeeping dominates. Kept simple deliberately — a
	// dedicated no-materialization path measured within noise of this one.
	return len(ids), stats, nil
}

// QueryBatch answers a sequence of area queries with the same method,
// returning per-query results and aggregate statistics. The engine's
// scratch structures are reused across the batch.
func (e *Engine) QueryBatch(m Method, areas []geom.Polygon) ([][]int64, Stats, error) {
	out := make([][]int64, len(areas))
	var agg Stats
	agg.Method = m
	for i, area := range areas {
		ids, st, err := e.Query(m, area)
		if err != nil {
			return nil, agg, fmt.Errorf("core: batch query %d: %w", i, err)
		}
		out[i] = ids
		agg.ResultSize += st.ResultSize
		agg.Candidates += st.Candidates
		agg.RedundantValidations += st.RedundantValidations
		agg.SegmentTests += st.SegmentTests
		agg.CellTests += st.CellTests
		agg.IndexNodesVisited += st.IndexNodesVisited
		agg.RecordsLoaded += st.RecordsLoaded
		agg.Duration += st.Duration
	}
	return out, agg, nil
}
