package core

import (
	"context"
	"fmt"

	"repro/internal/geom"
)

// Count answers an area query without materializing the result set. It is
// equivalent to len(Query(m, area)) but skips the result allocation
// entirely (the CountOnly execution path); the returned Stats are identical
// to Query's.
func (e *Engine) Count(m Method, area geom.Polygon) (int, Stats, error) {
	_, stats, err := e.QueryRegionSpec(context.Background(), PolygonRegion(area),
		QuerySpec{Method: m, CountOnly: true})
	if err != nil {
		return 0, stats, err
	}
	return stats.ResultSize, stats, nil
}

// QueryBatch answers a sequence of area queries with the same method on
// the calling goroutine, returning per-query results and aggregate
// statistics. For parallel batch execution over the same engine see
// package exec.
func (e *Engine) QueryBatch(m Method, areas []geom.Polygon) ([][]int64, Stats, error) {
	return e.QueryBatchRegions(m, Polygons(areas))
}

// QueryBatchRegions is QueryBatch over arbitrary prepared Regions, allowing
// polygon and circle queries to share one batch.
func (e *Engine) QueryBatchRegions(m Method, regions []Region) ([][]int64, Stats, error) {
	out := make([][]int64, len(regions))
	agg := Stats{Method: m}
	for i, region := range regions {
		ids, st, err := e.QueryRegion(m, region)
		if err != nil {
			return nil, agg, fmt.Errorf("core: batch query %d: %w", i, err)
		}
		out[i] = ids
		agg.Add(st)
	}
	return out, agg, nil
}
