package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/workload"
)

// TestSharedEngineConcurrentQueries pins the tentpole contract directly at
// the core layer: two (and more) goroutines sharing ONE Engine — no clones
// — can Query simultaneously. Run with -race.
func TestSharedEngineConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	eng, _ := newUniformEngine(t, rng, 5000)
	areas := make([]geom.Polygon, 12)
	oracle := make([][]int64, len(areas))
	for i := range areas {
		areas[i] = workload.RandomPolygon(rng, workload.PolygonConfig{QuerySize: 0.02}, unitBounds())
		ids, _, err := eng.Query(BruteForce, areas[i])
		if err != nil {
			t.Fatal(err)
		}
		oracle[i] = sortedIDs(ids)
	}

	for _, workers := range []int{2, 8} {
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				for rep := 0; rep < 25; rep++ {
					i := (worker + rep) % len(areas)
					m := []Method{VoronoiBFS, VoronoiBFSStrict, Traditional}[rep%3]
					ids, _, err := eng.Query(m, areas[i])
					if err != nil {
						errs <- err
						return
					}
					if !equalIDs(sortedIDs(ids), oracle[i]) {
						errs <- errMismatch(worker, i)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

// TestSharedEngineConcurrentKNearest exercises the other scratch-using
// entry point under concurrency.
func TestSharedEngineConcurrentKNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	eng, _ := newUniformEngine(t, rng, 2000)
	queries := make([]geom.Point, 16)
	oracle := make([][]int64, len(queries))
	for i := range queries {
		queries[i] = geom.Pt(rng.Float64(), rng.Float64())
		ids, _, err := eng.KNearest(context.Background(), queries[i], 10)
		if err != nil {
			t.Fatal(err)
		}
		oracle[i] = append([]int64(nil), ids...)
	}

	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for rep := 0; rep < 30; rep++ {
				i := (worker + rep) % len(queries)
				ids, _, err := eng.KNearest(context.Background(), queries[i], 10)
				if err != nil {
					errs <- err
					return
				}
				if !equalIDs(ids, oracle[i]) {
					errs <- errMismatch(worker, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
