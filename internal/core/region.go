package core

import (
	"encoding/binary"
	"math"

	"repro/internal/geom"
)

// Region is the query-shape contract the area-query algorithms need: an
// MBR for the traditional filter, containment for refinement, segment
// intersection for the published expansion rule, and an interior anchor
// for the seed. Polygons (via PolygonRegion) and circles (via
// CircleRegion) implement it; custom shapes can too.
type Region interface {
	Bounds() geom.Rect
	ContainsPoint(geom.Point) bool
	IntersectsSegment(geom.Segment) bool
	InteriorPoint() geom.Point
}

// RingIntersecter is optionally implemented by Regions that can test
// intersection against a convex ring exactly; the strict expansion rule
// uses it when present and falls back to a generic vertex/edge/containment
// test otherwise.
type RingIntersecter interface {
	IntersectsRing(geom.Ring) bool
}

// RingViewIntersecter is optionally implemented by Regions that can test
// intersection against a structure-of-arrays ring view (a packed Voronoi
// cell) exactly; the strict expansion rule uses it when present — prepared
// polygons implement it — and falls back to a generic
// vertex/edge/containment sweep over the view otherwise. Results must
// match RingIntersecter over the materialized ring.
type RingViewIntersecter interface {
	IntersectsRingView(geom.RingView) bool
}

// RectIntersecter is optionally implemented by Regions that can test
// intersection against a rectangle exactly; the strict expansion rule uses
// it to reject whole Voronoi cells by their precomputed bounding boxes
// before building the exact cell ring. Prepared polygons and circles
// implement it.
type RectIntersecter interface {
	IntersectsRect(geom.Rect) bool
}

// CacheKeyer is optionally implemented by Regions whose exact geometry has
// a canonical byte encoding, making their query results memoizable by the
// result cache (vaq.WithResultCache). AppendCacheKey appends the encoding
// to dst and returns the extended slice, or returns nil to decline —
// regions that decline (or don't implement the interface) always execute.
// Two regions must encode equal only if every query over them returns
// identical results; prepared polygons and circles qualify.
type CacheKeyer interface {
	AppendCacheKey(dst []byte) []byte
}

// PolygonRegion wraps a polygon as a Region with prepared-predicate speed.
func PolygonRegion(pg geom.Polygon) Region { return geom.Prepare(pg) }

// Polygons prepares a polygon slice as a Region batch.
func Polygons(areas []geom.Polygon) []Region {
	regions := make([]Region, len(areas))
	for i, area := range areas {
		regions[i] = PolygonRegion(area)
	}
	return regions
}

// CircleRegion wraps a disk as a Region.
func CircleRegion(c geom.Circle) Region { return circleRegion{c} }

type circleRegion struct{ c geom.Circle }

// Circle returns the underlying disk, mirroring
// PreparedPolygon.Polygon: the accessor the wire codec recovers the exact
// geometry through.
func (r circleRegion) Circle() geom.Circle { return r.c }

func (r circleRegion) Bounds() geom.Rect                     { return r.c.Bounds() }
func (r circleRegion) ContainsPoint(p geom.Point) bool       { return r.c.ContainsPoint(p) }
func (r circleRegion) IntersectsSegment(s geom.Segment) bool { return r.c.IntersectsSegment(s) }
func (r circleRegion) IntersectsRect(rect geom.Rect) bool    { return r.c.IntersectsRect(rect) }
func (r circleRegion) InteriorPoint() geom.Point             { return r.c.InteriorPoint() }

// AppendCacheKey implements CacheKeyer: tag byte plus the exact center and
// radius bit patterns.
func (r circleRegion) AppendCacheKey(dst []byte) []byte {
	dst = append(dst, 'C')
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.c.Center.X))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.c.Center.Y))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.c.R))
}

// AnchoredRegion wraps a Region, overriding the seed anchor the Voronoi
// BFS starts from. It enables the seed-anchor ablation for Algorithm 1's
// "arbitrary position in A": pair it with a uniform interior sampler
// (package earcut) to draw a fresh random anchor per query instead of the
// default centroid-first anchor.
type AnchoredRegion struct {
	Region
	Anchor geom.Point
}

// InteriorPoint returns the override anchor.
func (a AnchoredRegion) InteriorPoint() geom.Point { return a.Anchor }

// AppendCacheKey implements CacheKeyer, shadowing any promoted encoding of
// the wrapped Region: the anchor changes the work a query performs (and
// thus its Stats), so an anchored region must not share a cache key with
// its un-anchored form. Declines unless the wrapped Region is keyable.
func (a AnchoredRegion) AppendCacheKey(dst []byte) []byte {
	ck, ok := a.Region.(CacheKeyer)
	if !ok {
		return nil
	}
	dst = append(dst, 'A')
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a.Anchor.X))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a.Anchor.Y))
	return ck.AppendCacheKey(dst)
}

// regionIntersectsRing reports whether region and the closed area bounded
// by ring share a point, using RingIntersecter when available and a
// generic vertex/edge/containment test otherwise (exact for convex rings,
// which Voronoi cells are).
func regionIntersectsRing(region Region, ring geom.Ring) bool {
	if len(ring) == 0 {
		return false
	}
	if ri, ok := region.(RingIntersecter); ok {
		return ri.IntersectsRing(ring)
	}
	for _, v := range ring {
		if region.ContainsPoint(v) {
			return true
		}
	}
	for i := range ring {
		if region.IntersectsSegment(geom.Seg(ring[i], ring[(i+1)%len(ring)])) {
			return true
		}
	}
	// Ring may contain the region entirely.
	return (geom.Polygon{Outer: ring}).ContainsPoint(region.InteriorPoint())
}

// regionIntersectsRingView is regionIntersectsRing over a packed ring
// view: the same tests in the same order, reading the arena slices
// directly, so results match the materialized form bit-for-bit while the
// common path (custom regions such as circles) allocates nothing.
func regionIntersectsRingView(region Region, v geom.RingView) bool {
	n := v.Len()
	if n == 0 {
		return false
	}
	if ri, ok := region.(RingViewIntersecter); ok {
		return ri.IntersectsRingView(v)
	}
	for i := 0; i < n; i++ {
		if region.ContainsPoint(v.At(i)) {
			return true
		}
	}
	for i := 0; i < n; i++ {
		j := i + 1
		if j == n {
			j = 0
		}
		if region.IntersectsSegment(geom.Seg(v.At(i), v.At(j))) {
			return true
		}
	}
	// Ring may contain the region entirely.
	return v.ContainsPoint(region.InteriorPoint())
}
