package core

import "repro/internal/geom"

// Region is the query-shape contract the area-query algorithms need: an
// MBR for the traditional filter, containment for refinement, segment
// intersection for the published expansion rule, and an interior anchor
// for the seed. Polygons (via PolygonRegion) and circles (via
// CircleRegion) implement it; custom shapes can too.
type Region interface {
	Bounds() geom.Rect
	ContainsPoint(geom.Point) bool
	IntersectsSegment(geom.Segment) bool
	InteriorPoint() geom.Point
}

// RingIntersecter is optionally implemented by Regions that can test
// intersection against a convex ring exactly; the strict expansion rule
// uses it when present and falls back to a generic vertex/edge/containment
// test otherwise.
type RingIntersecter interface {
	IntersectsRing(geom.Ring) bool
}

// RectIntersecter is optionally implemented by Regions that can test
// intersection against a rectangle exactly; the strict expansion rule uses
// it to reject whole Voronoi cells by their precomputed bounding boxes
// before building the exact cell ring. Prepared polygons and circles
// implement it.
type RectIntersecter interface {
	IntersectsRect(geom.Rect) bool
}

// PolygonRegion wraps a polygon as a Region with prepared-predicate speed.
func PolygonRegion(pg geom.Polygon) Region { return geom.Prepare(pg) }

// Polygons prepares a polygon slice as a Region batch.
func Polygons(areas []geom.Polygon) []Region {
	regions := make([]Region, len(areas))
	for i, area := range areas {
		regions[i] = PolygonRegion(area)
	}
	return regions
}

// CircleRegion wraps a disk as a Region.
func CircleRegion(c geom.Circle) Region { return circleRegion{c} }

type circleRegion struct{ c geom.Circle }

func (r circleRegion) Bounds() geom.Rect                     { return r.c.Bounds() }
func (r circleRegion) ContainsPoint(p geom.Point) bool       { return r.c.ContainsPoint(p) }
func (r circleRegion) IntersectsSegment(s geom.Segment) bool { return r.c.IntersectsSegment(s) }
func (r circleRegion) IntersectsRect(rect geom.Rect) bool    { return r.c.IntersectsRect(rect) }
func (r circleRegion) InteriorPoint() geom.Point             { return r.c.InteriorPoint() }

// AnchoredRegion wraps a Region, overriding the seed anchor the Voronoi
// BFS starts from. It enables the seed-anchor ablation for Algorithm 1's
// "arbitrary position in A": pair it with a uniform interior sampler
// (package earcut) to draw a fresh random anchor per query instead of the
// default centroid-first anchor.
type AnchoredRegion struct {
	Region
	Anchor geom.Point
}

// InteriorPoint returns the override anchor.
func (a AnchoredRegion) InteriorPoint() geom.Point { return a.Anchor }

// regionIntersectsRing reports whether region and the closed area bounded
// by ring share a point, using RingIntersecter when available and a
// generic vertex/edge/containment test otherwise (exact for convex rings,
// which Voronoi cells are).
func regionIntersectsRing(region Region, ring geom.Ring) bool {
	if len(ring) == 0 {
		return false
	}
	if ri, ok := region.(RingIntersecter); ok {
		return ri.IntersectsRing(ring)
	}
	for _, v := range ring {
		if region.ContainsPoint(v) {
			return true
		}
	}
	for i := range ring {
		if region.IntersectsSegment(geom.Seg(ring[i], ring[(i+1)%len(ring)])) {
			return true
		}
	}
	// Ring may contain the region entirely.
	return (geom.Polygon{Outer: ring}).ContainsPoint(region.InteriorPoint())
}
