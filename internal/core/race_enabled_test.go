//go:build race

package core

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates inside sync.Pool, so allocation pins skip
// under -race.
const raceEnabled = true
