package core

import (
	"fmt"

	"repro/internal/geom"
)

// queryTraditional implements the classic filter-and-refine area query:
// the index filters with the region's MBR; every candidate's record is
// loaded and validated with a containment test.
func (e *Engine) queryTraditional(region Region) ([]int64, Stats, error) {
	var stats Stats
	var result []int64
	var loadErr error
	stats.IndexNodesVisited = e.idx.Window(region.Bounds(), func(id int64) bool {
		pos, err := e.data.Load(id)
		if err != nil {
			loadErr = fmt.Errorf("core: loading candidate %d: %w", id, err)
			return false
		}
		stats.RecordsLoaded++
		stats.Candidates++
		if region.ContainsPoint(pos) {
			result = append(result, id)
		}
		return true
	})
	if loadErr != nil {
		// Same error contract as the Voronoi paths: no partial result slice
		// alongside a non-nil error.
		return nil, stats, loadErr
	}
	return result, stats, nil
}

// queryVoronoi implements Algorithm 1 of the paper.
//
// A seed — the nearest stored point to an interior position of the query
// region — is found through the spatial index (the paper uses the same
// R-tree both methods share). By Voronoi Property 3 the seed is an internal
// or boundary point of the region. BFS then expands over the Voronoi
// adjacency: internal points contribute all unvisited neighbors;
// non-internal points contribute only neighbors reached by an expansion
// test — the published rule tests the connecting segment against the
// region, the strict rule tests the neighbor's Voronoi cell against it.
func (e *Engine) queryVoronoi(region Region, strict bool) ([]int64, Stats, error) {
	var stats Stats

	var cells CellSource
	var cellBoxes CellBoxSource // optional fast reject for the strict rule
	var rectRegion RectIntersecter
	if strict {
		var ok bool
		cells, ok = e.data.(CellSource)
		if !ok {
			return nil, stats, ErrStrictNotSupported
		}
		cellBoxes, _ = e.data.(CellBoxSource)
		rectRegion, _ = region.(RectIntersecter)
	}

	// Line 3-4: p_seed := NN(P, arbitrary position in A).
	seedPos := region.InteriorPoint()
	seed, nnNodes, ok := e.idx.Nearest(seedPos)
	stats.IndexNodesVisited += nnNodes
	if !ok {
		return nil, stats, ErrNoData
	}

	s := e.acquireScratch()
	defer e.releaseScratch(s)
	s.mark(seed)
	s.queue = append(s.queue, seed)

	// Fast path: data sources exposing raw neighbor slices avoid one
	// closure-based callback per neighbor on the hottest loop.
	slicer, hasSlices := e.data.(NeighborSlicer)

	// The expansion closures are hoisted out of the loop; curPos carries
	// the popped candidate's position into them.
	var curPos geom.Point
	expandAll := func(nb int64) bool {
		if s.mark(nb) {
			s.queue = append(s.queue, nb)
		}
		return true
	}
	expandBoundary := func(nb int64) bool {
		if s.seen(nb) {
			return true
		}
		enqueue := false
		if strict {
			// One cell-vs-area decision, resolved by the cheapest exact
			// path available: reject when the cell's precomputed bounding
			// box misses the region (the common case along the shell),
			// accept when the site itself is in the region (the site lies
			// in its own cell), and only otherwise test the exact cell
			// ring. All three agree with the full test, so results and
			// counters are path-independent.
			stats.CellTests++
			switch {
			case cellBoxes != nil && rectRegion != nil &&
				!rectRegion.IntersectsRect(cellBoxes.CellBox(nb)):
				enqueue = false
			case region.ContainsPoint(e.data.Position(nb)):
				enqueue = true
			default:
				enqueue = regionIntersectsRing(region, cells.Cell(nb))
			}
		} else {
			stats.SegmentTests++
			enqueue = region.IntersectsSegment(geom.Seg(curPos, e.data.Position(nb)))
		}
		if enqueue {
			s.mark(nb)
			s.queue = append(s.queue, nb)
		}
		return true
	}

	var result []int64
	for head := 0; head < len(s.queue); head++ {
		p := s.queue[head]
		pos, err := e.data.Load(p)
		if err != nil {
			return nil, stats, fmt.Errorf("core: loading candidate %d: %w", p, err)
		}
		stats.RecordsLoaded++
		stats.Candidates++
		curPos = pos

		if region.ContainsPoint(pos) {
			// Internal point: all unvisited Voronoi neighbors become
			// candidates (Property 7 bounds them to internal/boundary).
			result = append(result, p)
			if hasSlices {
				for _, nb := range slicer.NeighborSlice(p) {
					expandAll(int64(nb))
				}
			} else {
				e.data.NeighborsFunc(p, expandAll)
			}
			continue
		}
		// Boundary/external point: expand only toward neighbors that pass
		// the expansion test.
		if hasSlices {
			for _, nb := range slicer.NeighborSlice(p) {
				expandBoundary(int64(nb))
			}
		} else {
			e.data.NeighborsFunc(p, expandBoundary)
		}
	}
	return result, stats, nil
}

// queryBruteForce scans every record; it is the correctness oracle.
func (e *Engine) queryBruteForce(region Region) ([]int64, Stats, error) {
	var stats Stats
	var result []int64
	bounds := region.Bounds()
	e.data.Each(func(id int64, pos geom.Point) bool {
		stats.Candidates++
		if bounds.ContainsPoint(pos) && region.ContainsPoint(pos) {
			result = append(result, id)
		}
		return true
	})
	return result, stats, nil
}
