package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/voronoi"
)

// cancelStride is the number of candidates a query processes between
// context-cancellation checks. Candidate processing is the unit of work
// every method shares (a record load plus a containment test, microseconds
// each), so checking once per stride bounds cancellation latency to tens of
// microseconds while keeping the check off the per-candidate hot path.
const cancelStride = 64

// QuerySpec is the per-query request shape shared by every engine flavor:
// the algorithm plus the execution options the public API exposes as
// functional options.
type QuerySpec struct {
	// Method selects the area-query algorithm.
	Method Method
	// CountOnly skips materializing the result slice; the match count is
	// reported in Stats.ResultSize.
	CountOnly bool
	// Limit stops the query after this many results when > 0. Which points
	// are found first is method- and backend-dependent.
	Limit int
	// Dest, when non-nil, is the buffer results are appended into
	// (overwriting from Dest[:0]), letting repeated queries reuse one
	// allocation. Ignored with CountOnly.
	Dest []int64
	// Trace, when non-nil, receives per-phase timings (seed lookup, BFS
	// expansion, page fetches) as the query runs. The nil path costs one
	// pointer comparison.
	Trace *obs.QueryTrace
}

// emitFunc receives each result (id plus its authoritative loaded
// position) as the algorithm discovers it; returning false stops the query
// early with no error.
type emitFunc func(id int64, pos geom.Point) bool

// QueryRegionSpec runs an area query described by spec against region. It
// is the context-aware entry point beneath the public Querier API: ctx
// cancellation is checked on candidate-generation boundaries and surfaces
// as ctx.Err() with the statistics of the work already performed. The
// returned ids are nil when spec.CountOnly is set (the count is
// Stats.ResultSize) and in method-dependent discovery order otherwise.
func (e *Engine) QueryRegionSpec(ctx context.Context, region Region, spec QuerySpec) ([]int64, Stats, error) {
	var result []int64
	if !spec.CountOnly && spec.Dest != nil {
		result = spec.Dest[:0]
	}
	count := 0
	stats, err := e.eachRegion(ctx, region, spec.Method, spec.Trace, func(id int64, _ geom.Point) bool {
		if !spec.CountOnly {
			result = append(result, id)
		}
		count++
		return spec.Limit <= 0 || count < spec.Limit
	})
	stats.ResultSize = count
	stats.RedundantValidations = stats.Candidates - count
	if err != nil {
		// No partial result slice alongside a non-nil error; stats still
		// report the partial work.
		return nil, stats, err
	}
	if spec.CountOnly {
		return nil, stats, nil
	}
	return result, stats, nil
}

// EachRegion streams an area query: yield is called with each result (id
// and position) as the algorithm discovers it — the Voronoi methods yield
// during the BFS itself, so consumers see results before the query
// completes. yield returning false stops the query cleanly; spec.Limit
// bounds the number of yields; spec.CountOnly and spec.Dest are ignored
// (nothing is materialized). The returned Stats count the yields in
// ResultSize.
func (e *Engine) EachRegion(ctx context.Context, region Region, spec QuerySpec, yield func(id int64, pos geom.Point) bool) (Stats, error) {
	count := 0
	stats, err := e.eachRegion(ctx, region, spec.Method, spec.Trace, func(id int64, pos geom.Point) bool {
		count++
		if !yield(id, pos) {
			return false
		}
		return spec.Limit <= 0 || count < spec.Limit
	})
	stats.ResultSize = count
	stats.RedundantValidations = stats.Candidates - count
	return stats, err
}

// eachRegion dispatches to the method implementations, wrapping them with
// the shared bookkeeping (empty-data check, Method stamp, Duration).
func (e *Engine) eachRegion(ctx context.Context, region Region, m Method, tr *obs.QueryTrace, emit emitFunc) (Stats, error) {
	if e.data.NumIDs() == 0 {
		return Stats{Method: m}, ErrNoData
	}
	start := time.Now()
	var (
		stats Stats
		err   error
	)
	if err = ctx.Err(); err != nil {
		// An already-cancelled context returns promptly on every method,
		// before any index or record work.
		stats.Method = m
		return stats, err
	}
	switch m {
	case Traditional:
		stats, err = e.eachTraditional(ctx, region, tr, emit)
	case VoronoiBFS:
		stats, err = e.eachVoronoi(ctx, region, false, tr, emit)
	case VoronoiBFSStrict:
		stats, err = e.eachVoronoi(ctx, region, true, tr, emit)
	case BruteForce:
		stats, err = e.eachBruteForce(ctx, region, tr, emit)
	default:
		return Stats{Method: m}, fmt.Errorf("core: unknown method %d", int(m))
	}
	stats.Method = m
	stats.Duration = time.Since(start)
	return stats, err
}

// eachTraditional implements the classic filter-and-refine area query: the
// index filters with the region's MBR; every candidate's record is loaded
// and validated with a containment test.
func (e *Engine) eachTraditional(ctx context.Context, region Region, tr *obs.QueryTrace, emit emitFunc) (Stats, error) {
	var stats Stats
	var stopErr error
	// Tracing splits the scan into record loads (PhasePageFetch) and
	// everything else (PhaseExpand: the index window walk plus the
	// containment refinement). The traced path pays two clock reads per
	// candidate; the untraced path pays one branch.
	traced := tr != nil
	var fetch time.Duration
	if traced {
		scanStart := time.Now()
		defer func() {
			tr.Add(obs.PhasePageFetch, fetch)
			tr.Add(obs.PhaseExpand, time.Since(scanStart)-fetch)
		}()
	}
	stats.IndexNodesVisited = e.idx.Window(region.Bounds(), func(id int64) bool {
		if stats.Candidates%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				stopErr = err
				return false
			}
		}
		var pos geom.Point
		var err error
		if traced {
			t0 := time.Now()
			pos, err = e.data.Load(id)
			fetch += time.Since(t0)
		} else {
			pos, err = e.data.Load(id)
		}
		if err != nil {
			stopErr = fmt.Errorf("core: loading candidate %d: %w", id, err)
			return false
		}
		stats.RecordsLoaded++
		stats.Candidates++
		if region.ContainsPoint(pos) {
			return emit(id, pos)
		}
		return true
	})
	return stats, stopErr
}

// eachVoronoi implements Algorithm 1 of the paper.
//
// A seed — the nearest stored point to an interior position of the query
// region — is found through the spatial index (the paper uses the same
// R-tree both methods share). By Voronoi Property 3 the seed is an internal
// or boundary point of the region. BFS then expands over the Voronoi
// adjacency: internal points contribute all unvisited neighbors;
// non-internal points contribute only neighbors reached by an expansion
// test — the published rule tests the connecting segment against the
// region, the strict rule tests the neighbor's Voronoi cell against it.
//
// Results are emitted the moment the BFS validates them, so a streaming
// consumer observes them while the expansion is still running.
func (e *Engine) eachVoronoi(ctx context.Context, region Region, strict bool, tr *obs.QueryTrace, emit emitFunc) (Stats, error) {
	var stats Stats
	traced := tr != nil

	// Resolve the query-constant expansion state once. The strict rule
	// prefers the packed cell arena (CellArenaSource) and falls back to the
	// per-call CellSource/CellBoxSource pair for custom data layers.
	q := voronoiQuery{region: region, strict: strict, traced: traced, emit: emit}
	if strict {
		if as, ok := e.data.(CellArenaSource); ok {
			q.arena = as.CellArena()
		}
		if q.arena == nil {
			var ok bool
			q.cells, ok = e.data.(CellSource)
			if !ok {
				return stats, ErrStrictNotSupported
			}
			q.cellBoxes, _ = e.data.(CellBoxSource)
		}
		q.regionMBR = region.Bounds()
		q.rectRegion, _ = region.(RectIntersecter)
		q.ringRegion, _ = region.(RingViewIntersecter)
	}
	// Structure-of-arrays coordinates, when the data layer packs them: the
	// expansion tests read neighbor positions straight from the slices.
	if cs, ok := e.data.(CoordSource); ok {
		q.xs, q.ys = cs.Coords()
	}

	// Line 3-4: p_seed := NN(P, arbitrary position in A).
	var seedStart time.Time
	if traced {
		seedStart = time.Now()
	}
	seedPos := region.InteriorPoint()
	seed, nnNodes, ok := e.idx.Nearest(seedPos)
	var bfsStart time.Time
	if traced {
		tr.Add(obs.PhaseSeed, time.Since(seedStart))
		bfsStart = time.Now()
	}
	stats.IndexNodesVisited += nnNodes
	if !ok {
		return stats, ErrNoData
	}

	s := e.acquireScratch()
	defer e.releaseScratch(s)
	s.mark(seed)
	s.queue = append(s.queue, seed)

	// The BFS proper runs in one of two loops. Data sources exposing raw
	// neighbor slices and packed coordinates (MemoryData, StoreData) take
	// the fully inlined loop, which creates no per-query closures — the
	// whole expansion is allocation-free. Everything else (the dynamic
	// triangulation's quad-edge ring walk) takes the callback loop.
	var fetch time.Duration
	var err error
	if slicer, ok := e.data.(NeighborSlicer); ok && q.xs != nil {
		stats, fetch, err = e.voronoiBFSSliced(ctx, q, slicer, s, stats)
	} else {
		stats, fetch, err = e.voronoiBFSFunc(ctx, q, s, stats)
	}
	if traced {
		// The BFS splits into record loads (PhasePageFetch) and the
		// expansion proper (PhaseExpand); both loops accrue fetch time and
		// funnel every exit path through here.
		tr.Add(obs.PhasePageFetch, fetch)
		tr.Add(obs.PhaseExpand, time.Since(bfsStart)-fetch)
	}
	return stats, err
}

// voronoiQuery is the query-constant state of one Voronoi BFS, resolved
// once per query and shared by the sliced and callback expansion loops.
type voronoiQuery struct {
	region Region
	strict bool
	traced bool
	emit   emitFunc

	// Strict-rule state. Either arena or cells is set (arena preferred);
	// the rest are optional accelerators.
	arena      *voronoi.CellArena
	cells      CellSource
	cellBoxes  CellBoxSource
	rectRegion RectIntersecter
	ringRegion RingViewIntersecter
	regionMBR  geom.Rect

	// Structure-of-arrays coordinates (nil when the data layer has none).
	xs, ys []float64
}

// testCell is the strict rule's one cell-vs-area decision, resolved by the
// cheapest exact path available: reject when the cell's packed bounding box
// misses the region (the common case along the shell), accept when the site
// itself is in the region (the site lies in its own cell), and only
// otherwise test the exact cell ring — on the arena path a zero-allocation
// view over the packed vertices. Every gate agrees with the full test, so
// results and counters are path-independent.
//
//vaq:noalloc
func (q *voronoiQuery) testCell(nb int64, nbPos geom.Point, stats *Stats) bool {
	stats.CellTests++
	if q.arena != nil {
		i := int(nb)
		switch {
		case !q.arena.InBox(i, q.regionMBR):
			return false
		case q.rectRegion != nil && !q.rectRegion.IntersectsRect(q.arena.CellBox(i)):
			return false
		case q.region.ContainsPoint(nbPos):
			return true
		}
		if q.ringRegion != nil {
			return q.ringRegion.IntersectsRingView(q.arena.Ring(i))
		}
		return regionIntersectsRingView(q.region, q.arena.Ring(i))
	}
	switch {
	case q.cellBoxes != nil && q.rectRegion != nil &&
		!q.rectRegion.IntersectsRect(q.cellBoxes.CellBox(nb)):
		return false
	case q.region.ContainsPoint(nbPos):
		return true
	default:
		return regionIntersectsRing(q.region, q.cells.Cell(nb))
	}
}

// voronoiBFSSliced is the closure-free BFS over a NeighborSlicer with
// packed coordinates. stats travels by value so the caller's copy never
// escapes; fetch is the accrued record-load time (for tracing).
//
//vaq:noalloc
func (e *Engine) voronoiBFSSliced(ctx context.Context, q voronoiQuery, slicer NeighborSlicer, s *queryScratch, stats Stats) (Stats, time.Duration, error) {
	var fetch time.Duration
	for head := 0; head < len(s.queue); head++ {
		if head%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return stats, fetch, err
			}
		}
		p := s.queue[head]
		var pos geom.Point
		var err error
		if q.traced {
			t0 := time.Now()
			pos, err = e.data.Load(p)
			fetch += time.Since(t0)
		} else {
			pos, err = e.data.Load(p)
		}
		if err != nil {
			//vaqvet:ignore noalloc cold failure path; the wrap allocates only when a record load already failed
			return stats, fetch, fmt.Errorf("core: loading candidate %d: %w", p, err)
		}
		stats.RecordsLoaded++
		stats.Candidates++

		if q.region.ContainsPoint(pos) {
			// Internal point: emit, then all unvisited Voronoi neighbors
			// become candidates (Property 7 bounds them to
			// internal/boundary).
			if !q.emit(p, pos) {
				return stats, fetch, nil
			}
			for _, nb := range slicer.NeighborSlice(p) {
				if s.mark(int64(nb)) {
					s.queue = append(s.queue, int64(nb))
				}
			}
			continue
		}
		// Boundary/external point: expand only toward neighbors that pass
		// the expansion test.
		for _, nb := range slicer.NeighborSlice(p) {
			nb64 := int64(nb)
			if s.seen(nb64) {
				continue
			}
			nbPos := geom.Point{X: q.xs[nb], Y: q.ys[nb]}
			var enqueue bool
			if q.strict {
				enqueue = q.testCell(nb64, nbPos, &stats)
			} else {
				stats.SegmentTests++
				enqueue = q.region.IntersectsSegment(geom.Seg(pos, nbPos))
			}
			if enqueue {
				s.mark(nb64)
				s.queue = append(s.queue, nb64)
			}
		}
	}
	return stats, fetch, nil
}

// voronoiBFSFunc is the callback-based BFS for data layers without
// neighbor slices or packed coordinates (the dynamic triangulation walks
// its quad-edge ring per neighbor). The expansion closures are hoisted out
// of the loop; curPos carries the popped candidate's position into them.
func (e *Engine) voronoiBFSFunc(ctx context.Context, q voronoiQuery, s *queryScratch, stats Stats) (Stats, time.Duration, error) {
	var fetch time.Duration
	var curPos geom.Point
	expandAll := func(nb int64) bool {
		if s.mark(nb) {
			s.queue = append(s.queue, nb)
		}
		return true
	}
	expandBoundary := func(nb int64) bool {
		if s.seen(nb) {
			return true
		}
		enqueue := false
		if q.strict {
			enqueue = q.testCell(nb, e.data.Position(nb), &stats)
		} else {
			stats.SegmentTests++
			enqueue = q.region.IntersectsSegment(geom.Seg(curPos, e.data.Position(nb)))
		}
		if enqueue {
			s.mark(nb)
			s.queue = append(s.queue, nb)
		}
		return true
	}

	for head := 0; head < len(s.queue); head++ {
		if head%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return stats, fetch, err
			}
		}
		p := s.queue[head]
		var pos geom.Point
		var err error
		if q.traced {
			t0 := time.Now()
			pos, err = e.data.Load(p)
			fetch += time.Since(t0)
		} else {
			pos, err = e.data.Load(p)
		}
		if err != nil {
			return stats, fetch, fmt.Errorf("core: loading candidate %d: %w", p, err)
		}
		stats.RecordsLoaded++
		stats.Candidates++
		curPos = pos

		if q.region.ContainsPoint(pos) {
			if !q.emit(p, pos) {
				return stats, fetch, nil
			}
			e.data.NeighborsFunc(p, expandAll)
			continue
		}
		e.data.NeighborsFunc(p, expandBoundary)
	}
	return stats, fetch, nil
}

// eachBruteForce scans every record; it is the correctness oracle.
func (e *Engine) eachBruteForce(ctx context.Context, region Region, tr *obs.QueryTrace, emit emitFunc) (Stats, error) {
	var stats Stats
	var stopErr error
	// The whole scan is one expansion phase: brute force touches no index
	// and loads no records through the store.
	if tr != nil {
		scanStart := time.Now()
		defer func() { tr.Add(obs.PhaseExpand, time.Since(scanStart)) }()
	}
	bounds := region.Bounds()
	e.data.Each(func(id int64, pos geom.Point) bool {
		if stats.Candidates%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				stopErr = err
				return false
			}
		}
		stats.Candidates++
		if bounds.ContainsPoint(pos) && region.ContainsPoint(pos) {
			return emit(id, pos)
		}
		return true
	})
	return stats, stopErr
}
