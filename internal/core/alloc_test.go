package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/workload"
)

// TestStrictIntersectionStepAllocsZero pins the BFS cell-intersection step
// — bounding-box reject, packed ring view, exact region-vs-ring test — at
// zero allocations per visited cell. This is the tentpole guarantee of the
// flat arena layout: the strict expansion never materializes a cell.
func TestStrictIntersectionStepAllocsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := workload.UniformPoints(rng, 5000, unitBounds())
	data, err := NewMemoryData(pts, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	area := workload.RandomPolygon(rng, workload.PolygonConfig{Vertices: 10, QuerySize: 0.05}, unitBounds())
	region := PolygonRegion(area)
	q := voronoiQuery{region: region, strict: true, regionMBR: region.Bounds()}
	q.arena = data.CellArena()
	q.rectRegion, _ = region.(RectIntersecter)
	q.ringRegion, _ = region.(RingViewIntersecter)
	xs, ys := data.Coords()

	var stats Stats
	hits := 0
	allocs := testing.AllocsPerRun(20, func() {
		for i := range pts {
			if q.testCell(int64(i), geom.Point{X: xs[i], Y: ys[i]}, &stats) {
				hits++
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("strict intersection step allocates %.1f times per sweep, want 0", allocs)
	}
	if hits == 0 {
		t.Fatal("intersection step never fired; test exercises nothing")
	}
}

// TestCircleIntersectionStepAllocsZero pins the generic (non-prepared)
// region fallback: circles take regionIntersectsRingView over the packed
// coordinates and must not allocate either.
func TestCircleIntersectionStepAllocsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	pts := workload.UniformPoints(rng, 3000, unitBounds())
	data, err := NewMemoryData(pts, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	region := CircleRegion(geom.Circle{Center: geom.Pt(0.5, 0.5), R: 0.1})
	q := voronoiQuery{region: region, strict: true, regionMBR: region.Bounds()}
	q.arena = data.CellArena()
	q.rectRegion, _ = region.(RectIntersecter)
	q.ringRegion, _ = region.(RingViewIntersecter)
	xs, ys := data.Coords()

	var stats Stats
	allocs := testing.AllocsPerRun(20, func() {
		for i := range pts {
			q.testCell(int64(i), geom.Point{X: xs[i], Y: ys[i]}, &stats)
		}
	})
	if allocs != 0 {
		t.Fatalf("circle intersection step allocates %.1f times per sweep, want 0", allocs)
	}
}

// fixedSeedIndex pins the KNearest seed without touching a real index, so
// the allocation test below isolates the Voronoi expansion (frontier heap +
// distance loop) from index internals.
type fixedSeedIndex struct{ seed int64 }

func (x fixedSeedIndex) Window(geom.Rect, func(int64) bool) int { return 0 }
func (x fixedSeedIndex) Nearest(geom.Point) (int64, int, bool)  { return x.seed, 0, true }

// TestKNearestExpansionAllocsZero pins KNearest's expansion — the pooled
// frontier heap and the structure-of-arrays distance loop — at zero
// allocations per query once the destination buffer is supplied and the
// scratch pool is warm.
func TestKNearestExpansionAllocsZero(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates inside sync.Pool")
	}
	rng := rand.New(rand.NewSource(41))
	pts := workload.UniformPoints(rng, 5000, unitBounds())
	data, err := NewMemoryData(pts, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(fixedSeedIndex{seed: 123}, data)
	ctx := context.Background()
	q := geom.Pt(0.4, 0.6)
	dest := make([]int64, 0, 64)
	// Warm the scratch pool (visited table, queue, heap capacity).
	if _, _, err := eng.kNearestInto(ctx, q, 64, dest); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		out, _, err := eng.kNearestInto(ctx, q, 64, dest)
		if err != nil || len(out) != 64 {
			t.Fatalf("kNearestInto: %d results, err %v", len(out), err)
		}
	})
	if allocs != 0 {
		t.Fatalf("KNearest expansion allocates %.1f times per query, want 0", allocs)
	}
}

// TestKNearestIntoMatchesKNearest checks the buffer-reusing variant returns
// exactly what the allocating entry point returns.
func TestKNearestIntoMatchesKNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pts := workload.UniformPoints(rng, 2000, unitBounds())
	data, err := NewMemoryData(pts, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(NewRTreeIndex(pts, 16), data)
	ctx := context.Background()
	dest := make([]int64, 0, 32)
	for trial := 0; trial < 25; trial++ {
		q := geom.Pt(rng.Float64(), rng.Float64())
		want, _, err := eng.KNearest(ctx, q, 32)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := eng.kNearestInto(ctx, q, 32, dest)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(got, want) {
			t.Fatalf("trial %d: kNearestInto disagrees with KNearest", trial)
		}
	}
}

// TestDynamicArenaMatchesCell verifies the dynamic engine's lazily built
// snapshot arena packs exactly the rings DynamicData.Cell constructs — the
// parity the strict rule relies on when running against a snapshot.
func TestDynamicArenaMatchesCell(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	d := NewDynamicEngine(unitBounds())
	for i := 0; i < 500; i++ {
		if _, _, err := d.Insert(geom.Pt(rng.Float64(), rng.Float64())); err != nil {
			t.Fatal(err)
		}
	}
	snap := d.Snapshot()
	data := snap.data
	arena := data.CellArena()
	if arena.NumCells() != data.NumIDs() {
		t.Fatalf("arena covers %d cells, snapshot has %d ids", arena.NumCells(), data.NumIDs())
	}
	if again := data.CellArena(); again != arena {
		t.Fatal("CellArena rebuilt on second call; want cached per snapshot")
	}
	for id := int64(0); id < int64(data.NumIDs()); id++ {
		cell := data.Cell(id)
		view := arena.Ring(int(id))
		if view.Len() != len(cell) {
			t.Fatalf("id %d: arena ring has %d vertices, Cell has %d", id, view.Len(), len(cell))
		}
		for j := range cell {
			if view.At(j) != cell[j] {
				t.Fatalf("id %d vertex %d: arena %v != Cell %v", id, j, view.At(j), cell[j])
			}
		}
	}
}
