// Package core implements the paper's contribution: the Voronoi-diagram
// based area query (Algorithm 1) and the traditional filter-and-refine
// baseline it is evaluated against, over pluggable spatial indexes and data
// accessors.
//
// An area query returns every stored point inside a query polygon. The
// traditional method window-queries the index with the polygon's MBR and
// refines each candidate with a point-in-polygon test. The Voronoi method
// seeds from the nearest neighbor of a point inside the polygon and expands
// across the Delaunay/Voronoi adjacency, so its candidate set is the result
// set plus a thin shell along the polygon boundary.
//
// Both methods run against the same index and the same record store, and
// produce identical result sets; Stats captures the work each performed so
// the paper's comparisons (candidates, redundant validations, time, IO) can
// be reproduced.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/voronoi"
)

// Errors returned by the engine.
var (
	ErrNoData             = errors.New("core: dataset is empty")
	ErrStrictNotSupported = errors.New("core: data source does not provide Voronoi cells (strict expansion unavailable)")
	// ErrOutsideUniverse is returned by the dynamic engine when an inserted
	// point or a query area falls outside the declared universe rectangle —
	// a caller error, distinguishable from engine failure with errors.Is.
	ErrOutsideUniverse = errors.New("core: outside the declared universe")
)

// SpatialIndex is the filtering index contract shared by both query
// methods: a window (range) query for the traditional filter and a
// nearest-neighbor query for the Voronoi seed. Implementations are provided
// for the R-tree (the paper's choice), kd-tree, PR quadtree and uniform
// grid.
type SpatialIndex interface {
	// Window calls fn for every stored point whose coordinates lie inside
	// the closed rectangle q; fn returning false stops the scan. It returns
	// the number of index nodes visited.
	Window(q geom.Rect, fn func(id int64) bool) int
	// Nearest returns the stored point id closest to q; ok is false when
	// the index is empty. The second return is the number of index nodes
	// visited.
	Nearest(q geom.Point) (id int64, nodes int, ok bool)
}

// DataAccess is the record layer. Ids must be dense in [0, NumIDs()).
//
// Position and NeighborsFunc are index-resident information (the R-tree
// leaf carries coordinates; the Voronoi topology is precomputed alongside
// the index, as in the VoR-tree): reading them costs no simulated IO.
// Load is the refinement fetch of the full record — the IO-accounted
// operation both methods pay once per candidate.
type DataAccess interface {
	// NumIDs returns the id space size.
	NumIDs() int
	// Position returns the coordinates of id without performing record IO.
	Position(id int64) geom.Point
	// NeighborsFunc calls fn with each Voronoi neighbor of id; fn returning
	// false stops the iteration.
	NeighborsFunc(id int64, fn func(nb int64) bool)
	// Load fetches the full record of id for refinement and returns its
	// authoritative coordinates.
	Load(id int64) (geom.Point, error)
	// Each iterates all records (sequential scan), for oracles and tools.
	Each(fn func(id int64, pos geom.Point) bool)
}

// CellSource is optionally implemented by DataAccess implementations that
// can produce Voronoi cell polygons; it enables the strict expansion rule.
type CellSource interface {
	Cell(id int64) geom.Ring
}

// CellBoxSource is optionally implemented by DataAccess implementations
// that can produce Voronoi cell bounding rectangles cheaply. The strict
// expansion uses it as a fast reject before building the exact cell: a
// cell whose box misses the region cannot intersect it.
type CellBoxSource interface {
	CellBox(id int64) geom.Rect
}

// CellArenaSource is optionally implemented by DataAccess implementations
// whose clipped Voronoi cells live in a packed cell arena (one contiguous
// vertex store with offsets and per-cell boxes, built once at
// construction). The strict expansion rule runs entirely on it — bounding
// box rejects and exact ring tests read dense memory with zero per-visit
// allocation — and falls back to CellSource/CellBoxSource only when it is
// absent. The returned arena must be immutable.
type CellArenaSource interface {
	CellArena() *voronoi.CellArena
}

// CoordSource is optionally implemented by DataAccess implementations
// whose point coordinates live in parallel x/y float64 slices
// (structure-of-arrays storage). Distance and containment loops scan the
// slices contiguously instead of calling Position through the interface
// per id. The slices alias internal storage and must not be modified.
type CoordSource interface {
	Coords() (xs, ys []float64)
}

// ResultFilter is optionally implemented by DataAccess implementations
// whose id space contains auxiliary sites that algorithms may traverse but
// must never return — the dynamic triangulation's fence sites are the one
// current example. KNearest consults it before emitting an id; the area
// queries need no filter because auxiliary sites lie outside every legal
// query region.
type ResultFilter interface {
	// Returnable reports whether id may appear in query results.
	Returnable(id int64) bool
}

// NeighborSlicer is optionally implemented by DataAccess implementations
// whose neighbor lists live in memory as int32 slices; the engine uses it
// to skip the per-neighbor callback on its hottest loop. The returned
// slice must not be modified.
type NeighborSlicer interface {
	NeighborSlice(id int64) []int32
}

// Method selects an area-query algorithm.
type Method int

// The available area-query algorithms.
const (
	// Traditional is the classic filter-and-refine method: MBR window query
	// on the index, then point-in-polygon refinement of every candidate.
	Traditional Method = iota
	// VoronoiBFS is the paper's Algorithm 1 with the published expansion
	// rule (segment p–pn intersects the area).
	VoronoiBFS
	// VoronoiBFSStrict is Algorithm 1 with the conservative expansion rule
	// (Voronoi cell of pn intersects the area); complete even on
	// adversarial geometry, at higher expansion cost.
	VoronoiBFSStrict
	// BruteForce scans every record; the oracle baseline.
	BruteForce
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Traditional:
		return "traditional"
	case VoronoiBFS:
		return "voronoi"
	case VoronoiBFSStrict:
		return "voronoi-strict"
	case BruteForce:
		return "brute-force"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Stats reports the work a single area query performed. Field semantics
// follow the paper's evaluation: a "candidate" is a point whose containment
// in the query area was validated against its loaded record, and a
// validation is redundant when the point turns out to lie outside.
type Stats struct {
	Method     Method
	ResultSize int
	// Candidates is the number of containment validations performed.
	Candidates int
	// RedundantValidations = Candidates - ResultSize.
	RedundantValidations int
	// SegmentTests counts segment-vs-area tests (Voronoi method only).
	SegmentTests int
	// CellTests counts cell-vs-area tests (strict variant only).
	CellTests int
	// IndexNodesVisited counts index nodes touched (window or NN query).
	IndexNodesVisited int
	// RecordsLoaded counts refinement fetches through DataAccess.Load.
	RecordsLoaded int
	// Duration is the wall-clock time of the query.
	Duration time.Duration
}

// Engine answers area queries over one dataset. After construction it
// holds only immutable references to the index and data; all per-query
// mutable state lives in pooled queryScratch values, so Query, QueryRegion
// and KNearest are safe for concurrent use from multiple goroutines — as
// long as the SpatialIndex and DataAccess themselves are read-safe
// (MemoryData and every provided index are lock-free reads; StoreData
// serializes buffer-pool mutations behind a mutex).
type Engine struct {
	idx  SpatialIndex
	data DataAccess

	// scratch pools per-query state (*queryScratch); see scratch.go.
	scratch sync.Pool
}

// NewEngine returns an engine over the given index and data.
func NewEngine(idx SpatialIndex, data DataAccess) *Engine {
	e := &Engine{idx: idx, data: data}
	e.scratch.New = func() interface{} { return newScratch(e.data.NumIDs()) }
	return e
}

// Query runs an area query with the chosen method and returns the ids of
// all points inside area (in method-dependent order) plus statistics.
func (e *Engine) Query(m Method, area geom.Polygon) ([]int64, Stats, error) {
	return e.QueryRegion(m, PolygonRegion(area))
}

// QueryRegion runs an area query against an arbitrary Region (polygon,
// circle, or custom shape). It is QueryRegionSpec without a deadline.
func (e *Engine) QueryRegion(m Method, region Region) ([]int64, Stats, error) {
	return e.QueryRegionSpec(context.Background(), region, QuerySpec{Method: m})
}

// Add accumulates other's counters (and Duration) into s. It is the merge
// operation batch executors use to fold per-query or per-worker statistics
// into an aggregate; Method is left untouched.
func (s *Stats) Add(other Stats) {
	s.ResultSize += other.ResultSize
	s.Candidates += other.Candidates
	s.RedundantValidations += other.RedundantValidations
	s.SegmentTests += other.SegmentTests
	s.CellTests += other.CellTests
	s.IndexNodesVisited += other.IndexNodesVisited
	s.RecordsLoaded += other.RecordsLoaded
	s.Duration += other.Duration
}
