package core

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/workload"
)

func unitBounds() geom.Rect { return geom.NewRect(0, 0, 1, 1) }

func sortedIDs(ids []int64) []int64 {
	out := append([]int64(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// newUniformEngine builds an engine over n uniform points with an R-tree.
func newUniformEngine(t testing.TB, rng *rand.Rand, n int) (*Engine, []geom.Point) {
	t.Helper()
	pts := workload.UniformPoints(rng, n, unitBounds())
	data, err := NewMemoryData(pts, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(NewRTreeIndex(pts, 16), data), pts
}

func TestAllMethodsAgreeOnRandomWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	eng, _ := newUniformEngine(t, rng, 5000)
	methods := []Method{Traditional, VoronoiBFS, VoronoiBFSStrict, BruteForce}
	for trial := 0; trial < 60; trial++ {
		qs := []float64{0.005, 0.01, 0.04, 0.16}[trial%4]
		area := workload.RandomPolygon(rng, workload.PolygonConfig{Vertices: 10, QuerySize: qs}, unitBounds())
		var want []int64
		for i, m := range methods {
			got, stats, err := eng.Query(m, area)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, m, err)
			}
			gotSorted := sortedIDs(got)
			if i == 0 {
				want = gotSorted
			} else if !equalIDs(gotSorted, want) {
				t.Fatalf("trial %d: %v returned %d ids, %v returned %d ids",
					trial, methods[0], len(want), m, len(gotSorted))
			}
			if stats.ResultSize != len(got) {
				t.Fatalf("stats.ResultSize %d != len %d", stats.ResultSize, len(got))
			}
			if stats.RedundantValidations != stats.Candidates-stats.ResultSize {
				t.Fatalf("redundant accounting broken: %+v", stats)
			}
		}
	}
}

func TestVoronoiReducesCandidates(t *testing.T) {
	// The paper's headline: over the standard workload the Voronoi method
	// validates far fewer candidates than the traditional method.
	rng := rand.New(rand.NewSource(2))
	eng, _ := newUniformEngine(t, rng, 20000)
	var tradCand, vorCand, results int
	for trial := 0; trial < 30; trial++ {
		area := workload.RandomPolygon(rng, workload.PolygonConfig{Vertices: 10, QuerySize: 0.01}, unitBounds())
		_, st1, err := eng.Query(Traditional, area)
		if err != nil {
			t.Fatal(err)
		}
		_, st2, err := eng.Query(VoronoiBFS, area)
		if err != nil {
			t.Fatal(err)
		}
		tradCand += st1.Candidates
		vorCand += st2.Candidates
		results += st1.ResultSize
	}
	if vorCand >= tradCand {
		t.Fatalf("Voronoi candidates %d >= traditional %d", vorCand, tradCand)
	}
	saved := 1 - float64(vorCand)/float64(tradCand)
	// Paper reports 35-45% savings for 10-gon queries; accept a wide band.
	if saved < 0.2 {
		t.Errorf("candidate savings only %.1f%%", saved*100)
	}
	t.Logf("candidates: traditional=%d voronoi=%d results=%d savings=%.1f%%",
		tradCand, vorCand, results, saved*100)
}

func TestEmptyQueryArea(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	eng, _ := newUniformEngine(t, rng, 50)
	// A polygon far from every point (tiny sliver in a corner gap): query
	// result may be empty; all methods must agree and not error.
	area := geom.MustPolygon([]geom.Point{
		geom.Pt(0.0001, 0.0001), geom.Pt(0.0002, 0.0001), geom.Pt(0.00015, 0.0002),
	})
	for _, m := range []Method{Traditional, VoronoiBFS, VoronoiBFSStrict, BruteForce} {
		got, _, err := eng.Query(m, area)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(got) != 0 {
			t.Fatalf("%v found %d points in empty sliver", m, len(got))
		}
	}
}

func TestQueryCoveringEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	eng, pts := newUniformEngine(t, rng, 500)
	area := geom.MustPolygon([]geom.Point{
		geom.Pt(-1, -1), geom.Pt(2, -1), geom.Pt(2, 2), geom.Pt(-1, 2),
	})
	for _, m := range []Method{Traditional, VoronoiBFS, VoronoiBFSStrict, BruteForce} {
		got, _, err := eng.Query(m, area)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(got) != len(pts) {
			t.Fatalf("%v found %d of %d points", m, len(got), len(pts))
		}
	}
}

func TestConcaveAndHoleQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	eng, _ := newUniformEngine(t, rng, 3000)

	// Deep L-shape.
	lshape := geom.MustPolygon([]geom.Point{
		geom.Pt(0.1, 0.1), geom.Pt(0.9, 0.1), geom.Pt(0.9, 0.25),
		geom.Pt(0.25, 0.25), geom.Pt(0.25, 0.9), geom.Pt(0.1, 0.9),
	})
	// Ring-like polygon with a hole.
	holed := geom.MustPolygon([]geom.Point{
		geom.Pt(0.2, 0.2), geom.Pt(0.8, 0.2), geom.Pt(0.8, 0.8), geom.Pt(0.2, 0.8),
	})
	if err := holed.AddHole([]geom.Point{
		geom.Pt(0.35, 0.35), geom.Pt(0.65, 0.35), geom.Pt(0.65, 0.65), geom.Pt(0.35, 0.65),
	}); err != nil {
		t.Fatal(err)
	}
	for name, area := range map[string]geom.Polygon{"lshape": lshape, "holed": holed} {
		want, _, err := eng.Query(BruteForce, area)
		if err != nil {
			t.Fatal(err)
		}
		wantSorted := sortedIDs(want)
		for _, m := range []Method{Traditional, VoronoiBFS, VoronoiBFSStrict} {
			got, _, err := eng.Query(m, area)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, m, err)
			}
			if !equalIDs(sortedIDs(got), wantSorted) {
				t.Fatalf("%s/%v: got %d ids, oracle %d", name, m, len(got), len(want))
			}
		}
	}
}

func TestAllIndexesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := workload.UniformPoints(rng, 2000, unitBounds())
	data, err := NewMemoryData(pts, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	indexes := map[string]SpatialIndex{
		"rtree":    NewRTreeIndex(pts, 16),
		"kdtree":   NewKDTreeIndex(pts),
		"quadtree": NewQuadtreeIndex(pts, unitBounds(), 16),
		"grid":     NewGridIndex(pts, unitBounds(), 8),
	}
	area := workload.RandomPolygon(rng, workload.PolygonConfig{Vertices: 10, QuerySize: 0.05}, unitBounds())
	var want []int64
	first := true
	for name, idx := range indexes {
		eng := NewEngine(idx, data)
		for _, m := range []Method{Traditional, VoronoiBFS} {
			got, _, err := eng.Query(m, area)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, m, err)
			}
			gotSorted := sortedIDs(got)
			if first {
				want = gotSorted
				first = false
			} else if !equalIDs(gotSorted, want) {
				t.Fatalf("%s/%v disagrees: %d vs %d ids", name, m, len(gotSorted), len(want))
			}
		}
	}
}

func TestStoreDataCountsIO(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := workload.UniformPoints(rng, 3000, unitBounds())
	data, err := NewStoreData(pts, unitBounds(), StoreConfig{
		PageSize:     1024,
		PoolPages:    8,
		PayloadBytes: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(NewRTreeIndex(pts, 16), data)
	area := workload.RandomPolygon(rng, workload.PolygonConfig{Vertices: 10, QuerySize: 0.02}, unitBounds())

	data.Store().DropCache()
	_, stTrad, err := eng.Query(Traditional, area)
	if err != nil {
		t.Fatal(err)
	}
	ioTrad := data.IOStats()

	data.Store().DropCache()
	_, stVor, err := eng.Query(VoronoiBFS, area)
	if err != nil {
		t.Fatal(err)
	}
	ioVor := data.IOStats()

	if stTrad.RecordsLoaded != stTrad.Candidates {
		t.Errorf("traditional: loads %d != candidates %d", stTrad.RecordsLoaded, stTrad.Candidates)
	}
	if stVor.RecordsLoaded != stVor.Candidates {
		t.Errorf("voronoi: loads %d != candidates %d", stVor.RecordsLoaded, stVor.Candidates)
	}
	if ioTrad.PageReads == 0 || ioVor.PageReads == 0 {
		t.Errorf("expected page reads, got trad=%+v vor=%+v", ioTrad, ioVor)
	}
	// Both methods return the same result over store-backed data too.
	a, _, err := eng.Query(Traditional, area)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := eng.Query(VoronoiBFS, area)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(sortedIDs(a), sortedIDs(b)) {
		t.Error("methods disagree over store-backed data")
	}
}

func TestDuplicatePointsRejected(t *testing.T) {
	pts := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.5, 0.5), geom.Pt(0.2, 0.2)}
	if _, err := NewMemoryData(pts, unitBounds()); !errors.Is(err, ErrDuplicatePoints) {
		t.Errorf("err = %v, want ErrDuplicatePoints", err)
	}
	if _, err := NewStoreData(pts, unitBounds(), StoreConfig{}); !errors.Is(err, ErrDuplicatePoints) {
		t.Errorf("store err = %v, want ErrDuplicatePoints", err)
	}
}

// dataOnly hides the Cell method by forwarding only the DataAccess subset.
type dataOnly struct{ d DataAccess }

func (w dataOnly) NumIDs() int                                 { return w.d.NumIDs() }
func (w dataOnly) Position(id int64) geom.Point                { return w.d.Position(id) }
func (w dataOnly) NeighborsFunc(id int64, fn func(int64) bool) { w.d.NeighborsFunc(id, fn) }
func (w dataOnly) Load(id int64) (geom.Point, error)           { return w.d.Load(id) }
func (w dataOnly) Each(fn func(id int64, pos geom.Point) bool) { w.d.Each(fn) }

func TestStrictWithoutCellsFails(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := workload.UniformPoints(rng, 100, unitBounds())
	data, err := NewMemoryData(pts, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(NewRTreeIndex(pts, 16), dataOnly{data})
	area := workload.RandomPolygon(rng, workload.PolygonConfig{QuerySize: 0.05}, unitBounds())
	if _, _, err := eng.Query(VoronoiBFSStrict, area); !errors.Is(err, ErrStrictNotSupported) {
		t.Errorf("err = %v, want ErrStrictNotSupported", err)
	}
	// The published rule must still work.
	if _, _, err := eng.Query(VoronoiBFS, area); err != nil {
		t.Errorf("published rule failed: %v", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	eng, _ := newUniformEngine(t, rng, 10)
	area := geom.MustPolygon([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)})
	if _, _, err := eng.Query(Method(99), area); err == nil {
		t.Error("unknown method should error")
	}
}

func TestMethodString(t *testing.T) {
	cases := map[Method]string{
		Traditional:      "traditional",
		VoronoiBFS:       "voronoi",
		VoronoiBFSStrict: "voronoi-strict",
		BruteForce:       "brute-force",
		Method(42):       "method(42)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestEngineReusableAcrossManyQueries(t *testing.T) {
	// The generation-stamped visited set must stay correct across many
	// consecutive queries.
	rng := rand.New(rand.NewSource(10))
	eng, _ := newUniformEngine(t, rng, 1000)
	for trial := 0; trial < 300; trial++ {
		area := workload.RandomPolygon(rng, workload.PolygonConfig{Vertices: 6, QuerySize: 0.03}, unitBounds())
		a, _, err := eng.Query(BruteForce, area)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := eng.Query(VoronoiBFS, area)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(sortedIDs(a), sortedIDs(b)) {
			t.Fatalf("trial %d: voronoi diverged from oracle", trial)
		}
	}
}

func TestGenerationWraparound(t *testing.T) {
	// Scratch-level: crossing the uint32 generation boundary must clear the
	// stale stamps instead of treating them as current.
	s := newScratch(200)
	s.visited[7] = 1         // stale stamp that collides with gen == 1 after wrap
	s.gen = ^uint32(0) - 1   // two generations away from wrapping
	for i := 0; i < 4; i++ { // crosses the wraparound
		s.nextGen()
		if s.seen(7) {
			t.Fatalf("generation %d: stale stamp read as visited", i)
		}
		if !s.mark(7) {
			t.Fatalf("generation %d: first mark not fresh", i)
		}
		if s.mark(7) {
			t.Fatalf("generation %d: second mark not deduplicated", i)
		}
	}

	// Engine queries only ever reach a scratch through acquireScratch,
	// which advances the generation exactly as above; query correctness
	// across many generations is pinned by
	// TestEngineReusableAcrossManyQueries. (An engine-level wrap test would
	// need sync.Pool to hand back a specific poisoned scratch, which the
	// pool does not guarantee — the test would silently go vacuous.)
}

func TestStatsPlausibility(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	eng, _ := newUniformEngine(t, rng, 10000)
	area := workload.RandomPolygon(rng, workload.PolygonConfig{Vertices: 10, QuerySize: 0.02}, unitBounds())

	_, st, err := eng.Query(VoronoiBFS, area)
	if err != nil {
		t.Fatal(err)
	}
	if st.Method != VoronoiBFS {
		t.Errorf("Method = %v", st.Method)
	}
	if st.Candidates < st.ResultSize {
		t.Errorf("candidates %d < result %d", st.Candidates, st.ResultSize)
	}
	if st.SegmentTests == 0 {
		t.Error("expected segment tests for boundary points")
	}
	if st.CellTests != 0 {
		t.Error("published rule should not perform cell tests")
	}
	if st.IndexNodesVisited == 0 {
		t.Error("seed NN query should touch index nodes")
	}
	if st.Duration <= 0 {
		t.Error("duration not measured")
	}

	_, st2, err := eng.Query(VoronoiBFSStrict, area)
	if err != nil {
		t.Fatal(err)
	}
	if st2.CellTests == 0 {
		t.Error("strict rule should perform cell tests")
	}
	if st2.SegmentTests != 0 {
		t.Error("strict rule should not perform segment tests")
	}
}

func TestEmptyDataRejected(t *testing.T) {
	data, err := NewMemoryData([]geom.Point{geom.Pt(0.5, 0.5)}, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(NewRTreeIndex([]geom.Point{geom.Pt(0.5, 0.5)}, 16), data)
	area := geom.MustPolygon([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1)})
	if _, _, err := eng.Query(VoronoiBFS, area); err != nil {
		t.Errorf("single point dataset should work: %v", err)
	}
}

func BenchmarkTraditionalQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	eng, _ := newUniformEngine(b, rng, 100_000)
	areas := make([]geom.Polygon, 64)
	for i := range areas {
		areas[i] = workload.RandomPolygon(rng, workload.PolygonConfig{Vertices: 10, QuerySize: 0.01}, unitBounds())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Query(Traditional, areas[i%len(areas)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVoronoiQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	eng, _ := newUniformEngine(b, rng, 100_000)
	areas := make([]geom.Polygon, 64)
	for i := range areas {
		areas[i] = workload.RandomPolygon(rng, workload.PolygonConfig{Vertices: 10, QuerySize: 0.01}, unitBounds())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Query(VoronoiBFS, areas[i%len(areas)]); err != nil {
			b.Fatal(err)
		}
	}
}
