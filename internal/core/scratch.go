package core

// queryScratch is the per-query mutable state of the engine: the
// generation-stamped visited table and the BFS frontier queue. Isolating it
// from the Engine (which otherwise holds only immutable references to the
// index and data) is what makes one Engine safe for concurrent queries —
// each in-flight query owns exactly one scratch, checked out of a sync.Pool
// and returned when the query finishes.
type queryScratch struct {
	// Generation-stamped visited marks: visited[i] == gen means "seen this
	// query". Avoids clearing an O(n) structure per query.
	visited []uint32
	gen     uint32
	queue   []int64
	// heap is KNearest's pooled frontier storage (unused by area queries).
	heap knnHeap
}

// newScratch returns a scratch covering n ids.
func newScratch(n int) *queryScratch {
	return &queryScratch{visited: make([]uint32, n)}
}

// ensureCapacity grows the visited table to cover n ids (the dynamic
// engine's id space grows with insertions; pooled scratches built before an
// insertion must catch up on checkout).
func (s *queryScratch) ensureCapacity(n int) {
	if len(s.visited) >= n {
		return
	}
	grown := make([]uint32, n)
	copy(grown, s.visited)
	s.visited = grown
}

// nextGen advances the visited generation, handling wraparound by clearing.
//
//vaq:noalloc
func (s *queryScratch) nextGen() {
	s.gen++
	if s.gen == 0 { // wrapped: all stamps are stale-but-plausible, clear
		for i := range s.visited {
			s.visited[i] = 0
		}
		s.gen = 1
	}
}

// mark records id as visited for the current query; it reports whether the
// id was new.
//
//vaq:noalloc
func (s *queryScratch) mark(id int64) bool {
	if s.visited[id] == s.gen {
		return false
	}
	s.visited[id] = s.gen
	return true
}

// seen reports whether id was already marked this query.
//
//vaq:noalloc
func (s *queryScratch) seen(id int64) bool { return s.visited[id] == s.gen }

// acquireScratch checks a scratch out of the engine's pool, sized to the
// current id space with a fresh generation and an empty queue.
//
//vaq:pooled
func (e *Engine) acquireScratch() *queryScratch {
	s := e.scratch.Get().(*queryScratch)
	s.ensureCapacity(e.data.NumIDs())
	s.queue = s.queue[:0]
	s.nextGen()
	return s
}

// releaseScratch returns a scratch to the pool for reuse by later queries.
func (e *Engine) releaseScratch(s *queryScratch) { e.scratch.Put(s) }
