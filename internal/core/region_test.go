package core

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func TestCircleQueriesMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	eng, pts := newUniformEngine(t, rng, 5000)
	for trial := 0; trial < 50; trial++ {
		c := geom.NewCircle(
			geom.Pt(rng.Float64(), rng.Float64()),
			0.02+rng.Float64()*0.15,
		)
		region := CircleRegion(c)
		want := make([]int64, 0)
		for i, p := range pts {
			if c.ContainsPoint(p) {
				want = append(want, int64(i))
			}
		}
		for _, m := range []Method{Traditional, VoronoiBFS, VoronoiBFSStrict, BruteForce} {
			got, st, err := eng.QueryRegion(m, region)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, m, err)
			}
			if !equalIDs(sortedIDs(got), want) {
				t.Fatalf("trial %d %v: %d results, oracle %d", trial, m, len(got), len(want))
			}
			if st.ResultSize != len(got) {
				t.Fatalf("stats mismatch")
			}
		}
	}
}

func TestCircleVoronoiSavesCandidates(t *testing.T) {
	// A disk fills ~78.5% of its MBR, so the traditional filter wastes
	// ~21.5% plus index slack; the Voronoi method's shell should still be
	// smaller for reasonable radii.
	rng := rand.New(rand.NewSource(2))
	eng, _ := newUniformEngine(t, rng, 20000)
	var trad, vor int
	for trial := 0; trial < 20; trial++ {
		region := CircleRegion(geom.NewCircle(
			geom.Pt(0.2+0.6*rng.Float64(), 0.2+0.6*rng.Float64()), 0.08))
		_, st1, err := eng.QueryRegion(Traditional, region)
		if err != nil {
			t.Fatal(err)
		}
		_, st2, err := eng.QueryRegion(VoronoiBFS, region)
		if err != nil {
			t.Fatal(err)
		}
		trad += st1.Candidates
		vor += st2.Candidates
	}
	if vor >= trad {
		t.Errorf("circle queries: voronoi candidates %d >= traditional %d", vor, trad)
	}
	t.Logf("circle candidates: traditional=%d voronoi=%d (%.1f%% saved)",
		trad, vor, 100*(1-float64(vor)/float64(trad)))
}

func TestRegionIntersectsRingGeneric(t *testing.T) {
	// circleRegion does not implement RingIntersecter, so the generic path
	// is exercised by strict-mode queries above; unit-test the helper too.
	c := CircleRegion(geom.NewCircle(geom.Pt(0.5, 0.5), 0.1))
	inside := geom.Ring{geom.Pt(0.48, 0.48), geom.Pt(0.52, 0.48), geom.Pt(0.5, 0.52)}
	if !regionIntersectsRing(c, inside) {
		t.Error("ring inside circle should intersect")
	}
	far := geom.Ring{geom.Pt(0.9, 0.9), geom.Pt(0.95, 0.9), geom.Pt(0.92, 0.95)}
	if regionIntersectsRing(c, far) {
		t.Error("distant ring should not intersect")
	}
	surrounding := geom.Ring{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)}
	if !regionIntersectsRing(c, surrounding) {
		t.Error("ring containing the whole circle should intersect")
	}
	if regionIntersectsRing(c, nil) {
		t.Error("empty ring should not intersect")
	}
}

func TestKNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	eng, pts := newUniformEngine(t, rng, 2000)
	for trial := 0; trial < 100; trial++ {
		q := geom.Pt(rng.Float64(), rng.Float64())
		for _, k := range []int{1, 5, 37, 200} {
			got, _, err := eng.KNearest(context.Background(), q, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != k {
				t.Fatalf("k=%d: got %d", k, len(got))
			}
			// Distances must be the k smallest, in order.
			dists := make([]float64, len(pts))
			for i, p := range pts {
				dists[i] = q.Dist2(p)
			}
			sort.Float64s(dists)
			for i, id := range got {
				if q.Dist2(pts[id]) != dists[i] {
					t.Fatalf("k=%d rank %d: dist %v, want %v",
						k, i, q.Dist2(pts[id]), dists[i])
				}
			}
		}
	}
}

func TestKNearestEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	eng, pts := newUniformEngine(t, rng, 50)
	if got, _, err := eng.KNearest(context.Background(), geom.Pt(0.5, 0.5), 0); err != nil || got != nil {
		t.Errorf("k=0: %v, %v", got, err)
	}
	// k greater than the dataset returns everything, ordered.
	got, _, err := eng.KNearest(context.Background(), geom.Pt(0.5, 0.5), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Errorf("k>n returned %d of %d", len(got), len(pts))
	}
	for i := 1; i < len(got); i++ {
		q := geom.Pt(0.5, 0.5)
		if q.Dist2(pts[got[i-1]]) > q.Dist2(pts[got[i]]) {
			t.Fatal("kNN output not ordered")
		}
	}
}

func TestKNearestFarQuery(t *testing.T) {
	// Query point far outside the data: expansion must still be exact.
	rng := rand.New(rand.NewSource(5))
	eng, pts := newUniformEngine(t, rng, 500)
	q := geom.Pt(5, -3)
	got, _, err := eng.KNearest(context.Background(), q, 10)
	if err != nil {
		t.Fatal(err)
	}
	dists := make([]float64, len(pts))
	for i, p := range pts {
		dists[i] = q.Dist2(p)
	}
	sort.Float64s(dists)
	for i, id := range got {
		if math.Abs(q.Dist2(pts[id])-dists[i]) != 0 {
			t.Fatalf("rank %d: %v vs %v", i, q.Dist2(pts[id]), dists[i])
		}
	}
}

func TestKNearestCandidateEfficiency(t *testing.T) {
	// The expansion should pop exactly k candidates (the property
	// guarantees no wasted pops).
	rng := rand.New(rand.NewSource(6))
	eng, _ := newUniformEngine(t, rng, 3000)
	_, st, err := eng.KNearest(context.Background(), geom.Pt(0.5, 0.5), 25)
	if err != nil {
		t.Fatal(err)
	}
	if st.Candidates != 25 {
		t.Errorf("kNN popped %d candidates for k=25", st.Candidates)
	}
}

func BenchmarkKNearestVoronoi(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	eng, _ := newUniformEngine(b, rng, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.KNearest(context.Background(), geom.Pt(rng.Float64(), rng.Float64()), 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCircleQueryVoronoi(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	eng, _ := newUniformEngine(b, rng, 100_000)
	regions := make([]Region, 64)
	for i := range regions {
		regions[i] = CircleRegion(geom.NewCircle(
			geom.Pt(0.2+0.6*rng.Float64(), 0.2+0.6*rng.Float64()), 0.056)) // ~1% of universe
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.QueryRegion(VoronoiBFS, regions[i%len(regions)]); err != nil {
			b.Fatal(err)
		}
	}
}

// emptyData and emptyIndex model an engine whose dataset is empty, for
// pinning the empty-data error contract without a constructible topology.
type emptyData struct{}

func (emptyData) NumIDs() int                              { return 0 }
func (emptyData) Position(int64) geom.Point                { return geom.Point{} }
func (emptyData) NeighborsFunc(int64, func(nb int64) bool) {}
func (emptyData) Load(int64) (geom.Point, error)           { return geom.Point{}, nil }
func (emptyData) Each(func(id int64, pos geom.Point) bool) {}

type emptyIndex struct{}

func (emptyIndex) Window(geom.Rect, func(id int64) bool) int { return 0 }
func (emptyIndex) Nearest(geom.Point) (int64, int, bool)     { return 0, 0, false }

func TestKNearestEmptyEngineMatchesQueryContract(t *testing.T) {
	eng := NewEngine(emptyIndex{}, emptyData{})
	area := geom.MustPolygon([]geom.Point{
		geom.Pt(0.1, 0.1), geom.Pt(0.5, 0.1), geom.Pt(0.3, 0.5),
	})
	if _, _, err := eng.Query(VoronoiBFS, area); err != ErrNoData {
		t.Errorf("Query on empty engine: err = %v, want ErrNoData", err)
	}
	if _, _, err := eng.KNearest(context.Background(), geom.Pt(0.5, 0.5), 3); err != ErrNoData {
		t.Errorf("KNearest on empty engine: err = %v, want ErrNoData", err)
	}
	// The empty-data check precedes the degenerate-k fast path, so the
	// contract holds for any k.
	if _, _, err := eng.KNearest(context.Background(), geom.Pt(0.5, 0.5), 0); err != ErrNoData {
		t.Errorf("KNearest(k=0) on empty engine: err = %v, want ErrNoData", err)
	}
}
