package core

import (
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// TestStrictRuleIsAlwaysComplete stresses the expansion rules on sparse
// data with very spiky polygons — the adversarial regime for the published
// segment-expansion heuristic of Algorithm 1 (see DESIGN.md §5.3). The
// strict cell-intersection rule must match the brute-force oracle on every
// trial; the published rule is allowed rare misses here (they are counted
// and logged, and must not occur in the paper's own dense regime, which
// TestVoronoiReducesCandidates and the bench harness cover).
func TestStrictRuleIsAlwaysComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pts := workload.UniformPoints(rng, 300, unitBounds())
	data, err := NewMemoryData(pts, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(NewRTreeIndex(pts, 16), data)

	publishedMisses, trials := 0, 400
	for trial := 0; trial < trials; trial++ {
		area := workload.RandomPolygon(rng, workload.PolygonConfig{
			Vertices:       10,
			QuerySize:      0.01,
			MinRadiusRatio: 0.05, // extremely spiky: thin slivers likely
		}, unitBounds())

		oracle, _, err := eng.Query(BruteForce, area)
		if err != nil {
			t.Fatal(err)
		}
		strict, _, err := eng.Query(VoronoiBFSStrict, area)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(sortedIDs(strict), sortedIDs(oracle)) {
			t.Fatalf("trial %d: strict rule missed results (%d vs oracle %d)",
				trial, len(strict), len(oracle))
		}
		published, _, err := eng.Query(VoronoiBFS, area)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(sortedIDs(published), sortedIDs(oracle)) {
			publishedMisses++
		}
	}
	t.Logf("published rule diverged on %d/%d adversarial trials (strict: 0)",
		publishedMisses, trials)
	// Sanity: the published heuristic must still be overwhelmingly right
	// even here, or the reproduction has a bug rather than the known gap.
	if publishedMisses > trials/10 {
		t.Errorf("published rule diverged on %d/%d trials; too many for the known heuristic gap",
			publishedMisses, trials)
	}
}

// TestSeedOutsideAreaStillExpands pins the regression that motivated the
// centroid-first interior anchor: a query area whose anchor is near a thin
// spike used to strand the BFS at a seed outside the area.
func TestSeedOutsideAreaStillExpands(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := workload.UniformPoints(rng, 3000, unitBounds())
	data, err := NewMemoryData(pts, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(NewRTreeIndex(pts, 16), data)
	// Re-create the harness workload that exposed the miss: spiky 10-gons
	// at 4% query size over 3000 points.
	misses := 0
	for trial := 0; trial < 60; trial++ {
		area := workload.RandomPolygon(rng, workload.PolygonConfig{
			Vertices:  10,
			QuerySize: 0.04,
		}, unitBounds())
		oracle, _, err := eng.Query(BruteForce, area)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := eng.Query(VoronoiBFS, area)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 && len(oracle) > 0 {
			misses++
		}
	}
	if misses > 0 {
		t.Errorf("BFS stranded at the seed on %d/60 trials; anchor selection regressed", misses)
	}
}
