// Package serve exposes any vaq engine flavor over HTTP as an area-query
// backend: the full Querier surface — unary Query, QueryAll, Count and
// KNearest, plus server-streamed Each as chunked NDJSON — speaking the
// canonical wire codec (package wire), with client deadlines propagated
// from the Vaq-Timeout-Ms header into every query's context. cmd/areaserve
// is the binary around it; the handler itself is dependency-free stdlib
// net/http, mountable into any mux, and safe for any number of concurrent
// requests (the engines already are).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	vaq "repro"
	"repro/internal/wire"
)

// Engine is what the handler serves: the Querier surface plus the
// per-flavor KNearest and size accessor every vaq engine provides.
type Engine interface {
	vaq.Querier
	KNearest(ctx context.Context, q vaq.Point, k int) ([]int64, vaq.Stats, error)
	Point(id int64) vaq.Point
	Len() int
}

// bounded is satisfied by static and sharded engines; universed by the
// dynamic flavors. Either feeds /v1/info's bounds field.
type bounded interface{ Bounds() vaq.Rect }
type universed interface{ Universe() vaq.Rect }

// Config tunes a handler.
type Config struct {
	// IDOffset is the global id of this backend's local id 0, advertised
	// in /v1/info so a fan-out client can remap results without
	// configuration. Serve the i-th contiguous chunk of a dataset and set
	// the chunk's start index here.
	IDOffset int64
	// Flavor is a free-form backend label for /v1/info ("static",
	// "sharded", ...).
	Flavor string
	// Metrics, when non-nil, is mounted at /metrics (JSON, ?format=prom
	// for Prometheus text). Build the engine with vaq.WithMetrics on the
	// same registry to see its query counters there.
	Metrics *vaq.MetricsRegistry
	// MaxBodyBytes caps request body size (default 16 MiB).
	MaxBodyBytes int64
	// MaxTimeout caps the client-requested deadline; 0 means no cap.
	MaxTimeout time.Duration
	// StreamFlushEvery is the frame interval between explicit flushes on
	// /v1/each streams (default 64; 1 flushes every frame).
	StreamFlushEvery int
}

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.StreamFlushEvery <= 0 {
		c.StreamFlushEvery = 64
	}
	return c
}

type handler struct {
	eng Engine
	cfg Config
}

// NewHandler returns the HTTP handler serving eng. Routes:
//
//	POST /v1/query     one area query        → wire.QueryResponse
//	POST /v1/queryall  a batch               → wire.BatchResponse
//	POST /v1/count     count without results → wire.QueryResponse (ids nil)
//	POST /v1/knearest  k nearest neighbors   → wire.KNNResponse
//	POST /v1/each      streamed area query   → NDJSON wire.Frame lines
//	GET  /v1/info      backend shape         → wire.Info
//	GET  /metrics      registry snapshot (when Config.Metrics is set)
//
// Errors return a wire.Error JSON body with a classifying code; the
// /v1/each stream reports errors in its terminal EOF frame instead, since
// the status line is already on the wire when a query fails mid-stream.
func NewHandler(eng Engine, cfg Config) http.Handler {
	h := &handler{eng: eng, cfg: cfg.withDefaults()}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", h.query)
	mux.HandleFunc("POST /v1/queryall", h.queryAll)
	mux.HandleFunc("POST /v1/count", h.count)
	mux.HandleFunc("POST /v1/knearest", h.kNearest)
	mux.HandleFunc("POST /v1/each", h.each)
	mux.HandleFunc("GET /v1/info", h.info)
	if h.cfg.Metrics != nil {
		mux.Handle("GET /metrics", vaq.MetricsHandler(h.cfg.Metrics))
	}
	return mux
}

// requestContext derives the query context: the request's own context
// (canceled by client disconnect — cancellation over the wire is free)
// bounded by the Vaq-Timeout-Ms header when present, so a propagated
// deadline expires server-side even if the connection lingers.
func (h *handler) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	ctx := r.Context()
	hdr := r.Header.Get(wire.TimeoutHeader)
	if hdr == "" {
		if h.cfg.MaxTimeout > 0 {
			ctx, cancel := context.WithTimeout(ctx, h.cfg.MaxTimeout)
			return ctx, cancel, nil
		}
		return ctx, func() {}, nil
	}
	ms, err := strconv.ParseInt(hdr, 10, 64)
	if err != nil || ms <= 0 {
		return nil, nil, fmt.Errorf("serve: bad %s header %q", wire.TimeoutHeader, hdr)
	}
	d := time.Duration(ms) * time.Millisecond
	if h.cfg.MaxTimeout > 0 && d > h.cfg.MaxTimeout {
		d = h.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, d)
	return ctx, cancel, nil
}

// decodeBody JSON-decodes the size-capped request body into dst.
func (h *handler) decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	body := http.MaxBytesReader(w, r.Body, h.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}

// writeJSON writes a 200 with the JSON form of v.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(v)
}

// writeError writes the classified error body. Client-side cancellation
// usually never reads it — the connection is gone — but the body keeps
// curl sessions and proxies honest.
func writeError(w http.ResponseWriter, we *wire.Error) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(wire.HTTPStatus(we.Code))
	json.NewEncoder(w).Encode(we)
}

func badRequest(w http.ResponseWriter, err error) {
	writeError(w, &wire.Error{Code: wire.CodeBadRequest, Message: err.Error()})
}

// queryOpts translates wire options into the vaq option set, always
// routing statistics into st (the response carries them back).
func queryOpts(opts wire.Options, st *vaq.Stats) ([]vaq.QueryOpt, error) {
	m, err := wire.ParseMethod(opts.Method)
	if err != nil {
		return nil, err
	}
	out := []vaq.QueryOpt{vaq.UsingMethod(m), vaq.WithStatsInto(st)}
	if opts.CountOnly {
		out = append(out, vaq.CountOnly())
	}
	if opts.Limit > 0 {
		out = append(out, vaq.Limit(opts.Limit))
	}
	return out, nil
}

func (h *handler) query(w http.ResponseWriter, r *http.Request) {
	var req wire.QueryRequest
	if err := h.decodeBody(w, r, &req); err != nil {
		badRequest(w, err)
		return
	}
	region, err := req.Region.Decode()
	if err != nil {
		badRequest(w, err)
		return
	}
	ctx, cancel, err := h.requestContext(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	defer cancel()
	var st vaq.Stats
	opts, err := queryOpts(req.Options, &st)
	if err != nil {
		badRequest(w, err)
		return
	}
	ids, err := h.eng.Query(ctx, region, opts...)
	if err != nil {
		writeError(w, wire.EncodeError(err))
		return
	}
	ws := wire.FromStats(st)
	writeJSON(w, wire.QueryResponse{IDs: ids, Count: st.ResultSize, Stats: &ws})
}

// count is /v1/query with CountOnly forced — sugar so clients and curl
// sessions need no option plumbing for the common count.
func (h *handler) count(w http.ResponseWriter, r *http.Request) {
	var req wire.QueryRequest
	if err := h.decodeBody(w, r, &req); err != nil {
		badRequest(w, err)
		return
	}
	req.Options.CountOnly = true
	region, err := req.Region.Decode()
	if err != nil {
		badRequest(w, err)
		return
	}
	ctx, cancel, err := h.requestContext(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	defer cancel()
	var st vaq.Stats
	opts, err := queryOpts(req.Options, &st)
	if err != nil {
		badRequest(w, err)
		return
	}
	if _, err := h.eng.Query(ctx, region, opts...); err != nil {
		writeError(w, wire.EncodeError(err))
		return
	}
	ws := wire.FromStats(st)
	writeJSON(w, wire.QueryResponse{Count: st.ResultSize, Stats: &ws})
}

func (h *handler) queryAll(w http.ResponseWriter, r *http.Request) {
	var req wire.BatchRequest
	if err := h.decodeBody(w, r, &req); err != nil {
		badRequest(w, err)
		return
	}
	regions := make([]vaq.Region, len(req.Regions))
	for i, wr := range req.Regions {
		var err error
		if regions[i], err = wr.Decode(); err != nil {
			badRequest(w, fmt.Errorf("region %d: %w", i, err))
			return
		}
	}
	ctx, cancel, err := h.requestContext(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	defer cancel()
	var st vaq.Stats
	opts, err := queryOpts(req.Options, &st)
	if err != nil {
		badRequest(w, err)
		return
	}
	results, err := h.eng.QueryAll(ctx, regions, opts...)
	if err != nil {
		writeError(w, wire.EncodeError(err))
		return
	}
	// Align nil sub-slices to empty so the JSON is [] per region, never
	// null — a batch of n regions always decodes to n slices.
	for i, ids := range results {
		if ids == nil {
			results[i] = []int64{}
		}
	}
	ws := wire.FromStats(st)
	writeJSON(w, wire.BatchResponse{Results: results, Stats: &ws})
}

func (h *handler) kNearest(w http.ResponseWriter, r *http.Request) {
	var req wire.KNNRequest
	if err := h.decodeBody(w, r, &req); err != nil {
		badRequest(w, err)
		return
	}
	if req.K < 0 {
		badRequest(w, errors.New("serve: negative k"))
		return
	}
	ctx, cancel, err := h.requestContext(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	defer cancel()
	ids, st, err := h.eng.KNearest(ctx, req.Point.Point(), req.K)
	if err != nil {
		writeError(w, wire.EncodeError(err))
		return
	}
	pts := make([]wire.Coord, len(ids))
	for i, id := range ids {
		pts[i] = wire.FromPoint(h.eng.Point(id))
	}
	if ids == nil {
		ids = []int64{}
	}
	ws := wire.FromStats(st)
	writeJSON(w, wire.KNNResponse{IDs: ids, Points: pts, Stats: &ws})
}

// each streams one area query as NDJSON frames, riding the engine's
// emit-callback path: every result is on the wire while the BFS is still
// expanding. The terminal frame carries the statistics (or the error);
// a stream without one was cut by a disconnect.
func (h *handler) each(w http.ResponseWriter, r *http.Request) {
	var req wire.QueryRequest
	if err := h.decodeBody(w, r, &req); err != nil {
		badRequest(w, err)
		return
	}
	region, err := req.Region.Decode()
	if err != nil {
		badRequest(w, err)
		return
	}
	ctx, cancel, err := h.requestContext(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	defer cancel()
	var st vaq.Stats
	opts, err := queryOpts(req.Options, &st)
	if err != nil {
		badRequest(w, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	frames := 0
	var writeErr error
	qerr := h.eng.Each(ctx, region, func(id int64, p vaq.Point) bool {
		if writeErr = enc.Encode(wire.Frame{ID: id, X: p.X, Y: p.Y}); writeErr != nil {
			return false // client went away; stop the query cleanly
		}
		frames++
		if flusher != nil && frames%h.cfg.StreamFlushEvery == 0 {
			flusher.Flush()
		}
		return true
	}, opts...)
	if writeErr != nil {
		return // connection dead; no terminal frame is deliverable
	}
	final := wire.Frame{EOF: true}
	if qerr != nil {
		final.Err = wire.EncodeError(qerr)
	} else {
		ws := wire.FromStats(st)
		final.Stats = &ws
	}
	enc.Encode(final)
	if flusher != nil {
		flusher.Flush()
	}
}

func (h *handler) info(w http.ResponseWriter, r *http.Request) {
	info := wire.Info{Len: h.eng.Len(), IDOffset: h.cfg.IDOffset, Flavor: h.cfg.Flavor}
	switch e := h.eng.(type) {
	case bounded:
		info.Bounds = wire.FromRect(e.Bounds())
	case universed:
		info.Bounds = wire.FromRect(e.Universe())
	}
	writeJSON(w, info)
}
