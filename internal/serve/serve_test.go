package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	vaq "repro"
	"repro/internal/wire"
)

func testEngine(t *testing.T, n int) *vaq.Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	pts := make([]vaq.Point, n)
	for i := range pts {
		pts[i] = vaq.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	eng, err := vaq.NewEngine(pts, vaq.NewRect(0, 0, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func testRegion() vaq.Region {
	pg := vaq.MustPolygon([]vaq.Point{
		{X: 0.2, Y: 0.2}, {X: 0.8, Y: 0.25}, {X: 0.7, Y: 0.8}, {X: 0.25, Y: 0.75},
	})
	return vaq.PolygonRegion(pg)
}

func post(t *testing.T, srv *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeInto(t *testing.T, resp *http.Response, dst any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatal(err)
	}
}

func TestQueryMatchesLocal(t *testing.T) {
	eng := testEngine(t, 400)
	srv := httptest.NewServer(NewHandler(eng, Config{}))
	defer srv.Close()

	region := testRegion()
	want, err := eng.Query(context.Background(), region)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("test region matched nothing; enlarge it")
	}

	wr, err := wire.EncodeRegion(region)
	if err != nil {
		t.Fatal(err)
	}
	var got wire.QueryResponse
	decodeInto(t, post(t, srv, "/v1/query", wire.QueryRequest{Region: wr}), &got)
	if len(got.IDs) != len(want) {
		t.Fatalf("got %d ids, want %d", len(got.IDs), len(want))
	}
	for i := range want {
		if got.IDs[i] != want[i] {
			t.Fatalf("id %d: got %d want %d", i, got.IDs[i], want[i])
		}
	}
	if got.Count != len(want) {
		t.Errorf("count %d, want %d", got.Count, len(want))
	}
	if got.Stats == nil || got.Stats.ResultSize != len(want) {
		t.Errorf("stats missing or wrong: %+v", got.Stats)
	}
}

func TestCountAndLimit(t *testing.T) {
	eng := testEngine(t, 400)
	srv := httptest.NewServer(NewHandler(eng, Config{}))
	defer srv.Close()

	region := testRegion()
	want, err := eng.Query(context.Background(), region)
	if err != nil {
		t.Fatal(err)
	}
	wr, _ := wire.EncodeRegion(region)

	var cnt wire.QueryResponse
	decodeInto(t, post(t, srv, "/v1/count", wire.QueryRequest{Region: wr}), &cnt)
	if cnt.Count != len(want) {
		t.Errorf("count %d, want %d", cnt.Count, len(want))
	}
	if cnt.IDs != nil {
		t.Errorf("count returned ids: %v", cnt.IDs)
	}

	var lim wire.QueryResponse
	decodeInto(t, post(t, srv, "/v1/query",
		wire.QueryRequest{Region: wr, Options: wire.Options{Limit: 3}}), &lim)
	if len(lim.IDs) != 3 {
		t.Errorf("limit 3 returned %d ids", len(lim.IDs))
	}
}

func TestQueryAll(t *testing.T) {
	eng := testEngine(t, 400)
	srv := httptest.NewServer(NewHandler(eng, Config{}))
	defer srv.Close()

	inside := testRegion()
	empty := vaq.CircleRegion(vaq.NewCircle(vaq.Point{X: 0.001, Y: 0.001}, 1e-9))
	regions := []vaq.Region{inside, empty}
	want, err := eng.QueryAll(context.Background(), regions)
	if err != nil {
		t.Fatal(err)
	}

	req := wire.BatchRequest{Regions: make([]wire.Region, len(regions))}
	for i, r := range regions {
		if req.Regions[i], err = wire.EncodeRegion(r); err != nil {
			t.Fatal(err)
		}
	}
	var got wire.BatchResponse
	decodeInto(t, post(t, srv, "/v1/queryall", req), &got)
	if len(got.Results) != len(want) {
		t.Fatalf("got %d results, want %d", len(got.Results), len(want))
	}
	for i := range want {
		if len(got.Results[i]) != len(want[i]) {
			t.Errorf("region %d: got %d ids, want %d", i, len(got.Results[i]), len(want[i]))
		}
	}
	// The empty region's slice must decode as an empty slice, not nil.
	if got.Results[1] == nil {
		t.Error("empty region decoded to nil (JSON null), want []")
	}
}

func TestKNearest(t *testing.T) {
	eng := testEngine(t, 400)
	srv := httptest.NewServer(NewHandler(eng, Config{}))
	defer srv.Close()

	q := vaq.Point{X: 0.5, Y: 0.5}
	want, _, err := eng.KNearest(context.Background(), q, 7)
	if err != nil {
		t.Fatal(err)
	}
	var got wire.KNNResponse
	decodeInto(t, post(t, srv, "/v1/knearest", wire.KNNRequest{Point: wire.FromPoint(q), K: 7}), &got)
	if len(got.IDs) != len(want) || len(got.Points) != len(want) {
		t.Fatalf("got %d ids / %d points, want %d", len(got.IDs), len(got.Points), len(want))
	}
	for i, id := range want {
		if got.IDs[i] != id {
			t.Errorf("id %d: got %d want %d", i, got.IDs[i], id)
		}
		if p := eng.Point(id); got.Points[i].Point() != p {
			t.Errorf("point %d: got %v want %v (must be bit-exact)", i, got.Points[i], p)
		}
	}
}

func TestEachStreams(t *testing.T) {
	eng := testEngine(t, 400)
	srv := httptest.NewServer(NewHandler(eng, Config{StreamFlushEvery: 1}))
	defer srv.Close()

	region := testRegion()
	want, err := eng.Query(context.Background(), region)
	if err != nil {
		t.Fatal(err)
	}
	wr, _ := wire.EncodeRegion(region)

	resp := post(t, srv, "/v1/each", wire.QueryRequest{Region: wr})
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Errorf("content type %q", ct)
	}
	var ids []int64
	sawEOF := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var fr wire.Frame
		if err := json.Unmarshal(sc.Bytes(), &fr); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		if fr.EOF {
			sawEOF = true
			if fr.Err != nil {
				t.Fatalf("stream error: %+v", fr.Err)
			}
			if fr.Stats == nil || fr.Stats.ResultSize != len(want) {
				t.Errorf("EOF stats: %+v, want result_size %d", fr.Stats, len(want))
			}
			break
		}
		if p := eng.Point(fr.ID); p.X != fr.X || p.Y != fr.Y {
			t.Errorf("frame %d coords %v,%v, want %v", fr.ID, fr.X, fr.Y, p)
		}
		ids = append(ids, fr.ID)
	}
	if !sawEOF {
		t.Fatal("stream ended without EOF frame")
	}
	// Each streams in discovery order; compare as sets via sorted copy.
	if len(ids) != len(want) {
		t.Fatalf("streamed %d ids, want %d", len(ids), len(want))
	}
	seen := make(map[int64]bool, len(ids))
	for _, id := range ids {
		seen[id] = true
	}
	for _, id := range want {
		if !seen[id] {
			t.Errorf("id %d missing from stream", id)
		}
	}
}

func TestEachClientDisconnect(t *testing.T) {
	eng := testEngine(t, 2000)
	srv := httptest.NewServer(NewHandler(eng, Config{StreamFlushEvery: 1}))
	defer srv.Close()

	// Query the whole universe so the stream is long, then hang up after
	// the first frame. The handler must stop the query rather than keep
	// writing into a dead connection.
	whole := vaq.PolygonRegion(vaq.MustPolygon([]vaq.Point{
		{X: -0.1, Y: -0.1}, {X: 1.1, Y: -0.1}, {X: 1.1, Y: 1.1}, {X: -0.1, Y: 1.1},
	}))
	wr, err := wire.EncodeRegion(whole)
	if err != nil {
		t.Fatal(err)
	}
	resp := post(t, srv, "/v1/each", wire.QueryRequest{Region: wr})
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no first frame")
	}
	resp.Body.Close() // mid-stream disconnect

	// The server notices on its next write; nothing to assert beyond "no
	// hang": give the handler a moment to unwind under -race.
	time.Sleep(50 * time.Millisecond)
}

func TestInfo(t *testing.T) {
	eng := testEngine(t, 100)
	srv := httptest.NewServer(NewHandler(eng, Config{IDOffset: 1000, Flavor: "static"}))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	var info wire.Info
	decodeInto(t, resp, &info)
	if info.Len != 100 || info.IDOffset != 1000 || info.Flavor != "static" {
		t.Errorf("info: %+v", info)
	}
	if b := info.Rect(); b != eng.Bounds() {
		t.Errorf("bounds %v, want %v", b, eng.Bounds())
	}
}

func TestMetricsMounted(t *testing.T) {
	reg := vaq.NewMetricsRegistry()
	rng := rand.New(rand.NewSource(1))
	pts := make([]vaq.Point, 64)
	for i := range pts {
		pts[i] = vaq.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	eng, err := vaq.NewEngine(pts, vaq.NewRect(0, 0, 1, 1), vaq.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(eng, Config{Metrics: reg}))
	defer srv.Close()

	wr, _ := wire.EncodeRegion(testRegion())
	post(t, srv, "/v1/query", wire.QueryRequest{Region: wr}).Body.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	decodeInto(t, resp, &snap)
	if len(snap) == 0 {
		t.Error("metrics snapshot empty after a query")
	}
	resp, err = srv.Client().Get(srv.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "vaq_") {
		t.Errorf("prometheus format missing vaq_ metrics:\n%s", b)
	}
}

func TestErrorMapping(t *testing.T) {
	eng := testEngine(t, 100)
	srv := httptest.NewServer(NewHandler(eng, Config{}))
	defer srv.Close()

	// Malformed JSON body.
	resp, err := srv.Client().Post(srv.URL+"/v1/query", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", resp.StatusCode)
	}

	// Structurally invalid region.
	bad := wire.QueryRequest{Region: wire.Region{Kind: "blob"}}
	resp = post(t, srv, "/v1/query", bad)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad region: status %d", resp.StatusCode)
	}

	// Unknown method.
	wr, _ := wire.EncodeRegion(testRegion())
	resp = post(t, srv, "/v1/query",
		wire.QueryRequest{Region: wr, Options: wire.Options{Method: "dijkstra"}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown method: status %d", resp.StatusCode)
	}

	// Empty engine → ErrNoData from KNearest → 422 with no_data code.
	dyn := vaq.NewDynamicEngine(vaq.NewRect(0, 0, 1, 1))
	esrv := httptest.NewServer(NewHandler(dyn, Config{}))
	defer esrv.Close()
	resp = post(t, esrv, "/v1/knearest", wire.KNNRequest{Point: wire.Coord{X: 0.5, Y: 0.5}, K: 3})
	if resp.StatusCode != 422 {
		t.Errorf("knearest on empty: status %d", resp.StatusCode)
	}
	var we wire.Error
	decodeInto2(t, resp, &we)
	if we.Code != wire.CodeNoData {
		t.Errorf("code %q, want %q", we.Code, wire.CodeNoData)
	}
	if !errors.Is(we.Err(), vaq.ErrNoData) {
		t.Errorf("decoded error %v does not match ErrNoData", we.Err())
	}
}

// decodeInto2 decodes a non-200 JSON body.
func decodeInto2(t *testing.T, resp *http.Response, dst any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatal(err)
	}
}

// ctxEngine records the context deadline its Query sees.
type ctxEngine struct {
	*vaq.Engine
	sawDeadline atomic.Int64 // remaining ms at Query entry, -1 if none
}

func (c *ctxEngine) Query(ctx context.Context, region vaq.Region, opts ...vaq.QueryOpt) ([]int64, error) {
	if d, ok := ctx.Deadline(); ok {
		c.sawDeadline.Store(time.Until(d).Milliseconds())
	} else {
		c.sawDeadline.Store(-1)
	}
	return c.Engine.Query(ctx, region, opts...)
}

func TestDeadlinePropagation(t *testing.T) {
	ce := &ctxEngine{Engine: testEngine(t, 100)}
	srv := httptest.NewServer(NewHandler(ce, Config{}))
	defer srv.Close()

	wr, _ := wire.EncodeRegion(testRegion())
	data, _ := json.Marshal(wire.QueryRequest{Region: wr})

	// Without the header: no deadline.
	post(t, srv, "/v1/query", wire.QueryRequest{Region: wr}).Body.Close()
	if got := ce.sawDeadline.Load(); got != -1 {
		t.Errorf("no header: query saw deadline %dms, want none", got)
	}

	// With the header: a deadline within (0, 30s].
	req, _ := http.NewRequest("POST", srv.URL+"/v1/query", bytes.NewReader(data))
	req.Header.Set(wire.TimeoutHeader, "30000")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := ce.sawDeadline.Load(); got <= 0 || got > 30000 {
		t.Errorf("header 30000: query saw remaining %dms", got)
	}

	// MaxTimeout caps the requested budget.
	capped := httptest.NewServer(NewHandler(ce, Config{MaxTimeout: 50 * time.Millisecond}))
	defer capped.Close()
	req, _ = http.NewRequest("POST", capped.URL+"/v1/query", bytes.NewReader(data))
	req.Header.Set(wire.TimeoutHeader, "60000")
	if resp, err = capped.Client().Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := ce.sawDeadline.Load(); got <= 0 || got > 50 {
		t.Errorf("capped: query saw remaining %dms, want <=50", got)
	}

	// A garbage header is a bad request.
	req, _ = http.NewRequest("POST", srv.URL+"/v1/query", bytes.NewReader(data))
	req.Header.Set(wire.TimeoutHeader, "soon")
	if resp, err = srv.Client().Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage timeout header: status %d", resp.StatusCode)
	}

	// An already-expired budget fails with the deadline code.
	slow := &slowEngine{Engine: ce.Engine}
	ssrv := httptest.NewServer(NewHandler(slow, Config{}))
	defer ssrv.Close()
	req, _ = http.NewRequest("POST", ssrv.URL+"/v1/query", bytes.NewReader(data))
	req.Header.Set(wire.TimeoutHeader, "1")
	if resp, err = ssrv.Client().Do(req); err != nil {
		t.Fatal(err)
	}
	var we wire.Error
	status := resp.StatusCode
	decodeInto2(t, resp, &we)
	if status != 504 || we.Code != wire.CodeDeadline {
		t.Errorf("expired budget: status %d code %q, want 504 %q", status, we.Code, wire.CodeDeadline)
	}
}

// slowEngine blocks until the context dies, forcing a deadline error.
type slowEngine struct{ *vaq.Engine }

func (s *slowEngine) Query(ctx context.Context, region vaq.Region, opts ...vaq.QueryOpt) ([]int64, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func TestBodySizeCap(t *testing.T) {
	eng := testEngine(t, 100)
	srv := httptest.NewServer(NewHandler(eng, Config{MaxBodyBytes: 128}))
	defer srv.Close()

	big := `{"region":{"kind":"polygon","outer":[` +
		strings.Repeat(`[0.1,0.1],`, 64) + `[0.2,0.2]]}}`
	resp, err := srv.Client().Post(srv.URL+"/v1/query", "application/json",
		strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized body: status %d, want 400", resp.StatusCode)
	}
}
