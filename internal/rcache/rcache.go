// Package rcache is a sharded, LRU-evicting result cache for area queries —
// the memoization layer behind vaq.WithResultCache.
//
// The cache maps an opaque key (an exact canonical encoding of the query:
// region geometry × resolved options × engine epoch, built by the caller)
// to the query's materialized result. Keying by epoch makes invalidation
// free on dynamic engines: an insert bumps the epoch, so every later query
// builds a different key and stale entries simply age out of the LRU.
//
// Concurrency follows the buffer-pool pattern (internal/storage): the key
// space is partitioned over power-of-two lock shards, each a small
// independent LRU, so concurrent lookups of different regions proceed in
// parallel. Hit/miss/eviction/bypass counters are atomic and cache-global.
//
// Entries are stored and returned by reference: the caller must hand Put a
// slice it will never mutate and must not mutate the IDs returned by Get
// (vaq copies on both sides of the boundary).
package rcache

import (
	"container/list"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Entry is one memoized query result: the materialized ids (nil for
// count-only queries) and the statistics of the execution that produced
// them.
type Entry struct {
	IDs   []int64
	Stats core.Stats
}

// Counters are the cache-global hit/miss/evict/bypass counts. Bypasses are
// queries the caller chose not to memoize (unkeyable region, limited
// query); they never touch the shard locks.
type Counters struct {
	Hits, Misses, Evictions, Bypasses uint64
}

// Lookups returns Hits + Misses.
func (c Counters) Lookups() uint64 { return c.Hits + c.Misses }

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (c Counters) HitRate() float64 {
	if n := c.Lookups(); n > 0 {
		return float64(c.Hits) / float64(n)
	}
	return 0
}

// String renders the counters as a log-friendly one-liner.
func (c Counters) String() string {
	return fmt.Sprintf("rcache hits=%d misses=%d (%.1f%%) evictions=%d bypasses=%d",
		c.Hits, c.Misses, c.HitRate()*100, c.Evictions, c.Bypasses)
}

// cacheShard is one lock shard: an independent LRU over its slice of the
// key space. Shards live contiguously in one slice; the padding keeps two
// shards' mutexes off one cache line.
type cacheShard struct {
	mu    sync.Mutex
	items map[string]*list.Element // guarded by mu
	lru   *list.List               // guarded by mu; front = most recently used
	_     [64]byte
}

type cacheItem struct {
	key string
	ent Entry
}

// Cache is a sharded LRU result cache, safe for concurrent use.
type Cache struct {
	shards []cacheShard
	mask   uint64

	// capacity is the total entry budget, partitioned evenly over shards
	// (per-shard cap = ceil(capacity/shards)). <= 0 stores nothing.
	capacity atomic.Int64

	hits, misses, evictions, bypasses atomic.Uint64
}

// New returns a cache holding up to capacity entries, partitioned over a
// power-of-two shard count derived from GOMAXPROCS (clamped so shards
// never outnumber a positive capacity). capacity <= 0 disables storage:
// every lookup misses and Put drops — useful as an always-cold baseline.
func New(capacity int) *Cache {
	return NewWithShards(capacity, 0)
}

// NewWithShards is New with an explicit shard count (rounded up to a power
// of two; <= 0 selects the GOMAXPROCS-based default).
func NewWithShards(capacity, shards int) *Cache {
	n := normalizeShards(shards, capacity)
	c := &Cache{shards: make([]cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i].items = make(map[string]*list.Element)
		c.shards[i].lru = list.New()
	}
	c.capacity.Store(int64(capacity))
	return c
}

// normalizeShards resolves the shard count: a power of two at or above
// GOMAXPROCS by default, capped at 128, and never above a positive
// capacity (a shard with a zero per-shard budget could hold nothing).
func normalizeShards(n, capacity int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	pow := 1
	for pow < n && pow < 128 {
		pow <<= 1
	}
	for capacity > 0 && pow > 1 && pow > capacity {
		pow >>= 1
	}
	return pow
}

// fnv1a hashes the key for shard selection.
func fnv1a(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

func (c *Cache) shardFor(key string) *cacheShard {
	return &c.shards[fnv1a(key)&c.mask]
}

// perShardCap returns the current per-shard entry budget.
func (c *Cache) perShardCap() int {
	cap := int(c.capacity.Load())
	if cap <= 0 {
		return 0
	}
	n := len(c.shards)
	return (cap + n - 1) / n
}

// Get returns the entry memoized under key, marking it most recently used.
// The returned Entry's IDs must not be mutated.
func (c *Cache) Get(key string) (Entry, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.items[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return Entry{}, false
	}
	s.lru.MoveToFront(el)
	ent := el.Value.(*cacheItem).ent
	s.mu.Unlock()
	c.hits.Add(1)
	return ent, true
}

// Put memoizes ent under key, evicting least-recently-used entries of the
// same shard when over budget. The caller must not mutate ent.IDs after
// the call. Re-putting an existing key replaces its entry.
func (c *Cache) Put(key string, ent Entry) {
	limit := c.perShardCap()
	if limit <= 0 {
		return
	}
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheItem).ent = ent
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.items[key] = s.lru.PushFront(&cacheItem{key: key, ent: ent})
	evicted := uint64(0)
	for s.lru.Len() > limit {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.items, back.Value.(*cacheItem).key)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// AddBypass counts a query the caller chose not to memoize.
func (c *Cache) AddBypass() { c.bypasses.Add(1) }

// Counters returns a snapshot of the cache-global counters.
func (c *Cache) Counters() Counters {
	return Counters{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Bypasses:  c.bypasses.Load(),
	}
}

// Len returns the current number of memoized entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Capacity returns the total entry budget.
func (c *Cache) Capacity() int { return int(c.capacity.Load()) }

// Resize sets the total entry budget and immediately evicts down to it.
// Shrinking to <= 0 empties the cache and stops it storing new entries.
func (c *Cache) Resize(capacity int) {
	c.capacity.Store(int64(capacity))
	limit := c.perShardCap()
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		evicted := uint64(0)
		for s.lru.Len() > limit {
			back := s.lru.Back()
			s.lru.Remove(back)
			delete(s.items, back.Value.(*cacheItem).key)
			evicted++
		}
		s.mu.Unlock()
		if evicted > 0 {
			c.evictions.Add(evicted)
		}
	}
}

// Reset drops every entry and zeroes the counters; the capacity is kept.
func (c *Cache) Reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.items = make(map[string]*list.Element)
		s.lru.Init()
		s.mu.Unlock()
	}
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	c.bypasses.Store(0)
}
