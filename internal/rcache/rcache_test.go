package rcache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

func TestGetPutRoundTrip(t *testing.T) {
	c := NewWithShards(8, 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", Entry{IDs: []int64{1, 2, 3}, Stats: core.Stats{ResultSize: 3}})
	ent, ok := c.Get("a")
	if !ok {
		t.Fatal("miss after Put")
	}
	if len(ent.IDs) != 3 || ent.IDs[0] != 1 || ent.Stats.ResultSize != 3 {
		t.Fatalf("wrong entry back: %+v", ent)
	}
	got := c.Counters()
	want := Counters{Hits: 1, Misses: 1}
	if got != want {
		t.Fatalf("counters %+v, want %+v", got, want)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// Single shard, capacity 3: inserting a 4th entry evicts the least
	// recently used, and Get refreshes recency.
	c := NewWithShards(3, 1)
	c.Put("a", Entry{})
	c.Put("b", Entry{})
	c.Put("c", Entry{})
	c.Get("a") // refresh a; b is now LRU
	c.Put("d", Entry{})
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
	if ev := c.Counters().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestPutReplacesExisting(t *testing.T) {
	c := NewWithShards(4, 1)
	c.Put("k", Entry{IDs: []int64{1}})
	c.Put("k", Entry{IDs: []int64{9, 9}})
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if ent, _ := c.Get("k"); len(ent.IDs) != 2 || ent.IDs[0] != 9 {
		t.Fatalf("replacement not visible: %+v", ent)
	}
}

func TestZeroCapacityStoresNothing(t *testing.T) {
	c := New(0)
	c.Put("a", Entry{IDs: []int64{1}})
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("zero-capacity cache must always miss")
	}
}

func TestResizeEvictsDown(t *testing.T) {
	c := NewWithShards(16, 1)
	for i := 0; i < 16; i++ {
		c.Put(fmt.Sprintf("k%d", i), Entry{})
	}
	if c.Len() != 16 {
		t.Fatalf("Len = %d, want 16", c.Len())
	}
	c.Resize(4)
	if c.Len() != 4 {
		t.Fatalf("after Resize(4), Len = %d", c.Len())
	}
	if c.Capacity() != 4 {
		t.Fatalf("Capacity = %d, want 4", c.Capacity())
	}
	// The four most recently used keys survive.
	for i := 12; i < 16; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d should have survived the resize", i)
		}
	}
	c.Resize(0)
	if c.Len() != 0 {
		t.Fatalf("after Resize(0), Len = %d", c.Len())
	}
}

func TestResetDropsEntriesAndCounters(t *testing.T) {
	c := New(8)
	c.Put("a", Entry{})
	c.Get("a")
	c.Get("zzz")
	c.AddBypass()
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Reset", c.Len())
	}
	if got := c.Counters(); got != (Counters{}) {
		t.Fatalf("counters %+v after Reset", got)
	}
	if c.Capacity() != 8 {
		t.Fatalf("Reset changed capacity to %d", c.Capacity())
	}
}

func TestShardNormalization(t *testing.T) {
	if n := len(NewWithShards(100, 5).shards); n != 8 {
		t.Fatalf("5 shards normalized to %d, want 8", n)
	}
	// Shards never outnumber a positive capacity.
	if n := len(NewWithShards(2, 64).shards); n > 2 {
		t.Fatalf("capacity 2 got %d shards", n)
	}
	if c := New(1000); len(c.shards)&(len(c.shards)-1) != 0 {
		t.Fatalf("default shard count %d not a power of two", len(c.shards))
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%96)
				if ent, ok := c.Get(key); ok {
					if len(ent.IDs) != 1 {
						t.Errorf("corrupt entry under %s: %+v", key, ent)
						return
					}
				} else {
					c.Put(key, Entry{IDs: []int64{int64(i)}})
				}
				if i%100 == 0 {
					c.Counters()
					c.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("Len %d exceeds capacity 64", c.Len())
	}
}

func TestHitRate(t *testing.T) {
	if hr := (Counters{}).HitRate(); hr != 0 {
		t.Fatalf("empty HitRate = %v", hr)
	}
	if hr := (Counters{Hits: 3, Misses: 1}).HitRate(); hr != 0.75 {
		t.Fatalf("HitRate = %v, want 0.75", hr)
	}
}
