// Package stats provides the summary statistics used by the experiment
// harness to aggregate repeated trials, mirroring the paper's protocol of
// averaging many randomized runs per configuration.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if n > 1 {
		s.StdDev = math.Sqrt(ss / float64(n-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 0.50)
	s.P95 = Percentile(sorted, 0.95)
	return s
}

// Percentile returns the p-quantile (0 <= p <= 1) of an ascending-sorted
// sample using linear interpolation. It returns 0 for empty input.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p95=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P95, s.Max)
}

// Accumulator collects observations incrementally (Welford's algorithm for
// mean/variance, exact min/max). It avoids retaining samples when
// percentiles are not needed.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// StdDev returns the sample standard deviation (0 for n < 2).
func (a *Accumulator) StdDev() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n-1))
}

// Min returns the smallest observation (0 when empty).
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return 0
	}
	return a.min
}

// Max returns the largest observation (0 when empty).
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return 0
	}
	return a.max
}
