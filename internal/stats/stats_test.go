package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.StdDev != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %v", s.Mean)
	}
	// Sample stddev of this classic dataset is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", s.StdDev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.P50 != 4.5 {
		t.Errorf("P50 = %v, want 4.5", s.P50)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.Mean != 3.5 || s.Min != 3.5 || s.Max != 3.5 || s.P50 != 3.5 || s.P95 != 3.5 {
		t.Errorf("single-value summary = %+v", s)
	}
	if s.StdDev != 0 {
		t.Errorf("single-value stddev = %v", s.StdDev)
	}
}

func TestPercentileEdges(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {1, 5}, {-0.5, 1}, {1.5, 5}, {0.5, 3}, {0.25, 2},
	}
	for _, tc := range cases {
		if got := Percentile(sorted, tc.p); got != tc.want {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

func TestAccumulatorMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var acc Accumulator
	for i := range xs {
		xs[i] = rng.NormFloat64()*10 + 5
		acc.Add(xs[i])
	}
	s := Summarize(xs)
	if acc.N() != s.N {
		t.Errorf("N: %d vs %d", acc.N(), s.N)
	}
	if math.Abs(acc.Mean()-s.Mean) > 1e-9 {
		t.Errorf("Mean: %v vs %v", acc.Mean(), s.Mean)
	}
	if math.Abs(acc.StdDev()-s.StdDev) > 1e-9 {
		t.Errorf("StdDev: %v vs %v", acc.StdDev(), s.StdDev)
	}
	if acc.Min() != s.Min || acc.Max() != s.Max {
		t.Errorf("min/max: %v/%v vs %v/%v", acc.Min(), acc.Max(), s.Min, s.Max)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var acc Accumulator
	if acc.N() != 0 || acc.Mean() != 0 || acc.StdDev() != 0 || acc.Min() != 0 || acc.Max() != 0 {
		t.Error("empty accumulator should be all zeros")
	}
}

func TestSummaryStringIsStable(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if got := s.String(); got == "" {
		t.Error("empty String()")
	}
}

func TestMeanWithinMinMaxProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Min <= s.P50 && s.P50 <= s.Max && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
