// Package earcut triangulates simple polygons by ear clipping and builds
// area-weighted samplers over the triangulation.
//
// The area-query algorithm seeds from "an arbitrary position in A"
// (Algorithm 1, line 3). A triangulation-backed sampler draws that
// position uniformly from the polygon's interior, which is the natural
// reading of "arbitrary" and enables the seed-anchor ablation
// (BenchmarkAblationSeedAnchor).
package earcut

import (
	"errors"
	"math/rand"

	"repro/internal/geom"
)

// ErrNotSimple is returned when the ring cannot be triangulated (self-
// intersecting or degenerate input).
var ErrNotSimple = errors.New("earcut: ring is not a simple polygon")

// Triangle is one triangle of a triangulation, as indices into the input
// ring.
type Triangle [3]int

// Triangulate decomposes a simple ring (no holes) into n-2 triangles by
// ear clipping. The ring may wind either way. O(n²) worst case, which is
// fine for query polygons (tens of vertices).
func Triangulate(ring geom.Ring) ([]Triangle, error) {
	n := len(ring)
	if n < 3 {
		return nil, ErrNotSimple
	}
	// Work on a CCW copy of the index list.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if !ring.IsCounterClockwise() {
		for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
			idx[i], idx[j] = idx[j], idx[i]
		}
	}

	var out []Triangle
	remaining := len(idx)
	guard := 0
	for remaining > 3 {
		clipped := false
		for i := 0; i < remaining; i++ {
			prev := idx[(i-1+remaining)%remaining]
			cur := idx[i]
			next := idx[(i+1)%remaining]
			if !isEar(ring, idx[:remaining], prev, cur, next) {
				continue
			}
			out = append(out, Triangle{prev, cur, next})
			copy(idx[i:], idx[i+1:remaining])
			remaining--
			clipped = true
			break
		}
		if !clipped {
			// No ear found: non-simple or fully degenerate remainder.
			return nil, ErrNotSimple
		}
		if guard++; guard > 2*n*n {
			return nil, ErrNotSimple
		}
	}
	out = append(out, Triangle{idx[0], idx[1], idx[2]})

	// Cross-check: for a simple ring the clipped triangle areas sum to the
	// ring's absolute signed area. Self-intersecting rings that slipped
	// through ear detection (e.g. bowties) fail this identity.
	var sum float64
	for _, t := range out {
		sum += triArea(ring[t[0]], ring[t[1]], ring[t[2]])
	}
	want := ring.Area()
	if diff := sum - want; diff > 1e-9*(1+want) || diff < -1e-9*(1+want) {
		return nil, ErrNotSimple
	}
	return out, nil
}

// isEar reports whether cur is a convex vertex whose ear triangle contains
// no other remaining vertex.
func isEar(ring geom.Ring, remaining []int, prev, cur, next int) bool {
	a, b, c := ring[prev], ring[cur], ring[next]
	if geom.Orient(a, b, c) != geom.CounterClockwise {
		return false // reflex or collinear vertex
	}
	for _, vi := range remaining {
		if vi == prev || vi == cur || vi == next {
			continue
		}
		if pointInTriangle(ring[vi], a, b, c) {
			return false
		}
	}
	return true
}

// pointInTriangle reports whether p lies in the closed CCW triangle abc.
func pointInTriangle(p, a, b, c geom.Point) bool {
	return geom.Orient(a, b, p) != geom.Clockwise &&
		geom.Orient(b, c, p) != geom.Clockwise &&
		geom.Orient(c, a, p) != geom.Clockwise
}

// Sampler draws uniform random points from the interior of a simple
// polygon via its triangulation (area-weighted triangle choice, then
// uniform barycentric sampling).
type Sampler struct {
	ring      geom.Ring
	tris      []Triangle
	cumAreas  []float64
	totalArea float64
}

// NewSampler triangulates the polygon's outer ring and returns a sampler.
// Holes are not supported; pass the outer ring of hole-free query
// polygons.
func NewSampler(ring geom.Ring) (*Sampler, error) {
	tris, err := Triangulate(ring)
	if err != nil {
		return nil, err
	}
	s := &Sampler{ring: ring, tris: tris}
	for _, t := range tris {
		ar := triArea(ring[t[0]], ring[t[1]], ring[t[2]])
		s.totalArea += ar
		s.cumAreas = append(s.cumAreas, s.totalArea)
	}
	if s.totalArea <= 0 {
		return nil, ErrNotSimple
	}
	return s, nil
}

// TotalArea returns the polygon area implied by the triangulation.
func (s *Sampler) TotalArea() float64 { return s.totalArea }

// NumTriangles returns the triangulation size (always n-2).
func (s *Sampler) NumTriangles() int { return len(s.tris) }

// Sample returns a uniform random interior point.
func (s *Sampler) Sample(rng *rand.Rand) geom.Point {
	target := rng.Float64() * s.totalArea
	// Binary search the cumulative areas.
	lo, hi := 0, len(s.cumAreas)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cumAreas[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	t := s.tris[lo]
	a, b, c := s.ring[t[0]], s.ring[t[1]], s.ring[t[2]]
	// Uniform barycentric sample.
	u, v := rng.Float64(), rng.Float64()
	if u+v > 1 {
		u, v = 1-u, 1-v
	}
	return geom.Point{
		X: a.X + u*(b.X-a.X) + v*(c.X-a.X),
		Y: a.Y + u*(b.Y-a.Y) + v*(c.Y-a.Y),
	}
}

func triArea(a, b, c geom.Point) float64 {
	ar := (b.Sub(a)).Cross(c.Sub(a)) / 2
	if ar < 0 {
		return -ar
	}
	return ar
}
