package earcut

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/workload"
)

func square() geom.Ring {
	return geom.Ring{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)}
}

func lRing() geom.Ring {
	return geom.Ring{
		geom.Pt(0, 0), geom.Pt(2, 0), geom.Pt(2, 1), geom.Pt(1, 1), geom.Pt(1, 2), geom.Pt(0, 2),
	}
}

func TestTriangulateBasicShapes(t *testing.T) {
	for name, ring := range map[string]geom.Ring{
		"triangle": {geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0.5, 1)},
		"square":   square(),
		"lshape":   lRing(),
	} {
		tris, err := Triangulate(ring)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tris) != len(ring)-2 {
			t.Errorf("%s: %d triangles, want %d", name, len(tris), len(ring)-2)
		}
		var sum float64
		pg := geom.Polygon{Outer: ring}
		for _, tr := range tris {
			a, b, c := ring[tr[0]], ring[tr[1]], ring[tr[2]]
			sum += triArea(a, b, c)
			centroid := geom.Pt((a.X+b.X+c.X)/3, (a.Y+b.Y+c.Y)/3)
			if !pg.ContainsPoint(centroid) {
				t.Errorf("%s: triangle centroid %v outside polygon", name, centroid)
			}
		}
		if math.Abs(sum-ring.Area()) > 1e-9 {
			t.Errorf("%s: triangle areas sum to %v, polygon area %v", name, sum, ring.Area())
		}
	}
}

func TestTriangulateWindingInsensitive(t *testing.T) {
	cw := append(geom.Ring(nil), lRing()...)
	cw.Reverse()
	tris, err := Triangulate(cw)
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != len(cw)-2 {
		t.Errorf("CW input: %d triangles", len(tris))
	}
}

func TestTriangulateRejectsDegenerate(t *testing.T) {
	if _, err := Triangulate(geom.Ring{geom.Pt(0, 0), geom.Pt(1, 1)}); err == nil {
		t.Error("2-vertex ring should fail")
	}
	bowtie := geom.Ring{geom.Pt(0, 0), geom.Pt(2, 2), geom.Pt(2, 0), geom.Pt(0, 2)}
	if _, err := Triangulate(bowtie); err == nil {
		t.Error("bowtie should fail to triangulate")
	}
}

func TestTriangulateRandomPolygons(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		pg := workload.RandomPolygon(rng, workload.PolygonConfig{
			Vertices:  4 + rng.Intn(20),
			QuerySize: 0.1,
		}, geom.NewRect(0, 0, 1, 1))
		tris, err := Triangulate(pg.Outer)
		if err != nil {
			t.Fatalf("trial %d: %v\nring: %v", trial, err, pg.Outer)
		}
		var sum float64
		for _, tr := range tris {
			sum += triArea(pg.Outer[tr[0]], pg.Outer[tr[1]], pg.Outer[tr[2]])
		}
		if math.Abs(sum-pg.Area()) > 1e-9*math.Max(1, pg.Area()) {
			t.Fatalf("trial %d: area %v vs %v", trial, sum, pg.Area())
		}
	}
}

func TestSamplerUniformity(t *testing.T) {
	// Sample the L-shape; all samples inside, and the two arms receive
	// sample counts proportional to their areas.
	s, err := NewSampler(lRing())
	if err != nil {
		t.Fatal(err)
	}
	if s.NumTriangles() != 4 {
		t.Errorf("NumTriangles = %d", s.NumTriangles())
	}
	if math.Abs(s.TotalArea()-3) > 1e-12 {
		t.Errorf("TotalArea = %v", s.TotalArea())
	}
	pg := geom.Polygon{Outer: lRing()}
	rng := rand.New(rand.NewSource(2))
	inBase, inArm := 0, 0 // base: y<1 (area 2); arm: y>1 (area 1)
	const n = 30000
	for i := 0; i < n; i++ {
		p := s.Sample(rng)
		if !pg.ContainsPoint(p) {
			t.Fatalf("sample %v outside polygon", p)
		}
		if p.Y < 1 {
			inBase++
		} else {
			inArm++
		}
	}
	frac := float64(inBase) / n
	if math.Abs(frac-2.0/3.0) > 0.02 {
		t.Errorf("base fraction = %v, want ~0.667 (uniformity broken)", frac)
	}
	_ = inArm
}

func TestSamplerOnRandomQueryPolygons(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		pg := workload.RandomPolygon(rng, workload.PolygonConfig{
			Vertices:  10,
			QuerySize: 0.05,
		}, geom.NewRect(0, 0, 1, 1))
		s, err := NewSampler(pg.Outer)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < 50; i++ {
			p := s.Sample(rng)
			if !pg.ContainsPoint(p) {
				t.Fatalf("trial %d: sample %v escaped", trial, p)
			}
		}
	}
}
