// Package shard partitions a point set into spatially coherent shards and
// answers area queries by scatter-gather over independent per-shard
// engines.
//
// Shards are contiguous runs of the dataset's Hilbert order (package
// hilbert), so each shard is a compact tile of the plane with a tight
// bounding rectangle. Every shard owns a full core.Engine — its own
// spatial index, Voronoi topology and (when the builder attaches one)
// record store — which restores the paper's per-query guarantees inside
// the shard while bounding per-engine data volume. A query is answered by
// pruning shards whose bounds miss the region's MBR, fanning the
// survivors onto the exec worker pool, and merging the per-shard results
// under a stable local-to-global id remapping; k-nearest-neighbor queries
// instead walk shards in MINDIST order, expanding only while a shard's
// bounds can still beat the current k-th distance.
//
// The per-shard Voronoi diagrams differ from the single-engine diagram —
// adjacency never crosses a shard boundary — but the query result does
// not: the BFS within each shard finds exactly that shard's points inside
// the region, and the union over shards is exactly the global result set.
// Results are returned in ascending global id order, identical for every
// shard count.
//
// Every query path takes a context.Context: cancellation aborts
// un-dispatched shard tasks at the worker pool (exec checks between chunk
// claims) and running per-shard queries at candidate boundaries (core),
// surfacing as ctx.Err() with partial statistics.
//
// One algorithmic consequence of partitioning: a shard's diagram is a
// sub-sample of the dataset, so its Voronoi cells are larger and its
// Delaunay segments longer. The paper's published expansion rule (expand
// across a boundary point only when the connecting segment intersects the
// region) leans on full-density geometry — on a sparse shard diagram a
// long boundary segment can step right over a thin lobe of a concave
// query, stranding a result island (observed on ~2% of 1%-area queries
// over a 200k-point dataset at 8 shards). Shard-local scatter therefore
// runs VoronoiBFS with the conservative cell-intersection expansion
// (VoronoiBFSStrict's rule), which is complete at any density; the strict
// and traditional methods are forwarded unchanged. Callers still see the
// method they asked for in Stats.Method.
package shard

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/geom"
	"repro/internal/hilbert"
	"repro/internal/obs"
)

// BuildFunc constructs the engine of one shard over its local points
// (local id i is pts[i]). bounds is the universe rectangle, shared by all
// shards so per-shard Voronoi cells clip identically to the unsharded
// engine's. The function must be safe to call concurrently for distinct
// shards; shard is the shard's index for builders that record per-shard
// state (e.g. the record store) on the side.
type BuildFunc func(shard int, pts []geom.Point, bounds geom.Rect) (*core.Engine, error)

// Config parameterizes New.
type Config struct {
	// Shards is the requested shard count, clamped to [1, len(points)].
	Shards int
	// Parallelism bounds the worker pool used for shard construction and
	// query scatter; <= 0 means runtime.GOMAXPROCS.
	Parallelism int
	// Build constructs one shard's engine; required.
	Build BuildFunc
	// Metrics, when non-nil, instruments the scatter-gather query path
	// (see Metrics). Nil disables instrumentation at one pointer
	// comparison per query.
	Metrics *Metrics
}

// Metrics instruments the scatter-gather path. Any field may be nil
// (obs metrics are nil-safe); a nil *Metrics disables instrumentation.
type Metrics struct {
	// FanOut is the distribution of surviving (scattered-to) shards per
	// query after MBR pruning; its unit is a shard count, not ns.
	FanOut *obs.Histogram
	// ShardsPruned counts shards skipped by MBR pruning.
	ShardsPruned *obs.Counter
	// ShardQueries counts per-shard scatter tasks executed.
	ShardQueries *obs.Counter
	// ShardLatency is the per-shard task latency in ns; the p99/p50 gap
	// is the straggler skew a scatter waits on.
	ShardLatency *obs.Histogram
	// Exec instruments the worker pool the scatter runs on.
	Exec *exec.Metrics
}

// oneShard is a fully built shard: its engine, the tight bounding
// rectangle of its points (the pruning key), and the local-to-global id
// remapping.
type oneShard struct {
	eng    *core.Engine
	bounds geom.Rect
	global []int64 // local id -> global id, ascending
	pts    []geom.Point
}

// Engine answers area queries over a Hilbert-partitioned point set by
// scatter-gather. Like core.Engine it is immutable after construction and
// safe for concurrent use from any number of goroutines.
type Engine struct {
	shards      []oneShard
	points      []geom.Point // global id -> position
	bounds      geom.Rect    // universe
	parallelism int
	met         *Metrics
}

// observeFanOut records one query's scatter width into the metrics and
// the trace; no-op when neither is attached.
func (e *Engine) observeFanOut(tr *obs.QueryTrace, alive int) {
	if e.met == nil && tr == nil {
		return
	}
	if e.met != nil {
		e.met.FanOut.ObserveN(uint64(alive))
		e.met.ShardsPruned.Add(uint64(len(e.shards) - alive))
	}
	tr.SetFanOut(alive)
}

// scatterOpts are the pool options every query scatter uses.
func (e *Engine) scatterOpts() exec.Options {
	opts := exec.Options{NumWorkers: e.parallelism, Chunk: 1}
	if e.met != nil {
		opts.Metrics = e.met.Exec
	}
	return opts
}

// New partitions points into cfg.Shards Hilbert-contiguous shards and
// builds every shard's engine (in parallel on the scatter pool). bounds
// must contain every point. Global ids are the indexes of points, exactly
// as in an unsharded engine over the same slice.
func New(points []geom.Point, bounds geom.Rect, cfg Config) (*Engine, error) {
	if cfg.Build == nil {
		return nil, fmt.Errorf("shard: Config.Build is required")
	}
	if len(points) == 0 {
		return nil, core.ErrNoData
	}

	sc := hilbert.NewScaler(bounds.MinX, bounds.MinY, bounds.MaxX, bounds.MaxY, hilbert.Order)
	keys := make([]uint64, len(points))
	for i, p := range points {
		keys[i] = sc.D(p.X, p.Y)
	}
	runs := hilbert.Partition(keys, cfg.Shards)

	e := &Engine{
		shards:      make([]oneShard, len(runs)),
		points:      append([]geom.Point(nil), points...),
		bounds:      bounds,
		parallelism: cfg.Parallelism,
		met:         cfg.Metrics,
	}
	for si, run := range runs {
		// Ascending global order inside the shard keeps the remapping
		// stable across shard counts and makes merged output ordering
		// independent of the Hilbert traversal direction.
		global := make([]int64, len(run))
		for i, idx := range run {
			global[i] = int64(idx)
		}
		sort.Slice(global, func(a, b int) bool { return global[a] < global[b] })
		pts := make([]geom.Point, len(global))
		mbr := geom.EmptyRect()
		for i, id := range global {
			pts[i] = points[id]
			mbr = mbr.ExtendPoint(pts[i])
		}
		e.shards[si] = oneShard{bounds: mbr, global: global, pts: pts}
	}

	err := exec.Run(context.Background(), len(e.shards),
		exec.Options{NumWorkers: cfg.Parallelism, Chunk: 1},
		func(_, si int) error {
			eng, err := cfg.Build(si, e.shards[si].pts, bounds)
			if err != nil {
				return fmt.Errorf("building shard %d (%d points): %w", si, len(e.shards[si].pts), err)
			}
			e.shards[si].eng = eng
			return nil
		})
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	return e, nil
}

// NumShards returns the shard count (after clamping).
func (e *Engine) NumShards() int { return len(e.shards) }

// ShardSizes returns the per-shard point counts.
func (e *Engine) ShardSizes() []int {
	out := make([]int, len(e.shards))
	for i := range e.shards {
		out[i] = len(e.shards[i].pts)
	}
	return out
}

// ShardBounds returns the tight bounding rectangle of shard si's points.
func (e *Engine) ShardBounds(si int) geom.Rect { return e.shards[si].bounds }

// ShardEngine returns shard si's engine, for instrumentation.
func (e *Engine) ShardEngine(si int) *core.Engine { return e.shards[si].eng }

// Len returns the total point count.
func (e *Engine) Len() int { return len(e.points) }

// Bounds returns the universe rectangle.
func (e *Engine) Bounds() geom.Rect { return e.bounds }

// Point returns the position of a global id; it panics when id is out of
// range. PointOK is the bounds-checked variant.
func (e *Engine) Point(id int64) geom.Point { return e.points[id] }

// PointOK returns the position of a global id and whether the id is in
// range.
func (e *Engine) PointOK(id int64) (geom.Point, bool) {
	if id < 0 || id >= int64(len(e.points)) {
		return geom.Point{}, false
	}
	return e.points[id], true
}

// survivors appends to dst the indexes of shards whose bounds intersect
// the region's MBR — the only shards that can contribute results.
func (e *Engine) survivors(dst []int, region core.Region) []int {
	mbr := region.Bounds()
	for si := range e.shards {
		if e.shards[si].bounds.Intersects(mbr) {
			dst = append(dst, si)
		}
	}
	return dst
}

// shardMethod maps the caller's method to the one a shard executes:
// VoronoiBFS upgrades to the strict cell-intersection expansion, which
// stays complete on the shard's sub-sampled (sparser) Voronoi diagram
// where the published segment heuristic can strand result islands. See
// the package comment.
func shardMethod(m core.Method) core.Method {
	if m == core.VoronoiBFS {
		return core.VoronoiBFSStrict
	}
	return m
}

// shardSpec is the per-shard execution spec: the caller's spec with the
// method mapped shard-local and the reuse buffer stripped (per-shard
// results cannot share one buffer).
func shardSpec(spec core.QuerySpec) core.QuerySpec {
	spec.Method = shardMethod(spec.Method)
	spec.Dest = nil
	return spec
}

// shardQuery runs one region on one shard with the shard-local spec.
// There is deliberately no fallback to the segment rule when the shard's
// data cannot provide Voronoi cells (core.ErrStrictNotSupported): silently
// degrading would break the package's exact-result guarantee, so the
// error surfaces to the caller instead. Both provided DataAccess types
// carry a per-shard packed cell arena (core.CellArenaSource), so the
// upgraded strict expansion reads each shard's clipped cells from dense
// memory without materializing rings; a custom BuildFunc must implement
// CellArenaSource or CellSource too, or its callers must request
// Traditional/VoronoiBFSStrict explicitly.
func (s *oneShard) shardQuery(ctx context.Context, region core.Region, spec core.QuerySpec) ([]int64, core.Stats, error) {
	return s.eng.QueryRegionSpec(ctx, region, shardSpec(spec))
}

// budgetedQuery is shardQuery for limited result queries: every scatter
// task of one query draws from a shared budget of spec.Limit result slots
// and stops the moment the budget is spent. Without it each shard would
// honor the limit locally and scan (and materialize) up to Limit results
// per shard — up to shards×Limit work for a query that returns Limit ids.
// A slot is claimed per discovered result, so across all shards at most
// spec.Limit ids are materialized; which ones depends on shard timing,
// within the Limit option's documented latitude.
func (s *oneShard) budgetedQuery(ctx context.Context, region core.Region, spec core.QuerySpec, budget *atomic.Int64) ([]int64, core.Stats, error) {
	local := shardSpec(spec)
	var ids []int64
	st, err := s.eng.EachRegion(ctx, region, local, func(id int64, _ geom.Point) bool {
		if budget.Add(-1) < 0 {
			return false
		}
		ids = append(ids, id)
		return true
	})
	return ids, st, err
}

// remap converts shard-local result ids to global ids in place-free
// fashion (a fresh slice is returned; local is not retained).
func (s *oneShard) remap(local []int64) []int64 {
	out := make([]int64, len(local))
	for i, id := range local {
		out[i] = s.global[id]
	}
	return out
}

// mergeSorted concatenates per-shard global id slices into dst (reusing
// its capacity; pass nil for a fresh slice) and sorts them ascending, the
// engine's canonical result order. An empty result with a reuse buffer
// returns dst[:0], not nil — the unsharded engines' Dest contract.
func mergeSorted(dst []int64, parts [][]int64) []int64 {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		if dst == nil {
			return nil
		}
		return dst[:0]
	}
	if dst == nil {
		dst = make([]int64, 0, total)
	} else {
		dst = dst[:0]
	}
	for _, p := range parts {
		dst = append(dst, p...)
	}
	sort.Slice(dst, func(a, b int) bool { return dst[a] < dst[b] })
	return dst
}

// finalize recomputes the result-dependent aggregate counters after the
// gather step (merging, Limit truncation and CountOnly capping change the
// effective result size).
func finalize(agg *core.Stats, resultSize int) {
	agg.ResultSize = resultSize
	agg.RedundantValidations = agg.Candidates - resultSize
}

// Query answers an area query with the chosen method, returning global
// ids in ascending order. Stats aggregate the per-shard work (Duration is
// summed per-shard time, comparable with a sequential run).
func (e *Engine) Query(m core.Method, area geom.Polygon) ([]int64, core.Stats, error) {
	return e.QueryRegion(m, core.PolygonRegion(area))
}

// QueryRegion is Query over a prepared Region (polygon, circle, custom).
func (e *Engine) QueryRegion(m core.Method, region core.Region) ([]int64, core.Stats, error) {
	return e.QueryRegionSpec(context.Background(), region, core.QuerySpec{Method: m})
}

// QueryRegionSpec is the context-aware spec-driven scatter-gather query:
// shards whose bounds miss the region are pruned, survivors fan out onto
// the worker pool, and per-shard results merge into ascending global id
// order. spec.CountOnly skips the merge entirely (the count is
// Stats.ResultSize); spec.Limit is a global bound enforced by a budget
// shared across the scatter (at most Limit ids are materialized in total,
// not per shard); spec.Dest backs the merged slice.
func (e *Engine) QueryRegionSpec(ctx context.Context, region core.Region, spec core.QuerySpec) ([]int64, core.Stats, error) {
	agg := core.Stats{Method: spec.Method}
	alive := e.survivors(nil, region)
	e.observeFanOut(spec.Trace, len(alive))
	if len(alive) == 0 {
		if err := ctx.Err(); err != nil || spec.CountOnly || spec.Dest == nil {
			return nil, agg, err
		}
		return spec.Dest[:0], agg, nil
	}
	// Limited result queries share one budget of Limit slots across the
	// scatter, so the whole fan-out materializes at most Limit ids instead
	// of Limit per shard.
	var budget *atomic.Int64
	if spec.Limit > 0 && !spec.CountOnly {
		budget = new(atomic.Int64)
		budget.Store(int64(spec.Limit))
	}
	opts := e.scatterOpts()
	parts := make([][]int64, len(alive))
	workerStats := make([]core.Stats, opts.Workers(len(alive)))
	err := exec.Run(ctx, len(alive), opts, func(worker, i int) error {
		s := &e.shards[alive[i]]
		var (
			local []int64
			st    core.Stats
			err   error
			t0    time.Time
		)
		if e.met != nil {
			t0 = time.Now()
		}
		if budget != nil {
			local, st, err = s.budgetedQuery(ctx, region, spec, budget)
		} else {
			local, st, err = s.shardQuery(ctx, region, spec)
		}
		if e.met != nil {
			e.met.ShardQueries.Inc()
			e.met.ShardLatency.Observe(time.Since(t0))
		}
		workerStats[worker].Add(st)
		if err != nil {
			return fmt.Errorf("shard %d: %w", alive[i], err)
		}
		if !spec.CountOnly {
			parts[i] = s.remap(local)
		}
		return nil
	})
	for _, ws := range workerStats {
		agg.Add(ws)
	}
	if err != nil {
		return nil, agg, wrapRunErr(err)
	}
	if spec.CountOnly {
		// Per-shard counts summed by Add; cap like a merged+truncated
		// result would be.
		if spec.Limit > 0 && agg.ResultSize > spec.Limit {
			finalize(&agg, spec.Limit)
		}
		return nil, agg, nil
	}
	var mergeStart time.Time
	if spec.Trace != nil {
		mergeStart = time.Now()
	}
	out := mergeSorted(spec.Dest, parts)
	if spec.Limit > 0 && len(out) > spec.Limit {
		out = out[:spec.Limit]
	}
	if spec.Trace != nil {
		spec.Trace.Add(obs.PhaseMerge, time.Since(mergeStart))
	}
	finalize(&agg, len(out))
	return out, agg, nil
}

// EachRegion streams an area query: yield receives each result (global id
// and position) as the per-shard Voronoi BFS discovers it. Shards are
// walked one after another, each streaming in discovery order — global
// ids of different shards interleave (Hilbert partitioning scatters the
// original indexes), so no overall id ordering is implied. yield
// returning false stops the query. spec.Limit bounds the total number of
// yields across shards; spec.CountOnly and spec.Dest are ignored.
func (e *Engine) EachRegion(ctx context.Context, region core.Region, spec core.QuerySpec, yield func(id int64, pos geom.Point) bool) (core.Stats, error) {
	agg := core.Stats{Method: spec.Method}
	alive := e.survivors(nil, region)
	e.observeFanOut(spec.Trace, len(alive))
	remaining := spec.Limit
	for _, si := range alive {
		local := shardSpec(spec)
		local.CountOnly = false
		if spec.Limit > 0 {
			local.Limit = remaining
		}
		s := &e.shards[si]
		stopped := false
		var t0 time.Time
		if e.met != nil {
			t0 = time.Now()
		}
		st, err := s.eng.EachRegion(ctx, region, local, func(id int64, pos geom.Point) bool {
			if !yield(s.global[id], pos) {
				stopped = true
				return false
			}
			return true
		})
		if e.met != nil {
			e.met.ShardQueries.Inc()
			e.met.ShardLatency.Observe(time.Since(t0))
		}
		agg.Add(st)
		if err != nil {
			finalize(&agg, agg.ResultSize)
			return agg, fmt.Errorf("shard: shard %d: %w", si, err)
		}
		if stopped {
			break
		}
		if spec.Limit > 0 {
			remaining -= st.ResultSize
			if remaining <= 0 {
				break
			}
		}
	}
	finalize(&agg, agg.ResultSize)
	return agg, ctx.Err()
}

// Count answers an area query returning only the number of matching
// points; pruned shards cost nothing and no merged result is built.
func (e *Engine) Count(m core.Method, area geom.Polygon) (int, core.Stats, error) {
	_, agg, err := e.QueryRegionSpec(context.Background(), core.PolygonRegion(area),
		core.QuerySpec{Method: m, CountOnly: true})
	if err != nil {
		return 0, agg, err
	}
	return agg.ResultSize, agg, nil
}

// QueryRegions answers a batch of regions, scattering every (region,
// surviving shard) pair onto one worker pool so both intra-query and
// inter-query parallelism are exploited. Results align with regions; each
// is in ascending global id order. The aggregate Stats sum per-shard,
// per-query work.
func (e *Engine) QueryRegions(m core.Method, regions []core.Region) ([][]int64, core.Stats, error) {
	return e.QueryRegionsSpec(context.Background(), regions, core.QuerySpec{Method: m})
}

// QueryRegionsSpec is the context-aware spec-driven batch: every (region,
// surviving shard) pair is one pool task; cancellation abandons
// un-dispatched pairs. With spec.CountOnly the per-query slices stay nil
// and the aggregate match count is Stats.ResultSize. spec.Dest is ignored
// (one buffer cannot back a batch of results).
func (e *Engine) QueryRegionsSpec(ctx context.Context, regions []core.Region, spec core.QuerySpec) ([][]int64, core.Stats, error) {
	agg := core.Stats{Method: spec.Method}
	if len(regions) == 0 {
		return nil, agg, nil
	}
	spec.Dest = nil

	// Scatter: one task per (query, surviving shard) pair.
	type task struct {
		query, shard int
		slot         int // index into the query's parts slice
	}
	var tasks []task
	parts := make([][][]int64, len(regions)) // query -> shard slot -> global ids
	counts := make([][]int, len(regions))    // query -> shard slot -> match count
	alive := make([]int, 0, len(e.shards))
	for qi, region := range regions {
		alive = e.survivors(alive[:0], region)
		e.observeFanOut(spec.Trace, len(alive))
		parts[qi] = make([][]int64, len(alive))
		counts[qi] = make([]int, len(alive))
		for slot, si := range alive {
			tasks = append(tasks, task{query: qi, shard: si, slot: slot})
		}
	}
	// The limit applies per region: each query's scatter tasks share one
	// budget of Limit result slots (see budgetedQuery).
	var budgets []atomic.Int64
	if spec.Limit > 0 && !spec.CountOnly {
		budgets = make([]atomic.Int64, len(regions))
		for qi := range budgets {
			budgets[qi].Store(int64(spec.Limit))
		}
	}

	// Chunk 1, as in QueryRegionSpec: each task is a full per-shard query —
	// expensive enough that claiming several per steal would serialize
	// small batches.
	opts := e.scatterOpts()
	workerStats := make([]core.Stats, opts.Workers(len(tasks)))
	err := exec.Run(ctx, len(tasks), opts, func(worker, i int) error {
		tk := tasks[i]
		s := &e.shards[tk.shard]
		var (
			local []int64
			st    core.Stats
			err   error
			t0    time.Time
		)
		if e.met != nil {
			t0 = time.Now()
		}
		if budgets != nil {
			local, st, err = s.budgetedQuery(ctx, regions[tk.query], spec, &budgets[tk.query])
		} else {
			local, st, err = s.shardQuery(ctx, regions[tk.query], spec)
		}
		if e.met != nil {
			e.met.ShardQueries.Inc()
			e.met.ShardLatency.Observe(time.Since(t0))
		}
		workerStats[worker].Add(st)
		if err != nil {
			return fmt.Errorf("query %d shard %d: %w", tk.query, tk.shard, err)
		}
		if spec.CountOnly {
			counts[tk.query][tk.slot] = st.ResultSize
		} else {
			parts[tk.query][tk.slot] = s.remap(local)
		}
		return nil
	})
	for _, ws := range workerStats {
		agg.Add(ws)
	}
	if err != nil {
		return nil, agg, wrapRunErr(err)
	}

	// Gather: merge each query's shard results.
	var mergeStart time.Time
	if spec.Trace != nil {
		mergeStart = time.Now()
		defer func() { spec.Trace.Add(obs.PhaseMerge, time.Since(mergeStart)) }()
	}
	total := 0
	var out [][]int64
	if spec.CountOnly {
		for qi := range regions {
			c := 0
			for _, n := range counts[qi] {
				c += n
			}
			if spec.Limit > 0 && c > spec.Limit {
				c = spec.Limit
			}
			total += c
		}
	} else {
		out = make([][]int64, len(regions))
		for qi := range regions {
			out[qi] = mergeSorted(nil, parts[qi])
			if spec.Limit > 0 && len(out[qi]) > spec.Limit {
				out[qi] = out[qi][:spec.Limit]
			}
			total += len(out[qi])
		}
	}
	finalize(&agg, total)
	return out, agg, nil
}

// QueryBatch is QueryRegions over plain polygons.
func (e *Engine) QueryBatch(m core.Method, areas []geom.Polygon) ([][]int64, core.Stats, error) {
	return e.QueryRegions(m, core.Polygons(areas))
}

// wrapRunErr prefixes pool errors with the package name, except bare
// context errors (already self-describing, and callers match them with
// errors.Is anyway).
func wrapRunErr(err error) error {
	if err == context.Canceled || err == context.DeadlineExceeded {
		return err
	}
	return fmt.Errorf("shard: %w", err)
}
