package shard

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/geom"
	"repro/internal/workload"
)

func unitBounds() geom.Rect { return geom.NewRect(0, 0, 1, 1) }

// memBuild is the BuildFunc used throughout the tests: in-memory data, STR
// R-tree, exactly the single-engine construction.
func memBuild(_ int, pts []geom.Point, bounds geom.Rect) (*core.Engine, error) {
	data, err := core.NewMemoryData(pts, bounds)
	if err != nil {
		return nil, err
	}
	return core.NewEngine(core.NewRTreeIndex(pts, 16), data), nil
}

func newSharded(t testing.TB, pts []geom.Point, shards int) *Engine {
	t.Helper()
	e, err := New(pts, unitBounds(), Config{Shards: shards, Build: memBuild})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func newOracle(t testing.TB, pts []geom.Point) *core.Engine {
	t.Helper()
	eng, err := memBuild(0, pts, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func sorted(ids []int64) []int64 {
	out := append([]int64(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// testWorkloads returns the uniform and clustered datasets the conformance
// grid runs over.
func testWorkloads(n int) map[string][]geom.Point {
	return map[string][]geom.Point{
		"uniform":   workload.UniformPoints(rand.New(rand.NewSource(41)), n, unitBounds()),
		"clustered": workload.ClusteredPoints(rand.New(rand.NewSource(42)), n, 8, 0.03, unitBounds()),
	}
}

var testShardCounts = []int{1, 2, 7, 16}

// TestConformanceToSingleEngine is the acceptance grid: every query method
// × shard counts 1/2/7/16 × uniform and clustered workloads must return
// the exact sorted global id set of a single engine over the same points.
func TestConformanceToSingleEngine(t *testing.T) {
	const n = 3000
	for wname, pts := range testWorkloads(n) {
		oracle := newOracle(t, pts)
		rng := rand.New(rand.NewSource(43))
		areas := make([]geom.Polygon, 12)
		circles := make([]geom.Circle, 4)
		for i := range areas {
			areas[i] = workload.RandomPolygon(rng, workload.PolygonConfig{
				Vertices:  10,
				QuerySize: []float64{0.004, 0.02, 0.08}[i%3],
			}, unitBounds())
		}
		for i := range circles {
			circles[i] = geom.NewCircle(
				geom.Pt(0.2+0.6*rng.Float64(), 0.2+0.6*rng.Float64()),
				0.01+0.1*rng.Float64())
		}

		for _, shards := range testShardCounts {
			se := newSharded(t, pts, shards)
			if got := se.NumShards(); got != shards {
				t.Fatalf("%s: NumShards = %d, want %d", wname, got, shards)
			}
			name := fmt.Sprintf("%s/shards=%d", wname, shards)

			for _, m := range []core.Method{core.Traditional, core.VoronoiBFS, core.VoronoiBFSStrict, core.BruteForce} {
				for ai, area := range areas {
					want, _, err := oracle.Query(m, area)
					if err != nil {
						t.Fatalf("%s %v: oracle: %v", name, m, err)
					}
					got, _, err := se.Query(m, area)
					if err != nil {
						t.Fatalf("%s %v: sharded: %v", name, m, err)
					}
					if !equalIDs(got, sorted(want)) {
						t.Errorf("%s %v area %d: %d ids, oracle %d", name, m, ai, len(got), len(want))
					}

					n, _, err := se.Count(m, area)
					if err != nil {
						t.Fatalf("%s %v: count: %v", name, m, err)
					}
					if n != len(want) {
						t.Errorf("%s %v area %d: Count = %d, want %d", name, m, ai, n, len(want))
					}
				}
				for ci, c := range circles {
					want, _, err := oracle.QueryRegion(m, core.CircleRegion(c))
					if err != nil {
						t.Fatalf("%s %v: oracle circle: %v", name, m, err)
					}
					got, _, err := se.QueryRegion(m, core.CircleRegion(c))
					if err != nil {
						t.Fatalf("%s %v: sharded circle: %v", name, m, err)
					}
					if !equalIDs(got, sorted(want)) {
						t.Errorf("%s %v circle %d diverged", name, m, ci)
					}
				}
			}

			// Batched entry point, mixed polygons and circles.
			regions := make([]core.Region, 0, len(areas)+len(circles))
			for _, a := range areas {
				regions = append(regions, core.PolygonRegion(a))
			}
			for _, c := range circles {
				regions = append(regions, core.CircleRegion(c))
			}
			got, _, err := se.QueryRegions(core.VoronoiBFS, regions)
			if err != nil {
				t.Fatalf("%s: QueryRegions: %v", name, err)
			}
			want, _, err := oracle.QueryBatchRegions(core.VoronoiBFS, regions)
			if err != nil {
				t.Fatalf("%s: oracle batch: %v", name, err)
			}
			for i := range regions {
				if !equalIDs(got[i], sorted(want[i])) {
					t.Errorf("%s: batch query %d diverged", name, i)
				}
			}

			// KNearest at several k, including k > len(points) of a shard
			// and k > total.
			for _, k := range []int{1, 3, 17, n/len(testShardCounts) + 5, n + 10} {
				for rep := 0; rep < 5; rep++ {
					q := geom.Pt(rng.Float64(), rng.Float64())
					want, _, err := oracle.KNearest(context.Background(), q, k)
					if err != nil {
						t.Fatalf("%s: oracle knn: %v", name, err)
					}
					got, _, err := se.KNearest(context.Background(), q, k)
					if err != nil {
						t.Fatalf("%s: sharded knn: %v", name, err)
					}
					if !equalIDs(sorted(got), sorted(want)) {
						t.Errorf("%s: KNearest(%v, %d): %d ids, oracle %d",
							name, q, k, len(got), len(want))
					}
					// Increasing-distance contract.
					for i := 1; i < len(got); i++ {
						if q.Dist2(se.Point(got[i-1])) > q.Dist2(se.Point(got[i])) {
							t.Errorf("%s: KNearest order violated at %d", name, i)
							break
						}
					}
				}
			}
		}
	}
}

// TestGlobalIDStability pins that results are identical — ids and order —
// across every shard count, i.e. the global id remapping is stable.
func TestGlobalIDStability(t *testing.T) {
	const n = 2500
	pts := workload.UniformPoints(rand.New(rand.NewSource(44)), n, unitBounds())
	rng := rand.New(rand.NewSource(45))
	area := workload.RandomPolygon(rng, workload.PolygonConfig{Vertices: 10, QuerySize: 0.05}, unitBounds())

	var first []int64
	for _, shards := range testShardCounts {
		se := newSharded(t, pts, shards)
		got, _, err := se.Query(core.VoronoiBFS, area)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = got
			continue
		}
		if !equalIDs(got, first) {
			t.Errorf("shards=%d: result differs from shards=%d", shards, testShardCounts[0])
		}
	}
	// And ids address the same coordinates as the input slice.
	for _, id := range first {
		if !area.ContainsPoint(pts[id]) {
			t.Errorf("id %d maps outside the area", id)
		}
	}
}

// TestShardPartitionInvariants pins the partition: every point lands in
// exactly one shard, shard sizes are near-equal, and each shard's bounds
// contain its points.
func TestShardPartitionInvariants(t *testing.T) {
	const n = 1000
	for wname, pts := range testWorkloads(n) {
		for _, shards := range []int{1, 5, 16, n, n * 2} {
			se := newSharded(t, pts, shards)
			wantShards := shards
			if wantShards > n {
				wantShards = n
			}
			if se.NumShards() != wantShards {
				t.Fatalf("%s: NumShards = %d, want %d", wname, se.NumShards(), wantShards)
			}
			sizes := se.ShardSizes()
			total, min, max := 0, n, 0
			for _, s := range sizes {
				total += s
				if s < min {
					min = s
				}
				if s > max {
					max = s
				}
			}
			if total != n {
				t.Errorf("%s shards=%d: sizes sum to %d", wname, shards, total)
			}
			if max-min > 1 {
				t.Errorf("%s shards=%d: size spread %d..%d", wname, shards, min, max)
			}
			for si := 0; si < se.NumShards(); si++ {
				b := se.ShardBounds(si)
				if !unitBounds().ContainsRect(b) {
					t.Errorf("%s shard %d: bounds %v outside universe", wname, si, b)
				}
			}
		}
	}
}

// TestShardPruning pins the scatter-gather pruning: a query far from most
// shards must not touch them (visible through per-shard stats staying
// zero on a 1-shard-wide query against high shard counts).
func TestShardPruning(t *testing.T) {
	const n = 2000
	pts := workload.UniformPoints(rand.New(rand.NewSource(46)), n, unitBounds())
	se := newSharded(t, pts, 16)

	// A tiny query near one corner: its MBR misses most shard MBRs.
	area := geom.MustPolygon([]geom.Point{
		geom.Pt(0.01, 0.01), geom.Pt(0.03, 0.012), geom.Pt(0.02, 0.03),
	})
	alive := se.survivors(nil, core.PolygonRegion(area))
	if len(alive) == 0 || len(alive) >= se.NumShards() {
		t.Fatalf("pruning vacuous: %d of %d shards survive", len(alive), se.NumShards())
	}

	// And an off-universe query prunes everything.
	far := geom.MustPolygon([]geom.Point{
		geom.Pt(5, 5), geom.Pt(6, 5), geom.Pt(5.5, 6),
	})
	ids, st, err := se.Query(core.VoronoiBFS, far)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 || st.Candidates != 0 || st.IndexNodesVisited != 0 {
		t.Errorf("off-universe query did work: ids=%d stats=%+v", len(ids), st)
	}
}

// TestShardedStatsAggregate pins that the sharded aggregate equals the sum
// of per-shard sequential stats for the same scatter.
func TestShardedStatsAggregate(t *testing.T) {
	const n = 2000
	pts := workload.UniformPoints(rand.New(rand.NewSource(47)), n, unitBounds())
	se := newSharded(t, pts, 7)
	rng := rand.New(rand.NewSource(48))
	area := workload.RandomPolygon(rng, workload.PolygonConfig{Vertices: 10, QuerySize: 0.1}, unitBounds())
	region := core.PolygonRegion(area)

	// Shard-local scatter executes VoronoiBFS with the strict expansion
	// rule (see shardMethod), so replay the scatter with it.
	var want core.Stats
	for _, si := range se.survivors(nil, region) {
		_, st, err := se.ShardEngine(si).QueryRegion(core.VoronoiBFSStrict, region)
		if err != nil {
			t.Fatal(err)
		}
		want.Add(st)
	}
	if want.Candidates == 0 {
		t.Fatal("workload produced no candidates; test is vacuous")
	}

	_, agg, err := se.Query(core.VoronoiBFS, area)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Candidates != want.Candidates ||
		agg.ResultSize != want.ResultSize ||
		agg.SegmentTests != want.SegmentTests ||
		agg.IndexNodesVisited != want.IndexNodesVisited ||
		agg.RecordsLoaded != want.RecordsLoaded {
		t.Errorf("aggregate %+v, want %+v", agg, want)
	}
}

// TestConcurrentShardedQueries hammers one sharded engine from several
// goroutines mixing single queries, batches, counts and knn. Run with
// -race.
func TestConcurrentShardedQueries(t *testing.T) {
	const n = 3000
	pts := workload.UniformPoints(rand.New(rand.NewSource(49)), n, unitBounds())
	se := newSharded(t, pts, 7)
	oracle := newOracle(t, pts)

	rng := rand.New(rand.NewSource(50))
	areas := make([]geom.Polygon, 6)
	oracleIDs := make([][]int64, len(areas))
	for i := range areas {
		areas[i] = workload.RandomPolygon(rng, workload.PolygonConfig{Vertices: 10, QuerySize: 0.03}, unitBounds())
		ids, _, err := oracle.Query(core.BruteForce, areas[i])
		if err != nil {
			t.Fatal(err)
		}
		oracleIDs[i] = sorted(ids)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for rep := 0; rep < 15; rep++ {
				i := (worker + rep) % len(areas)
				switch rep % 3 {
				case 0:
					ids, _, err := se.Query(core.VoronoiBFS, areas[i])
					if err != nil {
						errs <- err
						return
					}
					if !equalIDs(ids, oracleIDs[i]) {
						errs <- fmt.Errorf("worker %d: query %d diverged", worker, i)
						return
					}
				case 1:
					cnt, _, err := se.Count(core.Traditional, areas[i])
					if err != nil {
						errs <- err
						return
					}
					if cnt != len(oracleIDs[i]) {
						errs <- fmt.Errorf("worker %d: count %d diverged", worker, i)
						return
					}
				default:
					q := geom.Pt(float64(worker)/8, float64(rep)/15)
					if _, _, err := se.KNearest(context.Background(), q, 5); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestBuildErrors pins constructor validation.
func TestBuildErrors(t *testing.T) {
	pts := workload.UniformPoints(rand.New(rand.NewSource(51)), 100, unitBounds())
	if _, err := New(pts, unitBounds(), Config{Shards: 4}); err == nil {
		t.Error("nil Build accepted")
	}
	if _, err := New(nil, unitBounds(), Config{Shards: 4, Build: memBuild}); err == nil {
		t.Error("empty dataset accepted")
	}
	wantErr := fmt.Errorf("boom")
	_, err := New(pts, unitBounds(), Config{
		Shards: 4,
		Build: func(si int, _ []geom.Point, _ geom.Rect) (*core.Engine, error) {
			if si == 2 {
				return nil, wantErr
			}
			return memBuild(si, nil, unitBounds()) // never reached for si==2
		},
	})
	if err == nil {
		t.Fatal("builder error swallowed")
	}
}

// TestSingleShardMatchesUnsharded sanity-checks the degenerate case: one
// shard is just the single engine plus remapping and sorting.
func TestSingleShardMatchesUnsharded(t *testing.T) {
	const n = 1200
	pts := workload.UniformPoints(rand.New(rand.NewSource(52)), n, unitBounds())
	se := newSharded(t, pts, 1)
	oracle := newOracle(t, pts)
	rng := rand.New(rand.NewSource(53))
	for rep := 0; rep < 10; rep++ {
		area := workload.RandomPolygon(rng, workload.PolygonConfig{Vertices: 8, QuerySize: 0.02}, unitBounds())
		want, _, err := oracle.Query(core.VoronoiBFS, area)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := se.Query(core.VoronoiBFS, area)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(got, sorted(want)) {
			t.Fatalf("rep %d diverged", rep)
		}
	}
}

// TestExecRunPrimitive covers the exported pool primitive the scatter path
// rides on: full coverage of indexes, per-worker slots in range, error
// indexing, sequential fallback.
func TestExecRunPrimitive(t *testing.T) {
	for _, workers := range []int{1, 4} {
		opts := exec.Options{NumWorkers: workers, Chunk: 2}
		hits := make([]int32, 100)
		err := exec.Run(context.Background(), len(hits), opts, func(worker, i int) error {
			if worker < 0 || worker >= opts.Workers(len(hits)) {
				return fmt.Errorf("worker %d out of range", worker)
			}
			hits[i]++ // distinct i per call; no two workers share an index
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}

		err = exec.Run(context.Background(), 10, opts, func(_, i int) error {
			if i >= 3 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: error swallowed", workers)
		}
	}
	if err := exec.Run(context.Background(), 0, exec.Options{}, func(_, _ int) error { return fmt.Errorf("never") }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
}

// TestShardedVoronoiUsesStrictExpansion pins the density-robustness
// upgrade: shard-local scatter must run VoronoiBFS with the cell-
// intersection expansion (visible as cell tests, not segment tests),
// because the published segment heuristic can strand result islands on
// sub-sampled shard diagrams; and the caller's method must still be
// reported.
func TestShardedVoronoiUsesStrictExpansion(t *testing.T) {
	const n = 2000
	pts := workload.UniformPoints(rand.New(rand.NewSource(54)), n, unitBounds())
	se := newSharded(t, pts, 7)
	rng := rand.New(rand.NewSource(55))
	area := workload.RandomPolygon(rng, workload.PolygonConfig{Vertices: 10, QuerySize: 0.05}, unitBounds())

	_, st, err := se.Query(core.VoronoiBFS, area)
	if err != nil {
		t.Fatal(err)
	}
	if st.Method != core.VoronoiBFS {
		t.Errorf("Stats.Method = %v, want the caller's method", st.Method)
	}
	if st.CellTests == 0 || st.SegmentTests != 0 {
		t.Errorf("expected cell-test expansion, got %d cell tests / %d segment tests",
			st.CellTests, st.SegmentTests)
	}

	// The explicit strict and traditional methods pass through unchanged.
	_, st, err = se.Query(core.VoronoiBFSStrict, area)
	if err != nil {
		t.Fatal(err)
	}
	if st.CellTests == 0 || st.SegmentTests != 0 {
		t.Errorf("strict: got %d cell tests / %d segment tests", st.CellTests, st.SegmentTests)
	}
	_, st, err = se.Query(core.Traditional, area)
	if err != nil {
		t.Fatal(err)
	}
	if st.CellTests != 0 || st.SegmentTests != 0 {
		t.Errorf("traditional: got %d cell tests / %d segment tests", st.CellTests, st.SegmentTests)
	}
}
