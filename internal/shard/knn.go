package shard

import (
	"context"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
)

// KNearest returns the k stored points nearest to q in increasing
// distance order (ties broken by ascending global id), computed by a
// multi-shard frontier: shards are visited in increasing MINDIST(q,
// shard bounds) order, and the walk stops as soon as the next shard's
// bounds cannot beat the current k-th distance — every unvisited shard is
// then provably unable to contribute. Within each shard the per-shard
// engine runs the exact Voronoi expansion of the unsharded engine.
//
// ctx is checked before the walk starts and again before every shard
// expansion (on top of the per-shard engine's own candidate-boundary
// checks), so cancellation abandons the remaining frontier and surfaces
// as ctx.Err() with the statistics of the shards already expanded.
func (e *Engine) KNearest(ctx context.Context, q geom.Point, k int) ([]int64, core.Stats, error) {
	var stats core.Stats
	if e.Len() == 0 {
		// Unreachable through New (which rejects empty point sets) but kept
		// for parity with core.Engine.KNearest's empty-data contract.
		return nil, stats, core.ErrNoData
	}
	if k <= 0 {
		return nil, stats, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}

	// Frontier order: shards by squared MINDIST to q.
	order := make([]int, len(e.shards))
	mindist := make([]float64, len(e.shards))
	for si := range e.shards {
		order[si] = si
		mindist[si] = e.shards[si].bounds.Dist2Point(q)
	}
	sort.Slice(order, func(a, b int) bool { return mindist[order[a]] < mindist[order[b]] })

	type cand struct {
		id int64
		d2 float64
	}
	var best []cand
	for _, si := range order {
		// Expansion test: a shard whose MINDIST exceeds the current k-th
		// distance cannot improve the result, and neither can any shard
		// after it in the frontier order. Equal distance still expands, so
		// boundary ties are never dropped.
		if len(best) == k && mindist[si] > best[k-1].d2 {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		s := &e.shards[si]
		local, st, err := s.eng.KNearest(ctx, q, k)
		stats.Add(st)
		if err != nil {
			return nil, stats, err
		}
		for _, id := range local {
			gid := s.global[id]
			best = append(best, cand{id: gid, d2: q.Dist2(e.points[gid])})
		}
		sort.Slice(best, func(a, b int) bool {
			if best[a].d2 != best[b].d2 {
				return best[a].d2 < best[b].d2
			}
			return best[a].id < best[b].id
		})
		if len(best) > k {
			best = best[:k]
		}
	}

	out := make([]int64, len(best))
	for i, c := range best {
		out[i] = c.id
	}
	stats.ResultSize = len(out)
	return out, stats, nil
}
