package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func sampleRecord(id int64) PointRecord {
	return PointRecord{
		ID:        id,
		Pos:       geom.Pt(float64(id)*0.1, float64(id)*0.2),
		Neighbors: []int64{id + 1, id + 2, id - 1},
		Payload:   bytes.Repeat([]byte{byte(id)}, 16),
	}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []PointRecord{
		{ID: 1, Pos: geom.Pt(0.5, -3.25)},
		{ID: -42, Pos: geom.Pt(1e-300, 1e300), Neighbors: []int64{7}},
		sampleRecord(9),
		{ID: 0, Pos: geom.Pt(0, 0), Neighbors: nil, Payload: []byte{}},
	}
	for _, want := range recs {
		buf, err := want.encode(nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != want.encodedLen() {
			t.Errorf("encodedLen = %d, actual %d", want.encodedLen(), len(buf))
		}
		got, err := decodeRecord(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != want.ID || got.Pos != want.Pos {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
		if len(got.Neighbors) != len(want.Neighbors) {
			t.Errorf("neighbors: got %v, want %v", got.Neighbors, want.Neighbors)
		}
		if len(got.Payload) != len(want.Payload) {
			t.Errorf("payload: got %d bytes, want %d", len(got.Payload), len(want.Payload))
		}
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	f := func(id int64, x, y float64, neighbors []int64, payload []byte) bool {
		if len(neighbors) > 400 || len(payload) > 400 {
			return true
		}
		want := PointRecord{ID: id, Pos: geom.Pt(x, y), Neighbors: neighbors, Payload: payload}
		buf, err := want.encode(nil)
		if err != nil {
			return false
		}
		got, err := decodeRecord(buf)
		if err != nil {
			return false
		}
		if got.ID != want.ID {
			return false
		}
		// NaN-safe position comparison via bit patterns happens through
		// encode/decode; compare with reflect on the full struct except
		// NaN positions.
		if x == x && y == y && got.Pos != want.Pos {
			return false
		}
		if len(got.Neighbors) != len(neighbors) || len(got.Payload) != len(payload) {
			return false
		}
		for i := range neighbors {
			if got.Neighbors[i] != neighbors[i] {
				return false
			}
		}
		return bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	rec := sampleRecord(5)
	buf, err := rec.encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, err := decodeRecord(buf[:cut]); err == nil {
			// Truncations inside the payload tail can still parse when the
			// length prefix survives; only header/neighbor cuts must fail.
			if cut < recordFixedLen+8*len(rec.Neighbors) {
				t.Fatalf("decode of %d/%d bytes should fail", cut, len(buf))
			}
		}
	}
}

func TestStoreBasic(t *testing.T) {
	b := NewBuilder(Options{PageSize: 256, PoolPages: 4})
	const n = 100
	for i := int64(0); i < n; i++ {
		if err := b.Append(sampleRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != n {
		t.Fatalf("Len = %d", st.Len())
	}
	if st.NumPages() < 2 {
		t.Fatalf("expected multiple pages, got %d", st.NumPages())
	}
	for i := int64(0); i < n; i++ {
		rec, err := st.Get(i)
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		want := sampleRecord(i)
		if rec.ID != want.ID || rec.Pos != want.Pos || !reflect.DeepEqual(rec.Neighbors, want.Neighbors) {
			t.Fatalf("Get(%d) = %+v, want %+v", i, rec, want)
		}
	}
	if _, err := st.Get(12345); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing id: err = %v", err)
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	b := NewBuilder(Options{})
	if err := b.Append(sampleRecord(1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(sampleRecord(1)); err == nil {
		t.Error("duplicate id should be rejected")
	}
}

func TestRecordTooLarge(t *testing.T) {
	b := NewBuilder(Options{PageSize: 64})
	rec := sampleRecord(1)
	rec.Payload = make([]byte, 128)
	if err := b.Append(rec); !errors.Is(err, ErrRecordTooLarge) {
		t.Errorf("err = %v, want ErrRecordTooLarge", err)
	}
}

func TestBufferPoolCounting(t *testing.T) {
	b := NewBuilder(Options{PageSize: 256, PoolPages: 2})
	for i := int64(0); i < 60; i++ {
		if err := b.Append(sampleRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// First read: miss. Second read of the same id: hit.
	if _, err := st.Get(0); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats(); got.PageReads != 1 || got.CacheHits != 0 {
		t.Fatalf("after first read: %+v", got)
	}
	if _, err := st.Get(0); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats(); got.PageReads != 1 || got.CacheHits != 1 {
		t.Fatalf("after repeat read: %+v", got)
	}
	// Thrash more pages than the pool holds: evictions and re-reads.
	for i := int64(0); i < 60; i++ {
		if _, err := st.Get(i); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	if stats.Evictions == 0 {
		t.Errorf("expected evictions with tiny pool: %+v", stats)
	}
	if stats.BytesRead != int64(stats.PageReads)*256 {
		t.Errorf("BytesRead %d != PageReads %d × 256", stats.BytesRead, stats.PageReads)
	}
	// Cold cache after DropCache.
	st.DropCache()
	if _, err := st.Get(0); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats(); got.PageReads != 1 || got.CacheHits != 0 {
		t.Fatalf("after drop: %+v", got)
	}
}

func TestZeroPoolAlwaysMisses(t *testing.T) {
	b := NewBuilder(Options{PageSize: 512, PoolPages: 0})
	for i := int64(0); i < 10; i++ {
		if err := b.Append(sampleRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		if _, err := st.Get(3); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Stats(); got.PageReads != 5 || got.CacheHits != 0 {
		t.Errorf("zero pool: %+v", got)
	}
}

func TestUnboundedPoolNeverEvicts(t *testing.T) {
	b := NewBuilder(Options{PageSize: 128, PoolPages: -1})
	for i := int64(0); i < 200; i++ {
		rec := sampleRecord(i)
		rec.Payload = nil
		if err := b.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		for i := int64(0); i < 200; i++ {
			if _, err := st.Get(i); err != nil {
				t.Fatal(err)
			}
		}
	}
	stats := st.Stats()
	if stats.Evictions != 0 {
		t.Errorf("unbounded pool evicted: %+v", stats)
	}
	if stats.PageReads != st.NumPages() {
		t.Errorf("PageReads %d != NumPages %d", stats.PageReads, st.NumPages())
	}
}

func TestScan(t *testing.T) {
	b := NewBuilder(Options{PageSize: 256})
	const n = 50
	for i := int64(0); i < n; i++ {
		if err := b.Append(sampleRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	if err := st.Scan(func(r PointRecord) bool { seen[r.ID] = true; return true }); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Errorf("scan saw %d records, want %d", len(seen), n)
	}
	// Early stop.
	count := 0
	if err := st.Scan(func(PointRecord) bool { count++; return count < 5 }); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("early stop scan saw %d", count)
	}
	// Scan must not touch the pool counters.
	if got := st.Stats(); got.PageReads != 0 {
		t.Errorf("scan should bypass the pool: %+v", got)
	}
}

func TestWriteToReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBuilder(Options{PageSize: 512, PoolPages: 8})
	const n = 300
	for i := int64(0); i < n; i++ {
		rec := PointRecord{
			ID:        i * 3,
			Pos:       geom.Pt(rng.Float64(), rng.Float64()),
			Neighbors: []int64{rng.Int63n(1000), rng.Int63n(1000)},
			Payload:   []byte{byte(i), byte(i >> 8)},
		}
		if err := b.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	st2, err := Read(&buf, Options{PoolPages: -1})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != st.Len() || st2.NumPages() != st.NumPages() || st2.PageSize() != st.PageSize() {
		t.Fatalf("shape mismatch after round trip")
	}
	for i := int64(0); i < n; i++ {
		a, err1 := st.Get(i * 3)
		bb, err2 := st2.Get(i * 3)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if a.ID != bb.ID || a.Pos != bb.Pos || !reflect.DeepEqual(a.Neighbors, bb.Neighbors) || !bytes.Equal(a.Payload, bb.Payload) {
			t.Fatalf("record %d mismatch after round trip", i*3)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a store")), Options{}); err == nil {
		t.Error("garbage input should fail")
	}
	if _, err := Read(bytes.NewReader(nil), Options{}); err == nil {
		t.Error("empty input should fail")
	}
}

func TestIDsSorted(t *testing.T) {
	b := NewBuilder(Options{})
	for _, id := range []int64{5, 1, 9, 3} {
		if err := b.Append(PointRecord{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 3, 5, 9}
	if got := st.IDs(); !reflect.DeepEqual(got, want) {
		t.Errorf("IDs = %v, want %v", got, want)
	}
}

func BenchmarkGetHot(b *testing.B) {
	bl := NewBuilder(Options{PoolPages: -1})
	for i := int64(0); i < 10000; i++ {
		if err := bl.Append(sampleRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	st, err := bl.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Get(int64(i % 10000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetCold(b *testing.B) {
	bl := NewBuilder(Options{PoolPages: 0})
	for i := int64(0); i < 10000; i++ {
		if err := bl.Append(sampleRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	st, err := bl.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Get(int64(i % 10000)); err != nil {
			b.Fatal(err)
		}
	}
}
