// Package storage implements the paged object store behind the area-query
// engine.
//
// The paper frames the area query as IO-bound: the refinement step must
// load each candidate's full geometry from the database before validating
// it. This package supplies that database: a heap file of fixed-size pages
// holding point records — coordinates, an application payload, and (in the
// style of the VoR-tree, Sharifzadeh & Shahabi, VLDB 2010) the precomputed
// Voronoi neighbor list of the point. Records are fetched through an LRU
// buffer pool that counts page reads, so both area-query methods can report
// how much IO their candidate sets cost.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// DefaultPageSize is the page size used when a Builder is given a
// non-positive one. 4 KiB matches the usual OS/DBMS page.
const DefaultPageSize = 4096

// Errors returned by the store.
var (
	ErrNotFound       = errors.New("storage: record not found")
	ErrRecordTooLarge = errors.New("storage: record larger than page")
	ErrCorrupt        = errors.New("storage: corrupt page")
)

// RID is a record identifier: page number and slot within the page.
type RID struct {
	Page uint32
	Slot uint16
}

// Page layout (sealed):
//
//	[0:2)            uint16 slot count k
//	[2 : 2+6k)       slot directory: per slot, uint32 offset + uint16 length
//	[...]            record bytes
//
// The builder accumulates records in memory and serializes the whole page
// on seal.
type pageBuilder struct {
	size    int
	records [][]byte
	used    int // bytes if sealed now: header + directory + data
}

const (
	pageHeaderLen = 2
	slotDirLen    = 6
)

func newPageBuilder(size int) *pageBuilder {
	return &pageBuilder{size: size, used: pageHeaderLen}
}

// fits reports whether a record of n bytes fits in the page.
func (b *pageBuilder) fits(n int) bool {
	return b.used+slotDirLen+n <= b.size
}

// add appends a record and returns its slot.
func (b *pageBuilder) add(rec []byte) uint16 {
	b.records = append(b.records, rec)
	b.used += slotDirLen + len(rec)
	return uint16(len(b.records) - 1)
}

func (b *pageBuilder) empty() bool { return len(b.records) == 0 }

// seal serializes the page into a fresh buffer of exactly size bytes.
func (b *pageBuilder) seal() []byte {
	buf := make([]byte, b.size)
	binary.LittleEndian.PutUint16(buf[0:pageHeaderLen], uint16(len(b.records)))
	off := pageHeaderLen + slotDirLen*len(b.records)
	for i, rec := range b.records {
		dir := pageHeaderLen + slotDirLen*i
		binary.LittleEndian.PutUint32(buf[dir:], uint32(off))
		binary.LittleEndian.PutUint16(buf[dir+4:], uint16(len(rec)))
		copy(buf[off:], rec)
		off += len(rec)
	}
	return buf
}

// pageRecord extracts the slot-th record from a sealed page.
func pageRecord(page []byte, slot uint16) ([]byte, error) {
	if len(page) < pageHeaderLen {
		return nil, ErrCorrupt
	}
	count := binary.LittleEndian.Uint16(page[0:pageHeaderLen])
	if slot >= count {
		return nil, fmt.Errorf("%w: slot %d of %d", ErrNotFound, slot, count)
	}
	dir := pageHeaderLen + slotDirLen*int(slot)
	if dir+slotDirLen > len(page) {
		return nil, ErrCorrupt
	}
	start := binary.LittleEndian.Uint32(page[dir:])
	length := binary.LittleEndian.Uint16(page[dir+4:])
	end := start + uint32(length)
	if start > end || end > uint32(len(page)) {
		return nil, ErrCorrupt
	}
	return page[start:end], nil
}

// pageSlotCount returns the number of records in a sealed page.
func pageSlotCount(page []byte) int {
	if len(page) < pageHeaderLen {
		return 0
	}
	return int(binary.LittleEndian.Uint16(page[0:pageHeaderLen]))
}
