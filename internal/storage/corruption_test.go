package storage

import (
	"math/rand"
	"testing"
)

// TestDecodeNeverPanicsOnCorruption flips random bytes in encoded records
// and pages: decoding must either succeed or fail with an error — never
// panic or over-read.
func TestDecodeNeverPanicsOnCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rec := sampleRecord(7)
	clean, err := rec.encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5000; trial++ {
		buf := append([]byte(nil), clean...)
		// Corrupt 1-4 random bytes.
		for k := 0; k <= rng.Intn(4); k++ {
			buf[rng.Intn(len(buf))] ^= byte(1 + rng.Intn(255))
		}
		// Optionally truncate.
		if rng.Intn(3) == 0 {
			buf = buf[:rng.Intn(len(buf)+1)]
		}
		_, _ = decodeRecord(buf) // must not panic
	}
}

// TestPageRecordNeverPanicsOnCorruption does the same at page level.
func TestPageRecordNeverPanicsOnCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := newPageBuilder(512)
	for i := int64(0); i < 8; i++ {
		rec := sampleRecord(i)
		raw, err := rec.encode(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !b.fits(len(raw)) {
			break
		}
		b.add(raw)
	}
	clean := b.seal()
	for trial := 0; trial < 5000; trial++ {
		page := append([]byte(nil), clean...)
		for k := 0; k <= rng.Intn(6); k++ {
			page[rng.Intn(len(page))] ^= byte(1 + rng.Intn(255))
		}
		for slot := uint16(0); slot < 12; slot++ {
			if raw, err := pageRecord(page, slot); err == nil {
				_, _ = decodeRecord(raw) // must not panic
			}
		}
	}
}

// TestPageRecordBadSlot covers out-of-range and corrupt-directory paths.
func TestPageRecordBadSlot(t *testing.T) {
	b := newPageBuilder(256)
	rec := sampleRecord(1)
	raw, err := rec.encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	b.add(raw)
	page := b.seal()
	if _, err := pageRecord(page, 1); err == nil {
		t.Error("out-of-range slot should fail")
	}
	if _, err := pageRecord(nil, 0); err == nil {
		t.Error("nil page should fail")
	}
	if got := pageSlotCount(nil); got != 0 {
		t.Errorf("slot count of nil page = %d", got)
	}
}
