package storage

import (
	"fmt"
	"runtime"
	"sync"
)

// BufferPoolStats counts the IO behavior of a store since creation or the
// last ResetStats.
type BufferPoolStats struct {
	PageReads int   // pool misses: pages fetched from the backing file
	CacheHits int   // pool hits (including loads joined in flight)
	BytesRead int64 // bytes fetched from the backing file
	Evictions int   // frames evicted to make room
	// SingleflightJoins is the subset of CacheHits that joined a load
	// already in flight instead of finding an installed frame — fetches
	// that would have been duplicate IO under a naive pool.
	SingleflightJoins int
}

// HitRate returns CacheHits / (CacheHits + PageReads), or 0 before any
// fetch.
func (s BufferPoolStats) HitRate() float64 {
	if n := s.CacheHits + s.PageReads; n > 0 {
		return float64(s.CacheHits) / float64(n)
	}
	return 0
}

// String renders the counters as a log-friendly one-liner.
func (s BufferPoolStats) String() string {
	return fmt.Sprintf(
		"bufpool reads=%d hits=%d (%.1f%%) joins=%d evictions=%d bytes=%d",
		s.PageReads, s.CacheHits, s.HitRate()*100, s.SingleflightJoins,
		s.Evictions, s.BytesRead)
}

// add accumulates other into s (the per-shard merge of snapshot).
func (s *BufferPoolStats) add(other BufferPoolStats) {
	s.PageReads += other.PageReads
	s.CacheHits += other.CacheHits
	s.BytesRead += other.BytesRead
	s.Evictions += other.Evictions
	s.SingleflightJoins += other.SingleflightJoins
}

// maxPoolShards caps the lock-shard count; past this the maps' fixed
// overhead outweighs any contention win.
const maxPoolShards = 128

// bufferPool is a fixed-capacity page cache partitioned into power-of-two
// lock shards keyed by page id. Each shard owns its own frame map, LRU
// list and counters behind a private mutex, so fetches of pages in
// different shards never contend; page loads run outside the shard lock
// with singleflight-style duplicate suppression, so a slow load blocks
// neither unrelated pages in the same shard nor concurrent fetches of the
// same page (they join the in-flight load instead of duplicating it).
//
// Eviction is per-shard LRU rather than CLOCK: shard-local lists are
// short and uncontended once the lock no longer covers loads (the list
// splice is a handful of pointer writes), and LRU preserves the exact
// recency semantics the pre-sharding pool had, keeping single-goroutine
// hit/miss/eviction accounting identical.
//
// A total capacity of 0 disables caching (every access is a miss),
// modeling a cold read path; a negative capacity is unbounded. A positive
// capacity is split evenly across shards, rounded up — the effective
// capacity is shards × ceil(capacity/shards), i.e. at most
// capacity + shards − 1 frames — and the shard count is clamped down so
// it never exceeds the capacity (a tiny pool keeps its eviction
// pressure).
type bufferPool struct {
	shards []poolShard
	mask   uint32
}

// poolShard is one lock shard: a private LRU cache over the pages whose
// id hashes to it, plus the in-flight load table and counters. The
// padding spaces the shards (which live contiguously in one slice) a full
// cache-line pair apart, so one shard's lock and counter writes never
// false-share with its neighbors'.
type poolShard struct {
	mu       sync.Mutex
	capacity int                  // frames this shard may hold; <0 unbounded, 0 disabled
	frames   map[uint32]*frame    // guarded by mu
	head     *frame               // guarded by mu; most recently used
	tail     *frame               // guarded by mu; least recently used
	loads    map[uint32]*loadCall // guarded by mu
	stats    BufferPoolStats      // guarded by mu
	// gen counts resets; loads on the cache-disabled path record it
	// before loading and skip stats if it moved (the cached path detects
	// the same condition through loads-map identity instead).
	gen uint64   // guarded by mu
	_   [40]byte // pad to 128 bytes
}

type frame struct {
	pageID     uint32
	data       []byte // immutable once installed
	prev, next *frame
}

// loadCall is one in-flight page load. The goroutine that created it
// performs the load and closes done; goroutines that find it in
// poolShard.loads wait on done and share data instead of loading again.
type loadCall struct {
	done chan struct{}
	data []byte
}

// defaultPoolShards returns the shard count used when the caller does not
// choose one: the next power of two at or above GOMAXPROCS, so that under
// full parallelism goroutines rarely share a lock shard.
func defaultPoolShards() int {
	return runtime.GOMAXPROCS(0)
}

// normalizePoolShards resolves a requested shard count against the pool
// capacity: <= 0 means the GOMAXPROCS-based default, the result is
// rounded up to a power of two (masking replaces modulo), capped at
// maxPoolShards, and clamped down so a positive capacity is never
// exceeded by the shard count alone.
func normalizePoolShards(capacity, shards int) int {
	if capacity == 0 {
		return 1 // caching disabled; shards would only shard the counters
	}
	if shards <= 0 {
		shards = defaultPoolShards()
	}
	if shards > maxPoolShards {
		shards = maxPoolShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	for capacity > 0 && n > capacity {
		n >>= 1
	}
	return n
}

// newBufferPool returns a pool of the given total capacity split over
// the given number of lock shards (see normalizePoolShards for how the
// count is resolved; 1 reproduces the old single-lock pool).
func newBufferPool(capacity, shards int) *bufferPool {
	n := normalizePoolShards(capacity, shards)
	per := capacity // 0 and negative apply per shard unchanged
	if capacity > 0 {
		per = (capacity + n - 1) / n
	}
	bp := &bufferPool{shards: make([]poolShard, n), mask: uint32(n - 1)}
	for i := range bp.shards {
		s := &bp.shards[i]
		s.capacity = per
		s.frames = make(map[uint32]*frame)
		s.loads = make(map[uint32]*loadCall)
	}
	return bp
}

// numShards returns the resolved lock-shard count.
func (bp *bufferPool) numShards() int { return len(bp.shards) }

// shardFor maps a page id to its lock shard. Low-bit masking is
// deliberate: the builder numbers pages sequentially, so consecutive
// pages — the common access pattern after a Hilbert sort — round-robin
// across shards perfectly.
func (bp *bufferPool) shardFor(pageID uint32) *poolShard {
	return &bp.shards[pageID&bp.mask]
}

// fetch returns the page via the cache, reading it with load on a miss.
// load runs OUTSIDE the shard lock, so it may be arbitrarily slow without
// serializing unrelated fetches; concurrent fetches of the same page join
// the one in-flight load (the joiners count as cache hits — they
// performed no IO). load must not re-enter the pool.
//
// The returned slice aliases the cached frame (and, through load, the
// backing heap file) and MUST be treated read-only: mutating it would
// corrupt the page for every later reader. Store.Get is the enforcement
// boundary — decodeRecord deep-copies every variable field, so nothing
// the public API returns shares memory with the pool (pinned by
// TestStoreGetRecordIsolation). Frame data is immutable once installed,
// which is also why returning it after dropping the shard lock is safe.
func (bp *bufferPool) fetch(pageID uint32, load func(uint32) []byte) []byte {
	s := bp.shardFor(pageID)
	s.mu.Lock()
	if f, ok := s.frames[pageID]; ok {
		s.stats.CacheHits++
		s.moveToFront(f)
		data := f.data
		s.mu.Unlock()
		return data
	}
	if s.capacity == 0 {
		// Caching disabled: every access is its own simulated read, with
		// no duplicate suppression — the cold-read model counts each one.
		// A reset straddled by the load detaches it from the counters
		// (gen check), matching the cached path's identity check.
		gen := s.gen
		s.mu.Unlock()
		data := load(pageID)
		s.mu.Lock()
		if s.gen == gen {
			s.stats.PageReads++
			s.stats.BytesRead += int64(len(data))
		}
		s.mu.Unlock()
		return data
	}
	if c, ok := s.loads[pageID]; ok {
		// Same page already loading: join it rather than load twice.
		s.stats.CacheHits++
		s.stats.SingleflightJoins++
		s.mu.Unlock()
		<-c.done
		return c.data
	}
	c := &loadCall{done: make(chan struct{})}
	s.loads[pageID] = c
	s.mu.Unlock()

	loaded := false
	defer func() {
		if loaded {
			return
		}
		// load panicked: detach the call and wake the joiners (they see
		// nil data, a decode error for their callers) so neither they nor
		// any future fetch of this page hangs on a stranded loadCall; the
		// panic itself propagates past this unwind.
		s.mu.Lock()
		if s.loads[pageID] == c {
			delete(s.loads, pageID)
		}
		s.mu.Unlock()
		close(c.done)
	}()
	c.data = load(pageID) // off-lock: the actual page IO
	loaded = true

	s.mu.Lock()
	if s.loads[pageID] == c {
		delete(s.loads, pageID)
		s.stats.PageReads++
		s.stats.BytesRead += int64(len(c.data))
		f := &frame{pageID: pageID, data: c.data}
		s.frames[pageID] = f
		s.pushFront(f)
		if s.capacity > 0 && len(s.frames) > s.capacity {
			s.evict()
		}
	}
	// else: reset detached this load mid-flight. The data is still valid
	// for every goroutine waiting on it, but it must neither repopulate
	// the emptied cache with a stale frame nor count against the zeroed
	// counters; any fetch after the reset starts a fresh, counted load.
	s.mu.Unlock()
	close(c.done)
	return c.data
}

// pushFront links f as the most recently used frame.
//
//vaq:locked mu
func (s *poolShard) pushFront(f *frame) {
	f.prev = nil
	f.next = s.head
	if s.head != nil {
		s.head.prev = f
	}
	s.head = f
	if s.tail == nil {
		s.tail = f
	}
}

// moveToFront marks a resident frame as most recently used.
//
//vaq:locked mu
func (s *poolShard) moveToFront(f *frame) {
	if s.head == f {
		return
	}
	// Unlink.
	if f.prev != nil {
		f.prev.next = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	}
	if s.tail == f {
		s.tail = f.prev
	}
	s.pushFront(f)
}

// evict drops the least recently used frame.
//
//vaq:locked mu
func (s *poolShard) evict() {
	lru := s.tail
	if lru == nil {
		return
	}
	if lru.prev != nil {
		lru.prev.next = nil
	}
	s.tail = lru.prev
	if s.head == lru {
		s.head = nil
	}
	delete(s.frames, lru.pageID)
	s.stats.Evictions++
}

// reset clears the cache contents and statistics. In-flight loads are
// detached: their waiters still receive page data, but they no longer
// install frames or count stats (see fetch), so a reset can never be
// undone by a load that straddled it.
func (bp *bufferPool) reset() {
	for i := range bp.shards {
		s := &bp.shards[i]
		s.mu.Lock()
		s.frames = make(map[uint32]*frame)
		s.head, s.tail = nil, nil
		s.loads = make(map[uint32]*loadCall)
		s.stats = BufferPoolStats{}
		s.gen++
		s.mu.Unlock()
	}
}

// resetStats clears counters but keeps cached pages. A load in flight
// across the call stays attached and counts into the fresh counters on
// completion — the same outcome as the load linearizing after the reset
// under the old global lock — so no read is ever counted twice or lost.
func (bp *bufferPool) resetStats() {
	for i := range bp.shards {
		s := &bp.shards[i]
		s.mu.Lock()
		s.stats = BufferPoolStats{}
		s.mu.Unlock()
	}
}

// snapshot returns a copy of the counters, merged over the shards. Each
// shard's contribution is internally consistent (read under its lock);
// with fetches in flight the merge is a near-point-in-time view, exact
// whenever the pool is quiescent.
func (bp *bufferPool) snapshot() BufferPoolStats {
	var out BufferPoolStats
	for i := range bp.shards {
		s := &bp.shards[i]
		s.mu.Lock()
		out.add(s.stats)
		s.mu.Unlock()
	}
	return out
}
