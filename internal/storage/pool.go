package storage

import "sync"

// BufferPoolStats counts the IO behavior of a store since creation or the
// last ResetStats.
type BufferPoolStats struct {
	PageReads int   // pool misses: pages fetched from the backing file
	CacheHits int   // pool hits
	BytesRead int64 // bytes fetched from the backing file
	Evictions int   // frames evicted to make room
}

// bufferPool is a fixed-capacity LRU page cache. A capacity of 0 disables
// caching (every access is a miss), modeling a cold read path. A single
// mutex guards the frame map, the LRU list and the counters, making the
// pool safe for concurrent fetches; finer-grained schemes (sharded locks, a
// lock-free clock cache) remain a ROADMAP item.
type bufferPool struct {
	mu       sync.Mutex
	capacity int
	frames   map[uint32]*frame
	head     *frame // most recently used
	tail     *frame // least recently used
	stats    BufferPoolStats
}

type frame struct {
	pageID     uint32
	data       []byte
	prev, next *frame
}

func newBufferPool(capacity int) *bufferPool {
	return &bufferPool{
		capacity: capacity,
		frames:   make(map[uint32]*frame),
	}
}

// fetch returns the page via the cache, reading it with load on a miss.
// load runs under the pool lock; it must be cheap (an in-memory page copy
// or slice lookup) and must not re-enter the pool.
func (bp *bufferPool) fetch(pageID uint32, load func(uint32) []byte) []byte {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[pageID]; ok {
		bp.stats.CacheHits++
		bp.moveToFront(f)
		return f.data
	}
	data := load(pageID)
	bp.stats.PageReads++
	bp.stats.BytesRead += int64(len(data))
	if bp.capacity <= 0 {
		return data
	}
	f := &frame{pageID: pageID, data: data}
	bp.frames[pageID] = f
	bp.pushFront(f)
	if len(bp.frames) > bp.capacity {
		bp.evict()
	}
	return data
}

func (bp *bufferPool) pushFront(f *frame) {
	f.prev = nil
	f.next = bp.head
	if bp.head != nil {
		bp.head.prev = f
	}
	bp.head = f
	if bp.tail == nil {
		bp.tail = f
	}
}

func (bp *bufferPool) moveToFront(f *frame) {
	if bp.head == f {
		return
	}
	// Unlink.
	if f.prev != nil {
		f.prev.next = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	}
	if bp.tail == f {
		bp.tail = f.prev
	}
	bp.pushFront(f)
}

func (bp *bufferPool) evict() {
	lru := bp.tail
	if lru == nil {
		return
	}
	if lru.prev != nil {
		lru.prev.next = nil
	}
	bp.tail = lru.prev
	if bp.head == lru {
		bp.head = nil
	}
	delete(bp.frames, lru.pageID)
	bp.stats.Evictions++
}

// reset clears the cache contents and statistics.
func (bp *bufferPool) reset() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.frames = make(map[uint32]*frame)
	bp.head, bp.tail = nil, nil
	bp.stats = BufferPoolStats{}
}

// resetStats clears counters but keeps cached pages.
func (bp *bufferPool) resetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats = BufferPoolStats{}
}

// snapshot returns a consistent copy of the counters.
func (bp *bufferPool) snapshot() BufferPoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}
