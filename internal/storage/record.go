package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/geom"
)

// PointRecord is the stored representation of a spatial object: its
// identifier, coordinates, the identifiers of its Voronoi neighbors
// (VoR-tree layout, so neighbor expansion is one record fetch), and an
// opaque application payload (attributes) that gives records realistic
// width.
type PointRecord struct {
	ID        int64
	Pos       geom.Point
	Neighbors []int64
	Payload   []byte
}

// record encoding (little endian):
//
//	int64   ID
//	float64 X, float64 Y
//	uint16  neighbor count n
//	int64   × n neighbors
//	uint16  payload length m
//	byte    × m payload
const recordFixedLen = 8 + 8 + 8 + 2 + 2

// encodedLen returns the encoded size of r in bytes.
func (r *PointRecord) encodedLen() int {
	return recordFixedLen + 8*len(r.Neighbors) + len(r.Payload)
}

// encode appends the record to dst and returns the extended slice.
func (r *PointRecord) encode(dst []byte) ([]byte, error) {
	if len(r.Neighbors) > math.MaxUint16 {
		return nil, fmt.Errorf("storage: record %d has %d neighbors, max %d",
			r.ID, len(r.Neighbors), math.MaxUint16)
	}
	if len(r.Payload) > math.MaxUint16 {
		return nil, fmt.Errorf("storage: record %d payload %d bytes, max %d",
			r.ID, len(r.Payload), math.MaxUint16)
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(r.ID))
	dst = append(dst, b[:]...)
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(r.Pos.X))
	dst = append(dst, b[:]...)
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(r.Pos.Y))
	dst = append(dst, b[:]...)
	binary.LittleEndian.PutUint16(b[:2], uint16(len(r.Neighbors)))
	dst = append(dst, b[:2]...)
	for _, nb := range r.Neighbors {
		binary.LittleEndian.PutUint64(b[:], uint64(nb))
		dst = append(dst, b[:]...)
	}
	binary.LittleEndian.PutUint16(b[:2], uint16(len(r.Payload)))
	dst = append(dst, b[:2]...)
	dst = append(dst, r.Payload...)
	return dst, nil
}

// decodeRecord parses a record from buf. The returned record's Neighbors
// and Payload are fresh copies, safe to retain.
func decodeRecord(buf []byte) (PointRecord, error) {
	var r PointRecord
	if len(buf) < recordFixedLen {
		return r, fmt.Errorf("%w: record truncated (%d bytes)", ErrCorrupt, len(buf))
	}
	r.ID = int64(binary.LittleEndian.Uint64(buf[0:8]))
	r.Pos.X = math.Float64frombits(binary.LittleEndian.Uint64(buf[8:16]))
	r.Pos.Y = math.Float64frombits(binary.LittleEndian.Uint64(buf[16:24]))
	n := int(binary.LittleEndian.Uint16(buf[24:26]))
	off := 26
	if len(buf) < off+8*n+2 {
		return r, fmt.Errorf("%w: neighbor list truncated", ErrCorrupt)
	}
	if n > 0 {
		r.Neighbors = make([]int64, n)
		for i := 0; i < n; i++ {
			r.Neighbors[i] = int64(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
	} else {
		off = 26
	}
	m := int(binary.LittleEndian.Uint16(buf[off:]))
	off += 2
	if len(buf) < off+m {
		return r, fmt.Errorf("%w: payload truncated", ErrCorrupt)
	}
	if m > 0 {
		r.Payload = append([]byte(nil), buf[off:off+m]...)
	}
	return r, nil
}
