package storage

import (
	"sync"
	"testing"
)

// TestStoreConcurrentGet hammers one store from several goroutines with a
// pool small enough to force constant eviction, pinning the buffer pool's
// concurrency contract. Run with -race.
func TestStoreConcurrentGet(t *testing.T) {
	const records = 500
	b := NewBuilder(Options{PageSize: 512, PoolPages: 4})
	for id := int64(0); id < records; id++ {
		if err := b.Append(sampleRecord(id)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for rep := 0; rep < 200; rep++ {
				id := int64((worker*131 + rep*17) % records)
				rec, err := st.Get(id)
				if err != nil {
					errs <- err
					return
				}
				want := sampleRecord(id)
				if rec.ID != id || rec.Pos != want.Pos {
					t.Errorf("worker %d: Get(%d) = %+v", worker, id, rec)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	stats := st.Stats()
	if stats.PageReads == 0 {
		t.Errorf("expected page reads, got %+v", stats)
	}
	if got := stats.PageReads + stats.CacheHits; got != workers*200 {
		t.Errorf("reads+hits = %d, want %d", got, workers*200)
	}

	// Whether the concurrent phase hits the tiny pool depends on
	// scheduling; pin the hit path deterministically with a sequential
	// re-read of a just-fetched page.
	before := st.Stats().CacheHits
	for i := 0; i < 2; i++ {
		if _, err := st.Get(0); err != nil {
			t.Fatal(err)
		}
	}
	if st.Stats().CacheHits <= before {
		t.Errorf("sequential re-read did not hit the pool: %+v", st.Stats())
	}
}
