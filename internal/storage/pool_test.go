package storage

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// testPages returns a load function over n synthetic pages (each filled
// with its page id) plus a counter of performed loads.
func testPages(n, pageSize int) (load func(uint32) []byte, loads *atomic.Int64) {
	pages := make([][]byte, n)
	for i := range pages {
		pages[i] = bytes.Repeat([]byte{byte(i + 1)}, pageSize)
	}
	loads = &atomic.Int64{}
	return func(p uint32) []byte {
		loads.Add(1)
		return pages[p]
	}, loads
}

// TestPoolShardNormalization pins how the shard count is resolved against
// the capacity: powers of two, GOMAXPROCS default, capacity clamp, and
// the single-shard degenerate cases.
func TestPoolShardNormalization(t *testing.T) {
	cases := []struct {
		capacity, shards, want int
	}{
		{capacity: 0, shards: 16, want: 1},   // caching disabled
		{capacity: 8, shards: 1, want: 1},    // explicit single lock
		{capacity: 8, shards: 3, want: 4},    // round up to power of two
		{capacity: 8, shards: 8, want: 8},    // exact
		{capacity: 2, shards: 16, want: 2},   // clamped to capacity
		{capacity: 3, shards: 16, want: 2},   // clamp keeps power of two
		{capacity: -1, shards: 16, want: 16}, // unbounded: no clamp
		{capacity: 1, shards: 64, want: 1},   // one page, one shard
	}
	for _, c := range cases {
		if got := normalizePoolShards(c.capacity, c.shards); got != c.want {
			t.Errorf("normalizePoolShards(cap=%d, shards=%d) = %d, want %d",
				c.capacity, c.shards, got, c.want)
		}
	}
	// Default: a power of two, at least 1, never above the cap.
	n := normalizePoolShards(-1, 0)
	if n < 1 || n > maxPoolShards || n&(n-1) != 0 {
		t.Errorf("default shard count %d not a clamped power of two", n)
	}
	if want := runtime.GOMAXPROCS(0); n < want && n < maxPoolShards {
		// Rounded up, so it can only be below GOMAXPROCS via the cap.
		t.Errorf("default shard count %d below GOMAXPROCS %d", n, want)
	}
}

// TestShardedPoolCountingExact replays a deterministic access pattern on
// a multi-shard pool and pins the merged counters exactly — the sharded
// pool must be semantically identical to the old single-lock pool for
// sequential use.
func TestShardedPoolCountingExact(t *testing.T) {
	const pageSize = 64
	load, loads := testPages(32, pageSize)
	bp := newBufferPool(8, 4) // 4 shards × 2 frames
	if got := bp.numShards(); got != 4 {
		t.Fatalf("numShards = %d, want 4", got)
	}

	// Touch 8 distinct pages: all misses.
	for p := uint32(0); p < 8; p++ {
		bp.fetch(p, load)
	}
	// Touch them again: pages 0..7 spread 2 per shard (id&3), exactly the
	// per-shard capacity, so every re-read hits.
	for p := uint32(0); p < 8; p++ {
		bp.fetch(p, load)
	}
	st := bp.snapshot()
	want := BufferPoolStats{PageReads: 8, CacheHits: 8, BytesRead: 8 * pageSize}
	if st != want {
		t.Fatalf("after warm replay: %+v, want %+v", st, want)
	}
	if loads.Load() != 8 {
		t.Fatalf("loads = %d, want 8", loads.Load())
	}

	// Page 8 lands in shard 0 (8&3 == 0) which is full: one eviction.
	bp.fetch(8, load)
	st = bp.snapshot()
	if st.PageReads != 9 || st.Evictions != 1 {
		t.Fatalf("after overflow: %+v", st)
	}

	// resetStats keeps frames: re-reading page 8 is a pure hit.
	bp.resetStats()
	bp.fetch(8, load)
	if st = bp.snapshot(); st != (BufferPoolStats{CacheHits: 1}) {
		t.Fatalf("after resetStats: %+v", st)
	}

	// reset drops frames: the same page misses again.
	bp.reset()
	bp.fetch(8, load)
	if st = bp.snapshot(); st.PageReads != 1 || st.CacheHits != 0 {
		t.Fatalf("after reset: %+v", st)
	}
}

// TestFetchStableAcrossHitAndMiss pins fetch's read-only contract from
// the consumer side: the bytes a fetch returns are identical across the
// miss that loads a page and every later hit on its cached frame, on
// both the cached and the cache-disabled paths. (Mutating the returned
// slice is forbidden — isolation for callers is enforced one level up,
// at the Store.Get decode boundary; see TestStoreGetRecordIsolation.)
func TestFetchStableAcrossHitAndMiss(t *testing.T) {
	for _, capacity := range []int{4, 0} {
		t.Run(fmt.Sprintf("capacity=%d", capacity), func(t *testing.T) {
			load, _ := testPages(4, 32)
			want := append([]byte(nil), load(2)...)
			bp := newBufferPool(capacity, 2)
			for i := 0; i < 3; i++ {
				if got := bp.fetch(2, load); !bytes.Equal(got, want) {
					t.Fatalf("fetch %d returned wrong bytes", i)
				}
			}
		})
	}
}

// TestStoreGetRecordIsolation is the aliasing regression test at the
// Store boundary (the enforcement point of the pool's read-only page
// contract): mutating every mutable field of a record decoded out of a
// fetched page must leave subsequent Gets of the same record — served
// from the same cached frame — unaffected.
func TestStoreGetRecordIsolation(t *testing.T) {
	b := NewBuilder(Options{PageSize: 256, PoolPages: 4})
	for i := int64(0); i < 30; i++ {
		if err := b.Append(sampleRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rec.Neighbors {
		rec.Neighbors[i] = -999
	}
	for i := range rec.Payload {
		rec.Payload[i] = 0xEE
	}
	again, err := st.Get(7) // same page: served from the cache
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecord(7)
	for i, nb := range again.Neighbors {
		if nb != want.Neighbors[i] {
			t.Fatalf("cached record corrupted: Neighbors = %v", again.Neighbors)
		}
	}
	if !bytes.Equal(again.Payload, want.Payload) {
		t.Fatalf("cached record corrupted: Payload = %v", again.Payload)
	}
}

// gatedLoad wraps a load function with two gates: entered is closed when
// a load is in flight, and the load blocks until release is closed —
// a deterministic hook to race pool operations against an in-flight
// off-lock load.
type gatedLoad struct {
	load    func(uint32) []byte
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGatedLoad(load func(uint32) []byte) *gatedLoad {
	return &gatedLoad{
		load:    load,
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
}

func (g *gatedLoad) fn(p uint32) []byte {
	g.once.Do(func() { close(g.entered) })
	<-g.release
	return g.load(p)
}

// TestSingleflightJoinsInflightLoad pins duplicate suppression: while one
// goroutine's load of a page is in flight, further fetches of the same
// page join it — one load total, the joiners counted as hits — and all
// callers observe the correct page bytes.
func TestSingleflightJoinsInflightLoad(t *testing.T) {
	load, loads := testPages(4, 32)
	want := append([]byte(nil), load(1)...)
	loads.Store(0)
	g := newGatedLoad(load)
	bp := newBufferPool(8, 2)

	const joiners = 4
	var wg sync.WaitGroup
	results := make([][]byte, joiners+1)
	wg.Add(1)
	go func() { defer wg.Done(); results[0] = bp.fetch(1, g.fn) }()
	<-g.entered

	// The load is provably in flight and holds no lock: fetches of OTHER
	// pages in the same shard must complete (this deadlocked the old
	// load-under-lock design — the actual bugfix under test).
	bp.fetch(3, load) // 3&1 == 1&1: same shard as the gated page

	for i := 1; i <= joiners; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); results[i] = bp.fetch(1, g.fn) }(i)
	}
	// Joiners register synchronously under the shard lock before waiting;
	// give them a beat to do so, then release the load.
	for {
		if st := bp.snapshot(); st.CacheHits >= joiners {
			break
		}
		runtime.Gosched()
	}
	close(g.release)
	wg.Wait()

	for i, r := range results {
		if !bytes.Equal(r, want) {
			t.Fatalf("caller %d got wrong bytes", i)
		}
	}
	if loads.Load() != 2 { // one for the gated page, one for page 3
		t.Fatalf("loads = %d, want 2 (duplicates not suppressed)", loads.Load())
	}
	st := bp.snapshot()
	if st.PageReads != 2 || st.CacheHits != joiners {
		t.Fatalf("stats = %+v, want 2 reads, %d hits", st, joiners)
	}
}

// TestResetDetachesInflightLoad pins the reset contract of the off-lock
// design: a DropCache while a load is in flight must not let that load
// resurrect a stale frame or pollute the zeroed counters, while its
// waiters still receive valid data. Both the cached path (detached via
// loads-map identity) and the cache-disabled path (detached via the
// shard generation) are covered.
func TestResetDetachesInflightLoad(t *testing.T) {
	for _, capacity := range []int{8, 0} {
		t.Run(fmt.Sprintf("capacity=%d", capacity), func(t *testing.T) {
			load, _ := testPages(4, 32)
			want := append([]byte(nil), load(1)...)
			g := newGatedLoad(load)
			bp := newBufferPool(capacity, 2)

			var got []byte
			done := make(chan struct{})
			go func() { defer close(done); got = bp.fetch(1, g.fn) }()
			<-g.entered

			bp.reset() // the load is provably in flight across this reset
			close(g.release)
			<-done

			if !bytes.Equal(got, want) {
				t.Fatalf("fetch across reset returned wrong bytes")
			}
			if st := bp.snapshot(); st != (BufferPoolStats{}) {
				t.Fatalf("detached load leaked into zeroed counters: %+v", st)
			}
			// No stale frame may have been installed: the next fetch of the
			// page must be a miss (a resurrected frame would make it a hit).
			bp.fetch(1, load)
			if st := bp.snapshot(); st.PageReads != 1 || st.CacheHits != 0 {
				t.Fatalf("stale frame resurrected after reset: %+v", st)
			}
		})
	}
}

// TestResetStatsKeepsInflightLoadAttached pins the complementary
// contract: resetStats (counters only) does NOT detach an in-flight load
// — the load completes into the fresh counters exactly once, and its
// frame stays cached.
func TestResetStatsKeepsInflightLoadAttached(t *testing.T) {
	load, _ := testPages(4, 32)
	g := newGatedLoad(load)
	bp := newBufferPool(8, 2)

	done := make(chan struct{})
	go func() { defer close(done); bp.fetch(1, g.fn) }()
	<-g.entered
	bp.resetStats()
	close(g.release)
	<-done

	st := bp.snapshot()
	if st.PageReads != 1 || st.BytesRead != 32 {
		t.Fatalf("in-flight load across resetStats counted %+v, want exactly one read", st)
	}
	bp.fetch(1, load)
	if st = bp.snapshot(); st.CacheHits != 1 {
		t.Fatalf("frame from straddling load not cached: %+v", st)
	}
}

// TestConcurrentResetSoak races fetches against reset/resetStats/snapshot
// from many goroutines (run under -race) and checks the counters still
// satisfy the pool's invariants afterwards. The old global-lock design
// made this trivially safe; the off-lock design must prove it.
func TestConcurrentResetSoak(t *testing.T) {
	const (
		pages    = 64
		pageSize = 128
		workers  = 8
		reps     = 400
	)
	load, _ := testPages(pages, pageSize)
	bp := newBufferPool(16, 0)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < reps; i++ {
				switch {
				case w == 0 && i%64 == 63:
					bp.reset()
				case w == 1 && i%64 == 63:
					bp.resetStats()
				case i%17 == 0:
					_ = bp.snapshot()
				default:
					p := uint32((w*31 + i*7) % pages)
					data := bp.fetch(p, load)
					if len(data) != pageSize || data[0] != byte(p+1) {
						t.Errorf("worker %d: bad page %d data", w, p)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	st := bp.snapshot()
	if st.PageReads < 0 || st.CacheHits < 0 || st.Evictions < 0 {
		t.Fatalf("negative counters: %+v", st)
	}
	if st.BytesRead != int64(st.PageReads)*pageSize {
		t.Fatalf("BytesRead %d != PageReads %d × %d (double- or mis-counted load)",
			st.BytesRead, st.PageReads, pageSize)
	}

	// Quiescent epilogue: exact counting must hold again after the storm.
	bp.reset()
	bp.fetch(0, load)
	bp.fetch(0, load)
	if st = bp.snapshot(); st.PageReads != 1 || st.CacheHits != 1 {
		t.Fatalf("exact accounting lost after soak: %+v", st)
	}
}

// BenchmarkStoreParallelFetch measures store-backed fetch throughput
// under goroutine parallelism (run with -cpu 1,4,8) at 1 lock shard —
// the old single-mutex layout — versus the default shard count. The
// workload is miss-heavy (the pool holds ~15% of the pages), so every
// fetch mutates its shard's LRU bookkeeping: with one shard all
// goroutines serialize on that mutex, with the default count they spread
// across the lock shards. The spread between the sub-benchmarks at
// -cpu > 1 is the serialization this PR removes.
func BenchmarkStoreParallelFetch(b *testing.B) {
	const records = 20_000
	for _, shards := range []int{1, 0} {
		name := "shards=default"
		if shards == 1 {
			name = "shards=1"
		}
		bl := NewBuilder(Options{PageSize: 512, PoolPages: 64, PoolShards: shards})
		for i := int64(0); i < records; i++ {
			if err := bl.Append(sampleRecord(i)); err != nil {
				b.Fatal(err)
			}
		}
		st, err := bl.Build()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportMetric(float64(st.PoolShards()), "shards")
			var worker atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				// Per-goroutine id sequence: no shared state on the hot
				// loop, distinct goroutines walk interleaved strides.
				id := worker.Add(1) * 7919
				for pb.Next() {
					id += 131
					if _, err := st.Get(id % records); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// TestPanickingLoadDoesNotStrandPage pins the off-lock design's panic
// safety: a load that panics must propagate the panic to its caller but
// leave the pool usable — waiters joined to the call unblock, and later
// fetches of the same page load fresh instead of hanging on a stranded
// in-flight entry.
func TestPanickingLoadDoesNotStrandPage(t *testing.T) {
	load, _ := testPages(4, 32)
	bp := newBufferPool(8, 2)

	g := newGatedLoad(load)
	panicking := func(p uint32) []byte {
		g.fn(p) // signal entered, wait for release
		panic("simulated IO failure")
	}

	// A joiner attached to the doomed load must unblock (with nil data).
	joined := make(chan []byte, 1)
	loaderDone := make(chan interface{}, 1)
	go func() {
		defer func() { loaderDone <- recover() }()
		bp.fetch(1, panicking)
	}()
	<-g.entered
	go func() { joined <- bp.fetch(1, load) }()
	for {
		if st := bp.snapshot(); st.CacheHits == 1 { // the joiner registered
			break
		}
		runtime.Gosched()
	}
	close(g.release)

	if r := <-loaderDone; r == nil {
		t.Fatal("load panic did not propagate to the fetching goroutine")
	}
	if data := <-joined; data != nil {
		t.Errorf("joiner of a panicked load got %d bytes, want nil", len(data))
	}
	// The page is not stranded: a fresh fetch loads and counts normally.
	want := append([]byte(nil), load(1)...)
	if got := bp.fetch(1, load); !bytes.Equal(got, want) {
		t.Fatal("post-panic fetch returned wrong bytes")
	}
	if st := bp.snapshot(); st.PageReads != 1 {
		t.Errorf("post-panic stats: %+v, want exactly one counted read", st)
	}
}
