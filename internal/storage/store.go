package storage

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Store is a read-only paged object store built once by a Builder. Record
// fetches go through a sharded LRU buffer pool whose counters expose the
// simulated IO cost. Get, Stats, ResetStats and DropCache are safe for
// concurrent use: the pages and record directory are immutable, and the
// buffer pool partitions its mutable state over power-of-two lock shards
// keyed by page id, with page loads running outside the shard locks
// (duplicate loads of one page are suppressed singleflight-style). Fetches
// only contend when they land on the same shard at the same instant, so
// parallel query batches scale with cores instead of serializing on one
// pool mutex; Options.PoolShards tunes the shard count.
type Store struct {
	pageSize int
	pages    [][]byte
	dir      map[int64]RID
	pool     *bufferPool
}

// Options configures a Builder.
type Options struct {
	// PageSize is the page size in bytes; DefaultPageSize when <= 0.
	PageSize int
	// PoolPages is the buffer pool capacity in pages. 0 disables caching;
	// negative means "unbounded" (everything stays cached).
	PoolPages int
	// PoolShards is the number of buffer-pool lock shards. <= 0 picks a
	// power of two at or above GOMAXPROCS; 1 reproduces a single-lock
	// pool; other values round up to a power of two, capped at 128. The
	// count also never exceeds a positive PoolPages (per-shard capacity
	// is ceil(PoolPages/shards), so the effective pool size rounds up to
	// at most PoolPages+shards-1 pages).
	PoolShards int
}

// Builder accumulates records and produces an immutable Store.
type Builder struct {
	opts    Options
	pages   [][]byte
	dir     map[int64]RID
	current *pageBuilder
	err     error
}

// NewBuilder returns a Builder with the given options.
func NewBuilder(opts Options) *Builder {
	if opts.PageSize <= 0 {
		opts.PageSize = DefaultPageSize
	}
	return &Builder{
		opts:    opts,
		dir:     make(map[int64]RID),
		current: newPageBuilder(opts.PageSize),
	}
}

// Append adds a record. Records with duplicate IDs are rejected.
func (b *Builder) Append(rec PointRecord) error {
	if b.err != nil {
		return b.err
	}
	if _, dup := b.dir[rec.ID]; dup {
		return fmt.Errorf("storage: duplicate record id %d", rec.ID)
	}
	buf, err := rec.encode(make([]byte, 0, rec.encodedLen()))
	if err != nil {
		b.err = err
		return err
	}
	if len(buf)+pageHeaderLen+slotDirLen > b.opts.PageSize {
		return fmt.Errorf("%w: %d bytes, page size %d", ErrRecordTooLarge, len(buf), b.opts.PageSize)
	}
	if !b.current.fits(len(buf)) {
		b.pages = append(b.pages, b.current.seal())
		b.current = newPageBuilder(b.opts.PageSize)
	}
	slot := b.current.add(buf)
	b.dir[rec.ID] = RID{Page: uint32(len(b.pages)), Slot: slot}
	return nil
}

// Build seals the final page and returns the Store. The Builder must not
// be used afterwards.
func (b *Builder) Build() (*Store, error) {
	if b.err != nil {
		return nil, b.err
	}
	if !b.current.empty() {
		b.pages = append(b.pages, b.current.seal())
		b.current = newPageBuilder(b.opts.PageSize)
	}
	return &Store{
		pageSize: b.opts.PageSize,
		pages:    b.pages,
		dir:      b.dir,
		pool:     newBufferPool(b.opts.PoolPages, b.opts.PoolShards),
	}, nil
}

// Len returns the number of stored records.
func (s *Store) Len() int { return len(s.dir) }

// NumPages returns the number of pages in the heap file.
func (s *Store) NumPages() int { return len(s.pages) }

// PageSize returns the page size in bytes.
func (s *Store) PageSize() int { return s.pageSize }

// PoolShards returns the resolved buffer-pool lock-shard count.
func (s *Store) PoolShards() int { return s.pool.numShards() }

// Get fetches the record with the given id through the buffer pool. The
// returned record shares no memory with the cache or the heap file:
// fetched pages are read-only inside the store, and decodeRecord
// deep-copies every variable field at this boundary, so callers may
// mutate the record freely.
func (s *Store) Get(id int64) (PointRecord, error) {
	rid, ok := s.dir[id]
	if !ok {
		return PointRecord{}, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	page := s.pool.fetch(rid.Page, func(p uint32) []byte { return s.pages[p] })
	raw, err := pageRecord(page, rid.Slot)
	if err != nil {
		return PointRecord{}, err
	}
	return decodeRecord(raw)
}

// Stats returns the accumulated buffer pool statistics.
func (s *Store) Stats() BufferPoolStats { return s.pool.snapshot() }

// ResetStats zeroes the IO counters without dropping cached pages.
func (s *Store) ResetStats() { s.pool.resetStats() }

// DropCache empties the buffer pool and zeroes the counters, simulating a
// cold start.
func (s *Store) DropCache() { s.pool.reset() }

// Scan calls fn for every record in heap order; fn returning false stops
// the scan. The scan bypasses the buffer pool (sequential IO).
func (s *Store) Scan(fn func(PointRecord) bool) error {
	for _, page := range s.pages {
		n := pageSlotCount(page)
		for slot := 0; slot < n; slot++ {
			raw, err := pageRecord(page, uint16(slot))
			if err != nil {
				return err
			}
			rec, err := decodeRecord(raw)
			if err != nil {
				return err
			}
			if !fn(rec) {
				return nil
			}
		}
	}
	return nil
}

// IDs returns all record ids in ascending order.
func (s *Store) IDs() []int64 {
	out := make([]int64, 0, len(s.dir))
	for id := range s.dir {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// file format:
//
//	magic "VAQSTOR1" (8 bytes)
//	uint32 pageSize, uint32 pageCount, uint32 dirCount
//	pages (pageCount × pageSize bytes)
//	directory entries: int64 id, uint32 page, uint16 slot
var fileMagic = [8]byte{'V', 'A', 'Q', 'S', 'T', 'O', 'R', '1'}

// WriteTo serializes the store. It implements io.WriterTo.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	var written int64
	count := func(n int, err error) error {
		written += int64(n)
		return err
	}
	if err := count(w.Write(fileMagic[:])); err != nil {
		return written, err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(s.pageSize))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(s.pages)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(s.dir)))
	if err := count(w.Write(hdr[:])); err != nil {
		return written, err
	}
	for _, p := range s.pages {
		if err := count(w.Write(p)); err != nil {
			return written, err
		}
	}
	var ent [14]byte
	for _, id := range s.IDs() {
		rid := s.dir[id]
		binary.LittleEndian.PutUint64(ent[0:], uint64(id))
		binary.LittleEndian.PutUint32(ent[8:], rid.Page)
		binary.LittleEndian.PutUint16(ent[12:], rid.Slot)
		if err := count(w.Write(ent[:])); err != nil {
			return written, err
		}
	}
	return written, nil
}

// Read deserializes a store written by WriteTo. The pool capacity is taken
// from opts (page size in opts is ignored; the file's is used).
func Read(r io.Reader, opts Options) (*Store, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("storage: reading magic: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic[:])
	}
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("storage: reading header: %w", err)
	}
	pageSize := int(binary.LittleEndian.Uint32(hdr[0:]))
	pageCount := int(binary.LittleEndian.Uint32(hdr[4:]))
	dirCount := int(binary.LittleEndian.Uint32(hdr[8:]))
	if pageSize <= 0 || pageSize > 1<<26 {
		return nil, fmt.Errorf("%w: implausible page size %d", ErrCorrupt, pageSize)
	}
	pages := make([][]byte, pageCount)
	for i := range pages {
		pages[i] = make([]byte, pageSize)
		if _, err := io.ReadFull(r, pages[i]); err != nil {
			return nil, fmt.Errorf("storage: reading page %d: %w", i, err)
		}
	}
	dir := make(map[int64]RID, dirCount)
	var ent [14]byte
	for i := 0; i < dirCount; i++ {
		if _, err := io.ReadFull(r, ent[:]); err != nil {
			return nil, fmt.Errorf("storage: reading directory: %w", err)
		}
		id := int64(binary.LittleEndian.Uint64(ent[0:]))
		dir[id] = RID{
			Page: binary.LittleEndian.Uint32(ent[8:]),
			Slot: binary.LittleEndian.Uint16(ent[12:]),
		}
	}
	return &Store{
		pageSize: pageSize,
		pages:    pages,
		dir:      dir,
		pool:     newBufferPool(opts.PoolPages, opts.PoolShards),
	}, nil
}
