// Package remote is the fan-out client behind vaq.RemoteEngine: an area-
// query engine whose shards are areaserve processes reached over HTTP.
// It mirrors package shard's scatter-gather semantics — backends whose
// advertised bounds miss a region's MBR are pruned, per-backend results
// remap into global id space and merge into ascending order, statistics
// aggregate across the fan-out — so a remote engine answers every query
// byte-identically to a local engine over the union of its backends'
// points.
//
// Failure handling: unary queries (Query, QueryAll, Count, KNearest) are
// idempotent and retry transport-level failures per backend with
// exponential backoff; semantic errors (bad request, no data) and caller
// cancellation never retry. Config.Degraded selects the partial-failure
// policy: fail-fast (default) surfaces the first backend error, degraded
// drops backends that still fail after retries and serves from the
// survivors (erroring only when every live backend fails). Each streams
// are never retried mid-flight and always fail fast — frames already
// yielded cannot be unseen.
package remote

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/wire"
)

// cancelStride is the number of stream frames processed between explicit
// context-cancellation checks, mirroring core's candidate-boundary
// stride: one check per frame would be pure overhead on the hot path,
// while a stride bounds cancellation latency to a few dozen cheap frame
// decodes.
const cancelStride = 64

// Backend describes one areaserve instance. Dial fills everything but URL
// from the backend's /v1/info.
type Backend struct {
	// URL is the server base ("http://host:port"), no trailing slash.
	URL string
	// IDOffset is added to the backend's local ids to form global ids.
	IDOffset int64
	// Bounds is the backend's data MBR, used to prune fan-out. A zero
	// (empty) rect disables pruning for this backend.
	Bounds geom.Rect
	// Len is the backend's point count (advisory; 0 skips KNearest).
	Len int
}

// Config tunes the client engine.
type Config struct {
	// Client is the HTTP client used for every request; nil uses a
	// dedicated client with sane defaults.
	Client *http.Client
	// PerTryTimeout bounds each unary attempt; 0 leaves attempts bounded
	// only by the caller's context.
	PerTryTimeout time.Duration
	// Retries is the number of extra attempts after a retryable unary
	// failure (transport error or 5xx). 0 disables retrying.
	Retries int
	// RetryBackoff is the sleep before the first retry, doubling per
	// attempt (default 50ms when Retries > 0).
	RetryBackoff time.Duration
	// Degraded selects the partial-failure policy: true drops backends
	// that fail after retries and merges the survivors; false (default)
	// fails the query on the first backend error.
	Degraded bool
}

// Engine fans area queries out to remote backends. It is immutable after
// construction and safe for concurrent use.
type Engine struct {
	backends []Backend
	cfg      Config
	client   *http.Client
	length   int
	bounds   geom.Rect
	dropped  atomic.Uint64 // degraded-mode: backend queries dropped
}

// New builds an engine over explicitly configured backends.
func New(backends []Backend, cfg Config) (*Engine, error) {
	if len(backends) == 0 {
		return nil, errors.New("remote: no backends")
	}
	e := &Engine{
		backends: append([]Backend(nil), backends...),
		cfg:      cfg,
		client:   cfg.Client,
		bounds:   geom.EmptyRect(),
	}
	if e.client == nil {
		e.client = &http.Client{}
	}
	if e.cfg.Retries > 0 && e.cfg.RetryBackoff <= 0 {
		e.cfg.RetryBackoff = 50 * time.Millisecond
	}
	for i, b := range e.backends {
		// The natural "bounds unknown" value is the zero Rect, but that is
		// a degenerate point at the origin, not an empty rectangle — it
		// would prune the backend from almost every fan-out. Normalize it
		// to the true empty rect, which disables pruning instead.
		if b.Bounds == (geom.Rect{}) {
			b.Bounds = geom.EmptyRect()
			e.backends[i].Bounds = b.Bounds
		}
		e.length += b.Len
		if !b.Bounds.IsEmpty() {
			e.bounds = e.bounds.Union(b.Bounds)
		}
	}
	return e, nil
}

// Dial discovers each URL's shape from GET /v1/info and builds an engine
// over the results: id offsets, bounds and sizes all come from the
// servers, so a client needs nothing but addresses.
func Dial(ctx context.Context, urls []string, cfg Config) (*Engine, error) {
	if len(urls) == 0 {
		return nil, errors.New("remote: no backend URLs")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	backends := make([]Backend, len(urls))
	for i, u := range urls {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u+"/v1/info", nil)
		if err != nil {
			return nil, fmt.Errorf("remote: %s: %w", u, err)
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, fmt.Errorf("remote: %s: %w", u, err)
		}
		var info wire.Info
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("remote: %s: decoding /v1/info: %w", u, err)
		}
		backends[i] = Backend{URL: u, IDOffset: info.IDOffset, Bounds: info.Rect(), Len: info.Len}
	}
	cfg.Client = client
	return New(backends, cfg)
}

// Len returns the total advertised point count across backends.
func (e *Engine) Len() int { return e.length }

// Bounds returns the union of the backends' advertised bounds.
func (e *Engine) Bounds() geom.Rect { return e.bounds }

// NumBackends returns the backend count.
func (e *Engine) NumBackends() int { return len(e.backends) }

// Dropped returns the cumulative number of backend queries dropped under
// the degraded partial-failure policy.
func (e *Engine) Dropped() uint64 { return e.dropped.Load() }

// survivors returns the indexes of backends whose bounds intersect the
// region's MBR (backends without bounds always survive).
func (e *Engine) survivors(region core.Region) []int {
	mbr := region.Bounds()
	var out []int
	for i, b := range e.backends {
		if b.Bounds.IsEmpty() || b.Bounds.Intersects(mbr) {
			out = append(out, i)
		}
	}
	return out
}

// backendMethod maps the caller's method to the one backends execute.
// Like shard.shardMethod: with more than one backend each holds a
// sub-sampled point set whose sparser Voronoi diagram can strand result
// islands under the published segment heuristic, so VoronoiBFS upgrades
// to the strict cell-intersection expansion, which stays complete. A
// single backend holds the whole dataset and executes the caller's
// method verbatim.
func (e *Engine) backendMethod(m core.Method) core.Method {
	if m == core.VoronoiBFS && len(e.backends) > 1 {
		return core.VoronoiBFSStrict
	}
	return m
}

type httpError struct {
	status int
	body   *wire.Error
}

func (h *httpError) Error() string {
	if h.body != nil {
		return fmt.Sprintf("http %d: %s: %s", h.status, h.body.Code, h.body.Message)
	}
	return fmt.Sprintf("http %d", h.status)
}

// transientError marks a unary attempt failure as retryable: transport
// errors (connection refused, reset, truncated body) and responses whose
// wire code is internal (or missing). Semantic wire errors and context
// errors never carry the mark.
type transientError struct{ err error }

func (t *transientError) Error() string { return t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

func retryable(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

// post runs one unary request against a backend with the retry protocol:
// up to 1+Retries attempts, each bounded by PerTryTimeout, deadline
// propagated via the wire.TimeoutHeader, exponential backoff between
// attempts, and no retry once the caller's own context is done.
func (e *Engine) post(ctx context.Context, baseURL, path string, body, dst any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("remote: encoding request: %w", err)
	}
	backoff := e.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = e.postOnce(ctx, baseURL, path, payload, dst)
		if lastErr == nil {
			return nil
		}
		// The caller's context ending trumps everything — its error is
		// the query's error, and retrying against it is pointless.
		if err := ctx.Err(); err != nil {
			return err
		}
		// A deadline that fired while the caller is still alive was the
		// per-attempt budget, not the caller's — retryable by design.
		canRetry := retryable(lastErr) ||
			(e.cfg.PerTryTimeout > 0 && errors.Is(lastErr, context.DeadlineExceeded))
		if attempt >= e.cfg.Retries || !canRetry {
			return lastErr
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return ctx.Err()
		}
		backoff *= 2
	}
}

// postOnce is a single attempt: per-try timeout, deadline header, error
// classification.
func (e *Engine) postOnce(ctx context.Context, baseURL, path string, payload []byte, dst any) error {
	if e.cfg.PerTryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.PerTryTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	setTimeoutHeader(req, ctx)
	resp, err := e.client.Do(req)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return &transientError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		he := &httpError{status: resp.StatusCode}
		var we wire.Error
		if json.NewDecoder(resp.Body).Decode(&we) == nil && we.Code != "" {
			if we.Code != wire.CodeInternal {
				// Semantic failure: surface the sentinel-mapped error
				// (ErrNoData, context.DeadlineExceeded, ...) rather than
				// the transport wrapper — the code wins over the status.
				return we.Err()
			}
			he.body = &we
		}
		return &transientError{he}
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		return &transientError{fmt.Errorf("decoding response: %w", err)}
	}
	return nil
}

// setTimeoutHeader propagates ctx's remaining budget, if any, in integer
// milliseconds (rounded up so a sub-millisecond remainder still sends 1).
func setTimeoutHeader(req *http.Request, ctx context.Context) {
	if d, ok := ctx.Deadline(); ok {
		ms := time.Until(d).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set(wire.TimeoutHeader, fmt.Sprintf("%d", ms))
	}
}

// remap converts a backend's local ids to global in place.
func remap(ids []int64, offset int64) []int64 {
	for i := range ids {
		ids[i] += offset
	}
	return ids
}

// mergeSorted concatenates per-backend ascending runs and sorts, reusing
// dst (shard's gather, verbatim semantics: nil dst with no results stays
// nil; non-nil dst empties to dst[:0]).
func mergeSorted(dst []int64, parts [][]int64) []int64 {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		if dst == nil {
			return nil
		}
		return dst[:0]
	}
	if dst == nil {
		dst = make([]int64, 0, total)
	} else {
		dst = dst[:0]
	}
	for _, p := range parts {
		dst = append(dst, p...)
	}
	sort.Slice(dst, func(a, b int) bool { return dst[a] < dst[b] })
	return dst
}

// finalize recomputes the result-dependent aggregate counters after the
// gather step, exactly as the sharded engine does.
func finalize(agg *core.Stats, resultSize int) {
	agg.ResultSize = resultSize
	agg.RedundantValidations = agg.Candidates - resultSize
}

// observeFanOut records the scatter width into the trace when one rides
// along (nil-safe).
func observeFanOut(tr *obs.QueryTrace, alive int) { tr.SetFanOut(alive) }

// fanOut runs fn once per alive backend concurrently and gathers errors,
// applying the partial-failure policy: fail-fast returns the first error;
// degraded drops failing backends (counting them) unless every backend
// failed.
func (e *Engine) fanOut(alive []int, fn func(slot, bi int) error) error {
	errs := make([]error, len(alive))
	var wg sync.WaitGroup
	for slot, bi := range alive {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[slot] = fn(slot, bi)
		}()
	}
	wg.Wait()
	failed := 0
	var firstErr error
	for slot, err := range errs {
		if err == nil {
			continue
		}
		failed++
		if firstErr == nil {
			firstErr = fmt.Errorf("remote: backend %s: %w", e.backends[alive[slot]].URL, err)
		}
	}
	if failed == 0 {
		return nil
	}
	if !e.cfg.Degraded || failed == len(alive) {
		return firstErr
	}
	e.dropped.Add(uint64(failed))
	return nil
}

// QueryRegionSpec fans one area query out to the surviving backends and
// merges, mirroring shard.Engine.QueryRegionSpec: CountOnly sums counts
// without a merge, Limit truncates the merged result (each backend is
// asked for at most Limit, so the scatter materializes at most
// Limit×backends before truncation), spec.Dest backs the merged slice.
func (e *Engine) QueryRegionSpec(ctx context.Context, region core.Region, spec core.QuerySpec) ([]int64, core.Stats, error) {
	agg := core.Stats{Method: spec.Method}
	wr, err := wire.EncodeRegion(region)
	if err != nil {
		return nil, agg, fmt.Errorf("remote: %w", err)
	}
	alive := e.survivors(region)
	observeFanOut(spec.Trace, len(alive))
	if len(alive) == 0 {
		if err := ctx.Err(); err != nil || spec.CountOnly || spec.Dest == nil {
			return nil, agg, err
		}
		return spec.Dest[:0], agg, nil
	}
	req := wire.QueryRequest{Region: wr, Options: wire.Options{
		Method:    wire.MethodString(e.backendMethod(spec.Method)),
		CountOnly: spec.CountOnly,
		Limit:     spec.Limit,
	}}
	parts := make([][]int64, len(alive))
	stats := make([]core.Stats, len(alive))
	err = e.fanOut(alive, func(slot, bi int) error {
		var resp wire.QueryResponse
		if err := e.post(ctx, e.backends[bi].URL, "/v1/query", req, &resp); err != nil {
			return err
		}
		if resp.Stats != nil {
			stats[slot] = resp.Stats.ToStats()
		}
		if !spec.CountOnly {
			parts[slot] = remap(resp.IDs, e.backends[bi].IDOffset)
		}
		return nil
	})
	for _, st := range stats {
		agg.Add(st)
	}
	if err != nil {
		return nil, agg, err
	}
	if spec.CountOnly {
		if spec.Limit > 0 && agg.ResultSize > spec.Limit {
			finalize(&agg, spec.Limit)
		}
		return nil, agg, nil
	}
	var mergeStart time.Time
	if spec.Trace != nil {
		mergeStart = time.Now()
	}
	out := mergeSorted(spec.Dest, parts)
	if spec.Limit > 0 && len(out) > spec.Limit {
		out = out[:spec.Limit]
	}
	if spec.Trace != nil {
		spec.Trace.Add(obs.PhaseMerge, time.Since(mergeStart))
	}
	finalize(&agg, len(out))
	return out, agg, nil
}

// QueryRegionsSpec fans a batch out: each backend answers the whole batch
// in one /v1/queryall round trip, and per-region results merge across
// backends. Results align with regions, each in ascending global order.
func (e *Engine) QueryRegionsSpec(ctx context.Context, regions []core.Region, spec core.QuerySpec) ([][]int64, core.Stats, error) {
	agg := core.Stats{Method: spec.Method}
	if len(regions) == 0 {
		return [][]int64{}, agg, ctx.Err()
	}
	if spec.CountOnly && spec.Limit > 0 && len(e.backends) > 1 {
		// The batch wire response carries only aggregate counts, so the
		// per-region Limit cap cannot be applied to a multi-backend
		// count-only batch after the fact. Fall back to per-region unary
		// queries, which cap exactly.
		total := 0
		for _, region := range regions {
			_, st, err := e.QueryRegionSpec(ctx, region, spec)
			if err != nil {
				return nil, agg, err
			}
			total += st.ResultSize
			agg.Add(st)
		}
		finalize(&agg, total)
		return nil, agg, nil
	}
	req := wire.BatchRequest{
		Regions: make([]wire.Region, len(regions)),
		Options: wire.Options{
			Method:    wire.MethodString(e.backendMethod(spec.Method)),
			CountOnly: spec.CountOnly,
			Limit:     spec.Limit,
		},
	}
	for i, r := range regions {
		var err error
		if req.Regions[i], err = wire.EncodeRegion(r); err != nil {
			return nil, agg, fmt.Errorf("remote: region %d: %w", i, err)
		}
	}
	alive := make([]int, len(e.backends))
	for i := range alive {
		alive[i] = i
	}
	observeFanOut(spec.Trace, len(alive))
	perBackend := make([][][]int64, len(alive))
	stats := make([]core.Stats, len(alive))
	err := e.fanOut(alive, func(slot, bi int) error {
		var resp wire.BatchResponse
		if err := e.post(ctx, e.backends[bi].URL, "/v1/queryall", req, &resp); err != nil {
			return err
		}
		if len(resp.Results) != len(regions) {
			return fmt.Errorf("batch answered %d results for %d regions", len(resp.Results), len(regions))
		}
		if resp.Stats != nil {
			stats[slot] = resp.Stats.ToStats()
		}
		for _, ids := range resp.Results {
			remap(ids, e.backends[bi].IDOffset)
		}
		perBackend[slot] = resp.Results
		return nil
	})
	for _, st := range stats {
		agg.Add(st)
	}
	if err != nil {
		return nil, agg, err
	}
	out := make([][]int64, len(regions))
	parts := make([][]int64, 0, len(alive))
	resultSize := 0
	for ri := range regions {
		parts = parts[:0]
		for slot := range perBackend {
			if perBackend[slot] != nil {
				parts = append(parts, perBackend[slot][ri])
			}
		}
		merged := mergeSorted(nil, parts)
		if spec.Limit > 0 && len(merged) > spec.Limit {
			merged = merged[:spec.Limit]
		}
		if merged == nil {
			merged = []int64{}
		}
		out[ri] = merged
		resultSize += len(merged)
	}
	if spec.CountOnly {
		out = nil
		resultSize = agg.ResultSize
	}
	finalize(&agg, resultSize)
	return out, agg, nil
}

// EachRegion streams an area query, walking backends one after another
// (like the sharded engine walks shards) and yielding each frame as it
// arrives: global id plus the server-reported position. spec.Limit bounds
// total yields across backends. Streams never retry and always fail fast —
// an error mid-stream surfaces immediately even under the degraded
// policy, because frames already yielded cannot be withdrawn.
func (e *Engine) EachRegion(ctx context.Context, region core.Region, spec core.QuerySpec, yield func(id int64, pos geom.Point) bool) (core.Stats, error) {
	agg := core.Stats{Method: spec.Method}
	wr, err := wire.EncodeRegion(region)
	if err != nil {
		return agg, fmt.Errorf("remote: %w", err)
	}
	alive := e.survivors(region)
	observeFanOut(spec.Trace, len(alive))
	remaining := spec.Limit
	for _, bi := range alive {
		opts := wire.Options{Method: wire.MethodString(e.backendMethod(spec.Method))}
		if spec.Limit > 0 {
			opts.Limit = remaining
		}
		st, stopped, err := e.streamOne(ctx, e.backends[bi], wire.QueryRequest{Region: wr, Options: opts}, yield)
		agg.Add(st)
		if err != nil {
			finalize(&agg, agg.ResultSize)
			return agg, fmt.Errorf("remote: backend %s: %w", e.backends[bi].URL, err)
		}
		if stopped {
			break
		}
		if spec.Limit > 0 {
			remaining -= st.ResultSize
			if remaining <= 0 {
				break
			}
		}
	}
	finalize(&agg, agg.ResultSize)
	return agg, ctx.Err()
}

// streamOne runs one backend's /v1/each stream to completion (or yield
// stop). A stream that ends without an EOF frame was truncated by a
// disconnect and reports an error rather than passing as complete.
func (e *Engine) streamOne(ctx context.Context, b Backend, req wire.QueryRequest, yield func(id int64, pos geom.Point) bool) (core.Stats, bool, error) {
	var st core.Stats
	payload, err := json.Marshal(req)
	if err != nil {
		return st, false, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, b.URL+"/v1/each", bytes.NewReader(payload))
	if err != nil {
		return st, false, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	setTimeoutHeader(hreq, ctx)
	resp, err := e.client.Do(hreq)
	if err != nil {
		return st, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		he := &httpError{status: resp.StatusCode}
		var we wire.Error
		if json.NewDecoder(resp.Body).Decode(&we) == nil && we.Code != "" {
			if we.Code != wire.CodeInternal {
				return st, false, we.Err()
			}
			he.body = &we
		}
		return st, false, he
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	frames := 0
	for sc.Scan() {
		// Cancellation check on frame boundaries (core's cancelStride
		// idiom): a canceled context does eventually tear down the body
		// read through the request's transport, but that only fires on the
		// next network read — a consumer wedged between buffered frames, or
		// a slow yield, would otherwise keep draining the buffer after the
		// caller gave up.
		if frames%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return st, false, err
			}
		}
		frames++
		var fr wire.Frame
		if err := json.Unmarshal(sc.Bytes(), &fr); err != nil {
			return st, false, fmt.Errorf("bad stream frame: %w", err)
		}
		if fr.EOF {
			if fr.Err != nil {
				if fr.Stats != nil {
					st = fr.Stats.ToStats()
				}
				return st, false, fr.Err.Err()
			}
			if fr.Stats != nil {
				st = fr.Stats.ToStats()
			}
			return st, false, nil
		}
		if !yield(fr.ID+b.IDOffset, geom.Point{X: fr.X, Y: fr.Y}) {
			// Count what was consumed; the server notices the closed
			// connection on its next write.
			st.ResultSize++
			return st, true, nil
		}
		st.ResultSize++
	}
	if err := sc.Err(); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return st, false, cerr
		}
		return st, false, err
	}
	return st, false, io.ErrUnexpectedEOF
}

// KNearest merges per-backend k-nearest answers with the multi-shard
// frontier of shard.Engine.KNearest: backends in increasing MINDIST(q,
// bounds) order, stopping once the next backend's bounds cannot beat the
// current k-th distance; candidates order by (distance², ascending global
// id) using distances recomputed client-side from the servers' bit-exact
// coordinates, so results match a local engine over the union exactly.
func (e *Engine) KNearest(ctx context.Context, q geom.Point, k int) ([]int64, core.Stats, error) {
	var stats core.Stats
	if e.length == 0 {
		return nil, stats, core.ErrNoData
	}
	if k <= 0 {
		return nil, stats, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}

	order := make([]int, 0, len(e.backends))
	mindist := make([]float64, len(e.backends))
	for bi, b := range e.backends {
		if b.Len == 0 {
			continue
		}
		order = append(order, bi)
		if b.Bounds.IsEmpty() {
			mindist[bi] = 0
		} else {
			mindist[bi] = b.Bounds.Dist2Point(q)
		}
	}
	sort.Slice(order, func(a, b int) bool { return mindist[order[a]] < mindist[order[b]] })

	type cand struct {
		id int64
		d2 float64
	}
	var best []cand
	req := wire.KNNRequest{Point: wire.FromPoint(q), K: k}
	expanded, failed := 0, 0
	var lastErr error
	for _, bi := range order {
		if len(best) == k && mindist[bi] > best[k-1].d2 {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		b := e.backends[bi]
		expanded++
		var resp wire.KNNResponse
		if err := e.post(ctx, b.URL, "/v1/knearest", req, &resp); err != nil {
			if e.cfg.Degraded && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
				e.dropped.Add(1)
				failed++
				lastErr = fmt.Errorf("remote: backend %s: %w", b.URL, err)
				continue
			}
			return nil, stats, fmt.Errorf("remote: backend %s: %w", b.URL, err)
		}
		if resp.Stats != nil {
			stats.Add(resp.Stats.ToStats())
		}
		if len(resp.Points) != len(resp.IDs) {
			return nil, stats, fmt.Errorf("remote: backend %s: %d points for %d ids", b.URL, len(resp.Points), len(resp.IDs))
		}
		for i, id := range resp.IDs {
			best = append(best, cand{id: id + b.IDOffset, d2: q.Dist2(resp.Points[i].Point())})
		}
		sort.Slice(best, func(a, b int) bool {
			if best[a].d2 != best[b].d2 {
				return best[a].d2 < best[b].d2
			}
			return best[a].id < best[b].id
		})
		if len(best) > k {
			best = best[:k]
		}
	}

	if expanded > 0 && failed == expanded {
		// Degraded tolerates partial loss, not total: with every expanded
		// backend gone there is nothing to answer from.
		return nil, stats, lastErr
	}
	out := make([]int64, len(best))
	for i, c := range best {
		out[i] = c.id
	}
	stats.ResultSize = len(out)
	return out, stats, nil
}
