package remote

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/geom"
	"repro/internal/wire"
)

// TestStreamOneStopsOnCanceledContext pins the stream loop's cancelStride
// check: once the caller's context is canceled, streamOne must stop
// within one stride even when the scanner still holds buffered frames.
// Before the check existed the loop drained everything the transport had
// buffered — the whole response here, since the server writes it in one
// burst — and the cancellation only surfaced at the end.
func TestStreamOneStopsOnCanceledContext(t *testing.T) {
	const frames = 10 * cancelStride
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// One burst, no EOF frame: everything lands in the client's buffer
		// before the first yield runs.
		for i := 0; i < frames; i++ {
			fmt.Fprintf(w, "{\"id\":%d,\"x\":1,\"y\":2}\n", i)
		}
	}))
	defer srv.Close()

	e := &Engine{client: srv.Client()}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	yields := 0
	st, stopped, err := e.streamOne(ctx, Backend{URL: srv.URL}, wire.QueryRequest{},
		func(id int64, pos geom.Point) bool {
			yields++
			if yields == 1 {
				cancel()
			}
			return true
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("streamOne error = %v, want context.Canceled", err)
	}
	if stopped {
		t.Error("stopped = true, want false (the yield never declined)")
	}
	if yields > cancelStride {
		t.Errorf("yielded %d frames after cancellation, want at most one stride (%d)", yields, cancelStride)
	}
	if st.ResultSize != yields {
		t.Errorf("ResultSize = %d, want %d (one per yield)", st.ResultSize, yields)
	}
}
