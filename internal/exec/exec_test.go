package exec

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"
)

func unitBounds() geom.Rect { return geom.NewRect(0, 0, 1, 1) }

func sortedIDs(ids []int64) []int64 {
	out := append([]int64(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func newEngine(t testing.TB, n int, seed int64) *core.Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := workload.UniformPoints(rng, n, unitBounds())
	data, err := core.NewMemoryData(pts, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	return core.NewEngine(core.NewRTreeIndex(pts, 16), data)
}

// mixedRegions builds a batch alternating random polygons and circles — the
// two public query shapes sharing one batch.
func mixedRegions(rng *rand.Rand, count int) []core.Region {
	regions := make([]core.Region, count)
	for i := range regions {
		if i%2 == 0 {
			pg := workload.RandomPolygon(rng, workload.PolygonConfig{
				Vertices:  10,
				QuerySize: []float64{0.005, 0.01, 0.04}[i%3],
			}, unitBounds())
			regions[i] = core.PolygonRegion(pg)
		} else {
			c := geom.NewCircle(geom.Pt(0.1+0.8*rng.Float64(), 0.1+0.8*rng.Float64()),
				0.02+0.08*rng.Float64())
			regions[i] = core.CircleRegion(c)
		}
	}
	return regions
}

func TestParallelMatchesSequentialQueryForQuery(t *testing.T) {
	eng := newEngine(t, 8000, 1)
	rng := rand.New(rand.NewSource(2))
	regions := mixedRegions(rng, 64)

	for _, m := range []core.Method{core.Traditional, core.VoronoiBFS} {
		seq, _, err := QueryBatch(context.Background(), eng, regions, core.QuerySpec{Method: m}, Options{NumWorkers: 1})
		if err != nil {
			t.Fatalf("%v sequential: %v", m, err)
		}
		for _, workers := range []int{2, 4, 8} {
			par, _, err := QueryBatch(context.Background(), eng, regions, core.QuerySpec{Method: m}, Options{NumWorkers: workers})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", m, workers, err)
			}
			for i := range regions {
				if !equalIDs(sortedIDs(par[i]), sortedIDs(seq[i])) {
					t.Fatalf("%v workers=%d: query %d diverged (%d vs %d ids)",
						m, workers, i, len(par[i]), len(seq[i]))
				}
			}
		}
	}
}

func TestAggregateStatsEqualSumOfSequentialStats(t *testing.T) {
	// The merge of per-worker stats must equal the sum of sequential
	// per-query stats for every deterministic counter; only Duration is
	// timing-dependent.
	eng := newEngine(t, 5000, 3)
	rng := rand.New(rand.NewSource(4))
	regions := mixedRegions(rng, 40)

	var want core.Stats
	for i, region := range regions {
		_, st, err := eng.QueryRegion(core.VoronoiBFS, region)
		if err != nil {
			t.Fatalf("sequential query %d: %v", i, err)
		}
		want.Add(st)
	}

	_, agg, err := QueryBatch(context.Background(), eng, regions, core.QuerySpec{Method: core.VoronoiBFS}, Options{NumWorkers: 4, Chunk: 3})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Method != core.VoronoiBFS {
		t.Errorf("aggregate Method = %v", agg.Method)
	}
	if agg.ResultSize != want.ResultSize {
		t.Errorf("ResultSize = %d, want %d", agg.ResultSize, want.ResultSize)
	}
	if agg.Candidates != want.Candidates {
		t.Errorf("Candidates = %d, want %d", agg.Candidates, want.Candidates)
	}
	if agg.RedundantValidations != want.RedundantValidations {
		t.Errorf("RedundantValidations = %d, want %d", agg.RedundantValidations, want.RedundantValidations)
	}
	if agg.SegmentTests != want.SegmentTests {
		t.Errorf("SegmentTests = %d, want %d", agg.SegmentTests, want.SegmentTests)
	}
	if agg.IndexNodesVisited != want.IndexNodesVisited {
		t.Errorf("IndexNodesVisited = %d, want %d", agg.IndexNodesVisited, want.IndexNodesVisited)
	}
	if agg.RecordsLoaded != want.RecordsLoaded {
		t.Errorf("RecordsLoaded = %d, want %d", agg.RecordsLoaded, want.RecordsLoaded)
	}
	if agg.Duration <= 0 {
		t.Error("aggregate Duration missing")
	}
}

// failingData poisons Load for one id, simulating an unreadable record.
type failingData struct {
	core.DataAccess
	poisoned int64
}

var errPoisoned = errors.New("injected load failure")

func (f *failingData) Load(id int64) (geom.Point, error) {
	if id == f.poisoned {
		return geom.Point{}, errPoisoned
	}
	return f.DataAccess.Load(id)
}

func TestBatchErrorStopsAndSurfaces(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := workload.UniformPoints(rng, 2000, unitBounds())
	data, err := core.NewMemoryData(pts, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	idx := core.NewRTreeIndex(pts, 16)

	// Poison a point every wide query certainly loads: a brute-force result.
	wide := workload.RandomPolygon(rng, workload.PolygonConfig{QuerySize: 0.3}, unitBounds())
	okEng := core.NewEngine(idx, data)
	ids, _, err := okEng.Query(core.BruteForce, wide)
	if err != nil || len(ids) == 0 {
		t.Fatalf("oracle setup: %v (%d ids)", err, len(ids))
	}
	eng := core.NewEngine(idx, &failingData{DataAccess: data, poisoned: ids[0]})

	regions := make([]core.Region, 32)
	for i := range regions {
		regions[i] = core.PolygonRegion(wide)
	}
	for _, workers := range []int{1, 4} {
		_, _, err := QueryBatch(context.Background(), eng, regions, core.QuerySpec{Method: core.Traditional}, Options{NumWorkers: workers})
		if !errors.Is(err, errPoisoned) {
			t.Errorf("workers=%d: err = %v, want the injected failure", workers, err)
		}
		if err != nil && !strings.Contains(err.Error(), "batch query") {
			t.Errorf("workers=%d: error lacks batch context: %v", workers, err)
		}
	}
}

func TestEmptyAndOversubscribedBatches(t *testing.T) {
	eng := newEngine(t, 500, 6)
	out, agg, err := QueryBatch(context.Background(), eng, nil, core.QuerySpec{Method: core.VoronoiBFS}, Options{NumWorkers: 4})
	if err != nil || out != nil {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}
	if agg.Candidates != 0 {
		t.Errorf("empty batch did work: %+v", agg)
	}

	// More workers than queries must clamp, not deadlock or skip.
	rng := rand.New(rand.NewSource(7))
	regions := mixedRegions(rng, 3)
	out, _, err = QueryBatch(context.Background(), eng, regions, core.QuerySpec{Method: core.VoronoiBFS}, Options{NumWorkers: 64, Chunk: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i, ids := range out {
		want, _, err := eng.QueryRegion(core.VoronoiBFS, regions[i])
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(sortedIDs(ids), sortedIDs(want)) {
			t.Fatalf("query %d diverged with oversubscribed pool", i)
		}
	}
}

// Batch throughput at different pool sizes is benchmarked at the public
// API level: BenchmarkQueryBatchParallel in the repository root.
