// Package exec runs batches of area queries on a bounded worker pool.
//
// The paper's per-query algorithms parallelize trivially once the engine's
// per-query scratch state is isolated (see core.Engine): every query reads
// the shared immutable index, Voronoi topology and point data, and writes
// only its own result slot. The executor therefore needs no locking on the
// hot path — workers claim chunks of the query slice from a shared atomic
// cursor (chunked work-stealing: large enough claims to amortize the
// cursor contention, small enough that an unlucky worker stuck on an
// expensive query strands at most one chunk), accumulate statistics into a
// per-worker Stats, and the per-worker stats merge into one aggregate
// after the pool drains.
package exec

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// DefaultChunk is the number of consecutive queries a worker claims per
// steal when Options.Chunk is unset. Area queries are microseconds to
// milliseconds each, so single-query claims would rattle the shared cursor
// while very large claims would serialize the tail of the batch.
const DefaultChunk = 8

// Options configures a batch run.
type Options struct {
	// NumWorkers is the goroutine count; <= 0 means runtime.GOMAXPROCS(0).
	// The pool never spawns more workers than there are queries, and 1
	// runs the whole batch on the calling goroutine.
	NumWorkers int
	// Chunk is the number of queries claimed per steal; <= 0 means
	// DefaultChunk.
	Chunk int
}

// workers resolves the effective worker count for n queries.
func (o Options) workers(n int) int {
	w := o.NumWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// chunk resolves the effective chunk size.
func (o Options) chunk() int {
	if o.Chunk <= 0 {
		return DefaultChunk
	}
	return o.Chunk
}

// QueryBatch answers every region with method m against the shared engine,
// returning per-query results aligned with regions and aggregate
// statistics. The aggregate is the sum over per-query stats — Duration is
// summed per-query time, not batch wall clock, so it is comparable with a
// sequential run of the same batch. On error the batch stops early and
// returns the lowest-indexed error among those observed before the pool
// drained (a parallel run may therefore report a different failing query
// than a sequential run of the same batch, which always reports the first).
//
// The engine's DataAccess must be safe for concurrent use when
// NumWorkers > 1 (both core.MemoryData and core.StoreData are).
func QueryBatch(eng *core.Engine, m core.Method, regions []core.Region, opts Options) ([][]int64, core.Stats, error) {
	n := len(regions)
	agg := core.Stats{Method: m}
	if n == 0 {
		return nil, agg, nil
	}
	workers := opts.workers(n)
	if workers == 1 {
		return eng.QueryBatchRegions(m, regions)
	}
	out := make([][]int64, n)
	workerStats := make([]core.Stats, workers)
	idx, err := run(n, workers, opts.chunk(), func(worker, i int) error {
		ids, st, err := eng.QueryRegion(m, regions[i])
		if err != nil {
			return err
		}
		out[i] = ids
		workerStats[worker].Add(st)
		return nil
	})
	if err != nil {
		return nil, agg, fmt.Errorf("exec: batch query %d: %w", idx, err)
	}
	for _, ws := range workerStats {
		agg.Add(ws)
	}
	return out, agg, nil
}

// Run executes fn(worker, i) for every i in [0, n) on a pool sized by
// opts. It is the pool primitive beneath QueryBatch, exported for callers
// with non-query task shapes — the sharded engine submits shard
// construction and per-(query, shard) scatter tasks through it. worker
// identifies the executing goroutine in [0, Workers(n)), so fn can
// accumulate into per-worker state without locking; with one worker
// everything runs on the calling goroutine. On error the pool stops
// claiming new tasks and the lowest-indexed observed error wins, wrapped
// with its task index.
func Run(n int, opts Options, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := opts.workers(n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return fmt.Errorf("exec: task %d: %w", i, err)
			}
		}
		return nil
	}
	idx, err := run(n, workers, opts.chunk(), fn)
	if err != nil {
		return fmt.Errorf("exec: task %d: %w", idx, err)
	}
	return nil
}

// Workers returns the worker count Run and QueryBatch will use for n
// tasks, for callers sizing per-worker accumulators.
func (o Options) Workers(n int) int { return o.workers(n) }

// run executes fn(worker, i) for every i in [0, n) across workers
// goroutines. Each worker claims chunks of indexes from a shared cursor;
// on the first error all workers stop claiming and the lowest-indexed
// observed error wins; run returns it with its index, unwrapped.
func run(n, workers, chunk int, fn func(worker, i int) error) (int, error) {
	var (
		cursor atomic.Int64
		failed atomic.Bool

		mu       sync.Mutex
		firstErr error
		firstIdx int
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < firstIdx {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
		failed.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for !failed.Load() {
				start := int(cursor.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					if failed.Load() {
						return
					}
					if err := fn(worker, i); err != nil {
						fail(i, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return firstIdx, firstErr
}
