// Package exec runs batches of area queries on a bounded worker pool.
//
// The paper's per-query algorithms parallelize trivially once the engine's
// per-query scratch state is isolated (see core.Engine): every query reads
// the shared immutable index, Voronoi topology and point data, and writes
// only its own result slot. The executor therefore needs no locking on the
// hot path — workers claim chunks of the query slice from a shared atomic
// cursor (chunked work-stealing: large enough claims to amortize the
// cursor contention, small enough that an unlucky worker stuck on an
// expensive query strands at most one chunk), accumulate statistics into a
// per-worker Stats, and the per-worker stats merge into one aggregate
// after the pool drains.
//
// Every entry point takes a context.Context: cancellation is checked
// between chunk claims (so un-dispatched work is abandoned immediately)
// and inside each query (core checks on candidate boundaries), and
// surfaces as ctx.Err() together with the statistics of the work already
// performed.
package exec

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// DefaultChunk is the number of consecutive queries a worker claims per
// steal when Options.Chunk is unset. Area queries are microseconds to
// milliseconds each, so single-query claims would rattle the shared cursor
// while very large claims would serialize the tail of the batch.
const DefaultChunk = 8

// Options configures a batch run.
type Options struct {
	// NumWorkers is the goroutine count; <= 0 means runtime.GOMAXPROCS(0).
	// The pool never spawns more workers than there are queries, and 1
	// runs the whole batch on the calling goroutine.
	NumWorkers int
	// Chunk is the number of queries claimed per steal; <= 0 means
	// DefaultChunk.
	Chunk int
	// Metrics, when non-nil, instruments the pool (see Metrics). Nil
	// costs one pointer comparison per chunk claim.
	Metrics *Metrics
}

// Metrics instruments the worker pool. Any field may be nil (obs
// metrics are nil-safe); a nil *Metrics disables instrumentation
// entirely. The parallel path records chunk-claim waits and per-batch
// worker busy time; the single-worker path counts tasks only.
type Metrics struct {
	// Tasks counts tasks executed (queries for QueryBatch).
	Tasks *obs.Counter
	// Chunks counts chunk claims from the shared cursor.
	Chunks *obs.Counter
	// ChunkWait is the time from a worker finishing one chunk to
	// claiming the next, in ns — cursor contention shows up here.
	ChunkWait *obs.Histogram
	// WorkerBusy is the total time each worker spent inside tasks over
	// one batch, in ns; the spread across observations is the utilization
	// skew (stragglers observe much larger values than idle workers).
	WorkerBusy *obs.Histogram
	// ActiveWorkers is the number of pool goroutines currently alive.
	ActiveWorkers *obs.Gauge
}

// workers resolves the effective worker count for n queries.
func (o Options) workers(n int) int {
	w := o.NumWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// chunk resolves the effective chunk size.
func (o Options) chunk() int {
	if o.Chunk <= 0 {
		return DefaultChunk
	}
	return o.Chunk
}

// QueryBatch answers every region per spec against the shared engine,
// returning per-query results aligned with regions and aggregate
// statistics. The aggregate is the sum over per-query stats — Duration is
// summed per-query time, not batch wall clock, so it is comparable with a
// sequential run of the same batch. On error the batch stops early and
// returns the lowest-indexed error among those observed before the pool
// drained (a parallel run may therefore report a different failing query
// than a sequential run of the same batch, which always reports the
// first), together with the aggregate statistics of the queries that did
// complete. Cancelling ctx aborts un-claimed queries and surfaces as a
// (wrapped) ctx.Err(); an already-cancelled context returns before any
// query runs. spec.Dest is ignored: one reuse buffer cannot back a batch
// of independent result slices.
//
// The engine's DataAccess must be safe for concurrent use when
// NumWorkers > 1 (both core.MemoryData and core.StoreData are).
func QueryBatch(ctx context.Context, eng *core.Engine, regions []core.Region, spec core.QuerySpec, opts Options) ([][]int64, core.Stats, error) {
	n := len(regions)
	agg := core.Stats{Method: spec.Method}
	if n == 0 {
		return nil, agg, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, agg, err
	}
	spec.Dest = nil
	workers := opts.workers(n)
	out := make([][]int64, n)
	if workers == 1 {
		for i, region := range regions {
			ids, st, err := eng.QueryRegionSpec(ctx, region, spec)
			agg.Add(st)
			if m := opts.Metrics; m != nil {
				m.Tasks.Inc()
			}
			if err != nil {
				return nil, agg, fmt.Errorf("exec: batch query %d: %w", i, err)
			}
			out[i] = ids
		}
		return out, agg, nil
	}
	workerStats := make([]core.Stats, workers)
	idx, err := run(ctx, n, workers, opts.chunk(), opts.Metrics, func(worker, i int) error {
		ids, st, err := eng.QueryRegionSpec(ctx, regions[i], spec)
		workerStats[worker].Add(st)
		if err != nil {
			return err
		}
		out[i] = ids
		return nil
	})
	for _, ws := range workerStats {
		agg.Add(ws)
	}
	if err != nil {
		return nil, agg, fmt.Errorf("exec: batch query %d: %w", idx, err)
	}
	if err := ctx.Err(); err != nil {
		// Cancelled after the last claimed task finished but with the batch
		// incomplete (workers stop claiming on cancellation).
		return nil, agg, err
	}
	return out, agg, nil
}

// Run executes fn(worker, i) for every i in [0, n) on a pool sized by
// opts. It is the pool primitive beneath QueryBatch, exported for callers
// with non-query task shapes — the sharded engine submits shard
// construction and per-(query, shard) scatter tasks through it. worker
// identifies the executing goroutine in [0, Workers(n)), so fn can
// accumulate into per-worker state without locking; with one worker
// everything runs on the calling goroutine. On error the pool stops
// claiming new tasks and the lowest-indexed observed error wins, wrapped
// with its task index. Cancelling ctx stops chunk claiming; when no task
// error occurred first, Run returns ctx.Err() unwrapped. The pool always
// drains before Run returns — no goroutine outlives the call.
func Run(ctx context.Context, n int, opts Options, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	workers := opts.workers(n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			err := fn(0, i)
			if m := opts.Metrics; m != nil {
				m.Tasks.Inc()
			}
			if err != nil {
				return fmt.Errorf("exec: task %d: %w", i, err)
			}
		}
		return nil
	}
	idx, err := run(ctx, n, workers, opts.chunk(), opts.Metrics, fn)
	if err != nil {
		return fmt.Errorf("exec: task %d: %w", idx, err)
	}
	return ctx.Err()
}

// Workers returns the worker count Run and QueryBatch will use for n
// tasks, for callers sizing per-worker accumulators.
func (o Options) Workers(n int) int { return o.workers(n) }

// run executes fn(worker, i) for every i in [0, n) across workers
// goroutines. Each worker claims chunks of indexes from a shared cursor,
// re-checking ctx before every claim so cancellation abandons all
// un-dispatched work; on the first error all workers stop claiming and the
// lowest-indexed observed error wins; run returns it with its index,
// unwrapped. run always waits for every spawned worker to exit.
func run(ctx context.Context, n, workers, chunk int, m *Metrics, fn func(worker, i int) error) (int, error) {
	var (
		cursor atomic.Int64
		failed atomic.Bool

		mu       sync.Mutex
		firstErr error
		firstIdx int
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < firstIdx {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
		failed.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// The instrumented worker body duplicates the claim loop's
			// timing around it rather than branching inside it, keeping the
			// uninstrumented path free of clock reads and atomics.
			if m != nil {
				m.ActiveWorkers.Add(1)
				var busy time.Duration
				defer func() {
					m.ActiveWorkers.Add(-1)
					m.WorkerBusy.Observe(busy)
				}()
				for !failed.Load() && ctx.Err() == nil {
					claimStart := time.Now()
					start := int(cursor.Add(int64(chunk))) - chunk
					if start >= n {
						return
					}
					m.Chunks.Inc()
					m.ChunkWait.Observe(time.Since(claimStart))
					end := start + chunk
					if end > n {
						end = n
					}
					for i := start; i < end; i++ {
						if failed.Load() {
							return
						}
						t0 := time.Now()
						err := fn(worker, i)
						busy += time.Since(t0)
						m.Tasks.Inc()
						if err != nil {
							fail(i, err)
							return
						}
					}
				}
				return
			}
			for !failed.Load() && ctx.Err() == nil {
				start := int(cursor.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					if failed.Load() {
						return
					}
					if err := fn(worker, i); err != nil {
						fail(i, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return firstIdx, firstErr
}
