package geom

// PreparedPolygon caches per-edge derived data (bounding boxes, flattened
// edge list across rings) so repeated predicates against the same polygon —
// the access pattern of an area query, which tests hundreds of candidates
// against one query polygon — skip most exact orientation calls through
// cheap interval rejects. Results are identical to the plain Polygon
// methods.
type PreparedPolygon struct {
	pg    Polygon
	bound Rect
	edges []preparedEdge
}

type preparedEdge struct {
	a, b Point
	bb   Rect
}

// Prepare returns a PreparedPolygon for pg. pg must not be mutated while
// the prepared form is in use.
func Prepare(pg Polygon) *PreparedPolygon {
	pp := &PreparedPolygon{pg: pg, bound: pg.Bounds()}
	add := func(r Ring) bool {
		for i := range r {
			a, b := r[i], r[(i+1)%len(r)]
			pp.edges = append(pp.edges, preparedEdge{a: a, b: b, bb: NewRect(a.X, a.Y, b.X, b.Y)})
		}
		return true
	}
	pg.rings(add)
	return pp
}

// Polygon returns the underlying polygon.
func (pp *PreparedPolygon) Polygon() Polygon { return pp.pg }

// Bounds returns the polygon's MBR.
func (pp *PreparedPolygon) Bounds() Rect { return pp.bound }

// ContainsPoint reports whether p lies in the closed polygon. It fuses the
// boundary check and the ray-crossing count into a single pass over the
// edge list, consulting the exact orientation predicate only for edges
// whose bounding interval makes them relevant.
func (pp *PreparedPolygon) ContainsPoint(p Point) bool {
	if !pp.bound.ContainsPoint(p) {
		return false
	}
	odd := false
	for i := range pp.edges {
		e := &pp.edges[i]
		// On-edge test, gated by the edge bounding box.
		if e.bb.ContainsPoint(p) {
			if Orient(e.a, e.b, p) == Collinear {
				return true // boundary is contained (closed polygon)
			}
		}
		// Ray-crossing accumulation (half-open rule on Y).
		if (e.a.Y > p.Y) == (e.b.Y > p.Y) {
			continue
		}
		if e.bb.MaxX < p.X {
			continue // edge entirely left of the rightward ray
		}
		if e.a.Y < e.b.Y {
			if Orient(e.a, e.b, p) == CounterClockwise {
				odd = !odd
			}
		} else {
			if Orient(e.b, e.a, p) == CounterClockwise {
				odd = !odd
			}
		}
	}
	return odd
}

// IntersectsSegment reports whether the closed segment shares at least one
// point with the closed polygon, using per-edge bounding-box rejection
// before exact tests.
func (pp *PreparedPolygon) IntersectsSegment(s Segment) bool {
	sb := s.Bounds()
	if !pp.bound.Intersects(sb) {
		return false
	}
	if pp.ContainsPoint(s.A) || pp.ContainsPoint(s.B) {
		return true
	}
	for i := range pp.edges {
		e := &pp.edges[i]
		if !e.bb.Intersects(sb) {
			continue
		}
		if s.Intersects(Seg(e.a, e.b)) {
			return true
		}
	}
	return false
}

// InteriorPoint returns a point strictly inside the polygon (delegates to
// the underlying polygon).
func (pp *PreparedPolygon) InteriorPoint() Point { return pp.pg.InteriorPoint() }

// IntersectsRing reports whether the polygon intersects the closed region
// bounded by ring (delegates; used by the strict expansion rule).
func (pp *PreparedPolygon) IntersectsRing(ring Ring) bool { return pp.pg.IntersectsRing(ring) }
