package geom

import (
	"encoding/binary"
	"math"
)

// PreparedPolygon caches per-edge derived data (bounding boxes, flattened
// edge list across rings) so repeated predicates against the same polygon —
// the access pattern of an area query, which tests hundreds of candidates
// against one query polygon — skip most exact orientation calls through
// cheap interval rejects. Results are identical to the plain Polygon
// methods.
type PreparedPolygon struct {
	pg    Polygon
	bound Rect
	edges []preparedEdge
}

type preparedEdge struct {
	a, b Point
	bb   Rect
}

// Prepare returns a PreparedPolygon for pg. pg must not be mutated while
// the prepared form is in use.
func Prepare(pg Polygon) *PreparedPolygon {
	pp := &PreparedPolygon{pg: pg, bound: pg.Bounds()}
	add := func(r Ring) bool {
		for i := range r {
			a, b := r[i], r[(i+1)%len(r)]
			pp.edges = append(pp.edges, preparedEdge{a: a, b: b, bb: NewRect(a.X, a.Y, b.X, b.Y)})
		}
		return true
	}
	pg.rings(add)
	return pp
}

// Polygon returns the underlying polygon.
func (pp *PreparedPolygon) Polygon() Polygon { return pp.pg }

// AppendCacheKey appends a canonical encoding of the polygon's exact
// geometry (ring structure and vertex bit patterns) to dst, satisfying the
// query layer's optional CacheKeyer interface: two prepared polygons
// encode equal iff they are vertex-for-vertex the same polygon.
func (pp *PreparedPolygon) AppendCacheKey(dst []byte) []byte {
	dst = appendRingKey(append(dst, 'P'), pp.pg.Outer)
	for _, hole := range pp.pg.Holes {
		dst = appendRingKey(append(dst, 'H'), hole)
	}
	return dst
}

func appendRingKey(dst []byte, r Ring) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(r)))
	for _, p := range r {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.X))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.Y))
	}
	return dst
}

// Bounds returns the polygon's MBR.
func (pp *PreparedPolygon) Bounds() Rect { return pp.bound }

// ContainsPoint reports whether p lies in the closed polygon. It fuses the
// boundary check and the ray-crossing count into a single pass over the
// edge list, consulting the exact orientation predicate only for edges
// whose bounding interval makes them relevant.
func (pp *PreparedPolygon) ContainsPoint(p Point) bool {
	if !pp.bound.ContainsPoint(p) {
		return false
	}
	odd := false
	for i := range pp.edges {
		e := &pp.edges[i]
		// On-edge test, gated by the edge bounding box.
		if e.bb.ContainsPoint(p) {
			if Orient(e.a, e.b, p) == Collinear {
				return true // boundary is contained (closed polygon)
			}
		}
		// Ray-crossing accumulation (half-open rule on Y).
		if (e.a.Y > p.Y) == (e.b.Y > p.Y) {
			continue
		}
		if e.bb.MaxX < p.X {
			continue // edge entirely left of the rightward ray
		}
		if e.a.Y < e.b.Y {
			if Orient(e.a, e.b, p) == CounterClockwise {
				odd = !odd
			}
		} else {
			if Orient(e.b, e.a, p) == CounterClockwise {
				odd = !odd
			}
		}
	}
	return odd
}

// IntersectsSegment reports whether the closed segment shares at least one
// point with the closed polygon, using per-edge bounding-box rejection
// before exact tests.
func (pp *PreparedPolygon) IntersectsSegment(s Segment) bool {
	sb := s.Bounds()
	if !pp.bound.Intersects(sb) {
		return false
	}
	if pp.ContainsPoint(s.A) || pp.ContainsPoint(s.B) {
		return true
	}
	for i := range pp.edges {
		e := &pp.edges[i]
		if !e.bb.Intersects(sb) {
			continue
		}
		if s.Intersects(Seg(e.a, e.b)) {
			return true
		}
	}
	return false
}

// InteriorPoint returns a point strictly inside the polygon (delegates to
// the underlying polygon).
func (pp *PreparedPolygon) InteriorPoint() Point { return pp.pg.InteriorPoint() }

// IntersectsRing reports whether the polygon intersects the closed region
// bounded by ring — the strict expansion rule's hot test. It mirrors
// Polygon.IntersectsRing (vertex containment both ways, then edge
// crossings) but reuses the cached polygon MBR, the prepared containment
// test, and per-edge bounding boxes to skip edges far from the ring.
func (pp *PreparedPolygon) IntersectsRing(ring Ring) bool {
	if len(ring) == 0 {
		return false
	}
	rb := ring.Bounds()
	if !pp.bound.Intersects(rb) {
		return false
	}
	// Boundary contact first: per-edge boxes skip edges far from the ring,
	// so a disjoint ring (the common strict-expansion reject) costs one
	// box compare per edge and no containment scans.
	for i := range pp.edges {
		e := &pp.edges[i]
		if !e.bb.Intersects(rb) {
			continue
		}
		s := Seg(e.a, e.b)
		for j := range ring {
			if s.Intersects(Seg(ring[j], ring[(j+1)%len(ring)])) {
				return true
			}
		}
	}
	// No boundary contact: the shapes are nested or disjoint, and one
	// containment probe each way decides which.
	if pp.ContainsPoint(ring[0]) {
		return true // ring inside the polygon
	}
	// Polygon inside the ring (edges[0].a is an outer-ring vertex).
	return (Polygon{Outer: ring}).ContainsPoint(pp.edges[0].a)
}

// IntersectsRingView is IntersectsRing over a structure-of-arrays ring
// view: identical results (same tests in the same order) with zero
// allocation, reading the packed coordinate slices directly. It is the
// strict expansion rule's hot test when the data layer exposes a cell
// arena.
func (pp *PreparedPolygon) IntersectsRingView(v RingView) bool {
	n := v.Len()
	if n == 0 {
		return false
	}
	rb := v.Bounds()
	if !pp.bound.Intersects(rb) {
		return false
	}
	// Boundary contact first: per-edge boxes skip edges far from the ring,
	// so a disjoint ring (the common strict-expansion reject) costs one
	// box compare per edge and no containment scans.
	for i := range pp.edges {
		e := &pp.edges[i]
		if !e.bb.Intersects(rb) {
			continue
		}
		s := Seg(e.a, e.b)
		for j := 0; j < n; j++ {
			k := j + 1
			if k == n {
				k = 0
			}
			if s.Intersects(Seg(v.At(j), v.At(k))) {
				return true
			}
		}
	}
	// No boundary contact: the shapes are nested or disjoint, and one
	// containment probe each way decides which.
	if pp.ContainsPoint(v.At(0)) {
		return true // ring inside the polygon
	}
	// Polygon inside the ring (edges[0].a is an outer-ring vertex).
	return v.ContainsPoint(pp.edges[0].a)
}

// IntersectsRect reports whether the closed polygon and the closed
// rectangle share at least one point (used by the strict expansion rule
// to discard Voronoi cells by bounding box, so it is hot). It mirrors
// Polygon.IntersectsRect — rect corner inside polygon, polygon vertex
// inside rect, or crossing edges — on the cached MBR, prepared
// containment and per-edge boxes.
func (pp *PreparedPolygon) IntersectsRect(r Rect) bool {
	if !pp.bound.Intersects(r) {
		return false
	}
	if r.ContainsRect(pp.bound) {
		return true // rect swallows the polygon (vertices included)
	}
	// Boundary contact first (cheap per-edge box gate); containment only
	// when no edge touches the rect.
	for i := range pp.edges {
		e := &pp.edges[i]
		if !e.bb.Intersects(r) {
			continue
		}
		if r.ContainsPoint(e.a) || r.ContainsPoint(e.b) {
			return true
		}
		if Seg(e.a, e.b).IntersectsRect(r) {
			return true
		}
	}
	// No boundary contact: the rect lies entirely in one face of the
	// polygon arrangement (inside, inside a hole, or outside); one corner
	// decides.
	return pp.ContainsPoint(Pt(r.MinX, r.MinY))
}
