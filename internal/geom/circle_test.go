package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewCircleClampsRadius(t *testing.T) {
	c := NewCircle(Pt(1, 2), -5)
	if c.R != 0 {
		t.Errorf("negative radius not clamped: %v", c.R)
	}
}

func TestCircleMeasures(t *testing.T) {
	c := NewCircle(Pt(1, 1), 2)
	if got := c.Bounds(); got != NewRect(-1, -1, 3, 3) {
		t.Errorf("Bounds = %v", got)
	}
	if math.Abs(c.Area()-4*math.Pi) > 1e-12 {
		t.Errorf("Area = %v", c.Area())
	}
	if math.Abs(c.Perimeter()-4*math.Pi) > 1e-12 {
		t.Errorf("Perimeter = %v", c.Perimeter())
	}
	if c.InteriorPoint() != Pt(1, 1) {
		t.Errorf("InteriorPoint = %v", c.InteriorPoint())
	}
}

func TestCircleContainsPoint(t *testing.T) {
	c := NewCircle(Pt(0, 0), 1)
	if !c.ContainsPoint(Pt(0, 0)) || !c.ContainsPoint(Pt(1, 0)) || !c.ContainsPoint(Pt(0.6, 0.6)) {
		t.Error("points inside/on circle misclassified")
	}
	if c.ContainsPoint(Pt(0.8, 0.8)) || c.ContainsPoint(Pt(1.0001, 0)) {
		t.Error("points outside circle misclassified")
	}
}

func TestCircleIntersectsSegment(t *testing.T) {
	c := NewCircle(Pt(0, 0), 1)
	cases := []struct {
		name string
		s    Segment
		want bool
	}{
		{"through center", Seg(Pt(-2, 0), Pt(2, 0)), true},
		{"chord", Seg(Pt(-2, 0.5), Pt(2, 0.5)), true},
		{"tangent", Seg(Pt(-2, 1), Pt(2, 1)), true},
		{"just missing", Seg(Pt(-2, 1.0001), Pt(2, 1.0001)), false},
		{"endpoint inside", Seg(Pt(0.5, 0), Pt(5, 5)), true},
		{"far away", Seg(Pt(3, 3), Pt(4, 4)), false},
		{"short segment inside", Seg(Pt(0.1, 0.1), Pt(0.2, 0.2)), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := c.IntersectsSegment(tc.s); got != tc.want {
				t.Errorf("IntersectsSegment = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestCircleIntersectsRect(t *testing.T) {
	c := NewCircle(Pt(0, 0), 1)
	if !c.IntersectsRect(NewRect(-0.5, -0.5, 0.5, 0.5)) {
		t.Error("rect inside circle")
	}
	if !c.IntersectsRect(NewRect(-5, -5, 5, 5)) {
		t.Error("rect containing circle")
	}
	if !c.IntersectsRect(NewRect(0.9, -0.1, 2, 0.1)) {
		t.Error("rect overlapping boundary")
	}
	if c.IntersectsRect(NewRect(0.8, 0.8, 2, 2)) {
		t.Error("rect past the diagonal should miss")
	}
	if c.IntersectsRect(EmptyRect()) {
		t.Error("empty rect never intersects")
	}
}

func TestCircleMonteCarloConsistency(t *testing.T) {
	// ContainsPoint vs Area cross-check.
	rng := rand.New(rand.NewSource(1))
	c := NewCircle(Pt(0.5, 0.5), 0.4)
	in := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if c.ContainsPoint(Pt(rng.Float64(), rng.Float64())) {
			in++
		}
	}
	got := float64(in) / n
	if math.Abs(got-c.Area()) > 0.01 {
		t.Errorf("Monte Carlo area %v vs analytic %v", got, c.Area())
	}
}
