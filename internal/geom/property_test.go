package geom

import (
	"math/rand"
	"testing"
)

// Cross-implementation property: PreparedPolygon and Polygon must agree on
// containment for points exactly on ring vertices of translated/scaled
// copies (exercises the exact predicates through coordinate transforms).
func TestContainsInvariantUnderTranslation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		pg := randomStarPolygon(rng, 3+rng.Intn(10))
		dx, dy := rng.Float64()*10-5, rng.Float64()*10-5
		moved := make([]Point, len(pg.Outer))
		for i, p := range pg.Outer {
			moved[i] = Pt(p.X+dx, p.Y+dy)
		}
		mpg, err := NewPolygon(moved)
		if err != nil {
			continue // translation can collapse nearly-degenerate rings
		}
		for i := 0; i < 50; i++ {
			p := Pt(rng.Float64(), rng.Float64())
			if pg.ContainsPoint(p) != mpg.ContainsPoint(Pt(p.X+dx, p.Y+dy)) {
				t.Fatalf("trial %d: containment not translation invariant at %v", trial, p)
			}
		}
	}
}

// Ring rotation invariance: starting the vertex list at any index must not
// change area, perimeter, or containment.
func TestRingStartRotationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pg := randomStarPolygon(rng, 12)
	base := pg.Outer
	probes := make([]Point, 100)
	for i := range probes {
		probes[i] = Pt(rng.Float64(), rng.Float64())
	}
	for shift := 1; shift < len(base); shift++ {
		rotated := append(append(Ring(nil), base[shift:]...), base[:shift]...)
		rpg := Polygon{Outer: rotated}
		// Area and perimeter sums reassociate, so compare with a relative
		// tolerance; containment is decided exactly and must not change.
		if d := rotated.Area() - base.Area(); d > 1e-12 || d < -1e-12 {
			t.Fatalf("shift %d: area changed by %v", shift, d)
		}
		if d := rotated.Perimeter() - base.Perimeter(); d > 1e-12 || d < -1e-12 {
			t.Fatalf("shift %d: perimeter changed by %v", shift, d)
		}
		for _, p := range probes {
			if pg.ContainsPoint(p) != rpg.ContainsPoint(p) {
				t.Fatalf("shift %d: containment changed at %v", shift, p)
			}
		}
	}
}

// Segment intersection is invariant under endpoint swap of either segment.
func TestSegmentIntersectionEndpointSwap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 3000; trial++ {
		s := Seg(Pt(rng.Float64(), rng.Float64()), Pt(rng.Float64(), rng.Float64()))
		u := Seg(Pt(rng.Float64(), rng.Float64()), Pt(rng.Float64(), rng.Float64()))
		want := s.Intersects(u)
		if Seg(s.B, s.A).Intersects(u) != want ||
			s.Intersects(Seg(u.B, u.A)) != want ||
			Seg(s.B, s.A).Intersects(Seg(u.B, u.A)) != want {
			t.Fatalf("intersection not symmetric under endpoint swap: %v %v", s, u)
		}
	}
}
