package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestClipRingFullyInside(t *testing.T) {
	ring := Ring{Pt(0.2, 0.2), Pt(0.8, 0.2), Pt(0.5, 0.8)}
	got := ClipRingToRect(ring, NewRect(0, 0, 1, 1))
	if len(got) != 3 {
		t.Fatalf("clip of interior ring changed vertex count: %v", got)
	}
	if math.Abs(got.Area()-ring.Area()) > 1e-12 {
		t.Errorf("area changed: %v -> %v", ring.Area(), got.Area())
	}
}

func TestClipRingFullyOutside(t *testing.T) {
	ring := Ring{Pt(5, 5), Pt(6, 5), Pt(5.5, 6)}
	if got := ClipRingToRect(ring, NewRect(0, 0, 1, 1)); got != nil {
		t.Errorf("clip of exterior ring should be nil, got %v", got)
	}
}

func TestClipRingHalfOverlap(t *testing.T) {
	// Square [-1,1]² clipped to [0,2]² leaves [0,1]².
	ring := Ring{Pt(-1, -1), Pt(1, -1), Pt(1, 1), Pt(-1, 1)}
	got := ClipRingToRect(ring, NewRect(0, 0, 2, 2))
	if math.Abs(got.Area()-1) > 1e-12 {
		t.Errorf("clipped area = %v, want 1", got.Area())
	}
	for _, p := range got {
		if !NewRect(0, 0, 2, 2).ContainsPoint(p) {
			t.Errorf("clipped vertex %v outside clip rect", p)
		}
	}
}

func TestClipRingSurroundsRect(t *testing.T) {
	// Huge triangle containing the clip rect: the result is the rect
	// itself.
	ring := Ring{Pt(-100, -100), Pt(100, -100), Pt(0, 100)}
	r := NewRect(0, 0, 1, 1)
	got := ClipRingToRect(ring, r)
	if math.Abs(got.Area()-1) > 1e-9 {
		t.Errorf("clip area = %v, want 1 (the rect)", got.Area())
	}
}

func TestClipRingEmptyInputs(t *testing.T) {
	if got := ClipRingToRect(nil, NewRect(0, 0, 1, 1)); got != nil {
		t.Errorf("nil ring -> %v", got)
	}
	if got := ClipRingToRect(Ring{Pt(0, 0), Pt(1, 0), Pt(0, 1)}, EmptyRect()); got != nil {
		t.Errorf("empty rect -> %v", got)
	}
}

func TestClipRingRandomConvex(t *testing.T) {
	// For convex rings, the clipped area never exceeds either input area
	// and all output vertices are inside the rect.
	rng := rand.New(rand.NewSource(21))
	clip := NewRect(0.25, 0.25, 0.75, 0.75)
	for trial := 0; trial < 300; trial++ {
		pts := make([]Point, 8)
		for i := range pts {
			pts[i] = Pt(rng.Float64(), rng.Float64())
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			continue
		}
		got := ClipRingToRect(hull, clip)
		if got == nil {
			continue
		}
		if got.Area() > hull.Area()+1e-9 || got.Area() > clip.Area()+1e-9 {
			t.Fatalf("clip grew area: hull %v clip %v got %v",
				hull.Area(), clip.Area(), got.Area())
		}
		for _, p := range got {
			if !clip.Expand(1e-9).ContainsPoint(p) {
				t.Fatalf("vertex %v escaped clip rect", p)
			}
		}
	}
}

func TestConvexHullBasics(t *testing.T) {
	pts := []Point{
		Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2), // square corners
		Pt(1, 1), Pt(0.5, 0.5), Pt(1.5, 0.3), // interior points
		Pt(1, 0), // collinear on an edge
	}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull size = %d, want 4 (corners only): %v", len(hull), hull)
	}
	if !hull.IsConvex() {
		t.Error("hull not convex")
	}
	if !hull.IsCounterClockwise() {
		t.Error("hull not counterclockwise")
	}
	if got := hull.Area(); got != 4 {
		t.Errorf("hull area = %v, want 4", got)
	}
}

func TestConvexHullSmallInputs(t *testing.T) {
	if got := ConvexHull(nil); len(got) != 0 {
		t.Errorf("hull of nothing = %v", got)
	}
	one := []Point{Pt(1, 2)}
	if got := ConvexHull(one); len(got) != 1 || got[0] != one[0] {
		t.Errorf("hull of single point = %v", got)
	}
	two := []Point{Pt(1, 2), Pt(3, 4)}
	if got := ConvexHull(two); len(got) != 2 {
		t.Errorf("hull of two points = %v", got)
	}
}

func TestConvexHullAllCollinear(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(3, 3)}
	hull := ConvexHull(pts)
	// Degenerate hull: the two extreme points (no strict left turns exist).
	if len(hull) > 2 {
		t.Errorf("collinear hull = %v, want at most the 2 extremes", hull)
	}
}

func TestConvexHullContainsAllPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		pts := make([]Point, 30)
		for i := range pts {
			pts[i] = Pt(rng.Float64(), rng.Float64())
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			t.Fatal("random points should produce a proper hull")
		}
		pg := Polygon{Outer: hull}
		for _, p := range pts {
			if !pg.ContainsPoint(p) {
				t.Fatalf("hull does not contain input point %v", p)
			}
		}
	}
}
