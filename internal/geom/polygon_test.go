package geom

import (
	"math"
	"math/rand"
	"testing"
)

// unitSquare is the polygon [0,1]².
func unitSquare() Polygon {
	return MustPolygon([]Point{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)})
}

// lShape is a concave hexagon shaped like an L covering [0,2]² minus the
// upper-right quadrant [1,2]×[1,2].
func lShape() Polygon {
	return MustPolygon([]Point{
		Pt(0, 0), Pt(2, 0), Pt(2, 1), Pt(1, 1), Pt(1, 2), Pt(0, 2),
	})
}

func TestNewPolygonValidation(t *testing.T) {
	if _, err := NewPolygon([]Point{Pt(0, 0), Pt(1, 1)}); err != ErrTooFewVertices {
		t.Errorf("two vertices: err = %v, want ErrTooFewVertices", err)
	}
	if _, err := NewPolygon([]Point{Pt(0, 0), Pt(1, 1), Pt(2, 2)}); err != ErrZeroArea && err != ErrSelfIntersect {
		t.Errorf("collinear: err = %v, want ErrZeroArea or ErrSelfIntersect", err)
	}
	bowtie := []Point{Pt(0, 0), Pt(2, 2), Pt(2, 0), Pt(0, 2)}
	if _, err := NewPolygon(bowtie); err != ErrSelfIntersect {
		t.Errorf("bowtie: err = %v, want ErrSelfIntersect", err)
	}
	// Duplicate consecutive vertices and an explicit closing vertex are
	// normalized away.
	pg, err := NewPolygon([]Point{Pt(0, 0), Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1), Pt(0, 0)})
	if err != nil {
		t.Fatalf("normalizable polygon rejected: %v", err)
	}
	if len(pg.Outer) != 4 {
		t.Errorf("normalized ring has %d vertices, want 4", len(pg.Outer))
	}
}

func TestPolygonMeasures(t *testing.T) {
	sq := unitSquare()
	if got := sq.Area(); got != 1 {
		t.Errorf("square area = %v", got)
	}
	if got := sq.Perimeter(); got != 4 {
		t.Errorf("square perimeter = %v", got)
	}
	if got := sq.Bounds(); got != NewRect(0, 0, 1, 1) {
		t.Errorf("square bounds = %v", got)
	}
	l := lShape()
	if got := l.Area(); got != 3 {
		t.Errorf("L area = %v, want 3", got)
	}
	if got := l.NumVertices(); got != 6 {
		t.Errorf("L vertices = %v", got)
	}
}

func TestRingWindingHelpers(t *testing.T) {
	ccw := Ring{Pt(0, 0), Pt(1, 0), Pt(1, 1)}
	if !ccw.IsCounterClockwise() {
		t.Error("ccw ring misclassified")
	}
	cw := Ring{Pt(0, 0), Pt(1, 1), Pt(1, 0)}
	if cw.IsCounterClockwise() {
		t.Error("cw ring misclassified")
	}
	cw.Reverse()
	if !cw.IsCounterClockwise() {
		t.Error("Reverse should flip winding")
	}
	if ccw.SignedArea() != 0.5 {
		t.Errorf("signed area = %v", ccw.SignedArea())
	}
}

func TestContainsPointSquare(t *testing.T) {
	sq := unitSquare()
	inside := []Point{Pt(0.5, 0.5), Pt(0.001, 0.999)}
	boundary := []Point{Pt(0, 0), Pt(1, 1), Pt(0.5, 0), Pt(0, 0.5), Pt(1, 0.3)}
	outside := []Point{Pt(-0.1, 0.5), Pt(1.1, 0.5), Pt(0.5, -0.001), Pt(2, 2)}
	for _, p := range inside {
		if !sq.ContainsPoint(p) {
			t.Errorf("inside point %v reported outside", p)
		}
		if !sq.ContainsPointStrict(p) {
			t.Errorf("inside point %v not strictly inside", p)
		}
	}
	for _, p := range boundary {
		if !sq.ContainsPoint(p) {
			t.Errorf("boundary point %v reported outside (closed semantics)", p)
		}
		if sq.ContainsPointStrict(p) {
			t.Errorf("boundary point %v reported strictly inside", p)
		}
	}
	for _, p := range outside {
		if sq.ContainsPoint(p) {
			t.Errorf("outside point %v reported inside", p)
		}
	}
}

func TestContainsPointConcave(t *testing.T) {
	l := lShape()
	if !l.ContainsPoint(Pt(0.5, 1.5)) {
		t.Error("upper-left arm should be inside")
	}
	if !l.ContainsPoint(Pt(1.5, 0.5)) {
		t.Error("lower-right arm should be inside")
	}
	if l.ContainsPoint(Pt(1.5, 1.5)) {
		t.Error("notch should be outside")
	}
	if !l.ContainsPoint(Pt(1, 1.5)) {
		t.Error("notch boundary should be inside (closed)")
	}
}

func TestContainsPointVertexRayDegeneracies(t *testing.T) {
	// A polygon whose vertices align horizontally with the probe point —
	// the classic ray-casting trap.
	diamond := MustPolygon([]Point{Pt(0, 0), Pt(2, -2), Pt(4, 0), Pt(2, 2)})
	if !diamond.ContainsPoint(Pt(2, 0)) {
		t.Error("center aligned with two vertices should be inside")
	}
	if diamond.ContainsPoint(Pt(-1, 0)) {
		t.Error("left of polygon, ray through two vertices: outside")
	}
	if diamond.ContainsPoint(Pt(5, 0)) {
		t.Error("right of polygon: outside")
	}
	if !diamond.ContainsPoint(Pt(0, 0)) {
		t.Error("vertex itself should be contained")
	}
}

func TestContainsPointVsReferenceImplementation(t *testing.T) {
	// Compare the robust crossing test with a brute-force winding-number
	// reference on random star polygons and random probes.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		pg := randomStarPolygon(rng, 3+rng.Intn(15))
		for i := 0; i < 200; i++ {
			p := Pt(rng.Float64()*2-0.5, rng.Float64()*2-0.5)
			if pg.Outer.onBoundary(p) {
				continue // reference is unreliable exactly on edges
			}
			got := pg.ContainsPoint(p)
			want := windingNumber(pg.Outer, p) != 0
			if got != want {
				t.Fatalf("trial %d: ContainsPoint(%v) = %v, winding says %v\nring: %v",
					trial, p, got, want, pg.Outer)
			}
		}
	}
}

// windingNumber is a float64 winding-number reference implementation.
func windingNumber(r Ring, p Point) int {
	wn := 0
	n := len(r)
	for i := 0; i < n; i++ {
		a, b := r[i], r[(i+1)%n]
		if a.Y <= p.Y {
			if b.Y > p.Y && Orient(a, b, p) == CounterClockwise {
				wn++
			}
		} else if b.Y <= p.Y && Orient(a, b, p) == Clockwise {
			wn--
		}
	}
	return wn
}

// randomStarPolygon builds a random simple star-shaped polygon around
// (0.5, 0.5) with k vertices.
func randomStarPolygon(rng *rand.Rand, k int) Polygon {
	c := Pt(0.5, 0.5)
	angles := make([]float64, k)
	for i := range angles {
		angles[i] = rng.Float64() * 2 * math.Pi
	}
	sortFloats(angles)
	// Drop duplicate angles to guarantee simplicity.
	pts := make([]Point, 0, k)
	for i, a := range angles {
		if i > 0 && a-angles[i-1] < 1e-9 {
			continue
		}
		r := 0.1 + 0.4*rng.Float64()
		pts = append(pts, Pt(c.X+r*math.Cos(a), c.Y+r*math.Sin(a)))
	}
	if len(pts) < 3 {
		return MustPolygon([]Point{Pt(0.2, 0.2), Pt(0.8, 0.2), Pt(0.5, 0.8)})
	}
	pg, err := NewPolygon(pts)
	if err != nil {
		// Extremely unlikely; fall back to a triangle.
		return MustPolygon([]Point{Pt(0.2, 0.2), Pt(0.8, 0.2), Pt(0.5, 0.8)})
	}
	return pg
}

func TestPolygonWithHole(t *testing.T) {
	pg := MustPolygon([]Point{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)})
	if err := pg.AddHole([]Point{Pt(1, 1), Pt(3, 1), Pt(3, 3), Pt(1, 3)}); err != nil {
		t.Fatalf("AddHole: %v", err)
	}
	if got := pg.Area(); got != 12 {
		t.Errorf("area with hole = %v, want 12", got)
	}
	if got := pg.Perimeter(); got != 16+8 {
		t.Errorf("perimeter with hole = %v, want 24", got)
	}
	if pg.ContainsPoint(Pt(2, 2)) {
		t.Error("point in hole should be outside")
	}
	if !pg.ContainsPoint(Pt(0.5, 2)) {
		t.Error("point between outer and hole should be inside")
	}
	if !pg.ContainsPoint(Pt(1, 2)) {
		t.Error("hole boundary should be contained (closed)")
	}
	if pg.ContainsPointStrict(Pt(1, 2)) {
		t.Error("hole boundary is not strictly inside")
	}
}

func TestAddHoleValidation(t *testing.T) {
	pg := unitSquare()
	if err := pg.AddHole([]Point{Pt(0, 0), Pt(1, 1)}); err != ErrTooFewVertices {
		t.Errorf("AddHole two vertices: %v", err)
	}
	if err := pg.AddHole([]Point{Pt(0, 0), Pt(1, 1), Pt(0.5, 0.5), Pt(2, 2)}); err == nil {
		t.Error("AddHole should reject degenerate ring")
	}
}

func TestIntersectsSegment(t *testing.T) {
	l := lShape()
	tests := []struct {
		name string
		s    Segment
		want bool
	}{
		{"entirely inside", Seg(Pt(0.2, 0.2), Pt(0.8, 0.8)), true},
		{"crossing boundary", Seg(Pt(-1, 0.5), Pt(0.5, 0.5)), true},
		{"through the notch only", Seg(Pt(1.2, 1.8), Pt(1.8, 1.2)), false},
		{"notch corner touch", Seg(Pt(1, 1), Pt(2, 2)), true},
		{"fully outside", Seg(Pt(3, 3), Pt(4, 4)), false},
		{"grazing an edge collinearly", Seg(Pt(0.5, 0), Pt(1.5, 0)), true},
		{"spanning the whole polygon", Seg(Pt(-1, 0.5), Pt(3, 0.5)), true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := l.IntersectsSegment(tc.s); got != tc.want {
				t.Errorf("IntersectsSegment = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestIntersectsRect(t *testing.T) {
	l := lShape()
	tests := []struct {
		name string
		r    Rect
		want bool
	}{
		{"rect inside polygon", NewRect(0.2, 0.2, 0.8, 0.8), true},
		{"polygon inside rect", NewRect(-1, -1, 3, 3), true},
		{"overlap arm", NewRect(1.5, 0.5, 3, 0.8), true},
		{"inside notch", NewRect(1.2, 1.2, 1.8, 1.8), false},
		{"touching notch corner", NewRect(1, 1, 1.8, 1.8), true},
		{"fully outside", NewRect(3, 3, 4, 4), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := l.IntersectsRect(tc.r); got != tc.want {
				t.Errorf("IntersectsRect = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestIntersectsRing(t *testing.T) {
	l := lShape()
	inside := Ring{Pt(0.2, 0.2), Pt(0.5, 0.2), Pt(0.35, 0.5)}
	if !l.IntersectsRing(inside) {
		t.Error("triangle inside polygon should intersect")
	}
	notch := Ring{Pt(1.2, 1.2), Pt(1.8, 1.2), Pt(1.5, 1.8)}
	if l.IntersectsRing(notch) {
		t.Error("triangle in notch should not intersect")
	}
	surrounding := Ring{Pt(-1, -1), Pt(3, -1), Pt(3, 3), Pt(-1, 3)}
	if !l.IntersectsRing(surrounding) {
		t.Error("ring containing the polygon should intersect")
	}
	if l.IntersectsRing(nil) {
		t.Error("empty ring should not intersect")
	}
}

func TestInteriorPoint(t *testing.T) {
	shapes := []Polygon{
		unitSquare(),
		lShape(),
		MustPolygon([]Point{Pt(0, 0), Pt(10, 0), Pt(10, 1), Pt(1, 1), Pt(1, 10), Pt(0, 10)}),
		// A crescent-like concave polygon.
		MustPolygon([]Point{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(3, 1), Pt(1, 1), Pt(0, 4)}),
	}
	for i, pg := range shapes {
		p := pg.InteriorPoint()
		if !pg.ContainsPointStrict(p) {
			t.Errorf("shape %d: interior point %v not strictly inside", i, p)
		}
	}
}

func TestInteriorPointRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		pg := randomStarPolygon(rng, 3+rng.Intn(12))
		p := pg.InteriorPoint()
		if !pg.ContainsPointStrict(p) {
			t.Fatalf("trial %d: interior point %v not inside %v", trial, p, pg.Outer)
		}
	}
}

func TestInteriorPointWithHoles(t *testing.T) {
	pg := MustPolygon([]Point{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)})
	// Hole right where the convex-corner heuristic would land.
	if err := pg.AddHole([]Point{Pt(0.05, 0.05), Pt(2, 0.1), Pt(0.1, 2)}); err != nil {
		t.Fatal(err)
	}
	p := pg.InteriorPoint()
	if !pg.ContainsPointStrict(p) {
		t.Errorf("interior point %v swallowed by hole", p)
	}
}

func TestIsConvex(t *testing.T) {
	if !unitSquare().Outer.IsConvex() {
		t.Error("square should be convex")
	}
	if lShape().Outer.IsConvex() {
		t.Error("L-shape should not be convex")
	}
	withCollinear := Ring{Pt(0, 0), Pt(1, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if !withCollinear.IsConvex() {
		t.Error("convex ring with collinear run misclassified")
	}
}

func TestIsSimple(t *testing.T) {
	if !(Ring{Pt(0, 0), Pt(1, 0), Pt(1, 1)}).IsSimple() {
		t.Error("triangle should be simple")
	}
	bowtie := Ring{Pt(0, 0), Pt(2, 2), Pt(2, 0), Pt(0, 2)}
	if bowtie.IsSimple() {
		t.Error("bowtie should not be simple")
	}
	spike := Ring{Pt(0, 0), Pt(2, 0), Pt(1, 0), Pt(1, 1)}
	if spike.IsSimple() {
		t.Error("ring with doubled-back spike should not be simple")
	}
	if (Ring{Pt(0, 0), Pt(1, 1)}).IsSimple() {
		t.Error("two-vertex ring cannot be simple")
	}
}

func TestCentroid(t *testing.T) {
	if got := unitSquare().Outer.Centroid(); !got.Near(Pt(0.5, 0.5)) {
		t.Errorf("square centroid = %v", got)
	}
	tri := Ring{Pt(0, 0), Pt(3, 0), Pt(0, 3)}
	if got := tri.Centroid(); !got.Near(Pt(1, 1)) {
		t.Errorf("triangle centroid = %v", got)
	}
	degenerate := Ring{Pt(0, 0), Pt(1, 1), Pt(2, 2)}
	if got := degenerate.Centroid(); !got.Near(Pt(1, 1)) {
		t.Errorf("degenerate centroid fell back incorrectly: %v", got)
	}
}

func TestClone(t *testing.T) {
	pg := MustPolygon([]Point{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)})
	if err := pg.AddHole([]Point{Pt(1, 1), Pt(2, 1), Pt(1, 2)}); err != nil {
		t.Fatal(err)
	}
	cp := pg.Clone()
	cp.Outer[0] = Pt(-100, -100)
	cp.Holes[0][0] = Pt(-100, -100)
	if pg.Outer[0] != Pt(0, 0) || pg.Holes[0][0] != Pt(1, 1) {
		t.Error("Clone should be deep")
	}
}

func TestAreaMatchesMonteCarlo(t *testing.T) {
	// Statistical cross-check of Area vs ContainsPoint on a concave shape.
	l := lShape()
	rng := rand.New(rand.NewSource(13))
	in := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if l.ContainsPoint(Pt(rng.Float64()*2, rng.Float64()*2)) {
			in++
		}
	}
	got := 4 * float64(in) / n // sample box area is 4
	if math.Abs(got-3) > 0.05 {
		t.Errorf("Monte Carlo area = %v, analytic 3", got)
	}
}
