package geom

import "math"

// Circle is a closed disk: center plus radius. It implements the same
// predicate surface polygons offer, so the area-query engine can run
// radius queries through the identical BFS machinery.
type Circle struct {
	Center Point
	R      float64
}

// NewCircle returns the circle with the given center and radius; negative
// radii are clamped to zero.
func NewCircle(center Point, r float64) Circle {
	if r < 0 {
		r = 0
	}
	return Circle{Center: center, R: r}
}

// Bounds returns the circle's bounding rectangle.
func (c Circle) Bounds() Rect {
	return Rect{
		MinX: c.Center.X - c.R, MinY: c.Center.Y - c.R,
		MaxX: c.Center.X + c.R, MaxY: c.Center.Y + c.R,
	}
}

// Area returns πr².
func (c Circle) Area() float64 { return math.Pi * c.R * c.R }

// Perimeter returns the circumference 2πr.
func (c Circle) Perimeter() float64 { return 2 * math.Pi * c.R }

// ContainsPoint reports whether p lies in the closed disk.
func (c Circle) ContainsPoint(p Point) bool {
	return c.Center.Dist2(p) <= c.R*c.R
}

// IntersectsSegment reports whether the closed segment shares at least one
// point with the closed disk.
func (c Circle) IntersectsSegment(s Segment) bool {
	return s.Dist2Point(c.Center) <= c.R*c.R
}

// IntersectsRect reports whether the closed disk and the closed rectangle
// share at least one point.
func (c Circle) IntersectsRect(r Rect) bool {
	if r.IsEmpty() {
		return false
	}
	return r.Dist2Point(c.Center) <= c.R*c.R
}

// InteriorPoint returns the center — always interior for r > 0.
func (c Circle) InteriorPoint() Point { return c.Center }
