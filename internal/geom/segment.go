package geom

// Segment is the closed line segment between two endpoints.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Bounds returns the segment's bounding rectangle.
func (s Segment) Bounds() Rect {
	return NewRect(s.A.X, s.A.Y, s.B.X, s.B.Y)
}

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the segment midpoint.
func (s Segment) Midpoint() Point { return Midpoint(s.A, s.B) }

// ContainsPoint reports whether p lies on the closed segment. The collinear
// test is exact; the range test is a closed bounding-box check which is
// sufficient for collinear points.
func (s Segment) ContainsPoint(p Point) bool {
	if Orient(s.A, s.B, p) != Collinear {
		return false
	}
	return s.Bounds().ContainsPoint(p)
}

// Intersects reports whether the two closed segments share at least one
// point. All degenerate configurations (shared endpoints, collinear overlap,
// zero-length segments) are handled exactly via robust orientation tests.
func (s Segment) Intersects(t Segment) bool {
	o1 := Orient(s.A, s.B, t.A)
	o2 := Orient(s.A, s.B, t.B)
	o3 := Orient(t.A, t.B, s.A)
	o4 := Orient(t.A, t.B, s.B)

	if o1 != o2 && o3 != o4 {
		return true
	}
	// Collinear cases: an endpoint of one lies on the other.
	if o1 == Collinear && s.Bounds().ContainsPoint(t.A) {
		return true
	}
	if o2 == Collinear && s.Bounds().ContainsPoint(t.B) {
		return true
	}
	if o3 == Collinear && t.Bounds().ContainsPoint(s.A) {
		return true
	}
	if o4 == Collinear && t.Bounds().ContainsPoint(s.B) {
		return true
	}
	return false
}

// IntersectsProper reports whether the two open segments cross at a single
// interior point of both (no endpoint touching, no collinear overlap).
func (s Segment) IntersectsProper(t Segment) bool {
	o1 := Orient(s.A, s.B, t.A)
	o2 := Orient(s.A, s.B, t.B)
	o3 := Orient(t.A, t.B, s.A)
	o4 := Orient(t.A, t.B, s.B)
	return o1 != o2 && o3 != o4 &&
		o1 != Collinear && o2 != Collinear &&
		o3 != Collinear && o4 != Collinear
}

// IntersectionPoint returns a crossing point of the two segments when they
// intersect in exactly one point, computed in floating point. ok is false
// when the segments do not intersect or overlap collinearly.
func (s Segment) IntersectionPoint(t Segment) (Point, bool) {
	if !s.Intersects(t) {
		return Point{}, false
	}
	d1 := s.B.Sub(s.A)
	d2 := t.B.Sub(t.A)
	denom := d1.Cross(d2)
	if denom == 0 {
		// Parallel or collinear overlap: report a shared endpoint if any.
		switch {
		case t.ContainsPoint(s.A):
			return s.A, true
		case t.ContainsPoint(s.B):
			return s.B, true
		case s.ContainsPoint(t.A):
			return t.A, true
		case s.ContainsPoint(t.B):
			return t.B, true
		}
		return Point{}, false
	}
	u := t.A.Sub(s.A).Cross(d2) / denom
	return s.A.Add(d1.Scale(u)), true
}

// Dist2Point returns the squared distance from p to the closest point of the
// segment.
func (s Segment) Dist2Point(p Point) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	if l2 == 0 {
		return p.Dist2(s.A)
	}
	t := p.Sub(s.A).Dot(d) / l2
	switch {
	case t < 0:
		t = 0
	case t > 1:
		t = 1
	}
	proj := s.A.Add(d.Scale(t))
	return p.Dist2(proj)
}

// IntersectsRect reports whether the closed segment shares at least one
// point with the closed rectangle.
func (s Segment) IntersectsRect(r Rect) bool {
	if r.IsEmpty() {
		return false
	}
	if r.ContainsPoint(s.A) || r.ContainsPoint(s.B) {
		return true
	}
	if !s.Bounds().Intersects(r) {
		return false
	}
	c := r.Corners()
	for i := 0; i < 4; i++ {
		if s.Intersects(Seg(c[i], c[(i+1)%4])) {
			return true
		}
	}
	return false
}
