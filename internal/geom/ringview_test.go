package geom

import (
	"math"
	"math/rand"
	"testing"
)

// randomConvexRing builds a convex ring by sorting random angles around a
// center — the shape class Voronoi cells fall in.
func randomConvexRing(rng *rand.Rand, n int) Ring {
	angles := make([]float64, n)
	for i := range angles {
		angles[i] = rng.Float64() * 6.283185307179586
	}
	for i := 1; i < n; i++ { // insertion sort: tiny n
		for j := i; j > 0 && angles[j] < angles[j-1]; j-- {
			angles[j], angles[j-1] = angles[j-1], angles[j]
		}
	}
	cx, cy := 0.3+0.4*rng.Float64(), 0.3+0.4*rng.Float64()
	radius := 0.05 + 0.2*rng.Float64()
	r := make(Ring, n)
	for i, a := range angles {
		r[i] = Pt(cx+radius*math.Cos(a), cy+radius*math.Sin(a))
	}
	return r
}

func TestRingViewMatchesRing(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		ring := randomConvexRing(rng, 3+rng.Intn(9))
		v := ViewRing(ring)
		if v.Len() != len(ring) {
			t.Fatalf("Len = %d, want %d", v.Len(), len(ring))
		}
		for i := range ring {
			if v.At(i) != ring[i] {
				t.Fatalf("At(%d) = %v, want %v", i, v.At(i), ring[i])
			}
		}
		if got := v.Ring(); len(got) != len(ring) {
			t.Fatalf("materialized ring has %d vertices, want %d", len(got), len(ring))
		}
		if v.Bounds() != ring.Bounds() {
			t.Fatalf("Bounds = %v, want %v", v.Bounds(), ring.Bounds())
		}
		if v.SignedArea() != ring.SignedArea() {
			t.Fatalf("SignedArea = %v, want %v", v.SignedArea(), ring.SignedArea())
		}
		if v.Area() != ring.Area() {
			t.Fatalf("Area = %v, want %v", v.Area(), ring.Area())
		}
		pg := Polygon{Outer: ring}
		// Probe containment on a grid plus the vertices themselves
		// (boundary cases must agree too).
		for gx := 0; gx <= 10; gx++ {
			for gy := 0; gy <= 10; gy++ {
				p := Pt(float64(gx)/10, float64(gy)/10)
				if v.ContainsPoint(p) != pg.ContainsPoint(p) {
					t.Fatalf("ContainsPoint(%v) = %v, polygon says %v", p, v.ContainsPoint(p), pg.ContainsPoint(p))
				}
			}
		}
		for _, p := range ring {
			if !v.ContainsPoint(p) {
				t.Fatalf("vertex %v not contained in its own ring view", p)
			}
		}
	}
}

func TestRingViewEmpty(t *testing.T) {
	var v RingView
	if v.Len() != 0 {
		t.Fatalf("empty view Len = %d", v.Len())
	}
	if v.Ring() != nil {
		t.Fatalf("empty view materialized to %v, want nil", v.Ring())
	}
	if b := v.Bounds(); b.MinX <= b.MaxX {
		t.Fatalf("empty view bounds %v not empty", b)
	}
	if v.ContainsPoint(Pt(0, 0)) {
		t.Fatal("empty view contains a point")
	}
	if v.Area() != 0 {
		t.Fatalf("empty view area = %v", v.Area())
	}
}

func TestPreparedIntersectsRingViewMatchesRing(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		poly := Polygon{Outer: randomConvexRing(rng, 3+rng.Intn(9))}
		pp := Prepare(poly)
		for probe := 0; probe < 40; probe++ {
			ring := randomConvexRing(rng, 3+rng.Intn(9))
			want := pp.IntersectsRing(ring)
			if got := pp.IntersectsRingView(ViewRing(ring)); got != want {
				t.Fatalf("trial %d probe %d: IntersectsRingView = %v, IntersectsRing = %v\npoly %v\nring %v",
					trial, probe, got, want, poly.Outer, ring)
			}
		}
		if pp.IntersectsRingView(RingView{}) {
			t.Fatal("prepared polygon intersects an empty ring view")
		}
	}
}
