package geom

import (
	"math/rand"
	"testing"
)

func TestSegmentIntersectsTable(t *testing.T) {
	tests := []struct {
		name string
		s, u Segment
		want bool
	}{
		{"proper cross", Seg(Pt(0, 0), Pt(2, 2)), Seg(Pt(0, 2), Pt(2, 0)), true},
		{"disjoint parallel", Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(0, 1), Pt(1, 1)), false},
		{"shared endpoint", Seg(Pt(0, 0), Pt(1, 1)), Seg(Pt(1, 1), Pt(2, 0)), true},
		{"T junction", Seg(Pt(0, 0), Pt(2, 0)), Seg(Pt(1, 0), Pt(1, 1)), true},
		{"collinear overlap", Seg(Pt(0, 0), Pt(2, 0)), Seg(Pt(1, 0), Pt(3, 0)), true},
		{"collinear disjoint", Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(2, 0), Pt(3, 0)), false},
		{"collinear touch", Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(1, 0), Pt(2, 0)), true},
		{"near miss", Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(0.5, 1e-9), Pt(1, 1)), false},
		{"zero-length on segment", Seg(Pt(0, 0), Pt(2, 0)), Seg(Pt(1, 0), Pt(1, 0)), true},
		{"zero-length off segment", Seg(Pt(0, 0), Pt(2, 0)), Seg(Pt(1, 1), Pt(1, 1)), false},
		{"both zero-length equal", Seg(Pt(1, 1), Pt(1, 1)), Seg(Pt(1, 1), Pt(1, 1)), true},
		{"both zero-length distinct", Seg(Pt(1, 1), Pt(1, 1)), Seg(Pt(2, 2), Pt(2, 2)), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.s.Intersects(tc.u); got != tc.want {
				t.Errorf("Intersects = %v, want %v", got, tc.want)
			}
			if got := tc.u.Intersects(tc.s); got != tc.want {
				t.Errorf("Intersects (swapped) = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestSegmentIntersectsProper(t *testing.T) {
	cross := Seg(Pt(0, 0), Pt(2, 2))
	if !cross.IntersectsProper(Seg(Pt(0, 2), Pt(2, 0))) {
		t.Error("proper crossing not detected")
	}
	if cross.IntersectsProper(Seg(Pt(2, 2), Pt(3, 0))) {
		t.Error("endpoint touch should not be proper")
	}
	if cross.IntersectsProper(Seg(Pt(1, 1), Pt(3, 3))) {
		t.Error("collinear overlap should not be proper")
	}
}

func TestSegmentContainsPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(4, 4))
	if !s.ContainsPoint(Pt(2, 2)) || !s.ContainsPoint(Pt(0, 0)) || !s.ContainsPoint(Pt(4, 4)) {
		t.Error("points on segment should be contained")
	}
	if s.ContainsPoint(Pt(5, 5)) {
		t.Error("collinear point beyond endpoint should not be contained")
	}
	if s.ContainsPoint(Pt(2, 2.5)) {
		t.Error("off-line point should not be contained")
	}
}

func TestIntersectionPoint(t *testing.T) {
	p, ok := Seg(Pt(0, 0), Pt(2, 2)).IntersectionPoint(Seg(Pt(0, 2), Pt(2, 0)))
	if !ok || !p.Near(Pt(1, 1)) {
		t.Errorf("crossing point = %v, %v", p, ok)
	}
	if _, ok := Seg(Pt(0, 0), Pt(1, 0)).IntersectionPoint(Seg(Pt(0, 1), Pt(1, 1))); ok {
		t.Error("disjoint segments should have no intersection point")
	}
	// Collinear overlap returns one shared point.
	p, ok = Seg(Pt(0, 0), Pt(2, 0)).IntersectionPoint(Seg(Pt(1, 0), Pt(3, 0)))
	if !ok {
		t.Fatal("collinear overlap should report a shared point")
	}
	if !Seg(Pt(0, 0), Pt(2, 0)).ContainsPoint(p) || !Seg(Pt(1, 0), Pt(3, 0)).ContainsPoint(p) {
		t.Errorf("reported point %v not on both segments", p)
	}
}

func TestSegmentDist2Point(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(4, 0))
	tests := []struct {
		p    Point
		want float64
	}{
		{Pt(2, 3), 9},
		{Pt(-3, 0), 9},
		{Pt(6, 0), 4},
		{Pt(2, 0), 0},
		{Pt(4, 0), 0},
	}
	for _, tc := range tests {
		if got := s.Dist2Point(tc.p); got != tc.want {
			t.Errorf("Dist2Point(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	// Degenerate zero-length segment.
	z := Seg(Pt(1, 1), Pt(1, 1))
	if got := z.Dist2Point(Pt(4, 5)); got != 25 {
		t.Errorf("zero-length Dist2Point = %v, want 25", got)
	}
}

func TestSegmentIntersectsRect(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	tests := []struct {
		name string
		s    Segment
		want bool
	}{
		{"fully inside", Seg(Pt(0.5, 0.5), Pt(1.5, 1.5)), true},
		{"crossing through", Seg(Pt(-1, 1), Pt(3, 1)), true},
		{"clipping corner", Seg(Pt(-1, 1), Pt(1, 3)), true},
		{"touching edge", Seg(Pt(-1, 0), Pt(3, 0)), true},
		{"outside above", Seg(Pt(-1, 3), Pt(3, 3)), false},
		{"outside diagonal miss", Seg(Pt(3, 0), Pt(5, 2)), false},
		{"endpoint on corner", Seg(Pt(2, 2), Pt(3, 3)), true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.s.IntersectsRect(r); got != tc.want {
				t.Errorf("IntersectsRect = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestSegmentIntersectsRandomizedSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		s := Seg(Pt(rng.Float64(), rng.Float64()), Pt(rng.Float64(), rng.Float64()))
		u := Seg(Pt(rng.Float64(), rng.Float64()), Pt(rng.Float64(), rng.Float64()))
		if s.Intersects(u) != u.Intersects(s) {
			t.Fatalf("asymmetric intersection: %v vs %v", s, u)
		}
		// Proper intersection implies intersection.
		if s.IntersectsProper(u) && !s.Intersects(u) {
			t.Fatalf("proper but not closed intersection: %v vs %v", s, u)
		}
		// If a crossing point is reported it must lie (nearly) on both.
		if p, ok := s.IntersectionPoint(u); ok {
			if s.Dist2Point(p) > 1e-12 || u.Dist2Point(p) > 1e-12 {
				t.Fatalf("intersection point %v too far from segments", p)
			}
		}
	}
}

func TestSegmentBoundsAndLength(t *testing.T) {
	s := Seg(Pt(3, 1), Pt(0, 5))
	if got := s.Bounds(); got != NewRect(0, 1, 3, 5) {
		t.Errorf("Bounds = %v", got)
	}
	if got := s.Length(); got != 5 {
		t.Errorf("Length = %v, want 5", got)
	}
	if got := s.Midpoint(); got != Pt(1.5, 3) {
		t.Errorf("Midpoint = %v", got)
	}
}
