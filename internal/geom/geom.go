// Package geom provides the planar geometry kernel used throughout the
// repository: points, segments, axis-aligned rectangles and simple polygons,
// together with the predicates the area-query algorithms rely on
// (point-in-polygon, segment/polygon intersection, orientation).
//
// All coordinates are float64. Predicates that decide topology (orientation,
// in-circle) delegate to package robust so that degenerate inputs (collinear
// or cocircular points) are resolved exactly rather than by rounding luck.
package geom

import "math"

// Eps is the tolerance used by the few non-exact comparisons in this package
// (e.g. deduplicating nearly identical vertices). Topological predicates do
// not use it; they are exact.
const Eps = 1e-12

// almostEqual reports whether a and b differ by at most Eps in absolute
// terms, scaled by their magnitude for large values.
func almostEqual(a, b float64) bool {
	diff := math.Abs(a - b)
	if diff <= Eps {
		return true
	}
	return diff <= Eps*math.Max(math.Abs(a), math.Abs(b))
}
