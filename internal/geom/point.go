package geom

import (
	"fmt"
	"math"

	"repro/internal/robust"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product p×q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Sqrt(p.Dist2(q)) }

// Dist2 returns the squared Euclidean distance between p and q. Use it when
// only comparisons are needed; it avoids the square root.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Equal reports exact coordinate equality.
func (p Point) Equal(q Point) bool { return p.X == q.X && p.Y == q.Y }

// Near reports whether p and q coincide within Eps.
func (p Point) Near(q Point) bool {
	return almostEqual(p.X, q.X) && almostEqual(p.Y, q.Y)
}

// Lerp returns the point p + t·(q-p).
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + t*(q.X-p.X), p.Y + t*(q.Y-p.Y)}
}

// Orientation classifies the turn a→b→c.
type Orientation int

// The three possible orientations of an ordered point triple.
const (
	Clockwise        Orientation = -1
	Collinear        Orientation = 0
	CounterClockwise Orientation = 1
)

// String implements fmt.Stringer.
func (o Orientation) String() string {
	switch o {
	case Clockwise:
		return "clockwise"
	case CounterClockwise:
		return "counterclockwise"
	default:
		return "collinear"
	}
}

// Orient returns the exact orientation of the triple (a, b, c):
// CounterClockwise if c lies to the left of the directed line a→b,
// Clockwise if to the right, Collinear otherwise. The result is exact;
// near-degenerate cases fall back to arbitrary-precision arithmetic.
func Orient(a, b, c Point) Orientation {
	return Orientation(robust.Orient2D(a.X, a.Y, b.X, b.Y, c.X, c.Y))
}

// InCircle reports whether d lies strictly inside the circumcircle of the
// counterclockwise-oriented triangle (a, b, c). The result is exact.
func InCircle(a, b, c, d Point) bool {
	return robust.InCircle(a.X, a.Y, b.X, b.Y, c.X, c.Y, d.X, d.Y) > 0
}

// Circumcenter returns the center of the circle through a, b and c, and
// reports whether it exists (it does not when the points are collinear).
func Circumcenter(a, b, c Point) (Point, bool) {
	// Translate so a is the origin for numerical stability.
	bx, by := b.X-a.X, b.Y-a.Y
	cx, cy := c.X-a.X, c.Y-a.Y
	d := 2 * (bx*cy - by*cx)
	if d == 0 {
		return Point{}, false
	}
	b2 := bx*bx + by*by
	c2 := cx*cx + cy*cy
	ux := (cy*b2 - by*c2) / d
	uy := (bx*c2 - cx*b2) / d
	return Point{a.X + ux, a.Y + uy}, true
}

// Midpoint returns the midpoint of p and q.
func Midpoint(p, q Point) Point {
	return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2}
}
