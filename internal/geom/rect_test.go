package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(3, 4, 1, 2)
	want := Rect{1, 2, 3, 4}
	if r != want {
		t.Errorf("NewRect = %v, want %v", r, want)
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Error("EmptyRect should be empty")
	}
	if e.Area() != 0 || e.Width() != 0 || e.Height() != 0 {
		t.Error("empty rect should have zero measure")
	}
	r := NewRect(0, 0, 2, 3)
	if got := e.Union(r); got != r {
		t.Errorf("empty union r = %v, want %v", got, r)
	}
	if got := r.Union(e); got != r {
		t.Errorf("r union empty = %v, want %v", got, r)
	}
	if e.Intersects(r) || r.Intersects(e) {
		t.Error("empty rect intersects nothing")
	}
	if !r.ContainsRect(e) {
		t.Error("every rect contains the empty rect")
	}
}

func TestRectMeasures(t *testing.T) {
	r := NewRect(1, 2, 4, 6)
	if r.Width() != 3 || r.Height() != 4 {
		t.Errorf("width/height = %v/%v", r.Width(), r.Height())
	}
	if r.Area() != 12 {
		t.Errorf("area = %v", r.Area())
	}
	if r.Margin() != 7 {
		t.Errorf("margin = %v", r.Margin())
	}
	if r.Center() != Pt(2.5, 4) {
		t.Errorf("center = %v", r.Center())
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	for _, p := range []Point{Pt(0, 0), Pt(10, 10), Pt(5, 5), Pt(0, 10)} {
		if !r.ContainsPoint(p) {
			t.Errorf("should contain %v", p)
		}
	}
	for _, p := range []Point{Pt(-0.001, 5), Pt(5, 10.001), Pt(11, 11)} {
		if r.ContainsPoint(p) {
			t.Errorf("should not contain %v", p)
		}
	}
	if !r.ContainsRect(NewRect(1, 1, 9, 9)) {
		t.Error("should contain inner rect")
	}
	if r.ContainsRect(NewRect(5, 5, 11, 9)) {
		t.Error("should not contain overlapping rect")
	}
}

func TestRectIntersection(t *testing.T) {
	a := NewRect(0, 0, 4, 4)
	b := NewRect(2, 2, 6, 6)
	got := a.Intersection(b)
	if got != NewRect(2, 2, 4, 4) {
		t.Errorf("intersection = %v", got)
	}
	c := NewRect(5, 5, 7, 7)
	if !a.Intersection(c).IsEmpty() {
		t.Error("disjoint rects should intersect to empty")
	}
	// Touching edges intersect (closed semantics).
	d := NewRect(4, 0, 8, 4)
	if !a.Intersects(d) {
		t.Error("edge-touching rects should intersect")
	}
	if got := a.Intersection(d); got.Area() != 0 || got.IsEmpty() {
		t.Errorf("edge-touching intersection should be a degenerate non-empty rect, got %v", got)
	}
}

func TestRectDist2Point(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	tests := []struct {
		p    Point
		want float64
	}{
		{Pt(1, 1), 0},      // inside
		{Pt(0, 0), 0},      // corner
		{Pt(3, 1), 1},      // right of
		{Pt(1, -2), 4},     // below
		{Pt(5, 6), 9 + 16}, // diagonal from corner (2,2)
	}
	for _, tc := range tests {
		if got := r.Dist2Point(tc.p); got != tc.want {
			t.Errorf("Dist2Point(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestRectExpand(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	if got := r.Expand(1); got != NewRect(-1, -1, 3, 3) {
		t.Errorf("Expand(1) = %v", got)
	}
	if got := r.Expand(-2); !got.IsEmpty() {
		t.Errorf("over-shrunk rect should be empty, got %v", got)
	}
}

func TestRectEnlargement(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	if got := r.Enlargement(NewRect(0, 0, 1, 1)); got != 0 {
		t.Errorf("no enlargement for contained rect, got %v", got)
	}
	if got := r.Enlargement(NewRect(0, 0, 4, 2)); got != 4 {
		t.Errorf("enlargement = %v, want 4", got)
	}
}

func TestUnionCommutesAndContains(t *testing.T) {
	f := func(x1, y1, x2, y2, x3, y3, x4, y4 float64) bool {
		if anyBad(x1, y1, x2, y2, x3, y3, x4, y4) {
			return true
		}
		a := NewRect(x1, y1, x2, y2)
		b := NewRect(x3, y3, x4, y4)
		u := a.Union(b)
		return u == b.Union(a) && u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIntersectionSymmetricProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		a := NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		b := NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		if a.Intersects(b) != b.Intersects(a) {
			t.Fatalf("Intersects not symmetric for %v, %v", a, b)
		}
		if a.Intersects(b) != !a.Intersection(b).IsEmpty() {
			t.Fatalf("Intersects disagrees with Intersection for %v, %v", a, b)
		}
	}
}

func TestRectFromPoints(t *testing.T) {
	if !RectFromPoints().IsEmpty() {
		t.Error("no points -> empty rect")
	}
	r := RectFromPoints(Pt(1, 5), Pt(-2, 3), Pt(0, 7))
	if r != (Rect{-2, 3, 1, 7}) {
		t.Errorf("RectFromPoints = %v", r)
	}
}

func TestCornersOrder(t *testing.T) {
	c := NewRect(0, 0, 1, 1).Corners()
	ring := Ring(c[:])
	if !ring.IsCounterClockwise() {
		t.Error("corners should wind counterclockwise")
	}
}
