package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle, closed on all sides. The zero Rect is
// the degenerate rectangle at the origin; use EmptyRect for an identity
// element under Union.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle spanning the two corner points in either
// order.
func NewRect(x1, y1, x2, y2 float64) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{x1, y1, x2, y2}
}

// EmptyRect returns the identity under Union: a rectangle that contains
// nothing and unions to its argument.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// RectFromPoints returns the minimum bounding rectangle of pts.
// It returns EmptyRect() when pts is empty.
func RectFromPoints(pts ...Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.ExtendPoint(p)
	}
	return r
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// IsEmpty reports whether the rectangle contains no points.
func (r Rect) IsEmpty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Width returns the horizontal extent (0 for empty rectangles).
func (r Rect) Width() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxX - r.MinX
}

// Height returns the vertical extent (0 for empty rectangles).
func (r Rect) Height() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxY - r.MinY
}

// Area returns the area of the rectangle (0 for empty rectangles).
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Margin returns half the perimeter; R*-tree style node quality metric.
func (r Rect) Margin() float64 { return r.Width() + r.Height() }

// Center returns the center point of the rectangle.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// ContainsPoint reports whether p lies in the closed rectangle.
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX &&
		s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether the two closed rectangles share at least one
// point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX &&
		r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Intersection returns the overlapping region of r and s, which may be
// empty.
func (r Rect) Intersection(s Rect) Rect {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// ExtendPoint returns the smallest rectangle containing r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	return r.Union(Rect{p.X, p.Y, p.X, p.Y})
}

// Enlargement returns how much r's area grows if extended to include s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// Dist2Point returns the squared distance from p to the closest point of the
// rectangle (0 if p is inside). This is the standard MINDIST used by
// best-first nearest-neighbor search.
func (r Rect) Dist2Point(p Point) float64 {
	var dx, dy float64
	switch {
	case p.X < r.MinX:
		dx = r.MinX - p.X
	case p.X > r.MaxX:
		dx = p.X - r.MaxX
	}
	switch {
	case p.Y < r.MinY:
		dy = r.MinY - p.Y
	case p.Y > r.MaxY:
		dy = p.Y - r.MaxY
	}
	return dx*dx + dy*dy
}

// Corners returns the four corner points in counterclockwise order starting
// at (MinX, MinY).
func (r Rect) Corners() [4]Point {
	return [4]Point{
		{r.MinX, r.MinY},
		{r.MaxX, r.MinY},
		{r.MaxX, r.MaxY},
		{r.MinX, r.MaxY},
	}
}

// Expand returns the rectangle grown by d on every side. Negative d shrinks
// it; the result may become empty.
func (r Rect) Expand(d float64) Rect {
	out := Rect{r.MinX - d, r.MinY - d, r.MaxX + d, r.MaxY + d}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}
