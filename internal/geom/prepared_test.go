package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestPreparedContainsMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := []Polygon{unitSquare(), lShape()}
	for trial := 0; trial < 30; trial++ {
		shapes = append(shapes, randomStarPolygon(rng, 3+rng.Intn(12)))
	}
	holed := MustPolygon([]Point{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)})
	if err := holed.AddHole([]Point{Pt(0.3, 0.3), Pt(0.7, 0.3), Pt(0.7, 0.7), Pt(0.3, 0.7)}); err != nil {
		t.Fatal(err)
	}
	shapes = append(shapes, holed)

	for si, pg := range shapes {
		pp := Prepare(pg)
		// Random probes plus exact boundary probes.
		probes := make([]Point, 0, 600)
		for i := 0; i < 500; i++ {
			probes = append(probes, Pt(rng.Float64()*2.4-0.2, rng.Float64()*2.4-0.2))
		}
		for _, v := range pg.Outer {
			probes = append(probes, v) // vertices
		}
		for i := range pg.Outer {
			probes = append(probes, Midpoint(pg.Outer[i], pg.Outer[(i+1)%len(pg.Outer)]))
		}
		for _, h := range pg.Holes {
			probes = append(probes, h...)
		}
		for _, p := range probes {
			if got, want := pp.ContainsPoint(p), pg.ContainsPoint(p); got != want {
				t.Fatalf("shape %d: prepared contains(%v) = %v, plain %v", si, p, got, want)
			}
		}
	}
}

func TestPreparedIntersectsSegmentMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	shapes := []Polygon{unitSquare(), lShape()}
	for trial := 0; trial < 20; trial++ {
		shapes = append(shapes, randomStarPolygon(rng, 3+rng.Intn(12)))
	}
	for si, pg := range shapes {
		pp := Prepare(pg)
		for i := 0; i < 800; i++ {
			s := Seg(
				Pt(rng.Float64()*2-0.5, rng.Float64()*2-0.5),
				Pt(rng.Float64()*2-0.5, rng.Float64()*2-0.5),
			)
			if rng.Intn(4) == 0 { // short segments stress edge rejection
				s.B = s.A.Add(Pt((rng.Float64()-0.5)*0.05, (rng.Float64()-0.5)*0.05))
			}
			if got, want := pp.IntersectsSegment(s), pg.IntersectsSegment(s); got != want {
				t.Fatalf("shape %d: prepared intersects(%v) = %v, plain %v", si, s, got, want)
			}
		}
	}
}

func TestPreparedAccessors(t *testing.T) {
	pg := lShape()
	pp := Prepare(pg)
	if pp.Bounds() != pg.Bounds() {
		t.Error("Bounds mismatch")
	}
	if pp.Polygon().Area() != pg.Area() {
		t.Error("Polygon accessor mismatch")
	}
	if !pg.ContainsPointStrict(pp.InteriorPoint()) {
		t.Error("InteriorPoint not inside")
	}
	tri := Ring{Pt(0.2, 0.2), Pt(0.5, 0.2), Pt(0.35, 0.5)}
	if pp.IntersectsRing(tri) != pg.IntersectsRing(tri) {
		t.Error("IntersectsRing mismatch")
	}
}

func BenchmarkContainsPlain(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pg := randomStarPolygon(rng, 10)
	probes := make([]Point, 256)
	for i := range probes {
		probes[i] = Pt(rng.Float64(), rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pg.ContainsPoint(probes[i%len(probes)])
	}
}

func BenchmarkContainsPrepared(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pp := Prepare(randomStarPolygon(rng, 10))
	probes := make([]Point, 256)
	for i := range probes {
		probes[i] = Pt(rng.Float64(), rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pp.ContainsPoint(probes[i%len(probes)])
	}
}

func BenchmarkIntersectsSegmentPlain(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pg := randomStarPolygon(rng, 10)
	segs := make([]Segment, 256)
	for i := range segs {
		a := Pt(rng.Float64(), rng.Float64())
		segs[i] = Seg(a, a.Add(Pt(0.02, 0.02)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pg.IntersectsSegment(segs[i%len(segs)])
	}
}

func BenchmarkIntersectsSegmentPrepared(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pp := Prepare(randomStarPolygon(rng, 10))
	segs := make([]Segment, 256)
	for i := range segs {
		a := Pt(rng.Float64(), rng.Float64())
		segs[i] = Seg(a, a.Add(Pt(0.02, 0.02)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pp.IntersectsSegment(segs[i%len(segs)])
	}
}

func TestPreparedIntersectsRectMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shapes := []Polygon{unitSquare(), lShape()}
	for trial := 0; trial < 20; trial++ {
		shapes = append(shapes, randomStarPolygon(rng, 3+rng.Intn(12)))
	}
	holed := MustPolygon([]Point{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)})
	if err := holed.AddHole([]Point{Pt(0.3, 0.3), Pt(0.7, 0.3), Pt(0.7, 0.7), Pt(0.3, 0.7)}); err != nil {
		t.Fatal(err)
	}
	shapes = append(shapes, holed)

	for si, pg := range shapes {
		pp := Prepare(pg)
		for trial := 0; trial < 400; trial++ {
			// Rects from tiny (cell-box scale) to polygon-swallowing.
			cx, cy := rng.Float64()*2.4-0.2, rng.Float64()*2.4-0.2
			w, h := rng.Float64()*rng.Float64()*2, rng.Float64()*rng.Float64()*2
			r := NewRect(cx, cy, cx+w, cy+h)
			if got, want := pp.IntersectsRect(r), pg.IntersectsRect(r); got != want {
				t.Fatalf("shape %d: prepared IntersectsRect(%v) = %v, plain %v", si, r, got, want)
			}
		}
		// Degenerate rects on vertices and edge midpoints.
		for i, v := range pg.Outer {
			r := NewRect(v.X, v.Y, v.X, v.Y)
			if got, want := pp.IntersectsRect(r), pg.IntersectsRect(r); got != want {
				t.Fatalf("shape %d: vertex rect %d: prepared %v, plain %v", si, i, got, want)
			}
		}
	}
}

func TestPreparedIntersectsRingMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	shapes := []Polygon{unitSquare(), lShape()}
	for trial := 0; trial < 20; trial++ {
		shapes = append(shapes, randomStarPolygon(rng, 3+rng.Intn(12)))
	}
	holed := MustPolygon([]Point{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)})
	if err := holed.AddHole([]Point{Pt(0.3, 0.3), Pt(0.7, 0.3), Pt(0.7, 0.7), Pt(0.3, 0.7)}); err != nil {
		t.Fatal(err)
	}
	shapes = append(shapes, holed)

	for si, pg := range shapes {
		pp := Prepare(pg)
		for trial := 0; trial < 300; trial++ {
			// Convex rings of 3..8 vertices at assorted scales, like the
			// Voronoi cells the strict rule tests.
			cx, cy := rng.Float64()*2.4-0.2, rng.Float64()*2.4-0.2
			radius := 0.01 + rng.Float64()*rng.Float64()
			k := 3 + rng.Intn(6)
			ring := make(Ring, 0, k)
			for j := 0; j < k; j++ {
				ang := (float64(j) + rng.Float64()*0.7) / float64(k) * 2 * math.Pi
				ring = append(ring, Pt(cx+radius*math.Cos(ang), cy+radius*math.Sin(ang)))
			}
			hull := ConvexHull(ring)
			if len(hull) < 3 {
				continue
			}
			if got, want := pp.IntersectsRing(hull), pg.IntersectsRing(hull); got != want {
				t.Fatalf("shape %d trial %d: prepared IntersectsRing = %v, plain %v", si, trial, got, want)
			}
		}
		if got, want := pp.IntersectsRing(nil), pg.IntersectsRing(nil); got != want {
			t.Fatalf("shape %d: empty ring: prepared %v, plain %v", si, got, want)
		}
	}
}
