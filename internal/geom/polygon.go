package geom

import (
	"errors"
	"fmt"
)

// Ring is a closed polygonal chain. The closing edge from the last vertex
// back to the first is implicit; callers should not repeat the first vertex.
type Ring []Point

// Polygon is a simple polygon, optionally with holes. The area of the
// polygon is the interior of Outer minus the interiors of Holes, evaluated
// with the even-odd rule; containment is closed (boundary points are
// contained).
type Polygon struct {
	Outer Ring
	Holes []Ring
}

// Validation errors returned by NewPolygon.
var (
	ErrTooFewVertices = errors.New("geom: polygon ring needs at least 3 distinct vertices")
	ErrZeroArea       = errors.New("geom: polygon ring has zero area")
	ErrSelfIntersect  = errors.New("geom: polygon ring is self-intersecting")
)

// NewPolygon builds a polygon from an outer ring, normalizing it
// (consecutive duplicate vertices removed, explicit closing vertex dropped)
// and validating that it is a non-degenerate simple ring.
func NewPolygon(outer []Point) (Polygon, error) {
	ring := normalizeRing(outer)
	if len(ring) < 3 {
		return Polygon{}, ErrTooFewVertices
	}
	if !ring.IsSimple() {
		return Polygon{}, ErrSelfIntersect
	}
	if ring.SignedArea() == 0 {
		return Polygon{}, ErrZeroArea
	}
	return Polygon{Outer: ring}, nil
}

// MustPolygon is NewPolygon that panics on invalid input; intended for
// tests and literals.
func MustPolygon(outer []Point) Polygon {
	pg, err := NewPolygon(outer)
	if err != nil {
		panic(fmt.Sprintf("geom: invalid polygon: %v", err))
	}
	return pg
}

// AddHole validates ring as a simple ring and adds it as a hole. The caller
// is responsible for the hole lying inside the outer ring and holes being
// disjoint; containment uses the even-odd rule so overlapping holes simply
// flip parity.
func (pg *Polygon) AddHole(hole []Point) error {
	ring := normalizeRing(hole)
	if len(ring) < 3 {
		return ErrTooFewVertices
	}
	if !ring.IsSimple() {
		return ErrSelfIntersect
	}
	if ring.SignedArea() == 0 {
		return ErrZeroArea
	}
	pg.Holes = append(pg.Holes, ring)
	return nil
}

// normalizeRing removes consecutive duplicates and a repeated closing
// vertex.
func normalizeRing(pts []Point) Ring {
	out := make(Ring, 0, len(pts))
	for _, p := range pts {
		if len(out) > 0 && out[len(out)-1].Equal(p) {
			continue
		}
		out = append(out, p)
	}
	for len(out) > 1 && out[0].Equal(out[len(out)-1]) {
		out = out[:len(out)-1]
	}
	return out
}

// rings iterates the outer ring then each hole.
func (pg Polygon) rings(fn func(Ring) bool) {
	if !fn(pg.Outer) {
		return
	}
	for _, h := range pg.Holes {
		if !fn(h) {
			return
		}
	}
}

// NumVertices returns the total vertex count over all rings.
func (pg Polygon) NumVertices() int {
	n := len(pg.Outer)
	for _, h := range pg.Holes {
		n += len(h)
	}
	return n
}

// Bounds returns the polygon's minimum bounding rectangle (holes cannot
// extend it).
func (pg Polygon) Bounds() Rect { return pg.Outer.Bounds() }

// Area returns the area of the polygon: |outer| minus the hole areas.
func (pg Polygon) Area() float64 {
	a := absf(pg.Outer.SignedArea())
	for _, h := range pg.Holes {
		a -= absf(h.SignedArea())
	}
	return a
}

// Perimeter returns the total boundary length including hole boundaries.
func (pg Polygon) Perimeter() float64 {
	l := pg.Outer.Perimeter()
	for _, h := range pg.Holes {
		l += h.Perimeter()
	}
	return l
}

// ContainsPoint reports whether p lies in the closed polygon (boundary
// points count as inside; points inside a hole do not, but hole boundaries
// do).
func (pg Polygon) ContainsPoint(p Point) bool {
	if !pg.Bounds().ContainsPoint(p) {
		return false
	}
	on := false
	pg.rings(func(r Ring) bool {
		if r.onBoundary(p) {
			on = true
			return false
		}
		return true
	})
	if on {
		return true
	}
	inside := false
	pg.rings(func(r Ring) bool {
		if r.crossesRay(p) {
			inside = !inside
		}
		return true
	})
	return inside
}

// IntersectsSegment reports whether the closed segment shares at least one
// point with the closed polygon (endpoint inside, or edge crossing).
func (pg Polygon) IntersectsSegment(s Segment) bool {
	if !pg.Bounds().Intersects(s.Bounds()) {
		return false
	}
	if pg.ContainsPoint(s.A) || pg.ContainsPoint(s.B) {
		return true
	}
	hit := false
	pg.rings(func(r Ring) bool {
		for i := range r {
			e := Seg(r[i], r[(i+1)%len(r)])
			if s.Intersects(e) {
				hit = true
				return false
			}
		}
		return true
	})
	return hit
}

// IntersectsRect reports whether the closed polygon and the closed
// rectangle share at least one point.
func (pg Polygon) IntersectsRect(r Rect) bool {
	if !pg.Bounds().Intersects(r) {
		return false
	}
	// Any rectangle corner inside the polygon, or any polygon vertex inside
	// the rectangle, or any edge pair crossing.
	for _, c := range r.Corners() {
		if pg.ContainsPoint(c) {
			return true
		}
	}
	hit := false
	pg.rings(func(ring Ring) bool {
		for _, v := range ring {
			if r.ContainsPoint(v) {
				hit = true
				return false
			}
		}
		for i := range ring {
			if Seg(ring[i], ring[(i+1)%len(ring)]).IntersectsRect(r) {
				hit = true
				return false
			}
		}
		return true
	})
	return hit
}

// IntersectsRing reports whether the closed polygon and the closed region
// bounded by ring share at least one point. Used by the strict expansion
// rule with (convex) Voronoi cells.
func (pg Polygon) IntersectsRing(ring Ring) bool {
	if len(ring) == 0 {
		return false
	}
	if !pg.Bounds().Intersects(ring.Bounds()) {
		return false
	}
	for _, v := range ring {
		if pg.ContainsPoint(v) {
			return true
		}
	}
	other := Polygon{Outer: ring}
	var anyVertex bool
	pg.rings(func(r Ring) bool {
		for _, v := range r {
			if other.ContainsPoint(v) {
				anyVertex = true
				return false
			}
		}
		return true
	})
	if anyVertex {
		return true
	}
	hit := false
	pg.rings(func(r Ring) bool {
		for i := range r {
			e := Seg(r[i], r[(i+1)%len(r)])
			for j := range ring {
				if e.Intersects(Seg(ring[j], ring[(j+1)%len(ring)])) {
					hit = true
					return false
				}
			}
		}
		return true
	})
	return hit
}

// InteriorPoint returns a point strictly inside the polygon's outer ring
// and outside all holes. The centroid is preferred when it qualifies — for
// area-query seeding a "fat" central anchor is far more robust than a point
// near a spike. Otherwise the classic "point in polygon interior"
// construction applies: take a convex vertex v; if the triangle
// (prev, v, next) is empty of other vertices its centroid is interior,
// otherwise the midpoint of v and the contained vertex farthest from the
// chord is interior. If holes swallow both candidates, it falls back to
// scanning midpoints of a vertical decomposition.
func (pg Polygon) InteriorPoint() Point {
	if c := pg.Outer.Centroid(); pg.ContainsPointStrict(c) {
		return c
	}
	cand := pg.Outer.interiorPoint()
	if pg.ContainsPointStrict(cand) {
		return cand
	}
	// Fall back: cast a vertical line through each outer vertex x-midpoint
	// and take the midpoint of consecutive edge crossings that lies inside.
	b := pg.Bounds()
	n := len(pg.Outer)
	for i := 0; i < n; i++ {
		x := (pg.Outer[i].X + pg.Outer[(i+1)%n].X) / 2
		probe := Seg(Pt(x, b.MinY-1), Pt(x, b.MaxY+1))
		var ys []float64
		pg.rings(func(r Ring) bool {
			for j := range r {
				e := Seg(r[j], r[(j+1)%len(r)])
				if ip, ok := probe.IntersectionPoint(e); ok {
					ys = append(ys, ip.Y)
				}
			}
			return true
		})
		sortFloats(ys)
		for j := 0; j+1 < len(ys); j++ {
			mid := Pt(x, (ys[j]+ys[j+1])/2)
			if pg.ContainsPointStrict(mid) {
				return mid
			}
		}
	}
	// Give up gracefully: the polygon centroid (may be on boundary for
	// pathological inputs, still usable as a query anchor).
	return pg.Outer.Centroid()
}

// ContainsPointStrict reports whether p lies strictly inside the polygon
// (boundary points excluded).
func (pg Polygon) ContainsPointStrict(p Point) bool {
	on := false
	pg.rings(func(r Ring) bool {
		if r.onBoundary(p) {
			on = true
			return false
		}
		return true
	})
	if on {
		return false
	}
	return pg.ContainsPoint(p)
}

// Clone returns a deep copy of the polygon.
func (pg Polygon) Clone() Polygon {
	out := Polygon{Outer: append(Ring(nil), pg.Outer...)}
	for _, h := range pg.Holes {
		out.Holes = append(out.Holes, append(Ring(nil), h...))
	}
	return out
}

// --- Ring methods ---

// Bounds returns the ring's minimum bounding rectangle.
func (r Ring) Bounds() Rect { return RectFromPoints(r...) }

// SignedArea returns the signed area: positive when the ring is
// counterclockwise.
func (r Ring) SignedArea() float64 {
	if len(r) < 3 {
		return 0
	}
	var s float64
	for i := range r {
		j := (i + 1) % len(r)
		s += r[i].Cross(r[j])
	}
	return s / 2
}

// Area returns the absolute enclosed area.
func (r Ring) Area() float64 { return absf(r.SignedArea()) }

// Perimeter returns the total edge length.
func (r Ring) Perimeter() float64 {
	var l float64
	for i := range r {
		l += r[i].Dist(r[(i+1)%len(r)])
	}
	return l
}

// Centroid returns the area centroid of the ring (vertex mean when the area
// degenerates to zero).
func (r Ring) Centroid() Point {
	if len(r) == 0 {
		return Point{}
	}
	var cx, cy, a float64
	for i := range r {
		j := (i + 1) % len(r)
		cross := r[i].Cross(r[j])
		cx += (r[i].X + r[j].X) * cross
		cy += (r[i].Y + r[j].Y) * cross
		a += cross
	}
	if a == 0 {
		var sx, sy float64
		for _, p := range r {
			sx += p.X
			sy += p.Y
		}
		n := float64(len(r))
		return Point{sx / n, sy / n}
	}
	return Point{cx / (3 * a), cy / (3 * a)}
}

// IsCounterClockwise reports whether the ring winds counterclockwise.
func (r Ring) IsCounterClockwise() bool { return r.SignedArea() > 0 }

// Reverse reverses the winding order in place.
func (r Ring) Reverse() {
	for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
		r[i], r[j] = r[j], r[i]
	}
}

// IsSimple reports whether no two non-adjacent edges intersect and adjacent
// edges meet only at their shared vertex. O(n²); intended for validation of
// small query polygons, not bulk data.
func (r Ring) IsSimple() bool {
	n := len(r)
	if n < 3 {
		return false
	}
	for i := 0; i < n; i++ {
		ei := Seg(r[i], r[(i+1)%n])
		for j := i + 1; j < n; j++ {
			ej := Seg(r[j], r[(j+1)%n])
			adjacent := j == i+1 || (i == 0 && j == n-1)
			if adjacent {
				// Adjacent edges may only share the single common vertex;
				// collinear overlap makes the ring non-simple.
				if ei.IntersectsProper(ej) {
					return false
				}
				var shared, otherI, otherJ Point
				if j == i+1 {
					shared, otherI, otherJ = r[j], r[i], r[(j+1)%n]
				} else {
					shared, otherI, otherJ = r[0], r[(i+1)%n], r[j]
				}
				if Orient(otherI, shared, otherJ) == Collinear &&
					otherI.Sub(shared).Dot(otherJ.Sub(shared)) > 0 {
					return false // spike: edges double back over each other
				}
			} else if ei.Intersects(ej) {
				return false
			}
		}
	}
	return true
}

// IsConvex reports whether the ring is convex (collinear runs allowed).
func (r Ring) IsConvex() bool {
	n := len(r)
	if n < 3 {
		return false
	}
	var dir Orientation
	for i := 0; i < n; i++ {
		o := Orient(r[i], r[(i+1)%n], r[(i+2)%n])
		if o == Collinear {
			continue
		}
		if dir == Collinear {
			dir = o
		} else if o != dir {
			return false
		}
	}
	return true
}

// onBoundary reports whether p lies on one of the ring's edges.
func (r Ring) onBoundary(p Point) bool {
	for i := range r {
		if Seg(r[i], r[(i+1)%len(r)]).ContainsPoint(p) {
			return true
		}
	}
	return false
}

// crossesRay counts edge crossings of the horizontal ray from p toward +X
// and reports whether the count is odd. The caller must have excluded
// boundary points. Vertex crossings are disambiguated with the half-open
// rule (an edge spans the ray iff exactly one endpoint is strictly above),
// with the side test done exactly via Orient.
func (r Ring) crossesRay(p Point) bool {
	odd := false
	n := len(r)
	for i := 0; i < n; i++ {
		a, b := r[i], r[(i+1)%n]
		if (a.Y > p.Y) == (b.Y > p.Y) {
			continue
		}
		// The edge spans the horizontal line through p. It crosses the
		// rightward ray iff the crossing x exceeds p.X, i.e. iff p is on the
		// appropriate side of the directed edge.
		if a.Y < b.Y {
			if Orient(a, b, p) == CounterClockwise {
				odd = !odd
			}
		} else {
			if Orient(b, a, p) == CounterClockwise {
				odd = !odd
			}
		}
	}
	return odd
}

// interiorPoint returns a point strictly inside a simple ring.
func (r Ring) interiorPoint() Point {
	n := len(r)
	if n == 0 {
		return Point{}
	}
	if n < 3 {
		return r[0]
	}
	// Find the lowest-then-leftmost vertex: it is convex.
	vi := 0
	for i, p := range r {
		if p.Y < r[vi].Y || (p.Y == r[vi].Y && p.X < r[vi].X) {
			vi = i
		}
	}
	prev := r[(vi-1+n)%n]
	v := r[vi]
	next := r[(vi+1)%n]

	// The triangle prev-v-next; if empty, its centroid is interior.
	want := Orient(prev, v, next)
	if want == Collinear {
		return Midpoint(prev, next)
	}
	inTri := func(q Point) bool {
		return Orient(prev, v, q) == want &&
			Orient(v, next, q) == want &&
			Orient(next, prev, q) == want
	}
	best := -1
	bestDist := -1.0
	for i, q := range r {
		if i == vi || q.Equal(prev) || q.Equal(next) {
			continue
		}
		if inTri(q) {
			d := Seg(prev, next).Dist2Point(q)
			if d > bestDist {
				bestDist = d
				best = i
			}
		}
	}
	if best < 0 {
		return Point{(prev.X + v.X + next.X) / 3, (prev.Y + v.Y + next.Y) / 3}
	}
	return Midpoint(v, r[best])
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// sortFloats is a tiny insertion sort to avoid importing sort for a
// handful of values.
func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
