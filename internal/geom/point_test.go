package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != -4-6 {
		t.Errorf("Cross = %v", got)
	}
}

func TestDistances(t *testing.T) {
	a, b := Pt(0, 0), Pt(3, 4)
	if got := a.Dist(b); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := a.Dist2(b); got != 25 {
		t.Errorf("Dist2 = %v, want 25", got)
	}
	if got := a.Dist(a); got != 0 {
		t.Errorf("Dist to self = %v, want 0", got)
	}
}

func TestLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestOrientWrapsRobust(t *testing.T) {
	if got := Orient(Pt(0, 0), Pt(1, 0), Pt(0, 1)); got != CounterClockwise {
		t.Errorf("ccw triple: got %v", got)
	}
	if got := Orient(Pt(0, 0), Pt(0, 1), Pt(1, 0)); got != Clockwise {
		t.Errorf("cw triple: got %v", got)
	}
	if got := Orient(Pt(0, 0), Pt(1, 1), Pt(2, 2)); got != Collinear {
		t.Errorf("collinear triple: got %v", got)
	}
}

func TestOrientationString(t *testing.T) {
	if Clockwise.String() != "clockwise" ||
		CounterClockwise.String() != "counterclockwise" ||
		Collinear.String() != "collinear" {
		t.Error("Orientation.String mismatch")
	}
}

func TestCircumcenter(t *testing.T) {
	c, ok := Circumcenter(Pt(1, 0), Pt(0, 1), Pt(-1, 0))
	if !ok {
		t.Fatal("circumcenter of proper triangle should exist")
	}
	if !c.Near(Pt(0, 0)) {
		t.Errorf("circumcenter = %v, want origin", c)
	}
	if _, ok := Circumcenter(Pt(0, 0), Pt(1, 1), Pt(2, 2)); ok {
		t.Error("collinear points should have no circumcenter")
	}
}

func TestCircumcenterEquidistantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		a := Pt(rng.Float64(), rng.Float64())
		b := Pt(rng.Float64(), rng.Float64())
		c := Pt(rng.Float64(), rng.Float64())
		if Orient(a, b, c) == Collinear {
			continue
		}
		cc, ok := Circumcenter(a, b, c)
		if !ok {
			t.Fatalf("circumcenter missing for non-degenerate %v %v %v", a, b, c)
		}
		da, db, dc := cc.Dist(a), cc.Dist(b), cc.Dist(c)
		tol := 1e-6 * (1 + da)
		if math.Abs(da-db) > tol || math.Abs(da-dc) > tol {
			t.Fatalf("circumcenter not equidistant: %v %v %v -> %v (d=%v,%v,%v)",
				a, b, c, cc, da, db, dc)
		}
	}
}

func TestInCirclePoint(t *testing.T) {
	a, b, c := Pt(1, 0), Pt(0, 1), Pt(-1, 0)
	if !InCircle(a, b, c, Pt(0, 0)) {
		t.Error("origin should be inside unit circumcircle")
	}
	if InCircle(a, b, c, Pt(3, 3)) {
		t.Error("(3,3) should be outside unit circumcircle")
	}
	if InCircle(a, b, c, Pt(0, -1)) {
		t.Error("cocircular point is not strictly inside")
	}
}

func TestMidpointCommutes(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if anyBad(ax, ay, bx, by) {
			return true
		}
		return Midpoint(Pt(ax, ay), Pt(bx, by)) == Midpoint(Pt(bx, by), Pt(ax, ay))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistSymmetricProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if anyBad(ax, ay, bx, by) {
			return true
		}
		a, b := Pt(ax, ay), Pt(bx, by)
		return a.Dist2(b) == b.Dist2(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func anyBad(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
			return true
		}
	}
	return false
}
