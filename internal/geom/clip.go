package geom

import "sort"

// ClipRingToRect clips a convex or simple ring against an axis-aligned
// rectangle using Sutherland–Hodgman. The clip region (the rectangle) is
// convex, which is all Sutherland–Hodgman requires; a non-convex subject
// ring may produce degenerate bridging edges, which is acceptable for
// rendering and area estimation. The result is nil when the ring is
// entirely outside.
func ClipRingToRect(ring Ring, r Rect) Ring {
	if len(ring) == 0 || r.IsEmpty() {
		return nil
	}
	type edge struct {
		inside func(Point) bool
		cross  func(a, b Point) Point
	}
	edges := []edge{
		{ // left: x >= MinX
			inside: func(p Point) bool { return p.X >= r.MinX },
			cross: func(a, b Point) Point {
				t := (r.MinX - a.X) / (b.X - a.X)
				return Pt(r.MinX, a.Y+t*(b.Y-a.Y))
			},
		},
		{ // right: x <= MaxX
			inside: func(p Point) bool { return p.X <= r.MaxX },
			cross: func(a, b Point) Point {
				t := (r.MaxX - a.X) / (b.X - a.X)
				return Pt(r.MaxX, a.Y+t*(b.Y-a.Y))
			},
		},
		{ // bottom: y >= MinY
			inside: func(p Point) bool { return p.Y >= r.MinY },
			cross: func(a, b Point) Point {
				t := (r.MinY - a.Y) / (b.Y - a.Y)
				return Pt(a.X+t*(b.X-a.X), r.MinY)
			},
		},
		{ // top: y <= MaxY
			inside: func(p Point) bool { return p.Y <= r.MaxY },
			cross: func(a, b Point) Point {
				t := (r.MaxY - a.Y) / (b.Y - a.Y)
				return Pt(a.X+t*(b.X-a.X), r.MaxY)
			},
		},
	}
	out := append(Ring(nil), ring...)
	for _, e := range edges {
		if len(out) == 0 {
			return nil
		}
		in := out
		out = out[:0:0]
		for i := range in {
			cur, next := in[i], in[(i+1)%len(in)]
			curIn, nextIn := e.inside(cur), e.inside(next)
			switch {
			case curIn && nextIn:
				out = append(out, next)
			case curIn && !nextIn:
				out = append(out, e.cross(cur, next))
			case !curIn && nextIn:
				out = append(out, e.cross(cur, next), next)
			}
		}
	}
	return normalizeRing(out)
}

// ConvexHull returns the convex hull of pts in counterclockwise order using
// the monotone-chain algorithm. Collinear points on the hull boundary are
// dropped. The input slice is not modified.
func ConvexHull(pts []Point) Ring {
	n := len(pts)
	if n < 3 {
		return append(Ring(nil), pts...)
	}
	sorted := append([]Point(nil), pts...)
	sortPoints(sorted)

	hull := make(Ring, 0, 2*n)
	// Lower hull.
	for _, p := range sorted {
		for len(hull) >= 2 && Orient(hull[len(hull)-2], hull[len(hull)-1], p) != CounterClockwise {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := len(sorted) - 2; i >= 0; i-- {
		p := sorted[i]
		for len(hull) >= lower && Orient(hull[len(hull)-2], hull[len(hull)-1], p) != CounterClockwise {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	if len(hull) > 1 {
		hull = hull[:len(hull)-1]
	}
	return hull
}

func sortPoints(pts []Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	})
}
