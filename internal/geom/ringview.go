package geom

// RingView is a zero-allocation view of a closed ring whose vertices live
// in parallel coordinate slices — the structure-of-arrays layout of a
// packed cell arena (voronoi.CellArena). As with Ring, the closing edge
// from the last vertex back to the first is implicit.
//
// Every predicate mirrors the corresponding Ring/Polygon method exactly
// (same arithmetic in the same order), so a view over a ring's coordinates
// and the ring itself always agree bit-for-bit.
type RingView struct {
	XS, YS []float64
}

// ViewRing returns a view over r's coordinates. It allocates the backing
// slices (views are meant to be built once over packed storage; this
// helper is for tests and adapters).
func ViewRing(r Ring) RingView {
	v := RingView{XS: make([]float64, len(r)), YS: make([]float64, len(r))}
	for i, p := range r {
		v.XS[i], v.YS[i] = p.X, p.Y
	}
	return v
}

// Len returns the vertex count.
func (v RingView) Len() int { return len(v.XS) }

// At returns vertex i.
func (v RingView) At(i int) Point { return Point{v.XS[i], v.YS[i]} }

// Ring materializes the view as a Ring (one allocation).
func (v RingView) Ring() Ring {
	if len(v.XS) == 0 {
		return nil
	}
	r := make(Ring, len(v.XS))
	for i := range v.XS {
		r[i] = Point{v.XS[i], v.YS[i]}
	}
	return r
}

// Bounds returns the view's minimum bounding rectangle (EmptyRect for an
// empty view), equal to Ring.Bounds over the same vertices.
func (v RingView) Bounds() Rect {
	if len(v.XS) == 0 {
		return EmptyRect()
	}
	r := Rect{MinX: v.XS[0], MinY: v.YS[0], MaxX: v.XS[0], MaxY: v.YS[0]}
	for i := 1; i < len(v.XS); i++ {
		if v.XS[i] < r.MinX {
			r.MinX = v.XS[i]
		}
		if v.XS[i] > r.MaxX {
			r.MaxX = v.XS[i]
		}
		if v.YS[i] < r.MinY {
			r.MinY = v.YS[i]
		}
		if v.YS[i] > r.MaxY {
			r.MaxY = v.YS[i]
		}
	}
	return r
}

// SignedArea returns the signed area (positive when counterclockwise),
// with Ring.SignedArea's arithmetic.
func (v RingView) SignedArea() float64 {
	n := len(v.XS)
	if n < 3 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		j := i + 1
		if j == n {
			j = 0
		}
		s += v.XS[i]*v.YS[j] - v.YS[i]*v.XS[j]
	}
	return s / 2
}

// Area returns the absolute enclosed area.
func (v RingView) Area() float64 { return absf(v.SignedArea()) }

// ContainsPoint reports whether p lies in the closed region bounded by the
// view's ring — identical to (Polygon{Outer: ring}).ContainsPoint over the
// same vertices (boundary points are contained).
func (v RingView) ContainsPoint(p Point) bool {
	n := len(v.XS)
	if n == 0 {
		return false
	}
	// Boundary first, then the ray-crossing parity, exactly as the
	// single-ring polygon containment does.
	for i := 0; i < n; i++ {
		j := i + 1
		if j == n {
			j = 0
		}
		if Seg(v.At(i), v.At(j)).ContainsPoint(p) {
			return true
		}
	}
	odd := false
	for i := 0; i < n; i++ {
		j := i + 1
		if j == n {
			j = 0
		}
		a, b := v.At(i), v.At(j)
		if (a.Y > p.Y) == (b.Y > p.Y) {
			continue
		}
		if a.Y < b.Y {
			if Orient(a, b, p) == CounterClockwise {
				odd = !odd
			}
		} else {
			if Orient(b, a, p) == CounterClockwise {
				odd = !odd
			}
		}
	}
	return odd
}
