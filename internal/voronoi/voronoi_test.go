package voronoi

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func uniformPoints(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	return pts
}

func unitBounds() geom.Rect { return geom.NewRect(0, 0, 1, 1) }

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(nil, unitBounds()); err == nil {
		t.Error("New(nil) should fail")
	}
}

func TestTwoSitesCellsSplitBounds(t *testing.T) {
	d, err := New([]geom.Point{geom.Pt(0.25, 0.5), geom.Pt(0.75, 0.5)}, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	c0, c1 := d.Cell(0), d.Cell(1)
	if math.Abs(c0.Area()-0.5) > 1e-9 || math.Abs(c1.Area()-0.5) > 1e-9 {
		t.Errorf("cell areas = %v, %v; want 0.5 each", c0.Area(), c1.Area())
	}
	// The bisector x=0.5 bounds both cells.
	for _, p := range c0 {
		if p.X > 0.5+1e-9 {
			t.Errorf("cell 0 vertex %v crosses bisector", p)
		}
	}
	for _, p := range c1 {
		if p.X < 0.5-1e-9 {
			t.Errorf("cell 1 vertex %v crosses bisector", p)
		}
	}
}

func TestCellContainsItsSite(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := uniformPoints(rng, 400)
	d, err := New(pts, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		cell := d.Cell(i)
		if len(cell) < 3 {
			t.Fatalf("site %d: degenerate cell %v", i, cell)
		}
		pg := geom.Polygon{Outer: cell}
		if !pg.ContainsPoint(pts[i]) {
			t.Fatalf("site %d at %v not inside its cell", i, pts[i])
		}
	}
}

func TestCellsPartitionBounds(t *testing.T) {
	// The clipped cells must tile the bounding rectangle: areas sum to the
	// rect area (pairwise overlaps have measure zero).
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 3, 10, 100, 500} {
		pts := uniformPoints(rng, n)
		d, err := New(pts, unitBounds())
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i := 0; i < n; i++ {
			sum += d.CellArea(i)
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("n=%d: cell areas sum to %v, want 1", n, sum)
		}
	}
}

func TestCellMembershipMatchesNearestSite(t *testing.T) {
	// Property 3: q ∈ V(P, p) ⇔ p is the nearest site to q. Sampled.
	rng := rand.New(rand.NewSource(3))
	pts := uniformPoints(rng, 200)
	d, err := New(pts, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	cells := make([]geom.Polygon, len(pts))
	for i := range pts {
		cells[i] = geom.Polygon{Outer: d.Cell(i)}
	}
	for trial := 0; trial < 3000; trial++ {
		q := geom.Pt(rng.Float64(), rng.Float64())
		// Brute-force nearest site.
		best, bestD := 0, math.Inf(1)
		for i, p := range pts {
			if dd := q.Dist2(p); dd < bestD {
				best, bestD = i, dd
			}
		}
		// Ties make membership ambiguous; skip near-boundary queries.
		secondD := math.Inf(1)
		for i, p := range pts {
			if i != best {
				if dd := q.Dist2(p); dd < secondD {
					secondD = dd
				}
			}
		}
		if secondD-bestD < 1e-9 {
			continue
		}
		if !cells[best].ContainsPoint(q) {
			t.Fatalf("q=%v nearest site %d but outside its cell", q, best)
		}
		if got := d.NearestSite(q); q.Dist2(pts[got]) != bestD {
			t.Fatalf("NearestSite(%v) = %d, want %d", q, got, best)
		}
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := uniformPoints(rng, 500)
	d, err := New(pts, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		for _, nb := range d.Neighbors(i) {
			found := false
			for _, back := range d.Neighbors(int(nb)) {
				if int(back) == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("neighbor relation not symmetric: %d -> %d", i, nb)
			}
		}
	}
}

func TestAdjacentCellsShareBisectorEdge(t *testing.T) {
	// For Voronoi neighbors p, q the shared cell boundary lies on the
	// perpendicular bisector: sampled cell vertices adjacent to both sites
	// must be equidistant.
	rng := rand.New(rand.NewSource(5))
	pts := uniformPoints(rng, 100)
	d, err := New(pts, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		site := pts[i]
		cell := d.Cell(i)
		for _, v := range cell {
			dSite := v.Dist(site)
			// No other site may be strictly closer to the cell vertex.
			for j, p := range pts {
				if j == i {
					continue
				}
				if v.Dist(p) < dSite-1e-6 {
					t.Fatalf("cell vertex %v of site %d closer to site %d", v, i, j)
				}
			}
		}
	}
}

func TestFromTriangulationSharesTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := uniformPoints(rng, 50)
	d1, err := New(pts, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	d2 := FromTriangulation(d1.Triangulation(), geom.NewRect(-1, -1, 2, 2))
	if d2.NumSites() != d1.NumSites() {
		t.Error("site count changed")
	}
	if d2.Bounds() != geom.NewRect(-1, -1, 2, 2) {
		t.Error("bounds not honored")
	}
	// Larger bounds -> cell areas sum to the larger rect.
	var sum float64
	for i := 0; i < d2.NumSites(); i++ {
		sum += d2.CellArea(i)
	}
	if math.Abs(sum-9) > 1e-6 {
		t.Errorf("areas sum to %v, want 9", sum)
	}
}

func TestCollinearSitesCells(t *testing.T) {
	pts := []geom.Point{geom.Pt(0.2, 0.5), geom.Pt(0.5, 0.5), geom.Pt(0.8, 0.5)}
	d, err := New(pts, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	// Cells are three vertical slabs.
	if math.Abs(d.CellArea(0)-0.35) > 1e-9 ||
		math.Abs(d.CellArea(1)-0.30) > 1e-9 ||
		math.Abs(d.CellArea(2)-0.35) > 1e-9 {
		t.Errorf("slab areas = %v %v %v", d.CellArea(0), d.CellArea(1), d.CellArea(2))
	}
}

func TestSiteAccessors(t *testing.T) {
	pts := []geom.Point{geom.Pt(0.1, 0.2), geom.Pt(0.9, 0.8)}
	d, err := New(pts, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	if d.Site(0) != pts[0] || d.Site(1) != pts[1] {
		t.Error("Site accessor mismatch")
	}
	if d.NumSites() != 2 {
		t.Error("NumSites mismatch")
	}
	if got := d.NearestSiteFrom(geom.Pt(0.85, 0.85), 0); got != 1 {
		t.Errorf("NearestSiteFrom = %d, want 1", got)
	}
}

func BenchmarkCell(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	pts := uniformPoints(rng, 10_000)
	d, err := New(pts, unitBounds())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Cell(i % len(pts))
	}
}
