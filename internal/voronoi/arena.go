package voronoi

import "repro/internal/geom"

// CellArena packs every clipped Voronoi cell of a point set into one
// contiguous structure-of-arrays vertex store: flat xs/ys coordinate
// slices, int32 ring offsets, and per-cell bounding boxes packed four
// floats apiece. It is built once at diagram construction and then read
// by the strict-expansion BFS with zero per-visit allocation — Ring
// returns a view over the packed slices and InBox tests a bounding box
// without materializing a Rect.
//
// Rings are stored exactly as Diagram.Cell computes them (the builders
// share Cell's clipping code path), so arena reads and per-call cell
// construction agree bit-for-bit. A degenerate (empty) cell occupies zero
// vertices and an empty bounding box that intersects nothing.
//
// A CellArena is immutable after construction and safe for concurrent
// readers.
type CellArena struct {
	xs, ys []float64
	offs   []int32   // len NumCells+1; ring i is [offs[i], offs[i+1])
	boxes  []float64 // 4 per cell: minX, minY, maxX, maxY
}

// BuildCellArena clips every cell of d once and packs the rings. The
// rings (and their order) are identical to calling d.Cell(i) for each
// site.
func BuildCellArena(d *Diagram) *CellArena {
	n := d.NumSites()
	a := newCellArena(n)
	corners := d.bounds.Corners()
	var ring, tmp []geom.Point
	for i := 0; i < n; i++ {
		site := d.tri.Point(i)
		ring = append(ring[:0], corners[:]...)
		for _, nb := range d.tri.Neighbors(i) {
			tmp = clipHalfPlaneInto(tmp, ring, site, d.tri.Point(int(nb)))
			ring, tmp = tmp, ring
			if len(ring) == 0 {
				break
			}
		}
		a.pushRing(ring)
	}
	return a
}

// CellArenaFromSites builds an arena for n sites whose coordinates and
// neighbor coordinates are enumerated by callback — the dynamic
// triangulation's access pattern — clipping every cell to clip.
// eachNeighbor must report site i's Voronoi neighbors in the same order
// CellFromNeighbors would receive them, so packed rings match the
// per-call construction exactly.
func CellArenaFromSites(
	n int,
	clip geom.Rect,
	site func(i int) geom.Point,
	eachNeighbor func(i int, fn func(nb geom.Point) bool),
) *CellArena {
	a := newCellArena(n)
	corners := clip.Corners()
	var ring, tmp []geom.Point
	for i := 0; i < n; i++ {
		s := site(i)
		ring = append(ring[:0], corners[:]...)
		eachNeighbor(i, func(nb geom.Point) bool {
			tmp = clipHalfPlaneInto(tmp, ring, s, nb)
			ring, tmp = tmp, ring
			return len(ring) > 0
		})
		a.pushRing(ring)
	}
	return a
}

// newCellArena returns an empty arena pre-sized for n cells. The vertex
// capacity guess (6 per cell, the average Voronoi cell degree) avoids most
// growth reallocations during the build.
func newCellArena(n int) *CellArena {
	return &CellArena{
		xs:    make([]float64, 0, 6*n),
		ys:    make([]float64, 0, 6*n),
		offs:  append(make([]int32, 0, n+1), 0),
		boxes: make([]float64, 0, 4*n),
	}
}

// pushRing packs ring as the next cell, recording its bounding box. An
// empty ring packs zero vertices and an empty box (nothing intersects it).
func (a *CellArena) pushRing(ring []geom.Point) {
	if len(ring) == 0 {
		a.offs = append(a.offs, int32(len(a.xs)))
		e := geom.EmptyRect()
		a.boxes = append(a.boxes, e.MinX, e.MinY, e.MaxX, e.MaxY)
		return
	}
	minX, minY := ring[0].X, ring[0].Y
	maxX, maxY := minX, minY
	for _, p := range ring {
		a.xs = append(a.xs, p.X)
		a.ys = append(a.ys, p.Y)
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	a.offs = append(a.offs, int32(len(a.xs)))
	a.boxes = append(a.boxes, minX, minY, maxX, maxY)
}

// NumCells returns the number of packed cells.
//
//vaq:noalloc
func (a *CellArena) NumCells() int { return len(a.offs) - 1 }

// NumVertices returns the total vertex count across all rings.
//
//vaq:noalloc
func (a *CellArena) NumVertices() int { return len(a.xs) }

// Bytes returns the arena's retained memory in bytes (coordinate slices,
// offsets and packed boxes) — the flat layout's whole cost.
func (a *CellArena) Bytes() int {
	return 8*(len(a.xs)+len(a.ys)+len(a.boxes)) + 4*len(a.offs)
}

// Ring returns a zero-allocation view of cell i's ring (empty view for a
// degenerate cell). The view aliases the arena and must not be modified.
//
//vaq:noalloc
func (a *CellArena) Ring(i int) geom.RingView {
	lo, hi := a.offs[i], a.offs[i+1]
	return geom.RingView{XS: a.xs[lo:hi], YS: a.ys[lo:hi]}
}

// AppendRing appends cell i's vertices to dst and returns the extended
// slice (a materializing copy; the BFS hot path uses Ring instead).
func (a *CellArena) AppendRing(i int, dst geom.Ring) geom.Ring {
	lo, hi := a.offs[i], a.offs[i+1]
	for j := lo; j < hi; j++ {
		dst = append(dst, geom.Point{X: a.xs[j], Y: a.ys[j]})
	}
	return dst
}

// CellBox returns the bounding rectangle of cell i (EmptyRect for a
// degenerate cell), equal to Cell(i).Bounds().
//
//vaq:noalloc
func (a *CellArena) CellBox(i int) geom.Rect {
	j := 4 * i
	return geom.Rect{MinX: a.boxes[j], MinY: a.boxes[j+1], MaxX: a.boxes[j+2], MaxY: a.boxes[j+3]}
}

// InBox reports whether cell i's bounding box intersects r — the BFS's
// first, dense-memory reject. Identical to CellBox(i).Intersects(r): the
// plain comparisons reject empty boxes (and empty r) by themselves, since
// an empty box's MinX exceeds every MaxX.
//
//vaq:noalloc
func (a *CellArena) InBox(i int, r geom.Rect) bool {
	j := 4 * i
	return a.boxes[j] <= r.MaxX && r.MinX <= a.boxes[j+2] &&
		a.boxes[j+1] <= r.MaxY && r.MinY <= a.boxes[j+3]
}

// CellArea returns the area of cell i, computed by the shoelace formula
// over the packed coordinates — equal to Cell(i).Area() with no
// allocation.
//
//vaq:noalloc
func (a *CellArena) CellArea(i int) float64 { return a.Ring(i).Area() }
