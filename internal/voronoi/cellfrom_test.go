package voronoi

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestCellFromNeighborsMatchesDiagramCell(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := uniformPoints(rng, 200)
	d, err := New(pts, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(pts); i += 7 {
		nbs := d.Neighbors(i)
		nbPts := make([]geom.Point, len(nbs))
		for j, nb := range nbs {
			nbPts[j] = pts[nb]
		}
		a := d.Cell(i)
		b := CellFromNeighbors(pts[i], nbPts, unitBounds())
		if math.Abs(a.Area()-b.Area()) > 1e-9 {
			t.Fatalf("site %d: diagram cell area %v, reconstructed %v", i, a.Area(), b.Area())
		}
	}
}

func TestCellFromNeighborsNoNeighbors(t *testing.T) {
	// A site with no neighbors owns the whole clip rectangle.
	ring := CellFromNeighbors(geom.Pt(0.5, 0.5), nil, unitBounds())
	if math.Abs(ring.Area()-1) > 1e-12 {
		t.Errorf("lone site cell area = %v, want 1", ring.Area())
	}
}

func TestCellFromNeighborsFarSite(t *testing.T) {
	// A site far outside the clip rect whose bisectors exclude the whole
	// rect yields an empty (nil) cell.
	ring := CellFromNeighbors(
		geom.Pt(10, 10),
		[]geom.Point{geom.Pt(0.5, 0.5)},
		unitBounds(),
	)
	if ring != nil {
		t.Errorf("far site should have empty clipped cell, got %v", ring)
	}
}
