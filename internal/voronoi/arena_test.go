package voronoi

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// clusteredPoints draws n points around k Gaussian cluster centers,
// clamped into the unit square.
func clusteredPoints(rng *rand.Rand, n, k int, sigma float64) []geom.Point {
	centers := uniformPoints(rng, k)
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centers[rng.Intn(k)]
		x := c.X + rng.NormFloat64()*sigma
		y := c.Y + rng.NormFloat64()*sigma
		pts[i] = geom.Pt(clamp01(x), clamp01(y))
	}
	return pts
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// checkArenaParity verifies that the packed arena agrees with per-call
// Diagram.Cell on every site: identical rings (exact float equality — the
// builders share the clipping code path), identical bounding boxes, and
// identical areas.
func checkArenaParity(t *testing.T, pts []geom.Point, bounds geom.Rect) {
	t.Helper()
	d, err := New(pts, bounds)
	if err != nil {
		t.Fatal(err)
	}
	a := BuildCellArena(d)
	if a.NumCells() != d.NumSites() {
		t.Fatalf("NumCells = %d, want %d", a.NumCells(), d.NumSites())
	}
	verts := 0
	for i := 0; i < d.NumSites(); i++ {
		cell := d.Cell(i)
		view := a.Ring(i)
		if view.Len() != len(cell) {
			t.Fatalf("site %d: arena ring has %d vertices, Cell has %d", i, view.Len(), len(cell))
		}
		for j := range cell {
			if view.At(j) != cell[j] {
				t.Fatalf("site %d vertex %d: arena %v != Cell %v", i, j, view.At(j), cell[j])
			}
		}
		if got := a.AppendRing(i, nil); len(got) != len(cell) {
			t.Fatalf("site %d: AppendRing produced %d vertices, want %d", i, len(got), len(cell))
		}
		if len(cell) == 0 {
			if box := a.CellBox(i); box.MinX <= box.MaxX {
				t.Fatalf("site %d: degenerate cell packed non-empty box %v", i, box)
			}
		} else {
			if box, want := a.CellBox(i), cell.Bounds(); box != want {
				t.Fatalf("site %d: CellBox = %v, want %v", i, box, want)
			}
			if got, want := a.CellArea(i), cell.Area(); got != want {
				t.Fatalf("site %d: CellArea = %v, want %v", i, got, want)
			}
			if !a.InBox(i, cell.Bounds()) {
				t.Fatalf("site %d: InBox rejects the cell's own bounds", i)
			}
		}
		verts += view.Len()
	}
	if verts != a.NumVertices() {
		t.Fatalf("NumVertices = %d, rings sum to %d", a.NumVertices(), verts)
	}
	if a.Bytes() <= 0 {
		t.Fatalf("Bytes = %d, want > 0", a.Bytes())
	}
}

func TestCellArenaParityUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	checkArenaParity(t, uniformPoints(rng, 1500), unitBounds())
}

func TestCellArenaParityClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checkArenaParity(t, clusteredPoints(rng, 1500, 8, 0.01), unitBounds())
}

func TestCellArenaParityCollinear(t *testing.T) {
	// All sites on one horizontal line: every Delaunay structure is
	// degenerate, cells are vertical slabs.
	pts := make([]geom.Point, 40)
	for i := range pts {
		pts[i] = geom.Pt(float64(i+1)/41, 0.5)
	}
	checkArenaParity(t, pts, unitBounds())
}

func TestCellArenaParityDuplicateHeavy(t *testing.T) {
	// Heavy coordinate reuse: a coarse grid sampled with replacement. New
	// dedups coincident sites, so the diagram (and arena) cover the
	// distinct locations only.
	rng := rand.New(rand.NewSource(99))
	pts := make([]geom.Point, 0, 600)
	for len(pts) < cap(pts) {
		pts = append(pts, geom.Pt(float64(rng.Intn(12))/12+1.0/24, float64(rng.Intn(12))/12+1.0/24))
	}
	d, err := New(pts, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	if d.NumSites() >= len(pts) {
		t.Fatalf("expected dedup: %d sites from %d points", d.NumSites(), len(pts))
	}
	a := BuildCellArena(d)
	for i := 0; i < d.NumSites(); i++ {
		cell := d.Cell(i)
		view := a.Ring(i)
		if view.Len() != len(cell) {
			t.Fatalf("site %d: arena ring has %d vertices, Cell has %d", i, view.Len(), len(cell))
		}
		for j := range cell {
			if view.At(j) != cell[j] {
				t.Fatalf("site %d vertex %d: arena %v != Cell %v", i, j, view.At(j), cell[j])
			}
		}
	}
}

func TestCellArenaFromSitesMatchesCellFromNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := uniformPoints(rng, 300)
	d, err := New(pts, unitBounds())
	if err != nil {
		t.Fatal(err)
	}
	// Drive the callback builder off the static diagram's adjacency; rings
	// must match CellFromNeighbors over the same neighbor sequences.
	a := CellArenaFromSites(
		d.NumSites(), d.Bounds(),
		func(i int) geom.Point { return d.Site(i) },
		func(i int, fn func(nb geom.Point) bool) {
			for _, nb := range d.Neighbors(i) {
				if !fn(d.Site(int(nb))) {
					return
				}
			}
		},
	)
	for i := 0; i < d.NumSites(); i++ {
		nbs := d.Neighbors(i)
		nbPts := make([]geom.Point, len(nbs))
		for j, nb := range nbs {
			nbPts[j] = d.Site(int(nb))
		}
		want := CellFromNeighbors(d.Site(i), nbPts, d.Bounds())
		view := a.Ring(i)
		if view.Len() != len(want) {
			t.Fatalf("site %d: arena ring has %d vertices, want %d", i, view.Len(), len(want))
		}
		for j := range want {
			if view.At(j) != want[j] {
				t.Fatalf("site %d vertex %d: arena %v != %v", i, j, view.At(j), want[j])
			}
		}
	}
}
