// Package voronoi exposes the Voronoi diagram of a point set as the dual of
// its Delaunay triangulation (package delaunay).
//
// The area-query algorithm needs three things from the diagram: the Voronoi
// neighbors VN(P, p) of a site, nearest-site location (paper Property 3:
// the nearest site to q is the site whose cell contains q), and — for the
// strict expansion variant and for rendering — the cell polygon of a site,
// clipped to a bounding rectangle.
package voronoi

import (
	"fmt"

	"repro/internal/delaunay"
	"repro/internal/geom"
)

// Diagram is a Voronoi diagram over a fixed point set, valid within Bounds.
// It is immutable and safe for concurrent readers.
type Diagram struct {
	tri    *delaunay.Triangulation
	bounds geom.Rect
}

// New builds the Voronoi diagram of pts, with cells clipped to bounds.
// bounds should contain all points; it is also the universe for unbounded
// hull cells.
func New(pts []geom.Point, bounds geom.Rect) (*Diagram, error) {
	t, err := delaunay.Build(pts)
	if err != nil {
		return nil, fmt.Errorf("voronoi: %w", err)
	}
	return FromTriangulation(t, bounds), nil
}

// FromTriangulation wraps an existing triangulation without rebuilding it.
func FromTriangulation(t *delaunay.Triangulation, bounds geom.Rect) *Diagram {
	return &Diagram{tri: t, bounds: bounds}
}

// Triangulation returns the underlying Delaunay triangulation.
func (d *Diagram) Triangulation() *delaunay.Triangulation { return d.tri }

// Bounds returns the clipping rectangle of the diagram.
func (d *Diagram) Bounds() geom.Rect { return d.bounds }

// NumSites returns the number of distinct sites.
func (d *Diagram) NumSites() int { return d.tri.NumSites() }

// Site returns the coordinates of site i.
func (d *Diagram) Site(i int) geom.Point { return d.tri.Point(i) }

// Neighbors returns the Voronoi neighbors of site i — exactly its Delaunay
// neighbors (Property 4: the structures are dual). The slice aliases
// internal storage and must not be modified.
func (d *Diagram) Neighbors(i int) []int32 { return d.tri.Neighbors(i) }

// NearestSite returns the site whose cell contains q, which by Property 3
// is the nearest site to q.
func (d *Diagram) NearestSite(q geom.Point) int { return d.tri.NearestSite(q) }

// NearestSiteFrom is NearestSite with a walk hint.
func (d *Diagram) NearestSiteFrom(q geom.Point, start int) int {
	return d.tri.NearestSiteFrom(q, start)
}

// Cell returns the Voronoi cell of site i clipped to the diagram bounds, as
// a counterclockwise ring. The cell is computed as the intersection of the
// bounding rectangle with the bisector half-planes toward each Voronoi
// neighbor, which is exact up to floating-point bisector crossings and
// needs no special-casing for unbounded hull cells.
func (d *Diagram) Cell(i int) geom.Ring {
	site := d.tri.Point(i)
	corners := d.bounds.Corners()
	ring := geom.Ring(corners[:])
	for _, nb := range d.tri.Neighbors(i) {
		ring = clipHalfPlane(ring, site, d.tri.Point(int(nb)))
		if len(ring) == 0 {
			return nil
		}
	}
	return ring
}

// CellFromNeighbors computes the Voronoi cell of a site given its Voronoi
// neighbors' coordinates, clipped to bounds — the same construction Cell
// uses, exposed for callers (such as the dynamic triangulation) that hold
// the topology themselves.
func CellFromNeighbors(site geom.Point, neighbors []geom.Point, bounds geom.Rect) geom.Ring {
	corners := bounds.Corners()
	ring := geom.Ring(corners[:])
	for _, nb := range neighbors {
		ring = clipHalfPlane(ring, site, nb)
		if len(ring) == 0 {
			return nil
		}
	}
	return ring
}

// CellArea returns the area of the (clipped) cell of site i.
func (d *Diagram) CellArea(i int) float64 { return d.Cell(i).Area() }

// clipHalfPlane clips ring to the half-plane of locations at least as close
// to site as to other (Sutherland–Hodgman against the perpendicular
// bisector).
func clipHalfPlane(ring geom.Ring, site, other geom.Point) geom.Ring {
	return clipHalfPlaneInto(nil, ring, site, other)
}

// clipHalfPlaneInto is clipHalfPlane writing into dst[:0] — the
// allocation-free form the arena builder ping-pongs between two scratch
// buffers. Cell and BuildCellArena share this one code path, so the arena's
// packed rings are bit-identical to the per-call rings.
func clipHalfPlaneInto(dst, ring []geom.Point, site, other geom.Point) []geom.Point {
	dst = dst[:0]
	for i := range ring {
		cur, next := ring[i], ring[(i+1)%len(ring)]
		curIn := cur.Dist2(site) <= cur.Dist2(other)
		nextIn := next.Dist2(site) <= next.Dist2(other)
		switch {
		case curIn && nextIn:
			dst = append(dst, next)
		case curIn && !nextIn:
			dst = append(dst, bisectorCross(cur, next, site, other))
		case !curIn && nextIn:
			dst = append(dst, bisectorCross(cur, next, site, other), next)
		}
	}
	return dst
}

// bisectorCross returns the crossing of segment a-b with the perpendicular
// bisector of site and other: solve |a+td-site|² = |a+td-other|² for t
// along d = b-a.
func bisectorCross(a, b, site, other geom.Point) geom.Point {
	dir := b.Sub(a)
	denom := 2 * dir.Dot(other.Sub(site))
	if denom == 0 {
		return a // segment parallel to the bisector; degenerate
	}
	t := (a.Dist2(other) - a.Dist2(site)) / denom
	return a.Add(dir.Scale(t))
}
