package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func unitBounds() geom.Rect { return geom.NewRect(0, 0, 1, 1) }

func TestUniformPointsInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := geom.NewRect(-2, 3, 5, 7)
	pts := UniformPoints(rng, 5000, b)
	if len(pts) != 5000 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if !b.ContainsPoint(p) {
			t.Fatalf("point %v outside bounds", p)
		}
	}
	// Rough uniformity: each quadrant holds ~25%.
	c := b.Center()
	quads := [4]int{}
	for _, p := range pts {
		q := 0
		if p.X > c.X {
			q |= 1
		}
		if p.Y > c.Y {
			q |= 2
		}
		quads[q]++
	}
	for i, n := range quads {
		if n < 1000 || n > 1500 {
			t.Errorf("quadrant %d has %d of 5000 points", i, n)
		}
	}
}

func TestClusteredPointsInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := ClusteredPoints(rng, 2000, 5, 0.02, unitBounds())
	if len(pts) != 2000 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if !unitBounds().ContainsPoint(p) {
			t.Fatalf("point %v outside bounds", p)
		}
	}
	// Clustered data should be far less uniform than uniform data: measure
	// occupancy of a 10x10 grid — many cells should be (near) empty.
	empty := 0
	var cells [100]int
	for _, p := range pts {
		ix := int(p.X * 10)
		iy := int(p.Y * 10)
		if ix > 9 {
			ix = 9
		}
		if iy > 9 {
			iy = 9
		}
		cells[iy*10+ix]++
	}
	for _, n := range cells {
		if n == 0 {
			empty++
		}
	}
	if empty < 20 {
		t.Errorf("clustered data occupies almost every cell (%d empty), looks uniform", empty)
	}
}

func TestClusteredDegenerateArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := ClusteredPoints(rng, 10, 0, 0.1, unitBounds()) // clusters < 1
	if len(pts) != 10 {
		t.Errorf("got %d points", len(pts))
	}
}

func TestRandomPolygonQuerySize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, qs := range []float64{0.01, 0.02, 0.04, 0.08, 0.16, 0.32} {
		for trial := 0; trial < 50; trial++ {
			pg := RandomPolygon(rng, PolygonConfig{Vertices: 10, QuerySize: qs}, unitBounds())
			mbr := pg.Bounds()
			if math.Abs(mbr.Area()-qs) > qs*1e-6 {
				t.Fatalf("qs=%v: MBR area = %v", qs, mbr.Area())
			}
			if !unitBounds().ContainsRect(mbr) {
				t.Fatalf("qs=%v: MBR %v escapes bounds", qs, mbr)
			}
			if len(pg.Outer) != 10 {
				t.Fatalf("vertices = %d, want 10", len(pg.Outer))
			}
			if !pg.Outer.IsSimple() {
				t.Fatalf("polygon not simple: %v", pg.Outer)
			}
		}
	}
}

func TestRandomPolygonDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pg := RandomPolygon(rng, PolygonConfig{}, unitBounds())
	if len(pg.Outer) != 10 {
		t.Errorf("default vertices = %d, want 10", len(pg.Outer))
	}
	if math.Abs(pg.Bounds().Area()-0.01) > 1e-8 {
		t.Errorf("default query size MBR area = %v, want 0.01", pg.Bounds().Area())
	}
}

func TestRandomPolygonIsOftenConcave(t *testing.T) {
	// The paper stresses irregular/concave query areas; the generator
	// should produce them with high probability at the default spikiness.
	rng := rand.New(rand.NewSource(6))
	concave := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		pg := RandomPolygon(rng, PolygonConfig{Vertices: 10, QuerySize: 0.01}, unitBounds())
		if !pg.Outer.IsConvex() {
			concave++
		}
	}
	if concave < trials*3/4 {
		t.Errorf("only %d/%d polygons concave", concave, trials)
	}
}

func TestRandomPolygonAreaSmallerThanMBR(t *testing.T) {
	// The premise of the paper: irregular polygons occupy a fraction of
	// their MBR. Check the generated average is comfortably below 1.
	rng := rand.New(rand.NewSource(7))
	var ratioSum float64
	const trials = 200
	for i := 0; i < trials; i++ {
		pg := RandomPolygon(rng, PolygonConfig{Vertices: 10, QuerySize: 0.04}, unitBounds())
		ratioSum += pg.Area() / pg.Bounds().Area()
	}
	avg := ratioSum / trials
	if avg > 0.8 {
		t.Errorf("polygons nearly fill their MBRs (avg ratio %.2f); not irregular enough", avg)
	}
	if avg < 0.1 {
		t.Errorf("polygons degenerate (avg ratio %.2f)", avg)
	}
}

func TestRandomPolygonDeterministicPerSeed(t *testing.T) {
	a := RandomPolygon(rand.New(rand.NewSource(42)), PolygonConfig{Vertices: 8, QuerySize: 0.05}, unitBounds())
	b := RandomPolygon(rand.New(rand.NewSource(42)), PolygonConfig{Vertices: 8, QuerySize: 0.05}, unitBounds())
	if len(a.Outer) != len(b.Outer) {
		t.Fatal("same seed, different polygons")
	}
	for i := range a.Outer {
		if a.Outer[i] != b.Outer[i] {
			t.Fatal("same seed, different polygons")
		}
	}
}
