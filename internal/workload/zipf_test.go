package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestZipfPickerDeterministic(t *testing.T) {
	a := ZipfPicker(rand.New(rand.NewSource(7)), 1.1, 64)
	b := ZipfPicker(rand.New(rand.NewSource(7)), 1.1, 64)
	for i := 0; i < 1000; i++ {
		if av, bv := a(), b(); av != bv {
			t.Fatalf("draw %d: %d != %d with identical seeds", i, av, bv)
		}
	}
}

func TestZipfPickerSkew(t *testing.T) {
	const n, draws = 64, 20000
	pick := ZipfPicker(rand.New(rand.NewSource(11)), 1.2, n)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		idx := pick()
		if idx < 0 || idx >= n {
			t.Fatalf("index %d out of [0,%d)", idx, n)
		}
		counts[idx]++
	}
	// Rank 0 must dominate, and the head must carry most of the traffic.
	if counts[0] <= counts[n-1] {
		t.Fatalf("rank 0 drawn %d times, rank %d drawn %d — no skew", counts[0], n-1, counts[n-1])
	}
	head := 0
	for _, c := range counts[:8] {
		head += c
	}
	if frac := float64(head) / draws; frac < 0.5 {
		t.Fatalf("top-8 regions carry only %.0f%% of traffic, want skewed majority", frac*100)
	}
}

func TestZipfPickerClampsLowSkew(t *testing.T) {
	// s <= 1 is outside rand.Zipf's domain; the picker must still work.
	pick := ZipfPicker(rand.New(rand.NewSource(3)), 0.5, 8)
	for i := 0; i < 100; i++ {
		if idx := pick(); idx < 0 || idx >= 8 {
			t.Fatalf("index %d out of range", idx)
		}
	}
}

func TestHotRegionPool(t *testing.T) {
	bounds := geom.NewRect(0, 0, 1, 1)
	cfg := HotRegionConfig{Regions: 32, Clusters: 3, QuerySize: 0.01}
	pool := HotRegionPool(rand.New(rand.NewSource(5)), cfg, bounds)
	if len(pool) != 32 {
		t.Fatalf("pool size %d, want 32", len(pool))
	}
	for i, pg := range pool {
		mbr := pg.Bounds()
		if mbr.MinX < bounds.MinX-1e-9 || mbr.MinY < bounds.MinY-1e-9 ||
			mbr.MaxX > bounds.MaxX+1e-9 || mbr.MaxY > bounds.MaxY+1e-9 {
			t.Fatalf("region %d MBR %+v escapes bounds", i, mbr)
		}
		// Translation preserves the generator's exact query-size scaling.
		if got := mbr.Area() / bounds.Area(); math.Abs(got-0.01) > 1e-9 {
			t.Fatalf("region %d query size %.5f, want 0.01", i, got)
		}
	}
	// Determinism per seed.
	again := HotRegionPool(rand.New(rand.NewSource(5)), cfg, bounds)
	for i := range pool {
		if len(pool[i].Outer) != len(again[i].Outer) || pool[i].Outer[0] != again[i].Outer[0] {
			t.Fatalf("region %d differs across identically seeded runs", i)
		}
	}
}

func TestHotRegionPoolClustering(t *testing.T) {
	// With tight sigma the pool centers must form clusters: the mean
	// distance to the nearest other region center should be far below the
	// uniform-expectation for the same count.
	bounds := geom.NewRect(0, 0, 1, 1)
	pool := HotRegionPool(rand.New(rand.NewSource(9)), HotRegionConfig{
		Regions: 48, Clusters: 3, ClusterSigma: 0.02, QuerySize: 0.005,
	}, bounds)
	centers := make([]geom.Point, len(pool))
	for i, pg := range pool {
		m := pg.Bounds()
		centers[i] = geom.Pt((m.MinX+m.MaxX)/2, (m.MinY+m.MaxY)/2)
	}
	sum := 0.0
	for i, c := range centers {
		best := math.Inf(1)
		for j, o := range centers {
			if i == j {
				continue
			}
			if d := math.Hypot(c.X-o.X, c.Y-o.Y); d < best {
				best = d
			}
		}
		sum += best
	}
	mean := sum / float64(len(centers))
	// Uniform nearest-neighbor distance for 48 points in a unit square is
	// ~0.5/sqrt(48) ≈ 0.072; clustered pools sit well under half of that.
	if mean > 0.036 {
		t.Fatalf("mean nearest-center distance %.4f — pool does not cluster", mean)
	}
}
