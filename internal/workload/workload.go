// Package workload generates the synthetic datasets and query areas used by
// the paper's evaluation: uniform (and, as an extension, clustered) point
// sets in a rectangular universe, and random simple polygons of k vertices
// scaled so the polygon's MBR covers a chosen fraction of the universe —
// the paper's "query size" knob.
package workload

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/geom"
	"repro/internal/hilbert"
)

// HilbertSort reorders pts in place along a Hilbert curve over bounds.
// Spatially clustering the dataset this way mirrors how a production
// spatial store lays out records (neighboring points share pages and cache
// lines), which benefits both area-query methods and especially the
// Voronoi BFS, whose access pattern is spatially local.
func HilbertSort(pts []geom.Point, bounds geom.Rect) {
	sc := hilbert.NewScaler(bounds.MinX, bounds.MinY, bounds.MaxX, bounds.MaxY, hilbert.Order)
	keys := make([]uint64, len(pts))
	for i, p := range pts {
		keys[i] = sc.D(p.X, p.Y)
	}
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	out := make([]geom.Point, len(pts))
	for i, j := range idx {
		out[i] = pts[j]
	}
	copy(pts, out)
}

// UniformPoints returns n points uniformly distributed in bounds.
func UniformPoints(rng *rand.Rand, n int, bounds geom.Rect) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(
			bounds.MinX+rng.Float64()*bounds.Width(),
			bounds.MinY+rng.Float64()*bounds.Height(),
		)
	}
	return pts
}

// ClusteredPoints returns n points drawn from a mixture of `clusters`
// Gaussian blobs with standard deviation sigma (in units of the shorter
// bounds side), rejected into bounds. It models skewed real-world data
// (cities, POIs).
func ClusteredPoints(rng *rand.Rand, n, clusters int, sigma float64, bounds geom.Rect) []geom.Point {
	if clusters < 1 {
		clusters = 1
	}
	centers := UniformPoints(rng, clusters, bounds)
	s := sigma * math.Min(bounds.Width(), bounds.Height())
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		c := centers[rng.Intn(clusters)]
		p := geom.Pt(c.X+rng.NormFloat64()*s, c.Y+rng.NormFloat64()*s)
		if bounds.ContainsPoint(p) {
			pts = append(pts, p)
		}
	}
	return pts
}

// PolygonConfig controls RandomPolygon.
type PolygonConfig struct {
	// Vertices is the vertex count; the paper uses 10.
	Vertices int
	// QuerySize is area(MBR(polygon)) / area(bounds), the paper's query
	// size. Must be in (0, 1].
	QuerySize float64
	// MinRadiusRatio is the inner-to-outer radius ratio of the star
	// construction, in (0, 1]; lower values produce spikier (more
	// irregular, more concave) polygons. Default 0.25 when zero.
	MinRadiusRatio float64
}

// RandomPolygon generates a random simple polygon inside bounds whose MBR
// area is QuerySize × area(bounds).
//
// Construction: k rays at sorted random angles from a center, each with a
// random radius — a star-shaped and therefore simple polygon, concave with
// high probability, matching the paper's "randomly generated polygon of
// ten points". The polygon is then scaled to hit the target MBR area
// exactly and placed uniformly at random so its MBR lies inside bounds.
func RandomPolygon(rng *rand.Rand, cfg PolygonConfig, bounds geom.Rect) geom.Polygon {
	k := cfg.Vertices
	if k < 3 {
		k = 10
	}
	minR := cfg.MinRadiusRatio
	if minR <= 0 || minR > 1 {
		minR = 0.25
	}
	qs := cfg.QuerySize
	if qs <= 0 || qs > 1 {
		qs = 0.01
	}

	for {
		// Distinct sorted angles.
		angles := make([]float64, k)
		for i := range angles {
			angles[i] = rng.Float64() * 2 * math.Pi
		}
		sortFloat64s(angles)
		distinct := true
		for i := 1; i < k; i++ {
			if angles[i]-angles[i-1] < 1e-6 {
				distinct = false
				break
			}
		}
		if !distinct {
			continue
		}
		pts := make([]geom.Point, k)
		for i, a := range angles {
			r := minR + (1-minR)*rng.Float64()
			pts[i] = geom.Pt(r*math.Cos(a), r*math.Sin(a))
		}
		pg, err := geom.NewPolygon(pts)
		if err != nil {
			continue // degenerate sample; retry
		}

		// Scale the MBR to the target area.
		mbr := pg.Bounds()
		target := qs * bounds.Area()
		if mbr.Area() <= 0 || target <= 0 {
			continue
		}
		s := math.Sqrt(target / mbr.Area())
		w, h := mbr.Width()*s, mbr.Height()*s
		if w > bounds.Width() || h > bounds.Height() {
			// Aspect ratio too extreme to place at this query size; retry.
			continue
		}
		// Place the scaled MBR uniformly inside bounds.
		ox := bounds.MinX + rng.Float64()*(bounds.Width()-w)
		oy := bounds.MinY + rng.Float64()*(bounds.Height()-h)
		ring := make([]geom.Point, k)
		for i, p := range pts {
			ring[i] = geom.Pt(ox+(p.X-mbr.MinX)*s, oy+(p.Y-mbr.MinY)*s)
		}
		out, err := geom.NewPolygon(ring)
		if err != nil {
			continue
		}
		return out
	}
}

// RectanglePolygon returns an axis-aligned rectangular query polygon with
// the given aspect ratio (width/height) whose area — which for a rectangle
// equals its MBR area — is querySize × area(bounds), placed uniformly at
// random. The paper's introduction observes that the traditional method is
// nearly optimal for rectangular queries; this generator provides that
// best case for ablations.
func RectanglePolygon(rng *rand.Rand, querySize, aspect float64, bounds geom.Rect) geom.Polygon {
	if querySize <= 0 || querySize > 1 {
		querySize = 0.01
	}
	if aspect <= 0 {
		aspect = 1
	}
	target := querySize * bounds.Area()
	h := math.Sqrt(target / aspect)
	w := aspect * h
	if w > bounds.Width() {
		w = bounds.Width()
		h = target / w
	}
	if h > bounds.Height() {
		h = bounds.Height()
		w = target / h
	}
	ox := bounds.MinX + rng.Float64()*(bounds.Width()-w)
	oy := bounds.MinY + rng.Float64()*(bounds.Height()-h)
	return geom.MustPolygon([]geom.Point{
		geom.Pt(ox, oy), geom.Pt(ox+w, oy), geom.Pt(ox+w, oy+h), geom.Pt(ox, oy+h),
	})
}

// sortFloat64s is insertion sort; k is tiny (10 by default).
func sortFloat64s(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
