package workload

import (
	"math/rand"

	"repro/internal/geom"
)

// HotRegionConfig parameterizes HotRegionPool: a pool of query areas
// clustered around a few hot spots, modeling the skewed geography of real
// traffic (downtowns, event venues, transit hubs) where most queries hammer
// a small set of regions.
type HotRegionConfig struct {
	// Regions is the pool size — the number of distinct query areas traffic
	// draws from. Default 64 when <= 0.
	Regions int
	// Clusters is the number of hot spots the pool centers gather around.
	// Default 4 when <= 0.
	Clusters int
	// ClusterSigma is the standard deviation of a region center around its
	// hot spot, in units of the shorter bounds side. Default 0.05 when <= 0.
	ClusterSigma float64
	// Vertices is the polygon vertex count (the paper uses 10). Default 10
	// when < 3.
	Vertices int
	// QuerySize is area(MBR(polygon)) / area(bounds), the paper's query-size
	// knob. Default 0.01 when outside (0, 1].
	QuerySize float64
}

func (c HotRegionConfig) withDefaults() HotRegionConfig {
	if c.Regions <= 0 {
		c.Regions = 64
	}
	if c.Clusters <= 0 {
		c.Clusters = 4
	}
	if c.ClusterSigma <= 0 {
		c.ClusterSigma = 0.05
	}
	if c.Vertices < 3 {
		c.Vertices = 10
	}
	if c.QuerySize <= 0 || c.QuerySize > 1 {
		c.QuerySize = 0.01
	}
	return c
}

// HotRegionPool returns cfg.Regions random query polygons whose MBR centers
// gather around cfg.Clusters hot spots inside bounds. Pool order is hotness
// order by convention: pair it with ZipfPicker, whose index 0 is the most
// frequently drawn, to turn the pool into a skewed query stream. The pool
// is deterministic for a given rng seed.
func HotRegionPool(rng *rand.Rand, cfg HotRegionConfig, bounds geom.Rect) []geom.Polygon {
	cfg = cfg.withDefaults()
	spots := UniformPoints(rng, cfg.Clusters, bounds)
	sigma := cfg.ClusterSigma * min(bounds.Width(), bounds.Height())
	pool := make([]geom.Polygon, cfg.Regions)
	for i := range pool {
		pg := RandomPolygon(rng, PolygonConfig{
			Vertices:  cfg.Vertices,
			QuerySize: cfg.QuerySize,
		}, bounds)
		spot := spots[rng.Intn(cfg.Clusters)]
		cx := spot.X + rng.NormFloat64()*sigma
		cy := spot.Y + rng.NormFloat64()*sigma
		pool[i] = moveToCenter(pg, cx, cy, bounds)
	}
	return pool
}

// moveToCenter translates pg so its MBR center lands at (cx, cy), clamped
// so the MBR stays inside bounds. Translation preserves simplicity and the
// MBR area, so the result is still a valid query polygon of the same query
// size.
func moveToCenter(pg geom.Polygon, cx, cy float64, bounds geom.Rect) geom.Polygon {
	mbr := pg.Bounds()
	w, h := mbr.Width(), mbr.Height()
	cx = clamp(cx, bounds.MinX+w/2, bounds.MaxX-w/2)
	cy = clamp(cy, bounds.MinY+h/2, bounds.MaxY-h/2)
	dx := cx - (mbr.MinX + w/2)
	dy := cy - (mbr.MinY + h/2)
	out := geom.Polygon{Outer: translateRing(pg.Outer, dx, dy)}
	for _, hole := range pg.Holes {
		out.Holes = append(out.Holes, translateRing(hole, dx, dy))
	}
	return out
}

func translateRing(r geom.Ring, dx, dy float64) geom.Ring {
	out := make(geom.Ring, len(r))
	for i, p := range r {
		out[i] = geom.Pt(p.X+dx, p.Y+dy)
	}
	return out
}

func clamp(v, lo, hi float64) float64 {
	if hi < lo {
		return (lo + hi) / 2
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ZipfPicker returns a deterministic generator of pool indexes in [0, n)
// following a zipfian rank distribution with skew s: index 0 is drawn most
// often, index 1 next, and so on — P(rank k) ∝ 1/(k+1)^s. Larger s
// concentrates traffic harder on the hottest regions (s ≈ 1 is the classic
// web-traffic regime). s values at or below 1 are clamped just above 1
// (rand.Zipf's domain). n must be >= 1.
func ZipfPicker(rng *rand.Rand, s float64, n int) func() int {
	if n < 1 {
		panic("workload: ZipfPicker needs n >= 1")
	}
	if s <= 1 {
		s = 1 + 1e-9
	}
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	return func() int { return int(z.Uint64()) }
}
