package quadtree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func unitBounds() geom.Rect { return geom.NewRect(0, 0, 1, 1) }

func buildRandom(rng *rand.Rand, n int) (*Tree, []Item) {
	tr := NewTree(unitBounds(), 8)
	items := make([]Item, 0, n)
	for i := 0; i < n; i++ {
		it := Item{ID: int64(i), Point: geom.Pt(rng.Float64(), rng.Float64())}
		if tr.Insert(it.ID, it.Point) {
			items = append(items, it)
		}
	}
	return tr, items
}

func TestInsertOutsideBounds(t *testing.T) {
	tr := NewTree(unitBounds(), 4)
	if tr.Insert(1, geom.Pt(2, 2)) {
		t.Error("insert outside bounds should fail")
	}
	if tr.Len() != 0 {
		t.Error("failed insert changed size")
	}
	if !tr.Insert(2, geom.Pt(1, 1)) {
		t.Error("boundary point should insert")
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 9, 100, 2000} {
		tr, items := buildRandom(rng, n)
		if tr.Len() != len(items) {
			t.Fatalf("Len=%d items=%d", tr.Len(), len(items))
		}
		for trial := 0; trial < 100; trial++ {
			q := geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
			got := make(map[int64]bool)
			tr.Search(q, func(id int64, _ geom.Point) bool { got[id] = true; return true })
			want := 0
			for _, it := range items {
				if q.ContainsPoint(it.Point) {
					want++
					if !got[it.ID] {
						t.Fatalf("missing item %d", it.ID)
					}
				}
			}
			if len(got) != want {
				t.Fatalf("got %d, want %d", len(got), want)
			}
		}
	}
}

func TestNearestNeighborMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr, items := buildRandom(rng, 1000)
	for trial := 0; trial < 500; trial++ {
		q := geom.Pt(rng.Float64()*1.4-0.2, rng.Float64()*1.4-0.2)
		got, ok := tr.NearestNeighbor(q)
		if !ok {
			t.Fatal("NN failed")
		}
		wantD := math.Inf(1)
		for _, it := range items {
			if d := q.Dist2(it.Point); d < wantD {
				wantD = d
			}
		}
		if q.Dist2(got.Point) != wantD {
			t.Fatalf("NN dist %v, want %v", q.Dist2(got.Point), wantD)
		}
	}
}

func TestCoincidentPointsDoNotRecurseForever(t *testing.T) {
	tr := NewTree(unitBounds(), 2)
	p := geom.Pt(0.3, 0.7)
	for i := int64(0); i < 100; i++ {
		if !tr.Insert(i, p) {
			t.Fatal("insert failed")
		}
	}
	if tr.Len() != 100 {
		t.Errorf("Len = %d", tr.Len())
	}
	count := 0
	tr.Search(geom.NewRect(0.3, 0.7, 0.3, 0.7), func(int64, geom.Point) bool { count++; return true })
	if count != 100 {
		t.Errorf("found %d coincident points, want 100", count)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr, _ := buildRandom(rng, 300)
	calls := 0
	tr.Search(unitBounds(), func(int64, geom.Point) bool { calls++; return calls < 7 })
	if calls != 7 {
		t.Errorf("early stop after %d calls", calls)
	}
}

func TestEmptyTreeNN(t *testing.T) {
	tr := NewTree(unitBounds(), 4)
	if _, ok := tr.NearestNeighbor(geom.Pt(0.5, 0.5)); ok {
		t.Error("NN on empty tree should fail")
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	tr := NewTree(unitBounds(), 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(int64(i), geom.Pt(rng.Float64(), rng.Float64()))
	}
}

func BenchmarkNearestNeighbor(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	tr := NewTree(unitBounds(), 16)
	for i := 0; i < 100_000; i++ {
		tr.Insert(int64(i), geom.Pt(rng.Float64(), rng.Float64()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.NearestNeighbor(geom.Pt(rng.Float64(), rng.Float64()))
	}
}
