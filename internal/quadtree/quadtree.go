// Package quadtree implements a point-region (PR) quadtree (Samet 1984)
// with bucketed leaves, supporting insertion, rectangular range queries and
// best-first nearest-neighbor search.
//
// It serves as an alternative filtering index in the area-query ablation
// experiments.
package quadtree

import (
	"container/heap"

	"repro/internal/geom"
)

// DefaultBucketSize is the leaf capacity used when NewTree receives a
// non-positive bucket size.
const DefaultBucketSize = 16

// Item is a stored point with an identifier.
type Item struct {
	ID    int64
	Point geom.Point
}

// Tree is a PR quadtree covering a fixed square region. Points outside the
// region are rejected by Insert.
type Tree struct {
	root   *qnode
	bounds geom.Rect
	bucket int
	size   int
}

type qnode struct {
	bounds   geom.Rect
	items    []Item    // leaf payload
	children *[4]qnode // nil for leaves
	depth    int
}

// maxDepth bounds subdivision so coincident points cannot recurse forever.
const maxDepth = 48

// NewTree returns an empty quadtree covering bounds.
func NewTree(bounds geom.Rect, bucketSize int) *Tree {
	if bucketSize <= 0 {
		bucketSize = DefaultBucketSize
	}
	return &Tree{root: &qnode{bounds: bounds}, bounds: bounds, bucket: bucketSize}
}

// Len returns the number of stored points.
func (t *Tree) Len() int { return t.size }

// Bounds returns the covered region.
func (t *Tree) Bounds() geom.Rect { return t.bounds }

// Insert adds a point. It reports false (and stores nothing) when p is
// outside the tree bounds.
func (t *Tree) Insert(id int64, p geom.Point) bool {
	if !t.bounds.ContainsPoint(p) {
		return false
	}
	n := t.root
	for n.children != nil {
		n = &n.children[quadrant(n.bounds, p)]
	}
	n.items = append(n.items, Item{ID: id, Point: p})
	t.size++
	if len(n.items) > t.bucket && n.depth < maxDepth {
		t.split(n)
	}
	return true
}

func (t *Tree) split(n *qnode) {
	cx, cy := n.bounds.Center().X, n.bounds.Center().Y
	var ch [4]qnode
	ch[0] = qnode{bounds: geom.Rect{MinX: n.bounds.MinX, MinY: n.bounds.MinY, MaxX: cx, MaxY: cy}, depth: n.depth + 1}
	ch[1] = qnode{bounds: geom.Rect{MinX: cx, MinY: n.bounds.MinY, MaxX: n.bounds.MaxX, MaxY: cy}, depth: n.depth + 1}
	ch[2] = qnode{bounds: geom.Rect{MinX: n.bounds.MinX, MinY: cy, MaxX: cx, MaxY: n.bounds.MaxY}, depth: n.depth + 1}
	ch[3] = qnode{bounds: geom.Rect{MinX: cx, MinY: cy, MaxX: n.bounds.MaxX, MaxY: n.bounds.MaxY}, depth: n.depth + 1}
	items := n.items
	n.items = nil
	n.children = &ch
	for _, it := range items {
		c := &ch[quadrant(n.bounds, it.Point)]
		c.items = append(c.items, it)
	}
	// A child may still overflow (clustered points); recurse.
	for i := range ch {
		if len(ch[i].items) > t.bucket && ch[i].depth < maxDepth {
			t.split(&ch[i])
		}
	}
}

// quadrant picks the child index for p: 0=SW 1=SE 2=NW 3=NE, with points on
// the center lines going east/north.
func quadrant(b geom.Rect, p geom.Point) int {
	c := b.Center()
	q := 0
	if p.X >= c.X {
		q |= 1
	}
	if p.Y >= c.Y {
		q |= 2
	}
	return q
}

// Search calls fn for every stored point inside the closed rectangle q; fn
// returning false stops the search. It returns the number of tree nodes
// visited.
func (t *Tree) Search(q geom.Rect, fn func(id int64, p geom.Point) bool) int {
	visited := 0
	var rec func(n *qnode) bool
	rec = func(n *qnode) bool {
		visited++
		if n.children != nil {
			for i := range n.children {
				c := &n.children[i]
				if q.Intersects(c.bounds) {
					if !rec(c) {
						return false
					}
				}
			}
			return true
		}
		for _, it := range n.items {
			if q.ContainsPoint(it.Point) {
				if !fn(it.ID, it.Point) {
					return false
				}
			}
		}
		return true
	}
	rec(t.root)
	return visited
}

type nnEntry struct {
	dist2 float64
	node  *qnode
	item  Item
	leafI bool
}

type nnHeap []nnEntry

func (h nnHeap) Len() int            { return len(h) }
func (h nnHeap) Less(i, j int) bool  { return h[i].dist2 < h[j].dist2 }
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(nnEntry)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NearestNeighbor returns the stored point closest to q; ok is false for an
// empty tree.
func (t *Tree) NearestNeighbor(q geom.Point) (Item, bool) {
	if t.size == 0 {
		return Item{}, false
	}
	h := nnHeap{{dist2: t.root.bounds.Dist2Point(q), node: t.root}}
	for len(h) > 0 {
		e := heap.Pop(&h).(nnEntry)
		if e.leafI {
			return e.item, true
		}
		n := e.node
		if n.children != nil {
			for i := range n.children {
				c := &n.children[i]
				heap.Push(&h, nnEntry{dist2: c.bounds.Dist2Point(q), node: c})
			}
			continue
		}
		for _, it := range n.items {
			heap.Push(&h, nnEntry{dist2: q.Dist2(it.Point), item: it, leafI: true})
		}
	}
	return Item{}, false
}
