// Package hilbert maps 2-D grid coordinates to positions along a Hilbert
// space-filling curve and back.
//
// The curve is used as a spatial sort: points close on the curve are close
// in the plane, which makes Hilbert order an excellent insertion order for
// incremental Delaunay construction (near-linear walks between consecutive
// insertions) and a good packing order for bulk-loaded R-trees.
package hilbert

import "sort"

// Order is the default curve order used by the helpers in this repository:
// a 2^16 × 2^16 grid, giving 32-bit curve positions.
const Order = 16

// XYToD converts grid coordinates (x, y) in [0, 2^order) to the distance
// along the Hilbert curve of the given order.
func XYToD(order uint, x, y uint32) uint64 {
	var rx, ry uint32
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		if x&s > 0 {
			rx = 1
		} else {
			rx = 0
		}
		if y&s > 0 {
			ry = 1
		} else {
			ry = 0
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		x, y = rot(s, x, y, rx, ry)
	}
	return d
}

// DToXY converts a distance along the Hilbert curve of the given order back
// to grid coordinates. It is the inverse of XYToD.
func DToXY(order uint, d uint64) (x, y uint32) {
	t := d
	for s := uint32(1); s < uint32(1)<<order; s <<= 1 {
		rx := uint32(1) & uint32(t/2)
		ry := uint32(1) & uint32(t^uint64(rx))
		x, y = rot(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// rot rotates/flips a quadrant appropriately.
func rot(n, x, y, rx, ry uint32) (uint32, uint32) {
	if ry == 0 {
		if rx == 1 {
			x = n - 1 - x
			y = n - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// Partition splits the index range [0, len(keys)) into at most parts
// contiguous runs of Hilbert-curve order: indexes are sorted by key (ties
// broken by index, so the result is deterministic) and cut into runs of
// near-equal size — the first len(keys)%parts runs hold one extra item.
// Because consecutive curve positions are adjacent in the plane, each run
// is a spatially coherent tile; this is the shard assignment used by the
// sharded engine. parts is clamped to [1, len(keys)], so no returned run
// is empty; a nil result means keys was empty.
func Partition(keys []uint64, parts int) [][]int {
	n := len(keys)
	if n == 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ka, kb := keys[order[a]], keys[order[b]]
		if ka != kb {
			return ka < kb
		}
		return order[a] < order[b]
	})
	out := make([][]int, parts)
	size, extra := n/parts, n%parts
	pos := 0
	for p := 0; p < parts; p++ {
		run := size
		if p < extra {
			run++
		}
		out[p] = order[pos : pos+run : pos+run]
		pos += run
	}
	return out
}

// Scaler maps float64 coordinates in a bounding box onto Hilbert distances,
// for sorting arbitrary planar point sets.
type Scaler struct {
	minX, minY   float64
	spanX, spanY float64
	order        uint
	side         float64
}

// NewScaler returns a Scaler for points inside the box
// [minX,maxX]×[minY,maxY]. Degenerate (zero-span) boxes are handled by
// mapping the flat axis to 0.
func NewScaler(minX, minY, maxX, maxY float64, order uint) *Scaler {
	return &Scaler{
		minX: minX, minY: minY,
		spanX: maxX - minX, spanY: maxY - minY,
		order: order,
		side:  float64(uint64(1)<<order - 1),
	}
}

// D returns the Hilbert distance of (x, y). Coordinates outside the box are
// clamped.
func (s *Scaler) D(x, y float64) uint64 {
	return XYToD(s.order, s.grid(x, s.minX, s.spanX), s.grid(y, s.minY, s.spanY))
}

func (s *Scaler) grid(v, min, span float64) uint32 {
	if span <= 0 {
		return 0
	}
	f := (v - min) / span
	if f < 0 {
		f = 0
	} else if f > 1 {
		f = 1
	}
	return uint32(f * s.side)
}
