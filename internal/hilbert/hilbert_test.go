package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripExhaustiveSmallOrder(t *testing.T) {
	const order = 4 // 16x16 grid, 256 cells
	seen := make(map[uint64]bool)
	for x := uint32(0); x < 1<<order; x++ {
		for y := uint32(0); y < 1<<order; y++ {
			d := XYToD(order, x, y)
			if d >= 1<<(2*order) {
				t.Fatalf("d out of range: (%d,%d) -> %d", x, y, d)
			}
			if seen[d] {
				t.Fatalf("duplicate curve position %d for (%d,%d)", d, x, y)
			}
			seen[d] = true
			gx, gy := DToXY(order, d)
			if gx != x || gy != y {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", x, y, d, gx, gy)
			}
		}
	}
	if len(seen) != 1<<(2*order) {
		t.Fatalf("curve not a bijection: %d distinct positions", len(seen))
	}
}

func TestCurveContinuity(t *testing.T) {
	// Consecutive curve positions must be 4-neighbors on the grid: the
	// defining property of a Hilbert curve.
	const order = 5
	px, py := DToXY(order, 0)
	for d := uint64(1); d < 1<<(2*order); d++ {
		x, y := DToXY(order, d)
		dx := int64(x) - int64(px)
		dy := int64(y) - int64(py)
		if dx*dx+dy*dy != 1 {
			t.Fatalf("curve jump at d=%d: (%d,%d) -> (%d,%d)", d, px, py, x, y)
		}
		px, py = x, y
	}
}

func TestRoundTripPropertyOrder16(t *testing.T) {
	f := func(x, y uint32) bool {
		x %= 1 << Order
		y %= 1 << Order
		gx, gy := DToXY(Order, XYToD(Order, x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestScalerClamps(t *testing.T) {
	s := NewScaler(0, 0, 1, 1, Order)
	inside := s.D(0.5, 0.5)
	if lo := s.D(-10, 0.5); lo == inside {
		t.Error("clamped low x should map to a corner column, not center")
	}
	// Out-of-range values must not panic and must clamp to the box.
	if got, want := s.D(-5, -5), s.D(0, 0); got != want {
		t.Errorf("clamp below: got %d, want %d", got, want)
	}
	if got, want := s.D(5, 5), s.D(1, 1); got != want {
		t.Errorf("clamp above: got %d, want %d", got, want)
	}
}

func TestScalerDegenerateBox(t *testing.T) {
	s := NewScaler(2, 3, 2, 3, Order) // zero-span box
	if got := s.D(2, 3); got != 0 {
		t.Errorf("degenerate box should map to 0, got %d", got)
	}
	if got := s.D(7, -4); got != 0 {
		t.Errorf("degenerate box should map everything to 0, got %d", got)
	}
}

func TestScalerLocality(t *testing.T) {
	// Statistical sanity: for random nearby pairs, Hilbert distance should
	// usually be smaller than for random far pairs.
	s := NewScaler(0, 0, 1, 1, Order)
	rng := rand.New(rand.NewSource(7))
	nearWins := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		x, y := rng.Float64()*0.9, rng.Float64()*0.9
		dNear := absDiff(s.D(x, y), s.D(x+0.001, y+0.001))
		fx, fy := rng.Float64(), rng.Float64()
		dFar := absDiff(s.D(x, y), s.D(fx, fy))
		if dNear <= dFar {
			nearWins++
		}
	}
	if frac := float64(nearWins) / trials; frac < 0.9 {
		t.Errorf("near pairs closer on curve only %.1f%% of trials, want >= 90%%", frac*100)
	}
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

func BenchmarkXYToD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		XYToD(Order, uint32(i)&0xffff, uint32(i>>8)&0xffff)
	}
}

func TestPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, tc := range []struct{ n, parts int }{
		{0, 4}, {1, 1}, {1, 5}, {7, 3}, {100, 1}, {100, 7}, {100, 100}, {100, 250}, {64, 0},
	} {
		keys := make([]uint64, tc.n)
		for i := range keys {
			keys[i] = uint64(rng.Int63n(1000)) // duplicates likely
		}
		runs := Partition(keys, tc.parts)
		if tc.n == 0 {
			if runs != nil {
				t.Errorf("n=0: got %d runs, want nil", len(runs))
			}
			continue
		}
		wantParts := tc.parts
		if wantParts < 1 {
			wantParts = 1
		}
		if wantParts > tc.n {
			wantParts = tc.n
		}
		if len(runs) != wantParts {
			t.Errorf("n=%d parts=%d: got %d runs, want %d", tc.n, tc.parts, len(runs), wantParts)
		}
		seen := make(map[int]bool, tc.n)
		var prevKey uint64
		var prevIdx, total int
		first := true
		minSize, maxSize := tc.n, 0
		for _, run := range runs {
			if len(run) == 0 {
				t.Fatalf("n=%d parts=%d: empty run", tc.n, tc.parts)
			}
			if len(run) < minSize {
				minSize = len(run)
			}
			if len(run) > maxSize {
				maxSize = len(run)
			}
			for _, idx := range run {
				if seen[idx] {
					t.Fatalf("index %d assigned twice", idx)
				}
				seen[idx] = true
				total++
				if !first && (keys[idx] < prevKey || (keys[idx] == prevKey && idx < prevIdx)) {
					t.Fatalf("n=%d parts=%d: order violated at index %d", tc.n, tc.parts, idx)
				}
				prevKey, prevIdx, first = keys[idx], idx, false
			}
		}
		if total != tc.n {
			t.Errorf("n=%d parts=%d: %d indexes assigned", tc.n, tc.parts, total)
		}
		if maxSize-minSize > 1 {
			t.Errorf("n=%d parts=%d: run sizes range %d..%d, want near-equal", tc.n, tc.parts, minSize, maxSize)
		}
	}
}
