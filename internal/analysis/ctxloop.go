package analysis

import (
	"go/ast"
)

// CtxLoop enforces the cancellation invariant of the query path: a
// function that takes a context.Context and drives an unbounded loop —
// a BFS/heap frontier, a stream-reader loop, or an unconditional retry
// loop — must make that loop cancellable. The recognized loop shapes:
//
//   - frontier: `for ... len(X) ...` where the body grows or shrinks X
//     (the Voronoi BFS queue and the KNN heap-pop idiom);
//   - iterator: the loop condition calls a method (for sc.Scan(),
//     for rows.Next(), ...);
//   - infinite: no loop condition (retry/poll loops).
//
// A loop satisfies the invariant when its body checks <ctx>.Err() or
// <ctx>.Done() (the `% cancelStride` guard idiom counts — the check may
// sit behind any condition), or passes <ctx> to a call (delegating
// cancellation to the callee). Bounded range loops and plain counted
// loops are out of scope — they do O(items-in-memory) work and the
// engine's convention is stride checks only where work is unbounded.
var CtxLoop = &Analyzer{
	Code: "ctxloop",
	Doc:  "context-taking query loops must check ctx.Err()/ctx.Done() or delegate ctx",
	Run:  runCtxLoop,
}

func runCtxLoop(p *Pass) {
	for _, f := range p.Pkg.Files {
		ctxPkg := importName(f, "context")
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ctxName := ctxParamName(p, f, fn, ctxPkg)
			if ctxName == "" {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				loop, ok := n.(*ast.ForStmt)
				if !ok {
					return true
				}
				kind := classifyLoop(loop)
				if kind == "" {
					return true
				}
				if !loopCancellable(loop, ctxName) {
					p.Reportf(loop.For,
						"%s loop in %s runs without a %s.Err()/%s.Done() check or a call taking %s (add a cancelStride-style check)",
						kind, fn.Name.Name, ctxName, ctxName, ctxName)
				}
				return true
			})
		}
	}
}

// ctxParamName returns the name of fn's context.Context parameter, "" when
// there is none (or it is unnamed/blank — nothing could check it). Type
// info resolves aliases when available; the file's import table is the
// syntactic fallback.
func ctxParamName(p *Pass, f *ast.File, fn *ast.FuncDecl, ctxPkg string) string {
	for _, field := range fn.Type.Params.List {
		isCtx := false
		if tv, ok := p.Pkg.Info.Types[field.Type]; ok && tv.Type != nil {
			isCtx = typeIsNamed(tv.Type, "context", "Context")
		}
		if !isCtx && ctxPkg != "" {
			if sel, ok := field.Type.(*ast.SelectorExpr); ok && sel.Sel.Name == "Context" {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == ctxPkg {
					isCtx = true
				}
			}
		}
		if !isCtx {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return name.Name
			}
		}
	}
	return ""
}

// classifyLoop reports which obligated shape loop has: "frontier",
// "iterator", "infinite", or "" (out of scope).
func classifyLoop(loop *ast.ForStmt) string {
	if loop.Cond == nil {
		return "infinite"
	}
	iterator := false
	var lenRoots []*ast.Ident
	ast.Inspect(loop.Cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "len" && len(call.Args) == 1 {
			if root := rootIdent(call.Args[0]); root != nil {
				lenRoots = append(lenRoots, root)
			}
			return true
		}
		if _, ok := call.Fun.(*ast.SelectorExpr); ok {
			iterator = true
		}
		return true
	})
	if iterator {
		return "iterator"
	}
	for _, root := range lenRoots {
		if loopMutatesFrontier(loop.Body, root.Name) {
			return "frontier"
		}
	}
	return ""
}

// loopMutatesFrontier reports whether the body changes the length of the
// frontier rooted at name: an assignment whose whole target is rooted at
// name (x = append(x, ...), *h = ..., s.queue = s.queue[:n] — index
// writes do not count), or a method call on it (h.pop(), q.push(...)).
func loopMutatesFrontier(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if _, idx := lhs.(*ast.IndexExpr); idx {
					continue
				}
				if root := rootIdent(lhs); root != nil && root.Name == name {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if root := rootIdent(sel.X); root != nil && root.Name == name {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// loopCancellable reports whether the loop's condition or body contains a
// <ctx>.Err()/<ctx>.Done() use or a call that passes <ctx> along (the
// `for ... && ctx.Err() == nil` condition idiom counts as a check).
func loopCancellable(loop *ast.ForStmt, ctxName string) bool {
	if loop.Cond != nil && exprMentionsCtx(loop.Cond, ctxName) {
		return true
	}
	return exprMentionsCtx(loop.Body, ctxName)
}

// exprMentionsCtx reports whether n contains ctx.Err()/ctx.Done() or a
// call with ctx as an argument.
func exprMentionsCtx(n ast.Node, ctxName string) bool {
	ok := false
	ast.Inspect(n, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
			if id, isID := sel.X.(*ast.Ident); isID && id.Name == ctxName &&
				(sel.Sel.Name == "Err" || sel.Sel.Name == "Done") {
				ok = true
			}
		}
		for _, arg := range call.Args {
			if id, isID := arg.(*ast.Ident); isID && id.Name == ctxName {
				ok = true
			}
		}
		return !ok
	})
	return ok
}
