package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// importName returns the local name path is imported under in f: the
// explicit alias when one is given, the path's last element otherwise,
// and "" when f does not import path (or dot/blank-imports it).
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "." || imp.Name.Name == "_" {
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

// rootIdent unwraps an expression chain (parens, derefs, address-of,
// selectors, indexes, slices, type assertions) down to its base
// identifier; nil when the base is not an identifier (a call, a literal).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprText renders e compactly (types.ExprString), for base-expression
// matching ("s", "bp.shards[i]") and messages.
func exprText(e ast.Expr) string { return types.ExprString(e) }

// isPkgCall reports whether call is pkgName.fnName(...) resolved against
// the file's import table (pkgLocal is the local name of the package in
// this file; "" never matches).
func isPkgCall(call *ast.CallExpr, pkgLocal, fnName string) bool {
	if pkgLocal == "" {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fnName {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkgLocal
}

// funcDoc returns the doc comment text of a function declaration ("" when
// absent).
func funcDoc(decl *ast.FuncDecl) string {
	if decl.Doc == nil {
		return ""
	}
	return decl.Doc.Text()
}

// hasMarker reports whether a doc comment group contains the exact
// marker directive (e.g. "//vaq:noalloc") on a line of its own, with an
// optional trailing argument returned as the second value.
func hasMarker(doc *ast.CommentGroup, marker string) (bool, string) {
	if doc == nil {
		return false, ""
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, marker)
		if !ok {
			continue
		}
		if rest == "" {
			return true, ""
		}
		if rest[0] == ' ' || rest[0] == '\t' {
			return true, strings.TrimSpace(rest)
		}
	}
	return false, ""
}

// typeIsNamed reports whether t (after pointer unwrapping) is the named
// type pkgPath.name.
func typeIsNamed(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// aliasingType reports whether t can alias memory the caller keeps:
// slices, pointers, maps, channels, functions, and interfaces can;
// plain values (numbers, bools, strings — conversions copy — and
// structs/arrays of plain values) are copies. Unknown (nil) types count
// as aliasing — conservative.
func aliasingType(t types.Type) bool {
	if t == nil {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if aliasingType(u.Field(i).Type()) {
				return true
			}
		}
		return false
	case *types.Array:
		return aliasingType(u.Elem())
	default:
		return true
	}
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorType) ||
		types.Implements(types.NewPointer(t), errorType)
}
