// Package analysis is vaqvet's engine: a dependency-free static-analysis
// driver (stdlib go/ast, go/parser, go/token, go/types only) that walks
// the module's packages and runs a suite of project-specific analyzers,
// each enforcing one of the invariants the engine's correctness rests on —
// cancellation checks in candidate loops, pooled-memory isolation,
// mutex-guarded field access, allocation-free hot paths, vaq_ metric
// naming, and sentinel-preserving error wrapping.
//
// Every analyzer has a stable diagnostic code (its name), reports findings
// as file:line:col positions, and honors line-scoped suppression comments:
//
//	//vaqvet:ignore CODE reason
//
// placed on the offending line or on the line directly above it. The code
// must match the diagnostic's code exactly, and the reason is mandatory. A
// malformed ignore is itself a finding (code "badignore"), and so is an
// ignore that suppresses nothing (code "staleignore") — stale ignores rot
// into lies about the code, so the driver refuses to carry them.
//
// The annotation grammar analyzers consume:
//
//	// guarded by <mu>   on a struct field: accesses require <mu> held
//	//vaq:noalloc        on a function: body must not contain allocating constructs
//	//vaq:pooled         on a function: its result is pool-owned memory
//	//vaq:locked <mu>    on a function: caller is required to hold <mu>
//
// cmd/vaqvet is the CLI around this package.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// A Diagnostic is one finding: a stable code, a position, and a message.
type Diagnostic struct {
	Code    string         `json:"code"`
	Pos     token.Position `json:"pos"`
	Message string         `json:"message"`
}

// String renders the conventional file:line:col: code: message line.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Code, d.Message)
}

// An Analyzer checks one invariant over one package at a time.
type Analyzer struct {
	// Code is the diagnostic code every finding of this analyzer carries,
	// and the code an ignore comment must name to suppress one.
	Code string
	// Doc is a one-line description (the README table row).
	Doc string
	// Run reports findings through the pass.
	Run func(*Pass)
}

// A Pass is one analyzer's view of one package.
type Pass struct {
	Pkg      *Package
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Code:    p.analyzer.Code,
		Pos:     p.Pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers is the full vaqvet suite in reporting order.
var Analyzers = []*Analyzer{
	CtxLoop,
	PoolAlias,
	LockGuard,
	NoAlloc,
	MetricName,
	SentinelErr,
}

// Run executes the analyzers over every package and applies the
// suppression protocol per package: matching ignores remove their
// diagnostics, malformed ignores report as badignore, ignores that
// suppressed nothing report as staleignore (ignores naming a code outside
// the analyzer set are left alone — a partial run must not invent
// staleness). Diagnostics come back sorted by file, line, column, code.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	codes := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		codes[a.Code] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			a.Run(&Pass{Pkg: pkg, analyzer: a, diags: &diags})
		}
		out = append(out, applyIgnores(pkg, diags, codes)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Code < b.Code
	})
	return out
}
