package analysis

import (
	"go/token"
	"strings"
)

// Driver-reserved diagnostic codes. Neither is suppressible — an ignore
// naming them is malformed by definition.
const (
	// CodeBadIgnore marks a //vaqvet:ignore comment that does not parse:
	// missing code, missing reason, or naming a driver-reserved code.
	CodeBadIgnore = "badignore"
	// CodeStaleIgnore marks an ignore comment that suppressed nothing in
	// this run: the invariant it excuses no longer fires, so the comment
	// is now misinformation and must be deleted.
	CodeStaleIgnore = "staleignore"
)

const ignorePrefix = "//vaqvet:ignore"

// ignoreDirective is one parsed //vaqvet:ignore comment.
type ignoreDirective struct {
	pos    token.Position // of the comment
	code   string
	reason string
	bad    string // non-empty: malformed, with the problem description
	used   bool
}

// parseIgnores collects every ignore directive in the package's files.
func parseIgnores(pkg *Package) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				d := &ignoreDirective{pos: pkg.Fset.Position(c.Pos())}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// e.g. //vaqvet:ignoreXYZ — not a directive at all.
					continue
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.bad = "missing diagnostic code (want //vaqvet:ignore CODE reason)"
				case len(fields) == 1:
					d.code = fields[0]
					d.bad = "missing reason (want //vaqvet:ignore CODE reason)"
				case fields[0] == CodeBadIgnore || fields[0] == CodeStaleIgnore:
					d.code = fields[0]
					d.bad = "code " + fields[0] + " is driver-reserved and cannot be suppressed"
				default:
					d.code = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// applyIgnores filters diags through the package's ignore directives. A
// directive suppresses diagnostics with exactly its code on its own line
// or on the line directly below it (the comment-above-the-statement
// idiom). Malformed directives report as badignore; well-formed
// directives that suppressed nothing report as staleignore, unless they
// name a code outside ranCodes (that analyzer did not run, so staleness
// is unknowable).
func applyIgnores(pkg *Package, diags []Diagnostic, ranCodes map[string]bool) []Diagnostic {
	directives := parseIgnores(pkg)
	if len(directives) == 0 {
		return diags
	}
	// Index by (file, line, code); a directive covers its line and the next.
	type key struct {
		file string
		line int
		code string
	}
	index := make(map[key]*ignoreDirective)
	for _, d := range directives {
		if d.bad != "" {
			continue
		}
		index[key{d.pos.Filename, d.pos.Line, d.code}] = d
		index[key{d.pos.Filename, d.pos.Line + 1, d.code}] = d
	}
	var out []Diagnostic
	for _, diag := range diags {
		if d, ok := index[key{diag.Pos.Filename, diag.Pos.Line, diag.Code}]; ok {
			d.used = true
			continue
		}
		out = append(out, diag)
	}
	for _, d := range directives {
		switch {
		case d.bad != "":
			out = append(out, Diagnostic{Code: CodeBadIgnore, Pos: d.pos, Message: d.bad})
		case !d.used && ranCodes[d.code]:
			out = append(out, Diagnostic{
				Code:    CodeStaleIgnore,
				Pos:     d.pos,
				Message: "ignore for " + d.code + " suppresses nothing — the finding it excused is gone; delete the comment",
			})
		}
	}
	return out
}
