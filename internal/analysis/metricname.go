package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
)

// MetricName enforces the project's metric-series naming contract: every
// series registered through internal/obs — Registry.Counter, .Gauge,
// .Histogram, .RegisterGaugeFunc — must have a name whose literal base
// matches ^vaq_[a-z0-9_]+$. The idiomatic label suffix concatenation
// (`reg.Counter("vaq_queries_total" + lbl)`) is allowed: the leftmost
// operand of the + chain is the base and must be a conforming string
// literal. A first argument with no literal base at all is unverifiable
// and reports too — series names are part of the dashboard contract and
// must be greppable.
var MetricName = &Analyzer{
	Code: "metricname",
	Doc:  "obs registry series names must match ^vaq_[a-z0-9_]+$",
	Run:  runMetricName,
}

var metricNameRE = regexp.MustCompile(`^vaq_[a-z0-9_]+$`)

// obsRegistrars are the Registry methods that mint series names.
var obsRegistrars = map[string]bool{
	"Counter":           true,
	"Gauge":             true,
	"Histogram":         true,
	"RegisterGaugeFunc": true,
}

const obsPkgPath = "repro/internal/obs"

func runMetricName(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !obsRegistrars[sel.Sel.Name] {
				return true
			}
			if !p.isObsRegistry(sel) {
				return true
			}
			base := leftmostOperand(call.Args[0])
			lit, ok := base.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				p.Reportf(call.Args[0].Pos(),
					"series name passed to %s must start with a string literal (got %s) — names must be greppable",
					sel.Sel.Name, exprText(call.Args[0]))
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil || !metricNameRE.MatchString(name) {
				p.Reportf(lit.Pos(),
					"series name %s does not match ^vaq_[a-z0-9_]+$", lit.Value)
			}
			return true
		})
	}
}

// isObsRegistry reports whether sel selects a method on the obs Registry
// type (directly or through a pointer), resolved through type info; when
// the selection did not resolve, the method-set match alone does not
// report (documented precision loss, never a false positive).
func (p *Pass) isObsRegistry(sel *ast.SelectorExpr) bool {
	if obj := p.Pkg.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil {
		return obj.Pkg().Path() == obsPkgPath
	}
	if selection, ok := p.Pkg.Info.Selections[sel]; ok {
		return typeIsNamed(selection.Recv(), obsPkgPath, "Registry")
	}
	return false
}

// leftmostOperand descends a `a + b + c` chain to a.
func leftmostOperand(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.BinaryExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return e
		}
	}
}
