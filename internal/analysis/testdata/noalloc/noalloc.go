// Package noalloc holds deliberate violations of the //vaq:noalloc
// contract: annotated functions containing allocating constructs.
package noalloc

import "fmt"

type point struct{ x, y float64 }

// sumCopy allocates a scratch slice inside an annotated function.
//
//vaq:noalloc
func sumCopy(xs []float64) float64 {
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	s := 0.0
	for _, v := range tmp {
		s += v
	}
	return s
}

// describe calls fmt inside an annotated function.
//
//vaq:noalloc
func describe(p point) string {
	return fmt.Sprintf("(%g,%g)", p.x, p.y)
}

// boxed returns a heap composite literal inside an annotated function.
//
//vaq:noalloc
func boxed() *point {
	return &point{x: 1}
}

// withClosure builds a closure inside an annotated function.
//
//vaq:noalloc
func withClosure(xs []float64) func() int {
	return func() int { return len(xs) }
}

// grow self-appends (the caller owns growth): compliant.
//
//vaq:noalloc
func grow(dst []float64, v float64) []float64 {
	dst = append(dst, v)
	return dst
}

// mid builds a struct value (stack, not heap): compliant.
//
//vaq:noalloc
func mid(a, b point) point {
	return point{x: (a.x + b.x) / 2, y: (a.y + b.y) / 2}
}

// unannotated functions may allocate freely.
func unannotated() []int { return make([]int, 4) }
