// Package poolalias holds deliberate violations of the pooled-memory
// isolation invariant: functions returning sync.Pool-backed slices (or
// values reached through a declared //vaq:pooled acquire point) without
// copying them out first.
package poolalias

import "sync"

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return b }}

// leakDirect returns the pooled buffer itself.
func leakDirect() []byte {
	b := bufPool.Get().([]byte)
	return b
}

// leakAlias launders the pooled buffer through an alias chain.
func leakAlias() []byte {
	b := bufPool.Get().([]byte)
	c := b
	d := c
	return d
}

// leakViaAcquire returns the result of a declared acquire point.
func leakViaAcquire() []byte {
	return acquire()
}

// cleanCopy copies out of the pooled buffer before returning: compliant.
func cleanCopy() []byte {
	b := bufPool.Get().([]byte)
	out := append([]byte(nil), b...)
	bufPool.Put(b) //nolint:staticcheck // test fixture keeps the leak minimal
	return out
}

// cleanScalar returns a value copied out of the pooled buffer (a
// non-aliasing type): compliant.
func cleanScalar() byte {
	b := bufPool.Get().([]byte)
	if len(b) == 0 {
		return 0
	}
	return b[0]
}

// acquire is this package's declared acquire point; returning pooled
// memory is its purpose and is exempt.
//
//vaq:pooled
func acquire() []byte {
	return bufPool.Get().([]byte)
}
