// Package metricname holds deliberate violations of the series-naming
// contract: obs registry registrations whose literal base does not match
// ^vaq_[a-z0-9_]+$, or has no literal base at all.
package metricname

import "repro/internal/obs"

// register exercises every registrar with bad and good names.
func register(reg *obs.Registry, lbl string) {
	reg.Counter("queries_total")     // missing vaq_ prefix
	reg.Gauge("vaq_Heap_Bytes")      // upper case
	reg.Histogram(lbl + "_seconds")  // no literal base
	reg.RegisterGaugeFunc("vaq-age", // hyphen
		func() float64 { return 0 })

	reg.Counter("vaq_queries_total")     // compliant
	reg.Gauge("vaq_heap_bytes" + lbl)    // compliant: literal base + label suffix
	reg.Histogram("vaq_latency_seconds") // compliant
	reg.RegisterGaugeFunc("vaq_age_seconds", func() float64 { return 0 })
}
