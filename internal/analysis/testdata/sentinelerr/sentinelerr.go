// Package sentinelerr holds deliberate violations of the error-wrapping
// contract: fmt.Errorf stringifying an error value instead of wrapping
// it with %w.
package sentinelerr

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

// stringifyV severs the sentinel chain with %v.
func stringifyV(id int64) error {
	return fmt.Errorf("loading %d: %v", id, errSentinel)
}

// stringifyS severs the sentinel chain with %s.
func stringifyS(err error) error {
	return fmt.Errorf("fan-out failed: %s", err)
}

// wrapW preserves the chain: compliant.
func wrapW(id int64, err error) error {
	return fmt.Errorf("loading %d: %w", id, err)
}

// stringifyNonError stringifies a plain value: compliant (%v is for
// non-errors).
func stringifyNonError(id int64) error {
	return fmt.Errorf("no record %v", id)
}
