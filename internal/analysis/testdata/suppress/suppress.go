// Package suppress exercises the //vaqvet:ignore grammar: a correct
// suppression (silent), a wrong-code suppression (original finding plus
// staleignore), a stale suppression on clean code (staleignore), and
// malformed directives (badignore).
package suppress

// suppressed has a violation covered by a well-formed ignore on the
// offending line: no finding.
//
//vaq:noalloc
func suppressed() []int {
	//vaqvet:ignore noalloc the one-time result allocation is intentional here
	return make([]int, 4)
}

// wrongCode names a different analyzer: the noalloc finding stands and
// the unused ignore is reported stale.
//
//vaq:noalloc
func wrongCode() []int {
	//vaqvet:ignore ctxloop this code does not match the finding
	return make([]int, 4)
}

// missingReason omits the mandatory justification: badignore, and the
// violation still reports.
//
//vaq:noalloc
func missingReason() []int {
	//vaqvet:ignore noalloc
	return make([]int, 4)
}

// missingCode omits everything: badignore, and the violation still
// reports.
//
//vaq:noalloc
func missingCode() []int {
	//vaqvet:ignore
	return make([]int, 4)
}

// stale suppresses code that violates nothing: staleignore.
func stale() int {
	//vaqvet:ignore noalloc nothing here allocates
	return 4
}
