// Package ctxloop holds deliberate violations of the ctxloop invariant:
// context-taking functions driving frontier, iterator, and infinite
// loops with no cancellation check. The expect.txt golden pins one
// finding per bad loop and none for the compliant variants.
package ctxloop

import "context"

type scanner struct{ n int }

func (s *scanner) Scan() bool { s.n--; return s.n > 0 }

// frontierNoCheck drains a frontier without ever consulting ctx.
func frontierNoCheck(ctx context.Context, queue []int64) int {
	n := 0
	for len(queue) > 0 {
		queue = queue[1:]
		n++
	}
	return n
}

// iteratorNoCheck pulls from an iterator without consulting ctx.
func iteratorNoCheck(ctx context.Context, sc *scanner) int {
	n := 0
	for sc.Scan() {
		n++
	}
	return n
}

// infiniteNoCheck retries forever without consulting ctx.
func infiniteNoCheck(ctx context.Context) int {
	n := 0
	for {
		n++
		if n > 1<<20 {
			return n
		}
	}
}

// frontierStride uses the engine's cancelStride idiom: compliant.
func frontierStride(ctx context.Context, queue []int64) (int, error) {
	n := 0
	for head := 0; head < len(queue); head++ {
		if head%64 == 0 {
			if err := ctx.Err(); err != nil {
				return n, err
			}
		}
		queue = append(queue, int64(head))
		if len(queue) > 1<<16 {
			queue = queue[:0]
		}
		n++
	}
	return n, nil
}

// frontierCondCheck folds the check into the condition: compliant.
func frontierCondCheck(ctx context.Context, queue []int64) int {
	n := 0
	for len(queue) > 0 && ctx.Err() == nil {
		queue = queue[1:]
		n++
	}
	return n
}

// frontierDelegates passes ctx to the callee each iteration: compliant.
func frontierDelegates(ctx context.Context, queue []int64) int {
	n := 0
	for len(queue) > 0 {
		queue = shrink(ctx, queue)
		n++
	}
	return n
}

func shrink(_ context.Context, q []int64) []int64 { return q[1:] }

// boundedRange iterates in-memory items: out of scope, never reported.
func boundedRange(ctx context.Context, items []int64) int64 {
	var sum int64
	for _, v := range items {
		sum += v
	}
	return sum
}
