// Package lockguard holds deliberate violations of the guarded-field
// invariant: fields annotated `// guarded by <mu>` accessed in functions
// that never lock that mutex.
package lockguard

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	m  int // guarded by mu
}

// readUnlocked reads n with no lock.
func (c *counter) readUnlocked() int { return c.n }

// readLocked takes the lock: compliant.
func (c *counter) readLocked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// bumpBoth writes both guarded fields under one lock: compliant.
func (c *counter) bumpBoth() {
	c.mu.Lock()
	c.n++
	c.m++
	c.mu.Unlock()
}

// addLocked is documented to run under the caller's lock: exempt.
//
//vaq:locked mu
func (c *counter) addLocked(d int) { c.n += d }

// newCounter is a constructor; pre-publication writes are exempt.
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	return c
}

type gauge struct {
	mu sync.RWMutex
	v  float64 // guarded by mu
}

// get read-locks: compliant.
func (g *gauge) get() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

// peek reads v with no lock.
func (g *gauge) peek() float64 { return g.v }
