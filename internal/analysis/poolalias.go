package analysis

import (
	"go/ast"
	"go/types"
)

// PoolAlias enforces pooled-memory isolation (the PR 5 page-aliasing bug
// class): a function that checks memory out of a sync.Pool — or calls a
// function annotated //vaq:pooled, which declares "my result is
// pool-owned" — must not return that memory or anything reachable from
// it. Once the object goes back to the pool another query will scribble
// over it, so every caller-visible slice/pointer must be a copy.
//
// The analysis is an intra-function taint walk: pool checkouts seed the
// taint, assignments whose right side is rooted in a tainted variable
// propagate it (selectors, indexes, slices, type asserts, append onto a
// tainted destination), and any return of a tainted expression with an
// aliasing type (slice, pointer, map, ...) is a finding. Copies wash the
// taint by construction: append onto a clean destination and copy(dst,
// src) leave dst clean. Functions annotated //vaq:pooled are exempt —
// they are the declared acquire points whose callers inherit the
// obligation.
var PoolAlias = &Analyzer{
	Code: "poolalias",
	Doc:  "pooled/arena memory must not be returned without a copy",
	Run:  runPoolAlias,
}

func runPoolAlias(p *Pass) {
	pooledFuncs := pooledFuncObjects(p)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if marked, _ := hasMarker(fn.Doc, "//vaq:pooled"); marked {
				continue // declared acquire point
			}
			checkPoolAlias(p, fn, pooledFuncs)
		}
	}
}

// pooledFuncObjects collects the type objects of //vaq:pooled-annotated
// functions and methods declared in this package.
func pooledFuncObjects(p *Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if marked, _ := hasMarker(fn.Doc, "//vaq:pooled"); marked {
				if obj := p.Pkg.Info.Defs[fn.Name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

// isPoolSource reports whether call checks memory out of a pool: a .Get()
// on a sync.Pool, or a call to a //vaq:pooled function.
func (p *Pass) isPoolSource(call *ast.CallExpr, pooledFuncs map[types.Object]bool) bool {
	if id, ok := call.Fun.(*ast.Ident); ok {
		return pooledFuncs[p.Pkg.Info.Uses[id]]
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pooledFuncs[p.Pkg.Info.Uses[sel.Sel]] {
		return true
	}
	if sel.Sel.Name != "Get" || len(call.Args) != 0 {
		return false
	}
	if tv, ok := p.Pkg.Info.Types[sel.X]; ok {
		return typeIsNamed(tv.Type, "sync", "Pool")
	}
	return false
}

func checkPoolAlias(p *Pass, fn *ast.FuncDecl, pooledFuncs map[types.Object]bool) {
	// tainted holds the names of variables rooted in pooled memory. Name
	// keying is per-function and deliberately shadow-insensitive —
	// over-tainting a shadowed name is the conservative direction.
	tainted := make(map[string]bool)

	taintedExpr := func(e ast.Expr) bool {
		var walk func(e ast.Expr) bool
		walk = func(e ast.Expr) bool {
			switch x := e.(type) {
			case *ast.CallExpr:
				if p.isPoolSource(x, pooledFuncs) {
					return true
				}
				// append(dst, ...) stays tainted only when dst is; any
				// other call result is a fresh value.
				if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" && len(x.Args) > 0 {
					return walk(x.Args[0])
				}
				return false
			case *ast.TypeAssertExpr:
				return walk(x.X)
			default:
				root := rootIdent(e)
				return root != nil && tainted[root.Name]
			}
		}
		return walk(e)
	}

	// Propagate taint through assignments to a fixed point (assignment
	// chains are short; each pass can only add names).
	for {
		grew := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range assign.Lhs {
				var rhs ast.Expr
				if len(assign.Rhs) == len(assign.Lhs) {
					rhs = assign.Rhs[i]
				} else if len(assign.Rhs) == 1 {
					rhs = assign.Rhs[0] // multi-value: taint all targets
				}
				if rhs == nil || !taintedExpr(rhs) {
					continue
				}
				if root := rootIdent(lhs); root != nil && !tainted[root.Name] {
					tainted[root.Name] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			break
		}
	}
	if len(tainted) == 0 {
		// No pool checkout reached a variable; a direct `return pool.Get()`
		// is still caught below.
		direct := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && p.isPoolSource(call, pooledFuncs) {
				direct = true
			}
			return !direct
		})
		if !direct {
			return
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if !taintedExpr(res) {
				continue
			}
			var t types.Type
			if tv, ok := p.Pkg.Info.Types[res]; ok {
				t = tv.Type
			}
			if !aliasingType(t) {
				continue // a plain value copy cannot alias the pool
			}
			p.Reportf(res.Pos(),
				"%s returns pool-derived memory %q without a copy — after Put, another query will overwrite it",
				fn.Name.Name, exprText(res))
		}
		return true
	})
}
