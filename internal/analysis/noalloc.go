package analysis

import (
	"go/ast"
	"go/types"
)

// NoAlloc enforces //vaq:noalloc annotations: the marked function is a
// hot-path routine (the BFS inner loop, the KNN heap ops, the arena
// accessors) whose steady state must allocate nothing, and its body must
// not contain the constructs that allocate:
//
//   - slice and map composite literals, and &T{...} (escaping composite);
//   - make and new;
//   - function literals (closures capture onto the heap);
//   - any fmt.* call (interface boxing plus formatting state);
//   - append, except the self-append reuse idiom `x = append(x, ...)`
//     (amortized-zero against a pooled/retained buffer);
//   - non-constant string concatenation;
//   - explicit conversions to an interface type.
//
// Struct and array value literals are fine (stack copies), as are calls —
// the annotation is per-function, not transitive; annotate the callee too
// if it must not allocate.
var NoAlloc = &Analyzer{
	Code: "noalloc",
	Doc:  "//vaq:noalloc functions must not contain allocating constructs",
	Run:  runNoAlloc,
}

func runNoAlloc(p *Pass) {
	for _, f := range p.Pkg.Files {
		fmtPkg := importName(f, "fmt")
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if marked, _ := hasMarker(fn.Doc, "//vaq:noalloc"); !marked {
				continue
			}
			checkNoAlloc(p, fn, fmtPkg)
		}
	}
}

func checkNoAlloc(p *Pass, fn *ast.FuncDecl, fmtPkg string) {
	name := fn.Name.Name
	info := p.Pkg.Info

	// Self-appends (`x = append(x, ...)`) are the one allowed append form.
	allowedAppend := make(map[*ast.CallExpr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			return true
		}
		if exprText(assign.Lhs[0]) == exprText(call.Args[0]) {
			allowedAppend[call] = true
		}
		return true
	})

	report := func(pos ast.Node, what string) {
		p.Reportf(pos.Pos(), "//vaq:noalloc function %s contains %s", name, what)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			report(x, "a function literal (closures allocate)")
			return false // its body is the closure's problem
		case *ast.UnaryExpr:
			if x.Op.String() == "&" {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					report(x, "&composite literal (escapes to the heap)")
					return false
				}
			}
		case *ast.CompositeLit:
			var t types.Type
			if tv, ok := info.Types[x]; ok {
				t = tv.Type
			}
			if allocatingLiteral(x, t) {
				report(x, "a slice/map literal")
			}
		case *ast.CallExpr:
			switch fun := x.Fun.(type) {
			case *ast.Ident:
				switch fun.Name {
				case "make":
					report(x, "make")
				case "new":
					report(x, "new")
				case "append":
					if !allowedAppend[x] {
						report(x, "append outside the `x = append(x, ...)` reuse idiom")
					}
				}
			case *ast.SelectorExpr:
				if fmtPkg != "" {
					if id, ok := fun.X.(*ast.Ident); ok && id.Name == fmtPkg {
						report(x, "a fmt."+fun.Sel.Name+" call (boxes into interfaces)")
					}
				}
			}
			// Explicit conversion to an interface type.
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
				if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
					report(x, "a conversion to an interface type")
				}
			}
		case *ast.BinaryExpr:
			if x.Op.String() == "+" {
				if tv, ok := info.Types[x]; ok && tv.Value == nil && tv.Type != nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(x, "non-constant string concatenation")
					}
				}
			}
		}
		return true
	})
}

// allocatingLiteral reports whether lit is a slice or map literal. With
// type info the literal's own type decides; without it the syntactic
// type expression does (a bare ArrayType with no length is a slice).
func allocatingLiteral(lit *ast.CompositeLit, t types.Type) bool {
	if t != nil {
		switch t.Underlying().(type) {
		case *types.Slice, *types.Map:
			return true
		}
		return false
	}
	switch tx := lit.Type.(type) {
	case *ast.ArrayType:
		return tx.Len == nil
	case *ast.MapType:
		return true
	}
	return false
}
