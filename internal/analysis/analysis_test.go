package analysis_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

var update = flag.Bool("update", false, "rewrite the testdata expect.txt goldens")

// sharedLoader memoizes the stdlib type-check across every test in the
// package — loading net/http's closure once instead of per test is what
// keeps the suite fast.
var (
	loaderOnce sync.Once
	loader     *analysis.Loader
	loaderErr  error
)

func getLoader(t *testing.T) *analysis.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = analysis.NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loader
}

// loadTestdata loads one testdata violation package through the shared
// loader and runs the full analyzer suite over it.
func loadTestdata(t *testing.T, name string) []analysis.Diagnostic {
	t.Helper()
	l := getLoader(t)
	pkgs, err := l.Load("internal/analysis/testdata/" + name)
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	return analysis.Run(pkgs, analysis.Analyzers)
}

// render formats diagnostics the way the goldens store them: the file
// basename (stable across checkouts), position, code, and message.
func render(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Code, d.Message)
	}
	return b.String()
}

// TestGolden pins every testdata package's full diagnostic output
// against its expect.txt. Run with -update to rewrite the goldens.
func TestGolden(t *testing.T) {
	ents, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatalf("reading testdata: %v", err)
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			got := render(loadTestdata(t, name))
			golden := filepath.Join("testdata", name, "expect.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatalf("writing %s: %v", golden, err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading %s (run with -update to create): %v", golden, err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestEveryAnalyzerHasViolationCoverage fails if any registered analyzer
// has no true-positive pinned in the goldens — a new analyzer must bring
// a testdata package along.
func TestEveryAnalyzerHasViolationCoverage(t *testing.T) {
	covered := make(map[string]bool)
	ents, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		for _, d := range loadTestdata(t, e.Name()) {
			covered[d.Code] = true
		}
	}
	for _, a := range analysis.Analyzers {
		if !covered[a.Code] {
			t.Errorf("analyzer %s has no true-positive finding in any testdata package", a.Code)
		}
	}
	for _, code := range []string{analysis.CodeBadIgnore, analysis.CodeStaleIgnore} {
		if !covered[code] {
			t.Errorf("driver code %s has no finding in any testdata package", code)
		}
	}
}

// TestSuppressionSemantics spells out the //vaqvet:ignore contract the
// suppress golden encodes: an exact-code match with a reason silences
// exactly one finding; a wrong code leaves the finding and reports the
// ignore as stale; malformed directives are badignore findings.
func TestSuppressionSemantics(t *testing.T) {
	diags := loadTestdata(t, "suppress")

	codesAtLine := make(map[int][]string)
	for _, d := range diags {
		codesAtLine[d.Pos.Line] = append(codesAtLine[d.Pos.Line], d.Code)
	}
	hasCode := func(code string) bool {
		for _, d := range diags {
			if d.Code == code {
				return true
			}
		}
		return false
	}

	// suppressed(): the make sits directly under a well-formed ignore —
	// nothing may report in the function body (lines 11-15).
	for line := 11; line <= 15; line++ {
		if len(codesAtLine[line]) > 0 {
			t.Errorf("line %d: exact-code suppression failed, got %v", line, codesAtLine[line])
		}
	}
	// wrongCode(): the noalloc finding must survive an ignore naming
	// ctxloop, and that ignore must be reported stale.
	if !hasCode("noalloc") {
		t.Error("wrong-code ignore suppressed a finding it does not name")
	}
	if !hasCode(analysis.CodeStaleIgnore) {
		t.Error("unused ignore directives must report as staleignore")
	}
	if !hasCode(analysis.CodeBadIgnore) {
		t.Error("malformed ignore directives must report as badignore")
	}
	// Every surviving finding in this package is one of: the deliberate
	// noalloc violations, staleignore, badignore.
	for _, d := range diags {
		switch d.Code {
		case "noalloc", analysis.CodeBadIgnore, analysis.CodeStaleIgnore:
		default:
			t.Errorf("unexpected code %s at %s", d.Code, d.Pos)
		}
	}
}

// TestCleanTree is the self-test the CI step relies on: the analyzer
// suite reports nothing on the repository's own packages. A regression
// here means either a new true positive slipped in or an analyzer grew a
// false-positive class.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	l := getLoader(t)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load(./...): %v", err)
	}
	if diags := analysis.Run(pkgs, analysis.Analyzers); len(diags) > 0 {
		t.Errorf("vaqvet is not clean on the tree:\n%s", render(diags))
	}
}

// TestRunConcurrent runs the full suite over the same loaded packages
// from several goroutines — Run must be read-only over *Package (the
// -race CI job leans on this).
func TestRunConcurrent(t *testing.T) {
	l := getLoader(t)
	pkgs, err := l.Load("internal/analysis/testdata/suppress", "internal/analysis/testdata/noalloc")
	if err != nil {
		t.Fatal(err)
	}
	want := render(analysis.Run(pkgs, analysis.Analyzers))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := render(analysis.Run(pkgs, analysis.Analyzers)); got != want {
				t.Errorf("concurrent Run diverged:\n%s", got)
			}
		}()
	}
	wg.Wait()
}
