package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and (best-effort) type-checked package of the
// module. Type information is advisory: analyzers consult Info when it
// resolved and fall back to syntax when it did not, so a type-check
// failure degrades precision instead of aborting the run.
type Package struct {
	// ImportPath is the package's path within the module ("repro",
	// "repro/internal/core", ...).
	ImportPath string
	// Dir is the absolute directory.
	Dir string
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files are the package's non-test source files, with comments.
	Files []*ast.File
	// Types and Info carry the type-check result; Types is non-nil even
	// when TypeErrors is not empty.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects soft type-check errors (analysis continues).
	TypeErrors []error
}

// A Loader parses and type-checks module packages. Module-internal
// imports are resolved recursively from source; everything else (the
// standard library) goes through go/importer's source importer rooted at
// GOROOT. One Loader may serve many Load calls — results are memoized,
// which is what makes analyzing many testdata packages in one process
// affordable (the stdlib is type-checked once).
type Loader struct {
	// ModuleRoot is the absolute directory holding go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string
	Fset       *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard
}

// NewLoader returns a loader rooted at the module containing dir (dir or
// an ancestor must hold go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// Load resolves patterns to packages. A pattern ending in "/..." walks
// the tree below its base directory, skipping testdata, hidden, and
// underscore directories (explicitly named directories are always loaded,
// testdata or not — that is how the self-check analyzes the deliberate
// violations). Any other pattern names one package directory, relative to
// the loader's module root unless absolute.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		base, walk := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" || base == "." {
			base = l.ModuleRoot
		} else if !filepath.IsAbs(base) {
			base = filepath.Join(l.ModuleRoot, base)
		}
		if !walk {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if path != base {
				name := d.Name()
				if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
					return filepath.SkipDir
				}
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	out := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// hasGoFiles reports whether dir contains at least one non-test .go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true
		}
	}
	return false
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// importPathFor maps an absolute package directory to its module import
// path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleRoot)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir (memoized).
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{ImportPath: path, Dir: dir, Fset: l.Fset}
	for _, e := range ents {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("analysis: no Go source files in %s", dir)
	}

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:         importerFunc(l.importFor),
		Error:            func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		FakeImportC:      true,
		IgnoreFuncBodies: false,
	}
	// Check never returns a nil package; hard errors land in TypeErrors
	// and the analyzers degrade to syntax for whatever did not resolve.
	pkg.Types, _ = conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	l.pkgs[path] = pkg
	return pkg, nil
}

// importFor resolves one import during type-checking: module-internal
// paths load recursively from source; anything else is delegated to the
// stdlib source importer. Failures return a placeholder package so the
// type-checker can keep going (the miss is recorded as a soft error by
// the checker itself).
func (l *Loader) importFor(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.loadDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
