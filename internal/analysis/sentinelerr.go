package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
)

// SentinelErr enforces sentinel-preserving error wrapping on the query
// paths: a fmt.Errorf whose argument is an error must wrap it with %w,
// never stringify it with %v/%s/%q. Stringifying severs the chain — the
// exported sentinels (vaq.ErrNoData, vaq.ErrOutsideUniverse, the wire
// code mapping) stop matching errors.Is across layers, and the serving
// stack classifies the error as internal instead of its true code.
//
// The check needs the argument's static type, so it only fires where the
// type-checker resolved one (a non-resolving argument is skipped, never
// guessed). Calls whose format string is not a literal, or uses explicit
// argument indexes (%[1]v), are skipped as unverifiable.
var SentinelErr = &Analyzer{
	Code: "sentinelerr",
	Doc:  "fmt.Errorf must wrap error values with %w, not stringify with %v/%s",
	Run:  runSentinelErr,
}

func runSentinelErr(p *Pass) {
	for _, f := range p.Pkg.Files {
		fmtPkg := importName(f, "fmt")
		if fmtPkg == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPkgCall(call, fmtPkg, "Errorf") || len(call.Args) < 2 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			verbs, ok := formatVerbs(format)
			if !ok || len(verbs) != len(call.Args)-1 {
				return true // indexed/starred format or arg mismatch: vet's turf
			}
			for i, verb := range verbs {
				if verb == 'w' {
					continue
				}
				arg := call.Args[1+i]
				tv, ok := p.Pkg.Info.Types[arg]
				if !ok || !implementsError(tv.Type) {
					continue
				}
				p.Reportf(arg.Pos(),
					"error value %s is stringified with %%%c — use %%w so errors.Is still matches the sentinel through the wrap",
					exprText(arg), verb)
			}
			return true
		})
	}
}

// formatVerbs returns the verb letter consuming each successive argument
// of a fmt format string. It reports !ok on explicit argument indexes
// (%[1]v) and * width/precision (argument consumption gets positional),
// leaving those calls to go vet.
func formatVerbs(format string) ([]byte, bool) {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Flags.
		for i < len(format) && (format[i] == '+' || format[i] == '-' || format[i] == '#' ||
			format[i] == ' ' || format[i] == '0') {
			i++
		}
		// Width and precision; * or [n] bail out.
		for i < len(format) && (format[i] == '.' || (format[i] >= '0' && format[i] <= '9')) {
			i++
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case '*', '[':
			return nil, false
		case '%':
			continue
		}
		verbs = append(verbs, format[i])
	}
	return verbs, true
}
