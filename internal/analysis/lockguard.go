package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockGuard enforces `// guarded by <mu>` annotations on struct fields: a
// field so annotated may only be read or written in functions that lock
// that mutex on the same base value — the function must contain a
// <base>.<mu>.Lock() or <base>.<mu>.RLock() call, where <base> renders
// identically to the access's base expression.
//
// The analysis is syntactic and function-granular (deliberately
// conservative): it does not prove the lock is held at the access, only
// that the accessing function takes the lock at all, which is the
// invariant reviewers actually maintain by hand. Two escape hatches keep
// it honest rather than noisy:
//
//   - functions named new*/New* are exempt (construction: the value is
//     not shared yet);
//   - functions annotated //vaq:locked <mu> are exempt for fields guarded
//     by <mu> — the caller-holds-the-lock helper idiom.
//
// Everything else needs a //vaqvet:ignore lockguard with a reason.
var LockGuard = &Analyzer{
	Code: "lockguard",
	Doc:  "fields annotated `// guarded by mu` are only touched under that mutex",
	Run:  runLockGuard,
}

var guardedByRE = regexp.MustCompile(`guarded by (\w+)`)

func runLockGuard(p *Pass) {
	guards := collectGuardedFields(p)
	if len(guards) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLockGuard(p, fn, guards)
		}
	}
}

// collectGuardedFields maps each `// guarded by <mu>`-annotated field's
// type object to its mutex field name.
func collectGuardedFields(p *Pass) map[types.Object]string {
	out := make(map[types.Object]string)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := p.Pkg.Info.Defs[name]; obj != nil {
						out[obj] = mu
					}
				}
			}
			return true
		})
	}
	return out
}

// guardAnnotation extracts the mutex name from a field's doc or trailing
// comment ("" when unannotated).
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func checkLockGuard(p *Pass, fn *ast.FuncDecl, guards map[types.Object]string) {
	name := fn.Name.Name
	if strings.HasPrefix(name, "new") || strings.HasPrefix(name, "New") {
		return // construction: the value is not shared yet
	}
	lockedMu := ""
	if marked, arg := hasMarker(fn.Doc, "//vaq:locked"); marked {
		lockedMu = arg
	}

	// lockedBases collects "<base>.<mu>" strings the function locks.
	lockedBases := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		lockedBases[exprText(sel.X)] = true
		return true
	})

	type reportKey struct {
		field types.Object
		base  string
	}
	reported := make(map[reportKey]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := p.Pkg.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		mu, guarded := guards[selection.Obj()]
		if !guarded || mu == lockedMu {
			return true
		}
		base := exprText(sel.X)
		if lockedBases[base+"."+mu] {
			return true
		}
		key := reportKey{selection.Obj(), base}
		if reported[key] {
			return true
		}
		reported[key] = true
		p.Reportf(sel.Sel.Pos(),
			"%s accesses %s.%s (guarded by %s) but never locks %s.%s",
			name, base, sel.Sel.Name, mu, base, mu)
		return true
	})
}
