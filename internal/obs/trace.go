package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// A Phase labels one stage of a query's execution in a QueryTrace.
type Phase int

const (
	// PhaseCacheLookup is the result-cache key build and probe.
	PhaseCacheLookup Phase = iota
	// PhaseSeed is candidate generation: locating the BFS seed site via
	// the nearest-neighbor search (Voronoi methods only).
	PhaseSeed
	// PhaseExpand is the main scan: BFS expansion over the Voronoi
	// adjacency, or the filter-and-refine loop of the traditional and
	// brute-force methods, excluding time spent in page fetches.
	PhaseExpand
	// PhasePageFetch is time spent loading candidate records from the
	// data layer (buffer-pool fetches for store-backed engines).
	PhasePageFetch
	// PhaseMerge is the sharded engine's sorted merge of per-shard
	// results.
	PhaseMerge
	numPhases
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseCacheLookup:
		return "cache_lookup"
	case PhaseSeed:
		return "seed"
	case PhaseExpand:
		return "expand"
	case PhasePageFetch:
		return "page_fetch"
	case PhaseMerge:
		return "merge"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// A QueryTrace records where one query spent its time, phase by phase,
// so a single slow query can be explained. Attach one to a query with
// the vaq.WithTraceInto option; the engine resets it at query start
// and fills it in as the query runs. All methods are safe on a nil
// receiver (the disabled path is a nil check) and safe for concurrent
// use — sharded queries record phases from several goroutines at once.
//
// Phase durations need not sum to Total: phases cover the instrumented
// stages only, and sharded queries overlap per-shard work in wall
// time.
type QueryTrace struct {
	mu         sync.Mutex
	flavor     string                   // guarded by mu
	method     string                   // guarded by mu
	phases     [numPhases]time.Duration // guarded by mu
	total      time.Duration            // guarded by mu
	candidates int                      // guarded by mu
	results    int                      // guarded by mu
	fanOut     int                      // guarded by mu
	cacheHit   bool                     // guarded by mu
	done       bool                     // guarded by mu
}

// Begin resets the trace for a new query on the given engine flavor
// and method. No-op on a nil receiver.
func (t *QueryTrace) Begin(flavor, method string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.phases = [numPhases]time.Duration{}
	t.flavor, t.method = flavor, method
	t.total, t.candidates, t.results, t.fanOut = 0, 0, 0, 0
	t.cacheHit, t.done = false, false
	t.mu.Unlock()
}

// Add accrues d to the given phase. No-op on a nil receiver.
func (t *QueryTrace) Add(p Phase, d time.Duration) {
	if t == nil || p < 0 || p >= numPhases {
		return
	}
	t.mu.Lock()
	t.phases[p] += d
	t.mu.Unlock()
}

// SetFanOut records how many shards a sharded query scattered to.
// No-op on a nil receiver.
func (t *QueryTrace) SetFanOut(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.fanOut = n
	t.mu.Unlock()
}

// MarkCacheHit flags the query as served from the result cache. No-op
// on a nil receiver.
func (t *QueryTrace) MarkCacheHit() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cacheHit = true
	t.mu.Unlock()
}

// Finish records the query's total wall time and work counters
// (candidates examined, results emitted). No-op on a nil receiver.
func (t *QueryTrace) Finish(total time.Duration, candidates, results int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.total = total
	t.candidates = candidates
	t.results = results
	t.done = true
	t.mu.Unlock()
}

// Total returns the query's wall time as recorded by Finish.
func (t *QueryTrace) Total() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Phase returns the accrued duration of one phase.
func (t *QueryTrace) Phase(p Phase) time.Duration {
	if t == nil || p < 0 || p >= numPhases {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.phases[p]
}

// FanOut returns the recorded shard fan-out (0 for unsharded queries).
func (t *QueryTrace) FanOut() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fanOut
}

// CacheHit reports whether the query was served from the result cache.
func (t *QueryTrace) CacheHit() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cacheHit
}

// String renders the trace as a log-friendly one-liner, e.g.
//
//	trace flavor=sharded method=voronoi total=1.2ms cache=miss fanout=4
//	candidates=812 results=790 | seed=80µs expand=640µs page_fetch=210µs merge=95µs
func (t *QueryTrace) String() string {
	if t == nil {
		return "trace <nil>"
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "trace flavor=%s method=%s total=%s", t.flavor, t.method, t.total)
	if t.cacheHit {
		b.WriteString(" cache=hit")
	} else {
		b.WriteString(" cache=miss")
	}
	if t.fanOut > 0 {
		fmt.Fprintf(&b, " fanout=%d", t.fanOut)
	}
	fmt.Fprintf(&b, " candidates=%d results=%d |", t.candidates, t.results)
	for p := Phase(0); p < numPhases; p++ {
		if t.phases[p] > 0 {
			fmt.Fprintf(&b, " %s=%s", p, t.phases[p])
		}
	}
	return b.String()
}
