package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// Handler returns an http.Handler serving a snapshot of reg. The
// default response is an expvar-style JSON object — one key per metric,
// histograms as {count, sum, mean, p50, p90, p99, max} objects. With
// `?format=prom` (or an Accept header preferring text/plain) it emits
// the Prometheus text exposition format instead, with histograms as
// summaries carrying quantile labels. A nil registry serves empty
// snapshots.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := reg.Snapshot()
		format := req.URL.Query().Get("format")
		if format == "prom" || format == "prometheus" ||
			(format == "" && strings.Contains(req.Header.Get("Accept"), "text/plain")) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.Write([]byte(PrometheusText(snap)))
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		flat := make(map[string]any, len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms))
		for n, v := range snap.Counters {
			flat[n] = v
		}
		for n, v := range snap.Gauges {
			flat[n] = v
		}
		for n, v := range snap.Histograms {
			flat[n] = v
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(flat)
	})
}

// splitName separates a metric name into its base and inline label
// block: `x_total{flavor="static"}` → (`x_total`, `flavor="static"`).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// withLabel renders base plus the existing labels and one extra
// label pair.
func withLabel(base, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return base
	case labels == "":
		return base + "{" + extra + "}"
	case extra == "":
		return base + "{" + labels + "}"
	default:
		return base + "{" + labels + "," + extra + "}"
	}
}

// PrometheusText renders a snapshot in the Prometheus text exposition
// format. Counters become `counter` series, gauges `gauge`, histograms
// `summary` series with quantile labels plus _sum and _count.
func PrometheusText(s Snapshot) string {
	var b strings.Builder
	typed := map[string]bool{}
	writeType := func(base, typ string) {
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, typ)
		}
	}

	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		base, labels := splitName(n)
		writeType(base, "counter")
		fmt.Fprintf(&b, "%s %d\n", withLabel(base, labels, ""), s.Counters[n])
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		base, labels := splitName(n)
		writeType(base, "gauge")
		fmt.Fprintf(&b, "%s %g\n", withLabel(base, labels, ""), s.Gauges[n])
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		base, labels := splitName(n)
		writeType(base, "summary")
		h := s.Histograms[n]
		fmt.Fprintf(&b, "%s %g\n", withLabel(base, labels, `quantile="0.5"`), h.P50)
		fmt.Fprintf(&b, "%s %g\n", withLabel(base, labels, `quantile="0.9"`), h.P90)
		fmt.Fprintf(&b, "%s %g\n", withLabel(base, labels, `quantile="0.99"`), h.P99)
		fmt.Fprintf(&b, "%s %g\n", withLabel(base+"_sum", labels, ""), h.Sum)
		fmt.Fprintf(&b, "%s %d\n", withLabel(base+"_count", labels, ""), h.Count)
	}
	return b.String()
}
