package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(7)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(time.Second)
	h.ObserveN(3)
	h.Reset()
	if s := h.Snapshot(); s.Count != 0 || s.Quantile(0.5) != 0 || s.Max() != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry returned a metric")
	}
	r.RegisterGaugeFunc("x", func() float64 { return 1 })
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var tr *QueryTrace
	tr.Begin("f", "m")
	tr.Add(PhaseSeed, time.Second)
	tr.Finish(time.Second, 1, 1)
	tr.SetFanOut(3)
	tr.MarkCacheHit()
	if tr.Total() != 0 || tr.Phase(PhaseSeed) != 0 || tr.CacheHit() || tr.String() == "" {
		t.Fatal("nil trace not inert")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	if r.Counter("c") != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("g")
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Value())
	}
	r.RegisterGaugeFunc("fn", func() float64 { return 2.5 })
	s := r.Snapshot()
	if s.Counters["c"] != 10 || s.Gauges["g"] != 3 || s.Gauges["fn"] != 2.5 {
		t.Fatalf("snapshot mismatch: %+v", s)
	}
	if got := s.Names(); len(got) != 3 || got[0] != "c" || got[1] != "fn" || got[2] != "g" {
		t.Fatalf("Names() = %v", got)
	}
}

func TestBucketRoundTrip(t *testing.T) {
	// Every bucket's bounds must map back to that bucket, and bucket
	// ranges must tile the value space without gaps.
	var prevHi uint64
	for i := 0; i < histNumBuckets; i++ {
		lo, hi := bucketBounds(i)
		if i > 0 && lo != prevHi {
			t.Fatalf("bucket %d: lo=%d, want %d (gap or overlap)", i, lo, prevHi)
		}
		prevHi = hi
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(lo=%d) = %d, want %d", lo, got, i)
		}
		if got := bucketIndex(hi - 1); got != i {
			t.Fatalf("bucketIndex(hi-1=%d) = %d, want %d", hi-1, got, i)
		}
	}
	if got := bucketIndex(math.MaxUint64); got != histNumBuckets-1 {
		t.Fatalf("overflow value mapped to bucket %d, want top", got)
	}
}

func TestHistogramSmallValuesExact(t *testing.T) {
	h := NewHistogram()
	// Values 0..7 land in exact unit buckets, so quantiles are exact.
	for v := uint64(0); v < 8; v++ {
		h.ObserveN(v)
	}
	s := h.Snapshot()
	if s.Count != 8 || s.Sum != 28 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	// The q-quantile of {0..7} under our ceil-rank rule is
	// ceil(q*8)-1 plus intra-bucket interpolation within a width-1
	// bucket; spot-check monotone, bounded values.
	for _, tc := range []struct{ q, min, max float64 }{
		{0.0, 0, 1},
		{0.5, 3, 4},
		{1.0, 7, 8},
	} {
		got := s.Quantile(tc.q)
		if got < tc.min || got > tc.max {
			t.Errorf("Quantile(%.2f) = %g, want in [%g,%g]", tc.q, got, tc.min, tc.max)
		}
	}
}

func TestHistogramPercentilesKnownDistributions(t *testing.T) {
	// Uniform 1..100_000 ns: p50 ≈ 50_000, p90 ≈ 90_000, p99 ≈ 99_000,
	// within the ~12.5% bucket resolution.
	h := NewHistogram()
	for v := 1; v <= 100000; v++ {
		h.Observe(time.Duration(v) * time.Nanosecond)
	}
	s := h.Snapshot()
	if s.Count != 100000 {
		t.Fatalf("count = %d", s.Count)
	}
	check := func(q, want float64) {
		got := s.Quantile(q)
		if rel := math.Abs(got-want) / want; rel > 0.13 {
			t.Errorf("uniform: Quantile(%.2f) = %g, want ≈%g (rel err %.3f)", q, got, want, rel)
		}
	}
	check(0.50, 50000)
	check(0.90, 90000)
	check(0.99, 99000)
	if p50, p90, p99 := s.Quantile(.5), s.Quantile(.9), s.Quantile(.99); p50 > p90 || p90 > p99 {
		t.Errorf("quantiles not monotone: %g %g %g", p50, p90, p99)
	}
	if mean := s.Mean(); math.Abs(mean-50000.5) > 1 {
		t.Errorf("mean = %g, want 50000.5", mean)
	}

	// Bimodal: 99 fast ops at 1µs, 1 slow at 1ms. p50 sits in the fast
	// mode, p99 within bucket resolution of either mode's boundary, max
	// bounds the slow mode.
	h2 := NewHistogram()
	for i := 0; i < 99; i++ {
		h2.Observe(time.Microsecond)
	}
	h2.Observe(time.Millisecond)
	s2 := h2.Snapshot()
	if p50 := s2.Quantile(0.5); p50 < 1000*0.875 || p50 > 1000*1.125 {
		t.Errorf("bimodal p50 = %g, want ≈1000", p50)
	}
	// rank ceil(0.99*100)=99 is still the fast mode's last sample.
	if p99 := s2.Quantile(0.99); p99 > 1000*1.125 {
		t.Errorf("bimodal p99 = %g, want within fast mode", p99)
	}
	if p999 := s2.Quantile(0.999); p999 < 1e6*0.875 {
		t.Errorf("bimodal p99.9 = %g, want ≈1e6", p999)
	}
	if max := s2.Max(); max < 1e6 || max > 1e6*1.125+1 {
		t.Errorf("bimodal max = %g, want ≈1e6", max)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	h.Reset()
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 || s.Max() != 0 {
		t.Fatalf("after reset: %+v", s)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	// get-or-create races plus concurrent observes; run with -race.
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(time.Duration(i))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["c"] != 8000 || s.Gauges["g"] != 8000 || s.Histograms["h"].Count != 8000 {
		t.Fatalf("concurrent totals wrong: %+v", s)
	}
}

func TestQueryTrace(t *testing.T) {
	tr := &QueryTrace{}
	tr.Begin("sharded", "voronoi")
	tr.Add(PhaseSeed, 10*time.Microsecond)
	tr.Add(PhaseExpand, 40*time.Microsecond)
	tr.Add(PhaseExpand, 10*time.Microsecond)
	tr.SetFanOut(4)
	tr.Finish(100*time.Microsecond, 42, 17)
	if tr.Phase(PhaseExpand) != 50*time.Microsecond || tr.Total() != 100*time.Microsecond {
		t.Fatalf("phase/total wrong: %s", tr)
	}
	if tr.FanOut() != 4 || tr.CacheHit() {
		t.Fatalf("fanout/cachehit wrong: %s", tr)
	}
	str := tr.String()
	for _, want := range []string{"flavor=sharded", "method=voronoi", "fanout=4", "seed=", "expand=", "candidates=42", "results=17", "cache=miss"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q, missing %q", str, want)
		}
	}
	// Begin resets everything.
	tr.Begin("static", "traditional")
	if tr.Phase(PhaseExpand) != 0 || tr.Total() != 0 || tr.FanOut() != 0 {
		t.Fatal("Begin did not reset")
	}
}

func TestHandlerJSONAndProm(t *testing.T) {
	r := NewRegistry()
	r.Counter(`q_total{flavor="static"}`).Add(3)
	r.Gauge("pool_pages").Set(12)
	r.Histogram(`lat_ns{flavor="static"}`).Observe(time.Millisecond)
	h := Handler(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("default content type = %q", ct)
	}
	var flat map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &flat); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body)
	}
	if flat[`q_total{flavor="static"}`] != float64(3) {
		t.Fatalf("counter missing from JSON: %v", flat)
	}
	hist, ok := flat[`lat_ns{flavor="static"}`].(map[string]any)
	if !ok || hist["count"] != float64(1) || hist["p50"].(float64) <= 0 {
		t.Fatalf("histogram missing from JSON: %v", flat)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prom", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE q_total counter",
		`q_total{flavor="static"} 3`,
		"# TYPE pool_pages gauge",
		"pool_pages 12",
		"# TYPE lat_ns summary",
		`lat_ns{flavor="static",quantile="0.5"}`,
		`lat_ns_count{flavor="static"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prom output missing %q:\n%s", want, body)
		}
	}

	// Accept: text/plain also selects the Prometheus format.
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "# TYPE") {
		t.Error("Accept: text/plain did not select Prometheus format")
	}

	// A nil registry serves an empty JSON object.
	rec = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if strings.TrimSpace(rec.Body.String()) != "{}" {
		t.Errorf("nil registry body = %q", rec.Body)
	}
}
