// Package obs is a dependency-free observability layer: a metrics
// registry of atomic counters, gauges, and fixed-bucket latency
// histograms with quantile snapshots, plus a lightweight per-query
// trace facility (see QueryTrace).
//
// Every metric method is safe to call on a nil receiver and every
// Registry accessor is safe to call on a nil Registry, so callers can
// hold plain pointers and skip instrumentation entirely by leaving
// them nil: the disabled path is one pointer comparison — no
// allocation, no atomic traffic. All enabled-path updates are plain
// atomics and are safe under the race detector.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// A Counter is a monotonically increasing uint64, padded to a cache
// line so adjacent counters do not false-share.
type Counter struct {
	v atomic.Uint64
	_ [56]byte
}

// Inc adds 1. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count; 0 on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge is a settable int64 level, padded to a cache line.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d (which may be negative). No-op on a nil receiver.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current level; 0 on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram buckets: values below 1<<histSubBits are recorded exactly;
// above that, each power-of-two octave is split into 1<<histSubBits
// sub-buckets (≈12.5% relative resolution), clamped at 2^histMaxBits.
// For latency in nanoseconds the clamp is ≈4.9 hours.
const (
	histSubBits    = 3
	histSubBuckets = 1 << histSubBits
	histMaxBits    = 44
	histNumBuckets = (histMaxBits - histSubBits + 1) * histSubBuckets
)

// bucketIndex maps a value to its bucket. Values ≥ 2^histMaxBits fall
// into the top bucket.
func bucketIndex(v uint64) int {
	if v < histSubBuckets {
		return int(v)
	}
	n := bits.Len64(v)
	if n > histMaxBits {
		return histNumBuckets - 1
	}
	shift := uint(n - 1 - histSubBits)
	sub := (v >> shift) & (histSubBuckets - 1)
	return (n-histSubBits)<<histSubBits + int(sub)
}

// bucketBounds returns the half-open value range [lo, hi) of bucket i.
func bucketBounds(i int) (lo, hi uint64) {
	if i < histSubBuckets {
		return uint64(i), uint64(i) + 1
	}
	shift := uint(i>>histSubBits) - 1
	lo = uint64(histSubBuckets+i&(histSubBuckets-1)) << shift
	return lo, lo + 1<<shift
}

// A Histogram records a value distribution in fixed log-spaced buckets
// (~12.5% relative resolution) and reports interpolated quantiles.
// Latency histograms record nanoseconds via Observe; count
// distributions (e.g. scatter fan-out) record raw values via ObserveN.
// Concurrent Observe/Snapshot are safe; Snapshot is not a linearizable
// cut across buckets, which is fine for monitoring.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histNumBuckets]atomic.Uint64
}

// NewHistogram returns a standalone histogram (one not owned by a
// Registry), e.g. for scratch percentile math in benchmarks.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records a duration in nanoseconds. Negative durations clamp
// to zero. No-op on a nil receiver.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	v := d.Nanoseconds()
	if v < 0 {
		v = 0
	}
	h.observe(uint64(v))
}

// ObserveN records a raw (unit-less) value. No-op on a nil receiver.
func (h *Histogram) ObserveN(v uint64) {
	if h == nil {
		return
	}
	h.observe(v)
}

func (h *Histogram) observe(v uint64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Reset zeroes the histogram. It is not atomic with respect to
// concurrent observers; intended for benchmark reuse between rounds.
// No-op on a nil receiver.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Snapshot copies the current distribution; the copy supports quantile
// queries without further synchronization. A nil receiver yields an
// empty snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.counts = make([]uint64, histNumBuckets)
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.counts[i] = c
		s.Count += c
	}
	// Recompute Count from the buckets (not h.count) so the snapshot is
	// internally consistent even when racing observers.
	s.Sum = h.sum.Load()
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count  uint64
	Sum    uint64
	counts []uint64
}

// Mean returns the average observed value, 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the interpolated q-quantile (q in [0,1]) in the
// observed unit (nanoseconds for Observe-fed histograms), 0 when
// empty. Accuracy is bounded by the bucket resolution (~12.5%).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, c := range s.counts {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if cum+fc >= target {
			lo, hi := bucketBounds(i)
			return float64(lo) + (target-cum)/fc*float64(hi-lo)
		}
		cum += fc
	}
	return s.Max()
}

// Max returns the upper bound of the highest occupied bucket (an
// overestimate of the true max by at most the bucket width), 0 when
// empty.
func (s HistogramSnapshot) Max() float64 {
	for i := len(s.counts) - 1; i >= 0; i-- {
		if s.counts[i] != 0 {
			_, hi := bucketBounds(i)
			return float64(hi)
		}
	}
	return 0
}

// A Registry names and owns metrics. Metric lookups are get-or-create:
// two callers asking for the same name share one instance, which is
// how per-flavor aggregation across engines works. Metric names follow
// the Prometheus convention with inline labels, e.g.
//
//	vaq_queries_total{flavor="static",method="voronoi"}
//
// The zero value is NOT ready; use NewRegistry. All methods are safe
// on a nil *Registry (lookups return nil metrics, Snapshot returns an
// empty snapshot), so a nil registry disables instrumentation.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter       // guarded by mu
	gauges   map[string]*Gauge         // guarded by mu
	hists    map[string]*Histogram     // guarded by mu
	funcs    map[string]func() float64 // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() float64),
	}
}

// Counter returns the named counter, creating it on first use. Nil on
// a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterGaugeFunc registers fn as a snapshot-time gauge: it is
// called (outside the registry lock) on every Snapshot and its result
// reported under name. Registering the same name again replaces the
// previous function — this is how existing cumulative stats structs
// (buffer pool, result cache, dynamic epoch) are lifted into the
// registry without adding atomics to their hot paths. No-op on a nil
// registry.
func (r *Registry) RegisterGaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// HistogramStats is the snapshot form of one histogram: count, sum,
// and interpolated percentiles in the observed unit (ns for latency
// histograms).
type HistogramStats struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Stats summarizes a HistogramSnapshot.
func (s HistogramSnapshot) Stats() HistogramStats {
	return HistogramStats{
		Count: s.Count,
		Sum:   float64(s.Sum),
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
		Max:   s.Max(),
	}
}

// Snapshot is a point-in-time copy of every metric in a registry.
// Gauges merges real gauges and registered gauge functions.
type Snapshot struct {
	Counters   map[string]uint64         `json:"counters"`
	Gauges     map[string]float64        `json:"gauges"`
	Histograms map[string]HistogramStats `json:"histograms"`
}

// Names returns all metric names in the snapshot, sorted.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot captures every counter, gauge, gauge function, and
// histogram. Gauge functions run outside the registry lock (they may
// themselves take locks, e.g. buffer-pool shard mutexes). An empty
// snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramStats{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	funcs := make(map[string]func() float64, len(r.funcs))
	for n, f := range r.funcs {
		funcs[n] = f
	}
	r.mu.Unlock()

	for n, c := range counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		s.Gauges[n] = float64(g.Value())
	}
	for n, f := range funcs {
		s.Gauges[n] = f()
	}
	for n, h := range hists {
		s.Histograms[n] = h.Snapshot().Stats()
	}
	return s
}
