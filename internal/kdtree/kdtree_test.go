package kdtree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func randomItems(rng *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: int64(i), Point: geom.Pt(rng.Float64(), rng.Float64())}
	}
	return items
}

func TestEmpty(t *testing.T) {
	tr := New(nil)
	if tr.Len() != 0 {
		t.Error("empty tree Len != 0")
	}
	if _, ok := tr.NearestNeighbor(geom.Pt(0, 0)); ok {
		t.Error("NN on empty tree should fail")
	}
	count := 0
	tr.Search(geom.NewRect(0, 0, 1, 1), func(int64, geom.Point) bool { count++; return true })
	if count != 0 {
		t.Error("search on empty tree found items")
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 7, 64, 1000} {
		items := randomItems(rng, n)
		tr := New(items)
		for trial := 0; trial < 200; trial++ {
			q := geom.NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
			got := make(map[int64]bool)
			tr.Search(q, func(id int64, _ geom.Point) bool { got[id] = true; return true })
			want := 0
			for _, it := range items {
				if q.ContainsPoint(it.Point) {
					want++
					if !got[it.ID] {
						t.Fatalf("n=%d: missing item %d in %v", n, it.ID, q)
					}
				}
			}
			if len(got) != want {
				t.Fatalf("n=%d: got %d, want %d", n, len(got), want)
			}
		}
	}
}

func TestSearchBoundaryInclusive(t *testing.T) {
	items := []Item{
		{1, geom.Pt(0, 0)}, {2, geom.Pt(1, 1)}, {3, geom.Pt(0.5, 1)}, {4, geom.Pt(1.0001, 0.5)},
	}
	tr := New(items)
	got := make(map[int64]bool)
	tr.Search(geom.NewRect(0, 0, 1, 1), func(id int64, _ geom.Point) bool { got[id] = true; return true })
	if !got[1] || !got[2] || !got[3] || got[4] {
		t.Errorf("boundary semantics wrong: %v", got)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := New(randomItems(rng, 500))
	calls := 0
	tr.Search(geom.NewRect(0, 0, 1, 1), func(int64, geom.Point) bool { calls++; return calls < 5 })
	if calls != 5 {
		t.Errorf("early stop after %d calls", calls)
	}
}

func TestNearestNeighborMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 10, 500} {
		items := randomItems(rng, n)
		tr := New(items)
		for trial := 0; trial < 300; trial++ {
			q := geom.Pt(rng.Float64()*1.4-0.2, rng.Float64()*1.4-0.2)
			got, ok := tr.NearestNeighbor(q)
			if !ok {
				t.Fatal("NN failed")
			}
			wantD := math.Inf(1)
			for _, it := range items {
				if d := q.Dist2(it.Point); d < wantD {
					wantD = d
				}
			}
			if q.Dist2(got.Point) != wantD {
				t.Fatalf("n=%d: NN dist %v, want %v", n, q.Dist2(got.Point), wantD)
			}
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	p := geom.Pt(0.5, 0.5)
	items := make([]Item, 20)
	for i := range items {
		items[i] = Item{ID: int64(i), Point: p}
	}
	tr := New(items)
	count := 0
	tr.Search(geom.NewRect(0.5, 0.5, 0.5, 0.5), func(int64, geom.Point) bool { count++; return true })
	if count != 20 {
		t.Errorf("found %d duplicates, want 20", count)
	}
	if got, ok := tr.NearestNeighbor(geom.Pt(0, 0)); !ok || got.Point != p {
		t.Error("NN among duplicates failed")
	}
}

func TestInputNotModified(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	items := randomItems(rng, 100)
	snapshot := append([]Item(nil), items...)
	New(items)
	for i := range items {
		if items[i] != snapshot[i] {
			t.Fatal("New modified the input slice")
		}
	}
}

func BenchmarkBuild100k(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	items := randomItems(rng, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(items)
	}
}

func BenchmarkNearestNeighbor(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	tr := New(randomItems(rng, 100_000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.NearestNeighbor(geom.Pt(rng.Float64(), rng.Float64()))
	}
}
