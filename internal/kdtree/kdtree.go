// Package kdtree implements a static 2-d tree over points (Bentley 1975),
// bulk-built by median splitting, supporting rectangular range queries and
// branch-and-bound nearest-neighbor search.
//
// It serves as an alternative filtering index in the area-query ablation
// experiments; semantics match the R-tree used by the paper.
package kdtree

import (
	"sort"

	"repro/internal/geom"
)

// Item is a stored point with an identifier.
type Item struct {
	ID    int64
	Point geom.Point
}

// Tree is an immutable 2-d tree. Build with New; safe for concurrent
// readers.
type Tree struct {
	items []Item // reordered copy; tree structure is implicit (median layout)
}

// New builds a kd-tree over items. The input slice is copied.
func New(items []Item) *Tree {
	t := &Tree{items: append([]Item(nil), items...)}
	t.build(0, len(t.items), 0)
	return t
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return len(t.items) }

// build recursively arranges items[lo:hi] so the median by the split axis
// sits at the middle position.
func (t *Tree) build(lo, hi, axis int) {
	if hi-lo <= 1 {
		return
	}
	mid := (lo + hi) / 2
	t.selectMedian(lo, hi, mid, axis)
	t.build(lo, mid, 1-axis)
	t.build(mid+1, hi, 1-axis)
}

// selectMedian partially sorts items[lo:hi] so the k-th element is in
// place by the axis coordinate (quickselect with fallback to full sort for
// tiny ranges).
func (t *Tree) selectMedian(lo, hi, k, axis int) {
	key := func(it Item) float64 {
		if axis == 0 {
			return it.Point.X
		}
		return it.Point.Y
	}
	for hi-lo > 8 {
		// Median-of-three pivot.
		a, b, c := key(t.items[lo]), key(t.items[(lo+hi)/2]), key(t.items[hi-1])
		pivot := a
		if (a <= b && b <= c) || (c <= b && b <= a) {
			pivot = b
		} else if (a <= c && c <= b) || (b <= c && c <= a) {
			pivot = c
		}
		i, j := lo, hi-1
		for i <= j {
			for key(t.items[i]) < pivot {
				i++
			}
			for key(t.items[j]) > pivot {
				j--
			}
			if i <= j {
				t.items[i], t.items[j] = t.items[j], t.items[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j + 1
		case k >= i:
			lo = i
		default:
			return
		}
	}
	sub := t.items[lo:hi]
	sort.Slice(sub, func(x, y int) bool { return key(sub[x]) < key(sub[y]) })
}

// Search calls fn for every stored point inside the closed rectangle q;
// fn returning false stops the search. It returns the number of tree nodes
// (elements) visited.
func (t *Tree) Search(q geom.Rect, fn func(id int64, p geom.Point) bool) int {
	visited := 0
	var rec func(lo, hi, axis int) bool
	rec = func(lo, hi, axis int) bool {
		if lo >= hi {
			return true
		}
		mid := (lo + hi) / 2
		it := t.items[mid]
		visited++
		var coord, min, max float64
		if axis == 0 {
			coord, min, max = it.Point.X, q.MinX, q.MaxX
		} else {
			coord, min, max = it.Point.Y, q.MinY, q.MaxY
		}
		if min <= coord {
			if !rec(lo, mid, 1-axis) {
				return false
			}
		}
		if q.ContainsPoint(it.Point) {
			if !fn(it.ID, it.Point) {
				return false
			}
		}
		if coord <= max {
			if !rec(mid+1, hi, 1-axis) {
				return false
			}
		}
		return true
	}
	rec(0, len(t.items), 0)
	return visited
}

// NearestNeighbor returns the stored point closest to q; ok is false for an
// empty tree.
func (t *Tree) NearestNeighbor(q geom.Point) (Item, bool) {
	if len(t.items) == 0 {
		return Item{}, false
	}
	best := t.items[0]
	bestD := q.Dist2(best.Point)
	var rec func(lo, hi, axis int)
	rec = func(lo, hi, axis int) {
		if lo >= hi {
			return
		}
		mid := (lo + hi) / 2
		it := t.items[mid]
		if d := q.Dist2(it.Point); d < bestD {
			best, bestD = it, d
		}
		var diff float64
		if axis == 0 {
			diff = q.X - it.Point.X
		} else {
			diff = q.Y - it.Point.Y
		}
		near, far := lo, mid
		nearHi, farHi := mid, hi
		if diff > 0 {
			near, nearHi = mid+1, hi
			far, farHi = lo, mid
		} else {
			near, nearHi = lo, mid
			far, farHi = mid+1, hi
		}
		rec(near, nearHi, 1-axis)
		if diff*diff < bestD {
			rec(far, farHi, 1-axis)
		}
	}
	rec(0, len(t.items), 0)
	return best, true
}
