package vaq_test

import (
	"fmt"

	vaq "repro"
)

// CellArea reads per-cell geometry straight from the engine's packed cell
// arena: the areas of all Voronoi cells partition the universe exactly.
func ExampleEngine_CellArea() {
	// Four points splitting the unit square into four equal quadrant
	// cells.
	points := []vaq.Point{
		{X: 0.25, Y: 0.25}, {X: 0.75, Y: 0.25},
		{X: 0.25, Y: 0.75}, {X: 0.75, Y: 0.75},
	}
	eng, err := vaq.NewEngine(points, vaq.UnitSquare())
	if err != nil {
		panic(err)
	}
	total := 0.0
	for id := int64(0); id < int64(eng.Len()); id++ {
		total += eng.CellArea(id)
	}
	fmt.Printf("cell 0 area: %.2f\n", eng.CellArea(0))
	fmt.Printf("sum of all cells: %.2f\n", total)
	// Output:
	// cell 0 area: 0.25
	// sum of all cells: 1.00
}
