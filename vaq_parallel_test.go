package vaq

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func parallelTestEngine(t testing.TB, n int, opts ...Option) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n) + 77))
	pts := UniformPoints(rng, n, UnitSquare())
	eng, err := NewEngine(pts, UnitSquare(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func sortIDs(ids []int64) []int64 {
	out := append([]int64(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func idsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mixedBatch builds a region batch alternating polygons and circles.
func mixedBatch(rng *rand.Rand, count int) []Region {
	regions := make([]Region, count)
	for i := range regions {
		if i%3 == 2 {
			regions[i] = CircleRegion(NewCircle(
				Pt(0.15+0.7*rng.Float64(), 0.15+0.7*rng.Float64()),
				0.02+0.06*rng.Float64()))
		} else {
			regions[i] = PolygonRegion(RandomQueryPolygon(rng, 10,
				[]float64{0.005, 0.02}[i%2], UnitSquare()))
		}
	}
	return regions
}

// TestQueryBatchParallelMatchesSequential runs the same mixed
// polygon/circle batch through a sequential engine and a parallelism >= 4
// engine sharing nothing but the dataset, and asserts the results match
// query for query. Run with -race.
func TestQueryBatchParallelMatchesSequential(t *testing.T) {
	const n = 6000
	seqEng := parallelTestEngine(t, n, WithParallelism(1))
	parEng := parallelTestEngine(t, n, WithParallelism(4))
	rng := rand.New(rand.NewSource(30))
	regions := mixedBatch(rng, 48)

	for _, m := range []Method{VoronoiBFS, Traditional} {
		seq, _, err := queryRegions(seqEng, m, regions)
		if err != nil {
			t.Fatalf("%v sequential: %v", m, err)
		}
		par, _, err := queryRegions(parEng, m, regions)
		if err != nil {
			t.Fatalf("%v parallel: %v", m, err)
		}
		for i := range regions {
			if !idsEqual(sortIDs(par[i]), sortIDs(seq[i])) {
				t.Fatalf("%v query %d: parallel %d ids, sequential %d",
					m, i, len(par[i]), len(seq[i]))
			}
		}
	}

	// Polygon-only public entry point too.
	areas := make([]Polygon, 24)
	for i := range areas {
		areas[i] = RandomQueryPolygon(rng, 10, 0.01, UnitSquare())
	}
	seq, _, err := queryBatch(seqEng, VoronoiBFS, areas)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := queryBatch(parEng, VoronoiBFS, areas)
	if err != nil {
		t.Fatal(err)
	}
	for i := range areas {
		if !idsEqual(sortIDs(par[i]), sortIDs(seq[i])) {
			t.Fatalf("QueryBatch query %d diverged", i)
		}
	}
}

// TestParallelBatchStatsEqualSequentialSum pins the per-worker stats merge:
// every deterministic counter of the parallel aggregate must equal the sum
// of sequential per-query stats.
func TestParallelBatchStatsEqualSequentialSum(t *testing.T) {
	eng := parallelTestEngine(t, 5000, WithParallelism(4))
	seqEng := parallelTestEngine(t, 5000, WithParallelism(1))
	rng := rand.New(rand.NewSource(31))
	regions := mixedBatch(rng, 40)

	// Both Voronoi variants, so SegmentTests (published rule) and CellTests
	// (strict rule) are each pinned with nonzero counts.
	for _, m := range []Method{VoronoiBFS, VoronoiBFSStrict} {
		// Sum sequential per-query stats one query at a time (batches of
		// one on a sequential engine), then compare against the parallel
		// aggregate.
		var want Stats
		for i := range regions {
			_, st, err := queryRegions(seqEng, m, regions[i:i+1])
			if err != nil {
				t.Fatalf("%v sequential query %d: %v", m, i, err)
			}
			want.Add(st)
		}
		if m == VoronoiBFS && want.SegmentTests == 0 {
			t.Fatal("workload produced no segment tests; test is vacuous")
		}
		if m == VoronoiBFSStrict && want.CellTests == 0 {
			t.Fatal("workload produced no cell tests; test is vacuous")
		}

		_, agg, err := queryRegions(eng, m, regions)
		if err != nil {
			t.Fatal(err)
		}
		if agg.ResultSize != want.ResultSize {
			t.Errorf("%v: ResultSize = %d, want %d", m, agg.ResultSize, want.ResultSize)
		}
		if agg.Candidates != want.Candidates {
			t.Errorf("%v: Candidates = %d, want %d", m, agg.Candidates, want.Candidates)
		}
		if agg.RedundantValidations != want.RedundantValidations {
			t.Errorf("%v: RedundantValidations = %d, want %d",
				m, agg.RedundantValidations, want.RedundantValidations)
		}
		if agg.SegmentTests != want.SegmentTests {
			t.Errorf("%v: SegmentTests = %d, want %d", m, agg.SegmentTests, want.SegmentTests)
		}
		if agg.CellTests != want.CellTests {
			t.Errorf("%v: CellTests = %d, want %d", m, agg.CellTests, want.CellTests)
		}
		if agg.IndexNodesVisited != want.IndexNodesVisited {
			t.Errorf("%v: IndexNodesVisited = %d, want %d",
				m, agg.IndexNodesVisited, want.IndexNodesVisited)
		}
		if agg.RecordsLoaded != want.RecordsLoaded {
			t.Errorf("%v: RecordsLoaded = %d, want %d", m, agg.RecordsLoaded, want.RecordsLoaded)
		}
	}
}

// TestGoroutinesShareOneEngine pins the public concurrency contract: two
// goroutines issuing Query on the SAME engine simultaneously. Run with
// -race.
func TestGoroutinesShareOneEngine(t *testing.T) {
	eng := parallelTestEngine(t, 4000)
	rng := rand.New(rand.NewSource(32))
	areas := make([]Polygon, 8)
	oracle := make([][]int64, len(areas))
	for i := range areas {
		areas[i] = RandomQueryPolygon(rng, 10, 0.02, UnitSquare())
		ids, _, err := queryWith(eng, BruteForce, areas[i])
		if err != nil {
			t.Fatal(err)
		}
		oracle[i] = sortIDs(ids)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for rep := 0; rep < 30; rep++ {
				i := (worker + rep) % len(areas)
				ids, _, err := queryWith(eng, VoronoiBFS, areas[i])
				if err != nil {
					errs <- err
					return
				}
				if !idsEqual(sortIDs(ids), oracle[i]) {
					errs <- errDiverged
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type divergedError struct{}

func (divergedError) Error() string { return "concurrent query diverged from oracle" }

var errDiverged = divergedError{}

// TestStoreEngineBatchRunsParallel pins the store-backed concurrency
// contract: the buffer pool's sharded locks and off-lock page loads let
// WithStore engines run batches on the worker pool like any other
// engine. A tiny pool forces constant eviction during the parallel
// batch. Run with -race.
func TestStoreEngineBatchRunsParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	pts := UniformPoints(rng, 2000, UnitSquare())
	eng, err := NewEngine(pts, UnitSquare(),
		WithParallelism(8),
		WithStore(StoreConfig{PageSize: 1024, PoolPages: 4, PayloadBytes: 32}))
	if err != nil {
		t.Fatal(err)
	}
	areas := make([]Polygon, 32)
	for i := range areas {
		areas[i] = RandomQueryPolygon(rng, 10, 0.02, UnitSquare())
	}
	out, agg, err := queryBatch(eng, VoronoiBFS, areas)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(areas) {
		t.Fatalf("results = %d", len(out))
	}
	if agg.RecordsLoaded == 0 {
		t.Error("store batch loaded no records")
	}
	if reads, _, ok := eng.IOStats(); !ok || reads == 0 {
		t.Errorf("expected page reads from the store batch (ok=%v reads=%d)", ok, reads)
	}
	for i, area := range areas {
		want, _, err := queryWith(eng, BruteForce, area)
		if err != nil {
			t.Fatal(err)
		}
		if !idsEqual(sortIDs(out[i]), sortIDs(want)) {
			t.Fatalf("store batch query %d diverged", i)
		}
	}
}
