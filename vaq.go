// Package vaq (Voronoi Area Query) is the public API of this repository: a
// reproduction of "Area Queries Based on Voronoi Diagrams" (Yang Li, ICDE
// 2020, arXiv:1912.00426).
//
// An area query retrieves every stored point inside a query polygon. The
// classic implementation filters through a spatial index with the polygon's
// minimum bounding rectangle and refines each candidate with a
// point-in-polygon test; for irregular (thin, concave) polygons most
// candidates are wasted work. The paper's algorithm instead seeds from the
// nearest neighbor of a point inside the polygon and grows the candidate
// set across the Voronoi/Delaunay adjacency, producing candidates
// proportional to the result plus a thin boundary shell.
//
// # Quick start
//
// Every engine flavor implements one interface, Querier: one query
// operation, one request shape, context-aware, on every backend.
//
//	points := vaq.UniformPoints(rand.New(rand.NewSource(1)), 100_000, vaq.UnitSquare())
//	eng, err := vaq.NewEngine(points, vaq.UnitSquare())
//	if err != nil { ... }
//	area := vaq.PolygonRegion(vaq.MustPolygon([]vaq.Point{
//		{X: 0.1, Y: 0.1}, {X: 0.4, Y: 0.2}, {X: 0.2, Y: 0.5}}))
//
//	ids, err := eng.Query(ctx, area)                           // Voronoi method (the paper's)
//	var st vaq.Stats
//	ids, err = eng.Query(ctx, area,                            // per-query options
//		vaq.UsingMethod(vaq.Traditional), vaq.WithStatsInto(&st))
//	n, err := vaq.Count(ctx, eng, area)                        // count without materializing
//	results, err := eng.QueryAll(ctx, regions)                 // parallel batch
//	err = eng.Each(ctx, area, func(id int64, p vaq.Point) bool {
//		return true                                            // streamed as the BFS discovers
//	})
//
// Streaming also comes in range-over-func form:
//
//	seq, errf := vaq.Results(ctx, eng, area)
//	for id, p := range seq {
//		_ = p // discovery order, while the BFS expands
//		_ = id
//	}
//	if err := errf(); err != nil { ... }
//
// On skewed traffic where hot regions repeat, attach a result cache —
// repeated identical queries are served from memory, and on a
// DynamicEngine every Insert invalidates by construction (entries are
// keyed by insert epoch):
//
//	rc := vaq.NewResultCache(1024)
//	eng, err := vaq.NewEngine(points, vaq.UnitSquare(), vaq.WithResultCache(rc))
//	...
//	fmt.Println(rc.Stats().HitRate())
//
// All methods always return the same result set, in ascending id order on
// every backend; Stats expose the work performed (candidates, redundant
// validations, index node visits, record loads and — with WithStore —
// page IO). Cancelling ctx aborts the query (or the un-started remainder
// of a batch) and returns ctx.Err().
//
// # Concurrency model
//
// Every Querier backend is safe for concurrent use from any number of
// goroutines. An Engine is immutable after NewEngine returns: the spatial
// index, the Voronoi topology and the point data are never modified by
// queries, and all per-query scratch state is pooled internally. Engines
// built WithStore are included: the record store's buffer pool partitions
// its state over per-page lock shards (WithBufferPoolShards tunes the
// count) and performs page loads outside those locks, so concurrent loads
// of different pages proceed in parallel and duplicate loads of one page
// are coalesced. A ShardedEngine is likewise immutable after
// construction.
//
// A DynamicEngine is safe for concurrent use via epoch snapshots: Insert
// mutates writer-private structures under an internal mutex (concurrent
// inserters serialize) and each query runs against an immutable snapshot
// of the epoch current when it started, so queries never observe a
// half-applied insert and any query started after an Insert returns is
// guaranteed to see it. Queries between writes share the published
// snapshot lock-free; the first query after a write republishes it — an
// O(n) copy serialized with the writer, so that one query and any
// concurrent Insert briefly contend. Snapshot() pins one epoch explicitly
// for multi-query consistency.
//
// QueryAll additionally runs the batch itself in parallel on a bounded
// worker pool — WithParallelism(n) sets the pool size (default GOMAXPROCS;
// 1 keeps batches on the calling goroutine).
//
// # Observability
//
// Attach a MetricsRegistry with WithMetrics to any flavor and every layer
// reports in: query counts, latency percentiles, errors and cancellations
// by method; batch and worker-pool behavior (chunk waits, worker busy
// skew); shard fan-out and per-shard straggler latency; buffer-pool and
// result-cache counters; and, on dynamic engines, epoch-publish latency
// and snapshot age. Read it with Snapshot or serve it over HTTP with
// MetricsHandler (JSON or Prometheus text). For a single query's
// anatomy, WithTraceInto records its phase timeline (cache lookup, seed,
// expansion, page fetches, merge). Both are strictly opt-in: without
// them the query path performs no clock reads and no atomic traffic
// beyond what the engine already did.
//
// To scale any dataset past one engine's construction and query cost,
// partition it with NewShardedEngine: n Hilbert-coherent shards, each an
// independent engine with its own index, topology and store, queried by
// scatter-gather with shard-MBR pruning.
//
// # Memory layout
//
// Engines store geometry in flat structure-of-arrays form: point
// coordinates live in parallel x/y float64 slices, and every Voronoi cell
// is clipped once at construction and packed into one contiguous cell
// arena — flat vertex slices, int32 ring offsets, and per-cell bounding
// boxes. The BFS expansion tests, the strict rule's cell-intersection
// checks and the KNearest distance loop read that dense memory through
// zero-allocation views; no cell ring is materialized on any query hot
// path. The arena's cost is fixed at construction and small: a clipped
// Voronoi cell averages six vertices, so packed cells add roughly 130
// bytes per site (16 bytes per vertex plus a 32-byte box and a 4-byte
// offset) on top of the 16 coordinate bytes. CellArea serves per-cell
// geometry from the same storage.
//
// # Static analysis
//
// The invariants this documentation promises — cancellation checks in
// every unbounded query loop, pooled scratch memory never escaping a
// query, mutex-guarded state accessed only under its lock, allocation-free
// hot paths, vaq_-prefixed metric names, %w-preserved error sentinels —
// are enforced mechanically, not by convention: `go run ./cmd/vaqvet
// ./...` runs the project's own analyzer suite (internal/analysis) over
// the module and CI blocks on its findings. See the README's "Static
// analysis" section for the diagnostic codes and the annotation grammar.
//
// # Removed method-positional API
//
// The pre-Querier per-flavor methods (QueryWith, QueryCircle, Count,
// QueryBatch, QueryRegions) were deprecated wrappers for one release and
// are now removed; see README.md for the old → new mapping. KNearest
// remains per-flavor (it is not an area query) and now takes a
// context.Context like every other query path.
package vaq

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/svg"
	"repro/internal/voronoi"
	"repro/internal/workload"
)

// Re-exported geometry types. They alias the internal geometry kernel, so
// all methods (Polygon.ContainsPoint, Rect.Intersects, ...) are available
// on the aliases.
type (
	// Point is a location in the plane.
	Point = geom.Point
	// Rect is an axis-aligned rectangle.
	Rect = geom.Rect
	// Ring is a closed polygonal chain (no repeated closing vertex).
	Ring = geom.Ring
	// Polygon is a simple polygon, optionally with holes.
	Polygon = geom.Polygon
	// Circle is a closed disk, usable as a query region.
	Circle = geom.Circle
)

// Method selects the area-query algorithm; Stats reports per-query work.
type (
	// Method selects an area-query algorithm.
	Method = core.Method
	// Stats reports the work one query performed.
	Stats = core.Stats
	// Region is a prepared query shape — build one with PolygonRegion or
	// CircleRegion; polygons and circles can share one QueryAll batch.
	Region = core.Region
)

// PolygonRegion prepares a polygon for (repeated or batched) querying.
func PolygonRegion(pg Polygon) Region { return core.PolygonRegion(pg) }

// CircleRegion prepares a circle for (repeated or batched) querying.
func CircleRegion(c Circle) Region { return core.CircleRegion(c) }

// Polygons prepares a polygon slice as a Region batch for QueryAll.
func Polygons(areas []Polygon) []Region { return core.Polygons(areas) }

// The available query methods.
const (
	// Traditional is MBR window filter + point-in-polygon refinement.
	Traditional = core.Traditional
	// VoronoiBFS is the paper's Algorithm 1 (the default).
	VoronoiBFS = core.VoronoiBFS
	// VoronoiBFSStrict replaces the segment expansion test with a Voronoi
	// cell intersection test; complete even on adversarial geometry.
	VoronoiBFSStrict = core.VoronoiBFSStrict
	// BruteForce scans every record (oracle; for testing).
	BruteForce = core.BruteForce
)

// Pt returns Point{x, y}.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// NewRect returns the rectangle spanning two corners given in any order.
func NewRect(x1, y1, x2, y2 float64) Rect { return geom.NewRect(x1, y1, x2, y2) }

// UnitSquare returns the [0,1]² universe used throughout the paper.
func UnitSquare() Rect { return geom.NewRect(0, 0, 1, 1) }

// NewCircle returns the closed disk with the given center and radius.
func NewCircle(center Point, r float64) Circle { return geom.NewCircle(center, r) }

// NewPolygon validates and builds a simple polygon from its outer ring.
func NewPolygon(outer []Point) (Polygon, error) { return geom.NewPolygon(outer) }

// MustPolygon is NewPolygon that panics on invalid input.
func MustPolygon(outer []Point) Polygon { return geom.MustPolygon(outer) }

// UniformPoints returns n points uniform in bounds (the paper's dataset).
func UniformPoints(rng *rand.Rand, n int, bounds Rect) []Point {
	return workload.UniformPoints(rng, n, bounds)
}

// ClusteredPoints returns n points from a Gaussian-mixture distribution,
// modeling skewed real-world data.
func ClusteredPoints(rng *rand.Rand, n, clusters int, sigma float64, bounds Rect) []Point {
	return workload.ClusteredPoints(rng, n, clusters, sigma, bounds)
}

// RandomQueryPolygon returns a random simple (usually concave) polygon of
// the given vertex count whose MBR covers querySize × area(bounds) — the
// paper's query workload.
func RandomQueryPolygon(rng *rand.Rand, vertices int, querySize float64, bounds Rect) Polygon {
	return workload.RandomPolygon(rng, workload.PolygonConfig{
		Vertices:  vertices,
		QuerySize: querySize,
	}, bounds)
}

// RectangleQueryPolygon returns an axis-aligned rectangular query area of
// the given aspect ratio covering querySize × area(bounds) — the
// traditional method's best case, for ablations.
func RectangleQueryPolygon(rng *rand.Rand, querySize, aspect float64, bounds Rect) Polygon {
	return workload.RectanglePolygon(rng, querySize, aspect, bounds)
}

// HilbertSort reorders points in place along a Hilbert curve over bounds,
// the spatial clustering a production store applies to its heap file. It
// improves the memory locality of both query methods (and especially the
// Voronoi BFS).
func HilbertSort(points []Point, bounds Rect) {
	workload.HilbertSort(points, bounds)
}

// IndexKind selects the filtering index implementation.
type IndexKind int

// The available index kinds. RTreeIndex is the paper's choice and the
// default; the others exist for ablation studies.
const (
	// RTreeIndex is an STR bulk-loaded R-tree (the default).
	RTreeIndex IndexKind = iota
	// RStarIndex is an R-tree grown by dynamic insertion with the R*
	// split policy, modeling an incrementally built index.
	RStarIndex
	// KDTreeIndex is a static median-split kd-tree.
	KDTreeIndex
	// QuadtreeIndex is a bucketed point-region quadtree.
	QuadtreeIndex
	// GridIndex is a uniform grid.
	GridIndex
)

// String implements fmt.Stringer.
func (k IndexKind) String() string {
	switch k {
	case RTreeIndex:
		return "rtree"
	case RStarIndex:
		return "rstar"
	case KDTreeIndex:
		return "kdtree"
	case QuadtreeIndex:
		return "quadtree"
	case GridIndex:
		return "grid"
	default:
		return fmt.Sprintf("index(%d)", int(k))
	}
}

// StoreConfig configures the simulated paged object store (see WithStore).
type StoreConfig = core.StoreConfig

// Option customizes NewEngine.
type Option func(*config)

type config struct {
	index       IndexKind
	rtreeFan    int
	store       *StoreConfig
	quadBucket  int
	gridCell    int
	parallelism int
	shards      int
	rcache      *ResultCache
	metrics     *obs.Registry
	poolShards  int
	// Remote-engine (DialRemote/NewRemoteEngine) knobs; local
	// constructors ignore them.
	remoteClient   *http.Client
	remotePerTry   time.Duration
	remoteRetries  int
	remoteBackoff  time.Duration
	remoteDegraded bool
	// poolShardsSet records that WithBufferPoolShards was given, so an
	// explicit 0 ("use the GOMAXPROCS default") still overrides a
	// StoreConfig.PoolShards value.
	poolShardsSet bool
}

// WithIndex selects the filtering index (default RTreeIndex, as in the
// paper).
func WithIndex(kind IndexKind) Option {
	return func(c *config) { c.index = kind }
}

// WithRTreeFanout sets the R-tree maximum node fan-out (default 16).
func WithRTreeFanout(n int) Option {
	return func(c *config) { c.rtreeFan = n }
}

// WithStore backs records with a paged object store and sharded LRU
// buffer pool so refinement IO is simulated and counted. Without this
// option records are plain in-memory slices.
func WithStore(cfg StoreConfig) Option {
	return func(c *config) { s := cfg; c.store = &s }
}

// WithBufferPoolShards sets the store buffer pool's lock-shard count
// (StoreConfig.PoolShards; this option wins when both are given). The
// default (n <= 0) is a power of two at or above runtime.GOMAXPROCS; 1
// reproduces a single-lock pool; other values round up to a power of two,
// capped at 128, and the count never exceeds a positive PoolPages
// capacity — the per-shard capacity is ceil(PoolPages/shards), so the
// effective pool size rounds up to at most PoolPages+shards-1 pages. With
// NewShardedEngine the setting applies to every shard's private store.
// Without WithStore it has no effect.
func WithBufferPoolShards(n int) Option {
	return func(c *config) { c.poolShards, c.poolShardsSet = n, true }
}

// WithParallelism sets the worker-pool size QueryAll batches run on —
// and, for sharded engines, the pool shard construction and
// scatter-gather fan-out use. The default (n <= 0) is runtime.GOMAXPROCS;
// 1 keeps batches sequential on the calling goroutine. Store-backed
// engines participate fully: the buffer pool's lock shards and off-lock
// page loads keep parallel batches scaling even on pool-miss-heavy
// workloads (and sharding the engine still multiplies total pool
// capacity).
func WithParallelism(n int) Option {
	return func(c *config) { c.parallelism = n }
}

// WithShards sets the shard count NewShardedEngine partitions the dataset
// into (default 1; clamped to the point count). NewEngine ignores it.
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// Engine answers area queries over a fixed point set; it is the static
// Querier backend. Engines are read-safe after construction: any number
// of goroutines may share one Engine and query it concurrently
// (WithStore engines included — their buffer pool shards its locks and
// loads pages outside them), and QueryAll spreads a batch over an
// internal worker pool (see WithParallelism).
type Engine struct {
	eng         *core.Engine
	points      []Point
	bounds      Rect
	data        core.DataAccess
	store       *core.StoreData // nil without WithStore
	parallelism int             // 0 = GOMAXPROCS
	rc          *ResultCache    // nil without WithResultCache
	cacheSalt   uint64
	qm          *queryMetrics // nil without WithMetrics
}

// defaultConfig returns the option defaults shared by NewEngine and
// NewShardedEngine.
func defaultConfig() config {
	return config{index: RTreeIndex, rtreeFan: 16, quadBucket: 16, gridCell: 8, shards: 1}
}

// buildIndex constructs the configured filtering index over points.
func (c config) buildIndex(points []Point, bounds Rect) (core.SpatialIndex, error) {
	switch c.index {
	case RTreeIndex:
		return core.NewRTreeIndex(points, c.rtreeFan), nil
	case RStarIndex:
		return core.NewRStarIndex(points, c.rtreeFan), nil
	case KDTreeIndex:
		return core.NewKDTreeIndex(points), nil
	case QuadtreeIndex:
		return core.NewQuadtreeIndex(points, bounds, c.quadBucket), nil
	case GridIndex:
		return core.NewGridIndex(points, bounds, c.gridCell), nil
	default:
		return nil, fmt.Errorf("vaq: unknown index kind %v", c.index)
	}
}

// buildData constructs the configured record layer over points, returning
// the store when one was configured (nil otherwise).
func (c config) buildData(points []Point, bounds Rect) (core.DataAccess, *core.StoreData, error) {
	if c.store != nil {
		scfg := *c.store
		if c.poolShardsSet {
			scfg.PoolShards = c.poolShards
		}
		sd, err := core.NewStoreData(points, bounds, scfg)
		return sd, sd, err
	}
	data, err := core.NewMemoryData(points, bounds)
	return data, nil, err
}

// NewEngine builds the Voronoi topology, the spatial index and (optionally)
// the record store over points. bounds must contain every point; the
// points must have pairwise distinct coordinates.
func NewEngine(points []Point, bounds Rect, opts ...Option) (*Engine, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}

	data, sd, err := cfg.buildData(points, bounds)
	if err != nil {
		return nil, fmt.Errorf("vaq: %w", err)
	}

	idx, err := cfg.buildIndex(points, bounds)
	if err != nil {
		return nil, err
	}

	e := &Engine{
		eng:         core.NewEngine(idx, data),
		points:      append([]Point(nil), points...),
		bounds:      bounds,
		data:        data,
		store:       sd,
		parallelism: cfg.parallelism,
		rc:          cfg.rcache,
		cacheSalt:   nextCacheSalt(),
	}
	if cfg.metrics != nil {
		e.qm = newQueryMetrics(cfg.metrics, flavorStatic)
		if sd != nil {
			registerPoolMetrics(cfg.metrics, flavorStatic, sd.IOStats)
		}
		if cfg.rcache != nil {
			registerCacheMetrics(cfg.metrics, flavorStatic, cfg.rcache)
		}
	}
	return e, nil
}

// KNearest returns the k stored points nearest to q in increasing distance
// order, computed by Voronoi expansion (exact; the VoR-tree property the
// paper builds on). Cancelling ctx aborts the expansion at candidate
// boundaries and returns ctx.Err() with the partial work in Stats.
func (e *Engine) KNearest(ctx context.Context, q Point, k int) ([]int64, Stats, error) {
	return e.eng.KNearest(ctx, q, k)
}

// Len returns the number of stored points.
func (e *Engine) Len() int { return len(e.points) }

// Bounds returns the engine's universe rectangle.
func (e *Engine) Bounds() Rect { return e.bounds }

// Point returns the coordinates of a stored id. It panics when id is not
// in [0, Len()); use PointOK for a bounds-checked lookup.
func (e *Engine) Point(id int64) Point { return e.points[id] }

// PointOK returns the coordinates of id and whether id is a stored point.
func (e *Engine) PointOK(id int64) (Point, bool) {
	if id < 0 || id >= int64(len(e.points)) {
		return Point{}, false
	}
	return e.points[id], true
}

// Diagram returns the engine's Voronoi diagram (cells clipped to Bounds).
func (e *Engine) Diagram() *voronoi.Diagram {
	type diagrammer interface{ Diagram() *voronoi.Diagram }
	return e.data.(diagrammer).Diagram()
}

// CellArea returns the area of id's Voronoi cell (clipped to Bounds),
// computed over the engine's packed cell arena — the flat vertex store
// every cell was clipped into at construction — so no ring is
// materialized. The areas of all cells sum to the universe's area. It
// panics when id is not in [0, Len()).
func (e *Engine) CellArea(id int64) float64 {
	return e.data.(core.CellArenaSource).CellArena().CellArea(int(id))
}

// IOStats returns the engine's cumulative simulated IO counters — buffer
// pool misses (reads) and hits — when it was built WithStore; ok is false
// otherwise. The counters cover all queries since construction or the
// last ResetIOStats, across all goroutines. Identical semantics on every
// flavor: a ShardedEngine sums its shards' private stores, a DynamicEngine
// has no store and always reports ok == false.
//
// Deprecated: IOStats remains as a thin view for quick checks. For the
// full pool picture (evictions, singleflight joins, bytes, hit rate) and
// everything else the engine measures, attach a registry with WithMetrics
// and read MetricsRegistry.Snapshot or serve MetricsHandler.
func (e *Engine) IOStats() (reads, hits int, ok bool) {
	if e.store == nil {
		return 0, 0, false
	}
	st := e.store.IOStats()
	return st.PageReads, st.CacheHits, true
}

// ResetIOStats zeroes the IO counters (no-op without WithStore). Identical
// semantics on every flavor.
//
// Deprecated: kept alongside IOStats as a thin view; registry collectors
// registered by WithMetrics observe the same reset.
func (e *Engine) ResetIOStats() {
	if e.store != nil {
		e.store.ResetIOStats()
	}
}

// ShardedEngine answers area queries over a dataset partitioned into
// spatially coherent shards along the Hilbert curve. Every shard is an
// independent engine — its own spatial index, Voronoi topology and (with
// WithStore) record store with a private buffer pool — and queries run by
// scatter-gather: shards whose bounds miss the query's MBR are pruned,
// the survivors fan out onto the worker pool (see WithParallelism), and
// per-shard results merge under a stable global id mapping. Global ids
// are indexes into the original points slice, exactly as in an unsharded
// Engine, and every query method returns the identical id set an
// unsharded Engine would — in ascending id order, for any shard count.
//
// One method nuance: shard-local execution of VoronoiBFS uses the strict
// cell-intersection expansion rather than the published segment rule. A
// shard's Voronoi diagram is a sub-sample of the dataset, and on its
// sparser geometry the segment heuristic can strand result islands inside
// thin concave queries; the strict rule stays exact at any density.
// Stats.Method still reports the requested method (with CellTests counted
// instead of SegmentTests).
//
// Shard where one engine's data volume is the bottleneck: construction
// parallelizes across shards, store-backed shards multiply total
// buffer-pool capacity (each shard's pool has its own lock shards on top
// — see WithBufferPoolShards), and batch throughput scales with both
// query and shard parallelism. A ShardedEngine is immutable after
// construction and safe for concurrent use from any number of
// goroutines.
type ShardedEngine struct {
	se        *shard.Engine
	stores    []*core.StoreData // per shard; all nil without WithStore
	rc        *ResultCache      // nil without WithResultCache
	cacheSalt uint64
	qm        *queryMetrics // nil without WithMetrics
}

// NewShardedEngine partitions points into n shards (WithShards; default 1)
// by Hilbert order and builds every shard's engine in parallel. All
// NewEngine options apply, per shard: each shard gets its own index of the
// configured kind and — with WithStore — its own paged record store.
// bounds must contain every point; points must have pairwise distinct
// coordinates.
func NewShardedEngine(points []Point, bounds Rect, opts ...Option) (*ShardedEngine, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	numStores := cfg.shards
	if numStores < 1 {
		numStores = 1 // shard.New clamps the same way
	}
	stores := make([]*core.StoreData, numStores)
	var qm *queryMetrics
	var sm *shard.Metrics
	if cfg.metrics != nil {
		qm = newQueryMetrics(cfg.metrics, flavorSharded)
		sm = newShardMetrics(cfg.metrics, flavorSharded, qm.execM)
	}
	se, err := shard.New(points, bounds, shard.Config{
		Shards:      cfg.shards,
		Parallelism: cfg.parallelism,
		Metrics:     sm,
		Build: func(si int, pts []Point, bounds Rect) (*core.Engine, error) {
			data, sd, err := cfg.buildData(pts, bounds)
			if err != nil {
				return nil, err
			}
			idx, err := cfg.buildIndex(pts, bounds)
			if err != nil {
				return nil, err
			}
			if si < len(stores) {
				stores[si] = sd // distinct si per call; no lock needed
			}
			return core.NewEngine(idx, data), nil
		},
	})
	if err != nil {
		return nil, fmt.Errorf("vaq: %w", err)
	}
	e := &ShardedEngine{
		se:        se,
		stores:    stores[:se.NumShards()],
		rc:        cfg.rcache,
		cacheSalt: nextCacheSalt(),
		qm:        qm,
	}
	if cfg.metrics != nil {
		registerShardedPoolMetrics(cfg.metrics, flavorSharded, e.stores)
		if cfg.rcache != nil {
			registerCacheMetrics(cfg.metrics, flavorSharded, cfg.rcache)
		}
	}
	return e, nil
}

// KNearest returns the k stored points nearest to q in increasing
// distance order, walking shards in MINDIST order and expanding only
// while a shard's bounds can still beat the current k-th distance.
// Cancelling ctx abandons the remaining frontier (checked before every
// shard expansion and at candidate boundaries within one) and returns
// ctx.Err() with the partial work in Stats.
func (e *ShardedEngine) KNearest(ctx context.Context, q Point, k int) ([]int64, Stats, error) {
	return e.se.KNearest(ctx, q, k)
}

// NumShards returns the shard count (after clamping to the point count).
func (e *ShardedEngine) NumShards() int { return e.se.NumShards() }

// ShardSizes returns the per-shard point counts.
func (e *ShardedEngine) ShardSizes() []int { return e.se.ShardSizes() }

// ShardBounds returns the tight bounding rectangle of one shard's points.
func (e *ShardedEngine) ShardBounds(si int) Rect { return e.se.ShardBounds(si) }

// Len returns the total number of stored points.
func (e *ShardedEngine) Len() int { return e.se.Len() }

// Bounds returns the engine's universe rectangle.
func (e *ShardedEngine) Bounds() Rect { return e.se.Bounds() }

// Point returns the coordinates of a stored (global) id. It panics when
// id is not in [0, Len()); use PointOK for a bounds-checked lookup.
func (e *ShardedEngine) Point(id int64) Point { return e.se.Point(id) }

// PointOK returns the coordinates of a global id and whether id is a
// stored point.
func (e *ShardedEngine) PointOK(id int64) (Point, bool) { return e.se.PointOK(id) }

// IOStats returns the engine's cumulative simulated IO counters, summed
// over every shard's private store, when it was built WithStore; ok is
// false otherwise. Same semantics as Engine.IOStats.
//
// Deprecated: thin view; prefer WithMetrics and the registry snapshot,
// whose sharded pool collectors expose the full summed counter set.
func (e *ShardedEngine) IOStats() (reads, hits int, ok bool) {
	for _, sd := range e.stores {
		if sd == nil {
			return 0, 0, false
		}
		st := sd.IOStats()
		reads += st.PageReads
		hits += st.CacheHits
	}
	return reads, hits, len(e.stores) > 0
}

// ResetIOStats zeroes every shard's IO counters (no-op without WithStore).
// Same semantics as Engine.ResetIOStats.
//
// Deprecated: thin view kept alongside IOStats.
func (e *ShardedEngine) ResetIOStats() {
	for _, sd := range e.stores {
		if sd != nil {
			sd.ResetIOStats()
		}
	}
}

// Sentinel errors, matchable with errors.Is. They distinguish caller
// errors from engine failure.
var (
	// ErrNoData is returned by every query entry point (Query, QueryAll,
	// Each, KNearest, Count) when the engine holds no points.
	ErrNoData = core.ErrNoData
	// ErrOutsideUniverse is returned by DynamicEngine (and its Snapshots)
	// when an inserted point or a query area falls outside the universe
	// rectangle declared at construction.
	ErrOutsideUniverse = core.ErrOutsideUniverse
)

// DynamicEngine answers area queries over a dataset that grows point by
// point — the update capability the paper leaves as future work. Points
// are inserted into a dynamic Delaunay triangulation (incremental
// Guibas–Stolfi insertion) and an R*-split R-tree; queries run at any
// moment with any method.
//
// A DynamicEngine is safe for concurrent use. It follows an epoch-snapshot
// scheme: Insert mutates writer-private structures under an internal mutex
// (so concurrent inserters serialize rather than race), and every query
// pins the immutable snapshot of the epoch current when it started —
// published through an atomic pointer — so any number of goroutines can
// query while insertion proceeds and never observe a half-applied update.
// Write visibility: a query started after Insert returns is guaranteed to
// reflect that insert; a query concurrent with an Insert sees either the
// epoch before it or after it, never a mixture. The first query after a
// write pays a one-time O(n) snapshot publish (serialized with the
// writer); all queries between writes share the published epoch for free.
// Use Snapshot to pin one epoch across several queries — e.g. a result
// query and its Count, or a query and the brute-force oracle validating
// it.
type DynamicEngine struct {
	d           *core.DynamicEngine
	parallelism int
	rc          *ResultCache // nil without WithResultCache
	cacheSalt   uint64
	qm          *queryMetrics // nil without WithMetrics
}

// NewDynamicEngine returns an empty dynamic engine. All inserted points
// and query areas must lie within universe. Of the Engine options only
// WithParallelism (it sizes the QueryAll worker pool), WithResultCache
// (entries are keyed by insert epoch, so Insert invalidates) and
// WithMetrics (adding epoch-publish latency and snapshot-age collectors)
// apply; the others describe static construction and are ignored.
func NewDynamicEngine(universe Rect, opts ...Option) *DynamicEngine {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	d := core.NewDynamicEngine(universe)
	var qm *queryMetrics
	if cfg.metrics != nil {
		qm = newQueryMetrics(cfg.metrics, flavorDynamic)
		registerDynamicMetrics(cfg.metrics, d)
		if cfg.rcache != nil {
			registerCacheMetrics(cfg.metrics, flavorDynamic, cfg.rcache)
		}
	}
	return &DynamicEngine{
		d:           d,
		parallelism: cfg.parallelism,
		rc:          cfg.rcache,
		cacheSalt:   nextCacheSalt(),
		qm:          qm,
	}
}

// Insert adds a point, returning its id. Re-inserting an existing
// coordinate returns the existing id with inserted == false; inserting a
// point outside the universe fails with ErrOutsideUniverse. Concurrent
// Inserts are serialized internally; in-flight queries are never blocked.
func (e *DynamicEngine) Insert(p Point) (id int64, inserted bool, err error) {
	return e.d.Insert(p)
}

// Snapshot pins the current epoch and returns its immutable view. All
// queries on the snapshot see exactly the points inserted before this
// call, regardless of concurrent or later inserts. Repeated Snapshot
// calls between writes return the same published view at no cost.
func (e *DynamicEngine) Snapshot() *Snapshot {
	return &Snapshot{
		s:           e.d.Snapshot(),
		parallelism: e.parallelism,
		rc:          e.rc,
		cacheSalt:   e.cacheSalt,
		qm:          e.qm,
	}
}

// KNearest returns the k inserted points nearest to q in increasing
// distance order at the current epoch (ErrNoData while empty, matching
// Query). Cancelling ctx aborts the expansion at candidate boundaries
// and returns ctx.Err().
func (e *DynamicEngine) KNearest(ctx context.Context, q Point, k int) ([]int64, Stats, error) {
	return e.d.KNearest(ctx, q, k)
}

// Len returns the number of inserted points at the current epoch.
func (e *DynamicEngine) Len() int { return e.d.Len() }

// Epoch returns the current epoch — the number of accepted inserts so
// far. Snapshots report the epoch they pinned.
func (e *DynamicEngine) Epoch() uint64 { return e.d.Epoch() }

// IOStats completes the flavor-uniform IO surface: a DynamicEngine keeps
// its records in memory (no paged store), so ok is always false. Same
// signature and semantics as Engine.IOStats.
//
// Deprecated: thin view; prefer WithMetrics and the registry snapshot.
func (e *DynamicEngine) IOStats() (reads, hits int, ok bool) { return 0, 0, false }

// ResetIOStats is a no-op: a DynamicEngine has no store. Same semantics
// as Engine.ResetIOStats.
//
// Deprecated: thin view kept alongside IOStats.
func (e *DynamicEngine) ResetIOStats() {}

// Universe returns the engine's universe rectangle.
func (e *DynamicEngine) Universe() Rect { return e.d.Universe() }

// Point returns the coordinates of an inserted id. Safe to call
// concurrently with Insert. It panics when id was never returned by
// Insert; use PointOK for a bounds-checked lookup.
func (e *DynamicEngine) Point(id int64) Point { return e.d.Point(id) }

// PointOK returns the coordinates of id and whether id is an inserted
// point the engine currently holds. Safe to call concurrently with
// Insert.
func (e *DynamicEngine) PointOK(id int64) (Point, bool) { return e.d.PointOK(id) }

// Snapshot is an immutable, epoch-pinned view of a DynamicEngine. Every
// query on it runs against exactly the points inserted before it was
// taken — no matter how many inserts have happened since — so a method
// query, its Count, a KNearest and a brute-force oracle all agree when
// run on one Snapshot. Snapshots are safe for concurrent use from any
// number of goroutines and remain valid (and frozen) indefinitely.
type Snapshot struct {
	s           *core.DynamicSnapshot
	parallelism int
	rc          *ResultCache // inherited from the parent DynamicEngine
	cacheSalt   uint64
	qm          *queryMetrics // inherited from the parent DynamicEngine
}

// Epoch returns the epoch the snapshot pinned (the number of inserts it
// reflects).
func (s *Snapshot) Epoch() uint64 { return s.s.Epoch() }

// Len returns the number of points in the snapshot.
func (s *Snapshot) Len() int { return s.s.Len() }

// Universe returns the universe rectangle.
func (s *Snapshot) Universe() Rect { return s.s.Universe() }

// Point returns the coordinates of an id present in the snapshot. It
// panics when id is not present; use PointOK for a bounds-checked lookup.
func (s *Snapshot) Point(id int64) Point { return s.s.Point(id) }

// PointOK returns the coordinates of id and whether id is a point present
// in the snapshot.
func (s *Snapshot) PointOK(id int64) (Point, bool) { return s.s.PointOK(id) }

// EachPoint iterates the snapshot's points in ascending id order; fn
// returning false stops the iteration. (Each — the Querier method —
// streams an area query instead.)
func (s *Snapshot) EachPoint(fn func(id int64, p Point) bool) { s.s.EachPoint(fn) }

// KNearest returns the k points nearest to q in increasing distance
// order. Cancelling ctx aborts the expansion at candidate boundaries and
// returns ctx.Err().
func (s *Snapshot) KNearest(ctx context.Context, q Point, k int) ([]int64, Stats, error) {
	return s.s.KNearest(ctx, q, k)
}

// RenderOptions configures RenderQuerySVG.
type RenderOptions struct {
	// WidthPx is the image width in pixels (default 800).
	WidthPx float64
	// DrawCells draws the Voronoi cell boundaries.
	DrawCells bool
	// DrawDelaunay draws the Delaunay edges.
	DrawDelaunay bool
	// DrawMBR draws the query polygon's bounding rectangle.
	DrawMBR bool
}

// RenderQuerySVG draws the dataset, the query area, and the query's result
// and candidate sets as an SVG document — the repository's version of the
// paper's Figure 2. Results are black, redundant candidates green, other
// points gray.
func (e *Engine) RenderQuerySVG(w io.Writer, area Polygon, opts RenderOptions) error {
	if opts.WidthPx <= 0 {
		opts.WidthPx = 800
	}
	// Run the Voronoi query once; the result set classifies the points and
	// seeds the candidate-shell replay below.
	results, err := e.Query(context.Background(), PolygonRegion(area))
	if err != nil {
		return err
	}
	inResult := make(map[int64]bool, len(results))
	for _, id := range results {
		inResult[id] = true
	}

	canvas := svg.NewCanvas(e.bounds, opts.WidthPx)
	d := e.Diagram()
	if opts.DrawCells {
		for i := 0; i < d.NumSites(); i++ {
			canvas.Ring(d.Cell(i), svg.Style{Stroke: "#ccccff", StrokeWidth: 0.5})
		}
	}
	if opts.DrawDelaunay {
		d.Triangulation().Edges(func(a, b int32) bool {
			canvas.Segment(geom.Seg(e.points[a], e.points[b]),
				svg.Style{Stroke: "#eeddcc", StrokeWidth: 0.5})
			return true
		})
	}
	if opts.DrawMBR {
		canvas.Rect(area.Bounds(), svg.Style{Stroke: "#cc0000", StrokeWidth: 1})
	}
	canvas.Polygon(area, svg.Style{Stroke: "black", StrokeWidth: 1.5, Fill: "#fff4cc", Opacity: 0.7})

	shell := e.candidateShell(results, inResult)
	for i, p := range e.points {
		id := int64(i)
		switch {
		case inResult[id]:
			canvas.Circle(p, 2.2, svg.Style{Fill: "black"})
		case shell[id]:
			canvas.Circle(p, 2.2, svg.Style{Fill: "#00aa44"})
		default:
			canvas.Circle(p, 1.2, svg.Style{Fill: "#bbbbbb"})
		}
	}
	_, err = canvas.WriteTo(w)
	return err
}

// candidateShell returns the ids the Voronoi method validates but
// rejects, by replaying Algorithm 1's candidate generation over an
// already-computed result set — no second query runs.
func (e *Engine) candidateShell(results []int64, inResult map[int64]bool) map[int64]bool {
	shell := make(map[int64]bool)
	// The shell is exactly: Voronoi neighbors of results that are outside
	// the area, plus the seed if it was outside. Replaying the adjacency of
	// the result set reproduces it (boundary points that only chain from
	// other boundary points are a measure-zero nicety for rendering).
	for _, id := range results {
		e.data.NeighborsFunc(id, func(nb int64) bool {
			if !inResult[nb] {
				shell[nb] = true
			}
			return true
		})
	}
	return shell
}
