// Benchmarks regenerating the paper's evaluation, one per table and
// figure. Each benchmark measures per-query latency of both methods on the
// paper's workload and reports the candidate statistics the paper plots as
// custom benchmark metrics (candidates/op, redundant/op).
//
// The full sweeps with paper-style formatted tables are produced by
// cmd/areabench; these testing.B benchmarks cover the same configurations
// in a form `go test -bench` can run and compare over time.
//
// Datasets are cached per size across benchmarks to keep setup cost
// amortized; use -benchtime to control measurement length.
package vaq

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// benchDataSizes is the subset of the paper's 1E5..1E6 sweep exercised by
// `go test -bench`. The full ten-point sweep runs via cmd/areabench.
var benchDataSizes = []int{100_000, 300_000, 1_000_000}

// benchQuerySizes matches Table II exactly.
var benchQuerySizes = []float64{0.01, 0.02, 0.04, 0.08, 0.16, 0.32}

var benchCache struct {
	sync.Mutex
	engines map[int]*Engine
}

func benchEngine(b *testing.B, n int) *Engine {
	b.Helper()
	benchCache.Lock()
	defer benchCache.Unlock()
	if benchCache.engines == nil {
		benchCache.engines = make(map[int]*Engine)
	}
	if eng, ok := benchCache.engines[n]; ok {
		return eng
	}
	rng := rand.New(rand.NewSource(int64(n)))
	pts := UniformPoints(rng, n, UnitSquare())
	eng, err := NewEngine(pts, UnitSquare())
	if err != nil {
		b.Fatal(err)
	}
	benchCache.engines[n] = eng
	return eng
}

func benchAreas(seed int64, querySize float64, count int) []Polygon {
	rng := rand.New(rand.NewSource(seed))
	areas := make([]Polygon, count)
	for i := range areas {
		areas[i] = RandomQueryPolygon(rng, 10, querySize, UnitSquare())
	}
	return areas
}

// runAreaQueries measures m over pre-generated areas and reports candidate
// metrics.
func runAreaQueries(b *testing.B, eng *Engine, m Method, areas []Polygon) {
	b.Helper()
	var candidates, redundant, results int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := queryWith(eng, m, areas[i%len(areas)])
		if err != nil {
			b.Fatal(err)
		}
		candidates += st.Candidates
		redundant += st.RedundantValidations
		results += st.ResultSize
	}
	b.ReportMetric(float64(candidates)/float64(b.N), "candidates/op")
	b.ReportMetric(float64(redundant)/float64(b.N), "redundant/op")
	b.ReportMetric(float64(results)/float64(b.N), "results/op")
}

// BenchmarkTable1_DataSize reproduces Table I: both methods, data size
// swept, query size fixed at 1%.
func BenchmarkTable1_DataSize(b *testing.B) {
	for _, n := range benchDataSizes {
		areas := benchAreas(int64(n)+1, 0.01, 64)
		b.Run(fmt.Sprintf("n=%d/traditional", n), func(b *testing.B) {
			runAreaQueries(b, benchEngine(b, n), Traditional, areas)
		})
		b.Run(fmt.Sprintf("n=%d/voronoi", n), func(b *testing.B) {
			runAreaQueries(b, benchEngine(b, n), VoronoiBFS, areas)
		})
	}
}

// BenchmarkFig4_TimeVsDataSize reproduces Figure 4 (time cost vs data
// size): the ns/op column across sub-benchmarks is the figure's y axis.
func BenchmarkFig4_TimeVsDataSize(b *testing.B) {
	for _, n := range benchDataSizes {
		areas := benchAreas(int64(n)+2, 0.01, 64)
		for _, m := range []Method{Traditional, VoronoiBFS} {
			b.Run(fmt.Sprintf("n=%d/%v", n, m), func(b *testing.B) {
				runAreaQueries(b, benchEngine(b, n), m, areas)
			})
		}
	}
}

// BenchmarkFig5_RedundantVsDataSize reproduces Figure 5 (redundant
// validations vs data size): read the redundant/op metric.
func BenchmarkFig5_RedundantVsDataSize(b *testing.B) {
	for _, n := range benchDataSizes {
		areas := benchAreas(int64(n)+3, 0.01, 64)
		for _, m := range []Method{Traditional, VoronoiBFS} {
			b.Run(fmt.Sprintf("n=%d/%v", n, m), func(b *testing.B) {
				runAreaQueries(b, benchEngine(b, n), m, areas)
			})
		}
	}
}

// BenchmarkTable2_QuerySize reproduces Table II: both methods, query size
// swept 1..32%, data size fixed at 1E5.
func BenchmarkTable2_QuerySize(b *testing.B) {
	const n = 100_000
	for _, qs := range benchQuerySizes {
		areas := benchAreas(int64(qs*1000)+4, qs, 64)
		b.Run(fmt.Sprintf("qs=%g%%/traditional", qs*100), func(b *testing.B) {
			runAreaQueries(b, benchEngine(b, n), Traditional, areas)
		})
		b.Run(fmt.Sprintf("qs=%g%%/voronoi", qs*100), func(b *testing.B) {
			runAreaQueries(b, benchEngine(b, n), VoronoiBFS, areas)
		})
	}
}

// BenchmarkFig6_TimeVsQuerySize reproduces Figure 6 (time cost vs query
// size).
func BenchmarkFig6_TimeVsQuerySize(b *testing.B) {
	const n = 100_000
	for _, qs := range benchQuerySizes {
		areas := benchAreas(int64(qs*1000)+5, qs, 64)
		for _, m := range []Method{Traditional, VoronoiBFS} {
			b.Run(fmt.Sprintf("qs=%g%%/%v", qs*100, m), func(b *testing.B) {
				runAreaQueries(b, benchEngine(b, n), m, areas)
			})
		}
	}
}

// BenchmarkFig7_RedundantVsQuerySize reproduces Figure 7 (redundant
// validations vs query size): read the redundant/op metric.
func BenchmarkFig7_RedundantVsQuerySize(b *testing.B) {
	const n = 100_000
	for _, qs := range benchQuerySizes {
		areas := benchAreas(int64(qs*1000)+6, qs, 64)
		for _, m := range []Method{Traditional, VoronoiBFS} {
			b.Run(fmt.Sprintf("qs=%g%%/%v", qs*100, m), func(b *testing.B) {
				runAreaQueries(b, benchEngine(b, n), m, areas)
			})
		}
	}
}

// BenchmarkAblationExpansionRule compares the published segment-expansion
// rule with the strict cell-intersection rule (DESIGN.md §5.3).
func BenchmarkAblationExpansionRule(b *testing.B) {
	const n = 100_000
	areas := benchAreas(7, 0.01, 64)
	b.Run("published", func(b *testing.B) {
		runAreaQueries(b, benchEngine(b, n), VoronoiBFS, areas)
	})
	b.Run("strict", func(b *testing.B) {
		runAreaQueries(b, benchEngine(b, n), VoronoiBFSStrict, areas)
	})
}

// BenchmarkAblationIndex compares seed/filter index structures for both
// methods (the paper fixes the R-tree; this quantifies that choice).
func BenchmarkAblationIndex(b *testing.B) {
	const n = 100_000
	rng := rand.New(rand.NewSource(8))
	pts := UniformPoints(rng, n, UnitSquare())
	areas := benchAreas(8, 0.01, 64)
	for _, kind := range []IndexKind{RTreeIndex, RStarIndex, KDTreeIndex, QuadtreeIndex, GridIndex} {
		eng, err := NewEngine(pts, UnitSquare(), WithIndex(kind))
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range []Method{Traditional, VoronoiBFS} {
			b.Run(fmt.Sprintf("%v/%v", kind, m), func(b *testing.B) {
				runAreaQueries(b, eng, m, areas)
			})
		}
	}
}

// BenchmarkAblationStoreIO measures both methods against the paged store
// (the paper's IO-bound regime) with a pool holding ~3% of the pages.
func BenchmarkAblationStoreIO(b *testing.B) {
	const n = 100_000
	rng := rand.New(rand.NewSource(9))
	pts := UniformPoints(rng, n, UnitSquare())
	eng, err := NewEngine(pts, UnitSquare(), WithStore(StoreConfig{
		PageSize:     4096,
		PoolPages:    256,
		PayloadBytes: 256,
	}))
	if err != nil {
		b.Fatal(err)
	}
	areas := benchAreas(9, 0.01, 64)
	for _, m := range []Method{Traditional, VoronoiBFS} {
		b.Run(m.String(), func(b *testing.B) {
			var reads0 int
			reads0, _, _ = eng.IOStats()
			runAreaQueries(b, eng, m, areas)
			reads1, _, _ := eng.IOStats()
			b.ReportMetric(float64(reads1-reads0)/float64(b.N), "pagereads/op")
		})
	}
}

// BenchmarkAblationRectangleQuery runs axis-aligned rectangular query
// areas — the traditional method's best case, per the paper's introduction
// ("when the shape of the query area is a rectangle, this method has very
// high efficiency"). Compare with BenchmarkTable2_QuerySize to see the
// irregular-polygon gap appear.
func BenchmarkAblationRectangleQuery(b *testing.B) {
	const n = 100_000
	rng := rand.New(rand.NewSource(10))
	areas := make([]Polygon, 64)
	for i := range areas {
		areas[i] = RectangleQueryPolygon(rng, 0.01, 1, UnitSquare())
	}
	for _, m := range []Method{Traditional, VoronoiBFS} {
		b.Run(m.String(), func(b *testing.B) {
			runAreaQueries(b, benchEngine(b, n), m, areas)
		})
	}
}

// BenchmarkQueryBatchParallel measures batch throughput of the parallel
// executor on the paper's 100k uniform workload at pool sizes 1, 2, 4 and
// 8. Each iteration runs one full 64-query batch, so the ns/op ratio
// between p=1 and p=4 is the parallel speedup (≈ core count on unloaded
// multi-core hardware; the queries/s metric is the absolute throughput).
func BenchmarkQueryBatchParallel(b *testing.B) {
	const n = 100_000
	rng := rand.New(rand.NewSource(11))
	pts := UniformPoints(rng, n, UnitSquare())
	areas := benchAreas(11, 0.01, 64)
	for _, p := range []int{1, 2, 4, 8} {
		eng, err := NewEngine(pts, UnitSquare(), WithParallelism(p))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			queries := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := queryBatch(eng, VoronoiBFS, areas); err != nil {
					b.Fatal(err)
				}
				queries += len(areas)
			}
			b.StopTimer()
			b.ReportMetric(float64(queries)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// BenchmarkQueryAll measures the new batch entry point — the one surface
// QueryBatch/QueryRegions now wrap — on the paper's 100k uniform workload,
// keeping the unified API's batch path in the perf trajectory next to
// BenchmarkQueryBatchParallel above.
func BenchmarkQueryAll(b *testing.B) {
	const n = 100_000
	rng := rand.New(rand.NewSource(11))
	pts := UniformPoints(rng, n, UnitSquare())
	areas := benchAreas(11, 0.01, 64)
	regions := make([]Region, len(areas))
	for i, a := range areas {
		regions[i] = PolygonRegion(a)
	}
	ctx := context.Background()
	for _, p := range []int{1, 4} {
		eng, err := NewEngine(pts, UnitSquare(), WithParallelism(p))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			queries := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.QueryAll(ctx, regions); err != nil {
					b.Fatal(err)
				}
				queries += len(regions)
			}
			b.StopTimer()
			b.ReportMetric(float64(queries)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// BenchmarkQueryAllStore is BenchmarkQueryAll against a store-backed
// engine with a pool holding ~3% of the pages — the IO-accounted regime
// where batch workers used to serialize their page loads on one pool
// mutex. Swept at 1 buffer-pool lock shard (that old layout) versus the
// default count; the spread at p>1 on multi-core hardware is the
// contention the sharded pool removes.
func BenchmarkQueryAllStore(b *testing.B) {
	const n = 100_000
	rng := rand.New(rand.NewSource(15))
	pts := UniformPoints(rng, n, UnitSquare())
	areas := benchAreas(15, 0.01, 64)
	regions := make([]Region, len(areas))
	for i, a := range areas {
		regions[i] = PolygonRegion(a)
	}
	ctx := context.Background()
	store := StoreConfig{PageSize: 4096, PoolPages: 256, PayloadBytes: 256}
	for _, poolShards := range []int{1, 0} {
		label := "poolshards=default"
		if poolShards == 1 {
			label = "poolshards=1"
		}
		for _, p := range []int{1, 4} {
			eng, err := NewEngine(pts, UnitSquare(), WithStore(store),
				WithBufferPoolShards(poolShards), WithParallelism(p))
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/p=%d", label, p), func(b *testing.B) {
				queries := 0
				reads0, _, _ := eng.IOStats()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.QueryAll(ctx, regions); err != nil {
						b.Fatal(err)
					}
					queries += len(regions)
				}
				b.StopTimer()
				reads1, _, _ := eng.IOStats()
				b.ReportMetric(float64(queries)/b.Elapsed().Seconds(), "queries/s")
				b.ReportMetric(float64(reads1-reads0)/float64(b.N), "pagereads/op")
			})
		}
	}
}

// BenchmarkAblationPolygonComplexity sweeps the query polygon vertex count
// (the paper fixes 10), showing how boundary complexity affects both
// methods.
func BenchmarkAblationPolygonComplexity(b *testing.B) {
	const n = 100_000
	for _, k := range []int{4, 10, 25, 50} {
		rng := rand.New(rand.NewSource(int64(k)))
		areas := make([]Polygon, 64)
		for i := range areas {
			areas[i] = RandomQueryPolygon(rng, k, 0.01, UnitSquare())
		}
		for _, m := range []Method{Traditional, VoronoiBFS} {
			b.Run(fmt.Sprintf("k=%d/%v", k, m), func(b *testing.B) {
				runAreaQueries(b, benchEngine(b, n), m, areas)
			})
		}
	}
}

// BenchmarkShardedQuery measures batch-query throughput of the sharded
// engine against an unsharded baseline on a store-backed dataset (the
// regime sharding targets: every shard owns a private record store and
// buffer pool, so aggregate cache capacity and lock independence grow
// with the shard count, and on multi-core hardware the scatter adds
// shard-level parallelism on top of batch parallelism). Each iteration
// runs one full 64-query batch; compare ns/op across the shards=N
// sub-benchmarks and read queries/s for absolute throughput.
func BenchmarkShardedQuery(b *testing.B) {
	const n = 100_000
	rng := rand.New(rand.NewSource(12))
	pts := UniformPoints(rng, n, UnitSquare())
	areas := benchAreas(12, 0.01, 64)
	store := StoreConfig{PageSize: 4096, PoolPages: 1024, PayloadBytes: 256}

	single, err := NewEngine(pts, UnitSquare(), WithStore(store))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("single", func(b *testing.B) {
		benchShardedBatch(b, func(m Method, areas []Polygon) ([][]int64, Stats, error) {
			return queryBatch(single, m, areas)
		}, single.IOStats, areas)
	})

	for _, shards := range []int{1, 2, 4, 8} {
		eng, err := NewShardedEngine(pts, UnitSquare(), WithShards(shards), WithStore(store))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchShardedBatch(b, func(m Method, as []Polygon) ([][]int64, Stats, error) {
				return queryBatch(eng, m, as)
			}, eng.IOStats, areas)
		})
	}
}

// BenchmarkDynamicMixed measures the epoch-snapshot dynamic engine under a
// mixed workload: one writer goroutine streams inserts for the whole
// measurement while the parallel benchmark goroutines run area queries,
// each query pinning the then-current epoch. ns/op is per-query latency
// including the amortized snapshot publishes the interleaved inserts
// force; inserts/s reports the writer throughput sustained alongside.
func BenchmarkDynamicMixed(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	eng := NewDynamicEngine(UnitSquare())
	for i := 0; i < 20_000; i++ {
		if _, _, err := eng.Insert(Pt(rng.Float64(), rng.Float64())); err != nil {
			b.Fatal(err)
		}
	}
	areas := benchAreas(13, 0.01, 64)

	stop := make(chan struct{})
	var inserts atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(14))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := eng.Insert(Pt(wrng.Float64(), wrng.Float64())); err != nil {
				b.Error(err)
				return
			}
			inserts.Add(1)
		}
	}()

	var qi atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(qi.Add(1))
			if _, _, err := queryWith(eng, VoronoiBFS, areas[i%len(areas)]); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	b.ReportMetric(float64(inserts.Load())/b.Elapsed().Seconds(), "inserts/s")
}

func benchShardedBatch(b *testing.B, batch func(Method, []Polygon) ([][]int64, Stats, error),
	ioStats func() (int, int, bool), areas []Polygon) {
	b.Helper()
	queries := 0
	reads0, _, _ := ioStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := batch(VoronoiBFS, areas); err != nil {
			b.Fatal(err)
		}
		queries += len(areas)
	}
	b.StopTimer()
	reads1, _, _ := ioStats()
	b.ReportMetric(float64(queries)/b.Elapsed().Seconds(), "queries/s")
	b.ReportMetric(float64(reads1-reads0)/float64(b.N), "pagereads/op")
}

// BenchmarkHotRegionCache measures the result cache under zipfian
// hot-region traffic (s=1.1 over a 64-region pool): the cached engine
// replays a skewed stream that repeatedly revisits hot regions, so most
// queries are served from the cache. Compare queries/s against the
// uncached sub-benchmark; hits% reports the cache hit rate.
func BenchmarkHotRegionCache(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	pts := UniformPoints(rng, 50_000, UnitSquare())
	areas := benchAreas(16, 0.01, 64)
	regions := make([]Region, len(areas))
	for i, pg := range areas {
		regions[i] = PolygonRegion(pg)
	}
	zipf := rand.NewZipf(rand.New(rand.NewSource(17)), 1.1, 1, uint64(len(regions)-1))
	stream := make([]int, 4096)
	for i := range stream {
		stream[i] = int(zipf.Uint64())
	}
	ctx := context.Background()
	buf := make([]int64, 0, 4096)

	run := func(b *testing.B, eng *Engine) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(ctx, regions[stream[i%len(stream)]], Reuse(buf)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	}

	b.Run("uncached", func(b *testing.B) {
		eng, err := NewEngine(pts, UnitSquare())
		if err != nil {
			b.Fatal(err)
		}
		run(b, eng)
	})
	b.Run("cached", func(b *testing.B) {
		rc := NewResultCache(256)
		eng, err := NewEngine(pts, UnitSquare(), WithResultCache(rc))
		if err != nil {
			b.Fatal(err)
		}
		run(b, eng)
		b.ReportMetric(rc.Stats().HitRate()*100, "hits%")
	})
}

// BenchmarkMetricsOverhead measures the cost of the observability layer on
// the query hot path: the same query stream over one bare engine (nil
// registry — the disabled path must be a pointer comparison) and one built
// WithMetrics. The acceptance bar is <= 2% queries/s regression for the
// bare engine versus a build without the layer, and single-digit percent
// for the instrumented one.
func BenchmarkMetricsOverhead(b *testing.B) {
	rng := rand.New(rand.NewSource(211))
	pts := UniformPoints(rng, 50_000, UnitSquare())
	areas := benchAreas(212, 0.01, 64)
	regions := make([]Region, len(areas))
	for i, pg := range areas {
		regions[i] = PolygonRegion(pg)
	}
	ctx := context.Background()
	buf := make([]int64, 0, 4096)

	run := func(b *testing.B, eng *Engine) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(ctx, regions[i%len(regions)], Reuse(buf)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	}

	b.Run("nil-registry", func(b *testing.B) {
		eng, err := NewEngine(pts, UnitSquare())
		if err != nil {
			b.Fatal(err)
		}
		run(b, eng)
	})
	b.Run("instrumented", func(b *testing.B) {
		reg := NewMetricsRegistry()
		eng, err := NewEngine(pts, UnitSquare(), WithMetrics(reg))
		if err != nil {
			b.Fatal(err)
		}
		run(b, eng)
	})
	b.Run("instrumented-traced", func(b *testing.B) {
		reg := NewMetricsRegistry()
		eng, err := NewEngine(pts, UnitSquare(), WithMetrics(reg))
		if err != nil {
			b.Fatal(err)
		}
		var tr QueryTrace
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(ctx, regions[i%len(regions)], Reuse(buf), WithTraceInto(&tr)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	})
}
