package vaq

import (
	"context"
	"fmt"
	"slices"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/obs"
)

// Querier is the one query surface of this package: a single logical
// operation — the area query of the paper — expressed once and implemented
// by every engine flavor. *Engine (static), *ShardedEngine
// (scatter-gather), *DynamicEngine (growing dataset) and *Snapshot
// (epoch-pinned view) all satisfy it, so code written against Querier runs
// unchanged on any backend.
//
// All three methods accept a context.Context and honor cancellation and
// deadlines identically on every backend: cancellation is checked at
// candidate-generation boundaries inside a query, between queries of a
// batch, and between scatter tasks of a sharded fan-out; it surfaces as
// ctx.Err() (matchable with errors.Is against context.Canceled /
// context.DeadlineExceeded). Options the backend cannot honor per query
// (Reuse on a batch) are documented on the option.
//
// Query and QueryAll return ids in ascending order on every backend, so
// equal result sets compare byte-identical regardless of flavor or method.
// Each streams in discovery order instead — that is its point.
type Querier interface {
	// Query answers one area query over region, returning the ids of all
	// stored points inside it in ascending order.
	Query(ctx context.Context, region Region, opts ...QueryOpt) ([]int64, error)
	// QueryAll answers a batch of area queries, returning per-region
	// results aligned with regions. The batch runs on the backend's worker
	// pool (WithParallelism) and stops at the first error.
	QueryAll(ctx context.Context, regions []Region, opts ...QueryOpt) ([][]int64, error)
	// Each streams one area query: yield is called with each result id and
	// its coordinates as the algorithm discovers it — for the Voronoi
	// methods, while the BFS is still expanding — so consumers can act on
	// early results without waiting for, or materializing, the full set.
	// yield returning false stops the query cleanly.
	Each(ctx context.Context, region Region, yield func(id int64, p Point) bool, opts ...QueryOpt) error
}

// Compile-time checks: every engine flavor implements Querier.
var (
	_ Querier = (*Engine)(nil)
	_ Querier = (*ShardedEngine)(nil)
	_ Querier = (*DynamicEngine)(nil)
	_ Querier = (*Snapshot)(nil)
)

// QueryOpt customizes one query (or batch). Options compose: the zero
// option set means "VoronoiBFS, full result set, no limit". When one
// option appears more than once the last occurrence wins, so wrappers
// (like the package-level Count) may append to a caller's options.
// Interactions between options are documented on each option and are
// identical on every backend.
type QueryOpt func(*queryPlan)

// queryPlan is the resolved option set of one query.
type queryPlan struct {
	method    Method
	countOnly bool
	limit     int
	stats     *Stats
	buf       []int64
	trace     *obs.QueryTrace
}

// resolve applies opts over the defaults.
func resolve(opts []QueryOpt) queryPlan {
	p := queryPlan{method: VoronoiBFS}
	for _, o := range opts {
		if o != nil {
			o(&p)
		}
	}
	return p
}

// spec translates the plan into the internal request shape.
func (p *queryPlan) spec() core.QuerySpec {
	return core.QuerySpec{
		Method:    p.method,
		CountOnly: p.countOnly,
		Limit:     p.limit,
		Dest:      p.buf,
		Trace:     p.trace,
	}
}

// UsingMethod selects the area-query algorithm (default VoronoiBFS, the
// paper's). All methods return the same result set; they differ in the
// work performed (see Stats).
func UsingMethod(m Method) QueryOpt {
	return func(p *queryPlan) { p.method = m }
}

// CountOnly skips materializing the result slice: Query returns a nil
// slice and the match count is reported in Stats.ResultSize (pair with
// WithStatsInto, or use the package-level Count helper). On QueryAll the
// per-region slices stay nil and the aggregate count lands in
// Stats.ResultSize; Each ignores it.
//
// Interactions, identical on every backend: with Reuse, the buffer is a
// no-op — nothing is materialized and Query returns nil, not buf[:0];
// with Limit(n), the reported count is min(n, matches).
func CountOnly() QueryOpt {
	return func(p *queryPlan) { p.countOnly = true }
}

// Limit stops a query after n results (n <= 0 means unlimited). The limit
// is a global early-exit bound on every backend — a ShardedEngine returns
// at most n ids across all shards, not per shard — but which n points are
// returned is method- and backend-dependent; the returned ids are still in
// ascending order among themselves. On QueryAll the limit applies per
// region; on Each it bounds the number of yields.
//
// Interactions: with CountOnly the count is capped at n; limited queries
// bypass an attached result cache (see WithResultCache) because the
// particular n ids are not canonical.
func Limit(n int) QueryOpt {
	return func(p *queryPlan) { p.limit = n }
}

// WithStatsInto writes the query's statistics into st — per-query work
// counters for Query and Each, the per-query sum for QueryAll. The write
// happens on every outcome, including errors (partial work) and
// cancellation, so callers can observe how far a cancelled query got.
// When a Query is served from an attached result cache, st receives the
// memoized statistics of the execution that populated the entry. Given
// more than once, only the last st is written.
func WithStatsInto(st *Stats) QueryOpt {
	return func(p *queryPlan) { p.stats = st }
}

// WithTraceInto records the query's phase timeline into tr: cache lookup,
// candidate-generation seed, BFS (or scan) expansion, page fetches, and —
// on sharded engines — the gather merge, plus fan-out and cache-hit
// markers. The write happens on every outcome, including errors and
// cancellation. Each traced query resets tr first, so one trace value can
// be reused across a query loop; read it only after the call returns. On
// QueryAll the trace spans the whole batch (phase times sum across the
// batch's queries, which may run concurrently). Tracing is per query and
// needs no registry; combine with WithMetrics freely.
func WithTraceInto(tr *QueryTrace) QueryOpt {
	return func(p *queryPlan) { p.trace = tr }
}

// Reuse appends results into buf (overwriting from buf[:0]) instead of
// allocating a fresh slice, letting a query loop recycle one buffer.
// Ignored by QueryAll (one buffer cannot back a batch of independent
// results) and by Each (which materializes nothing); a no-op under
// CountOnly, which materializes nothing either. Result-cache hits honor
// it — the memoized ids are copied into buf.
func Reuse(buf []int64) QueryOpt {
	return func(p *queryPlan) { p.buf = buf }
}

// Count is a convenience over any Querier: the match count of an area
// query, without materializing results, on any backend. It is exactly
// Query with CountOnly appended — caller options resolve once and keep
// their documented semantics: a WithStatsInto receives the query's
// statistics (the count is Stats.ResultSize), Limit caps the count, a
// Reuse buffer is a no-op as on any CountOnly query, and a caller's own
// CountOnly is redundant rather than conflicting.
func Count(ctx context.Context, q Querier, region Region, opts ...QueryOpt) (int, error) {
	p := resolve(opts)
	st := p.stats
	if st == nil {
		st = new(Stats)
	}
	_, err := q.Query(ctx, region, append(append([]QueryOpt(nil), opts...), CountOnly(), WithStatsInto(st))...)
	if err != nil {
		return 0, err
	}
	return st.ResultSize, nil
}

// finishQuery applies the plan's post-processing shared by the unsharded
// backends: canonical ascending id order and the stats handoff.
func finishQuery(p *queryPlan, ids []int64, st Stats, err error) ([]int64, error) {
	if p.stats != nil {
		*p.stats = st
	}
	if err != nil {
		return nil, err
	}
	slices.Sort(ids)
	return ids, nil
}

// finishBatch sorts each per-region result and hands off aggregate stats.
func finishBatch(p *queryPlan, out [][]int64, st Stats, err error) ([][]int64, error) {
	if p.stats != nil {
		*p.stats = st
	}
	if err != nil {
		return nil, err
	}
	for _, ids := range out {
		slices.Sort(ids)
	}
	return out, nil
}

// Query implements Querier, consulting the result cache when one was
// attached (WithResultCache).
func (e *Engine) Query(ctx context.Context, region Region, opts ...QueryOpt) ([]int64, error) {
	p := resolve(opts)
	return cachedQuery(flavorStatic, e.qm, e.rc, e.cacheSalt, 0, region, &p, func() ([]int64, Stats, error) {
		return e.eng.QueryRegionSpec(ctx, region, p.spec())
	})
}

// QueryAll implements Querier.
func (e *Engine) QueryAll(ctx context.Context, regions []Region, opts ...QueryOpt) ([][]int64, error) {
	p := resolve(opts)
	start := beginQuery(e.qm, &p, flavorStatic)
	out, st, err := exec.QueryBatch(ctx, e.eng, regions, p.spec(),
		exec.Options{NumWorkers: e.parallelism, Metrics: e.qm.exec()})
	endBatch(e.qm, &p, start, len(regions), &st, err)
	return finishBatch(&p, out, st, err)
}

// Each implements Querier.
func (e *Engine) Each(ctx context.Context, region Region, yield func(id int64, p Point) bool, opts ...QueryOpt) error {
	p := resolve(opts)
	start := beginQuery(e.qm, &p, flavorStatic)
	st, err := e.eng.EachRegion(ctx, region, p.spec(), yield)
	if p.stats != nil {
		*p.stats = st
	}
	endQuery(e.qm, &p, start, &st, err)
	return err
}

// Query implements Querier, consulting the result cache when one was
// attached. Results are already in ascending global id order from the
// scatter-gather merge.
func (e *ShardedEngine) Query(ctx context.Context, region Region, opts ...QueryOpt) ([]int64, error) {
	p := resolve(opts)
	return cachedQuery(flavorSharded, e.qm, e.rc, e.cacheSalt, 0, region, &p, func() ([]int64, Stats, error) {
		return e.se.QueryRegionSpec(ctx, region, p.spec())
	})
}

// QueryAll implements Querier: every (region, surviving shard) pair is one
// worker-pool task, so batches exploit intra- and inter-query parallelism
// at once.
func (e *ShardedEngine) QueryAll(ctx context.Context, regions []Region, opts ...QueryOpt) ([][]int64, error) {
	p := resolve(opts)
	start := beginQuery(e.qm, &p, flavorSharded)
	out, st, err := e.se.QueryRegionsSpec(ctx, regions, p.spec())
	if p.stats != nil {
		*p.stats = st
	}
	endBatch(e.qm, &p, start, len(regions), &st, err)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Each implements Querier. Shards stream one after another, each in BFS
// discovery order; global ids from different shards interleave, so no
// overall id ordering is implied.
func (e *ShardedEngine) Each(ctx context.Context, region Region, yield func(id int64, p Point) bool, opts ...QueryOpt) error {
	p := resolve(opts)
	start := beginQuery(e.qm, &p, flavorSharded)
	st, err := e.se.EachRegion(ctx, region, p.spec(), yield)
	if p.stats != nil {
		*p.stats = st
	}
	endQuery(e.qm, &p, start, &st, err)
	return err
}

// Query implements Querier, against the current epoch.
func (e *DynamicEngine) Query(ctx context.Context, region Region, opts ...QueryOpt) ([]int64, error) {
	return e.Snapshot().Query(ctx, region, opts...)
}

// QueryAll implements Querier. The whole batch runs against one pinned
// epoch: every query in it sees the same dataset even while inserts
// continue.
func (e *DynamicEngine) QueryAll(ctx context.Context, regions []Region, opts ...QueryOpt) ([][]int64, error) {
	return e.Snapshot().QueryAll(ctx, regions, opts...)
}

// Each implements Querier, streaming against the epoch current when the
// call started.
func (e *DynamicEngine) Each(ctx context.Context, region Region, yield func(id int64, p Point) bool, opts ...QueryOpt) error {
	return e.Snapshot().Each(ctx, region, yield, opts...)
}

// Query implements Querier, against the pinned epoch. With a result cache
// attached (inherited from the DynamicEngine), entries are keyed by that
// epoch: queries on one snapshot hit each other's entries, and an Insert
// on the parent engine invalidates by moving later queries to new keys.
func (s *Snapshot) Query(ctx context.Context, region Region, opts ...QueryOpt) ([]int64, error) {
	p := resolve(opts)
	return cachedQuery(flavorDynamic, s.qm, s.rc, s.cacheSalt, s.s.Epoch(), region, &p, func() ([]int64, Stats, error) {
		return s.s.QueryRegionSpec(ctx, region, p.spec())
	})
}

// QueryAll implements Querier, all against the pinned epoch.
func (s *Snapshot) QueryAll(ctx context.Context, regions []Region, opts ...QueryOpt) ([][]int64, error) {
	p := resolve(opts)
	// The sequential paths' error contract (ErrOutsideUniverse for bad
	// areas, ErrNoData while empty), enforced before any worker spawns.
	for i, r := range regions {
		if err := s.s.CheckRegion(r); err != nil {
			err = fmt.Errorf("vaq: batch query %d: %w", i, err)
			return finishBatch(&p, nil, Stats{Method: p.method}, err)
		}
	}
	start := beginQuery(s.qm, &p, flavorDynamic)
	out, st, err := exec.QueryBatch(ctx, s.s.Engine(), regions, p.spec(),
		exec.Options{NumWorkers: s.parallelism, Metrics: s.qm.exec()})
	endBatch(s.qm, &p, start, len(regions), &st, err)
	return finishBatch(&p, out, st, err)
}

// Each implements Querier, streaming against the pinned epoch.
func (s *Snapshot) Each(ctx context.Context, region Region, yield func(id int64, p Point) bool, opts ...QueryOpt) error {
	p := resolve(opts)
	start := beginQuery(s.qm, &p, flavorDynamic)
	st, err := s.s.EachRegion(ctx, region, p.spec(), yield)
	if p.stats != nil {
		*p.stats = st
	}
	endQuery(s.qm, &p, start, &st, err)
	return err
}
