package vaq

import (
	"context"
	"math/rand"
	"slices"
	"testing"
)

// TestLimitGlobalBoundAcrossShards pins that Limit(n) is a global bound on
// every flavor — in particular on ShardedEngine, where the scatter once
// handed the limit to each shard independently: with 7 shards and a region
// whose matches per shard all exceed n, a per-shard limit would return up
// to 7n ids. Every entry point is pinned: Query, Each (yield count),
// QueryAll (per region), and the CountOnly cap.
func TestLimitGlobalBoundAcrossShards(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	pts := UniformPoints(rng, 3500, UnitSquare())
	flavors := buildFlavors(t, pts) // sharded flavor uses WithShards(7)
	ctx := context.Background()

	// A region covering nearly the whole universe: every one of the 7
	// shards holds far more than `limit` matches, so a per-shard limit
	// would overshoot 7-fold.
	region := PolygonRegion(MustPolygon([]Point{
		Pt(0.01, 0.01), Pt(0.99, 0.01), Pt(0.99, 0.99), Pt(0.01, 0.99),
	}))
	const limit = 20

	oracle, err := flavors[0].q.Query(ctx, region, UsingMethod(BruteForce))
	if err != nil {
		t.Fatal(err)
	}
	if len(oracle) < 7*limit {
		t.Fatalf("region matches %d points — too few to exercise the per-shard overshoot", len(oracle))
	}

	for _, f := range flavors {
		for _, m := range []Method{Traditional, VoronoiBFS, BruteForce} {
			name := f.name + "/" + m.String()

			var st Stats
			got, err := f.q.Query(ctx, region, UsingMethod(m), Limit(limit), WithStatsInto(&st))
			if err != nil {
				t.Fatalf("%s: Query: %v", name, err)
			}
			if len(got) != limit {
				t.Errorf("%s: Query returned %d ids, want exactly %d", name, len(got), limit)
			}
			if !slices.IsSorted(got) {
				t.Errorf("%s: limited result not ascending", name)
			}
			if st.ResultSize != len(got) {
				t.Errorf("%s: stats.ResultSize = %d, want %d", name, st.ResultSize, len(got))
			}

			yields := 0
			err = f.q.Each(ctx, region, func(int64, Point) bool {
				yields++
				return true
			}, UsingMethod(m), Limit(limit))
			if err != nil {
				t.Fatalf("%s: Each: %v", name, err)
			}
			if yields != limit {
				t.Errorf("%s: Each yielded %d times, want exactly %d", name, yields, limit)
			}

			out, err := f.q.QueryAll(ctx, []Region{region, region}, UsingMethod(m), Limit(limit))
			if err != nil {
				t.Fatalf("%s: QueryAll: %v", name, err)
			}
			for i, ids := range out {
				if len(ids) != limit {
					t.Errorf("%s: QueryAll region %d returned %d ids, want %d", name, i, len(ids), limit)
				}
			}

			if n, err := Count(ctx, f.q, region, UsingMethod(m), Limit(limit)); err != nil || n != limit {
				t.Errorf("%s: Count with Limit = %d (err %v), want %d", name, n, err, limit)
			}
		}
	}
}

// TestReuseEmptyResultNotNil pins the Dest contract on an empty result:
// with a Reuse buffer, every flavor returns the (non-nil) buffer truncated
// to length zero, exactly like the unsharded core engine — the sharded
// gather path used to drop the buffer and return nil.
func TestReuseEmptyResultNotNil(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	pts := UniformPoints(rng, 1200, UnitSquare())
	flavors := buildFlavors(t, pts)
	ctx := context.Background()

	// Covers no points with near-certainty at n=1200.
	empty := PolygonRegion(MustPolygon([]Point{
		Pt(0.00001, 0.00001), Pt(0.00002, 0.00001), Pt(0.00002, 0.00002),
	}))

	for _, f := range flavors {
		buf := make([]int64, 0, 8)
		got, err := f.q.Query(ctx, empty, Reuse(buf))
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if len(got) != 0 {
			t.Fatalf("%s: empty region returned %d ids", f.name, len(got))
		}
		if got == nil {
			t.Errorf("%s: empty result with Reuse is nil, want buf[:0]", f.name)
		}
		// Without Reuse the empty result may be nil; both shapes must have
		// length zero (pinned above) — no further constraint.
	}
}

// TestOptionInteractions pins the documented option-interaction semantics
// on every flavor: CountOnly makes Reuse a no-op (nil result, not
// buf[:0]), duplicate options resolve last-wins, and the Count helper
// composes with a caller's full option set without resolving it twice.
func TestOptionInteractions(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	pts := UniformPoints(rng, 1500, UnitSquare())
	flavors := buildFlavors(t, pts)
	ctx := context.Background()
	region := CircleRegion(NewCircle(Pt(0.5, 0.5), 0.2))

	for _, f := range flavors {
		want, err := f.q.Query(ctx, region)
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if len(want) == 0 {
			t.Fatalf("%s: region unexpectedly empty", f.name)
		}

		// CountOnly + Reuse: nothing is materialized, so the buffer is a
		// no-op and the result is nil — identically on every backend.
		buf := make([]int64, 0, len(want))
		var st Stats
		ids, err := f.q.Query(ctx, region, CountOnly(), Reuse(buf), WithStatsInto(&st))
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if ids != nil {
			t.Errorf("%s: CountOnly+Reuse returned a %d-id slice, want nil", f.name, len(ids))
		}
		if st.ResultSize != len(want) {
			t.Errorf("%s: CountOnly count = %d, want %d", f.name, st.ResultSize, len(want))
		}

		// Duplicate options: the last occurrence wins.
		var first, last Stats
		got, err := f.q.Query(ctx, region,
			UsingMethod(BruteForce), UsingMethod(VoronoiBFS),
			WithStatsInto(&first), WithStatsInto(&last))
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if !slices.Equal(got, want) {
			t.Errorf("%s: duplicate-option query diverged", f.name)
		}
		if last.Method != VoronoiBFS {
			t.Errorf("%s: last UsingMethod did not win (got %v)", f.name, last.Method)
		}
		if first != (Stats{}) {
			t.Errorf("%s: overridden WithStatsInto was written: %+v", f.name, first)
		}

		// Count with a caller's Limit, Reuse and stats: one resolve, all
		// semantics preserved (limit caps the count, buffer untouched).
		var cst Stats
		n, err := Count(ctx, f.q, region, Limit(5), Reuse(buf), WithStatsInto(&cst))
		if err != nil {
			t.Fatalf("%s: Count: %v", f.name, err)
		}
		if n != 5 || cst.ResultSize != 5 {
			t.Errorf("%s: Count with Limit(5) = %d (stats %d), want 5", f.name, n, cst.ResultSize)
		}
	}
}
