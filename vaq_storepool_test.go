package vaq

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestStoreBackedQueryAllSoak is the exec-pool × sharded-buffer-pool soak
// (run under -race): many goroutines run parallel QueryAll batches against
// one store-backed engine whose pool capacity is far below the page count,
// so evictions, off-lock page loads and singleflight joins all happen
// mid-batch — and every result must stay byte-identical to the
// brute-force oracle. Swept at 1 lock shard (the old single-mutex layout)
// and the default shard count.
func TestStoreBackedQueryAllSoak(t *testing.T) {
	const (
		points     = 4000
		goroutines = 6
		reps       = 3
	)
	rng := rand.New(rand.NewSource(99))
	pts := UniformPoints(rng, points, UnitSquare())
	regions := make([]Region, 12)
	for i := range regions {
		regions[i] = PolygonRegion(RandomQueryPolygon(rng, 8, 0.03, UnitSquare()))
	}
	ctx := context.Background()

	// Oracle from an in-memory engine: no pool involved.
	mem, err := NewEngine(pts, UnitSquare())
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := mem.QueryAll(ctx, regions, UsingMethod(BruteForce))
	if err != nil {
		t.Fatal(err)
	}

	for _, poolShards := range []int{1, 0} {
		name := "shards=default"
		if poolShards == 1 {
			name = "shards=1"
		}
		t.Run(name, func(t *testing.T) {
			eng, err := NewEngine(pts, UnitSquare(),
				WithStore(StoreConfig{PageSize: 512, PoolPages: 4, PayloadBytes: 32}),
				WithBufferPoolShards(poolShards),
				WithParallelism(4))
			if err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					// Alternate methods across goroutines: Traditional and the
					// Voronoi BFS stress different record-load patterns.
					m := VoronoiBFS
					if g%2 == 1 {
						m = Traditional
					}
					for rep := 0; rep < reps; rep++ {
						out, err := eng.QueryAll(ctx, regions, UsingMethod(m))
						if err != nil {
							t.Errorf("goroutine %d rep %d: %v", g, rep, err)
							return
						}
						for i := range oracle {
							if fmt.Sprint(out[i]) != fmt.Sprint(oracle[i]) {
								t.Errorf("goroutine %d rep %d region %d: diverged from oracle", g, rep, i)
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()

			reads, hits, ok := eng.IOStats()
			if !ok || reads == 0 {
				t.Fatalf("store-backed engine reported no page reads (reads=%d ok=%v)", reads, ok)
			}
			// The pool holds 4 of ~hundreds of pages: the soak must have both
			// missed (reads) and, across identical repeated batches, hit.
			if hits == 0 {
				t.Errorf("no cache hits across %d identical batches: %d reads", goroutines*reps, reads)
			}
		})
	}
}
