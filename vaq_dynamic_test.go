package vaq

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// dynKNNOracle is the k-nearest oracle over a snapshot's pinned points.
func dynKNNOracle(s *Snapshot, q Point, k int) []int64 {
	type cand struct {
		id int64
		d2 float64
	}
	var all []cand
	s.EachPoint(func(id int64, p Point) bool {
		all = append(all, cand{id: id, d2: q.Dist2(p)})
		return true
	})
	sort.Slice(all, func(a, b int) bool {
		if all[a].d2 != all[b].d2 {
			return all[a].d2 < all[b].d2
		}
		return all[a].id < all[b].id
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]int64, len(all))
	for i, c := range all {
		out[i] = c.id
	}
	return out
}

// TestDynamicEngineConcurrentInsertQuery is the epoch-snapshot soak: one
// writer streams inserts into a DynamicEngine while reader goroutines
// exercise every query method concurrently. Each reader pins a snapshot
// and demands byte-identical agreement with a brute-force oracle evaluated
// on that same pinned epoch. Run under -race in CI.
func TestDynamicEngineConcurrentInsertQuery(t *testing.T) {
	const (
		totalInserts = 4000
		readers      = 4
	)
	eng := NewDynamicEngine(UnitSquare(), WithParallelism(2))

	// Seed a few points so the first snapshots are non-empty.
	seedRng := rand.New(rand.NewSource(41))
	for i := 0; i < 100; i++ {
		if _, _, err := eng.Insert(Pt(seedRng.Float64(), seedRng.Float64())); err != nil {
			t.Fatal(err)
		}
	}

	var (
		wg         sync.WaitGroup
		writerDone atomic.Bool
		queriesRun atomic.Int64
		epochsSeen sync.Map // epoch -> struct{}; proves readers spanned epochs

		errMu   sync.Mutex
		soakErr error
	)
	recordError := func(err error) {
		errMu.Lock()
		if soakErr == nil {
			soakErr = err
		}
		errMu.Unlock()
	}
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return soakErr != nil
	}

	// Writer: stream the remaining inserts. Halfway through it pauses
	// until enough reader rounds complete that at least one provably
	// pinned the paused epoch (at most `readers` rounds were already
	// in flight when the pause began) — so insert/query interleaving is
	// guaranteed even on a single-CPU scheduler that would otherwise run
	// the writer to completion before any reader starts.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writerDone.Store(true)
		for i := 0; i < totalInserts; i++ {
			if i == totalInserts/2 {
				base := queriesRun.Load()
				for queriesRun.Load() < base+readers+1 && !failed() {
					time.Sleep(time.Millisecond)
				}
			}
			if _, _, err := eng.Insert(Pt(seedRng.Float64(), seedRng.Float64())); err != nil {
				recordError(err)
				return
			}
		}
	}()

	// Readers: pin snapshots and compare every method against the oracle
	// captured at the same epoch. Each reader always completes at least
	// one round (the writer-done check sits at the loop bottom).
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				snap := eng.Snapshot()
				epochsSeen.Store(snap.Epoch(), struct{}{})
				area := RandomQueryPolygon(rng, 8, 0.05, UnitSquare())
				oracle, _, err := queryWith(snap, BruteForce, area)
				if err != nil {
					recordError(err)
					return
				}
				want := sorted(oracle)

				for _, m := range []Method{Traditional, VoronoiBFS, VoronoiBFSStrict} {
					got, _, err := queryWith(snap, m, area)
					if err != nil {
						recordError(err)
						return
					}
					if !equal(sorted(got), want) {
						recordError(fmt.Errorf("epoch %d %v: %d results, oracle %d",
							snap.Epoch(), m, len(got), len(oracle)))
						return
					}
				}

				// Count, on the same pinned epoch.
				if cnt, _, err := countOf(snap, VoronoiBFS, area); err != nil || cnt != len(oracle) {
					recordError(fmt.Errorf("epoch %d Count = %d (err %v), oracle %d",
						snap.Epoch(), cnt, err, len(oracle)))
					return
				}

				// KNearest against the pinned point set.
				q := Pt(rng.Float64(), rng.Float64())
				knn, _, err := snap.KNearest(context.Background(), q, 8)
				if err != nil {
					recordError(err)
					return
				}
				if wantKNN := dynKNNOracle(snap, q, 8); !equal(knn, wantKNN) {
					recordError(fmt.Errorf("epoch %d KNearest diverged: %v vs %v",
						snap.Epoch(), knn, wantKNN))
					return
				}

				// A parallel batch shares one epoch: the same area twice must
				// answer identically, and match the snapshot's oracle when
				// the batch is taken from the same pinned view.
				batch, _, err := queryBatch(snap, VoronoiBFS, []Polygon{area, area})
				if err != nil {
					recordError(err)
					return
				}
				if !equal(sorted(batch[0]), want) || !equal(sorted(batch[1]), want) {
					recordError(fmt.Errorf("epoch %d batch diverged from pinned oracle", snap.Epoch()))
					return
				}

				// The engine-level entry points run concurrently with Insert
				// too; their epoch is pinned internally, so verify invariants
				// that hold at any epoch: results lie inside the area and
				// ids resolve to points.
				live, _, err := queryWith(eng, VoronoiBFS, area)
				if err != nil {
					recordError(err)
					return
				}
				for _, id := range live {
					if !area.ContainsPoint(eng.Point(id)) {
						recordError(fmt.Errorf("live query result %d outside area", id))
						return
					}
				}
				if _, _, err := eng.KNearest(context.Background(), q, 4); err != nil {
					recordError(err)
					return
				}
				if _, _, err := queryBatch(eng, VoronoiBFS, []Polygon{area}); err != nil {
					recordError(err)
					return
				}
				queriesRun.Add(1)
				if writerDone.Load() || failed() {
					return
				}
			}
		}(int64(100 + r))
	}

	wg.Wait()
	if soakErr != nil {
		t.Fatal(soakErr)
	}
	if eng.Len() != 100+totalInserts {
		t.Fatalf("Len = %d, want %d", eng.Len(), 100+totalInserts)
	}
	if queriesRun.Load() == 0 {
		t.Fatal("no reader completed a full verification round")
	}
	// One more pinned round on the completed stream: with the mid-stream
	// pause above this guarantees at least two distinct epochs were
	// verified, whatever the scheduler did.
	final := eng.Snapshot()
	epochsSeen.Store(final.Epoch(), struct{}{})
	area := MustPolygon([]Point{Pt(0.2, 0.2), Pt(0.8, 0.3), Pt(0.5, 0.8)})
	oracle, _, err := queryWith(final, BruteForce, area)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := queryWith(final, VoronoiBFS, area)
	if err != nil {
		t.Fatal(err)
	}
	if !equal(sorted(got), sorted(oracle)) {
		t.Fatalf("final epoch %d: voronoi diverged from oracle", final.Epoch())
	}
	distinct := 0
	epochsSeen.Range(func(_, _ interface{}) bool { distinct++; return true })
	if distinct < 2 {
		t.Fatalf("readers pinned only %d distinct epochs; insert/query interleaving not exercised", distinct)
	}
	t.Logf("soak: %d verification rounds across %d distinct epochs", queriesRun.Load(), distinct)
}

func TestDynamicOutsideUniverseSentinel(t *testing.T) {
	eng := NewDynamicEngine(UnitSquare())
	if _, _, err := eng.Insert(Pt(5, 5)); !errors.Is(err, ErrOutsideUniverse) {
		t.Errorf("Insert outside universe: err = %v, want ErrOutsideUniverse", err)
	}
	if _, _, err := eng.Insert(Pt(0.5, 0.5)); err != nil {
		t.Fatal(err)
	}
	tooBig := MustPolygon([]Point{Pt(-1, -1), Pt(2, -1), Pt(0.5, 2)})
	if _, _, err := queryWith(eng, VoronoiBFS, tooBig); !errors.Is(err, ErrOutsideUniverse) {
		t.Errorf("Query exceeding universe: err = %v, want ErrOutsideUniverse", err)
	}
	if _, _, err := queryBatch(eng, VoronoiBFS, []Polygon{tooBig}); !errors.Is(err, ErrOutsideUniverse) {
		t.Errorf("QueryBatch exceeding universe: err = %v, want ErrOutsideUniverse", err)
	}
	if _, _, err := queryCircle(eng, VoronoiBFS, NewCircle(Pt(0.5, 0.5), 2)); !errors.Is(err, ErrOutsideUniverse) {
		t.Errorf("QueryCircle exceeding universe: err = %v, want ErrOutsideUniverse", err)
	}
}

func TestDynamicEmptyEngineErrNoData(t *testing.T) {
	eng := NewDynamicEngine(UnitSquare())
	area := MustPolygon([]Point{Pt(0.1, 0.1), Pt(0.5, 0.1), Pt(0.3, 0.5)})
	if _, _, err := queryWith(eng, VoronoiBFS, area); !errors.Is(err, ErrNoData) {
		t.Errorf("Query on empty: err = %v, want ErrNoData", err)
	}
	if _, _, err := eng.KNearest(context.Background(), Pt(0.5, 0.5), 3); !errors.Is(err, ErrNoData) {
		t.Errorf("KNearest on empty: err = %v, want ErrNoData", err)
	}
	if _, _, err := queryBatch(eng, VoronoiBFS, []Polygon{area}); !errors.Is(err, ErrNoData) {
		t.Errorf("QueryBatch on empty: err = %v, want ErrNoData", err)
	}
}

// TestDynamicEngineParityWithStatic builds the same point set statically
// and dynamically and demands identical answers for every shared method.
func TestDynamicEngineParityWithStatic(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	pts := UniformPoints(rng, 1500, UnitSquare())
	static, err := NewEngine(pts, UnitSquare())
	if err != nil {
		t.Fatal(err)
	}
	dyn := NewDynamicEngine(UnitSquare())
	// Dynamic site ids start after the triangulation's fence sites, so
	// compare by position rather than raw id.
	toPos := func(eng interface{ Point(int64) Point }, ids []int64) []Point {
		out := make([]Point, len(ids))
		for i, id := range ids {
			out[i] = eng.Point(id)
		}
		sort.Slice(out, func(a, b int) bool {
			if out[a].X != out[b].X {
				return out[a].X < out[b].X
			}
			return out[a].Y < out[b].Y
		})
		return out
	}
	for _, p := range pts {
		if _, _, err := dyn.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 10; trial++ {
		area := RandomQueryPolygon(rng, 10, 0.04, UnitSquare())
		s, _, err := queryWith(static, VoronoiBFS, area)
		if err != nil {
			t.Fatal(err)
		}
		d, _, err := queryWith(dyn, VoronoiBFS, area)
		if err != nil {
			t.Fatal(err)
		}
		sp, dp := toPos(static, s), toPos(dyn, d)
		if len(sp) != len(dp) {
			t.Fatalf("trial %d: static %d results, dynamic %d", trial, len(sp), len(dp))
		}
		for i := range sp {
			if sp[i] != dp[i] {
				t.Fatalf("trial %d: result sets differ at %d: %v vs %v", trial, i, sp[i], dp[i])
			}
		}
		// Circle and count parity.
		c := NewCircle(Pt(0.3+0.04*float64(trial), 0.5), 0.08)
		sc, _, err := queryCircle(static, VoronoiBFS, c)
		if err != nil {
			t.Fatal(err)
		}
		dc, _, err := queryCircle(dyn, VoronoiBFS, c)
		if err != nil {
			t.Fatal(err)
		}
		if len(sc) != len(dc) {
			t.Fatalf("trial %d circle: static %d, dynamic %d", trial, len(sc), len(dc))
		}
		scnt, _, err := countOf(static, Traditional, area)
		if err != nil {
			t.Fatal(err)
		}
		dcnt, _, err := countOf(dyn, Traditional, area)
		if err != nil {
			t.Fatal(err)
		}
		if scnt != dcnt {
			t.Fatalf("trial %d count: static %d, dynamic %d", trial, scnt, dcnt)
		}
		// KNearest parity, by position.
		q := Pt(rng.Float64(), rng.Float64())
		sk, _, err := static.KNearest(context.Background(), q, 12)
		if err != nil {
			t.Fatal(err)
		}
		dk, _, err := dyn.KNearest(context.Background(), q, 12)
		if err != nil {
			t.Fatal(err)
		}
		skp, dkp := toPos(static, sk), toPos(dyn, dk)
		for i := range skp {
			if skp[i] != dkp[i] {
				t.Fatalf("trial %d knn: %v vs %v", trial, skp[i], dkp[i])
			}
		}
	}
}
