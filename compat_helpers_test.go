package vaq

import "context"

// Test-local shims over the Querier API preserving the shapes of the
// removed method-positional wrappers (QueryWith, QueryCircle, Count,
// QueryBatch, QueryRegions), so the pre-existing suites keep their
// assertions — and keep pinning that the options-based surface reproduces
// the old behavior exactly — without the deprecated methods existing.

func queryWith(q Querier, m Method, area Polygon) ([]int64, Stats, error) {
	var st Stats
	ids, err := q.Query(context.Background(), PolygonRegion(area),
		UsingMethod(m), WithStatsInto(&st))
	return ids, st, err
}

func queryCircle(q Querier, m Method, c Circle) ([]int64, Stats, error) {
	var st Stats
	ids, err := q.Query(context.Background(), CircleRegion(c),
		UsingMethod(m), WithStatsInto(&st))
	return ids, st, err
}

func countOf(q Querier, m Method, area Polygon) (int, Stats, error) {
	var st Stats
	_, err := q.Query(context.Background(), PolygonRegion(area),
		UsingMethod(m), CountOnly(), WithStatsInto(&st))
	if err != nil {
		return 0, st, err
	}
	return st.ResultSize, st, nil
}

func queryBatch(q Querier, m Method, areas []Polygon) ([][]int64, Stats, error) {
	return queryRegions(q, m, Polygons(areas))
}

func queryRegions(q Querier, m Method, regions []Region) ([][]int64, Stats, error) {
	var st Stats
	out, err := q.QueryAll(context.Background(), regions,
		UsingMethod(m), WithStatsInto(&st))
	return out, st, err
}
