package vaq

import (
	"context"
	"math/rand"
	"slices"
	"testing"
)

// querierFlavor is one backend under conformance test. toGlobal maps a
// backend result id to its index in the shared dataset slice (the dynamic
// flavors assign their own ids at insert time).
type querierFlavor struct {
	name     string
	q        Querier
	toGlobal map[int64]int64
}

// buildFlavors constructs all four Querier backends over one dataset.
func buildFlavors(t *testing.T, pts []Point) []querierFlavor {
	t.Helper()
	eng, err := NewEngine(pts, UnitSquare())
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedEngine(pts, UnitSquare(), WithShards(7))
	if err != nil {
		t.Fatal(err)
	}
	dyn := NewDynamicEngine(UnitSquare())
	toGlobal := make(map[int64]int64, len(pts))
	for i, p := range pts {
		id, inserted, err := dyn.Insert(p)
		if err != nil || !inserted {
			t.Fatalf("insert %d: inserted=%v err=%v", i, inserted, err)
		}
		toGlobal[id] = int64(i)
	}
	return []querierFlavor{
		{name: "engine", q: eng},
		{name: "sharded", q: sharded},
		{name: "dynamic", q: dyn, toGlobal: toGlobal},
		{name: "snapshot", q: dyn.Snapshot(), toGlobal: toGlobal},
	}
}

// globalSet maps a backend result to sorted dataset indexes.
func (f *querierFlavor) globalSet(t *testing.T, ids []int64) []int64 {
	t.Helper()
	out := make([]int64, len(ids))
	for i, id := range ids {
		if f.toGlobal == nil {
			out[i] = id
			continue
		}
		g, ok := f.toGlobal[id]
		if !ok {
			t.Fatalf("%s: result id %d unknown to the dataset", f.name, id)
		}
		out[i] = g
	}
	slices.Sort(out)
	return out
}

// conformanceRegions returns the query shapes the suite sweeps: a concave
// polygon, a thin sliver (the paper's adversarial shape), a disk, and a
// region covering no points.
func conformanceRegions(rng *rand.Rand) map[string]Region {
	return map[string]Region{
		"concave": PolygonRegion(RandomQueryPolygon(rng, 10, 0.05, UnitSquare())),
		"sliver": PolygonRegion(MustPolygon([]Point{
			Pt(0.10, 0.10), Pt(0.90, 0.12), Pt(0.90, 0.13),
			Pt(0.12, 0.125), Pt(0.11, 0.30), Pt(0.10, 0.30),
		})),
		"circle": CircleRegion(NewCircle(Pt(0.6, 0.4), 0.12)),
		"empty":  PolygonRegion(MustPolygon([]Point{Pt(0.0001, 0.0001), Pt(0.0002, 0.0001), Pt(0.0002, 0.0002)})),
	}
}

// TestQuerierConformance pins, for every backend × method × region ×
// option combination, that Query/QueryAll/Each agree byte-identically with
// the backend's own brute-force oracle (all new-API results are in
// ascending id order) and cross-backend with a reference scan of the
// dataset.
func TestQuerierConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := UniformPoints(rng, 3000, UnitSquare())
	flavors := buildFlavors(t, pts)
	regions := conformanceRegions(rng)
	ctx := context.Background()

	for rname, region := range regions {
		// Reference result: dataset indexes inside the region, ascending.
		var ref []int64
		for i, p := range pts {
			if region.ContainsPoint(p) {
				ref = append(ref, int64(i))
			}
		}
		for fi := range flavors {
			f := &flavors[fi]
			// The backend's own oracle, through the same new API.
			oracle, err := f.q.Query(ctx, region, UsingMethod(BruteForce))
			if err != nil {
				t.Fatalf("%s/%s: oracle: %v", f.name, rname, err)
			}
			if !slices.Equal(f.globalSet(t, oracle), ref) {
				t.Fatalf("%s/%s: oracle diverges from reference scan", f.name, rname)
			}
			for _, m := range []Method{Traditional, VoronoiBFS, VoronoiBFSStrict, BruteForce} {
				t.Run(f.name+"/"+rname+"/"+m.String(), func(t *testing.T) {
					var st Stats
					got, err := f.q.Query(ctx, region, UsingMethod(m), WithStatsInto(&st))
					if err != nil {
						t.Fatal(err)
					}
					if !slices.Equal(got, oracle) {
						t.Fatalf("Query: %d ids, oracle %d — not byte-identical", len(got), len(oracle))
					}
					if st.Method != m {
						t.Errorf("stats method = %v, want %v", st.Method, m)
					}
					if st.ResultSize != len(got) {
						t.Errorf("stats.ResultSize = %d, want %d", st.ResultSize, len(got))
					}
					if st.Candidates < len(got) {
						t.Errorf("stats.Candidates = %d < results %d", st.Candidates, len(got))
					}

					// CountOnly: nil ids, count in stats.
					var cst Stats
					ids, err := f.q.Query(ctx, region, UsingMethod(m), CountOnly(), WithStatsInto(&cst))
					if err != nil {
						t.Fatal(err)
					}
					if ids != nil {
						t.Errorf("CountOnly returned %d ids, want nil", len(ids))
					}
					if cst.ResultSize != len(oracle) {
						t.Errorf("CountOnly count = %d, want %d", cst.ResultSize, len(oracle))
					}
					if n, err := Count(ctx, f.q, region, UsingMethod(m)); err != nil || n != len(oracle) {
						t.Errorf("Count helper = %d (err %v), want %d", n, err, len(oracle))
					}
					// A caller-supplied WithStatsInto reaches through the
					// Count helper's own stats plumbing.
					var hst Stats
					if _, err := Count(ctx, f.q, region, UsingMethod(m), WithStatsInto(&hst)); err != nil {
						t.Fatal(err)
					}
					if hst.ResultSize != len(oracle) || hst.Method != m {
						t.Errorf("Count WithStatsInto = {ResultSize: %d, Method: %v}, want {%d, %v}",
							hst.ResultSize, hst.Method, len(oracle), m)
					}

					// Limit: an early-exit subset of the oracle.
					for _, lim := range []int{1, 3, len(oracle) + 10} {
						got, err := f.q.Query(ctx, region, UsingMethod(m), Limit(lim))
						if err != nil {
							t.Fatalf("Limit(%d): %v", lim, err)
						}
						want := lim
						if len(oracle) < lim {
							want = len(oracle)
						}
						if len(got) != want {
							t.Fatalf("Limit(%d): %d ids, want %d", lim, len(got), want)
						}
						if !slices.IsSorted(got) {
							t.Fatalf("Limit(%d): ids not ascending", lim)
						}
						for _, id := range got {
							if _, ok := slices.BinarySearch(oracle, id); !ok {
								t.Fatalf("Limit(%d): id %d not in oracle", lim, id)
							}
						}
					}

					// Reuse: same result, caller's buffer backs it when it
					// fits.
					buf := make([]int64, 0, len(oracle)+8)
					got, err = f.q.Query(ctx, region, UsingMethod(m), Reuse(buf))
					if err != nil {
						t.Fatal(err)
					}
					if !slices.Equal(got, oracle) {
						t.Fatal("Reuse changed the result")
					}

					// Each: streamed yields cover exactly the oracle set.
					var est Stats
					var streamed []int64
					err = f.q.Each(ctx, region, func(id int64, p Point) bool {
						streamed = append(streamed, id)
						if want, ok := f.pointOf(pts, id); !ok || p != want {
							t.Fatalf("Each: id %d position %v, want %v", id, p, want)
						}
						return true
					}, UsingMethod(m), WithStatsInto(&est))
					if err != nil {
						t.Fatal(err)
					}
					slices.Sort(streamed)
					if !slices.Equal(streamed, oracle) {
						t.Fatalf("Each streamed %d ids, oracle %d", len(streamed), len(oracle))
					}
					if est.ResultSize != len(oracle) {
						t.Errorf("Each stats.ResultSize = %d, want %d", est.ResultSize, len(oracle))
					}
				})
			}
		}
	}
}

// pointOf resolves a backend id to its dataset coordinates.
func (f *querierFlavor) pointOf(pts []Point, id int64) (Point, bool) {
	if f.toGlobal == nil {
		if id < 0 || id >= int64(len(pts)) {
			return Point{}, false
		}
		return pts[id], true
	}
	g, ok := f.toGlobal[id]
	if !ok {
		return Point{}, false
	}
	return pts[g], true
}

// TestQueryAllMatchesQuery pins that the one batch entry point returns,
// for every backend and method, exactly the per-region Query results.
func TestQueryAllMatchesQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pts := UniformPoints(rng, 2500, UnitSquare())
	flavors := buildFlavors(t, pts)
	ctx := context.Background()

	regions := make([]Region, 12)
	for i := range regions {
		if i%3 == 2 {
			regions[i] = CircleRegion(NewCircle(Pt(0.2+0.6*rng.Float64(), 0.2+0.6*rng.Float64()), 0.08))
		} else {
			regions[i] = PolygonRegion(RandomQueryPolygon(rng, 8, 0.02, UnitSquare()))
		}
	}

	for _, f := range flavors {
		for _, m := range []Method{Traditional, VoronoiBFS} {
			var agg Stats
			out, err := f.q.QueryAll(ctx, regions, UsingMethod(m), WithStatsInto(&agg))
			if err != nil {
				t.Fatalf("%s/%v: %v", f.name, m, err)
			}
			if len(out) != len(regions) {
				t.Fatalf("%s/%v: %d results for %d regions", f.name, m, len(out), len(regions))
			}
			total := 0
			for i, region := range regions {
				want, err := f.q.Query(ctx, region, UsingMethod(m))
				if err != nil {
					t.Fatal(err)
				}
				if !slices.Equal(out[i], want) {
					t.Fatalf("%s/%v: batch result %d diverges from Query", f.name, m, i)
				}
				total += len(want)
			}
			if agg.ResultSize != total {
				t.Errorf("%s/%v: aggregate ResultSize = %d, want %d", f.name, m, agg.ResultSize, total)
			}

			// CountOnly batch: nil slices, aggregate count preserved.
			var cagg Stats
			cout, err := f.q.QueryAll(ctx, regions, UsingMethod(m), CountOnly(), WithStatsInto(&cagg))
			if err != nil {
				t.Fatalf("%s/%v: CountOnly batch: %v", f.name, m, err)
			}
			for i := range cout {
				if cout[i] != nil {
					t.Fatalf("%s/%v: CountOnly batch slice %d not nil", f.name, m, i)
				}
			}
			if cagg.ResultSize != total {
				t.Errorf("%s/%v: CountOnly aggregate = %d, want %d", f.name, m, cagg.ResultSize, total)
			}
		}
	}
}

// TestQuerierInterfaceValue exercises the flavors through a Querier
// variable, the way backend-agnostic code holds them.
func TestQuerierInterfaceValue(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	pts := UniformPoints(rng, 800, UnitSquare())
	region := PolygonRegion(RandomQueryPolygon(rng, 8, 0.05, UnitSquare()))
	ctx := context.Background()

	var want []int64
	for _, f := range buildFlavors(t, pts) {
		var q Querier = f.q
		ids, err := q.Query(ctx, region)
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		g := f.globalSet(t, ids)
		if want == nil {
			want = g
		} else if !slices.Equal(g, want) {
			t.Fatalf("%s diverges through the Querier interface", f.name)
		}
	}
}
