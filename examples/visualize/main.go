// Visualize regenerates the paper's illustrative figures as SVG files:
//
//   - fig3.svg — the Voronoi diagram and Delaunay triangulation of a small
//     point set (paper Figure 3);
//
//   - fig2.svg — an area query with the result set in black and the Voronoi
//     method's candidate shell in green, with the query MBR that the
//     traditional method would scan (paper Figure 2).
//
//     go run ./examples/visualize
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro"
)

func main() {
	// Figure 3: diagram structure on a small set.
	rng := rand.New(rand.NewSource(3))
	small := vaq.UniformPoints(rng, 60, vaq.UnitSquare())
	smallEng, err := vaq.NewEngine(small, vaq.UnitSquare())
	if err != nil {
		log.Fatal(err)
	}
	// A microscopic query far outside the drawing focus renders the plain
	// diagram (no result/candidate highlighting).
	noQuery := vaq.MustPolygon([]vaq.Point{
		vaq.Pt(-0.02, -0.02), vaq.Pt(-0.01, -0.02), vaq.Pt(-0.01, -0.01),
	})
	writeSVG("fig3.svg", func(f *os.File) error {
		return smallEng.RenderQuerySVG(f, noQuery, vaq.RenderOptions{
			WidthPx:      700,
			DrawCells:    true,
			DrawDelaunay: true,
		})
	})

	// Figure 2: the candidate sets of an actual query on a denser set.
	dense := vaq.UniformPoints(rng, 3_000, vaq.UnitSquare())
	denseEng, err := vaq.NewEngine(dense, vaq.UnitSquare())
	if err != nil {
		log.Fatal(err)
	}
	area := vaq.RandomQueryPolygon(rng, 10, 0.08, vaq.UnitSquare())
	writeSVG("fig2.svg", func(f *os.File) error {
		return denseEng.RenderQuerySVG(f, area, vaq.RenderOptions{
			WidthPx: 900,
			DrawMBR: true,
		})
	})

	fmt.Println("wrote fig3.svg (Voronoi + Delaunay) and fig2.svg (query with candidate shell)")
}

func writeSVG(name string, render func(*os.File) error) {
	f, err := os.Create(name)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := render(f); err != nil {
		log.Fatal(err)
	}
}
