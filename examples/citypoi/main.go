// Citypoi models the paper's motivating GIS scenario: points of interest
// clustered around city centers, queried with an irregular administrative
// district boundary. It compares both methods and writes an SVG of the
// query (district, results, candidate shell) to citypoi.svg.
//
//	go run ./examples/citypoi
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(2024))

	// 50k POIs clustered around 12 "cities".
	pois := vaq.ClusteredPoints(rng, 50_000, 12, 0.04, vaq.UnitSquare())
	eng, err := vaq.NewEngine(pois, vaq.UnitSquare())
	if err != nil {
		log.Fatal(err)
	}

	// An irregular concave "district": think of a river-bounded
	// administrative area. Its area is ~40% of its MBR, so the traditional
	// filter fetches ~2.5x more candidates than needed.
	district := vaq.MustPolygon([]vaq.Point{
		vaq.Pt(0.30, 0.30), vaq.Pt(0.52, 0.26), vaq.Pt(0.60, 0.42),
		vaq.Pt(0.48, 0.45), vaq.Pt(0.66, 0.58), vaq.Pt(0.55, 0.70),
		vaq.Pt(0.42, 0.52), vaq.Pt(0.38, 0.68), vaq.Pt(0.26, 0.60),
		vaq.Pt(0.36, 0.44),
	})
	fmt.Printf("district area/MBR ratio: %.2f\n", district.Area()/district.Bounds().Area())

	ctx := context.Background()
	region := vaq.PolygonRegion(district)
	for _, m := range []vaq.Method{vaq.Traditional, vaq.VoronoiBFS, vaq.VoronoiBFSStrict} {
		var st vaq.Stats
		ids, err := eng.Query(ctx, region, vaq.UsingMethod(m), vaq.WithStatsInto(&st))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s POIs in district: %5d | candidates: %5d | redundant: %4d | segment tests: %4d | %v\n",
			m, len(ids), st.Candidates, st.RedundantValidations, st.SegmentTests, st.Duration)
	}

	f, err := os.Create("citypoi.svg")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := eng.RenderQuerySVG(f, district, vaq.RenderOptions{
		WidthPx: 900,
		DrawMBR: true,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote citypoi.svg (black = results, green = candidate shell, red box = the MBR the traditional filter scans)")
}
